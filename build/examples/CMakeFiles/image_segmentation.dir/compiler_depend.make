# Empty compiler generated dependencies file for image_segmentation.
# This may be replaced when dependencies are built.
