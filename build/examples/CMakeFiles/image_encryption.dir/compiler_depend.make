# Empty compiler generated dependencies file for image_encryption.
# This may be replaced when dependencies are built.
