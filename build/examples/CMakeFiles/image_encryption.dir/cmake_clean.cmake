file(REMOVE_RECURSE
  "CMakeFiles/image_encryption.dir/image_encryption.cpp.o"
  "CMakeFiles/image_encryption.dir/image_encryption.cpp.o.d"
  "image_encryption"
  "image_encryption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_encryption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
