file(REMOVE_RECURSE
  "CMakeFiles/bitmap_analytics.dir/bitmap_analytics.cpp.o"
  "CMakeFiles/bitmap_analytics.dir/bitmap_analytics.cpp.o.d"
  "bitmap_analytics"
  "bitmap_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitmap_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
