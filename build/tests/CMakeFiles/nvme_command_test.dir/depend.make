# Empty dependencies file for nvme_command_test.
# This may be replaced when dependencies are built.
