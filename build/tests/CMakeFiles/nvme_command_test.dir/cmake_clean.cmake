file(REMOVE_RECURSE
  "CMakeFiles/nvme_command_test.dir/nvme/command_test.cpp.o"
  "CMakeFiles/nvme_command_test.dir/nvme/command_test.cpp.o.d"
  "nvme_command_test"
  "nvme_command_test.pdb"
  "nvme_command_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvme_command_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
