# Empty dependencies file for latch_array_test.
# This may be replaced when dependencies are built.
