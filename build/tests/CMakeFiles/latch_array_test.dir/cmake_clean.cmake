file(REMOVE_RECURSE
  "CMakeFiles/latch_array_test.dir/flash/latch_array_test.cpp.o"
  "CMakeFiles/latch_array_test.dir/flash/latch_array_test.cpp.o.d"
  "latch_array_test"
  "latch_array_test.pdb"
  "latch_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latch_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
