file(REMOVE_RECURSE
  "CMakeFiles/nvme_parser_test.dir/nvme/parser_test.cpp.o"
  "CMakeFiles/nvme_parser_test.dir/nvme/parser_test.cpp.o.d"
  "nvme_parser_test"
  "nvme_parser_test.pdb"
  "nvme_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvme_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
