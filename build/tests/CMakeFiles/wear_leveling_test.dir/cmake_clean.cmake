file(REMOVE_RECURSE
  "CMakeFiles/wear_leveling_test.dir/ssd/wear_leveling_test.cpp.o"
  "CMakeFiles/wear_leveling_test.dir/ssd/wear_leveling_test.cpp.o.d"
  "wear_leveling_test"
  "wear_leveling_test.pdb"
  "wear_leveling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wear_leveling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
