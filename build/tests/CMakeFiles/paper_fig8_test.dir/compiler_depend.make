# Empty compiler generated dependencies file for paper_fig8_test.
# This may be replaced when dependencies are built.
