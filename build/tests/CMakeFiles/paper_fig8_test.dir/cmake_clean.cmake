file(REMOVE_RECURSE
  "CMakeFiles/paper_fig8_test.dir/flash/paper_fig8_test.cpp.o"
  "CMakeFiles/paper_fig8_test.dir/flash/paper_fig8_test.cpp.o.d"
  "paper_fig8_test"
  "paper_fig8_test.pdb"
  "paper_fig8_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_fig8_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
