# Empty dependencies file for latch_circuit_test.
# This may be replaced when dependencies are built.
