file(REMOVE_RECURSE
  "CMakeFiles/latch_circuit_test.dir/flash/latch_circuit_test.cpp.o"
  "CMakeFiles/latch_circuit_test.dir/flash/latch_circuit_test.cpp.o.d"
  "latch_circuit_test"
  "latch_circuit_test.pdb"
  "latch_circuit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latch_circuit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
