file(REMOVE_RECURSE
  "CMakeFiles/op_truth_test.dir/flash/op_truth_test.cpp.o"
  "CMakeFiles/op_truth_test.dir/flash/op_truth_test.cpp.o.d"
  "op_truth_test"
  "op_truth_test.pdb"
  "op_truth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op_truth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
