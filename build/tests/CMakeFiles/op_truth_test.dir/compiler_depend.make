# Empty compiler generated dependencies file for op_truth_test.
# This may be replaced when dependencies are built.
