# Empty dependencies file for dedup_bnn_test.
# This may be replaced when dependencies are built.
