file(REMOVE_RECURSE
  "CMakeFiles/dedup_bnn_test.dir/workloads/dedup_bnn_test.cpp.o"
  "CMakeFiles/dedup_bnn_test.dir/workloads/dedup_bnn_test.cpp.o.d"
  "dedup_bnn_test"
  "dedup_bnn_test.pdb"
  "dedup_bnn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_bnn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
