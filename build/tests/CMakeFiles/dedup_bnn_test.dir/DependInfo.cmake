
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workloads/dedup_bnn_test.cpp" "tests/CMakeFiles/dedup_bnn_test.dir/workloads/dedup_bnn_test.cpp.o" "gcc" "tests/CMakeFiles/dedup_bnn_test.dir/workloads/dedup_bnn_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/parabit_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/parabit_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/parabit/CMakeFiles/parabit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nvme/CMakeFiles/parabit_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/parabit_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/parabit_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/parabit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
