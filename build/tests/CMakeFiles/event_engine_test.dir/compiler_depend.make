# Empty compiler generated dependencies file for event_engine_test.
# This may be replaced when dependencies are built.
