file(REMOVE_RECURSE
  "CMakeFiles/event_engine_test.dir/ssd/event_engine_test.cpp.o"
  "CMakeFiles/event_engine_test.dir/ssd/event_engine_test.cpp.o.d"
  "event_engine_test"
  "event_engine_test.pdb"
  "event_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
