# Empty dependencies file for read_retry_test.
# This may be replaced when dependencies are built.
