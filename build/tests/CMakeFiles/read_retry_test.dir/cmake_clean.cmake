file(REMOVE_RECURSE
  "CMakeFiles/read_retry_test.dir/flash/read_retry_test.cpp.o"
  "CMakeFiles/read_retry_test.dir/flash/read_retry_test.cpp.o.d"
  "read_retry_test"
  "read_retry_test.pdb"
  "read_retry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_retry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
