# Empty compiler generated dependencies file for gc_interplay_test.
# This may be replaced when dependencies are built.
