file(REMOVE_RECURSE
  "CMakeFiles/gc_interplay_test.dir/integration/gc_interplay_test.cpp.o"
  "CMakeFiles/gc_interplay_test.dir/integration/gc_interplay_test.cpp.o.d"
  "gc_interplay_test"
  "gc_interplay_test.pdb"
  "gc_interplay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_interplay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
