file(REMOVE_RECURSE
  "CMakeFiles/scrambler_test.dir/ssd/scrambler_test.cpp.o"
  "CMakeFiles/scrambler_test.dir/ssd/scrambler_test.cpp.o.d"
  "scrambler_test"
  "scrambler_test.pdb"
  "scrambler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrambler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
