# Empty dependencies file for scrambler_test.
# This may be replaced when dependencies are built.
