# Empty dependencies file for locfree_test.
# This may be replaced when dependencies are built.
