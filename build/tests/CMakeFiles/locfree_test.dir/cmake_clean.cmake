file(REMOVE_RECURSE
  "CMakeFiles/locfree_test.dir/flash/locfree_test.cpp.o"
  "CMakeFiles/locfree_test.dir/flash/locfree_test.cpp.o.d"
  "locfree_test"
  "locfree_test.pdb"
  "locfree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locfree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
