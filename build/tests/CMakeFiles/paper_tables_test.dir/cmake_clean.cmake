file(REMOVE_RECURSE
  "CMakeFiles/paper_tables_test.dir/flash/paper_tables_test.cpp.o"
  "CMakeFiles/paper_tables_test.dir/flash/paper_tables_test.cpp.o.d"
  "paper_tables_test"
  "paper_tables_test.pdb"
  "paper_tables_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_tables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
