file(REMOVE_RECURSE
  "CMakeFiles/nvme_queue_test.dir/nvme/queue_test.cpp.o"
  "CMakeFiles/nvme_queue_test.dir/nvme/queue_test.cpp.o.d"
  "nvme_queue_test"
  "nvme_queue_test.pdb"
  "nvme_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvme_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
