file(REMOVE_RECURSE
  "CMakeFiles/tlc_test.dir/flash/tlc_test.cpp.o"
  "CMakeFiles/tlc_test.dir/flash/tlc_test.cpp.o.d"
  "tlc_test"
  "tlc_test.pdb"
  "tlc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
