# Empty compiler generated dependencies file for statevec_test.
# This may be replaced when dependencies are built.
