# Empty dependencies file for statevec_test.
# This may be replaced when dependencies are built.
