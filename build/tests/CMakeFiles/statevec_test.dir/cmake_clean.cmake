file(REMOVE_RECURSE
  "CMakeFiles/statevec_test.dir/common/statevec_test.cpp.o"
  "CMakeFiles/statevec_test.dir/common/statevec_test.cpp.o.d"
  "statevec_test"
  "statevec_test.pdb"
  "statevec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statevec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
