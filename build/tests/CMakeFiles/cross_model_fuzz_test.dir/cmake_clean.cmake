file(REMOVE_RECURSE
  "CMakeFiles/cross_model_fuzz_test.dir/flash/cross_model_fuzz_test.cpp.o"
  "CMakeFiles/cross_model_fuzz_test.dir/flash/cross_model_fuzz_test.cpp.o.d"
  "cross_model_fuzz_test"
  "cross_model_fuzz_test.pdb"
  "cross_model_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_model_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
