# Empty dependencies file for cross_model_fuzz_test.
# This may be replaced when dependencies are built.
