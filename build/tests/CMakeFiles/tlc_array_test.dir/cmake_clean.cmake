file(REMOVE_RECURSE
  "CMakeFiles/tlc_array_test.dir/flash/tlc_array_test.cpp.o"
  "CMakeFiles/tlc_array_test.dir/flash/tlc_array_test.cpp.o.d"
  "tlc_array_test"
  "tlc_array_test.pdb"
  "tlc_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlc_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
