# Empty compiler generated dependencies file for tlc_array_test.
# This may be replaced when dependencies are built.
