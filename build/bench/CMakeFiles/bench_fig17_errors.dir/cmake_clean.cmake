file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_errors.dir/bench_fig17_errors.cpp.o"
  "CMakeFiles/bench_fig17_errors.dir/bench_fig17_errors.cpp.o.d"
  "bench_fig17_errors"
  "bench_fig17_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
