# Empty dependencies file for bench_fig17_errors.
# This may be replaced when dependencies are built.
