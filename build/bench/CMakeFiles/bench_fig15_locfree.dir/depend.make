# Empty dependencies file for bench_fig15_locfree.
# This may be replaced when dependencies are built.
