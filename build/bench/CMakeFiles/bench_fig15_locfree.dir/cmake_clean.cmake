file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_locfree.dir/bench_fig15_locfree.cpp.o"
  "CMakeFiles/bench_fig15_locfree.dir/bench_fig15_locfree.cpp.o.d"
  "bench_fig15_locfree"
  "bench_fig15_locfree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_locfree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
