file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_casestudies.dir/bench_fig14_casestudies.cpp.o"
  "CMakeFiles/bench_fig14_casestudies.dir/bench_fig14_casestudies.cpp.o.d"
  "bench_fig14_casestudies"
  "bench_fig14_casestudies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_casestudies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
