# Empty dependencies file for bench_fig14_casestudies.
# This may be replaced when dependencies are built.
