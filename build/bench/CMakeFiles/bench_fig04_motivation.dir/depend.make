# Empty dependencies file for bench_fig04_motivation.
# This may be replaced when dependencies are built.
