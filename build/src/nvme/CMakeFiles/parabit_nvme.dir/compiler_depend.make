# Empty compiler generated dependencies file for parabit_nvme.
# This may be replaced when dependencies are built.
