file(REMOVE_RECURSE
  "libparabit_nvme.a"
)
