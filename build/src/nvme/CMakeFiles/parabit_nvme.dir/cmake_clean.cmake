file(REMOVE_RECURSE
  "CMakeFiles/parabit_nvme.dir/command.cpp.o"
  "CMakeFiles/parabit_nvme.dir/command.cpp.o.d"
  "CMakeFiles/parabit_nvme.dir/parser.cpp.o"
  "CMakeFiles/parabit_nvme.dir/parser.cpp.o.d"
  "CMakeFiles/parabit_nvme.dir/queue.cpp.o"
  "CMakeFiles/parabit_nvme.dir/queue.cpp.o.d"
  "libparabit_nvme.a"
  "libparabit_nvme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parabit_nvme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
