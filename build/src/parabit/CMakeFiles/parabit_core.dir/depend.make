# Empty dependencies file for parabit_core.
# This may be replaced when dependencies are built.
