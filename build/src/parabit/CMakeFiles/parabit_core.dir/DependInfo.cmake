
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parabit/controller.cpp" "src/parabit/CMakeFiles/parabit_core.dir/controller.cpp.o" "gcc" "src/parabit/CMakeFiles/parabit_core.dir/controller.cpp.o.d"
  "/root/repo/src/parabit/cost_model.cpp" "src/parabit/CMakeFiles/parabit_core.dir/cost_model.cpp.o" "gcc" "src/parabit/CMakeFiles/parabit_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/parabit/device.cpp" "src/parabit/CMakeFiles/parabit_core.dir/device.cpp.o" "gcc" "src/parabit/CMakeFiles/parabit_core.dir/device.cpp.o.d"
  "/root/repo/src/parabit/host_interface.cpp" "src/parabit/CMakeFiles/parabit_core.dir/host_interface.cpp.o" "gcc" "src/parabit/CMakeFiles/parabit_core.dir/host_interface.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ssd/CMakeFiles/parabit_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/nvme/CMakeFiles/parabit_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/parabit_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/parabit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
