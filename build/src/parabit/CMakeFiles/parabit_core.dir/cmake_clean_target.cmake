file(REMOVE_RECURSE
  "libparabit_core.a"
)
