file(REMOVE_RECURSE
  "CMakeFiles/parabit_core.dir/controller.cpp.o"
  "CMakeFiles/parabit_core.dir/controller.cpp.o.d"
  "CMakeFiles/parabit_core.dir/cost_model.cpp.o"
  "CMakeFiles/parabit_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/parabit_core.dir/device.cpp.o"
  "CMakeFiles/parabit_core.dir/device.cpp.o.d"
  "CMakeFiles/parabit_core.dir/host_interface.cpp.o"
  "CMakeFiles/parabit_core.dir/host_interface.cpp.o.d"
  "libparabit_core.a"
  "libparabit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parabit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
