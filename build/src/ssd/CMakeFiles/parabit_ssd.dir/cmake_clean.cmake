file(REMOVE_RECURSE
  "CMakeFiles/parabit_ssd.dir/allocator.cpp.o"
  "CMakeFiles/parabit_ssd.dir/allocator.cpp.o.d"
  "CMakeFiles/parabit_ssd.dir/event_engine.cpp.o"
  "CMakeFiles/parabit_ssd.dir/event_engine.cpp.o.d"
  "CMakeFiles/parabit_ssd.dir/ftl.cpp.o"
  "CMakeFiles/parabit_ssd.dir/ftl.cpp.o.d"
  "CMakeFiles/parabit_ssd.dir/scrambler.cpp.o"
  "CMakeFiles/parabit_ssd.dir/scrambler.cpp.o.d"
  "CMakeFiles/parabit_ssd.dir/ssd.cpp.o"
  "CMakeFiles/parabit_ssd.dir/ssd.cpp.o.d"
  "libparabit_ssd.a"
  "libparabit_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parabit_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
