# Empty dependencies file for parabit_ssd.
# This may be replaced when dependencies are built.
