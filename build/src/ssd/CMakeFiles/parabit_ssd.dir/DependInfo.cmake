
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssd/allocator.cpp" "src/ssd/CMakeFiles/parabit_ssd.dir/allocator.cpp.o" "gcc" "src/ssd/CMakeFiles/parabit_ssd.dir/allocator.cpp.o.d"
  "/root/repo/src/ssd/event_engine.cpp" "src/ssd/CMakeFiles/parabit_ssd.dir/event_engine.cpp.o" "gcc" "src/ssd/CMakeFiles/parabit_ssd.dir/event_engine.cpp.o.d"
  "/root/repo/src/ssd/ftl.cpp" "src/ssd/CMakeFiles/parabit_ssd.dir/ftl.cpp.o" "gcc" "src/ssd/CMakeFiles/parabit_ssd.dir/ftl.cpp.o.d"
  "/root/repo/src/ssd/scrambler.cpp" "src/ssd/CMakeFiles/parabit_ssd.dir/scrambler.cpp.o" "gcc" "src/ssd/CMakeFiles/parabit_ssd.dir/scrambler.cpp.o.d"
  "/root/repo/src/ssd/ssd.cpp" "src/ssd/CMakeFiles/parabit_ssd.dir/ssd.cpp.o" "gcc" "src/ssd/CMakeFiles/parabit_ssd.dir/ssd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flash/CMakeFiles/parabit_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/parabit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
