file(REMOVE_RECURSE
  "libparabit_ssd.a"
)
