file(REMOVE_RECURSE
  "CMakeFiles/parabit_baselines.dir/ambit.cpp.o"
  "CMakeFiles/parabit_baselines.dir/ambit.cpp.o.d"
  "CMakeFiles/parabit_baselines.dir/pipeline.cpp.o"
  "CMakeFiles/parabit_baselines.dir/pipeline.cpp.o.d"
  "libparabit_baselines.a"
  "libparabit_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parabit_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
