file(REMOVE_RECURSE
  "libparabit_baselines.a"
)
