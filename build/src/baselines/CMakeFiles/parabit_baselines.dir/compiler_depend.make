# Empty compiler generated dependencies file for parabit_baselines.
# This may be replaced when dependencies are built.
