# Empty compiler generated dependencies file for parabit_common.
# This may be replaced when dependencies are built.
