file(REMOVE_RECURSE
  "libparabit_common.a"
)
