file(REMOVE_RECURSE
  "CMakeFiles/parabit_common.dir/bitvector.cpp.o"
  "CMakeFiles/parabit_common.dir/bitvector.cpp.o.d"
  "CMakeFiles/parabit_common.dir/logging.cpp.o"
  "CMakeFiles/parabit_common.dir/logging.cpp.o.d"
  "CMakeFiles/parabit_common.dir/stats.cpp.o"
  "CMakeFiles/parabit_common.dir/stats.cpp.o.d"
  "libparabit_common.a"
  "libparabit_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parabit_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
