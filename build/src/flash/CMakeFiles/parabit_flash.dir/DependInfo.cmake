
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flash/block.cpp" "src/flash/CMakeFiles/parabit_flash.dir/block.cpp.o" "gcc" "src/flash/CMakeFiles/parabit_flash.dir/block.cpp.o.d"
  "/root/repo/src/flash/chip.cpp" "src/flash/CMakeFiles/parabit_flash.dir/chip.cpp.o" "gcc" "src/flash/CMakeFiles/parabit_flash.dir/chip.cpp.o.d"
  "/root/repo/src/flash/error_model.cpp" "src/flash/CMakeFiles/parabit_flash.dir/error_model.cpp.o" "gcc" "src/flash/CMakeFiles/parabit_flash.dir/error_model.cpp.o.d"
  "/root/repo/src/flash/geometry.cpp" "src/flash/CMakeFiles/parabit_flash.dir/geometry.cpp.o" "gcc" "src/flash/CMakeFiles/parabit_flash.dir/geometry.cpp.o.d"
  "/root/repo/src/flash/latch_array.cpp" "src/flash/CMakeFiles/parabit_flash.dir/latch_array.cpp.o" "gcc" "src/flash/CMakeFiles/parabit_flash.dir/latch_array.cpp.o.d"
  "/root/repo/src/flash/latch_circuit.cpp" "src/flash/CMakeFiles/parabit_flash.dir/latch_circuit.cpp.o" "gcc" "src/flash/CMakeFiles/parabit_flash.dir/latch_circuit.cpp.o.d"
  "/root/repo/src/flash/op_sequences.cpp" "src/flash/CMakeFiles/parabit_flash.dir/op_sequences.cpp.o" "gcc" "src/flash/CMakeFiles/parabit_flash.dir/op_sequences.cpp.o.d"
  "/root/repo/src/flash/plane.cpp" "src/flash/CMakeFiles/parabit_flash.dir/plane.cpp.o" "gcc" "src/flash/CMakeFiles/parabit_flash.dir/plane.cpp.o.d"
  "/root/repo/src/flash/read_retry.cpp" "src/flash/CMakeFiles/parabit_flash.dir/read_retry.cpp.o" "gcc" "src/flash/CMakeFiles/parabit_flash.dir/read_retry.cpp.o.d"
  "/root/repo/src/flash/sequence_executor.cpp" "src/flash/CMakeFiles/parabit_flash.dir/sequence_executor.cpp.o" "gcc" "src/flash/CMakeFiles/parabit_flash.dir/sequence_executor.cpp.o.d"
  "/root/repo/src/flash/tlc.cpp" "src/flash/CMakeFiles/parabit_flash.dir/tlc.cpp.o" "gcc" "src/flash/CMakeFiles/parabit_flash.dir/tlc.cpp.o.d"
  "/root/repo/src/flash/tlc_array.cpp" "src/flash/CMakeFiles/parabit_flash.dir/tlc_array.cpp.o" "gcc" "src/flash/CMakeFiles/parabit_flash.dir/tlc_array.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parabit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
