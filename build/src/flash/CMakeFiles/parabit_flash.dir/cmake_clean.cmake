file(REMOVE_RECURSE
  "CMakeFiles/parabit_flash.dir/block.cpp.o"
  "CMakeFiles/parabit_flash.dir/block.cpp.o.d"
  "CMakeFiles/parabit_flash.dir/chip.cpp.o"
  "CMakeFiles/parabit_flash.dir/chip.cpp.o.d"
  "CMakeFiles/parabit_flash.dir/error_model.cpp.o"
  "CMakeFiles/parabit_flash.dir/error_model.cpp.o.d"
  "CMakeFiles/parabit_flash.dir/geometry.cpp.o"
  "CMakeFiles/parabit_flash.dir/geometry.cpp.o.d"
  "CMakeFiles/parabit_flash.dir/latch_array.cpp.o"
  "CMakeFiles/parabit_flash.dir/latch_array.cpp.o.d"
  "CMakeFiles/parabit_flash.dir/latch_circuit.cpp.o"
  "CMakeFiles/parabit_flash.dir/latch_circuit.cpp.o.d"
  "CMakeFiles/parabit_flash.dir/op_sequences.cpp.o"
  "CMakeFiles/parabit_flash.dir/op_sequences.cpp.o.d"
  "CMakeFiles/parabit_flash.dir/plane.cpp.o"
  "CMakeFiles/parabit_flash.dir/plane.cpp.o.d"
  "CMakeFiles/parabit_flash.dir/read_retry.cpp.o"
  "CMakeFiles/parabit_flash.dir/read_retry.cpp.o.d"
  "CMakeFiles/parabit_flash.dir/sequence_executor.cpp.o"
  "CMakeFiles/parabit_flash.dir/sequence_executor.cpp.o.d"
  "CMakeFiles/parabit_flash.dir/tlc.cpp.o"
  "CMakeFiles/parabit_flash.dir/tlc.cpp.o.d"
  "CMakeFiles/parabit_flash.dir/tlc_array.cpp.o"
  "CMakeFiles/parabit_flash.dir/tlc_array.cpp.o.d"
  "libparabit_flash.a"
  "libparabit_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parabit_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
