# Empty dependencies file for parabit_flash.
# This may be replaced when dependencies are built.
