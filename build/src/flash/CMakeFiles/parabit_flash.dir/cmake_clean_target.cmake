file(REMOVE_RECURSE
  "libparabit_flash.a"
)
