# Empty dependencies file for parabit_workloads.
# This may be replaced when dependencies are built.
