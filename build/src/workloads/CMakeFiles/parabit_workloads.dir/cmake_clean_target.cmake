file(REMOVE_RECURSE
  "libparabit_workloads.a"
)
