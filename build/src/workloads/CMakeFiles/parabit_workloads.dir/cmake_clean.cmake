file(REMOVE_RECURSE
  "CMakeFiles/parabit_workloads.dir/bitmap_index.cpp.o"
  "CMakeFiles/parabit_workloads.dir/bitmap_index.cpp.o.d"
  "CMakeFiles/parabit_workloads.dir/bnn.cpp.o"
  "CMakeFiles/parabit_workloads.dir/bnn.cpp.o.d"
  "CMakeFiles/parabit_workloads.dir/dedup.cpp.o"
  "CMakeFiles/parabit_workloads.dir/dedup.cpp.o.d"
  "CMakeFiles/parabit_workloads.dir/encryption.cpp.o"
  "CMakeFiles/parabit_workloads.dir/encryption.cpp.o.d"
  "CMakeFiles/parabit_workloads.dir/image.cpp.o"
  "CMakeFiles/parabit_workloads.dir/image.cpp.o.d"
  "CMakeFiles/parabit_workloads.dir/scan.cpp.o"
  "CMakeFiles/parabit_workloads.dir/scan.cpp.o.d"
  "CMakeFiles/parabit_workloads.dir/segmentation.cpp.o"
  "CMakeFiles/parabit_workloads.dir/segmentation.cpp.o.d"
  "libparabit_workloads.a"
  "libparabit_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parabit_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
