/**
 * @file
 * Reproduces Fig 16: per-operation energy of the ParaBit schemes,
 * normalised to the baseline MSB-page read and write (the paper's two
 * dashed lines).
 *
 * Paper anchors: ParaBit-ReAlloc consumes at most 2.65% more than the
 * baseline write; ParaBit's worst case is about 2x the baseline MSB
 * read.
 */

#include <string>

#include "bench/common/report.hpp"
#include "parabit/cost_model.hpp"

namespace {

using namespace parabit;
using core::CostModel;
using core::Mode;
using flash::BitwiseOp;

} // namespace

int
main()
{
    bench::banner("Fig 16: energy consumption of ParaBit schemes");

    const ssd::SsdConfig cfg = ssd::SsdConfig::paperSsd();
    CostModel cm(cfg);
    const flash::EnergyModel &em = cm.energy();
    const Bytes page = cfg.geometry.pageBytes;

    // Fig 16 normalises per-wordline operation energy: read reference is
    // the MSB page read, write reference the wordline (two-page) write.
    const double read_ref = em.msbReadEnergyJ(page);
    const double write_ref = 2 * em.pageWriteEnergyJ(page);

    const BitwiseOp ops[] = {BitwiseOp::kAnd,    BitwiseOp::kOr,
                             BitwiseOp::kXnor,   BitwiseOp::kNand,
                             BitwiseOp::kNor,    BitwiseOp::kXor,
                             BitwiseOp::kNotLsb, BitwiseOp::kNotMsb};

    bench::section("per-wordline energy normalised to baseline MSB read");
    bench::tableHeader("op / scheme", "x read");
    double worst_pre = 0;
    for (BitwiseOp op : ops) {
        const int sro = flash::coLocatedProgram(op).senseCount();
        const double e_pre = em.senseEnergyJ(sro) + em.transferEnergyJ(page);
        const double e_lf =
            em.senseEnergyJ(
                flash::locationFreeProgram(op).senseCount()) +
            em.transferEnergyJ(page);
        worst_pre = std::max(worst_pre, e_pre / read_ref);
        bench::row(std::string(flash::opName(op)) + " ParaBit", -1,
                   e_pre / read_ref);
        bench::row(std::string(flash::opName(op)) + " ParaBit-LocFree", -1,
                   e_lf / read_ref);
    }
    bench::tableHeader("paper claim", "x");
    bench::row("ParaBit worst case vs baseline MSB read", 2.0, worst_pre);

    bench::section("ParaBit-ReAlloc normalised to baseline write");
    bench::tableHeader("op", "x write");
    double worst_re = 0;
    for (BitwiseOp op : ops) {
        const int sro = flash::coLocatedProgram(op).senseCount();
        // Reallocation: read both operand pages (1 SRO each, LSB
        // layout), program the pair, then the operation's sensings.
        const double e_re = em.senseEnergyJ(2) +
                            2 * em.pageWriteEnergyJ(page) +
                            em.senseEnergyJ(sro);
        worst_re = std::max(worst_re, e_re / write_ref);
        bench::row(std::string(flash::opName(op)) + " ParaBit-ReAlloc", -1,
                   e_re / write_ref);
    }
    bench::tableHeader("paper claim", "x");
    bench::row("ReAlloc worst case vs baseline write", 1.0265, worst_re);
    bench::note("sense/program current ratio calibrated per DESIGN.md; "
                "the normalised shape (ReAlloc ~ write + a few percent, "
                "ParaBit ~ SRO-count/2 of an MSB read) is structural");
    return 0;
}
