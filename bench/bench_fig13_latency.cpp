/**
 * @file
 * Reproduces Fig 13: latency of one bitwise operation under every
 * scheme — (a) single page-sized operation, (b) two 8 MB operands — and
 * the operand size at which ParaBit overtakes PIM (the paper quotes
 * 206.4 MB per operand).
 */

#include <string>

#include "baselines/ambit.hpp"
#include "baselines/isc.hpp"
#include "bench/common/report.hpp"
#include "parabit/cost_model.hpp"

namespace {

using namespace parabit;
using core::CostModel;
using core::Mode;
using flash::BitwiseOp;

const BitwiseOp kOps[] = {BitwiseOp::kAnd,  BitwiseOp::kOr,
                          BitwiseOp::kXnor, BitwiseOp::kNand,
                          BitwiseOp::kNor,  BitwiseOp::kXor,
                          BitwiseOp::kNotLsb, BitwiseOp::kNotMsb};

double
parabitSeconds(const CostModel &cm, BitwiseOp op, Bytes operand, Mode mode)
{
    if (flash::isUnary(op))
        return cm.notOp(op == BitwiseOp::kNotMsb, operand, mode, false)
            .seconds;
    return cm.binaryOp(op, operand, mode, core::ChainStep::kNone, false).seconds;
}

} // namespace

int
main()
{
    bench::banner("Fig 13: bitwise operation latency across schemes");

    baselines::AmbitModel pim;
    baselines::IscModel isc;
    CostModel cm(ssd::SsdConfig::paperSsd());

    bench::section("Fig 13(a): one operation, page/row-sized operands");
    bench::tableHeader("op / scheme", "us");
    for (BitwiseOp op : kOps) {
        const std::string n = flash::opName(op);
        // PIM on one 16 KB row; ISC single pass; ParaBit one wordline.
        bench::row(n + " PIM (16KB row)", -1,
                   pim.sliceSeconds(op) * 1e6);
        bench::row(n + " ISC (one pass)", -1,
                   isc.opSeconds(op, 8) * 1e6);
        // Paper: XNOR/XOR take 100 us in ParaBit without reallocation.
        const double paper_pb =
            (op == BitwiseOp::kXnor || op == BitwiseOp::kXor) ? 100.0 : -1;
        bench::row(n + " ParaBit", paper_pb,
                   parabitSeconds(cm, op, cm.stripeBytes(),
                                  Mode::kPreAllocated) *
                       1e6);
        bench::row(n + " ParaBit-ReAlloc", -1,
                   parabitSeconds(cm, op, cm.stripeBytes(),
                                  Mode::kReAllocate) *
                       1e6);
    }
    bench::note("PIM/ISC operate at ns scale, ParaBit at the 25 us SRO "
                "scale: per-op latency favours the baselines (the paper's "
                "Fig 13a shape)");

    bench::section("Fig 13(b): two 8 MB operands");
    const Bytes eight_mb = 8 * bytes::kMiB;
    bench::tableHeader("op / scheme", "us");
    for (BitwiseOp op : kOps) {
        const std::string n = flash::opName(op);
        bench::row(n + " PIM w/ 8MB", -1, pim.opSeconds(op, eight_mb) * 1e6);
        bench::row(n + " ISC w/ 8MB", -1, isc.opSeconds(op, eight_mb) * 1e6);
        bench::row(n + " ParaBit w/ 8MB", -1,
                   parabitSeconds(cm, op, eight_mb, Mode::kPreAllocated) *
                       1e6);
        bench::row(n + " ParaBit-ReAlloc w/ 8MB", -1,
                   parabitSeconds(cm, op, eight_mb, Mode::kReAllocate) * 1e6);
        bench::row(n + " ParaBit-LocFree w/ 8MB", -1,
                   parabitSeconds(cm, op, eight_mb, Mode::kLocationFree) *
                       1e6);
    }

    {
        bench::section("Fig 13(b) headline checks");
        bench::tableHeader("claim", "x");
        // NOT-MSB in ParaBit-ReAlloc is 25.8x slower than PIM w/ 8MB.
        const double re =
            parabitSeconds(cm, BitwiseOp::kNotMsb, eight_mb,
                           Mode::kReAllocate);
        const double pm = pim.opSeconds(BitwiseOp::kNotMsb, eight_mb);
        bench::row("NOT-MSB ReAlloc / PIM w/8MB", 25.8, re / pm);
        // ISC w/ 8MB is the fastest scheme.
        const double isc8 = isc.opSeconds(BitwiseOp::kAnd, eight_mb);
        const double pb8 = parabitSeconds(cm, BitwiseOp::kAnd, eight_mb,
                                          Mode::kPreAllocated);
        bench::rowOnly("ISC fastest on 8MB (AND)?",
                       isc8 < pm && isc8 < pb8 ? 1 : 0,
                       "1 = yes, matches the paper");
    }

    {
        bench::section("ParaBit-ReAlloc vs PIM crossover (paper: 206.4 MB)");
        // The paper's argument: with enough SSD parallelism, one
        // ParaBit-ReAlloc operation finishes in constant time however
        // large the operand, while PIM serialises 16 KB slices.  The
        // crossover is the operand size where PIM's linear time reaches
        // ReAlloc's constant per-round latency.
        bench::tableHeader("op", "MB");
        CostModel one_round(ssd::SsdConfig::paperSsd());
        for (BitwiseOp op : kOps) {
            const double realloc_const = parabitSeconds(
                one_round, op, one_round.stripeBytes(), Mode::kReAllocate);
            const double pim_per_byte =
                pim.sliceSeconds(op) /
                static_cast<double>(pim.config().maxParallelBytes);
            const double crossover_mb =
                realloc_const / pim_per_byte / 1e6;
            // The paper quotes 206.4 MB in the NOT-MSB discussion.
            bench::row(std::string(flash::opName(op)) + " crossover",
                       op == BitwiseOp::kNotMsb ? 206.4 : -1, crossover_mb);
        }
    }
    return 0;
}
