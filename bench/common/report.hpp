/**
 * @file
 * Shared reporting helpers for the benchmark binaries.
 *
 * Every bench prints one table per paper artefact with three columns:
 * the configuration row, the value the paper reports (where it states
 * one), and the value this reproduction measures.  The goal is shape
 * fidelity — who wins and by roughly what factor — so the ratio column
 * is the headline.
 */

#ifndef PARABIT_BENCH_COMMON_REPORT_HPP_
#define PARABIT_BENCH_COMMON_REPORT_HPP_

#include <cstdio>
#include <string>

namespace parabit::bench {

/** Print a bench banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

/** Print a section sub-header. */
inline void
section(const std::string &title)
{
    std::printf("\n-- %s --\n", title.c_str());
}

/** Header for a paper-vs-measured table. */
inline void
tableHeader(const char *row_label, const char *unit)
{
    std::printf("%-42s %14s %14s %8s\n", row_label,
                ("paper(" + std::string(unit) + ")").c_str(),
                ("ours(" + std::string(unit) + ")").c_str(), "ratio");
    std::printf("%.*s\n", 82,
                "--------------------------------------------------"
                "----------------------------------------");
}

/** One paper-vs-measured row; pass paper < 0 when the paper gives no
 *  number for this cell. */
inline void
row(const std::string &label, double paper, double ours)
{
    if (paper >= 0) {
        std::printf("%-42s %14.4g %14.4g %8.2f\n", label.c_str(), paper,
                    ours, paper != 0 ? ours / paper : 0.0);
    } else {
        std::printf("%-42s %14s %14.4g %8s\n", label.c_str(), "-", ours,
                    "-");
    }
}

/** Measured-only row. */
inline void
rowOnly(const std::string &label, double ours, const char *note = "")
{
    std::printf("%-42s %14s %14.4g   %s\n", label.c_str(), "", ours, note);
}

/** Free-form note line. */
inline void
note(const std::string &text)
{
    std::printf("  note: %s\n", text.c_str());
}

} // namespace parabit::bench

#endif // PARABIT_BENCH_COMMON_REPORT_HPP_
