/**
 * @file
 * Shared --metrics-out / --trace-out / --snapshots-out plumbing for the
 * bench binaries.
 *
 * Benches opt into the observability layer from the command line:
 *
 *   --metrics-out FILE    dump the metrics registry as JSON at exit
 *   --trace-out FILE      write a Chrome trace-event JSON (open in
 *                         ui.perfetto.dev; validate with parabit-trace)
 *   --snapshots-out FILE  write the periodic counter snapshots the
 *                         bench records (JSON time series)
 *   --audit-interval N    run the device's registered invariant suites
 *                         every N transaction drains (0 = off); a
 *                         violation aborts the bench with full context.
 *                         Benches that build an SsdDevice copy this
 *                         into SsdConfig::invariants.auditInterval.
 *
 * enableMetrics() must run before any device/scheduler is constructed:
 * instruments bind to registry slots at construction time and stay
 * local-only (near-zero cost) when the registry is disabled.  Tracing
 * is enabled lazily by the bench around exactly one traced run — the
 * trace model gives each channel and die its own track, so two
 * simulated devices writing the same tracks would interleave spans.
 */

#ifndef PARABIT_BENCH_COMMON_OBS_ARGS_HPP_
#define PARABIT_BENCH_COMMON_OBS_ARGS_HPP_

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"

namespace parabit::bench {

/** Parsed observability options plus the snapshot series benches fill. */
struct ObsOptions
{
    std::string metricsOut;
    std::string traceOut;
    std::string snapshotsOut;
    /** Invariant audit cadence (drains between audits; 0 = off). */
    std::uint64_t auditInterval = 0;
    obs::SnapshotSeries snapshots;

    /** Try to consume argv[i] (and a value) as an obs flag. */
    bool
    consume(int argc, char **argv, int &i)
    {
        const std::string arg = argv[i];
        if (arg == "--metrics-out" && i + 1 < argc) {
            metricsOut = argv[++i];
            return true;
        }
        if (arg == "--trace-out" && i + 1 < argc) {
            traceOut = argv[++i];
            return true;
        }
        if (arg == "--snapshots-out" && i + 1 < argc) {
            snapshotsOut = argv[++i];
            return true;
        }
        if (arg == "--audit-interval" && i + 1 < argc) {
            auditInterval = std::strtoull(argv[++i], nullptr, 10);
            return true;
        }
        return false;
    }

    /** Usage text fragment for the bench's own usage message. */
    static const char *
    help()
    {
        return "  [--metrics-out FILE] [--trace-out FILE] "
               "[--snapshots-out FILE] [--audit-interval N]";
    }

    bool traceWanted() const { return !traceOut.empty(); }
    bool snapshotsWanted() const { return !snapshotsOut.empty(); }

    /** Turn the registry on if any metrics/snapshot output is wanted.
     *  Call before constructing devices or schedulers. */
    void
    enableMetrics() const
    {
        if (!metricsOut.empty() || !snapshotsOut.empty())
            obs::MetricsRegistry::global().setEnabled(true);
    }

    /** Write every requested artefact.  @return false on I/O trouble. */
    bool
    finish() const
    {
        bool ok = true;
        if (!metricsOut.empty()) {
            std::ofstream out(metricsOut, std::ios::binary);
            if (out)
                out << obs::MetricsRegistry::global().toJson();
            if (!out) {
                std::cerr << "obs: cannot write " << metricsOut << "\n";
                ok = false;
            }
        }
        if (!traceOut.empty()) {
            const obs::TraceSink *sink = obs::TraceSink::global();
            if (!sink || !sink->writeFile(traceOut)) {
                std::cerr << "obs: cannot write " << traceOut << "\n";
                ok = false;
            }
        }
        if (!snapshotsOut.empty() &&
            !obs::SnapshotSeries::writeFile(snapshotsOut,
                                            snapshots.toJson())) {
            std::cerr << "obs: cannot write " << snapshotsOut << "\n";
            ok = false;
        }
        return ok;
    }
};

} // namespace parabit::bench

#endif // PARABIT_BENCH_COMMON_OBS_ARGS_HPP_
