/**
 * @file
 * Design-choice ablations called out in DESIGN.md:
 *
 *  1. chain-result placement — free-MSB drop vs full re-pair vs
 *     ReAlloc-everything, on the bitmap AND chain;
 *  2. location-free operand layout — the paper's MSB/LSB sequences vs
 *     the all-LSB layout of Section 5.5;
 *  3. majority-vote redundant execution — residual error rate vs
 *     sensing cost, the read-retry analogue for in-flash computation;
 *  4. TLC vs MLC — sensing cost of the eight 2-operand ops plus the
 *     three-operand extensions (Section 4.4.1).
 */

#include "bench/common/report.hpp"
#include "common/rng.hpp"
#include "flash/read_retry.hpp"
#include "flash/tlc.hpp"
#include "parabit/cost_model.hpp"
#include "workloads/bitmap_index.hpp"

namespace {

using namespace parabit;
using core::ChainStep;
using core::CostModel;
using core::Mode;
using flash::BitwiseOp;

void
chainPlacement()
{
    bench::section("ablation 1: chain-result placement (bitmap m=12)");
    CostModel cm(ssd::SsdConfig::paperSsd());
    const std::uint32_t days =
        workloads::BitmapIndexWorkload::daysForMonths(12);
    const Bytes bitmap = 100'000'000;

    bench::tableHeader("policy", "s");
    const double drop = cm.chain(BitwiseOp::kAnd, days, bitmap,
                                 Mode::kPreAllocated, false,
                                 flash::LocFreeVariant::kMsbLsb,
                                 ChainStep::kDropIntoFreeMsb)
                            .seconds;
    const double repack = cm.chain(BitwiseOp::kAnd, days, bitmap,
                                   Mode::kPreAllocated, false,
                                   flash::LocFreeVariant::kMsbLsb,
                                   ChainStep::kRepack)
                              .seconds;
    const double realloc = cm.chain(BitwiseOp::kAnd, days, bitmap,
                                    Mode::kReAllocate, false)
                               .seconds;
    bench::row("drop into free MSB (LSB-only layout)", -1, drop);
    bench::row("re-pair per step (packed layout)", -1, repack);
    bench::row("ParaBit-ReAlloc (realloc every op)", -1, realloc);
    bench::note("the LSB-only layout halves chain time vs re-pairing and "
                "is the source of the paper's ParaBit-vs-ReAlloc gap");
}

void
locFreeLayout()
{
    bench::section("ablation 2: location-free operand layout (SRO counts)");
    std::printf("%-10s %14s %14s\n", "op", "Msb/Lsb (paper)",
                "Lsb/Lsb (Sec 5.5)");
    for (int i = 0; i < flash::kNumBitwiseOps; ++i) {
        const auto op = static_cast<BitwiseOp>(i);
        std::printf("%-10s %14d %14d\n", flash::opName(op),
                    flash::locationFreeProgram(
                        op, flash::LocFreeVariant::kMsbLsb)
                        .senseCount(),
                    flash::locationFreeProgram(
                        op, flash::LocFreeVariant::kLsbLsb)
                        .senseCount());
    }
    bench::note("storing everything in LSB pages (as Section 5.5 does) "
                "saves 1-2 SROs per op because LSB senses need a single "
                "read level");
}

void
votingAblation()
{
    bench::section("ablation 3: majority-vote redundant execution "
                   "(XOR @ 5K P/E equivalent noise)");
    flash::FlashGeometry g = flash::FlashGeometry::tiny();
    g.pageBytes = 8 * bytes::kKiB;
    flash::ErrorModelConfig ec; // the calibrated Fig 17 model
    ec.refPeCycles = 1.0;       // run at the anchor rate directly
    ec.decadesOverLife = 0.0;

    std::printf("%-8s %18s %14s\n", "votes", "errors/WL (mean)",
                "SRO cost (x)");
    for (int votes : {1, 3, 5}) {
        flash::Chip chip(g, true, ec, 1000 + votes);
        Rng rng(2000 + votes);
        double total = 0;
        const int trials = 300;
        for (int t = 0; t < trials; ++t) {
            BitVector m(g.pageBits()), n(g.pageBits());
            for (auto &w : m.words())
                w = rng.next();
            for (auto &w : n.words())
                w = rng.next();
            m.maskTail();
            n.maskTail();
            const std::uint32_t wl = static_cast<std::uint32_t>(t) %
                                     (g.wordlinesPerBlock / 2);
            if (wl == 0)
                chip.eraseBlock(0, 0, 0);
            chip.programPage({0, 0, 0, 2 * wl, true}, &m);
            chip.programPage({0, 0, 0, 2 * wl + 1, false}, &n);
            total += flash::opLocationFreeVoted(chip, BitwiseOp::kXor,
                                                {0, 0, 0, 2 * wl, true},
                                                {0, 0, 0, 2 * wl + 1, false},
                                                votes)
                         .totalBitErrors;
        }
        std::printf("%-8d %18.4f %14d\n", votes, total / trials, votes);
    }
    bench::note("3-way voting removes nearly all residual errors at 3x "
                "sensing cost — the in-flash-computation analogue of "
                "read retry (Section 5.8)");
}

void
tlcAblation()
{
    bench::section("ablation 4: MLC vs TLC sensing costs");
    using namespace parabit::flash::tlc;
    std::printf("%-10s %12s\n", "2-op (MLC)", "SROs");
    for (int i = 0; i < flash::kNumBitwiseOps; ++i) {
        const auto op = static_cast<BitwiseOp>(i);
        std::printf("%-10s %12d\n", flash::opName(op),
                    flash::coLocatedProgram(op).senseCount());
    }
    std::printf("%-10s %12s\n", "3-op (TLC)", "SROs");
    struct Named { const char *name; TlcVec t; };
    const Named ops[] = {{"AND3", and3Truth()},  {"OR3", or3Truth()},
                         {"NAND3", nand3Truth()}, {"NOR3", nor3Truth()},
                         {"XOR3", xor3Truth()},  {"MAJ3", majority3Truth()}};
    for (const auto &nm : ops)
        std::printf("%-10s %12d\n", nm.name,
                    synthesize(nm.t).senseCount());
    bench::note("TLC folds three operands into one cell: AND3/NAND3 cost "
                "a single SRO where MLC would need an op plus a chain "
                "step; parity-style functions pay for their alternating "
                "truth vectors");
}

} // namespace

int
main()
{
    bench::banner("Design-choice ablations");
    chainPlacement();
    locFreeLayout();
    votingAblation();
    tlcAblation();
    return 0;
}
