/**
 * @file
 * Reproduces Fig 4 (motivation): execution time of data movement vs
 * bitwise AND computation in the PIM and ISC baselines for the image
 * segmentation workload, 10K..200K images.
 *
 * Paper anchors (200K images, 144 GB of pre-processed class planes):
 * PIM moves data for 43.9 s and computes for 1.43 s (30.7x); ISC moves
 * for 41.8 s and computes for 0.694 s (60.2x).
 */

#include "baselines/ambit.hpp"
#include "baselines/interconnect.hpp"
#include "baselines/isc.hpp"
#include "baselines/pipeline.hpp"
#include "bench/common/report.hpp"
#include "workloads/segmentation.hpp"

int
main()
{
    using namespace parabit;
    namespace bl = parabit::baselines;

    bench::banner("Fig 4: data movement vs bitwise-op time in PIM and ISC");

    workloads::SegmentationWorkload seg(800, 600);
    bl::PimPipeline pim{bl::AmbitModel{}, bl::Interconnect{}};
    bl::IscPipeline isc{bl::IscModel{},
                        bl::Interconnect{
                            bl::InterconnectConfig::iscAttachment()}};

    const std::uint64_t image_counts[] = {10'000, 50'000, 100'000, 200'000};

    bench::section("PIM (Ambit)");
    bench::tableHeader("images", "s");
    for (std::uint64_t n : image_counts) {
        bl::BulkWork w = seg.work(n);
        w.bytesOut = 0; // Fig 4 counts only operand movement + compute
        const bl::Breakdown b = pim.run(w);
        const double paper_move = n == 200'000 ? 43.9 : -1;
        const double paper_comp = n == 200'000 ? 1.43 : -1;
        bench::row(std::to_string(n) + " images: movement", paper_move,
                   b.moveInSec);
        bench::row(std::to_string(n) + " images: AND ops", paper_comp,
                   b.computeSec);
    }

    bench::section("ISC (Cosmos OpenSSD / Zynq-7000)");
    bench::tableHeader("images", "s");
    for (std::uint64_t n : image_counts) {
        bl::BulkWork w = seg.work(n);
        w.bytesOut = 0;
        const bl::Breakdown b = isc.run(w);
        const double paper_move = n == 200'000 ? 41.8 : -1;
        bench::row(std::to_string(n) + " images: movement", paper_move,
                   b.moveInSec);
        bench::row(std::to_string(n) + " images: AND ops",
                   n == 200'000 ? 0.694 : -1, b.computeSec);
    }

    {
        bl::BulkWork w = seg.work(200'000);
        w.bytesOut = 0;
        const bl::Breakdown bp = pim.run(w);
        const bl::Breakdown bi = isc.run(w);
        bench::section("movement/compute ratios at 200K images");
        bench::tableHeader("scheme", "x");
        bench::row("PIM movement / AND time", 30.7,
                   bp.moveInSec / bp.computeSec);
        bench::row("ISC movement / AND time", 60.2,
                   bi.moveInSec / bi.computeSec);
        bench::note("conclusion: both baselines are movement-bound, the "
                    "paper's motivation for in-flash computation");
    }
    return 0;
}
