/**
 * @file
 * Section 4.4.2 scalability study: ParaBit in an all-flash array.
 *
 * The paper argues ParaBit "can achieve better computation efficiency
 * for all-flash storage systems that consist of hundreds or thousands
 * of SSDs": per-op latency is fixed at the sensing scale, but the
 * parallel working set — and hence throughput — grows linearly with the
 * number of devices, while a PIM system is pinned to its DRAM channel
 * power budget.  This bench sweeps the array size and reports bitmap
 * case-study compute time plus the array size where ParaBit-ReAlloc's
 * fully parallel round overtakes PIM on the whole workload.
 */

#include "baselines/ambit.hpp"
#include "baselines/interconnect.hpp"
#include "baselines/pipeline.hpp"
#include "bench/common/report.hpp"
#include "parabit/cost_model.hpp"
#include "workloads/bitmap_index.hpp"

namespace {

using namespace parabit;
namespace bl = parabit::baselines;
using core::Mode;

/** Cost model of an array of @p n paper SSDs (channels scale with n). */
core::CostModel
arrayModel(std::uint32_t n)
{
    ssd::SsdConfig cfg = ssd::SsdConfig::paperSsd();
    // An n-device array exposes n x the channels/chips; plane-level
    // behaviour is unchanged.
    cfg.geometry.channels *= n;
    return core::CostModel(cfg);
}

} // namespace

int
main()
{
    bench::banner("Section 4.4.2: all-flash-array scalability");

    bl::AmbitModel pim;
    const std::uint32_t days =
        workloads::BitmapIndexWorkload::daysForMonths(12);
    const bl::BulkWork w =
        workloads::BitmapIndexWorkload::work(800'000'000, days);
    bl::Interconnect link;

    const double pim_compute = [&] {
        bl::BulkWork c = w;
        c.bytesIn = 0;
        c.bytesOut = 0;
        return bl::PimPipeline(pim, link).run(c).totalSec;
    }();

    bench::section("bitmap m=12 compute time vs array size");
    std::printf("%-10s %16s %16s %16s\n", "SSDs", "ReAlloc (s)",
                "LocFree (s)", "PIM fixed (s)");
    for (std::uint32_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        const core::CostModel cm = arrayModel(n);
        const double re =
            bl::ParaBitPipeline(cm, link, Mode::kReAllocate, false)
                .run(w)
                .computeSec;
        const double lf =
            bl::ParaBitPipeline(cm, link, Mode::kLocationFree, false)
                .run(w)
                .computeSec;
        std::printf("%-10u %16.4f %16.4f %16.4f\n", n, re, lf, pim_compute);
    }

    bench::section("scaling properties");
    {
        const core::CostModel one = arrayModel(1);
        const core::CostModel sixteen = arrayModel(16);
        const double t1 =
            bl::ParaBitPipeline(one, link, Mode::kLocationFree, false)
                .run(w)
                .computeSec;
        const double t16 =
            bl::ParaBitPipeline(sixteen, link, Mode::kLocationFree, false)
                .run(w)
                .computeSec;
        bench::tableHeader("property", "x");
        bench::row("LocFree speedup, 16 SSDs (ideal 16)", 16.0, t1 / t16);
        bench::note("speedup quantises to whole parallel rounds: a 95.4 "
                    "MiB bitmap is 12 stripes on one device, 1 on "
                    "sixteen");

        // Array size where a single fully parallel ParaBit-ReAlloc op
        // over the whole 34 GiB working set overtakes PIM's serialised
        // computation — the paper's "latency gap can be filled by
        // increasing the parallelism of SSDs".
        const Bytes volume = w.bytesIn;
        const double pim_single = pim.opSeconds(flash::BitwiseOp::kAnd,
                                                volume);
        std::uint32_t crossover = 0;
        for (std::uint32_t n = 1; n <= 8192; n *= 2) {
            const double re =
                arrayModel(n)
                    .binaryOp(flash::BitwiseOp::kAnd, volume,
                              Mode::kReAllocate, core::ChainStep::kNone,
                              false)
                    .seconds;
            if (re < pim_single) {
                crossover = n;
                break;
            }
        }
        bench::rowOnly("single 34 GiB AND: ReAlloc < PIM from N SSDs",
                       crossover,
                       "the paper's 'latency gap filled by increasing "
                       "parallelism'");
    }
    return 0;
}
