/**
 * @file
 * Regenerates the paper's symbolic artefacts from the circuit model:
 * Table 1 (truth table per MLC state), the read sequences of Fig 3, the
 * operation sequences of Figs 5/6 and Tables 2-5, the location-free
 * sequences (Tables 6/7, Fig 8), and the TLC extension of Section 4.4.1.
 *
 * Every printed row is computed by executing the control programs on the
 * symbolic latch circuit — nothing here is hard-coded output.
 */

#include <cstdio>

#include "bench/common/report.hpp"
#include "flash/op_sequences.hpp"
#include "flash/sequence_executor.hpp"
#include "flash/tlc.hpp"

namespace {

using namespace parabit;
using namespace parabit::flash;

void
printTable1()
{
    bench::section("Table 1: truth table of bitwise operations");
    std::printf("%-6s %-9s", "State", "(LSB/MSB)");
    for (int i = 0; i < kNumBitwiseOps; ++i)
        std::printf(" %8s", opName(static_cast<BitwiseOp>(i)));
    std::printf("\n");
    const char *state_names[] = {"E", "S1", "S2", "S3"};
    for (int s = 0; s < kNumMlcStates; ++s) {
        const auto st = static_cast<MlcState>(s);
        std::printf("%-6s (%d/%d)    ", state_names[s], mlcLsb(st),
                    mlcMsb(st));
        for (int i = 0; i < kNumBitwiseOps; ++i) {
            const auto op = static_cast<BitwiseOp>(i);
            // Computed by running the actual control sequence.
            std::printf(" %8d", runScalar(coLocatedProgram(op), st));
        }
        std::printf("\n");
    }
}

void
printProgramTrace(const MicroProgram &prog)
{
    std::vector<SymbolicTraceRow> trace;
    if (prog.locationFree) {
        std::printf("%s\n", prog.describe().c_str());
        return;
    }
    runSymbolicTraced(prog, trace);
    std::printf("%s (co-located): %d SROs\n", opName(prog.op),
                prog.senseCount());
    std::printf("  %-22s %-6s %-6s %-6s %-6s %-6s\n", "step", "L(SO)",
                "L(C)", "L(A)", "L(B)", "L(OUT)");
    for (const auto &r : trace) {
        std::printf("  %-22s %-6s %-6s %-6s %-6s %-6s\n", r.label.c_str(),
                    r.so.toString().c_str(), r.c.toString().c_str(),
                    r.a.toString().c_str(), r.b.toString().c_str(),
                    r.out.toString().c_str());
    }
}

void
printTlc()
{
    bench::section("Section 4.4.1: TLC extension");
    using namespace parabit::flash::tlc;
    struct Named { const char *name; TlcVec t; };
    const Named ops[] = {
        {"AND3", and3Truth()},   {"OR3", or3Truth()},
        {"NAND3", nand3Truth()}, {"NOR3", nor3Truth()},
        {"XOR3", xor3Truth()},   {"XNOR3", xnor3Truth()},
        {"MAJ3", majority3Truth()},
    };
    std::printf("%-6s %-10s %6s   verified\n", "op", "truth(E..S7)", "SROs");
    for (const auto &n : ops) {
        const TlcProgram p = synthesize(n.t);
        std::printf("%-6s %-10s %6d   %s\n", n.name,
                    n.t.toString().c_str(), p.senseCount(),
                    runSymbolic(p) == n.t ? "yes" : "NO");
    }
    bench::note("AND3 needs a single VREAD1 sensing, as the paper states.");
}

} // namespace

int
main()
{
    bench::banner("ParaBit control-sequence tables (paper Tables 1-7, "
                  "Figs 3/5/6/8)");

    printTable1();

    bench::section("Fig 3: baseline read sequences");
    {
        // LSB read: VREAD2 + M2; MSB read: VREAD1 + M2 then VREAD3 + M1.
        LatchCircuit lc;
        lc.initNormal();
        lc.sense(VRead::kVRead2);
        lc.pulseM2();
        std::printf("  LSB read -> L(A) = %s (LSB bit values)\n",
                    lc.a().toString().c_str());
        lc.initNormal();
        lc.sense(VRead::kVRead1);
        lc.pulseM2();
        lc.sense(VRead::kVRead3);
        lc.pulseM1();
        std::printf("  MSB read -> L(A) = %s (MSB bit values)\n",
                    lc.a().toString().c_str());
    }

    bench::section("Figs 5/6 and Tables 2-5: co-located sequences");
    for (int i = 0; i < kNumBitwiseOps; ++i) {
        printProgramTrace(coLocatedProgram(static_cast<BitwiseOp>(i)));
        std::printf("\n");
    }

    bench::section("Tables 6/7 and Fig 8: location-free sequences");
    for (int i = 0; i < kNumBitwiseOps; ++i) {
        const auto op = static_cast<BitwiseOp>(i);
        std::printf("%s", locationFreeProgram(op).describe().c_str());
    }
    bench::note("LSB-LSB layout variant (all data in LSB pages, "
                "Section 5.5):");
    for (int i = 0; i < kNumBitwiseOps; ++i) {
        const auto op = static_cast<BitwiseOp>(i);
        const auto &p = locationFreeProgram(op, LocFreeVariant::kLsbLsb);
        std::printf("  %-8s %d SROs\n", opName(op), p.senseCount());
    }

    printTlc();
    return 0;
}
