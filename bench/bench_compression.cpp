/**
 * @file
 * Reproduces Section 5.7: compression break-even.  PIM and ISC may hold
 * data compressed in storage, shrinking their operand movement; ParaBit
 * must store operands uncompressed (the latch circuit computes on raw
 * pages).  The paper reports that, for segmentation with 200K images,
 * ParaBit-LocFree breaks even with PIM when data compresses to 30.1% or
 * lower, while for the bitmap workload LocFree always wins because its
 * total time undercuts even PIM's pure compute time.
 */

#include "baselines/ambit.hpp"
#include "baselines/interconnect.hpp"
#include "baselines/pipeline.hpp"
#include "bench/common/report.hpp"
#include "parabit/cost_model.hpp"
#include "workloads/bitmap_index.hpp"
#include "workloads/segmentation.hpp"

namespace {

using namespace parabit;
namespace bl = parabit::baselines;
using core::Mode;

/**
 * PIM time when operands are stored compressed to @p ratio: operand
 * movement plus compute.  Result movement is excluded on both sides of
 * the comparison, following the paper's Fig 4 methodology (it affects
 * both schemes identically for this workload).
 */
double
pimTotalWithCompression(const bl::PimPipeline &pim, bl::BulkWork w,
                        double ratio)
{
    w.bytesIn = static_cast<Bytes>(static_cast<double>(w.bytesIn) * ratio);
    w.bytesOut = 0;
    w.writebackBytes = 0;
    return pim.run(w).totalSec;
}

} // namespace

int
main()
{
    bench::banner("Section 5.7: compression break-even vs PIM");

    bl::PimPipeline pim{bl::AmbitModel{}, bl::Interconnect{}};
    core::CostModel cm(ssd::SsdConfig::paperSsd());
    bl::Interconnect link;

    {
        workloads::SegmentationWorkload seg(800, 600);
        bl::BulkWork w = seg.work(200'000);
        const double locfree =
            bl::ParaBitPipeline(cm, link, Mode::kLocationFree, true).run(w)
                .totalSec;

        // Find the compression ratio where PIM's total equals LocFree's.
        double lo = 0.0, hi = 1.0;
        for (int it = 0; it < 100; ++it) {
            const double mid = 0.5 * (lo + hi);
            if (pimTotalWithCompression(pim, w, mid) > locfree)
                hi = mid;
            else
                lo = mid;
        }
        bench::section("segmentation, 200K images");
        bench::tableHeader("quantity", "-");
        bench::row("LocFree total (s)", -1, locfree);
        bench::row("PIM total uncompressed (s)", -1,
                   pimTotalWithCompression(pim, w, 1.0));
        bench::row("break-even compression ratio", 0.301, lo);
    }
    {
        const std::uint32_t days =
            workloads::BitmapIndexWorkload::daysForMonths(12);
        bl::BulkWork w =
            workloads::BitmapIndexWorkload::work(800'000'000, days);
        const double locfree =
            bl::ParaBitPipeline(cm, link, Mode::kLocationFree, true).run(w)
                .totalSec;
        const double pim_compute_only = pim.run([&] {
                                               bl::BulkWork c = w;
                                               c.bytesIn = 0;
                                               c.bytesOut = 0;
                                               return c;
                                           }())
                                            .totalSec;
        bench::section("bitmap index, m=12");
        bench::tableHeader("quantity", "s");
        bench::row("LocFree total", -1, locfree);
        bench::row("PIM compute alone (no movement)", -1, pim_compute_only);
        bench::rowOnly("LocFree < PIM compute alone?",
                       locfree < pim_compute_only ? 1 : 0,
                       "1 = yes: LocFree always outperforms PIM, matching "
                       "the paper");
    }
    return 0;
}
