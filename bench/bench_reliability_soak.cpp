/**
 * @file
 * Long-horizon reliability soak: GC + disturb wear + patrol scrub +
 * RAIN rebuild + one sudden power cut, per seed.
 *
 * Each seeded run drives a mixed overwrite/read workload with media
 * management and die-level RAIN parity enabled, arms one power cut at a
 * random PhysOp boundary, power-cycles through SPOR recovery, then
 * kills a whole die and lets patrol + on-demand repair rebuild it.  The
 * run verifies every acknowledged page against an in-memory oracle and
 * counts pages that stayed unreadable after rebuild.
 *
 * `--json FILE` writes the machine-readable report (the CI trajectory
 * file `BENCH_reliability.json`): simulated host ops/sec of wall time,
 * the patrol-scrub share of total flash traffic, and the
 * uncorrectable-after-rebuild count (the acceptance bar is zero).
 * `--trace-out FILE` additionally re-runs one seed with the Perfetto
 * sink attached so scrub_pass / rain_rebuild spans land in the trace.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common/obs_args.hpp"
#include "bench/common/report.hpp"
#include "common/rng.hpp"
#include "ssd/ssd.hpp"

namespace {

using namespace parabit;

constexpr ssd::Lpn kHotLpns = 128; ///< overwrite-heavy working set
constexpr int kSteps = 3000;       ///< mixed host ops per run

ssd::SsdConfig
soakCfg(std::uint64_t seed, std::uint64_t audit_interval)
{
    ssd::SsdConfig cfg = ssd::SsdConfig::tiny();
    // Whole-device invariant audit every N drains when requested; a
    // violation panics with the violating suite's context.
    cfg.invariants.auditInterval = audit_interval;
    cfg.geometry.blocksPerPlane = 16;
    cfg.recovery.enabled = true;
    cfg.recovery.checkpointIntervalPrograms = 32;
    cfg.media.enabled = true;
    cfg.media.scrubInterval = ticks::fromUs(5);
    cfg.media.scrubWordlinesPerPass = 64;
    cfg.media.refreshDisturbThreshold = 256;
    cfg.rain.enabled = true;
    cfg.seed = 0xBEEF00ull + seed;
    return cfg;
}

BitVector
pattern(std::size_t bits, ssd::Lpn lpn, std::uint64_t version)
{
    BitVector v(bits, false);
    std::uint64_t s = (lpn + 1) * 0x9E3779B97F4A7C15ull + version;
    for (std::size_t i = 0; i < bits; ++i) {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        v.set(i, ((s >> 61) & 1) != 0);
    }
    return v;
}

struct RunOut
{
    double hostOps = 0;       ///< host writes + reads issued
    double hostPhysOps = 0;   ///< flash ops those host calls booked
    double scrubReads = 0;    ///< patrol scan senses
    double refreshes = 0;     ///< wordlines refresh-relocated
    double repairs = 0;       ///< dead-die pages rebuilt from parity
    double gcRuns = 0;
    double uncorrectable = 0; ///< pages lost after rebuild (bar: 0)
    double mismatches = 0;    ///< oracle mismatches after repair (bar: 0)
    double wallSec = 0;
    bool recovered = false;
};

RunOut
run(std::uint64_t seed, std::uint64_t audit_interval)
{
    const auto t0 = std::chrono::steady_clock::now();
    ssd::SsdDevice dev(soakCfg(seed, audit_interval));
    ssd::Ftl &ftl = dev.ftl();
    const std::size_t bits = dev.geometry().pageBits();
    Rng rng(seed * 0x5DEECE66Dull + 7);

    RunOut out;
    std::map<ssd::Lpn, BitVector> oracle;
    std::uint64_t version = 0;
    Tick now = 0;

    ssd::FaultSpec cut;
    cut.cls = ssd::FaultClass::kPowerLoss;
    cut.onset = static_cast<std::uint32_t>(300 + rng.below(400));
    dev.injectFault(cut);

    // Fill, then the mixed phase; the cut fires somewhere in here.
    for (ssd::Lpn l = 0; l < kHotLpns && !ftl.powerLost(); ++l) {
        const BitVector d = pattern(bits, l, ++version);
        std::vector<ssd::PhysOp> ops;
        ++out.hostOps;
        if (ftl.writePage(l, &d, ops))
            oracle[l] = d;
        out.hostPhysOps += static_cast<double>(ops.size());
        now = dev.scheduleOps(ops, now);
    }
    for (int step = 0; step < kSteps && !ftl.powerLost(); ++step) {
        const std::uint64_t roll = rng.below(100);
        const ssd::Lpn lpn = rng.below(kHotLpns);
        std::vector<ssd::PhysOp> ops;
        if (roll < 40) {
            const BitVector d = pattern(bits, lpn, ++version);
            ++out.hostOps;
            if (ftl.writePage(lpn, &d, ops))
                oracle[lpn] = d;
        } else if (oracle.count(lpn) != 0 && ftl.pageAccessible(lpn)) {
            ++out.hostOps;
            const BitVector got = ftl.readPage(lpn, ops);
            // A cut on this read's op boundary returns power-down
            // zeros; only live reads count against the oracle.
            if (!ftl.powerLost() && got != oracle[lpn])
                ++out.mismatches;
        }
        out.hostPhysOps += static_cast<double>(ops.size());
        now = dev.scheduleOps(ops, now);
        now += ticks::fromUs(1);
        now = dev.pumpMedia(now);
    }

    const ssd::RecoveryReport rep = dev.powerCycle(now);
    out.recovered = rep.recovered;

    // Post-recovery long phase: enough overwrite churn for GC and for
    // patrol-charged disturb to cross the refresh threshold.
    for (int step = 0; step < kSteps; ++step) {
        const std::uint64_t roll = rng.below(100);
        const ssd::Lpn lpn = rng.below(kHotLpns);
        std::vector<ssd::PhysOp> ops;
        if (roll < 40) {
            const BitVector d = pattern(bits, lpn, ++version);
            ++out.hostOps;
            if (ftl.writePage(lpn, &d, ops))
                oracle[lpn] = d;
        } else if (oracle.count(lpn) != 0 && ftl.pageAccessible(lpn)) {
            ++out.hostOps;
            if (ftl.readPage(lpn, ops) != oracle[lpn])
                ++out.mismatches;
        }
        out.hostPhysOps += static_cast<double>(ops.size());
        now = dev.scheduleOps(ops, now);
        now += ticks::fromUs(1);
        now = dev.pumpMedia(now);
    }

    // Whole-die failure, patrol passes, then on-demand repair sweep.
    ssd::FaultSpec die;
    die.cls = ssd::FaultClass::kDieFail;
    die.plane = static_cast<std::uint32_t>((seed % 4) * 2);
    dev.injectFault(die);
    for (int round = 0; round < 4; ++round)
        now = dev.pumpMedia(dev.media()->nextPassAt() + 1);

    for (const auto &[lpn, want] : oracle) {
        if (!ftl.lookup(lpn).has_value()) {
            ++out.uncorrectable;
            continue;
        }
        if (!ftl.pageAccessible(lpn) && !dev.repairPage(lpn, now)) {
            ++out.uncorrectable;
            continue;
        }
        std::vector<ssd::PhysOp> ops;
        if (ftl.readPage(lpn, ops) != want)
            ++out.mismatches;
    }

    out.scrubReads = static_cast<double>(dev.media()->scrubReads());
    out.refreshes = static_cast<double>(dev.media()->refreshes());
    out.repairs = static_cast<double>(dev.media()->repairs());
    out.uncorrectable +=
        static_cast<double>(dev.media()->uncorrectable());
    out.gcRuns = static_cast<double>(ftl.gcRuns());
    out.wallSec = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    std::uint64_t seeds = 8;
    bench::ObsOptions obs;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--seeds" && i + 1 < argc) {
            seeds = std::strtoull(argv[++i], nullptr, 10);
        } else if (obs.consume(argc, argv, i)) {
            continue;
        } else {
            std::fprintf(stderr, "usage: %s [--json FILE] [--seeds N]\n%s\n",
                         argv[0], bench::ObsOptions::help());
            return 2;
        }
    }
    obs.enableMetrics(); // before any device is constructed

    bench::banner("reliability soak: GC + disturb + scrub + RAIN rebuild "
                  "+ SPOR cut");

    std::vector<RunOut> rows;
    RunOut sum;
    for (std::uint64_t s = 0; s < seeds; ++s) {
        const RunOut r = run(s, obs.auditInterval);
        rows.push_back(r);
        sum.hostOps += r.hostOps;
        sum.hostPhysOps += r.hostPhysOps;
        sum.scrubReads += r.scrubReads;
        sum.refreshes += r.refreshes;
        sum.repairs += r.repairs;
        sum.gcRuns += r.gcRuns;
        sum.uncorrectable += r.uncorrectable;
        sum.mismatches += r.mismatches;
        sum.wallSec += r.wallSec;
        sum.recovered = s == 0 ? r.recovered : (sum.recovered && r.recovered);
    }

    const double ops_per_sec =
        sum.wallSec > 0 ? sum.hostOps / sum.wallSec : 0.0;
    // Scrub *share* of all flash traffic, bounded to [0, 100].  The
    // old "overhead" ratio divided patrol senses by host-booked ops
    // alone, so a patrol-heavy soak reported >200% "overhead" — true
    // as a ratio, useless as a percentage.
    const double flash_traffic = sum.scrubReads + sum.hostPhysOps;
    const double scrub_pct =
        flash_traffic > 0 ? 100.0 * sum.scrubReads / flash_traffic : 0.0;

    bench::section("per-seed runs");
    std::printf("%-6s %9s %9s %9s %8s %8s %8s %8s\n", "seed", "host ops",
                "scrub rd", "refresh", "repairs", "gc", "uncorr",
                "mismatch");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const RunOut &r = rows[i];
        std::printf("%-6zu %9.0f %9.0f %9.0f %8.0f %8.0f %8.0f %8.0f\n", i,
                    r.hostOps, r.scrubReads, r.refreshes, r.repairs,
                    r.gcRuns, r.uncorrectable, r.mismatches);
    }

    bench::section("aggregate");
    std::printf("  simulated host ops/sec (wall)   %12.0f\n", ops_per_sec);
    std::printf("  scrub share (%% of flash traffic)%12.2f\n", scrub_pct);
    std::printf("  uncorrectable after rebuild     %12.0f\n",
                sum.uncorrectable);
    std::printf("  oracle mismatches               %12.0f\n",
                sum.mismatches);
    std::printf("  all recoveries clean            %12s\n",
                sum.recovered ? "yes" : "NO");
    bench::note("share = patrol scan senses / (patrol senses + "
                "host-booked flash ops); the acceptance bar is zero "
                "uncorrectable and zero mismatches");

    if (!json_path.empty()) {
        std::ostringstream os;
        os << "{\n  \"schema_version\": 1,\n"
           << "  \"tool\": \"bench_reliability_soak\",\n"
           << "  \"config\": {\"seeds\": " << seeds
           << ", \"steps\": " << kSteps << ", \"hot_lpns\": " << kHotLpns
           << ", \"audit_interval\": " << obs.auditInterval << "},\n"
           << "  \"seeds\": " << seeds << ",\n"
           << "  \"sim_ops_per_sec\": " << ops_per_sec << ",\n"
           << "  \"scrub_share_pct\": " << scrub_pct << ",\n"
           << "  \"uncorrectable_after_rebuild\": " << sum.uncorrectable
           << ",\n"
           << "  \"oracle_mismatches\": " << sum.mismatches << ",\n"
           << "  \"all_recovered\": "
           << (sum.recovered ? "true" : "false") << ",\n  \"rows\": [";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const RunOut &r = rows[i];
            os << (i ? "," : "") << "\n    {\n"
               << "      \"seed\": " << i << ",\n"
               << "      \"host_ops\": " << r.hostOps << ",\n"
               << "      \"host_phys_ops\": " << r.hostPhysOps << ",\n"
               << "      \"scrub_reads\": " << r.scrubReads << ",\n"
               << "      \"refreshes\": " << r.refreshes << ",\n"
               << "      \"repairs\": " << r.repairs << ",\n"
               << "      \"gc_runs\": " << r.gcRuns << ",\n"
               << "      \"uncorrectable\": " << r.uncorrectable << ",\n"
               << "      \"mismatches\": " << r.mismatches << ",\n"
               << "      \"wall_sec\": " << r.wallSec << "\n    }";
        }
        os << "\n  ]\n}\n";
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 2;
        }
        out << os.str();
    }

    // One extra traced run so scrub_pass / rain_rebuild spans land in
    // the Perfetto file (a single device: tracks stay untangled).
    if (obs.traceWanted()) {
        obs::TraceSink::enableGlobal();
        (void)run(0, obs.auditInterval);
    }

    int bad = sum.uncorrectable > 0 || sum.mismatches > 0 ||
              !sum.recovered;
    return obs.finish() && !bad ? 0 : 1;
}
