/**
 * @file
 * The Section 5.3.4 application sketches, quantified: deduplication,
 * binarized neural networks and fast data scanning, each compared
 * across PIM, ISC and the ParaBit schemes.  The paper argues these are
 * "particularly suitable for ParaBit acceleration" because they apply
 * bulk bitwise operations to in-storage-resident data; this bench puts
 * numbers on that claim using the same models as the Fig 14 benches.
 */

#include "baselines/ambit.hpp"
#include "baselines/interconnect.hpp"
#include "baselines/isc.hpp"
#include "baselines/pipeline.hpp"
#include "bench/common/report.hpp"
#include "parabit/cost_model.hpp"
#include "workloads/bnn.hpp"
#include "workloads/dedup.hpp"
#include "workloads/scan.hpp"

namespace {

using namespace parabit;
namespace bl = parabit::baselines;
using core::Mode;

void
compareSchemes(const bl::BulkWork &w)
{
    bl::PimPipeline pim{bl::AmbitModel{}, bl::Interconnect{}};
    bl::IscPipeline isc{bl::IscModel{},
                        bl::Interconnect{
                            bl::InterconnectConfig::iscAttachment()}};
    core::CostModel cm(ssd::SsdConfig::paperSsd());
    bl::Interconnect link;

    const bl::Breakdown bp = pim.run(w);
    const bl::Breakdown bi = isc.run(w);
    const bl::Breakdown re =
        bl::ParaBitPipeline(cm, link, Mode::kReAllocate, true).run(w);
    const bl::Breakdown lf =
        bl::ParaBitPipeline(cm, link, Mode::kLocationFree, true).run(w);

    bench::tableHeader("scheme", "s");
    bench::row("PIM total", -1, bp.totalSec);
    bench::row("ISC total", -1, bi.totalSec);
    bench::row("ParaBit-ReAlloc total", -1, re.totalSec);
    bench::row("ParaBit-LocFree total", -1, lf.totalSec);
    bench::row("LocFree / PIM", -1, lf.totalSec / bp.totalSec);
    bench::row("LocFree / ISC", -1, lf.totalSec / bi.totalSec);
}

} // namespace

int
main()
{
    bench::banner("Section 5.3.4 applications across schemes");

    {
        bench::section("deduplication: 16 TiB corpus, 5% candidate pairs");
        // 2G pages of 8 KiB; candidate pairs sampled by the index.
        const std::uint64_t pages = 2ull << 30;
        const std::uint64_t candidates = pages / 20;
        bl::BulkWork w;
        w.bytesIn = 2ull * 8 * bytes::kKiB * candidates;
        bl::BulkOpGroup g;
        g.op = flash::BitwiseOp::kXor;
        g.operandBytes = 8 * bytes::kKiB;
        g.chainLength = 2;
        g.instances = candidates;
        w.ops.push_back(g);
        w.bytesOut = candidates; // one verdict byte each
        compareSchemes(w);
        bench::note("the paper cites dedup data movement eating 80%+ of "
                    "off-chip bandwidth; in-flash XOR sends back one "
                    "verdict per pair");
    }
    {
        bench::section("binarized neural network: 150 GB of weights "
                       "(ImageNet-scale, Section 5.3.4)");
        // One inference batch over a wide binarized model whose packed
        // weights are ~150 GB, as the paper quotes for ImageNet CNNs.
        workloads::BnnWorkload net({1u << 17, 1u << 13, 1u << 10});
        bl::BulkWork w = net.work(1024);
        // Scale weight residency to 150 GB for the movement side.
        w.bytesIn = 150ull * 1000 * 1000 * 1000;
        compareSchemes(w);
    }
    {
        bench::section("fast data scanning: 1 TB column, 64-bit keys");
        workloads::ScanWorkload scan(1'000'000, 64, 0.01);
        bl::BulkWork w = scan.work();
        const double scale = 1e12 / static_cast<double>(w.bytesIn);
        w.bytesIn = static_cast<Bytes>(
            static_cast<double>(w.bytesIn) * scale);
        w.ops[0].operandBytes = w.bytesIn;
        w.bytesOut = static_cast<Bytes>(
            static_cast<double>(w.bytesOut) * scale);
        compareSchemes(w);
        bench::note("scans are single-pass XNOR: ParaBit turns an "
                    "interface-bound operation into an array-bound one");
    }
    return 0;
}
