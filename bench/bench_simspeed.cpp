/**
 * @file
 * Simulator self-benchmark: how fast does the simulator itself run?
 *
 * Every other bench measures the *simulated device*; this one measures
 * the *simulator* — host events processed per wall second, retired NVMe
 * commands per wall second, peak RSS, and the self-profiler's
 * attribution of CPU time to subsystems (event engine, scheduler,
 * flash array, FTL, observability).  The workload is a fixed seeded
 * mix of reads, writes, XOR formulas and flushes through the full
 * HostInterface/controller/FTL/timing stack, so a regression anywhere
 * in the hot path shows up here.
 *
 *   bench_simspeed [--json FILE] [--check BASELINE] [--min-ratio F]
 *                  [--rounds N]
 *
 * `--check` compares this run's events_per_sec against the baseline
 * JSON (the committed BENCH_simspeed.json) and exits nonzero when it
 * falls below min-ratio x baseline — the CI perf-regression gate.  The
 * default ratio is deliberately loose (0.2): CI machines vary widely,
 * and the gate exists to catch order-of-magnitude slips (an
 * accidentally quadratic queue scan), not 10% noise.
 *
 * Observability: --metrics-out/--trace-out/--snapshots-out (see
 * bench/common/obs_args.hpp).  The trace produced here carries the
 * NVMe command flow events and is what CI feeds to parabit-trace for
 * flow-linkage validation.
 *
 * This bench reads std::chrono::steady_clock directly — benches are
 * exempt from the parabit-lint wall-clock rule; nothing here feeds
 * back into simulated state.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench/common/obs_args.hpp"
#include "bench/common/report.hpp"
#include "common/rng.hpp"
#include "obs/profiler.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "parabit/host_interface.hpp"
#include "ssd/event_engine.hpp"

namespace {

using namespace parabit;
using core::HostInterface;
using core::Mode;
using core::OpClass;
using core::ParaBitDevice;

constexpr std::uint16_t kQueues = 2;
constexpr std::uint16_t kDepth = 32;
constexpr int kWarmupRounds = 4;
constexpr int kDefaultRounds = 768;
constexpr std::uint64_t kPageSeed = 0x51335BEE;

std::vector<BitVector>
pages(const ssd::SsdConfig &cfg, int n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitVector> out;
    for (int p = 0; p < n; ++p) {
        BitVector v(cfg.geometry.pageBits());
        for (auto &w : v.words())
            w = rng.next();
        v.maskTail();
        out.push_back(std::move(v));
    }
    return out;
}

/** One round of the fixed mix; @return commands retired by pump(). */
std::size_t
mixRound(HostInterface &host, int r)
{
    for (std::uint16_t q = 0; q < kQueues; ++q) {
        for (nvme::Lpn l = 0; l < 12; ++l)
            host.submitRead(q, (l + static_cast<nvme::Lpn>(r)) % 32);
        for (nvme::Lpn l = 0; l < 4; ++l)
            host.submitWrite(q, 32 + ((l + static_cast<nvme::Lpn>(r)) % 16));
    }
    nvme::Formula f;
    f.terms.push_back(nvme::Formula::Term{nvme::OperandRef::logical(200, 4),
                                          nvme::OperandRef::logical(300, 4),
                                          flash::BitwiseOp::kXor});
    host.submitFormula(0, f);
    if (r % 8 == 7)
        host.submitFlush(1);
    const std::size_t retired = host.pump();
    for (std::uint16_t q = 0; q < kQueues; ++q)
        while (host.reap(q))
            ;
    return retired;
}

struct RunOut
{
    std::uint64_t events = 0;   ///< event-engine callbacks dispatched
    std::uint64_t commands = 0; ///< NVMe commands retired
    double wallSec = 0;
    obs::Profiler::Totals prof;
};

RunOut
run(int rounds, bench::ObsOptions &obs)
{
    using Clock = std::chrono::steady_clock;

    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const auto d = pages(dev.ssd().config(), 1, kPageSeed);
    for (nvme::Lpn l = 0; l < 48; ++l)
        dev.writeData(l, d);
    const auto x = pages(dev.ssd().config(), 4, kPageSeed + 1);
    const auto y = pages(dev.ssd().config(), 4, kPageSeed + 2);
    dev.writeData(200, x);
    dev.writeData(300, y);

    HostInterface host(dev, kQueues, kDepth, Mode::kReAllocate);

    // SLO smoke: exercised here so the metrics/snapshot artifacts the
    // bench can emit carry the obs.slo.* series.
    // The mix keeps queues deep, so command latency is dominated by
    // queue wait (seconds of simulated time); a 2 s target splits the
    // population instead of flagging everything.
    obs::SloConfig slo;
    slo.target = ticks::fromMs(2000);
    slo.objective = 0.99;
    slo.window = ticks::fromMs(500);
    host.setSlo(OpClass::kRead, slo);
    host.setSlo(OpClass::kFormula, slo);

    for (int r = 0; r < kWarmupRounds; ++r)
        (void)mixRound(host, r);

    obs::Profiler &prof = obs::Profiler::enableGlobal();
    prof.reset();
    const std::uint64_t events0 = ssd::EventEngine::processExecuted();
    const Clock::time_point t0 = Clock::now();

    RunOut out;
    for (int r = 0; r < rounds; ++r) {
        out.commands += mixRound(host, kWarmupRounds + r);
        if (obs.snapshotsWanted())
            obs.snapshots.record(dev.now());
    }

    out.wallSec = std::chrono::duration<double>(Clock::now() - t0).count();
    out.events = ssd::EventEngine::processExecuted() - events0;
    out.prof = prof.totals();
    obs::Profiler::disableGlobal();

    host.finalizeSlo();
    return out;
}

std::size_t
peakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru = {};
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
        return static_cast<std::size_t>(ru.ru_maxrss); // bytes
#else
        return static_cast<std::size_t>(ru.ru_maxrss) * 1024; // KiB
#endif
    }
#endif
    return 0;
}

/** Pull the number after "key": from a baseline JSON (flat schema). */
double
jsonNumber(const std::string &text, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = text.find(needle);
    if (at == std::string::npos)
        return -1.0;
    return std::strtod(text.c_str() + at + needle.size(), nullptr);
}

void
writeJson(const std::string &path, int rounds, const RunOut &r,
          double events_per_sec, double cmds_per_sec, std::size_t rss)
{
    std::ofstream os(path);
    if (!os) {
        std::cerr << "bench_simspeed: cannot write " << path << "\n";
        return;
    }
    os << "{\n  \"schema_version\": 1,\n"
       << "  \"tool\": \"bench_simspeed\",\n"
       << "  \"config\": {\"rounds\": " << rounds
       << ", \"warmup_rounds\": " << kWarmupRounds
       << ", \"queues\": " << kQueues << ", \"depth\": " << kDepth
       << ", \"page_seed\": " << kPageSeed << "},\n"
       << "  \"events\": " << r.events << ",\n"
       << "  \"commands\": " << r.commands << ",\n"
       << "  \"wall_seconds\": " << r.wallSec << ",\n"
       << "  \"events_per_sec\": " << events_per_sec << ",\n"
       << "  \"sim_ops_per_sec\": " << cmds_per_sec << ",\n"
       << "  \"peak_rss_bytes\": " << rss << ",\n"
       << "  \"subsystems\": {";
    const double total = r.prof.totalSeconds();
    for (std::size_t s = 0; s < obs::kNumSubsystems; ++s) {
        os << (s ? ", " : "") << "\""
           << obs::subsystemName(static_cast<obs::Subsystem>(s))
           << "\": {\"seconds\": " << r.prof.seconds[s] << ", \"share\": "
           << (total > 0 ? r.prof.seconds[s] / total : 0.0) << "}";
    }
    os << "}\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    std::string baseline_path;
    double min_ratio = 0.2;
    int rounds = kDefaultRounds;
    bench::ObsOptions obs;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--check" && i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (arg == "--min-ratio" && i + 1 < argc) {
            min_ratio = std::strtod(argv[++i], nullptr);
        } else if (arg == "--rounds" && i + 1 < argc) {
            rounds = std::atoi(argv[++i]);
        } else if (obs.consume(argc, argv, i)) {
            continue;
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--json FILE] [--check BASELINE]"
                         " [--min-ratio F] [--rounds N]\n"
                      << bench::ObsOptions::help() << "\n";
            return 2;
        }
    }
    // Before the device exists: the scheduler binds its trace sink and
    // the metric handles bind their registry slots at construction.
    obs.enableMetrics();
    if (obs.traceWanted())
        obs::TraceSink::enableGlobal();

    bench::banner("Simulator self-profile: events/sec, CPU attribution");

    const RunOut r = run(rounds, obs);
    const double events_per_sec =
        r.wallSec > 0 ? static_cast<double>(r.events) / r.wallSec : 0.0;
    const double cmds_per_sec =
        r.wallSec > 0 ? static_cast<double>(r.commands) / r.wallSec : 0.0;
    const std::size_t rss = peakRssBytes();

    bench::section("throughput");
    std::printf("  rounds                          %12d\n", rounds);
    std::printf("  engine events dispatched        %12llu\n",
                static_cast<unsigned long long>(r.events));
    std::printf("  commands retired                %12llu\n",
                static_cast<unsigned long long>(r.commands));
    std::printf("  wall seconds                    %12.3f\n", r.wallSec);
    std::printf("  events / sec                    %12.0f\n",
                events_per_sec);
    std::printf("  simulated ops / sec             %12.0f\n", cmds_per_sec);
    std::printf("  peak RSS (MiB)                  %12.1f\n",
                static_cast<double>(rss) / (1024.0 * 1024.0));

    bench::section("self-time by subsystem");
    const double total = r.prof.totalSeconds();
    for (std::size_t s = 0; s < obs::kNumSubsystems; ++s) {
        std::printf("  %-14s %10.4f s  %6.1f %%  %12llu entries\n",
                    obs::subsystemName(static_cast<obs::Subsystem>(s)),
                    r.prof.seconds[s],
                    total > 0 ? 100.0 * r.prof.seconds[s] / total : 0.0,
                    static_cast<unsigned long long>(r.prof.entries[s]));
    }
    bench::note("self time: nested scopes charge the innermost subsystem; "
                "\"other\" is everything outside a PROFILE_SCOPE (host "
                "loop, NVMe encode/decode, bitvector math)");

    if (!json_path.empty())
        writeJson(json_path, rounds, r, events_per_sec, cmds_per_sec, rss);

    int rc = 0;
    if (!baseline_path.empty()) {
        std::ifstream in(baseline_path);
        std::stringstream ss;
        ss << in.rdbuf();
        const double base = jsonNumber(ss.str(), "events_per_sec");
        bench::section("regression gate");
        if (!in || base <= 0) {
            std::printf("  cannot read baseline %s\n",
                        baseline_path.c_str());
            rc = 1;
        } else {
            const double ratio = base > 0 ? events_per_sec / base : 0.0;
            std::printf("  baseline events/sec             %12.0f\n", base);
            std::printf("  this run / baseline             %12.2f\n",
                        ratio);
            std::printf("  minimum allowed ratio           %12.2f\n",
                        min_ratio);
            if (ratio < min_ratio) {
                std::printf("  REGRESSION: below gate\n");
                rc = 1;
            } else {
                std::printf("  ok\n");
            }
        }
    }

    return obs.finish() && rc == 0 ? 0 : (rc ? rc : 2);
}
