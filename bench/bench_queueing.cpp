/**
 * @file
 * Queued-execution study: end-to-end command latencies through the NVMe
 * queue path (paper Fig 9/10 lifecycle) under mixed I/O and
 * computation, and the interference ParaBit operations impose on
 * co-running reads.
 *
 * The paper evaluates isolated operations; a deployable device also
 * needs acceptable behaviour when computation shares queues with
 * ordinary traffic.  This bench quantifies that with the full
 * controller/FTL/timing stack on a small functional device, then
 * compares the pluggable scheduler policies head-to-head on the same
 * synthetic transaction stream (co-running reads under a ParaBit
 * reallocation mix) and reports per-class p50/p99 latency plus
 * per-die/per-channel utilization for each policy.
 *
 *   bench_queueing [--json FILE]   # also write the comparison as JSON
 *
 * Observability: --metrics-out/--trace-out/--snapshots-out (see
 * bench/common/obs_args.hpp).  The trace and snapshots cover the FCFS
 * pass of the policy comparison — one scheduler, one logical clock, so
 * the per-channel/per-die tracks stay exclusive.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common/obs_args.hpp"
#include "bench/common/report.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "obs/trace.hpp"
#include "parabit/host_interface.hpp"
#include "ssd/sched/scheduler.hpp"

namespace {

using namespace parabit;
using core::HostInterface;
using core::Mode;
using core::ParaBitDevice;

std::vector<BitVector>
pages(const ssd::SsdConfig &cfg, int n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitVector> out;
    for (int p = 0; p < n; ++p) {
        BitVector v(cfg.geometry.pageBits());
        for (auto &w : v.words())
            w = rng.next();
        v.maskTail();
        out.push_back(std::move(v));
    }
    return out;
}

/** One policy's outcome on the shared synthetic stream. */
struct PolicyOutcome
{
    std::string name;
    double readP50Us = 0;
    double readP99Us = 0;
    double readMeanUs = 0;
    double parabitP99Us = 0;
    std::uint64_t suspends = 0;
    std::size_t maxQueueDepth = 0;
    double avgChannelUtil = 0;
    double avgDieUtil = 0;
    std::vector<double> channelUtil;
    std::vector<double> dieUtil;
};

/**
 * ParaBit reallocation mix: reads co-run with the traffic a formula
 * round generates — multi-SRO array ops, result/reallocation programs
 * and the occasional erase.  Arrivals are staggered across a program
 * window so reads land while long array phases occupy their die.
 */
ssd::sched::DeviceTransaction
mixTx(Rng &rng, const flash::FlashGeometry &g, const flash::FlashTiming &t,
      Tick base)
{
    using ssd::sched::TxClass;
    ssd::sched::DeviceTransaction tx;
    tx.addr.channel = static_cast<std::uint32_t>(rng.below(g.channels));
    tx.addr.chip = static_cast<std::uint32_t>(rng.below(g.chipsPerChannel));
    tx.addr.die = static_cast<std::uint32_t>(rng.below(g.diesPerChip));
    tx.addr.plane = static_cast<std::uint32_t>(rng.below(g.planesPerDie));
    tx.addr.msb = rng.chance(0.5);
    tx.readyAt = base + rng.below(t.tProgram);
    tx.cmdTicks = t.tCmdOverhead;
    const std::uint64_t k = rng.below(10);
    if (k < 4) {
        tx.cls = TxClass::kRead;
        tx.arrayTicks = tx.addr.msb ? t.msbReadTime() : t.lsbReadTime();
        tx.xferOutTicks = t.transferTime(g.pageBytes);
    } else if (k < 8) {
        tx.cls = TxClass::kProgram;
        tx.xferInTicks = t.transferTime(g.pageBytes);
        tx.arrayTicks = t.tProgram;
    } else if (k < 9) {
        tx.cls = TxClass::kParaBit;
        tx.arrayTicks = t.senseTime(1 + static_cast<int>(rng.below(7)));
        if (rng.chance(0.5))
            tx.xferOutTicks = t.transferTime(g.pageBytes);
    } else {
        tx.cls = TxClass::kErase;
        tx.arrayTicks = t.tErase;
    }
    return tx;
}

PolicyOutcome
runPolicy(ssd::sched::SchedPolicyKind policy, bench::ObsOptions *obs)
{
    using ssd::sched::TxClass;
    const flash::FlashGeometry geo = ssd::SsdConfig::tiny().geometry;
    const flash::FlashTiming timing;
    ssd::sched::SchedConfig cfg;
    cfg.policy = policy;
    cfg.latencySampling = true;
    ssd::sched::TransactionScheduler sch(geo, timing, cfg);
    if (obs && obs->traceWanted())
        sch.setTraceSink(&obs::TraceSink::enableGlobal());

    // Same seed for every policy: identical streams, only the
    // arbitration differs.
    Rng rng(0xBE7C0DE5);
    Tick base = 0;
    Tick horizon = 0;
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 48; ++i)
            sch.submit(mixTx(rng, geo, timing, base));
        horizon = std::max(horizon, sch.drain());
        base = horizon / 2;
        if (obs && obs->snapshotsWanted())
            obs->snapshots.record(horizon);
    }

    PolicyOutcome out;
    out.name = sch.policyName();
    const SampleSeries &rd = sch.latencySeries(TxClass::kRead);
    out.readP50Us = ticks::toUs(static_cast<Tick>(rd.percentile(50)));
    out.readP99Us = ticks::toUs(static_cast<Tick>(rd.percentile(99)));
    out.readMeanUs = ticks::toUs(static_cast<Tick>(rd.mean()));
    const SampleSeries &pb = sch.latencySeries(TxClass::kParaBit);
    out.parabitP99Us = ticks::toUs(static_cast<Tick>(pb.percentile(99)));

    const ssd::sched::SchedStats stats = sch.stats();
    out.suspends = stats.suspends;
    out.maxQueueDepth = stats.maxQueueDepth;
    for (const Tick busy : stats.channelBusy) {
        out.channelUtil.push_back(horizon
                                      ? static_cast<double>(busy) / horizon
                                      : 0.0);
        out.avgChannelUtil += out.channelUtil.back();
    }
    out.avgChannelUtil /= static_cast<double>(stats.channelBusy.size());
    for (const Tick busy : stats.dieBusy) {
        out.dieUtil.push_back(horizon ? static_cast<double>(busy) / horizon
                                      : 0.0);
        out.avgDieUtil += out.dieUtil.back();
    }
    out.avgDieUtil /= static_cast<double>(stats.dieBusy.size());
    return out;
}

void
writeJson(const std::string &path, const std::vector<PolicyOutcome> &outs)
{
    std::ofstream os(path);
    if (!os) {
        std::cerr << "bench_queueing: cannot write " << path << "\n";
        return;
    }
    auto vec = [&os](const std::vector<double> &v) {
        os << "[";
        for (std::size_t i = 0; i < v.size(); ++i)
            os << (i ? ", " : "") << v[i];
        os << "]";
    };
    os << "{\n  \"tool\": \"bench_queueing\",\n  \"policies\": [";
    for (std::size_t i = 0; i < outs.size(); ++i) {
        const PolicyOutcome &o = outs[i];
        os << (i ? "," : "") << "\n    {\n"
           << "      \"policy\": \"" << o.name << "\",\n"
           << "      \"read_p50_us\": " << o.readP50Us << ",\n"
           << "      \"read_p99_us\": " << o.readP99Us << ",\n"
           << "      \"read_mean_us\": " << o.readMeanUs << ",\n"
           << "      \"parabit_p99_us\": " << o.parabitP99Us << ",\n"
           << "      \"suspends\": " << o.suspends << ",\n"
           << "      \"max_queue_depth\": " << o.maxQueueDepth << ",\n"
           << "      \"avg_channel_util\": " << o.avgChannelUtil << ",\n"
           << "      \"avg_die_util\": " << o.avgDieUtil << ",\n"
           << "      \"channel_util\": ";
        vec(o.channelUtil);
        os << ",\n      \"die_util\": ";
        vec(o.dieUtil);
        os << "\n    }";
    }
    os << "\n  ],\n  \"read_p99_ratio_vs_fcfs\": {";
    for (std::size_t i = 1; i < outs.size(); ++i) {
        os << (i > 1 ? ", " : "") << "\"" << outs[i].name << "\": "
           << (outs[0].readP99Us > 0 ? outs[i].readP99Us / outs[0].readP99Us
                                     : 0.0);
    }
    os << "}\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    bench::ObsOptions obs;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (obs.consume(argc, argv, i)) {
            continue;
        } else {
            std::cerr << "usage: " << argv[0] << " [--json FILE]\n"
                      << bench::ObsOptions::help() << "\n";
            return 2;
        }
    }
    // Before any scheduler exists: instruments bind at construction.
    obs.enableMetrics();

    bench::banner("Queued execution: mixed I/O + in-flash computation");

    // Baseline: pure-read latency distribution.
    {
        ParaBitDevice dev(ssd::SsdConfig::tiny());
        const auto d = pages(dev.ssd().config(), 1, 1);
        for (nvme::Lpn l = 0; l < 32; ++l)
            dev.writeData(l, d);
        HostInterface host(dev, 1, 64);
        ScalarStat lat;
        for (int round = 0; round < 16; ++round) {
            for (nvme::Lpn l = 0; l < 16; ++l)
                host.submitRead(0, l);
            host.pump();
            while (auto c = host.reap(0))
                lat.sample(ticks::toUs(c->latency));
        }
        bench::section("pure reads, QD16");
        bench::tableHeader("metric", "us");
        bench::row("mean read latency", -1, lat.mean());
        bench::row("max read latency", -1, lat.max());
    }

    // Mixed: reads sharing the queue with ParaBit formulas.
    for (Mode mode : {Mode::kPreAllocated, Mode::kReAllocate}) {
        ParaBitDevice dev(ssd::SsdConfig::tiny());
        const auto d = pages(dev.ssd().config(), 1, 2);
        for (nvme::Lpn l = 0; l < 32; ++l)
            dev.writeData(l, d);
        const auto x = pages(dev.ssd().config(), 4, 3);
        const auto y = pages(dev.ssd().config(), 4, 4);
        if (mode == Mode::kPreAllocated)
            dev.writeOperandPair(200, 300, x, y);
        else {
            dev.writeData(200, x);
            dev.writeData(300, y);
        }

        HostInterface host(dev, 1, 64, mode);
        ScalarStat read_lat, op_lat;
        for (int round = 0; round < 16; ++round) {
            for (nvme::Lpn l = 0; l < 8; ++l)
                host.submitRead(0, l);
            nvme::Formula f;
            f.terms.push_back(nvme::Formula::Term{
                nvme::OperandRef::logical(200, 4),
                nvme::OperandRef::logical(300, 4),
                flash::BitwiseOp::kXor});
            const auto formula_cid = host.submitFormula(0, f);
            for (nvme::Lpn l = 8; l < 16; ++l)
                host.submitRead(0, l);
            host.pump();
            while (auto c = host.reap(0)) {
                if (formula_cid && c->cid == *formula_cid)
                    op_lat.sample(ticks::toUs(c->latency));
                else
                    read_lat.sample(ticks::toUs(c->latency));
            }
        }
        bench::section(std::string("mixed reads + XOR formulas, ") +
                       core::modeName(mode));
        bench::tableHeader("metric", "us");
        bench::row("mean read latency", -1, read_lat.mean());
        bench::row("max read latency", -1, read_lat.max());
        bench::row("mean formula latency", -1, op_lat.mean());
    }

    bench::note("pre-allocated formulas are sensing-only and barely "
                "perturb reads; reallocation adds program traffic that "
                "queued reads must wait behind");

    // Scheduler policy comparison on one shared synthetic stream.
    std::vector<PolicyOutcome> outs;
    for (int p = 0; p < ssd::sched::kNumSchedPolicies; ++p)
        outs.push_back(
            runPolicy(static_cast<ssd::sched::SchedPolicyKind>(p),
                      p == 0 ? &obs : nullptr));

    bench::section("scheduler policies: co-running reads under "
                   "ParaBit reallocation interference");
    bench::tableHeader("policy / metric", "us");
    for (const PolicyOutcome &o : outs) {
        bench::rowOnly(o.name + " read p50", o.readP50Us);
        bench::rowOnly(o.name + " read p99", o.readP99Us);
        bench::rowOnly(o.name + " read mean", o.readMeanUs);
        bench::rowOnly(o.name + " parabit p99", o.parabitP99Us);
        bench::rowOnly(o.name + " suspends",
                       static_cast<double>(o.suspends));
        bench::rowOnly(o.name + " avg channel util", o.avgChannelUtil);
        bench::rowOnly(o.name + " avg die util", o.avgDieUtil);
    }
    const PolicyOutcome &fcfs = outs.front();
    const PolicyOutcome &rp = outs.back();
    if (fcfs.readP99Us > 0)
        bench::note("read_priority p99 read latency is " +
                    std::to_string(fcfs.readP99Us / rp.readP99Us) +
                    "x lower than fcfs on the same stream (" +
                    std::to_string(rp.readP99Us) + " vs " +
                    std::to_string(fcfs.readP99Us) + " us)");

    if (!json_path.empty())
        writeJson(json_path, outs);
    return obs.finish() ? 0 : 2;
}
