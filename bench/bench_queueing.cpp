/**
 * @file
 * Queued-execution study: end-to-end command latencies through the NVMe
 * queue path (paper Fig 9/10 lifecycle) under mixed I/O and
 * computation, and the interference ParaBit operations impose on
 * co-running reads.
 *
 * The paper evaluates isolated operations; a deployable device also
 * needs acceptable behaviour when computation shares queues with
 * ordinary traffic.  This bench quantifies that with the full
 * controller/FTL/timing stack on a small functional device.
 */

#include <algorithm>

#include "bench/common/report.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "parabit/host_interface.hpp"

namespace {

using namespace parabit;
using core::HostInterface;
using core::Mode;
using core::ParaBitDevice;

std::vector<BitVector>
pages(const ssd::SsdConfig &cfg, int n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitVector> out;
    for (int p = 0; p < n; ++p) {
        BitVector v(cfg.geometry.pageBits());
        for (auto &w : v.words())
            w = rng.next();
        v.maskTail();
        out.push_back(std::move(v));
    }
    return out;
}

} // namespace

int
main()
{
    bench::banner("Queued execution: mixed I/O + in-flash computation");

    // Baseline: pure-read latency distribution.
    {
        ParaBitDevice dev(ssd::SsdConfig::tiny());
        const auto d = pages(dev.ssd().config(), 1, 1);
        for (nvme::Lpn l = 0; l < 32; ++l)
            dev.writeData(l, d);
        HostInterface host(dev, 1, 64);
        ScalarStat lat;
        for (int round = 0; round < 16; ++round) {
            for (nvme::Lpn l = 0; l < 16; ++l)
                host.submitRead(0, l);
            host.pump();
            while (auto c = host.reap(0))
                lat.sample(ticks::toUs(c->latency));
        }
        bench::section("pure reads, QD16");
        bench::tableHeader("metric", "us");
        bench::row("mean read latency", -1, lat.mean());
        bench::row("max read latency", -1, lat.max());
    }

    // Mixed: reads sharing the queue with ParaBit formulas.
    for (Mode mode : {Mode::kPreAllocated, Mode::kReAllocate}) {
        ParaBitDevice dev(ssd::SsdConfig::tiny());
        const auto d = pages(dev.ssd().config(), 1, 2);
        for (nvme::Lpn l = 0; l < 32; ++l)
            dev.writeData(l, d);
        const auto x = pages(dev.ssd().config(), 4, 3);
        const auto y = pages(dev.ssd().config(), 4, 4);
        if (mode == Mode::kPreAllocated)
            dev.writeOperandPair(200, 300, x, y);
        else {
            dev.writeData(200, x);
            dev.writeData(300, y);
        }

        HostInterface host(dev, 1, 64, mode);
        ScalarStat read_lat, op_lat;
        for (int round = 0; round < 16; ++round) {
            for (nvme::Lpn l = 0; l < 8; ++l)
                host.submitRead(0, l);
            nvme::Formula f;
            f.terms.push_back(nvme::Formula::Term{
                nvme::OperandRef::logical(200, 4),
                nvme::OperandRef::logical(300, 4),
                flash::BitwiseOp::kXor});
            const auto formula_cid = host.submitFormula(0, f);
            for (nvme::Lpn l = 8; l < 16; ++l)
                host.submitRead(0, l);
            host.pump();
            while (auto c = host.reap(0)) {
                if (formula_cid && c->cid == *formula_cid)
                    op_lat.sample(ticks::toUs(c->latency));
                else
                    read_lat.sample(ticks::toUs(c->latency));
            }
        }
        bench::section(std::string("mixed reads + XOR formulas, ") +
                       core::modeName(mode));
        bench::tableHeader("metric", "us");
        bench::row("mean read latency", -1, read_lat.mean());
        bench::row("max read latency", -1, read_lat.max());
        bench::row("mean formula latency", -1, op_lat.mean());
    }

    bench::note("pre-allocated formulas are sensing-only and barely "
                "perturb reads; reallocation adds program traffic that "
                "queued reads must wait behind");
    return 0;
}
