/**
 * @file
 * Reproduces Section 5.4: endurance impact of pre-computation
 * reallocation.  With a rated 600 TBW MLC device, the paper reports the
 * host-visible endurance shrinking to 200.67 / 257.51 / 300 TBW for the
 * bitmap, segmentation and encryption case studies (reallocated operand
 * volumes of 67.79 / 186.67 / 140 GB against host data of 33.99 / 140 /
 * 140 GB).
 *
 * The reallocation volumes here come out of the cost model's write
 * accounting for the actual ReAlloc executions, not from hard-coded
 * constants.
 *
 * `--wear` appends an opt-in section that drives the read-disturb /
 * retention-aware ErrorModel on a simulated device with the patrol
 * scrubber enabled, measures the refresh-relocation amplification it
 * causes, and folds that extra P/E consumption into the case-study
 * endurance figures.  The default output (no flag) stays byte-identical
 * to the pinned paper table: the wear factors default to zero.
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/common/report.hpp"
#include "common/rng.hpp"
#include "parabit/cost_model.hpp"
#include "ssd/endurance.hpp"
#include "ssd/ssd.hpp"
#include "workloads/bitmap_index.hpp"
#include "workloads/encryption.hpp"
#include "workloads/segmentation.hpp"

namespace {

using namespace parabit;
using core::CostModel;
using core::Mode;

constexpr double kRatedTbw = 600.0;

void
report(const char *name, Bytes host_bytes, Bytes realloc_bytes,
       double paper_realloc_gib, double paper_tbw)
{
    ssd::EnduranceStats e;
    e.hostBytes = host_bytes;
    e.reallocBytes = realloc_bytes;
    bench::row(std::string(name) + ": realloc volume (GiB)",
               paper_realloc_gib, bytes::toGiB(realloc_bytes));
    bench::row(std::string(name) + ": effective TBW", paper_tbw,
               e.effectiveTbw(kRatedTbw));
    bench::row(std::string(name) + ": write amplification", -1,
               e.writeAmplification());
}

/**
 * Measure refresh-relocation amplification on a small simulated device
 * under the disturb/retention-aware error model: a read-heavy hot set
 * ages for simulated hours while the patrol scrubber refresh-relocates
 * wordlines whose predicted RBER crosses the threshold.  Returns
 * refresh pages written per host page written.
 */
double
measureRefreshAmplification()
{
    ssd::SsdConfig cfg = ssd::SsdConfig::tiny();
    cfg.geometry.blocksPerPlane = 16;
    cfg.errors = flash::ErrorModelConfig{}; // paper-calibrated base
    cfg.errors.readDisturbFactor = 1e-3;    // opt-in wear terms
    cfg.errors.retentionPerHour = 2e-3;
    cfg.media.enabled = true;
    cfg.media.scrubInterval = ticks::fromUs(5);
    cfg.media.scrubWordlinesPerPass = 64;
    cfg.media.refreshRberThreshold = 2e-6; // ~4x beginning-of-life RBER
    cfg.seed = 0x9EAF;

    ssd::SsdDevice dev(cfg);
    ssd::Ftl &ftl = dev.ftl();
    const std::size_t bits = dev.geometry().pageBits();
    Rng rng(41);

    constexpr ssd::Lpn kLpns = 128;
    std::uint64_t host_pages = 0;
    Tick now = 0;
    for (ssd::Lpn l = 0; l < kLpns; ++l) {
        BitVector d(bits);
        for (auto &word : d.words())
            word = rng.next();
        d.maskTail();
        std::vector<ssd::PhysOp> ops;
        ftl.writePage(l, &d, ops);
        ++host_pages;
        now = dev.scheduleOps(ops, now);
    }
    // Read-mostly phase, one simulated hour per op: reads charge
    // neighbor disturb, idle time accrues retention, patrol refreshes.
    for (int step = 0; step < 2000; ++step) {
        const ssd::Lpn lpn = rng.below(kLpns);
        std::vector<ssd::PhysOp> ops;
        if (rng.chance(0.1)) {
            BitVector d(bits);
            for (auto &word : d.words())
                word = rng.next();
            d.maskTail();
            ftl.writePage(lpn, &d, ops);
            ++host_pages;
        } else if (ftl.pageAccessible(lpn)) {
            (void)ftl.readPage(lpn, ops);
        }
        now = dev.scheduleOps(ops, now);
        now += ticks::fromSec(3600);
        now = dev.pumpMedia(now);
    }
    return host_pages == 0
               ? 0.0
               : static_cast<double>(ftl.refreshPagesWritten()) /
                     static_cast<double>(host_pages);
}

} // namespace

int
main(int argc, char **argv)
{
    bool wear = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--wear") == 0) {
            wear = true;
        } else {
            std::fprintf(stderr, "usage: %s [--wear]\n", argv[0]);
            return 2;
        }
    }
    bench::banner("Section 5.4: endurance impact (rated TBW = 600)");

    CostModel cm(ssd::SsdConfig::paperSsd());
    bench::tableHeader("case study", "see row");

    struct Case
    {
        const char *name;
        Bytes host;
        Bytes realloc;
    };
    std::vector<Case> cases;

    {
        // Bitmap, m = 12: a 365-operand AND chain over 95.37 MiB
        // bitmaps, fully reallocated.
        const std::uint32_t days =
            workloads::BitmapIndexWorkload::daysForMonths(12);
        const Bytes bitmap = 100'000'000;
        const core::BulkCost c = cm.chain(
            flash::BitwiseOp::kAnd, days, bitmap, Mode::kReAllocate, false);
        report("bitmap (m=12)", static_cast<Bytes>(days) * bitmap,
               c.reallocBytes, 67.79, 200.67);
        cases.push_back({"bitmap (m=12)",
                         static_cast<Bytes>(days) * bitmap,
                         c.reallocBytes});
    }
    {
        // Segmentation, 200K images: 4 colours x (Y AND U AND V).
        workloads::SegmentationWorkload seg(800, 600);
        const auto w = seg.work(200'000);
        Bytes realloc = 0;
        for (const auto &g : w.ops)
            realloc += cm.chain(g.op, g.chainLength, g.operandBytes,
                                Mode::kReAllocate, false)
                           .reallocBytes *
                       g.instances;
        report("segmentation (200K images)", w.bytesIn, realloc, 186.67,
               257.51);
        cases.push_back({"segmentation (200K images)", w.bytesIn, realloc});
    }
    {
        // Encryption, 100K images: one XOR per image; reallocation
        // re-programs the original next to the key (one page per page of
        // image data — the cipher's persistent home).
        workloads::EncryptionWorkload enc(800, 600);
        const auto w = enc.work(100'000, false);
        // Each image page is re-programmed once next to the key page it
        // pairs with: realloc volume = image volume.
        const Bytes realloc = enc.bytesPerImage() * 100'000;
        report("encryption (100K images)", w.bytesIn, realloc, 140.0 * 1e9 /
                   static_cast<double>(bytes::kGiB),
               300.0);
        cases.push_back({"encryption (100K images)", w.bytesIn, realloc});
    }

    bench::note("TBW_eff = rated x host / (host + realloc); the paper "
                "notes real deployments mixing storage and compute see "
                "larger values");

    if (wear) {
        // Opt-in: fold measured scrub-refresh amplification (disturb +
        // retention wear) into the endurance figures.  Refresh traffic
        // consumes P/E budget exactly like GC relocation.
        const double r = measureRefreshAmplification();
        bench::section("with disturb/retention wear (scrub refresh "
                       "traffic included)");
        std::printf("  measured refresh pages per host page %10.3f\n", r);
        bench::tableHeader("case study", "TBW");
        for (const Case &c : cases) {
            ssd::EnduranceStats e;
            e.hostBytes = c.host;
            e.reallocBytes = c.realloc;
            e.refreshBytes =
                static_cast<Bytes>(r * static_cast<double>(c.host));
            bench::row(std::string(c.name) + ": effective TBW w/ refresh",
                       -1, e.effectiveTbw(kRatedTbw));
        }
        bench::note("refresh amplification measured on a simulated "
                    "device: read-disturb + retention growth patrolled "
                    "by the scrubber (ErrorModelConfig wear factors are "
                    "zero by default, so this section is opt-in)");
    }
    return 0;
}
