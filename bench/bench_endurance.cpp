/**
 * @file
 * Reproduces Section 5.4: endurance impact of pre-computation
 * reallocation.  With a rated 600 TBW MLC device, the paper reports the
 * host-visible endurance shrinking to 200.67 / 257.51 / 300 TBW for the
 * bitmap, segmentation and encryption case studies (reallocated operand
 * volumes of 67.79 / 186.67 / 140 GB against host data of 33.99 / 140 /
 * 140 GB).
 *
 * The reallocation volumes here come out of the cost model's write
 * accounting for the actual ReAlloc executions, not from hard-coded
 * constants.
 */

#include "bench/common/report.hpp"
#include "parabit/cost_model.hpp"
#include "ssd/endurance.hpp"
#include "workloads/bitmap_index.hpp"
#include "workloads/encryption.hpp"
#include "workloads/segmentation.hpp"

namespace {

using namespace parabit;
using core::CostModel;
using core::Mode;

constexpr double kRatedTbw = 600.0;

void
report(const char *name, Bytes host_bytes, Bytes realloc_bytes,
       double paper_realloc_gib, double paper_tbw)
{
    ssd::EnduranceStats e;
    e.hostBytes = host_bytes;
    e.reallocBytes = realloc_bytes;
    bench::row(std::string(name) + ": realloc volume (GiB)",
               paper_realloc_gib, bytes::toGiB(realloc_bytes));
    bench::row(std::string(name) + ": effective TBW", paper_tbw,
               e.effectiveTbw(kRatedTbw));
    bench::row(std::string(name) + ": write amplification", -1,
               e.writeAmplification());
}

} // namespace

int
main()
{
    bench::banner("Section 5.4: endurance impact (rated TBW = 600)");

    CostModel cm(ssd::SsdConfig::paperSsd());
    bench::tableHeader("case study", "see row");

    {
        // Bitmap, m = 12: a 365-operand AND chain over 95.37 MiB
        // bitmaps, fully reallocated.
        const std::uint32_t days =
            workloads::BitmapIndexWorkload::daysForMonths(12);
        const Bytes bitmap = 100'000'000;
        const core::BulkCost c = cm.chain(
            flash::BitwiseOp::kAnd, days, bitmap, Mode::kReAllocate, false);
        report("bitmap (m=12)", static_cast<Bytes>(days) * bitmap,
               c.reallocBytes, 67.79, 200.67);
    }
    {
        // Segmentation, 200K images: 4 colours x (Y AND U AND V).
        workloads::SegmentationWorkload seg(800, 600);
        const auto w = seg.work(200'000);
        Bytes realloc = 0;
        for (const auto &g : w.ops)
            realloc += cm.chain(g.op, g.chainLength, g.operandBytes,
                                Mode::kReAllocate, false)
                           .reallocBytes *
                       g.instances;
        report("segmentation (200K images)", w.bytesIn, realloc, 186.67,
               257.51);
    }
    {
        // Encryption, 100K images: one XOR per image; reallocation
        // re-programs the original next to the key (one page per page of
        // image data — the cipher's persistent home).
        workloads::EncryptionWorkload enc(800, 600);
        const auto w = enc.work(100'000, false);
        // Each image page is re-programmed once next to the key page it
        // pairs with: realloc volume = image volume.
        const Bytes realloc = enc.bytesPerImage() * 100'000;
        report("encryption (100K images)", w.bytesIn, realloc, 140.0 * 1e9 /
                   static_cast<double>(bytes::kGiB),
               300.0);
    }

    bench::note("TBW_eff = rated x host / (host + realloc); the paper "
                "notes real deployments mixing storage and compute see "
                "larger values");
    return 0;
}
