/**
 * @file
 * Reproduces Fig 15: location-free ParaBit — left: per-operation
 * latencies on two 8 MB operands for the three ParaBit schemes; right:
 * total case-study execution times.
 *
 * Paper anchors: bitmap — LocFree is 5.23% of ReAlloc and 10.1% of
 * ParaBit; encryption — LocFree is 57.1% of ReAlloc/ParaBit;
 * segmentation — LocFree and ParaBit are similar (movement-bound).
 * Section 5.5 stores all data in LSB pages.
 */

#include <string>

#include "baselines/interconnect.hpp"
#include "baselines/pipeline.hpp"
#include "bench/common/report.hpp"
#include "parabit/cost_model.hpp"
#include "workloads/bitmap_index.hpp"
#include "workloads/encryption.hpp"
#include "workloads/segmentation.hpp"

namespace {

using namespace parabit;
namespace bl = parabit::baselines;
using core::CostModel;
using core::Mode;
using flash::BitwiseOp;

} // namespace

int
main()
{
    bench::banner("Fig 15: location-free ParaBit");

    CostModel cm(ssd::SsdConfig::paperSsd());
    bl::Interconnect link;
    const Bytes eight_mb = 8 * bytes::kMiB;

    bench::section("left: op latencies, two 8 MB operands");
    bench::tableHeader("op / scheme", "us");
    const BitwiseOp ops[] = {BitwiseOp::kAnd, BitwiseOp::kOr,
                             BitwiseOp::kXor, BitwiseOp::kXnor,
                             BitwiseOp::kNand, BitwiseOp::kNor};
    for (BitwiseOp op : ops) {
        const std::string n = flash::opName(op);
        bench::row(n + " ParaBit-ReAlloc", -1,
                   cm.binaryOp(op, eight_mb, Mode::kReAllocate, core::ChainStep::kNone, false)
                           .seconds *
                       1e6);
        bench::row(n + " ParaBit (pre-alloc)", -1,
                   cm.binaryOp(op, eight_mb, Mode::kPreAllocated,
                               core::ChainStep::kNone, false)
                           .seconds *
                       1e6);
        bench::row(n + " ParaBit-LocFree", -1,
                   cm.binaryOp(op, eight_mb, Mode::kLocationFree,
                               core::ChainStep::kNone, false)
                           .seconds *
                       1e6);
    }
    bench::note("ReAlloc slowest (reallocation), pre-alloc fastest, "
                "LocFree in between with extra sensings — Fig 15's shape");

    bench::section("right: case-study totals");
    {
        // Bitmap, m = 12.
        const std::uint32_t days =
            workloads::BitmapIndexWorkload::daysForMonths(12);
        const bl::BulkWork w =
            workloads::BitmapIndexWorkload::work(800'000'000, days);
        const double re =
            bl::ParaBitPipeline(cm, link, Mode::kReAllocate, true).run(w)
                .totalSec;
        const double pb =
            bl::ParaBitPipeline(cm, link, Mode::kPreAllocated, true).run(w)
                .totalSec;
        const double lf =
            bl::ParaBitPipeline(cm, link, Mode::kLocationFree, true).run(w)
                .totalSec;
        bench::tableHeader("bitmap m=12", "s");
        bench::row("ParaBit-ReAlloc", -1, re);
        bench::row("ParaBit", -1, pb);
        bench::row("ParaBit-LocFree", -1, lf);
        bench::row("LocFree / ReAlloc", 0.0523, lf / re);
        bench::row("LocFree / ParaBit", 0.101, lf / pb);
    }
    {
        // Encryption, 100K images.  LocFree must program the cipher
        // pages explicitly; the co-located schemes persist it through
        // their reallocation programs.
        workloads::EncryptionWorkload enc(800, 600);
        const bl::BulkWork w_co = enc.work(100'000, false);
        const bl::BulkWork w_lf = enc.work(100'000, true);
        const double re =
            bl::ParaBitPipeline(cm, link, Mode::kReAllocate, true).run(w_co)
                .totalSec;
        const double lf =
            bl::ParaBitPipeline(cm, link, Mode::kLocationFree, true)
                .run(w_lf)
                .totalSec;
        bench::tableHeader("encryption 100K images", "s");
        bench::row("ParaBit / ParaBit-ReAlloc", -1, re);
        bench::row("ParaBit-LocFree", -1, lf);
        bench::row("LocFree / ReAlloc", 0.571, lf / re);
    }
    {
        // Segmentation, 200K images: both are result-movement-bound.
        workloads::SegmentationWorkload seg(800, 600);
        const bl::BulkWork w = seg.work(200'000);
        const double pb =
            bl::ParaBitPipeline(cm, link, Mode::kPreAllocated, true).run(w)
                .totalSec;
        const double lf =
            bl::ParaBitPipeline(cm, link, Mode::kLocationFree, true).run(w)
                .totalSec;
        bench::tableHeader("segmentation 200K images", "s");
        bench::row("ParaBit", -1, pb);
        bench::row("ParaBit-LocFree", -1, lf);
        bench::row("LocFree / ParaBit (paper: similar, ~1.0)", 1.0,
                   lf / pb);
    }

    bench::section("ablation: LSB-LSB layout variant (Section 5.5 layout)");
    bench::tableHeader("op", "us");
    for (BitwiseOp op : ops) {
        bench::row(std::string(flash::opName(op)) + " LocFree Msb/Lsb", -1,
                   cm.binaryOp(op, eight_mb, Mode::kLocationFree,
                               core::ChainStep::kNone, false,
                               flash::LocFreeVariant::kMsbLsb)
                           .seconds *
                       1e6);
        bench::row(std::string(flash::opName(op)) + " LocFree Lsb/Lsb", -1,
                   cm.binaryOp(op, eight_mb, Mode::kLocationFree,
                               core::ChainStep::kNone, false,
                               flash::LocFreeVariant::kLsbLsb)
                           .seconds *
                       1e6);
    }
    return 0;
}
