/**
 * @file
 * Reliability-ladder overhead and graceful degradation under injected
 * faults (paper Section 5.8: ParaBit results bypass ECC, so the
 * controller must detect and recover on its own).
 *
 * Three tables:
 *  1. Ladder overhead on a fault-free device: policy off vs 1/3/5-vote
 *     rungs vs the forced host-side fallback, in latency per op.
 *  2. Behaviour per injected fault class: detections, fallbacks,
 *     retired blocks, and whether every delivered result page matched
 *     the host-computed reference (zero silent corruption).
 *  3. Replayability: the same seed must give byte-identical results and
 *     an identical fault-schedule fingerprint.
 */

#include <cinttypes>
#include <functional>
#include <string>
#include <vector>

#include "bench/common/report.hpp"
#include "common/rng.hpp"
#include "parabit/device.hpp"
#include "ssd/fault_injector.hpp"

namespace {

using namespace parabit;
using namespace parabit::core;

constexpr std::uint32_t kPages = 16;

ssd::SsdConfig
noisyTiny(std::uint64_t seed, double errors_per_page)
{
    ssd::SsdConfig cfg = ssd::SsdConfig::tiny();
    // Double the per-plane block budget: the fault rows retire whole
    // planes' worth of blocks and the sweep still needs free wordline
    // pairs for reallocation.
    cfg.geometry.blocksPerPlane = 16;
    cfg.seed = seed;
    cfg.errors.observedErrorsAtRef = errors_per_page;
    cfg.errors.wordlineBits = static_cast<double>(cfg.geometry.pageBits());
    cfg.errors.refPeCycles = 1.0;
    cfg.errors.decadesOverLife = 0.0;
    return cfg;
}

std::vector<BitVector>
randomPages(const ssd::SsdConfig &cfg, std::uint32_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitVector> out;
    for (std::uint32_t p = 0; p < n; ++p) {
        BitVector v(cfg.geometry.pageBits());
        for (auto &w : v.words())
            w = rng.next();
        v.maskTail();
        out.push_back(std::move(v));
    }
    return out;
}

BitVector
cpuRef(flash::BitwiseOp op, const BitVector &x, const BitVector &y)
{
    switch (op) {
      case flash::BitwiseOp::kAnd: return x & y;
      case flash::BitwiseOp::kOr: return x | y;
      case flash::BitwiseOp::kXor: return x ^ y;
      case flash::BitwiseOp::kXnor: return ~(x ^ y);
      case flash::BitwiseOp::kNand: return ~(x & y);
      case flash::BitwiseOp::kNor: return ~(x | y);
      default: return ~x;
    }
}

std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= 0x100000001B3ull;
    }
    return h;
}

std::uint64_t
resultHash(const ExecResult &r)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    h = fnv1a(h, static_cast<std::uint64_t>(r.status));
    for (const auto &p : r.pages) {
        h = fnv1a(h, p.size());
        for (const auto w : p.words())
            h = fnv1a(h, w);
    }
    return h;
}

struct Rig
{
    /** @param prep runs before the operand writes (e.g. to inject
     *  faults the initial write traffic should already see). */
    explicit Rig(std::uint64_t seed, double noise,
                 const std::function<void(ParaBitDevice &)> &prep = {})
        : dev(noisyTiny(seed, noise)),
          x(randomPages(dev.ssd().config(), kPages, seed ^ 1)),
          y(randomPages(dev.ssd().config(), kPages, seed ^ 2))
    {
        if (prep)
            prep(dev);
        dev.writeData(0, x);
        dev.writeData(100, y);
    }

    void
    enable(int votes)
    {
        ReliabilityPolicy p;
        p.enabled = true;
        p.initialVotes = votes;
        dev.controller().setReliability(p);
    }

    struct SweepOut
    {
        ExecStats stats;
        double usPerOp = 0;
        std::uint64_t mismatches = 0;
        ExecStatus worst = ExecStatus::kOk;
        std::uint64_t hash = 0xCBF29CE484222325ull;
    };

    /** All six binary ops over the operand ranges, checked vs host. */
    SweepOut
    sweep()
    {
        static const flash::BitwiseOp kOps[] = {
            flash::BitwiseOp::kAnd,  flash::BitwiseOp::kOr,
            flash::BitwiseOp::kXor,  flash::BitwiseOp::kXnor,
            flash::BitwiseOp::kNand, flash::BitwiseOp::kNor,
        };
        SweepOut out;
        Tick busy = 0;
        for (const auto op : kOps) {
            ExecResult r =
                dev.bitwise(op, 0, 100, kPages, Mode::kReAllocate);
            busy += r.stats.elapsed();
            out.worst = std::max(out.worst, r.status);
            for (std::uint32_t p = 0; p < kPages; ++p) {
                const bool have =
                    p < r.pages.size() && !r.pages[p].empty();
                if (have && r.pages[p] != cpuRef(op, x[p], y[p]))
                    ++out.mismatches;
                if (!have && r.status == ExecStatus::kOk)
                    ++out.mismatches; // withheld data without an error
            }
            out.stats.accumulate(r.stats);
            out.hash = fnv1a(out.hash, resultHash(r));
        }
        out.usPerOp = static_cast<double>(busy) /
                      (std::size(kOps) * double(ticks::kMicrosecond));
        return out;
    }

    void
    faultAllPlanes(ssd::FaultClass cls, double rber_mult = 4.0)
    {
        for (ssd::PlaneIndex p = 0;
             p < dev.ssd().geometry().planesTotal(); ++p) {
            ssd::FaultSpec s;
            s.cls = cls;
            s.plane = p;
            s.rberMultiplier = rber_mult;
            s.stuckCount = 4;
            dev.ssd().injectFault(s);
        }
        dev.controller().invalidatePlaneTrust();
    }

    ParaBitDevice dev;
    std::vector<BitVector> x, y;
};

void
ladderOverhead()
{
    bench::section("ladder overhead, fault-free device (16-page ops)");
    bench::tableHeader("configuration", "us/op");

    Rig base(11, 0.05);
    const double off = base.sweep().usPerOp;
    bench::row("reliability off (legacy path)", off, off);
    for (const int votes : {1, 3, 5}) {
        Rig r(11, 0.05);
        r.enable(votes);
        const auto s = r.sweep();
        bench::row("ladder, " + std::to_string(votes) + "-vote rung", off,
                   s.usPerOp);
    }
    // Stuck bitlines on every plane defeat in-flash compute entirely:
    // the self-test routes everything to the ECC-clean host path.
    Rig fb(11, 0.05);
    fb.enable(1);
    fb.faultAllPlanes(ssd::FaultClass::kStuckBitline);
    const auto s = fb.sweep();
    bench::row("host fallback (plane self-test failed)", off, s.usPerOp);
    bench::note("ratio column = overhead vs the reliability-off baseline");
    bench::note("the tiny 64 B-page geometry understates the in-flash "
                "advantage, so the host fallback can come out faster in "
                "latency here; it spends channel bandwidth instead");
}

void
perFaultClass()
{
    bench::section("behaviour per injected fault class");
    std::printf("%-18s %9s %9s %9s %9s %9s %7s  %s\n", "fault class",
                "detects", "selftest", "fallback", "retired", "mismatch",
                "exact", "worst status");

    const auto report = [](const char *name, const Rig::SweepOut &s,
                           std::uint64_t retired) {
        std::printf("%-18s %9" PRIu64 " %9" PRIu64 " %9" PRIu64
                    " %9" PRIu64 " %9" PRIu64 " %7s  %s\n",
                    name, s.stats.detections, s.stats.selfTests,
                    s.stats.hostFallbacks, retired, s.mismatches,
                    s.mismatches == 0 ? "yes" : "NO",
                    execStatusName(s.worst));
    };

    {
        Rig r(21, 2.0);
        r.enable(1);
        report("none (baseline)", r.sweep(),
               r.dev.ssd().ftl().retiredBlocks());
    }
    {
        // Mild enough that the self-test still trusts the planes; the
        // parity/duplicate rung and vote escalation do the work.
        Rig r(22, 1.0);
        r.enable(1);
        r.faultAllPlanes(ssd::FaultClass::kElevatedRber, 4.0);
        report("elevated RBER", r.sweep(),
               r.dev.ssd().ftl().retiredBlocks());
    }
    {
        Rig r(23, 0.0);
        r.enable(1);
        r.faultAllPlanes(ssd::FaultClass::kStuckBitline);
        report("stuck bitlines", r.sweep(),
               r.dev.ssd().ftl().retiredBlocks());
    }
    {
        // Every program into plane 0 fails, from the first write on:
        // the operand writes discover the bad blocks, the FTL retires
        // them and remaps onto healthy planes, and the sweep then runs
        // on the degraded device.
        Rig r(24, 0.0, [](ParaBitDevice &d) {
            ssd::FaultSpec s;
            s.cls = ssd::FaultClass::kProgramFailure;
            s.plane = 0;
            s.failPeriod = 1;
            d.ssd().injectFault(s);
        });
        r.enable(1);
        report("program failure", r.sweep(),
               r.dev.ssd().ftl().retiredBlocks());
    }
    {
        Rig r(25, 0.0);
        r.enable(1);
        const auto yaddr = r.dev.ssd().ftl().lookup(100);
        ssd::FaultSpec s;
        s.cls = ssd::FaultClass::kDeadPlane;
        s.plane = ssd::planeIndex(r.dev.ssd().geometry(),
                                  {yaddr->channel, yaddr->chip,
                                   yaddr->die, yaddr->plane});
        r.dev.ssd().injectFault(s);
        r.dev.controller().invalidatePlaneTrust();
        report("dead plane", r.sweep(), r.dev.ssd().ftl().retiredBlocks());
    }
    bench::note("'exact' = every delivered page equals the host-computed "
                "reference, and data is only withheld under a typed "
                "error (zero silent corruption)");
}

void
replayability()
{
    bench::section("replayability of a seeded random fault run");
    const auto run = [](std::uint64_t seed) {
        Rig r(seed, 2.0);
        r.enable(1);
        for (const auto &f : ssd::FaultInjector::randomSchedule(
                 r.dev.ssd().geometry(), seed, 6))
            r.dev.ssd().injectFault(f);
        r.dev.controller().invalidatePlaneTrust();
        const auto s = r.sweep();
        return std::pair{r.dev.ssd().faultInjector().scheduleFingerprint(),
                         s.hash};
    };
    const auto a = run(777);
    const auto b = run(777);
    std::printf("  run A: schedule %016" PRIx64 "  results %016" PRIx64
                "\n",
                a.first, a.second);
    std::printf("  run B: schedule %016" PRIx64 "  results %016" PRIx64
                "\n",
                b.first, b.second);
    std::printf("  byte-reproducible: %s\n",
                a == b ? "yes" : "NO — determinism regression");
}

} // namespace

int
main()
{
    bench::banner("Fault tolerance: detect-and-escalate ladder, graceful "
                  "degradation, replayable fault runs");
    ladderOverhead();
    perFaultClass();
    replayability();
    return 0;
}
