/**
 * @file
 * SPOR recovery cost: scan time and replay cost vs checkpoint interval.
 *
 * Two tables:
 *  1. Write-path overhead of crash consistency while the device runs —
 *     journal records, checkpoints and total host-write latency vs a
 *     recovery-disabled baseline of the same workload.
 *  2. Recovery cost after a seeded power cut — OOB pages scanned,
 *     checkpoint pages read, journal records replayed and the simulated
 *     recovery time, per checkpoint cadence (0 = no periodic
 *     checkpoint, i.e. a full-device OOB scan).
 *
 * `--json FILE` additionally writes a machine-readable report, following
 * the parabit-verify JSON convention.
 */

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common/obs_args.hpp"
#include "bench/common/report.hpp"
#include "common/rng.hpp"
#include "ssd/ssd.hpp"

namespace {

using namespace parabit;

constexpr ssd::Lpn kHotLpns = 220;   ///< overwrite-heavy working set
constexpr int kWrites = 900;         ///< host writes per run
constexpr std::uint64_t kSeeds = 5;  ///< runs averaged per interval

ssd::SsdConfig
recCfg(std::uint32_t interval, std::uint64_t seed, bool enabled)
{
    ssd::SsdConfig cfg = ssd::SsdConfig::tiny();
    cfg.geometry.blocksPerPlane = 16;
    cfg.geometry.pageBytes = 128;
    cfg.recovery.enabled = enabled;
    cfg.recovery.checkpointIntervalPrograms = interval;
    cfg.seed = 0xBEEF00ull + seed;
    return cfg;
}

struct RunOut
{
    double writeUs = 0;        ///< host-write latency over the workload
    double journalWrites = 0;  ///< journal records made durable
    double checkpoints = 0;    ///< periodic checkpoints committed
    double pagesScanned = 0;   ///< OOB reads during recovery
    double ckptPagesRead = 0;  ///< checkpoint pages loaded
    double journalReplayed = 0;///< journal records replayed
    double rebuilt = 0;        ///< LPN mappings after arbitration
    double scanUs = 0;         ///< simulated recovery duration
};

/** Overwrite-heavy host workload, cut at the end, then power-cycled. */
RunOut
run(std::uint32_t interval, std::uint64_t seed, bool enabled)
{
    ssd::SsdDevice dev(recCfg(interval, seed, enabled));
    ssd::Ftl &ftl = dev.ftl();
    const std::size_t bits = dev.geometry().pageBits();
    Rng rng(seed * 7919 + 13);

    Tick t = 0;
    for (int w = 0; w < kWrites; ++w) {
        std::vector<ssd::PhysOp> ops;
        const ssd::Lpn lpn = rng.below(kHotLpns);
        if (rng.chance(0.08)) {
            ftl.trim(lpn, &ops);
        } else {
            BitVector d(bits);
            for (auto &word : d.words())
                word = rng.next();
            d.maskTail();
            ftl.writePage(lpn, &d, ops);
        }
        t = dev.scheduleOps(ops, t);
    }

    RunOut out;
    out.writeUs = static_cast<double>(t) / double(ticks::kMicrosecond);
    out.journalWrites = static_cast<double>(ftl.journalRecordsWritten());
    out.checkpoints = static_cast<double>(ftl.checkpointsTaken());
    if (!enabled)
        return out;

    // Cut at the very next PhysOp boundary, then restore power.
    ssd::FaultSpec cut;
    cut.cls = ssd::FaultClass::kPowerLoss;
    cut.onset = 0;
    dev.injectFault(cut);
    {
        std::vector<ssd::PhysOp> ops;
        BitVector d(bits);
        ftl.writePage(0, &d, ops); // unacknowledged: the cut fires here
    }
    const ssd::RecoveryReport rep = dev.powerCycle(t);
    out.pagesScanned = static_cast<double>(rep.pagesScanned);
    out.ckptPagesRead = static_cast<double>(rep.checkpointPagesRead);
    out.journalReplayed = static_cast<double>(rep.journalRecords);
    out.rebuilt = static_cast<double>(rep.mappingsRebuilt);
    out.scanUs =
        static_cast<double>(rep.scanTime) / double(ticks::kMicrosecond);
    return out;
}

/** Seed-averaged metrics for one checkpoint cadence. */
RunOut
average(std::uint32_t interval, bool enabled)
{
    RunOut sum;
    for (std::uint64_t s = 0; s < kSeeds; ++s) {
        const RunOut r = run(interval, s, enabled);
        sum.writeUs += r.writeUs;
        sum.journalWrites += r.journalWrites;
        sum.checkpoints += r.checkpoints;
        sum.pagesScanned += r.pagesScanned;
        sum.ckptPagesRead += r.ckptPagesRead;
        sum.journalReplayed += r.journalReplayed;
        sum.rebuilt += r.rebuilt;
        sum.scanUs += r.scanUs;
    }
    const double n = static_cast<double>(kSeeds);
    sum.writeUs /= n;
    sum.journalWrites /= n;
    sum.checkpoints /= n;
    sum.pagesScanned /= n;
    sum.ckptPagesRead /= n;
    sum.journalReplayed /= n;
    sum.rebuilt /= n;
    sum.scanUs /= n;
    return sum;
}

std::string
intervalLabel(std::uint32_t interval)
{
    return interval == 0 ? std::string("none (full OOB scan)")
                         : "every " + std::to_string(interval) + " programs";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    bench::ObsOptions obs;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (obs.consume(argc, argv, i)) {
            continue;
        } else {
            std::fprintf(stderr, "usage: %s [--json FILE]\n%s\n", argv[0],
                         bench::ObsOptions::help());
            return 2;
        }
    }
    obs.enableMetrics(); // before any device is constructed

    bench::banner("SPOR recovery: scan time and replay cost vs checkpoint "
                  "interval");

    const std::uint32_t kIntervals[] = {0, 8, 32, 128};
    const RunOut off = average(0, /*enabled=*/false);
    std::vector<RunOut> rows;
    for (const auto interval : kIntervals)
        rows.push_back(average(interval, /*enabled=*/true));

    bench::section("write-path overhead while running (900 hot writes, "
                   "seed-averaged)");
    std::printf("%-28s %12s %8s %10s %8s\n", "checkpoint cadence",
                "write us", "ratio", "journal", "ckpts");
    std::printf("  %-26s %12.1f %8s %10s %8s\n", "recovery disabled",
                off.writeUs, "1.00", "-", "-");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::printf("  %-26s %12.1f %8.2f %10.1f %8.1f\n",
                    intervalLabel(kIntervals[i]).c_str(), rows[i].writeUs,
                    off.writeUs > 0 ? rows[i].writeUs / off.writeUs : 0.0,
                    rows[i].journalWrites, rows[i].checkpoints);
    }
    bench::note("ratio = host-write latency vs the recovery-disabled "
                "baseline; journal = write-ahead records made durable");

    bench::section("recovery cost after a power cut (seed-averaged)");
    std::printf("%-28s %10s %10s %10s %10s %12s\n", "checkpoint cadence",
                "oob pages", "ckpt pgs", "replayed", "rebuilt",
                "recovery us");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::printf("  %-26s %10.1f %10.1f %10.1f %10.1f %12.1f\n",
                    intervalLabel(kIntervals[i]).c_str(),
                    rows[i].pagesScanned, rows[i].ckptPagesRead,
                    rows[i].journalReplayed, rows[i].rebuilt,
                    rows[i].scanUs);
    }
    bench::note("a tighter cadence trades steady-state checkpoint traffic "
                "for a smaller scan set and shorter journal replay");

    if (!json_path.empty()) {
        std::ostringstream os;
        os << "{\n  \"tool\": \"bench_recovery\",\n  \"rows\": [";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const RunOut &r = rows[i];
            os << (i ? "," : "") << "\n    {\n"
               << "      \"checkpoint_interval\": " << kIntervals[i]
               << ",\n"
               << "      \"write_us\": " << r.writeUs << ",\n"
               << "      \"write_us_baseline\": " << off.writeUs << ",\n"
               << "      \"journal_records\": " << r.journalWrites << ",\n"
               << "      \"checkpoints\": " << r.checkpoints << ",\n"
               << "      \"oob_pages_scanned\": " << r.pagesScanned
               << ",\n"
               << "      \"checkpoint_pages_read\": " << r.ckptPagesRead
               << ",\n"
               << "      \"journal_replayed\": " << r.journalReplayed
               << ",\n"
               << "      \"mappings_rebuilt\": " << r.rebuilt << ",\n"
               << "      \"recovery_us\": " << r.scanUs << "\n    }";
        }
        os << "\n  ]\n}\n";
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 2;
        }
        out << os.str();
    }
    return obs.finish() ? 0 : 2;
}
