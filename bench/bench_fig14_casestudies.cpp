/**
 * @file
 * Reproduces Fig 14: execution-time breakdown of PIM, ISC and the
 * ParaBit schemes on the three case studies — (a) image segmentation,
 * (b) bitmap indices, (c) image encryption.
 *
 * Paper anchors at the largest configurations:
 *  (a) 200K images: ParaBit-ReAlloc+Res-Move = 37.3%/39.8% of PIM/ISC;
 *      ParaBit+Res-Move = 32.3%/34.4%; result movement cost drops to
 *      ~33-35% of operand movement; ParaBit AND is 51.7% of ReAlloc AND.
 *  (b) 800M users, m=12: PIM/ISC/ReAlloc/ParaBit AND times 353 ms /
 *      41 ms / 6137 ms / 3179 ms; ReAlloc+Res-Move = 30.8%/32.8% and
 *      ParaBit+Res-Move = 15.9%/17.0% of PIM/ISC totals.
 *  (c) 100K images: ReAlloc reduces execution time to 23.3%/25.3% of
 *      PIM/ISC.
 */

#include <string>

#include "baselines/ambit.hpp"
#include "baselines/interconnect.hpp"
#include "baselines/isc.hpp"
#include "baselines/pipeline.hpp"
#include "bench/common/report.hpp"
#include "workloads/bitmap_index.hpp"
#include "workloads/encryption.hpp"
#include "workloads/segmentation.hpp"

namespace {

using namespace parabit;
namespace bl = parabit::baselines;
using core::Mode;

struct Schemes
{
    bl::PimPipeline pim{bl::AmbitModel{}, bl::Interconnect{}};
    bl::IscPipeline isc{bl::IscModel{},
                        bl::Interconnect{
                            bl::InterconnectConfig::iscAttachment()}};
    core::CostModel cm{ssd::SsdConfig::paperSsd()};
    bl::Interconnect link{};

    bl::ParaBitPipeline
    parabit(Mode mode, bool pipelined,
            flash::LocFreeVariant variant = flash::LocFreeVariant::kMsbLsb)
    {
        return bl::ParaBitPipeline{cm, link, mode, pipelined, variant};
    }
};

void
printBreakdown(const std::string &label, const bl::Breakdown &b,
               double paper_total = -1)
{
    bench::row(label + " total", paper_total, b.totalSec);
    std::printf("%-42s   in=%.3gs compute=%.3gs out=%.3gs wb=%.3gs\n", "",
                b.moveInSec, b.computeSec, b.moveOutSec, b.writebackSec);
}

void
segmentation()
{
    bench::section("Fig 14(a): image segmentation, 200K images");
    Schemes s;
    workloads::SegmentationWorkload seg(800, 600);
    const bl::BulkWork w = seg.work(200'000);

    const bl::Breakdown pim = s.pim.run(w);
    const bl::Breakdown isc = s.isc.run(w);
    const bl::Breakdown re_seq = s.parabit(Mode::kReAllocate, false).run(w);
    const bl::Breakdown re_pipe = s.parabit(Mode::kReAllocate, true).run(w);
    const bl::Breakdown pb_seq = s.parabit(Mode::kPreAllocated, false).run(w);
    const bl::Breakdown pb_pipe = s.parabit(Mode::kPreAllocated, true).run(w);

    bench::tableHeader("scheme", "s");
    printBreakdown("PIM", pim);
    printBreakdown("ISC", isc);
    printBreakdown("ParaBit-ReAlloc", re_seq);
    printBreakdown("ParaBit-ReAlloc+Res-Move", re_pipe);
    printBreakdown("ParaBit (pre-alloc)", pb_seq);
    printBreakdown("ParaBit+Res-Move", pb_pipe);

    bench::tableHeader("paper claim", "ratio");
    bench::row("result-move / PIM operand-move", 0.333,
               pb_seq.moveOutSec / pim.moveInSec);
    bench::row("result-move / ISC operand-move", 0.350,
               pb_seq.moveOutSec / isc.moveInSec);
    bench::row("ReAlloc+Res-Move / PIM total", 0.373,
               re_pipe.totalSec / pim.totalSec);
    bench::row("ReAlloc+Res-Move / ISC total", 0.398,
               re_pipe.totalSec / isc.totalSec);
    bench::row("ParaBit+Res-Move / PIM total", 0.323,
               pb_pipe.totalSec / pim.totalSec);
    bench::row("ParaBit+Res-Move / ISC total", 0.344,
               pb_pipe.totalSec / isc.totalSec);
    bench::row("ParaBit AND / ReAlloc AND", 0.483,
               pb_seq.computeSec / re_seq.computeSec);
    bench::row("ReAlloc AND / PIM AND", 11.8,
               re_seq.computeSec / pim.computeSec);
    bench::row("ReAlloc AND / ISC AND", 24.4,
               re_seq.computeSec / isc.computeSec);
}

void
bitmap()
{
    bench::section("Fig 14(b): bitmap index, 800M users, m = 1..12");
    Schemes s;
    for (std::uint32_t m : {1u, 3u, 6u, 12u}) {
        const std::uint32_t days =
            workloads::BitmapIndexWorkload::daysForMonths(m);
        const bl::BulkWork w =
            workloads::BitmapIndexWorkload::work(800'000'000, days);
        const bool anchor = m == 12;

        const bl::Breakdown pim = s.pim.run(w);
        const bl::Breakdown isc = s.isc.run(w);
        const bl::Breakdown re = s.parabit(Mode::kReAllocate, false).run(w);
        const bl::Breakdown pb = s.parabit(Mode::kPreAllocated, false).run(w);
        const bl::Breakdown re_pipe =
            s.parabit(Mode::kReAllocate, true).run(w);
        const bl::Breakdown pb_pipe =
            s.parabit(Mode::kPreAllocated, true).run(w);

        std::printf("\n  m = %u months (%u days, %.4g GiB of bitmaps)\n", m,
                    days, bytes::toGiB(w.bytesIn));
        bench::tableHeader("scheme", "s");
        bench::row("PIM AND time", anchor ? 0.353 : -1, pim.computeSec);
        bench::row("ISC AND time", anchor ? 0.041 : -1, isc.computeSec);
        bench::row("ParaBit-ReAlloc AND time", anchor ? 6.137 : -1,
                   re.computeSec);
        bench::row("ParaBit AND time", anchor ? 3.179 : -1, pb.computeSec);
        printBreakdown("PIM", pim);
        printBreakdown("ISC", isc);
        if (anchor) {
            bench::tableHeader("paper claim", "ratio");
            bench::row("ReAlloc+Res-Move / PIM total", 0.308,
                       re_pipe.totalSec / pim.totalSec);
            bench::row("ReAlloc+Res-Move / ISC total", 0.328,
                       re_pipe.totalSec / isc.totalSec);
            bench::row("ParaBit+Res-Move / PIM total", 0.159,
                       pb_pipe.totalSec / pim.totalSec);
            bench::row("ParaBit+Res-Move / ISC total", 0.170,
                       pb_pipe.totalSec / isc.totalSec);
            bench::row("result-move / operand-move", 0.003,
                       pb_pipe.moveOutSec / pim.moveInSec);
        }
    }
}

void
encryption()
{
    bench::section("Fig 14(c): image encryption, 5K..100K images");
    Schemes s;
    workloads::EncryptionWorkload enc(800, 600);
    for (std::uint64_t n : {5'000ull, 25'000ull, 50'000ull, 100'000ull}) {
        // Baselines must write the cipher back over the link; the
        // co-located ParaBit schemes persist it via the reallocation
        // programs themselves (see workloads/encryption.hpp).
        const bl::BulkWork w_base = enc.work(n, true);
        bl::BulkWork w_pb = enc.work(n, false);
        const bool anchor = n == 100'000;

        const bl::Breakdown pim = s.pim.run(w_base);
        const bl::Breakdown isc = s.isc.run(w_base);
        const bl::Breakdown re = s.parabit(Mode::kReAllocate, true).run(w_pb);

        std::printf("\n  %llu images (%.4g GiB)\n",
                    static_cast<unsigned long long>(n),
                    bytes::toGiB(w_base.bytesIn));
        bench::tableHeader("scheme", "s");
        printBreakdown("PIM (move+XOR+writeback)", pim);
        printBreakdown("ISC (move+XOR+writeback)", isc);
        printBreakdown("ParaBit / ParaBit-ReAlloc", re);
        if (anchor) {
            bench::tableHeader("paper claim", "ratio");
            bench::row("ReAlloc / PIM total", 0.233,
                       re.totalSec / pim.totalSec);
            bench::row("ReAlloc / ISC total", 0.253,
                       re.totalSec / isc.totalSec);
            bench::row("PIM XOR share of PIM total", -1,
                       pim.computeSec / pim.totalSec);
            bench::note("paper: XOR takes <3.5% of PIM and <0.21% of ISC "
                        "time; both schemes are movement-bound");
        }
    }
}

} // namespace

int
main()
{
    bench::banner("Fig 14: case-study execution time breakdowns");
    segmentation();
    bitmap();
    encryption();
    return 0;
}
