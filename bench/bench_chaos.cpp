/**
 * @file
 * Chaos / graceful-degradation benchmark: seeded correlated fault
 * storms through the full NVMe queue path, with the health state
 * machine, bounded retries, and the admission controller armed.
 *
 * Each seeded run replays the chaos-soak shape (baseline -> storm ->
 * recovery) and reports how the device degraded and came back: health
 * transitions taken, deepest state reached, commands shed / timed out /
 * requeued / write-rejected, quiet rounds until the machine returned to
 * healthy, and — the hard acceptance bar — commands lost (a cid handed
 * to the host that never reached a terminal completion; must be zero).
 *
 * `--json FILE` writes the machine-readable report (the CI trajectory
 * file `BENCH_degradation.json`).  `--trace-out FILE` re-runs one seed
 * with the Perfetto sink attached so the health state spans and
 * per-command async spans land in the trace.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common/obs_args.hpp"
#include "bench/common/report.hpp"
#include "common/rng.hpp"
#include "parabit/host_interface.hpp"
#include "ssd/fault_injector.hpp"
#include "ssd/health.hpp"

namespace {

using namespace parabit;
using core::HostInterface;

constexpr std::uint16_t kQueues = 2;
constexpr std::uint16_t kDepth = 16;
constexpr int kPreloadedLpns = 16;

ssd::SsdConfig
chaosCfg(std::uint64_t audit_interval)
{
    ssd::SsdConfig cfg = ssd::SsdConfig::tiny();
    cfg.invariants.auditInterval = audit_interval;
    cfg.media.enabled = true;
    cfg.media.scrubInterval = ticks::fromUs(2);
    cfg.media.scrubWordlinesPerPass = 16;
    cfg.rain.enabled = true;
    cfg.health.enabled = true;
    cfg.health.degradedThreshold = 4.0;
    cfg.health.readOnlyThreshold = 12.0;
    cfg.health.failedThreshold = 1e9; // a storm degrades, never kills
    cfg.health.pressureHalfLife = ticks::fromMs(2);
    cfg.health.minDwell = ticks::fromUs(200);
    cfg.health.weightRetiredBlock = 4.0; // 8 blocks/plane: each one hurts
    return cfg;
}

std::vector<BitVector>
seededPages(const ssd::SsdConfig &cfg, int n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitVector> out;
    for (int p = 0; p < n; ++p) {
        BitVector v(cfg.geometry.pageBits());
        for (auto &w : v.words())
            w = rng.next();
        v.maskTail();
        out.push_back(std::move(v));
    }
    return out;
}

struct RunOut
{
    double submitted = 0;    ///< cids handed to the host
    double lost = 0;         ///< cids never reaching a completion (bar: 0)
    double sheds = 0;        ///< admission-shed completions
    double timeouts = 0;     ///< watchdog aborts
    double requeues = 0;     ///< bounded-retry resubmissions
    double writeRejects = 0; ///< writes bounced in read-only
    double transitions = 0;  ///< health state changes
    double maxState = 0;     ///< deepest state reached (1 = degraded)
    double quietRounds = 0;  ///< recovery rounds back to healthy
    double wallSec = 0;
    bool recovered = false;  ///< ended healthy
    bool monotone = false;   ///< every transition moved exactly one step
};

RunOut
run(std::uint64_t seed, std::uint64_t audit_interval)
{
    const auto t0 = std::chrono::steady_clock::now();
    const ssd::SsdConfig cfg = chaosCfg(audit_interval);
    core::ParaBitDevice dev(cfg);
    dev.writeData(0, seededPages(cfg, kPreloadedLpns, seed));

    HostInterface host(dev, kQueues, kDepth, core::Mode::kReAllocate);
    core::RetryPolicy rp;
    rp.commandTimeout = ticks::fromMs(2);
    rp.maxRequeues = 2;
    rp.backoffBase = ticks::fromUs(50);
    rp.jitterSeed = seed;
    host.setRetryPolicy(rp);
    host.setAdmissionLimit(12);

    ssd::DeviceHealth *health = dev.ssd().health();
    Rng rng(seed ^ 0xC4A05ull);
    std::set<std::uint16_t> submitted[kQueues];
    std::set<std::uint16_t> reaped[kQueues];

    const auto drainAll = [&] {
        host.pump();
        for (std::uint16_t q = 0; q < kQueues; ++q)
            while (const auto c = host.reap(q))
                reaped[q].insert(c->cid);
    };
    const auto submitSome = [&](int n) {
        for (int i = 0; i < n; ++i) {
            const auto q = static_cast<std::uint16_t>(rng.below(kQueues));
            const std::uint64_t roll = rng.below(100);
            std::optional<std::uint16_t> cid;
            if (roll < 45) {
                cid = host.submitWrite(
                    q, static_cast<nvme::Lpn>(rng.below(32)));
            } else if (roll < 80) {
                cid = host.submitRead(
                    q, static_cast<nvme::Lpn>(rng.below(kPreloadedLpns)));
            } else if (roll < 90) {
                nvme::Formula f;
                const auto a = static_cast<nvme::Lpn>(rng.below(8));
                f.terms.push_back(nvme::Formula::Term{
                    nvme::OperandRef::logical(a, 1),
                    nvme::OperandRef::logical(a + 8, 1),
                    flash::BitwiseOp::kXor});
                cid = host.submitFormula(q, f);
            } else {
                cid = host.submitFlush(q);
            }
            if (cid)
                submitted[q].insert(*cid);
        }
    };

    // Baseline, storm (seeded bursts + one always-failing plane), calm.
    for (int round = 0; round < 4; ++round) {
        submitSome(8);
        drainAll();
    }
    for (const ssd::FaultSpec &f : ssd::FaultInjector::stormSchedule(
             cfg.geometry, seed, ssd::StormConfig{}))
        dev.ssd().injectFault(f);
    ssd::FaultSpec hot;
    hot.cls = ssd::FaultClass::kProgramFailure;
    hot.plane = static_cast<ssd::PlaneIndex>(
        rng.below(cfg.geometry.planesTotal()));
    hot.failPeriod = 1;
    dev.ssd().injectFault(hot);
    for (int round = 0; round < 12; ++round) {
        submitSome(12);
        drainAll();
    }
    dev.ssd().clearTransientFaults();

    RunOut out;
    int quiet = 0;
    for (; health->state() != ssd::HealthState::kHealthy && quiet < 500;
         ++quiet) {
        if (const auto cid = host.submitRead(
                0, static_cast<nvme::Lpn>(rng.below(kPreloadedLpns))))
            submitted[0].insert(*cid);
        if (const auto cid = host.submitFlush(1))
            submitted[1].insert(*cid);
        drainAll();
    }
    drainAll();

    for (std::uint16_t q = 0; q < kQueues; ++q) {
        out.submitted += static_cast<double>(submitted[q].size());
        for (const std::uint16_t cid : submitted[q])
            if (reaped[q].count(cid) == 0)
                ++out.lost;
    }
    out.sheds = static_cast<double>(host.sheds());
    out.timeouts = static_cast<double>(host.timeouts());
    out.requeues = static_cast<double>(host.requeues());
    out.writeRejects = static_cast<double>(host.writeRejects());
    out.transitions = static_cast<double>(health->transitions().size());
    out.maxState = static_cast<double>(
        static_cast<std::uint8_t>(health->maxState()));
    out.quietRounds = quiet;
    out.recovered = health->state() == ssd::HealthState::kHealthy;
    out.monotone = true;
    for (const ssd::HealthTransition &t : health->transitions()) {
        const int step = static_cast<int>(t.to) - static_cast<int>(t.from);
        out.monotone = out.monotone && (step == 1 || step == -1) &&
                       !t.powerLost;
    }
    out.wallSec = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    std::uint64_t seeds = 16;
    bench::ObsOptions obs;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--seeds" && i + 1 < argc) {
            seeds = std::strtoull(argv[++i], nullptr, 10);
        } else if (obs.consume(argc, argv, i)) {
            continue;
        } else {
            std::fprintf(stderr, "usage: %s [--json FILE] [--seeds N]\n%s\n",
                         argv[0], bench::ObsOptions::help());
            return 2;
        }
    }
    obs.enableMetrics(); // before any device is constructed

    bench::banner("chaos storms: health machine + admission control + "
                  "bounded retries");

    std::vector<RunOut> rows;
    RunOut sum;
    sum.recovered = true;
    sum.monotone = true;
    double deepest = 0;
    for (std::uint64_t s = 0; s < seeds; ++s) {
        const RunOut r = run(s, obs.auditInterval);
        rows.push_back(r);
        sum.submitted += r.submitted;
        sum.lost += r.lost;
        sum.sheds += r.sheds;
        sum.timeouts += r.timeouts;
        sum.requeues += r.requeues;
        sum.writeRejects += r.writeRejects;
        sum.transitions += r.transitions;
        sum.quietRounds += r.quietRounds;
        sum.wallSec += r.wallSec;
        sum.recovered = sum.recovered && r.recovered;
        sum.monotone = sum.monotone && r.monotone;
        deepest = std::max(deepest, r.maxState);
    }

    bench::section("per-seed runs");
    std::printf("%-6s %9s %6s %6s %8s %8s %8s %7s %6s %9s\n", "seed",
                "submit", "lost", "shed", "timeout", "requeue", "wrrej",
                "transit", "depth", "recovery");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const RunOut &r = rows[i];
        std::printf("%-6zu %9.0f %6.0f %6.0f %8.0f %8.0f %8.0f %7.0f "
                    "%6.0f %9.0f\n",
                    i, r.submitted, r.lost, r.sheds, r.timeouts,
                    r.requeues, r.writeRejects, r.transitions, r.maxState,
                    r.quietRounds);
    }

    bench::section("aggregate");
    std::printf("  commands submitted              %12.0f\n", sum.submitted);
    std::printf("  commands lost (bar: 0)          %12.0f\n", sum.lost);
    std::printf("  admission sheds                 %12.0f\n", sum.sheds);
    std::printf("  watchdog timeouts               %12.0f\n", sum.timeouts);
    std::printf("  bounded requeues                %12.0f\n", sum.requeues);
    std::printf("  read-only write rejects         %12.0f\n",
                sum.writeRejects);
    std::printf("  health transitions              %12.0f\n",
                sum.transitions);
    std::printf("  deepest state reached           %12.0f\n", deepest);
    std::printf("  all transitions one-step        %12s\n",
                sum.monotone ? "yes" : "NO");
    std::printf("  all seeds recovered healthy     %12s\n",
                sum.recovered ? "yes" : "NO");
    bench::note("depth: 1 = degraded, 2 = read-only; recovery = quiet "
                "rounds until the machine stepped back to healthy; the "
                "acceptance bar is zero lost commands, one-step "
                "transitions, and full recovery");

    if (!json_path.empty()) {
        std::ostringstream os;
        os << "{\n  \"schema_version\": 1,\n"
           << "  \"tool\": \"bench_chaos\",\n"
           << "  \"config\": {\"seeds\": " << seeds
           << ", \"queues\": " << kQueues << ", \"depth\": " << kDepth
           << ", \"preloaded_lpns\": " << kPreloadedLpns
           << ", \"audit_interval\": " << obs.auditInterval << "},\n"
           << "  \"seeds\": " << seeds << ",\n"
           << "  \"commands_submitted\": " << sum.submitted << ",\n"
           << "  \"commands_lost\": " << sum.lost << ",\n"
           << "  \"admission_sheds\": " << sum.sheds << ",\n"
           << "  \"watchdog_timeouts\": " << sum.timeouts << ",\n"
           << "  \"bounded_requeues\": " << sum.requeues << ",\n"
           << "  \"readonly_write_rejects\": " << sum.writeRejects << ",\n"
           << "  \"health_transitions\": " << sum.transitions << ",\n"
           << "  \"deepest_state\": " << deepest << ",\n"
           << "  \"all_transitions_one_step\": "
           << (sum.monotone ? "true" : "false") << ",\n"
           << "  \"all_recovered\": "
           << (sum.recovered ? "true" : "false") << ",\n  \"rows\": [";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const RunOut &r = rows[i];
            os << (i ? "," : "") << "\n    {\n"
               << "      \"seed\": " << i << ",\n"
               << "      \"submitted\": " << r.submitted << ",\n"
               << "      \"lost\": " << r.lost << ",\n"
               << "      \"sheds\": " << r.sheds << ",\n"
               << "      \"timeouts\": " << r.timeouts << ",\n"
               << "      \"requeues\": " << r.requeues << ",\n"
               << "      \"write_rejects\": " << r.writeRejects << ",\n"
               << "      \"transitions\": " << r.transitions << ",\n"
               << "      \"max_state\": " << r.maxState << ",\n"
               << "      \"quiet_rounds\": " << r.quietRounds << ",\n"
               << "      \"recovered\": "
               << (r.recovered ? "true" : "false") << ",\n"
               << "      \"wall_sec\": " << r.wallSec << "\n    }";
        }
        os << "\n  ]\n}\n";
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 2;
        }
        out << os.str();
    }

    // One extra traced run so the health state spans and per-command
    // async spans land in the Perfetto file.
    if (obs.traceWanted()) {
        obs::TraceSink::enableGlobal();
        (void)run(0, obs.auditInterval);
    }

    const int bad =
        sum.lost > 0 || !sum.recovered || !sum.monotone || deepest < 1;
    return obs.finish() && !bad ? 0 : 1;
}
