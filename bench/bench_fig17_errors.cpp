/**
 * @file
 * Reproduces Fig 17: sensing-error behaviour with P/E cycling.
 * Left: average and maximum bit errors per 8 KB wordline after the
 * seven sensings of a location-free XOR, over P/E 0..5K.
 * Right: application-level bit-error percentages for the three case
 * studies at 5K P/E.
 *
 * Paper anchors at 5K P/E: mean 0.945 errors per wordline, max 5; the
 * worst application-level rate is 0.00149% (XOR-based encryption).
 *
 * This is a Monte-Carlo experiment over the full circuit model: each
 * sample programs random operand pages into a chip whose blocks were
 * cycled to the target P/E count, runs the location-free XOR program
 * with error injection at every SRO, and counts output bits that differ
 * from the clean execution.
 *
 * `--wear` appends an opt-in section sampling the same experiment with
 * the read-disturb / retention-aware ErrorModel active (neighbor senses
 * and simulated shelf time elevate the per-sensing RBER).  The default
 * output stays byte-identical to the pinned paper figure: the wear
 * factors default to zero.
 */

#include <algorithm>
#include <cstring>

#include "bench/common/report.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "flash/chip.hpp"

namespace {

using namespace parabit;
using namespace parabit::flash;

struct WlErrors
{
    double mean;
    double maxv;
};

/**
 * Sample @p trials wordline XOR executions at @p pe cycles.
 *
 * @param emc error-model parameters (the default has the disturb and
 *        retention factors at zero — the pinned paper model).
 * @param stress_reads patrol-style reads of each operand before the
 *        op, charging neighbor-wordline disturb into the pair.
 * @param age_hours simulated shelf time between program and the op
 *        (retention leakage).
 */
WlErrors
sampleWordlines(std::uint32_t pe, int trials, std::uint64_t seed,
                const ErrorModelConfig &emc = {}, int stress_reads = 0,
                double age_hours = 0.0)
{
    // One wordline = one 8 KB page pair; use a single-plane geometry
    // with 64 Kib pages to match the paper's 8 KB WL accounting.
    FlashGeometry g;
    g.channels = 1;
    g.chipsPerChannel = 1;
    g.diesPerChip = 1;
    g.planesPerDie = 1;
    g.blocksPerPlane = 4;
    g.wordlinesPerBlock = 64;
    g.pageBytes = 8 * bytes::kKiB;

    ScalarStat stat;
    Rng rng(seed);
    Chip chip(g, true, emc, seed);
    // Shelf time via the accelerated-aging hook (the kRetentionLoss
    // mechanism): one second of chip clock per trial scales to
    // age_hours of retention, so 2000 trials of month-long shelf time
    // cannot overflow the picosecond tick.
    if (age_hours > 0.0) {
        ChipFaultHooks hooks;
        hooks.retentionMultiplier = [age_hours](const ChipPageAddr &) {
            return age_hours * 3600.0;
        };
        chip.setFaultHooks(hooks);
    }
    Tick clk = 0;

    // Age block 0 to the requested P/E count (one below: the per-batch
    // refresh erase below brings it to exactly pe).
    for (std::uint32_t e = 0; e + 1 < pe; ++e)
        chip.eraseBlock(0, 0, 0);

    // 32 operand pairs fit per erase cycle, so the P/E drift across the
    // whole experiment is trials/32 cycles — negligible against pe.
    const std::uint32_t pairs_per_cycle = g.wordlinesPerBlock / 2;
    std::uint32_t slot = pairs_per_cycle; // force an initial erase
    for (int t = 0; t < trials; ++t) {
        if (slot == pairs_per_cycle) {
            chip.eraseBlock(0, 0, 0);
            slot = 0;
        }
        BitVector m(g.pageBits()), n(g.pageBits());
        for (std::size_t i = 0; i < m.size(); ++i) {
            m.set(i, rng.chance(0.5));
            n.set(i, rng.chance(0.5));
        }
        const std::uint32_t wl_m = 2 * slot;
        const std::uint32_t wl_n = 2 * slot + 1;
        ++slot;
        chip.programPage({0, 0, 0, wl_m, true}, &m);  // operand M in MSB
        chip.programPage({0, 0, 0, wl_n, false}, &n); // operand N in LSB
        for (int r = 0; r < stress_reads; ++r) {
            (void)chip.readPage({0, 0, 0, wl_m, true});
            (void)chip.readPage({0, 0, 0, wl_n, false});
        }
        if (age_hours > 0.0) {
            clk += ticks::fromSec(1.0);
            chip.setNow(clk);
        }
        int errors = 0;
        chip.opLocationFree(BitwiseOp::kXor, {0, 0, 0, wl_m, true},
                            {0, 0, 0, wl_n, false}, &errors);
        stat.sample(errors);
    }
    return WlErrors{stat.mean(), stat.max()};
}

} // namespace

int
main(int argc, char **argv)
{
    bool wear = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--wear") == 0) {
            wear = true;
        } else {
            std::fprintf(stderr, "usage: %s [--wear]\n", argv[0]);
            return 2;
        }
    }
    bench::banner("Fig 17: bit errors vs P/E cycling");

    bench::section("left: errors per 8KB wordline after 7 XOR sensings");
    std::printf("%-10s %12s %12s %12s %12s\n", "P/E", "paper-avg",
                "ours-avg", "paper-max", "ours-max");
    const int trials = 4000;
    double avg_5k = 0;
    for (std::uint32_t pe : {0u, 1000u, 2000u, 3000u, 4000u, 5000u}) {
        const WlErrors e = sampleWordlines(pe, trials, 1234 + pe);
        const bool anchor = pe == 5000;
        if (anchor)
            avg_5k = e.mean;
        std::printf("%-10u %12s %12.4f %12s %12.0f\n", pe,
                    anchor ? "0.945" : "-", e.mean, anchor ? "5" : "-",
                    e.maxv);
    }

    bench::section("right: application-level bit-error percentage at 5K "
                   "P/E");
    // Application rate = mean wordline errors / bits per wordline page,
    // scaled by each workload's sensing count relative to XOR's seven.
    const double bits_per_wl = 8.0 * 1024 * 8;
    const double xor_rate = avg_5k / bits_per_wl * 100.0;
    const double per_sense = xor_rate / 7.0;
    bench::tableHeader("case study", "%");
    bench::row("image encryption (XOR, 7 sensings)", 0.00149, xor_rate);
    bench::row("bitmap index (AND, 3 sensings)", -1, per_sense * 3);
    bench::row("image segmentation (AND chain)", -1, per_sense * 3);
    bench::note("the paper reports 0.00149% worst case for XOR-based "
                "encryption; AND-based workloads sense fewer times and "
                "fare better");

    if (wear) {
        // Opt-in disturb/retention model: the same XOR experiment at
        // 5K P/E with patrol-style neighbor reads charged before the
        // op, and with a month of simulated shelf time.
        bench::section("opt-in wear model at 5K P/E (--wear)");
        ErrorModelConfig aged;
        aged.readDisturbFactor = 1e-3; // +0.1% RBER per neighbor sense
        aged.retentionPerHour = 5e-3;  // +0.5% RBER per shelf hour
        const int wtrials = 2000;
        const WlErrors nom = sampleWordlines(5000, wtrials, 777);
        const WlErrors dis =
            sampleWordlines(5000, wtrials, 777, aged, 200, 0.0);
        const WlErrors ret =
            sampleWordlines(5000, wtrials, 777, aged, 200, 720.0);
        std::printf("%-38s %12s %12s\n", "condition", "avg/WL", "max/WL");
        std::printf("%-38s %12.4f %12.0f\n", "nominal (P/E only)",
                    nom.mean, nom.maxv);
        std::printf("%-38s %12.4f %12.0f\n",
                    "+ read disturb (200 patrol reads)", dis.mean,
                    dis.maxv);
        std::printf("%-38s %12.4f %12.0f\n",
                    "+ 30-day retention on top", ret.mean, ret.maxv);
        bench::note("readDisturbFactor/retentionPerHour default to zero, "
                    "so the paper-figure tables above are byte-identical "
                    "without --wear; the patrol scrubber exists to "
                    "refresh wordlines before this growth compounds");
    }
    return 0;
}
