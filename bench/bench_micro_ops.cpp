/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's hot paths: the
 * vectorized latch-array execution (bits computed per second through the
 * full circuit model), FTL write/GC throughput, and the event-engine
 * scheduling rate.  These measure the *simulator's* host performance,
 * complementing the figure benches that report *simulated* device time.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "flash/latch_array.hpp"
#include "parabit/device.hpp"
#include "ssd/event_engine.hpp"

namespace {

using namespace parabit;

BitVector
randomBits(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    BitVector v(n);
    for (auto &w : v.words())
        w = rng.next();
    v.maskTail();
    return v;
}

void
BM_LatchArrayCoLocated(benchmark::State &state)
{
    const auto op = static_cast<flash::BitwiseOp>(state.range(0));
    const std::size_t bits = 8 * 1024 * 8; // one 8 KB page
    const BitVector x = randomBits(bits, 1);
    const BitVector y = randomBits(bits, 2);
    flash::LatchArray la(bits);
    for (auto _ : state) {
        la.execute(flash::coLocatedProgram(op),
                   flash::WordlineData{&x, &y});
        benchmark::DoNotOptimize(la.out().words().data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(bits / 8));
}
BENCHMARK(BM_LatchArrayCoLocated)
    ->Arg(static_cast<int>(flash::BitwiseOp::kAnd))
    ->Arg(static_cast<int>(flash::BitwiseOp::kXor))
    ->Arg(static_cast<int>(flash::BitwiseOp::kXnor));

void
BM_LatchArrayLocationFree(benchmark::State &state)
{
    const std::size_t bits = 8 * 1024 * 8;
    const BitVector m = randomBits(bits, 3);
    const BitVector n = randomBits(bits, 4);
    for (auto _ : state) {
        BitVector out =
            flash::executeLocationFree(flash::BitwiseOp::kXor, m, n);
        benchmark::DoNotOptimize(out.words().data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(bits / 8));
}
BENCHMARK(BM_LatchArrayLocationFree);

void
BM_FtlWritePath(benchmark::State &state)
{
    ssd::SsdConfig cfg = ssd::SsdConfig::tiny();
    cfg.storeData = false;
    core::ParaBitDevice dev(cfg);
    std::uint64_t lpn = 0;
    const std::uint64_t span = dev.ssd().ftl().logicalPages() / 2;
    for (auto _ : state) {
        dev.writeMeta(lpn % span, 1);
        ++lpn;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FtlWritePath);

void
BM_ParaBitOpEndToEnd(benchmark::State &state)
{
    ssd::SsdConfig cfg = ssd::SsdConfig::tiny();
    core::ParaBitDevice dev(cfg);
    const std::size_t bits = cfg.geometry.pageBits();
    std::vector<BitVector> x{randomBits(bits, 5)}, y{randomBits(bits, 6)};
    dev.writeData(0, x);
    dev.writeData(100, y);
    for (auto _ : state) {
        auto r = dev.bitwise(flash::BitwiseOp::kAnd, 0, 100, 1,
                             core::Mode::kReAllocate);
        benchmark::DoNotOptimize(r.stats.senseOps);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ParaBitOpEndToEnd);

void
BM_EventEngineThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        ssd::EventEngine e;
        int acc = 0;
        for (int i = 0; i < 1000; ++i)
            e.schedule(static_cast<Tick>(i * 7 % 997), [&acc] { ++acc; });
        e.run();
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            1000);
}
BENCHMARK(BM_EventEngineThroughput);

} // namespace

BENCHMARK_MAIN();
