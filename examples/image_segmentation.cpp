/**
 * @file
 * Image-segmentation example (the paper's Section 3 motivation): store
 * pre-processed YUV class planes in flash and recognise colours with
 * in-flash AND chains, comparing every mask against the host golden
 * model and printing per-mode timing.
 *
 * Build & run:  ./build/examples/image_segmentation
 */

#include <cstdio>

#include "parabit/device.hpp"
#include "workloads/segmentation.hpp"

namespace {

using namespace parabit;

std::vector<BitVector>
toPages(const BitVector &bits, std::size_t page_bits)
{
    std::vector<BitVector> pages;
    for (std::size_t pos = 0; pos < bits.size(); pos += page_bits) {
        const std::size_t len = std::min(page_bits, bits.size() - pos);
        BitVector page(page_bits);
        page.assign(0, bits.slice(pos, len));
        pages.push_back(std::move(page));
    }
    return pages;
}

} // namespace

int
main()
{
    core::ParaBitDevice dev(ssd::SsdConfig::tiny());
    const std::size_t page_bits = dev.ssd().geometry().pageBits();

    // Small images so several fit in the tiny device; the computation
    // structure is identical at any scale.
    workloads::SegmentationWorkload seg(64, 48);
    std::printf("image: 64x48, %zu colour classes, class planes %llu B "
                "per channel per image\n",
                seg.colors().size(),
                static_cast<unsigned long long>(seg.generator().pixels() /
                                                8));

    for (std::size_t color = 0; color < seg.colors().size(); ++color) {
        // Write the three channel class planes LSB-only, then AND them.
        const auto y = toPages(seg.plane(0, 0, color), page_bits);
        const auto u = toPages(seg.plane(0, 1, color), page_bits);
        const auto v = toPages(seg.plane(0, 2, color), page_bits);
        const auto pages = static_cast<std::uint32_t>(y.size());
        const nvme::Lpn base = 1000 * static_cast<nvme::Lpn>(color);
        dev.writeDataLsbOnly(base + 0, y);
        dev.writeDataLsbOnly(base + 100, u);
        dev.writeDataLsbOnly(base + 200, v);

        const core::ExecResult r =
            dev.bitwiseChain(flash::BitwiseOp::kAnd,
                             {base + 0, base + 100, base + 200}, pages,
                             core::Mode::kPreAllocated);

        // Reassemble the mask and check against the golden model.
        BitVector mask(seg.generator().pixels());
        std::size_t pos = 0;
        for (const auto &p : r.pages) {
            const std::size_t len = std::min(p.size(), mask.size() - pos);
            mask.assign(pos, p.slice(0, len));
            pos += len;
            if (pos >= mask.size())
                break;
        }
        const BitVector golden = seg.golden(0, color);
        std::printf("colour %-7s matched pixels: %6zu / %zu, in-flash "
                    "time %.1f us, correct: %s\n",
                    seg.colors()[color].name.c_str(), mask.popcount(),
                    mask.size(), ticks::toUs(r.stats.elapsed()),
                    mask == golden ? "yes" : "NO");
    }

    std::printf("\nonly the (pixels/8)-byte masks would cross the host "
                "interface — the class planes never leave the SSD\n");
    return 0;
}
