/**
 * @file
 * Deduplication example (paper Section 5.3.4): verify fingerprint-index
 * candidate pairs with in-flash XOR — only a per-pair verdict crosses
 * the host interface instead of both candidate pages.
 *
 * Build & run:  ./build/examples/deduplication
 */

#include <cstdio>

#include "parabit/device.hpp"
#include "workloads/dedup.hpp"

int
main()
{
    using namespace parabit;

    core::ParaBitDevice dev(ssd::SsdConfig::tiny());
    const std::size_t page_bits = dev.ssd().geometry().pageBits();

    workloads::DedupWorkload corpus(60, page_bits, /*dup_ratio=*/0.35,
                                    /*collision_ratio=*/0.3);
    std::printf("corpus: %llu pages of %zu bits, %zu candidate pairs from "
                "the fingerprint index\n",
                static_cast<unsigned long long>(corpus.pages()), page_bits,
                corpus.candidates().size());

    for (std::uint64_t i = 0; i < corpus.pages(); ++i)
        dev.writeDataLsbOnly(i, {corpus.page(i)});

    int verified = 0, confirmed = 0, rejected = 0, wrong = 0;
    Tick in_flash = 0;
    for (const auto &c : corpus.candidates()) {
        const core::ExecResult r =
            dev.bitwise(flash::BitwiseOp::kXor, c.pageA, c.pageB, 1,
                        core::Mode::kReAllocate,
                        /*transfer_results=*/false);
        const bool is_dup = r.pages[0].popcount() == 0;
        in_flash += r.stats.elapsed();
        ++verified;
        if (is_dup != c.trulyDuplicate)
            ++wrong;
        else if (is_dup)
            ++confirmed;
        else
            ++rejected;
    }

    std::printf("verified %d pairs in-flash: %d duplicates confirmed, %d "
                "fingerprint collisions rejected, %d wrong verdicts\n",
                verified, confirmed, rejected, wrong);
    std::printf("in-flash time: %.2f ms; host traffic: %d verdict bytes "
                "instead of %llu page bytes\n",
                ticks::toMs(in_flash), verified,
                static_cast<unsigned long long>(2ull * verified *
                                                page_bits / 8));
    return wrong == 0 ? 0 : 1;
}
