/**
 * @file
 * Bitmap-index analytics example (the paper's Section 5.3.2 case
 * study): daily user-activity bitmaps live in flash; the query "users
 * active every day" folds an AND chain inside the SSD and returns only
 * the final bitmap for the host-side population count.
 *
 * Compares all three ParaBit execution schemes on the same query and
 * prints their simulated in-flash times alongside the verified count.
 *
 * Build & run:  ./build/examples/bitmap_analytics
 */

#include <cstdio>

#include "parabit/device.hpp"
#include "workloads/bitmap_index.hpp"

int
main()
{
    using namespace parabit;

    const std::uint32_t days = 10;
    core::ParaBitDevice dev(ssd::SsdConfig::tiny());
    const std::size_t page_bits = dev.ssd().geometry().pageBits();
    const std::uint64_t users = page_bits; // one page per daily bitmap

    workloads::BitmapIndexWorkload bw(users, days, /*p_active=*/0.9);
    std::printf("%llu users, %u days, activity probability 0.9\n",
                static_cast<unsigned long long>(users), days);

    // Load the daily bitmaps LSB-only (paper Section 5.5 layout) into
    // one plane: the free MSB pages later receive chained intermediate
    // results, and sharing bitlines lets location-free mode sense
    // across the bitmaps with no reallocation.
    std::vector<nvme::Lpn> lpns;
    for (std::uint32_t d = 0; d < days; ++d) {
        BitVector page(page_bits);
        page.assign(0, bw.dayBitmap(d));
        dev.writeDataLsbOnlyInPlane(20 * d, {page}, 0);
        lpns.push_back(20 * d);
    }

    const std::uint64_t golden = bw.goldenCount();
    std::printf("golden everyday-active count: %llu\n\n",
                static_cast<unsigned long long>(golden));

    for (core::Mode mode :
         {core::Mode::kPreAllocated, core::Mode::kReAllocate,
          core::Mode::kLocationFree}) {
        const core::ExecResult r =
            dev.bitwiseChain(flash::BitwiseOp::kAnd, lpns, 1, mode);
        const std::uint64_t count = r.pages[0].popcount();
        std::printf("%-18s count=%llu (%s)  in-flash %.1f us, "
                    "%llu sensings, %llu programs, realloc %llu B\n",
                    core::modeName(mode),
                    static_cast<unsigned long long>(count),
                    count == golden ? "correct" : "WRONG",
                    ticks::toUs(r.stats.elapsed()),
                    static_cast<unsigned long long>(r.stats.senseOps),
                    static_cast<unsigned long long>(r.stats.pagePrograms),
                    static_cast<unsigned long long>(r.stats.reallocBytes));
    }

    std::printf("\nonly %llu bytes of result cross the host interface "
                "instead of %llu bytes of daily bitmaps\n",
                static_cast<unsigned long long>(page_bits / 8),
                static_cast<unsigned long long>(days * page_bits / 8));
    return 0;
}
