/**
 * @file
 * Quickstart: create a simulated ParaBit SSD, store two operand
 * vectors, compute AND / XOR / NOT inside the flash array, and inspect
 * the timing/energy instrumentation.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "parabit/device.hpp"

int
main()
{
    using namespace parabit;

    // A small functional device: pages carry real data.
    core::ParaBitDevice dev(ssd::SsdConfig::tiny());
    const std::size_t page_bits = dev.ssd().geometry().pageBits();

    // Two operand pages with a readable pattern.
    BitVector x(page_bits), y(page_bits);
    for (std::size_t i = 0; i < page_bits; ++i) {
        x.set(i, (i / 3) % 2 == 0);
        y.set(i, (i / 5) % 2 == 0);
    }

    // Pre-allocate the operands onto the same wordlines (the paper's
    // pre-computation allocation): the AND then needs a single 25 us
    // sensing, no data movement at all.
    dev.writeOperandPair(/*x_lpn=*/0, /*y_lpn=*/100, {x}, {y});

    core::ExecResult r = dev.bitwise(flash::BitwiseOp::kAnd, 0, 100, 1,
                                     core::Mode::kPreAllocated);
    std::printf("AND: %zu result bits, %llu sensings, %.1f us in-flash\n",
                r.pages[0].size(),
                static_cast<unsigned long long>(r.stats.senseOps),
                ticks::toUs(r.stats.elapsed()));
    std::printf("     correct: %s\n",
                r.pages[0] == (x & y) ? "yes" : "NO");

    // Location-free XOR: operands on different wordlines, no
    // reallocation; the extended latch circuit senses across wordlines.
    // Same plane = same bitlines: the location-free requirement.
    dev.writeDataLsbOnlyInPlane(200, {x}, 0);
    dev.writeDataLsbOnlyInPlane(300, {y}, 0);
    r = dev.bitwise(flash::BitwiseOp::kXor, 200, 300, 1,
                    core::Mode::kLocationFree);
    std::printf("XOR (location-free): %llu sensings, %.1f us, correct: "
                "%s\n",
                static_cast<unsigned long long>(r.stats.senseOps),
                ticks::toUs(r.stats.elapsed()),
                r.pages[0] == (x ^ y) ? "yes" : "NO");

    // Unary NOT needs no second operand and no reallocation.
    r = dev.bitwiseNot(200, 1, core::Mode::kPreAllocated);
    std::printf("NOT: %.1f us, correct: %s\n",
                ticks::toUs(r.stats.elapsed()),
                r.pages[0] == ~x ? "yes" : "NO");

    // Device-level accounting.
    const auto e = dev.ssd().endurance();
    std::printf("device: host %llu B, realloc %llu B, WAF %.3f\n",
                static_cast<unsigned long long>(e.hostBytes),
                static_cast<unsigned long long>(e.reallocBytes),
                e.writeAmplification());
    return 0;
}
