/**
 * @file
 * Image-encryption example (the paper's Section 5.3.3 case study):
 * XOR-encrypt images against a key image entirely inside the SSD, write
 * the ciphertext back to flash, then decrypt in-flash and verify the
 * round trip.  Demonstrates the NVMe command encoding path as well: the
 * formula travels through CmdParser::encode/parse as it would over a
 * real NVMe queue (paper Figs 10-12).
 *
 * Build & run:  ./build/examples/image_encryption
 */

#include <cstdio>

#include "nvme/parser.hpp"
#include "parabit/device.hpp"
#include "workloads/encryption.hpp"

namespace {

using namespace parabit;

std::vector<BitVector>
toPages(const BitVector &bits, std::size_t page_bits)
{
    std::vector<BitVector> pages;
    for (std::size_t pos = 0; pos < bits.size(); pos += page_bits) {
        const std::size_t len = std::min(page_bits, bits.size() - pos);
        BitVector page(page_bits);
        page.assign(0, bits.slice(pos, len));
        pages.push_back(std::move(page));
    }
    return pages;
}

} // namespace

int
main()
{
    core::ParaBitDevice dev(ssd::SsdConfig::tiny());
    const std::size_t page_bits = dev.ssd().geometry().pageBits();

    workloads::EncryptionWorkload enc(16, 16); // 6144-bit images
    const auto img = toPages(enc.imageBits(0), page_bits);
    const auto key = toPages(enc.keyBits(), page_bits);
    const auto pages = static_cast<std::uint32_t>(img.size());
    std::printf("image: 16x16x24bpp = %zu bits in %u flash pages\n",
                enc.imageBits(0).size(), pages);

    dev.writeDataLsbOnly(0, img);   // plaintext
    dev.writeDataLsbOnly(100, key); // key image

    // Encode the encryption formula as NVMe commands and parse it back
    // device-side — the wire path of paper Figs 10-11.
    nvme::CmdParser parser(dev.ssd().geometry().pageBytes);
    const nvme::Formula formula =
        nvme::Formula::chain(flash::BitwiseOp::kXor, {0, 100}, pages);
    const auto cmds = parser.encode(formula);
    std::printf("formula encoded as %zu NVMe commands (operand tags, "
                "i-t/e-t fields, partner LBAs in DW2/3)\n", cmds.size());
    const auto batches = parser.parse(cmds);
    std::printf("device parsed %zu batch(es), %zu sub-operations\n",
                batches.size(), batches[0].subOps.size());

    // Encrypt in flash; persist the cipher at LPN 300.
    const core::ExecResult e = dev.controller().executeBatches(
        batches, core::Mode::kReAllocate, dev.now(), false, 300);
    const bool cipher_ok = [&] {
        for (std::uint32_t p = 0; p < pages; ++p)
            if (e.pages[p] != (img[p] ^ key[p]))
                return false;
        return true;
    }();
    std::printf("encrypted in-flash: %.1f us, cipher %s\n",
                ticks::toUs(e.stats.elapsed()),
                cipher_ok ? "correct" : "WRONG");

    // Decrypt: cipher XOR key, again inside the SSD.
    const core::ExecResult d = dev.bitwise(flash::BitwiseOp::kXor, 300, 100,
                                           pages, core::Mode::kReAllocate);
    bool round_trip = true;
    for (std::uint32_t p = 0; p < pages; ++p)
        round_trip = round_trip && d.pages[p] == img[p];
    std::printf("decrypted in-flash: plaintext round trip %s\n",
                round_trip ? "verified" : "FAILED");

    const auto end = dev.ssd().endurance();
    std::printf("write traffic: host %llu B, reallocation %llu B "
                "(effective TBW at 600 rated: %.1f)\n",
                static_cast<unsigned long long>(end.hostBytes),
                static_cast<unsigned long long>(end.reallocBytes),
                end.effectiveTbw(600.0));
    return 0;
}
