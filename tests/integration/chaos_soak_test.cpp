/**
 * @file
 * Chaos soak: seeded correlated fault storms through the full NVMe
 * queue path (ctest -L chaos_soak).
 *
 * Each seed drives one device through three phases — a healthy
 * baseline, a correlated fault storm (FaultInjector::stormSchedule plus
 * a guaranteed program-failure hot spot), and a post-storm recovery —
 * while a mixed read/write/formula/flush workload runs against the
 * host interface with the watchdog, bounded retries, backoff, and the
 * admission controller armed.  The soak proves the robustness
 * contract:
 *
 *  - zero lost or hung commands: every submission that yielded a cid is
 *    reaped with a terminal status (success, aborted, shed,
 *    write-protected, or a device error);
 *  - health transitions are monotone-sensible: one step at a time,
 *    never while power is lost, and the storm drives the device at
 *    least to degraded;
 *  - the device recovers: once the storm's transient faults clear, the
 *    pressure budget decays and the machine steps back to healthy;
 *  - the whole-device invariant audit stays clean end to end.
 *
 * 64 seeds, sharded 4 x 16 so CI spreads them across cores.
 */

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "parabit/host_interface.hpp"
#include "ssd/fault_injector.hpp"
#include "ssd/health.hpp"

namespace parabit::core {
namespace {

ssd::SsdConfig
chaosConfig()
{
    ssd::SsdConfig cfg = ssd::SsdConfig::tiny();
    cfg.media.enabled = true;
    cfg.media.scrubInterval = ticks::fromUs(2);
    cfg.media.scrubWordlinesPerPass = 16;
    cfg.rain.enabled = true;
    cfg.health.enabled = true;
    // Test-tuned budget: a couple of block retirements reach degraded,
    // a sustained storm reaches read-only, and failed is out of reach
    // (a storm must degrade, not kill).
    cfg.health.degradedThreshold = 4.0;
    cfg.health.readOnlyThreshold = 12.0;
    cfg.health.failedThreshold = 1e9;
    // Long enough that the storm's charges accumulate across drains,
    // short enough that recovery completes within the quiet phase.
    cfg.health.pressureHalfLife = ticks::fromMs(2);
    cfg.health.minDwell = ticks::fromUs(200);
    // A single retired block is a degradation event at this scale: the
    // tiny geometry only has 8 blocks per plane.
    cfg.health.weightRetiredBlock = 4.0;
    return cfg;
}

std::vector<BitVector>
seededPages(const ssd::SsdConfig &cfg, int n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitVector> out;
    for (int p = 0; p < n; ++p) {
        BitVector v(cfg.geometry.pageBits());
        for (auto &w : v.words())
            w = rng.next();
        v.maskTail();
        out.push_back(std::move(v));
    }
    return out;
}

constexpr int kPreloadedLpns = 16;

void
runChaosSeed(std::uint64_t seed)
{
    SCOPED_TRACE("seed " + std::to_string(seed));
    const ssd::SsdConfig cfg = chaosConfig();
    ParaBitDevice dev(cfg);
    dev.writeData(0, seededPages(cfg, kPreloadedLpns, seed));

    constexpr std::uint16_t kQueues = 2;
    constexpr std::uint16_t kDepth = 16;
    HostInterface host(dev, kQueues, kDepth, Mode::kReAllocate);
    RetryPolicy rp;
    rp.commandTimeout = ticks::fromMs(2);
    rp.maxRequeues = 2;
    rp.backoffBase = ticks::fromUs(50);
    rp.jitterSeed = seed;
    host.setRetryPolicy(rp);
    host.setAdmissionLimit(12);

    ssd::DeviceHealth *health = dev.ssd().health();
    ASSERT_NE(health, nullptr);

    // A retried command completes more than once (each aborted attempt
    // plus the final one), so the lost/hung-command contract is set
    // inclusion: every cid a submit call handed out must eventually be
    // reaped with some terminal status.
    Rng rng(seed ^ 0xC4A05ull);
    std::array<std::set<std::uint16_t>, kQueues> submitted;
    std::array<std::set<std::uint16_t>, kQueues> reaped;

    const auto drainAll = [&] {
        host.pump();
        for (std::uint16_t q = 0; q < kQueues; ++q)
            while (const auto c = host.reap(q))
                reaped[q].insert(c->cid);
    };
    const auto submitSome = [&](int n) {
        for (int i = 0; i < n; ++i) {
            const auto q = static_cast<std::uint16_t>(rng.below(kQueues));
            const std::uint64_t roll = rng.below(100);
            std::optional<std::uint16_t> cid;
            if (roll < 45) {
                cid = host.submitWrite(
                    q, static_cast<nvme::Lpn>(rng.below(32)));
            } else if (roll < 80) {
                cid = host.submitRead(
                    q, static_cast<nvme::Lpn>(rng.below(kPreloadedLpns)));
            } else if (roll < 90) {
                nvme::Formula f;
                const auto a = static_cast<nvme::Lpn>(rng.below(8));
                f.terms.push_back(nvme::Formula::Term{
                    nvme::OperandRef::logical(a, 1),
                    nvme::OperandRef::logical(a + 8, 1),
                    flash::BitwiseOp::kXor});
                cid = host.submitFormula(q, f);
            } else {
                cid = host.submitFlush(q);
            }
            if (cid)
                submitted[q].insert(*cid);
        }
    };

    // Phase 1: healthy baseline.
    for (int round = 0; round < 4; ++round) {
        submitSome(8);
        drainAll();
    }
    EXPECT_EQ(health->state(), ssd::HealthState::kHealthy)
        << "baseline workload must not degrade the device";

    // Phase 2: the storm.  The seeded schedule supplies correlated
    // bursts; one always-failing plane guarantees block retirements so
    // every seed actually exercises degradation.
    for (const ssd::FaultSpec &f : ssd::FaultInjector::stormSchedule(
             cfg.geometry, seed, ssd::StormConfig{}))
        dev.ssd().injectFault(f);
    ssd::FaultSpec hot;
    hot.cls = ssd::FaultClass::kProgramFailure;
    hot.plane = static_cast<ssd::PlaneIndex>(
        rng.below(cfg.geometry.planesTotal()));
    hot.failPeriod = 1;
    hot.onset = 0;
    dev.ssd().injectFault(hot);

    for (int round = 0; round < 12; ++round) {
        submitSome(12);
        drainAll();
    }
    EXPECT_GE(health->maxState(), ssd::HealthState::kDegraded)
        << "a storm this size must at least degrade the device";

    // Phase 3: the storm passes; transient faults lift, permanent
    // damage (none in a storm schedule) would stay.  A quiet read +
    // flush trickle advances simulated time until the budget decays
    // and the machine steps back to healthy.
    dev.ssd().clearTransientFaults();
    int quiet = 0;
    for (; health->state() != ssd::HealthState::kHealthy && quiet < 500;
         ++quiet) {
        if (const auto cid = host.submitRead(
                0, static_cast<nvme::Lpn>(rng.below(kPreloadedLpns))))
            submitted[0].insert(*cid);
        if (const auto cid = host.submitFlush(1))
            submitted[1].insert(*cid);
        drainAll();
    }
    EXPECT_EQ(health->state(), ssd::HealthState::kHealthy)
        << "the device must return to healthy after the storm ("
        << quiet << " quiet rounds, pressure " << health->pressure()
        << ")";

    // Robustness contract: nothing submitted ever vanished or hung.
    drainAll();
    for (std::uint16_t q = 0; q < kQueues; ++q) {
        std::vector<std::uint16_t> lost;
        for (const std::uint16_t cid : submitted[q])
            if (reaped[q].count(cid) == 0)
                lost.push_back(cid);
        EXPECT_TRUE(lost.empty())
            << "queue " << q << ": " << lost.size() << " of "
            << submitted[q].size()
            << " accepted commands never reached a terminal completion "
            << "(first lost cid " << lost.front() << ")";
    }
    EXPECT_EQ(host.pump(), 0u) << "no work left behind";

    // Transitions moved one step at a time and never mid-cut; the
    // device-wide audit (ftl/sched/rain/media/health) is clean.
    const auto &ts = health->transitions();
    EXPECT_GE(ts.size(), 2u) << "up into the storm and back down";
    for (std::size_t i = 0; i < ts.size(); ++i) {
        const int step = static_cast<int>(ts[i].to) -
                         static_cast<int>(ts[i].from);
        EXPECT_TRUE(step == 1 || step == -1) << "transition " << i;
        EXPECT_FALSE(ts[i].powerLost) << "transition " << i;
    }
    const InvariantReport audit = dev.ssd().auditInvariants();
    EXPECT_TRUE(audit.ok()) << audit.describe();
}

void
runShard(std::uint64_t first, std::uint64_t last)
{
    for (std::uint64_t seed = first; seed <= last; ++seed)
        runChaosSeed(seed);
}

TEST(ChaosSoak, Seeds00to15) { runShard(0, 15); }
TEST(ChaosSoak, Seeds16to31) { runShard(16, 31); }
TEST(ChaosSoak, Seeds32to47) { runShard(32, 47); }
TEST(ChaosSoak, Seeds48to63) { runShard(48, 63); }

} // namespace
} // namespace parabit::core
