/**
 * @file
 * Garbage-collection / ParaBit interplay: GC relocates pages one at a
 * time, which silently breaks operand co-location.  The controller must
 * detect the broken layout through the FTL lookup and fall back to
 * reallocation, still producing correct results — this is precisely why
 * the paper's Operands ReAllocation module exists (Section 4.3.2).
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "parabit/device.hpp"

namespace parabit {
namespace {

using core::Mode;
using core::ParaBitDevice;

std::vector<BitVector>
randomPages(const ssd::SsdConfig &cfg, int n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitVector> out;
    for (int p = 0; p < n; ++p) {
        BitVector v(cfg.geometry.pageBits());
        for (auto &w : v.words())
            w = rng.next();
        v.maskTail();
        out.push_back(std::move(v));
    }
    return out;
}

TEST(GcInterplay, GcEventuallyBreaksCoLocation)
{
    // Pair two operands, then churn the device until GC relocates at
    // least one of them; relocation is per-page, so the pair separates.
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const auto x = randomPages(dev.ssd().config(), 1, 1);
    const auto y = randomPages(dev.ssd().config(), 1, 2);
    dev.writeOperandPair(900, 901, x, y);
    ASSERT_TRUE(dev.ssd().ftl().lookup(900)->sameWordline(
        *dev.ssd().ftl().lookup(901)));

    // Churn a small hot set plus interleaved cold pages to force GC
    // activity across many blocks.
    const auto filler = randomPages(dev.ssd().config(), 1, 3);
    std::uint64_t cold = 100;
    bool separated = false;
    for (int round = 0; round < 400 && !separated; ++round) {
        for (std::uint64_t l = 0; l < 16; ++l) {
            dev.writeData(l, filler);
            if (round < 8)
                dev.writeData(cold++, filler);
        }
        separated = !dev.ssd().ftl().lookup(900)->sameWordline(
            *dev.ssd().ftl().lookup(901));
    }
    // Whether or not separation happened (GC may preserve the pair by
    // luck), the data must be intact...
    EXPECT_EQ(dev.readData(900, 1)[0], x[0]);
    EXPECT_EQ(dev.readData(901, 1)[0], y[0]);
    // ...and a pre-allocated op must still compute correctly, falling
    // back to reallocation when the pair is broken.
    const auto r = dev.bitwise(flash::BitwiseOp::kXor, 900, 901, 1,
                               Mode::kPreAllocated);
    EXPECT_EQ(r.pages[0], x[0] ^ y[0]);
    if (separated) {
        EXPECT_GT(r.stats.pagePrograms, 0u)
            << "broken pair must trigger reallocation work";
    }
}

TEST(GcInterplay, OperationsCorrectUnderHeavyChurnAllModes)
{
    for (Mode mode :
         {Mode::kPreAllocated, Mode::kReAllocate, Mode::kLocationFree}) {
        ParaBitDevice dev(ssd::SsdConfig::tiny());
        const auto x = randomPages(dev.ssd().config(), 1, 10);
        const auto y = randomPages(dev.ssd().config(), 1, 11);
        dev.writeDataLsbOnly(900, x);
        dev.writeDataLsbOnly(901, y);

        const auto filler = randomPages(dev.ssd().config(), 1, 12);
        for (int round = 0; round < 120; ++round)
            for (std::uint64_t l = 0; l < 12; ++l)
                dev.writeData(l, filler);
        EXPECT_GT(dev.ssd().ftl().blockErases(), 0u)
            << "churn must have triggered GC";

        const auto r =
            dev.bitwise(flash::BitwiseOp::kAnd, 900, 901, 1, mode);
        EXPECT_EQ(r.pages[0], x[0] & y[0]) << core::modeName(mode);
    }
}

TEST(GcInterplay, ChainSurvivesConcurrentChurn)
{
    // Interleave chain-operand writes with churn so the operands end up
    // scattered across blocks with different wear, then fold them.
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    Rng rng(5);
    std::vector<std::vector<BitVector>> operands;
    std::vector<nvme::Lpn> lpns;
    const auto filler = randomPages(dev.ssd().config(), 1, 6);
    for (int k = 0; k < 4; ++k) {
        operands.push_back(randomPages(dev.ssd().config(), 1,
                                       100 + static_cast<std::uint64_t>(k)));
        const nvme::Lpn lpn = 800 + static_cast<nvme::Lpn>(k);
        dev.writeDataLsbOnly(lpn, operands.back());
        lpns.push_back(lpn);
        for (int round = 0; round < 30; ++round)
            for (std::uint64_t l = 0; l < 8; ++l)
                dev.writeData(l, filler);
    }
    const auto r = dev.bitwiseChain(flash::BitwiseOp::kOr, lpns, 1,
                                    Mode::kPreAllocated);
    BitVector expect = operands[0][0];
    for (int k = 1; k < 4; ++k)
        expect |= operands[static_cast<std::size_t>(k)][0];
    EXPECT_EQ(r.pages[0], expect);
}

} // namespace
} // namespace parabit
