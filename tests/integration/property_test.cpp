/**
 * @file
 * Property-based tests over randomly generated inputs:
 *
 *  - random chained formulas executed through the full device stack
 *    must equal the host-side fold, for every execution mode;
 *  - random control programs must preserve the latch complementarity
 *    invariant (C = ~A, OUT = ~B) at every step;
 *  - the encode -> parse NVMe round trip must be lossless for random
 *    formulas;
 *  - the cost model must be monotone in operand size and chain length.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "flash/latch_circuit.hpp"
#include "nvme/parser.hpp"
#include "parabit/cost_model.hpp"
#include "parabit/device.hpp"

namespace parabit {
namespace {

using core::Mode;
using flash::BitwiseOp;

BitVector
randomPage(std::size_t bits, Rng &rng)
{
    BitVector v(bits);
    for (auto &w : v.words())
        w = rng.next();
    v.maskTail();
    return v;
}

bool
applyGolden(BitwiseOp op, bool x, bool y)
{
    return flash::opGolden(op, x, y);
}

TEST(Property, RandomChainsMatchHostFoldAllModes)
{
    // Commutative, associative ops usable in left-fold chains.
    const BitwiseOp chainable[] = {BitwiseOp::kAnd, BitwiseOp::kOr,
                                   BitwiseOp::kXor, BitwiseOp::kXnor};
    Rng rng(12345);
    for (int trial = 0; trial < 12; ++trial) {
        const BitwiseOp op = chainable[rng.below(4)];
        const Mode mode = static_cast<Mode>(rng.below(3));
        const std::uint32_t operands = 2 + static_cast<std::uint32_t>(
                                               rng.below(4));
        core::ParaBitDevice dev(ssd::SsdConfig::tiny());
        const std::size_t bits = dev.ssd().geometry().pageBits();

        std::vector<BitVector> data;
        std::vector<nvme::Lpn> lpns;
        for (std::uint32_t k = 0; k < operands; ++k) {
            data.push_back(randomPage(bits, rng));
            const nvme::Lpn lpn = 50 * k;
            dev.writeDataLsbOnly(lpn, {data.back()});
            lpns.push_back(lpn);
        }

        const auto r = dev.bitwiseChain(op, lpns, 1, mode);
        BitVector expect = data[0];
        for (std::uint32_t k = 1; k < operands; ++k) {
            BitVector next(bits);
            for (std::size_t i = 0; i < bits; ++i)
                next.set(i, applyGolden(op, expect.get(i), data[k].get(i)));
            expect = std::move(next);
        }
        ASSERT_EQ(r.pages.size(), 1u);
        EXPECT_EQ(r.pages[0], expect)
            << "trial " << trial << " op " << flash::opName(op) << " mode "
            << core::modeName(mode) << " operands " << operands;
    }
}

TEST(Property, RandomPulseSequencesPreserveComplementarity)
{
    Rng rng(777);
    for (int trial = 0; trial < 50; ++trial) {
        flash::LatchCircuit lc;
        if (rng.chance(0.5))
            lc.initInverted();
        for (int step = 0; step < 20; ++step) {
            const auto v = static_cast<flash::VRead>(rng.below(4));
            lc.sense(v);
            switch (rng.below(3)) {
              case 0: lc.pulseM1(); break;
              case 1: lc.pulseM2(); break;
              default: lc.pulseM3(); break;
            }
            ASSERT_EQ(lc.c(), ~lc.a()) << "trial " << trial;
            ASSERT_EQ(lc.out(), ~lc.b()) << "trial " << trial;
        }
    }
}

TEST(Property, NvmeEncodeParseRoundTripRandomFormulas)
{
    Rng rng(999);
    nvme::CmdParser parser(8 * bytes::kKiB);
    for (int trial = 0; trial < 25; ++trial) {
        nvme::Formula f;
        const std::uint32_t terms = 1 + static_cast<std::uint32_t>(
                                            rng.below(4));
        const std::uint32_t pages = 1 + static_cast<std::uint32_t>(
                                            rng.below(3));
        for (std::uint32_t t = 0; t < terms; ++t) {
            f.terms.push_back(nvme::Formula::Term{
                nvme::OperandRef::logical(rng.below(1000), pages),
                nvme::OperandRef::logical(1000 + rng.below(1000), pages),
                static_cast<BitwiseOp>(rng.below(6))});
            if (t + 1 < terms)
                f.chainOps.push_back(
                    static_cast<BitwiseOp>(rng.below(6)));
        }
        const auto batches = parser.parse(parser.encode(f));
        // terms explicit batches + (terms-1) synthesised combinations.
        ASSERT_EQ(batches.size(), 2 * terms - 1) << "trial " << trial;
        for (std::uint32_t t = 0; t < terms; ++t) {
            EXPECT_EQ(batches[t].intraOp, f.terms[t].op);
            EXPECT_EQ(batches[t].subOps.size(), pages);
            EXPECT_EQ(batches[t].subOps[0].first.lpn, f.terms[t].first.lpn);
            EXPECT_EQ(batches[t].subOps[0].second.lpn,
                      f.terms[t].second.lpn);
        }
        for (std::uint32_t k = 0; k + 1 < terms; ++k)
            EXPECT_EQ(batches[terms + k].intraOp, f.chainOps[k]);
    }
}

TEST(Property, CostModelMonotoneInSizeAndChainLength)
{
    core::CostModel cm(ssd::SsdConfig::paperSsd());
    Rng rng(555);
    for (int trial = 0; trial < 30; ++trial) {
        const auto op = static_cast<BitwiseOp>(rng.below(6));
        const auto mode = static_cast<Mode>(rng.below(3));
        const Bytes a = 1 + rng.below(1u << 30);
        const Bytes b = a + 1 + rng.below(1u << 30);
        EXPECT_LE(cm.binaryOp(op, a, mode, core::ChainStep::kNone, false)
                      .seconds,
                  cm.binaryOp(op, b, mode, core::ChainStep::kNone, false)
                      .seconds)
            << "size monotonicity, trial " << trial;

        const std::uint32_t k = 2 + static_cast<std::uint32_t>(
                                        rng.below(20));
        EXPECT_LT(cm.chain(op, k, a, mode, false).seconds,
                  cm.chain(op, k + 1, a, mode, false).seconds)
            << "chain monotonicity, trial " << trial;
    }
}

TEST(Property, EnergyNeverNegativeAndScalesWithWork)
{
    core::CostModel cm(ssd::SsdConfig::paperSsd());
    Rng rng(222);
    for (int trial = 0; trial < 30; ++trial) {
        const auto op = static_cast<BitwiseOp>(rng.below(6));
        const auto mode = static_cast<Mode>(rng.below(3));
        const Bytes sz = 1 + rng.below(1u << 28);
        const auto c1 =
            cm.binaryOp(op, sz, mode, core::ChainStep::kNone, false);
        const auto c2 =
            cm.binaryOp(op, 2 * sz, mode, core::ChainStep::kNone, false);
        EXPECT_GT(c1.energyJ, 0.0);
        EXPECT_LE(c1.energyJ, c2.energyJ);
    }
}

} // namespace
} // namespace parabit
