/**
 * @file
 * SPOR soak sweep: 64+ seeded power-cut points over a mixed host-write /
 * trim / ParaBit-reallocation workload.  After every cut the device is
 * power-cycled and checked against an oracle of acknowledged state:
 *
 *  - zero lost acknowledged pages (bit-exact readback),
 *  - zero resurrected trimmed pages,
 *  - every in-flight reallocation fully applied or fully rolled back
 *    (the source operand stays readable either way),
 *  - no rebuilt mapping points into a torn wordline.
 *
 * Registered under the `recovery_soak` ctest label so CI's sanitizer
 * jobs can run the sweep explicitly (ctest -L recovery_soak).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "ssd/ssd.hpp"

namespace parabit::ssd {
namespace {

constexpr Lpn kHotLpns = 160;   ///< working set of the workload
constexpr Lpn kParabitBase = 400; ///< LPN range used by realloc pairs

SsdConfig
soakCfg(std::uint64_t seed)
{
    SsdConfig c = SsdConfig::tiny();
    c.geometry.blocksPerPlane = 16;
    c.geometry.pageBytes = 128;
    c.recovery.enabled = true;
    // Sweep the checkpoint cadence too: pure OOB scan, tight, loose.
    const std::uint32_t intervals[3] = {0, 8, 48};
    c.recovery.checkpointIntervalPrograms = intervals[seed % 3];
    c.scrambleHostData = (seed % 2) == 1;
    c.seed = 0xC0FFEEull + seed;
    return c;
}

BitVector
pattern(std::size_t bits, Lpn lpn, std::uint64_t version)
{
    BitVector v(bits, false);
    std::uint64_t s = (lpn + 1) * 0x9E3779B97F4A7C15ull + version;
    for (std::size_t i = 0; i < bits; ++i) {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        v.set(i, ((s >> 61) & 1) != 0);
    }
    return v;
}

/** Oracle of acknowledged host-visible state: value = page contents,
 *  nullopt = acknowledged trim (the LPN must stay unmapped). */
using Oracle = std::map<Lpn, std::optional<BitVector>>;

void
runSeed(std::uint64_t seed)
{
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    SsdDevice dev(soakCfg(seed));
    Ftl &ftl = dev.ftl();
    const std::size_t bits = dev.geometry().pageBits();
    Rng rng(seed * 0x1234567ull + 99);

    Oracle oracle;
    std::uint64_t version = 0;
    Lpn next_pair = kParabitBase;

    // Arm the cut at a seeded PhysOp boundary; the before-op vs
    // mid-program mode is drawn from the injector seed (unpinned).
    FaultSpec cut;
    cut.cls = FaultClass::kPowerLoss;
    cut.onset = static_cast<std::uint32_t>(rng.below(260));
    dev.injectFault(cut);

    for (int step = 0; step < 6000 && !ftl.powerLost(); ++step) {
        const std::uint64_t roll = rng.below(100);
        if (roll < 55) {
            // Host write (fresh or overwrite) of a hot LPN.
            const Lpn lpn = rng.below(kHotLpns);
            const BitVector d = pattern(bits, lpn, ++version);
            std::vector<PhysOp> ops;
            if (ftl.writePage(lpn, &d, ops))
                oracle[lpn] = d;
        } else if (roll < 65) {
            // Trim a (possibly unmapped) hot LPN.
            const Lpn lpn = rng.below(kHotLpns);
            std::vector<PhysOp> ops;
            if (ftl.trim(lpn, &ops))
                oracle[lpn] = std::nullopt;
        } else if (roll < 80) {
            // ParaBit operand pair placement (ReAllocation).
            const Lpn x = next_pair++;
            const Lpn y = next_pair++;
            const BitVector dx = pattern(bits, x, ++version);
            const BitVector dy = pattern(bits, y, ++version);
            std::vector<PhysOp> ops;
            if (ftl.writePair(x, y, &dx, &dy, ops).has_value()) {
                oracle[x] = dx;
                oracle[y] = dy;
            }
        } else {
            // LSB-only placement + chained-result drop into the free
            // MSB: the copy-then-remap path whose atomicity the sweep
            // must prove (source readable whether or not the drop
            // was acknowledged).
            const Lpn src = next_pair++;
            const Lpn res = next_pair++;
            const BitVector ds = pattern(bits, src, ++version);
            const BitVector dr = pattern(bits, res, ++version);
            std::vector<PhysOp> ops;
            const auto lsb = ftl.writeLsbOnly(src, &ds, ops);
            if (!lsb.has_value())
                continue;
            oracle[src] = ds;
            if (ftl.writeIntoFreeMsb(res, *lsb, &dr, ops))
                oracle[res] = dr;
        }
    }
    ASSERT_TRUE(ftl.powerLost()) << "cut never fired (onset=" << cut.onset
                                 << ")";

    const RecoveryReport rep = dev.powerCycle();
    EXPECT_TRUE(rep.recovered);

    for (const auto &[lpn, want] : oracle) {
        const auto at = ftl.lookup(lpn);
        if (!want.has_value()) {
            EXPECT_FALSE(at.has_value())
                << "trimmed LPN " << lpn << " resurrected";
            continue;
        }
        ASSERT_TRUE(at.has_value()) << "acked LPN " << lpn << " lost";
        // The rebuilt mapping must never point into a torn wordline.
        const flash::ChipPageAddr ca{at->die, at->plane, at->block,
                                     at->wordline, at->msb};
        EXPECT_FALSE(dev.chipAt(at->channel, at->chip).wordlineTorn(ca))
            << "LPN " << lpn << " mapped to a torn wordline";
        std::vector<PhysOp> ops;
        EXPECT_EQ(ftl.readPage(lpn, ops), *want)
            << "acked LPN " << lpn << " corrupted";
    }

    // The recovered device keeps working.
    const BitVector d = pattern(bits, 1, ++version);
    std::vector<PhysOp> ops;
    ASSERT_TRUE(ftl.writePage(1, &d, ops));
    EXPECT_EQ(ftl.readPage(1, ops), d);
}

// 64 seeded cut points split into four shards so ctest can run them in
// parallel (and a red shard narrows the failing range).
TEST(SporSweep, CutPointsShard0)
{
    for (std::uint64_t s = 0; s < 16; ++s)
        runSeed(s);
}

TEST(SporSweep, CutPointsShard1)
{
    for (std::uint64_t s = 16; s < 32; ++s)
        runSeed(s);
}

TEST(SporSweep, CutPointsShard2)
{
    for (std::uint64_t s = 32; s < 48; ++s)
        runSeed(s);
}

TEST(SporSweep, CutPointsShard3)
{
    for (std::uint64_t s = 48; s < 64; ++s)
        runSeed(s);
}

// A second power loss after one recovery (double-crash): arbitration
// must hold across generations of the log region.
TEST(SporSweep, DoubleCrash)
{
    for (std::uint64_t seed = 100; seed < 108; ++seed) {
        SCOPED_TRACE(::testing::Message() << "seed=" << seed);
        SsdDevice dev(soakCfg(seed));
        Ftl &ftl = dev.ftl();
        const std::size_t bits = dev.geometry().pageBits();
        Rng rng(seed);
        Oracle oracle;
        std::uint64_t version = 0;
        for (int round = 0; round < 2; ++round) {
            FaultSpec cut;
            cut.cls = FaultClass::kPowerLoss;
            cut.onset = static_cast<std::uint32_t>(rng.below(120));
            dev.injectFault(cut);
            for (int step = 0; step < 4000 && !ftl.powerLost(); ++step) {
                const Lpn lpn = rng.below(kHotLpns);
                std::vector<PhysOp> ops;
                if (rng.chance(0.12)) {
                    if (ftl.trim(lpn, &ops))
                        oracle[lpn] = std::nullopt;
                    continue;
                }
                const BitVector d = pattern(bits, lpn, ++version);
                if (ftl.writePage(lpn, &d, ops))
                    oracle[lpn] = d;
            }
            ASSERT_TRUE(ftl.powerLost());
            EXPECT_TRUE(dev.powerCycle().recovered);
            for (const auto &[lpn, want] : oracle) {
                if (!want.has_value()) {
                    EXPECT_FALSE(ftl.lookup(lpn).has_value())
                        << "round " << round << " LPN " << lpn;
                    continue;
                }
                ASSERT_TRUE(ftl.lookup(lpn).has_value())
                    << "round " << round << " LPN " << lpn;
                std::vector<PhysOp> ops;
                EXPECT_EQ(ftl.readPage(lpn, ops), *want)
                    << "round " << round << " LPN " << lpn;
            }
        }
    }
}

} // namespace
} // namespace parabit::ssd
