/**
 * @file
 * Integration tests: the three paper case studies executed functionally
 * end-to-end on a small ParaBitDevice — workload generation, data
 * placement, in-flash computation through the full controller/FTL/chip
 * stack, and comparison against host golden results.
 */

#include <gtest/gtest.h>

#include "nvme/parser.hpp"
#include "parabit/device.hpp"
#include "workloads/bitmap_index.hpp"
#include "workloads/encryption.hpp"
#include "workloads/segmentation.hpp"

namespace parabit {
namespace {

using core::ExecResult;
using core::Mode;
using core::ParaBitDevice;

/** Split a bit vector into device pages (padded with zeros). */
std::vector<BitVector>
toPages(const BitVector &bits, std::size_t page_bits)
{
    std::vector<BitVector> pages;
    for (std::size_t pos = 0; pos < bits.size(); pos += page_bits) {
        const std::size_t len = std::min(page_bits, bits.size() - pos);
        BitVector page(page_bits);
        page.assign(0, bits.slice(pos, len));
        pages.push_back(std::move(page));
    }
    return pages;
}

BitVector
fromPages(const std::vector<BitVector> &pages, std::size_t total_bits)
{
    BitVector bits(total_bits);
    std::size_t pos = 0;
    for (const auto &p : pages) {
        const std::size_t len = std::min(p.size(), total_bits - pos);
        bits.assign(pos, p.slice(0, len));
        pos += len;
        if (pos >= total_bits)
            break;
    }
    return bits;
}

class CaseStudyTest : public ::testing::TestWithParam<Mode>
{
};

TEST_P(CaseStudyTest, ImageSegmentationMatchesGolden)
{
    const Mode mode = GetParam();
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const std::size_t page_bits = dev.ssd().geometry().pageBits();

    workloads::SegmentationWorkload seg(32, 16); // one page per plane
    const std::size_t color = 1;
    const auto y = toPages(seg.plane(0, 0, color), page_bits);
    const auto u = toPages(seg.plane(0, 1, color), page_bits);
    const auto v = toPages(seg.plane(0, 2, color), page_bits);
    const std::uint32_t pages = static_cast<std::uint32_t>(y.size());

    // LSB-only layout supports every mode's placement needs.
    dev.writeDataLsbOnly(0, y);
    dev.writeDataLsbOnly(100, u);
    dev.writeDataLsbOnly(200, v);

    const ExecResult r = dev.bitwiseChain(flash::BitwiseOp::kAnd,
                                          {0, 100, 200}, pages, mode);
    const BitVector mask =
        fromPages(r.pages, seg.generator().pixels());
    EXPECT_EQ(mask, seg.golden(0, color)) << core::modeName(mode);
}

TEST_P(CaseStudyTest, BitmapIndexCountMatchesGolden)
{
    const Mode mode = GetParam();
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const std::size_t page_bits = dev.ssd().geometry().pageBits();

    const std::uint64_t users = page_bits; // one page per day bitmap
    const std::uint32_t days = 6;
    workloads::BitmapIndexWorkload bw(users, days, 0.85);

    std::vector<nvme::Lpn> lpns;
    for (std::uint32_t d = 0; d < days; ++d) {
        const nvme::Lpn lpn = 50 * static_cast<nvme::Lpn>(d);
        dev.writeDataLsbOnly(lpn, toPages(bw.dayBitmap(d), page_bits));
        lpns.push_back(lpn);
    }

    const ExecResult r =
        dev.bitwiseChain(flash::BitwiseOp::kAnd, lpns, 1, mode);
    ASSERT_EQ(r.pages.size(), 1u);
    // The host-side bitcount of the in-flash result.
    EXPECT_EQ(r.pages[0].popcount(), bw.goldenCount())
        << core::modeName(mode);
    EXPECT_EQ(r.pages[0], bw.goldenEveryday());
}

TEST_P(CaseStudyTest, ImageEncryptionMatchesGolden)
{
    const Mode mode = GetParam();
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const std::size_t page_bits = dev.ssd().geometry().pageBits();

    workloads::EncryptionWorkload enc(8, 8); // 1536-bit images
    const auto img = toPages(enc.imageBits(0), page_bits);
    const auto key = toPages(enc.keyBits(), page_bits);
    const std::uint32_t pages = static_cast<std::uint32_t>(img.size());

    dev.writeDataLsbOnly(0, img);
    dev.writeDataLsbOnly(100, key);

    const ExecResult r =
        dev.bitwise(flash::BitwiseOp::kXor, 0, 100, pages, mode);
    const BitVector cipher = fromPages(r.pages, enc.imageBits(0).size());
    EXPECT_EQ(cipher, enc.goldenCipher(0)) << core::modeName(mode);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, CaseStudyTest,
    ::testing::Values(Mode::kPreAllocated, Mode::kReAllocate,
                      Mode::kLocationFree),
    [](const auto &info) {
        switch (info.param) {
          case Mode::kPreAllocated: return "ParaBit";
          case Mode::kReAllocate: return "ReAlloc";
          case Mode::kLocationFree: return "LocFree";
        }
        return "?";
    });

TEST(EndToEnd, EncryptDecryptRoundTripInFlash)
{
    // Encrypt in flash, write the cipher back, then decrypt in flash by
    // XORing with the key again: the plaintext must round-trip.
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const std::size_t page_bits = dev.ssd().geometry().pageBits();
    workloads::EncryptionWorkload enc(8, 8);
    const auto img = toPages(enc.imageBits(1), page_bits);
    const auto key = toPages(enc.keyBits(), page_bits);
    const std::uint32_t pages = static_cast<std::uint32_t>(img.size());

    dev.writeDataLsbOnly(0, img);
    dev.writeDataLsbOnly(100, key);

    nvme::CmdParser parser(dev.ssd().geometry().pageBytes);
    nvme::Formula f =
        nvme::Formula::chain(flash::BitwiseOp::kXor, {0, 100}, pages);
    // Persist the cipher at LPN 300.
    dev.controller().executeBatches(parser.buildBatches(f),
                                    Mode::kReAllocate, dev.now(), false, 300);

    const ExecResult dec =
        dev.bitwise(flash::BitwiseOp::kXor, 300, 100, pages,
                    Mode::kReAllocate);
    for (std::uint32_t p = 0; p < pages; ++p)
        EXPECT_EQ(dec.pages[p], img[p]);
}

TEST(EndToEnd, TimingOrderingAcrossModes)
{
    // On identical work, in-flash time must order:
    // PreAllocated < LocationFree < ReAllocate for a single AND
    // (1 SRO vs 2-3 SROs vs realloc+1 SRO).
    auto run = [](Mode mode) {
        ssd::SsdConfig cfg = ssd::SsdConfig::tiny();
        cfg.storeData = false;
        ParaBitDevice dev(cfg);
        if (mode == Mode::kPreAllocated) {
            dev.writeMetaOperandPair(0, 100, 4);
        } else {
            dev.writeMetaLsbOnly(0, 4);
            dev.writeMetaLsbOnly(100, 4);
        }
        const Tick before = dev.now();
        const ExecResult r = dev.bitwise(flash::BitwiseOp::kAnd, 0, 100, 4,
                                         mode, false);
        return r.stats.end - before;
    };
    const Tick pre = run(Mode::kPreAllocated);
    const Tick lf = run(Mode::kLocationFree);
    const Tick re = run(Mode::kReAllocate);
    EXPECT_LT(pre, lf);
    EXPECT_LT(lf, re);
}

TEST(EndToEnd, EnduranceAccountingAfterCaseStudy)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const std::size_t page_bits = dev.ssd().geometry().pageBits();
    workloads::EncryptionWorkload enc(8, 8);
    const auto img = toPages(enc.imageBits(0), page_bits);
    const auto key = toPages(enc.keyBits(), page_bits);
    dev.writeData(0, img);
    dev.writeData(100, key);
    const auto before = dev.ssd().endurance();
    dev.bitwise(flash::BitwiseOp::kXor, 0, 100,
                static_cast<std::uint32_t>(img.size()), Mode::kReAllocate);
    const auto after = dev.ssd().endurance();
    EXPECT_GT(after.reallocBytes, before.reallocBytes);
    EXPECT_LT(after.effectiveTbw(600.0), 600.0);
}

} // namespace
} // namespace parabit
