/**
 * @file
 * Media-management soak sweep: 64 seeded runs of a mixed host workload
 * with patrol scrubbing, disturb-count refresh and die-level RAIN
 * parity all enabled, plus one sudden power cut and one whole-die
 * failure per run.  The acceptance bar is zero
 * uncorrectable-after-rebuild data loss:
 *
 *  - after the power cycle every acknowledged page reads back bit-exact
 *    and the recomputed parity still rebuilds every stripe,
 *  - after the die failure every mapped LPN on the dead die is repaired
 *    (background patrol or on-demand) and reads back bit-exact,
 *  - the scrubber's uncorrectable counter stays zero throughout.
 *
 * Registered under the `media_soak` ctest label so CI's sanitizer jobs
 * can run the sweep explicitly (ctest -L media_soak).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "ssd/ssd.hpp"

namespace parabit::ssd {
namespace {

constexpr Lpn kHotLpns = 128; ///< working set of the workload

SsdConfig
soakCfg(std::uint64_t seed)
{
    SsdConfig c = SsdConfig::tiny();
    c.geometry.blocksPerPlane = 16;
    c.recovery.enabled = true;
    const std::uint32_t intervals[3] = {0, 8, 48};
    c.recovery.checkpointIntervalPrograms = intervals[seed % 3];
    c.scrambleHostData = (seed % 2) == 1;
    // Ideal error model keeps payloads bit-exact (the oracle compares
    // raw pages); the pure-count disturb trigger still exercises
    // refresh-relocation under it.
    c.media.enabled = true;
    c.media.scrubInterval = ticks::fromUs(5);
    c.media.scrubWordlinesPerPass = 64;
    c.media.refreshDisturbThreshold = 256;
    c.rain.enabled = true;
    c.seed = 0xBEEFull + seed;
    return c;
}

BitVector
pattern(std::size_t bits, Lpn lpn, std::uint64_t version)
{
    BitVector v(bits, false);
    std::uint64_t s = (lpn + 1) * 0x9E3779B97F4A7C15ull + version;
    for (std::size_t i = 0; i < bits; ++i) {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        v.set(i, ((s >> 61) & 1) != 0);
    }
    return v;
}

/** Read @p lpn through the repair path: never panics on a dead plane,
 *  fails the test on genuine data loss. */
void
expectReadsBack(SsdDevice &dev, Lpn lpn, const BitVector &want, Tick now)
{
    Ftl &ftl = dev.ftl();
    ASSERT_TRUE(ftl.lookup(lpn).has_value()) << "lpn " << lpn << " lost";
    if (!ftl.pageAccessible(lpn)) {
        ASSERT_TRUE(dev.repairPage(lpn, now))
            << "uncorrectable after rebuild: lpn " << lpn;
    }
    std::vector<PhysOp> ops;
    EXPECT_EQ(ftl.readPage(lpn, ops), want) << "lpn " << lpn;
}

void
runSeed(std::uint64_t seed)
{
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    SsdDevice dev(soakCfg(seed));
    Ftl &ftl = dev.ftl();
    const std::size_t bits = dev.geometry().pageBits();
    Rng rng(seed * 0x5DEECE66Dull + 7);

    std::map<Lpn, BitVector> oracle;
    std::uint64_t version = 0;
    Tick now = 0;

    // Arm a power cut at a seeded PhysOp boundary somewhere inside the
    // mixed phase (the fill alone books a few hundred ops; reads and
    // patrol senses advance the boundary count too).
    FaultSpec cut;
    cut.cls = FaultClass::kPowerLoss;
    cut.onset = static_cast<std::uint32_t>(300 + rng.below(400));
    dev.injectFault(cut);

    // Fill, then mixed overwrites and reads with patrol pumping in
    // between; the cut fires somewhere in here.
    for (Lpn l = 0; l < kHotLpns && !ftl.powerLost(); ++l) {
        const BitVector d = pattern(bits, l, ++version);
        std::vector<PhysOp> ops;
        if (ftl.writePage(l, &d, ops))
            oracle[l] = d;
    }
    for (int step = 0; step < 4000 && !ftl.powerLost(); ++step) {
        const std::uint64_t roll = rng.below(100);
        const Lpn lpn = rng.below(kHotLpns);
        if (roll < 40) {
            const BitVector d = pattern(bits, lpn, ++version);
            std::vector<PhysOp> ops;
            if (ftl.writePage(lpn, &d, ops))
                oracle[lpn] = d;
        } else if (oracle.count(lpn) != 0 && ftl.pageAccessible(lpn)) {
            std::vector<PhysOp> ops;
            const BitVector got = ftl.readPage(lpn, ops);
            // A cut can land on this very read's op boundary; the
            // device then returns power-down zeros, not data.
            if (!ftl.powerLost()) {
                EXPECT_EQ(got, oracle[lpn])
                    << "lpn " << lpn << " step " << step;
            }
        }
        now += ticks::fromUs(1);
        dev.pumpMedia(now);
    }
    ASSERT_TRUE(ftl.powerLost())
        << "cut never fired (onset=" << cut.onset << ")";

    const RecoveryReport rep = dev.powerCycle(now);
    EXPECT_TRUE(rep.recovered);

    // Acknowledged state survived the cut and parity was recomputed.
    for (const auto &[lpn, want] : oracle)
        expectReadsBack(dev, lpn, want, now);

    // Whole-die failure: one die of one channel (never both members of
    // a stripe), chosen by seed.
    FaultSpec die;
    die.cls = FaultClass::kDieFail;
    die.plane = static_cast<std::uint32_t>((seed % 4) * 2);
    dev.injectFault(die);

    // Let the patrol find and repair some of it in the background...
    for (int round = 0; round < 4; ++round)
        now = dev.pumpMedia(dev.media()->nextPassAt() + 1);
    EXPECT_EQ(dev.media()->uncorrectable(), 0u);

    // ...and on-demand repair must cover the rest: zero uncorrectable.
    for (const auto &[lpn, want] : oracle)
        expectReadsBack(dev, lpn, want, now);

    // The repaired device keeps working.
    const BitVector d = pattern(bits, 1, ++version);
    std::vector<PhysOp> ops;
    ASSERT_TRUE(ftl.writePage(1, &d, ops));
    EXPECT_EQ(ftl.readPage(1, ops), d);
}

// 64 seeds split into four shards so ctest can run them in parallel
// (and a red shard narrows the failing range).
TEST(MediaSoak, Shard0)
{
    for (std::uint64_t s = 0; s < 16; ++s)
        runSeed(s);
}

TEST(MediaSoak, Shard1)
{
    for (std::uint64_t s = 16; s < 32; ++s)
        runSeed(s);
}

TEST(MediaSoak, Shard2)
{
    for (std::uint64_t s = 32; s < 48; ++s)
        runSeed(s);
}

TEST(MediaSoak, Shard3)
{
    for (std::uint64_t s = 48; s < 64; ++s)
        runSeed(s);
}

} // namespace
} // namespace parabit::ssd
