/**
 * @file
 * End-to-end reliability: under every injected fault class, every
 * formula either completes bit-exact against a host-computed reference
 * or surfaces a typed error — never silent corruption (the contract the
 * detect-and-escalate ladder plus host fallback provides for results
 * that bypass ECC, paper Section 5.8).
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "parabit/device.hpp"
#include "ssd/fault_injector.hpp"

namespace parabit::core {
namespace {

constexpr std::uint32_t kPages = 4;

ssd::SsdConfig
noisyTiny(std::uint64_t seed, double errors_per_page = 8.0)
{
    ssd::SsdConfig cfg = ssd::SsdConfig::tiny();
    cfg.seed = seed;
    cfg.errors.observedErrorsAtRef = errors_per_page;
    cfg.errors.wordlineBits = static_cast<double>(cfg.geometry.pageBits());
    cfg.errors.refPeCycles = 1.0;
    cfg.errors.decadesOverLife = 0.0;
    return cfg;
}

std::vector<BitVector>
randomPages(const ssd::SsdConfig &cfg, std::uint32_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitVector> out;
    for (std::uint32_t p = 0; p < n; ++p) {
        BitVector v(cfg.geometry.pageBits());
        for (auto &w : v.words())
            w = rng.next();
        v.maskTail();
        out.push_back(std::move(v));
    }
    return out;
}

BitVector
cpuRef(flash::BitwiseOp op, const BitVector &x, const BitVector &y)
{
    switch (op) {
      case flash::BitwiseOp::kAnd: return x & y;
      case flash::BitwiseOp::kOr: return x | y;
      case flash::BitwiseOp::kXor: return x ^ y;
      case flash::BitwiseOp::kXnor: return ~(x ^ y);
      case flash::BitwiseOp::kNand: return ~(x & y);
      case flash::BitwiseOp::kNor: return ~(x | y);
      default: return ~x;
    }
}

const std::vector<flash::BitwiseOp> kBinaryOps = {
    flash::BitwiseOp::kAnd,  flash::BitwiseOp::kOr,  flash::BitwiseOp::kXor,
    flash::BitwiseOp::kXnor, flash::BitwiseOp::kNand, flash::BitwiseOp::kNor,
};

struct FaultRig
{
    explicit FaultRig(std::uint64_t seed, double errors_per_page = 8.0)
        : dev(noisyTiny(seed, errors_per_page)),
          x(randomPages(dev.ssd().config(), kPages, seed ^ 1)),
          y(randomPages(dev.ssd().config(), kPages, seed ^ 2))
    {
        ReliabilityPolicy p;
        p.enabled = true;
        dev.controller().setReliability(p);
        dev.writeData(0, x);
        dev.writeData(100, y);
    }

    /** Runs every binary op; returns the silent-corruption count. */
    int
    sweep(ExecStats *total = nullptr)
    {
        int corrupt = 0;
        for (const auto op : kBinaryOps) {
            ExecResult r =
                dev.bitwise(op, 0, 100, kPages, Mode::kReAllocate);
            for (std::uint32_t p = 0; p < kPages; ++p) {
                if (p < r.pages.size() && !r.pages[p].empty()) {
                    // Whatever was handed out must be bit-exact.
                    if (r.pages[p] != cpuRef(op, x[p], y[p]))
                        ++corrupt;
                } else {
                    // Withheld data is only legal under a typed error.
                    if (r.status == ExecStatus::kOk)
                        ++corrupt;
                }
            }
            if (total)
                total->accumulate(r.stats);
        }
        return corrupt;
    }

    ParaBitDevice dev;
    std::vector<BitVector> x, y;
};

TEST(FaultInjection, ElevatedRberIsDetectedAndCorrected)
{
    // Mild enough that the known-answer self-test still trusts the
    // planes (3-vote majority absorbs it), noisy enough that the
    // single-execution rung misdelivers constantly — the regime the
    // parity/duplicate checks and vote escalation exist for.
    FaultRig rig(41, 1.0);
    for (ssd::PlaneIndex p = 0; p < rig.dev.ssd().geometry().planesTotal();
         ++p) {
        ssd::FaultSpec s;
        s.cls = ssd::FaultClass::kElevatedRber;
        s.plane = p;
        s.rberMultiplier = 4.0;
        rig.dev.ssd().injectFault(s);
    }
    rig.dev.controller().invalidatePlaneTrust();

    ExecStats stats;
    EXPECT_EQ(rig.sweep(&stats), 0) << "silent corruption detected";
    EXPECT_GT(stats.detections, 0u)
        << "at this error rate the cheap checks must fire";
    EXPECT_GT(stats.parityChecks, 0u);
}

TEST(FaultInjection, StuckBitlinesFailSelfTestAndFallBackToHost)
{
    // Stuck sense amplifiers are consistent: every redundant run agrees
    // on the same wrong answer, so only the known-answer self-test can
    // catch them.  All planes are poisoned; every op must still be
    // bit-exact via the host path.
    FaultRig rig(43, 0.0); // no random noise: isolate the stuck fault
    for (ssd::PlaneIndex p = 0; p < rig.dev.ssd().geometry().planesTotal();
         ++p) {
        ssd::FaultSpec s;
        s.cls = ssd::FaultClass::kStuckBitline;
        s.plane = p;
        s.stuckCount = 4;
        rig.dev.ssd().injectFault(s);
    }
    rig.dev.controller().invalidatePlaneTrust();

    ExecStats stats;
    EXPECT_EQ(rig.sweep(&stats), 0) << "silent corruption detected";
    EXPECT_GT(stats.selfTests, 0u);
    EXPECT_GT(stats.hostFallbacks, 0u)
        << "untrusted planes must route to the host fallback";
}

TEST(FaultInjection, ProgramFailuresRetireBlocksWithoutCorruption)
{
    FaultRig rig(47, 0.0);
    ssd::FaultSpec s;
    s.cls = ssd::FaultClass::kProgramFailure;
    s.plane = 0;
    s.failPeriod = 1; // every program into plane 0 fails
    rig.dev.ssd().injectFault(s);
    rig.dev.controller().invalidatePlaneTrust();

    EXPECT_EQ(rig.sweep(), 0) << "silent corruption detected";
    // Reallocation traffic hits plane 0 eventually; those programs fail,
    // retire blocks, and get retried elsewhere.
    EXPECT_GT(rig.dev.ssd().ftl().programFailures(), 0u);
    EXPECT_GT(rig.dev.ssd().ftl().retiredBlocks(), 0u);
}

TEST(FaultInjection, DeadPlaneSurfacesDataLossNotGarbage)
{
    FaultRig rig(53, 0.0);
    const auto yaddr = rig.dev.ssd().ftl().lookup(100);
    ASSERT_TRUE(yaddr.has_value());
    ssd::FaultSpec s;
    s.cls = ssd::FaultClass::kDeadPlane;
    s.plane = ssd::planeIndex(
        rig.dev.ssd().geometry(),
        {yaddr->channel, yaddr->chip, yaddr->die, yaddr->plane});
    rig.dev.ssd().injectFault(s);
    rig.dev.controller().invalidatePlaneTrust();

    EXPECT_EQ(rig.sweep(), 0) << "silent corruption detected";
    ExecResult r = rig.dev.bitwise(flash::BitwiseOp::kXor, 0, 100, kPages,
                                   Mode::kReAllocate);
    EXPECT_EQ(r.status, ExecStatus::kDataLoss)
        << "an unreachable operand must surface as typed data loss";
}

TEST(FaultInjection, DeadChipSurfacesDataLossNotGarbage)
{
    FaultRig rig(59, 0.0);
    const auto yaddr = rig.dev.ssd().ftl().lookup(100);
    ASSERT_TRUE(yaddr.has_value());
    ssd::FaultSpec s;
    s.cls = ssd::FaultClass::kDeadChip;
    s.plane = ssd::planeIndex(
        rig.dev.ssd().geometry(),
        {yaddr->channel, yaddr->chip, yaddr->die, yaddr->plane});
    rig.dev.ssd().injectFault(s);
    rig.dev.controller().invalidatePlaneTrust();

    EXPECT_EQ(rig.sweep(), 0) << "silent corruption detected";
    ExecResult r = rig.dev.bitwise(flash::BitwiseOp::kXor, 0, 100, kPages,
                                   Mode::kReAllocate);
    EXPECT_EQ(r.status, ExecStatus::kDataLoss);
}

TEST(FaultInjection, EraseFailuresRetireBlocksAndPreserveData)
{
    ParaBitDevice dev(noisyTiny(61, 0.0));
    ReliabilityPolicy pol;
    pol.enabled = true;
    dev.controller().setReliability(pol);

    ssd::FaultSpec s;
    s.cls = ssd::FaultClass::kEraseFailure;
    s.plane = 0;
    s.failPeriod = 1; // every erase of plane 0 fails
    dev.ssd().injectFault(s);

    // Churn a small working set hard enough to force GC (and with it,
    // erases) on every plane.
    const std::uint64_t live = 24;
    Rng rng(5);
    std::vector<BitVector> latest(live);
    for (int round = 0; round < 40; ++round) {
        for (std::uint64_t l = 0; l < live; ++l) {
            BitVector v(dev.ssd().geometry().pageBits());
            for (auto &w : v.words())
                w = rng.next();
            v.maskTail();
            latest[l] = v;
            dev.writeData(l, {v});
        }
    }
    EXPECT_GT(dev.ssd().ftl().eraseFailures(), 0u)
        << "plane-0 GC erases must have failed";
    EXPECT_GT(dev.ssd().ftl().retiredBlocks(), 0u);
    for (std::uint64_t l = 0; l < live; ++l)
        EXPECT_EQ(dev.readData(l, 1)[0], latest[l]) << "LPN " << l;

    // Computation still works on the degraded device.
    dev.writeData(200, {latest[0]});
    dev.writeData(300, {latest[1]});
    ExecResult r = dev.bitwise(flash::BitwiseOp::kAnd, 200, 300, 1,
                               Mode::kReAllocate);
    ASSERT_EQ(r.status, ExecStatus::kOk);
    ASSERT_EQ(r.pages.size(), 1u);
    EXPECT_EQ(r.pages[0], latest[0] & latest[1]);
}

TEST(FaultInjection, SeededRandomScheduleSweepHasZeroSilentCorruption)
{
    // The acceptance sweep: a reproducible random fault schedule over
    // the whole device, every fault class in play, every formula either
    // bit-exact or typed-error.
    for (const std::uint64_t seed : {101ull, 202ull, 303ull}) {
        FaultRig rig(seed);
        const auto sched = ssd::FaultInjector::randomSchedule(
            rig.dev.ssd().geometry(), seed, 6);
        for (const auto &f : sched)
            rig.dev.ssd().injectFault(f);
        rig.dev.controller().invalidatePlaneTrust();
        EXPECT_EQ(rig.sweep(), 0)
            << "silent corruption under seed " << seed;
    }
}

TEST(FaultInjection, NotIsExactUnderElevatedRber)
{
    FaultRig rig(67);
    for (ssd::PlaneIndex p = 0; p < rig.dev.ssd().geometry().planesTotal();
         ++p) {
        ssd::FaultSpec s;
        s.cls = ssd::FaultClass::kElevatedRber;
        s.plane = p;
        s.rberMultiplier = 20.0;
        rig.dev.ssd().injectFault(s);
    }
    rig.dev.controller().invalidatePlaneTrust();

    ExecResult r = rig.dev.bitwiseNot(0, kPages, Mode::kReAllocate);
    ASSERT_EQ(r.status, ExecStatus::kOk);
    ASSERT_EQ(r.pages.size(), kPages);
    for (std::uint32_t p = 0; p < kPages; ++p)
        EXPECT_EQ(r.pages[p], ~rig.x[p]) << "page " << p;
}

TEST(FaultInjection, DisabledPolicyStillRefusesDeadOperands)
{
    // Even with the reliability ladder off, data loss is typed — the
    // legacy path must never fabricate pages for unreachable operands.
    FaultRig rig(71, 0.0);
    rig.dev.controller().setReliability(ReliabilityPolicy{}); // disabled
    const auto yaddr = rig.dev.ssd().ftl().lookup(100);
    ASSERT_TRUE(yaddr.has_value());
    ssd::FaultSpec s;
    s.cls = ssd::FaultClass::kDeadPlane;
    s.plane = ssd::planeIndex(
        rig.dev.ssd().geometry(),
        {yaddr->channel, yaddr->chip, yaddr->die, yaddr->plane});
    rig.dev.ssd().injectFault(s);

    ExecResult r = rig.dev.bitwise(flash::BitwiseOp::kXor, 0, 100, kPages,
                                   Mode::kReAllocate);
    EXPECT_EQ(r.status, ExecStatus::kDataLoss);
}

} // namespace
} // namespace parabit::core
