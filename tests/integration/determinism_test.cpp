/**
 * @file
 * Determinism regression tests: the whole reliability layer is a pure
 * function of the seed.  Same seed => identical error-model bit-flip
 * pattern, identical fault schedule (fingerprint), and byte-for-byte
 * identical execution results — which is what makes fault runs
 * replayable for debugging.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "parabit/device.hpp"
#include "ssd/fault_injector.hpp"

namespace parabit::core {
namespace {

ssd::SsdConfig
noisyTiny(std::uint64_t seed)
{
    ssd::SsdConfig cfg = ssd::SsdConfig::tiny();
    cfg.seed = seed;
    cfg.errors.observedErrorsAtRef = 8.0;
    cfg.errors.wordlineBits = static_cast<double>(cfg.geometry.pageBits());
    cfg.errors.refPeCycles = 1.0;
    cfg.errors.decadesOverLife = 0.0;
    return cfg;
}

std::vector<BitVector>
randomPages(const ssd::SsdConfig &cfg, int n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitVector> out;
    for (int p = 0; p < n; ++p) {
        BitVector v(cfg.geometry.pageBits());
        for (auto &w : v.words())
            w = rng.next();
        v.maskTail();
        out.push_back(std::move(v));
    }
    return out;
}

TEST(Determinism, ErrorModelPatternRepeatsAcrossIdenticalChips)
{
    const auto mk = [](std::uint64_t seed) {
        flash::FlashGeometry g = flash::FlashGeometry::tiny();
        flash::ErrorModelConfig ec;
        ec.observedErrorsAtRef = 30.0;
        ec.wordlineBits = static_cast<double>(g.pageBits());
        ec.refPeCycles = 1.0;
        ec.decadesOverLife = 0.0;
        return std::make_unique<flash::Chip>(g, true, ec, seed);
    };
    auto a = mk(123), b = mk(123), c = mk(124);

    Rng rng(9);
    BitVector x(a->geometry().pageBits()), y(a->geometry().pageBits());
    for (std::size_t i = 0; i < x.size(); ++i) {
        x.set(i, rng.chance(0.5));
        y.set(i, rng.chance(0.5));
    }
    for (flash::Chip *chip : {a.get(), b.get(), c.get()}) {
        chip->programPage({0, 0, 0, 0, false}, &x);
        chip->programPage({0, 0, 0, 0, true}, &y);
    }

    // The injected-error pattern is part of the deterministic contract:
    // run for run, same-seed chips flip the same bits.
    bool diverged_from_c = false;
    for (int t = 0; t < 20; ++t) {
        const BitVector ra =
            a->opCoLocated(flash::BitwiseOp::kXor, {0, 0, 0, 0, false});
        const BitVector rb =
            b->opCoLocated(flash::BitwiseOp::kXor, {0, 0, 0, 0, false});
        const BitVector rc =
            c->opCoLocated(flash::BitwiseOp::kXor, {0, 0, 0, 0, false});
        EXPECT_EQ(ra, rb) << "same-seed chips diverged at run " << t;
        diverged_from_c |= ra != rc;
    }
    EXPECT_TRUE(diverged_from_c)
        << "a different seed should produce a different error pattern";
}

TEST(Determinism, InjectorScheduleAndFingerprintFollowTheSeed)
{
    ParaBitDevice d1(noisyTiny(555));
    ParaBitDevice d2(noisyTiny(555));
    ParaBitDevice d3(noisyTiny(556));

    const auto sched = ssd::FaultInjector::randomSchedule(
        d1.ssd().geometry(), d1.ssd().config().seed, 10);
    for (const auto &f : sched) {
        d1.ssd().injectFault(f);
        d2.ssd().injectFault(f);
    }
    const auto sched3 = ssd::FaultInjector::randomSchedule(
        d3.ssd().geometry(), d3.ssd().config().seed, 10);
    for (const auto &f : sched3)
        d3.ssd().injectFault(f);

    EXPECT_EQ(d1.ssd().faultInjector().scheduleFingerprint(),
              d2.ssd().faultInjector().scheduleFingerprint());
    EXPECT_NE(d1.ssd().faultInjector().scheduleFingerprint(),
              d3.ssd().faultInjector().scheduleFingerprint());
}

TEST(Determinism, FaultedExecutionIsByteForByteReproducible)
{
    const auto run = [](std::uint64_t seed) {
        ParaBitDevice dev(noisyTiny(seed));
        ReliabilityPolicy p;
        p.enabled = true;
        dev.controller().setReliability(p);

        const auto x = randomPages(dev.ssd().config(), 4, 1);
        const auto y = randomPages(dev.ssd().config(), 4, 2);
        dev.writeData(0, x);
        dev.writeData(100, y);
        for (const auto &f : ssd::FaultInjector::randomSchedule(
                 dev.ssd().geometry(), seed ^ 0xF001, 4))
            dev.ssd().injectFault(f);
        dev.controller().invalidatePlaneTrust();

        ExecResult r = dev.bitwise(flash::BitwiseOp::kXor, 0, 100, 4,
                                   Mode::kReAllocate);
        return std::tuple{std::move(r.pages), r.status, r.stats.end,
                          r.stats.hostFallbacks, r.stats.detections,
                          dev.ssd().faultInjector().scheduleFingerprint()};
    };

    const auto a = run(777);
    const auto b = run(777);
    EXPECT_EQ(a, b) << "identical seeds must replay identically: pages, "
                       "status, timing and counters";
}

} // namespace
} // namespace parabit::core
