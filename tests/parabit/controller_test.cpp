/**
 * @file
 * End-to-end controller tests on a functional tiny device: every op in
 * every execution mode must produce the host-golden result, chains must
 * fold correctly, and the instrumentation (senses, programs, realloc
 * bytes) must match the mode's expected behaviour.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nvme/parser.hpp"
#include "parabit/device.hpp"

namespace parabit::core {
namespace {

std::vector<BitVector>
randomPages(const ssd::SsdConfig &cfg, std::uint32_t n, Rng &rng)
{
    std::vector<BitVector> pages;
    for (std::uint32_t p = 0; p < n; ++p) {
        BitVector v(cfg.geometry.pageBits());
        for (std::size_t i = 0; i < v.size(); ++i)
            v.set(i, rng.chance(0.5));
        pages.push_back(std::move(v));
    }
    return pages;
}

BitVector
goldenOp(flash::BitwiseOp op, const BitVector &x, const BitVector &y)
{
    BitVector out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        out.set(i, flash::opGolden(op, x.get(i), y.get(i)));
    return out;
}

class ControllerModeOpTest
    : public ::testing::TestWithParam<std::tuple<flash::BitwiseOp, Mode>>
{
};

TEST_P(ControllerModeOpTest, BinaryOpMatchesGolden)
{
    const auto [op, mode] = GetParam();
    if (flash::isUnary(op))
        GTEST_SKIP() << "unary ops covered separately";

    ParaBitDevice dev(ssd::SsdConfig::tiny());
    Rng rng(static_cast<std::uint64_t>(op) * 10 +
            static_cast<std::uint64_t>(mode));
    const std::uint32_t pages = 3;
    const auto xs = randomPages(dev.ssd().config(), pages, rng);
    const auto ys = randomPages(dev.ssd().config(), pages, rng);

    // Layout per mode: pre-allocated pairs for kPreAllocated; LSB-only
    // for location-free (both-LSB variant); arbitrary placement for
    // ReAlloc.
    if (mode == Mode::kPreAllocated) {
        dev.writeOperandPair(0, 100, xs, ys);
    } else if (mode == Mode::kLocationFree) {
        dev.writeDataLsbOnly(0, xs);
        dev.writeDataLsbOnly(100, ys);
    } else {
        dev.writeData(0, xs);
        dev.writeData(100, ys);
    }

    const ExecResult r = dev.bitwise(op, 0, 100, pages, mode);
    ASSERT_EQ(r.pages.size(), pages);
    for (std::uint32_t p = 0; p < pages; ++p) {
        // Operand roles: X is the LSB operand, Y the MSB operand in
        // co-located mode.  Both roles commute for these ops.
        EXPECT_EQ(r.pages[p], goldenOp(op, xs[p], ys[p]))
            << opName(op) << " mode " << modeName(mode) << " page " << p;
    }
    EXPECT_GT(r.stats.senseOps, 0u);
    EXPECT_GT(r.stats.elapsed(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpsAllModes, ControllerModeOpTest,
    ::testing::Combine(
        ::testing::Values(flash::BitwiseOp::kAnd, flash::BitwiseOp::kOr,
                          flash::BitwiseOp::kXnor, flash::BitwiseOp::kNand,
                          flash::BitwiseOp::kNor, flash::BitwiseOp::kXor),
        ::testing::Values(Mode::kPreAllocated, Mode::kReAllocate,
                          Mode::kLocationFree)),
    [](const auto &info) {
        std::string n = flash::opName(std::get<0>(info.param));
        for (auto &c : n)
            if (c == '-')
                c = '_';
        switch (std::get<1>(info.param)) {
          case Mode::kPreAllocated: n += "_Pre"; break;
          case Mode::kReAllocate: n += "_ReAlloc"; break;
          case Mode::kLocationFree: n += "_LocFree"; break;
        }
        return n;
    });

TEST(Controller, NotOpAllModes)
{
    for (Mode mode :
         {Mode::kPreAllocated, Mode::kReAllocate, Mode::kLocationFree}) {
        ParaBitDevice dev(ssd::SsdConfig::tiny());
        Rng rng(55);
        const auto xs = randomPages(dev.ssd().config(), 2, rng);
        dev.writeDataLsbOnly(0, xs);
        const ExecResult r = dev.bitwiseNot(0, 2, mode, /*msb_page=*/false);
        ASSERT_EQ(r.pages.size(), 2u);
        for (int p = 0; p < 2; ++p)
            EXPECT_EQ(r.pages[static_cast<std::size_t>(p)], ~xs[static_cast<std::size_t>(p)])
                << modeName(mode);
        if (mode == Mode::kReAllocate) {
            EXPECT_GT(r.stats.reallocBytes, 0u)
                << "the paper charges NOT a reallocation in ReAlloc mode";
        } else {
            EXPECT_EQ(r.stats.reallocBytes, 0u);
        }
    }
}

TEST(Controller, PreAllocatedPairNeedsNoRealloc)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    Rng rng(1);
    const auto xs = randomPages(dev.ssd().config(), 2, rng);
    const auto ys = randomPages(dev.ssd().config(), 2, rng);
    dev.writeOperandPair(0, 100, xs, ys);
    const ExecResult r =
        dev.bitwise(flash::BitwiseOp::kAnd, 0, 100, 2, Mode::kPreAllocated);
    EXPECT_EQ(r.stats.reallocBytes, 0u);
    EXPECT_EQ(r.stats.pagePrograms, 0u);
    EXPECT_EQ(r.stats.pageReads, 0u);
}

TEST(Controller, ReAllocateAlwaysPaysTwoProgramsPerPage)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    Rng rng(2);
    const std::uint32_t pages = 4;
    const auto xs = randomPages(dev.ssd().config(), pages, rng);
    const auto ys = randomPages(dev.ssd().config(), pages, rng);
    dev.writeData(0, xs);
    dev.writeData(100, ys);
    const ExecResult r =
        dev.bitwise(flash::BitwiseOp::kOr, 0, 100, pages, Mode::kReAllocate);
    EXPECT_EQ(r.stats.pagePrograms, 2u * pages);
    EXPECT_EQ(r.stats.pageReads, 2u * pages);
    EXPECT_EQ(r.stats.reallocBytes,
              2u * pages * dev.ssd().config().geometry.pageBytes);
}

TEST(Controller, LocationFreeNeedsNoProgramsWhenSamePlane)
{
    // Both operands pinned to one plane (shared bitlines): the
    // location-free op must be sense-only — no staging, no programs.
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    Rng rng(3);
    const auto xs = randomPages(dev.ssd().config(), 1, rng);
    const auto ys = randomPages(dev.ssd().config(), 1, rng);
    dev.writeDataLsbOnlyInPlane(0, xs, 0);
    dev.writeDataLsbOnlyInPlane(100, ys, 0);
    const auto ax = dev.ssd().ftl().lookup(0);
    const auto ay = dev.ssd().ftl().lookup(100);
    ASSERT_TRUE(ax && ay);
    ASSERT_TRUE(ax->sameBitlines(*ay));
    const ExecResult r =
        dev.bitwise(flash::BitwiseOp::kXor, 0, 100, 1, Mode::kLocationFree);
    EXPECT_EQ(r.pages[0], xs[0] ^ ys[0]);
    EXPECT_EQ(r.stats.pagePrograms, 0u);
    EXPECT_EQ(r.stats.reallocBytes, 0u);
}

TEST(Controller, ChainFoldsLeftAcrossOperands)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    Rng rng(4);
    const std::uint32_t pages = 2;
    std::vector<std::vector<BitVector>> operands;
    std::vector<nvme::Lpn> lpns;
    for (int k = 0; k < 4; ++k) {
        operands.push_back(randomPages(dev.ssd().config(), pages, rng));
        const nvme::Lpn lpn = 100 * static_cast<nvme::Lpn>(k);
        // LSB-only layout so chained results can drop into free MSBs.
        dev.writeDataLsbOnly(lpn, operands.back());
        lpns.push_back(lpn);
    }
    const ExecResult r = dev.bitwiseChain(flash::BitwiseOp::kAnd, lpns, pages,
                                          Mode::kPreAllocated);
    ASSERT_EQ(r.pages.size(), pages);
    for (std::uint32_t p = 0; p < pages; ++p) {
        BitVector expect = operands[0][p];
        for (int k = 1; k < 4; ++k)
            expect &= operands[static_cast<std::size_t>(k)][p];
        EXPECT_EQ(r.pages[p], expect) << "page " << p;
    }
}

TEST(Controller, ChainInPreAllocatedUsesSingleProgramSteps)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    Rng rng(5);
    const std::uint32_t pages = 1;
    std::vector<nvme::Lpn> lpns;
    for (int k = 0; k < 3; ++k) {
        const nvme::Lpn lpn = 10 * static_cast<nvme::Lpn>(k);
        dev.writeDataLsbOnly(lpn, randomPages(dev.ssd().config(), pages, rng));
        lpns.push_back(lpn);
    }
    const ExecResult r = dev.bitwiseChain(flash::BitwiseOp::kOr, lpns, pages,
                                          Mode::kPreAllocated);
    // First op: operands in different wordlines (LSB-only layout), so X
    // is read once and dropped into Y's free MSB (one program); the
    // chain step programs the buffered result likewise — never the
    // 2-programs-per-op of full reallocation, and never re-reading the
    // running result.
    EXPECT_LE(r.stats.pagePrograms, 2u);
    EXPECT_LE(r.stats.pageReads, 1u) << "chain result stays in the buffer";
}

TEST(Controller, ChainLocationFreeIsSenseOnly)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    Rng rng(6);
    std::vector<nvme::Lpn> lpns;
    std::vector<std::vector<BitVector>> operands;
    for (int k = 0; k < 3; ++k) {
        const nvme::Lpn lpn = 10 * static_cast<nvme::Lpn>(k);
        operands.push_back(randomPages(dev.ssd().config(), 1, rng));
        dev.writeDataLsbOnly(lpn, operands.back());
        lpns.push_back(lpn);
    }
    const ExecResult r = dev.bitwiseChain(flash::BitwiseOp::kXor, lpns, 1,
                                          Mode::kLocationFree);
    BitVector expect = operands[0][0] ^ operands[1][0] ^ operands[2][0];
    ASSERT_EQ(r.pages.size(), 1u);
    EXPECT_EQ(r.pages[0], expect);
}

TEST(Controller, StatsElapsedGrowsWithWork)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    Rng rng(7);
    const auto xs = randomPages(dev.ssd().config(), 4, rng);
    const auto ys = randomPages(dev.ssd().config(), 4, rng);
    dev.writeData(0, xs);
    dev.writeData(100, ys);
    const ExecResult one =
        dev.bitwise(flash::BitwiseOp::kAnd, 0, 100, 1, Mode::kReAllocate);
    const ExecResult four =
        dev.bitwise(flash::BitwiseOp::kAnd, 0, 100, 4, Mode::kReAllocate);
    EXPECT_GT(four.stats.elapsed(), 0u);
    EXPECT_GE(four.stats.senseOps, 4 * one.stats.senseOps);
}

TEST(Controller, ResultWritebackPersistsInFlash)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    Rng rng(8);
    const auto xs = randomPages(dev.ssd().config(), 1, rng);
    const auto ys = randomPages(dev.ssd().config(), 1, rng);
    dev.writeData(0, xs);
    dev.writeData(10, ys);
    const nvme::Formula f =
        nvme::Formula::chain(flash::BitwiseOp::kXor, {0, 10}, 1);
    nvme::CmdParser parser(dev.ssd().geometry().pageBytes);
    const ExecResult r = dev.controller().executeBatches(
        parser.buildBatches(f), Mode::kReAllocate, dev.now(), true, 500);
    EXPECT_EQ(r.pages[0], xs[0] ^ ys[0]);
    EXPECT_EQ(dev.readData(500, 1)[0], xs[0] ^ ys[0]);
}

} // namespace
} // namespace parabit::core
