/**
 * @file
 * Cost-model tests: latency anchors from the paper and cross-validation
 * against the event-driven simulator on small configurations.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "parabit/cost_model.hpp"
#include "parabit/device.hpp"

namespace parabit::core {
namespace {

TEST(CostModel, StripeMatchesPaperEightMegabytePairs)
{
    // 128 chips x 2 dies x 4 planes x 8 KiB pages = 8 MiB per stripe
    // page: one maximally parallel operation consumes two 8 MiB operand
    // stripes (LSB + MSB of every active wordline), exactly the paper's
    // "parallel bitwise operation with two 8 MB operands".
    CostModel cm(ssd::SsdConfig::paperSsd());
    EXPECT_EQ(cm.stripeBytes(), 8 * bytes::kMiB);
}

TEST(CostModel, PreAllocatedOpLatencyIsSenseOnly)
{
    CostModel cm(ssd::SsdConfig::paperSsd());
    // Fig 13a anchors: AND = 25 us, OR = 50 us, XNOR/XOR = 100 us.
    const Bytes one_stripe = cm.stripeBytes();
    EXPECT_NEAR(cm.binaryOp(flash::BitwiseOp::kAnd, one_stripe,
                            Mode::kPreAllocated).seconds, 25e-6, 1e-9);
    EXPECT_NEAR(cm.binaryOp(flash::BitwiseOp::kOr, one_stripe,
                            Mode::kPreAllocated).seconds, 50e-6, 1e-9);
    EXPECT_NEAR(cm.binaryOp(flash::BitwiseOp::kXnor, one_stripe,
                            Mode::kPreAllocated).seconds, 100e-6, 1e-9);
    EXPECT_NEAR(cm.binaryOp(flash::BitwiseOp::kXor, one_stripe,
                            Mode::kPreAllocated).seconds, 100e-6, 1e-9);
}

TEST(CostModel, ReAllocDominatedByPrograms)
{
    CostModel cm(ssd::SsdConfig::paperSsd());
    const BulkCost c = cm.binaryOp(flash::BitwiseOp::kAnd, cm.stripeBytes(),
                                   Mode::kReAllocate);
    // 2 reads (25 us each) + 2 programs (640 us each) + 1 SRO (25 us).
    EXPECT_NEAR(c.seconds, (2 * 25 + 2 * 640 + 25) * 1e-6, 1e-9);
    EXPECT_EQ(c.pagePrograms, 2u * 1024); // every plane programs a pair
    EXPECT_EQ(c.reallocBytes, 2u * 1024 * 8 * bytes::kKiB);
}

TEST(CostModel, LocationFreeSenseCounts)
{
    CostModel cm(ssd::SsdConfig::paperSsd());
    // MsbLsb XOR: 7 SROs = 175 us; LsbLsb XOR: 5 SROs = 125 us.
    EXPECT_NEAR(cm.binaryOp(flash::BitwiseOp::kXor, cm.stripeBytes(),
                            Mode::kLocationFree, core::ChainStep::kNone, true,
                            flash::LocFreeVariant::kMsbLsb).seconds,
                175e-6, 1e-9);
    EXPECT_NEAR(cm.binaryOp(flash::BitwiseOp::kXor, cm.stripeBytes(),
                            Mode::kLocationFree, core::ChainStep::kNone, true,
                            flash::LocFreeVariant::kLsbLsb).seconds,
                125e-6, 1e-9);
}

TEST(CostModel, LargeOperandsScaleLinearlyInRounds)
{
    CostModel cm(ssd::SsdConfig::paperSsd());
    const Bytes stripe = cm.stripeBytes();
    const double one = cm.binaryOp(flash::BitwiseOp::kAnd, stripe,
                                   Mode::kPreAllocated).seconds;
    const double ten = cm.binaryOp(flash::BitwiseOp::kAnd, 10 * stripe,
                                   Mode::kPreAllocated).seconds;
    EXPECT_NEAR(ten, 10 * one, 1e-12);
}

TEST(CostModel, ChainChargesPreAllocOnlyOnFirstOp)
{
    CostModel cm(ssd::SsdConfig::paperSsd());
    const Bytes stripe = cm.stripeBytes();
    const BulkCost chain3 = cm.chain(flash::BitwiseOp::kAnd, 3, stripe,
                                     Mode::kPreAllocated, false);
    // Op 1: sense only (25 us).  Op 2: program result into the next
    // operand's free MSB (640 us) + sense (25 us).
    EXPECT_NEAR(chain3.seconds, (25 + 640 + 25) * 1e-6, 1e-9);
    EXPECT_EQ(chain3.pagePrograms, 1024u);
}

TEST(CostModel, NotOpChargesReallocOnlyInReallocMode)
{
    CostModel cm(ssd::SsdConfig::paperSsd());
    const Bytes stripe = cm.stripeBytes();
    const BulkCost pre = cm.notOp(true, stripe, Mode::kPreAllocated);
    const BulkCost re = cm.notOp(true, stripe, Mode::kReAllocate);
    EXPECT_NEAR(pre.seconds, 50e-6, 1e-9); // NOT-MSB: 2 SROs
    EXPECT_NEAR(re.seconds, (25 + 640 + 50) * 1e-6, 1e-9);
    EXPECT_EQ(pre.reallocBytes, 0u);
    EXPECT_GT(re.reallocBytes, 0u);
}

TEST(CostModel, CrossValidatesAgainstEventSimulator)
{
    // The closed-form model and the event-driven device must agree on
    // in-flash computation time for a single-stripe pre-allocated op.
    ssd::SsdConfig cfg = ssd::SsdConfig::tiny();
    cfg.storeData = false;
    CostModel cm(cfg);
    ParaBitDevice dev(cfg);

    const std::uint32_t pages =
        cfg.geometry.planesTotal(); // one full stripe
    dev.writeMetaOperandPair(0, 500, pages);
    const Tick before = dev.now();
    const ExecResult r = dev.bitwise(flash::BitwiseOp::kXor, 0, 500, pages,
                                     Mode::kPreAllocated,
                                     /*transfer_results=*/false);
    const double sim_sec = ticks::toSec(r.stats.end - before);
    const double model_sec =
        cm.binaryOp(flash::BitwiseOp::kXor, cm.stripeBytes(),
                    Mode::kPreAllocated, core::ChainStep::kNone, false)
            .seconds;
    // The event simulator adds command overhead (200 ns per op); allow
    // a tight tolerance above the analytic number.
    EXPECT_GE(sim_sec, model_sec);
    EXPECT_NEAR(sim_sec, model_sec, 5e-6);
}

TEST(CostModel, CrossValidatesReallocAgainstEventSimulator)
{
    ssd::SsdConfig cfg = ssd::SsdConfig::tiny();
    cfg.storeData = false;
    CostModel cm(cfg);
    ParaBitDevice dev(cfg);

    // One page per plane, arbitrary placement.
    const std::uint32_t pages = cfg.geometry.planesTotal();
    dev.writeMeta(0, pages);
    dev.writeMeta(500, pages);
    const Tick before = dev.now();
    const ExecResult r = dev.bitwise(flash::BitwiseOp::kAnd, 0, 500, pages,
                                     Mode::kReAllocate, false);
    const double sim_sec = ticks::toSec(r.stats.end - before);
    const double model_sec =
        cm.binaryOp(flash::BitwiseOp::kAnd, cm.stripeBytes(),
                    Mode::kReAllocate, core::ChainStep::kNone, false)
            .seconds;
    // Reads/programs contend on shared channels in the simulator, so it
    // can only be slower than the array-path analytic bound; they must
    // still agree within a small factor.
    EXPECT_GE(sim_sec, model_sec * 0.99);
    EXPECT_LT(sim_sec, model_sec * 2.0);
}

TEST(CostModel, EnergyScalesWithSenses)
{
    CostModel cm(ssd::SsdConfig::paperSsd());
    const Bytes stripe = cm.stripeBytes();
    const double e_and = cm.binaryOp(flash::BitwiseOp::kAnd, stripe,
                                     Mode::kPreAllocated, core::ChainStep::kNone, false)
                             .energyJ;
    const double e_xor = cm.binaryOp(flash::BitwiseOp::kXor, stripe,
                                     Mode::kPreAllocated, core::ChainStep::kNone, false)
                             .energyJ;
    EXPECT_NEAR(e_xor / e_and, 4.0, 1e-9); // 4 SROs vs 1
}

TEST(CostModel, HostWriteBoundedByArrayOrBus)
{
    CostModel cm(ssd::SsdConfig::paperSsd());
    const BulkCost c = cm.hostWrite(bytes::kGiB);
    EXPECT_GT(c.seconds, 0.0);
    EXPECT_EQ(c.pagePrograms, bytes::kGiB / (8 * bytes::kKiB));
}

} // namespace
} // namespace parabit::core
