/**
 * @file
 * Host-interface tests: formulas through the full queue path, mixed
 * I/O interference, round-robin arbitration, and back-pressure.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "obs/trace.hpp"
#include "parabit/host_interface.hpp"

namespace parabit::core {
namespace {

std::vector<BitVector>
pages(const ssd::SsdConfig &cfg, int n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitVector> out;
    for (int p = 0; p < n; ++p) {
        BitVector v(cfg.geometry.pageBits());
        for (auto &w : v.words())
            w = rng.next();
        v.maskTail();
        out.push_back(std::move(v));
    }
    return out;
}

TEST(HostInterface, FormulaThroughTheWire)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const auto x = pages(dev.ssd().config(), 1, 1);
    const auto y = pages(dev.ssd().config(), 1, 2);
    dev.writeData(0, x);
    dev.writeData(10, y);

    HostInterface host(dev, 1, 32, Mode::kReAllocate);
    nvme::Formula f;
    f.terms.push_back(nvme::Formula::Term{nvme::OperandRef::logical(0, 1),
                                          nvme::OperandRef::logical(10, 1),
                                          flash::BitwiseOp::kXor});
    const auto cid = host.submitFormula(0, f);
    ASSERT_TRUE(cid);
    EXPECT_GT(host.pump(), 0u);
    const auto c = host.reap(0);
    ASSERT_TRUE(c);
    EXPECT_EQ(c->cid, *cid);
    EXPECT_GT(c->latency, 0u);
    ASSERT_EQ(c->pages.size(), 1u);
    EXPECT_EQ(c->pages[0], x[0] ^ y[0]);
}

TEST(HostInterface, ChainedFormulaThroughTheWire)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    std::vector<std::vector<BitVector>> ops;
    std::vector<nvme::Lpn> lpns{0, 20, 40};
    for (int k = 0; k < 3; ++k) {
        ops.push_back(pages(dev.ssd().config(), 1,
                            10 + static_cast<std::uint64_t>(k)));
        dev.writeDataLsbOnly(lpns[static_cast<std::size_t>(k)],
                             ops.back());
    }
    HostInterface host(dev, 1, 32, Mode::kPreAllocated);
    const nvme::Formula f =
        nvme::Formula::chain(flash::BitwiseOp::kAnd, lpns, 1);
    ASSERT_TRUE(host.submitFormula(0, f));
    host.pump();
    const auto c = host.reap(0);
    ASSERT_TRUE(c);
    EXPECT_EQ(c->pages[0], ops[0][0] & ops[1][0] & ops[2][0]);
}

TEST(HostInterface, PlainIoCompletesWithDeviceLatency)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const auto d = pages(dev.ssd().config(), 1, 3);
    dev.writeData(5, d);
    HostInterface host(dev, 1, 8);
    ASSERT_TRUE(host.submitRead(0, 5));
    host.pump();
    const auto c = host.reap(0);
    ASSERT_TRUE(c);
    // An LSB/MSB read takes at least one 25 us sensing.
    EXPECT_GE(c->latency, ticks::fromUs(25));
    EXPECT_TRUE(c->pages.empty());
}

TEST(HostInterface, CompletionsEmitAsyncTraceSpans)
{
    obs::TraceSink &sink = obs::TraceSink::enableGlobal();
    sink.clear();
    {
        ParaBitDevice dev(ssd::SsdConfig::tiny());
        const auto x = pages(dev.ssd().config(), 1, 1);
        const auto y = pages(dev.ssd().config(), 1, 2);
        dev.writeData(0, x);
        dev.writeData(10, y);
        HostInterface host(dev, 1, 8, Mode::kReAllocate);
        ASSERT_TRUE(host.submitRead(0, 0));
        nvme::Formula f;
        f.terms.push_back(
            nvme::Formula::Term{nvme::OperandRef::logical(0, 1),
                                nvme::OperandRef::logical(10, 1),
                                flash::BitwiseOp::kXor});
        ASSERT_TRUE(host.submitFormula(0, f));
        host.pump();
        while (host.reap(0))
            ;
    }
    const std::string json = sink.toJson();
    obs::TraceSink::disableGlobal();
    // The read and the formula each close one async begin/end pair on
    // the host queue's track.
    EXPECT_NE(json.find("\"cat\":\"nvme\",\"id\":\"0\",\"name\":\"read\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"formula\""), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"name\":\"queue 0\"}"),
              std::string::npos);
    const auto count = [&json](const char *needle) {
        std::size_t n = 0;
        for (std::size_t at = json.find(needle); at != std::string::npos;
             at = json.find(needle, at + 1))
            ++n;
        return n;
    };
    // Read + host formula + the controller's own formula span: every
    // begin is closed by a matching end.
    EXPECT_GE(count("\"ph\":\"b\""), 2u);
    EXPECT_EQ(count("\"ph\":\"b\""), count("\"ph\":\"e\""));
}

TEST(HostInterface, RoundRobinServesBothQueues)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const auto d = pages(dev.ssd().config(), 1, 4);
    dev.writeData(0, d);
    dev.writeData(1, d);
    HostInterface host(dev, 2, 8);
    ASSERT_TRUE(host.submitRead(0, 0));
    ASSERT_TRUE(host.submitRead(1, 1));
    EXPECT_EQ(host.pump(), 2u);
    EXPECT_TRUE(host.reap(0).has_value());
    EXPECT_TRUE(host.reap(1).has_value());
}

TEST(HostInterface, FormulaRejectedWhenRingCannotHoldIt)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    dev.writeMeta(0, 4);
    dev.writeMeta(10, 4);
    HostInterface host(dev, 1, 4); // 3 usable slots
    nvme::Formula f;
    // 4 pages -> 8 commands: cannot fit.
    f.terms.push_back(nvme::Formula::Term{nvme::OperandRef::logical(0, 4),
                                          nvme::OperandRef::logical(10, 4),
                                          flash::BitwiseOp::kAnd});
    EXPECT_FALSE(host.submitFormula(0, f).has_value());
}

TEST(HostInterface, PartialRingFullQueuesNothingAndRingIsUnchanged)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const auto x = pages(dev.ssd().config(), 2, 11);
    const auto y = pages(dev.ssd().config(), 2, 12);
    dev.writeData(0, x);
    dev.writeData(10, y);

    HostInterface host(dev, 1, 8); // 7 usable slots
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(host.submitRead(0, 0));

    // A 2-page formula needs 4 commands; 4 + 4 > 7 -> whole submission
    // refused, nothing partially queued.
    nvme::Formula f;
    f.terms.push_back(nvme::Formula::Term{nvme::OperandRef::logical(0, 2),
                                          nvme::OperandRef::logical(10, 2),
                                          flash::BitwiseOp::kAnd});
    EXPECT_FALSE(host.submitFormula(0, f).has_value());

    // The ring holds exactly the four reads: they retire cleanly and
    // no formula completion ever appears.
    EXPECT_EQ(host.pump(), 4u);
    for (int i = 0; i < 4; ++i) {
        const auto c = host.reap(0);
        ASSERT_TRUE(c);
        EXPECT_TRUE(c->ok());
        EXPECT_TRUE(c->pages.empty());
    }
    EXPECT_FALSE(host.reap(0).has_value());

    // A formula that fits still goes through afterwards.
    nvme::Formula g;
    g.terms.push_back(nvme::Formula::Term{nvme::OperandRef::logical(0, 1),
                                          nvme::OperandRef::logical(10, 1),
                                          flash::BitwiseOp::kXor});
    ASSERT_TRUE(host.submitFormula(0, g));
    host.pump();
    const auto c = host.reap(0);
    ASSERT_TRUE(c);
    ASSERT_EQ(c->pages.size(), 1u);
    EXPECT_EQ(c->pages[0], x[0] ^ y[0]);
}

TEST(HostInterface, ErrorCompletionsKeepOrderAndCarryStatus)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const auto d = pages(dev.ssd().config(), 4, 21);
    dev.writeData(0, d); // LPNs 0..3 stripe across planes

    // Kill the plane holding LPN 1; find a survivor LPN elsewhere.
    const auto victim = dev.ssd().ftl().lookup(1);
    ASSERT_TRUE(victim.has_value());
    const ssd::PlaneIndex dead_plane = ssd::planeIndex(
        dev.ssd().geometry(),
        {victim->channel, victim->chip, victim->die, victim->plane});
    nvme::Lpn ok_lpn = 0;
    for (nvme::Lpn l = 0; l < 4; ++l) {
        const auto a = dev.ssd().ftl().lookup(l);
        ASSERT_TRUE(a.has_value());
        if (ssd::planeIndex(dev.ssd().geometry(),
                            {a->channel, a->chip, a->die, a->plane}) !=
            dead_plane) {
            ok_lpn = l;
            break;
        }
    }
    ssd::FaultSpec s;
    s.cls = ssd::FaultClass::kDeadPlane;
    s.plane = dead_plane;
    dev.ssd().injectFault(s);

    HostInterface host(dev, 1, 32, Mode::kReAllocate);
    ASSERT_TRUE(host.submitRead(0, ok_lpn));
    ASSERT_TRUE(host.submitRead(0, 1)); // dead-plane read
    nvme::Formula f;               // formula over the dead operand
    f.terms.push_back(nvme::Formula::Term{
        nvme::OperandRef::logical(ok_lpn, 1), nvme::OperandRef::logical(1, 1),
        flash::BitwiseOp::kXor});
    ASSERT_TRUE(host.submitFormula(0, f));
    ASSERT_TRUE(host.submitRead(0, ok_lpn));
    host.pump();

    // Completions reap strictly in submission order, statuses attached.
    const auto c1 = host.reap(0);
    ASSERT_TRUE(c1);
    EXPECT_TRUE(c1->ok());
    const auto c2 = host.reap(0);
    ASSERT_TRUE(c2);
    EXPECT_EQ(c2->status, nvme::kUnrecoveredReadError);
    const auto c3 = host.reap(0);
    ASSERT_TRUE(c3);
    EXPECT_EQ(c3->status, nvme::kUnrecoveredReadError)
        << "data loss must surface as a media error";
    EXPECT_TRUE(c3->pages.empty())
        << "an errored formula must never hand pages to the host";
    const auto c4 = host.reap(0);
    ASSERT_TRUE(c4);
    EXPECT_TRUE(c4->ok()) << "a clean command after an error still works";
}

TEST(HostInterface, TimeoutAbortsThenRequeuedAttemptCompletes)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const auto d = pages(dev.ssd().config(), 1, 31);
    dev.writeData(0, d);

    HostInterface host(dev, 1, 8);
    host.setCommandTimeout(1); // 1 ps: the first attempt always times out
    ASSERT_TRUE(host.submitRead(0, 0));
    EXPECT_EQ(host.pump(), 2u) << "abort plus the requeued attempt";

    const auto c1 = host.reap(0);
    ASSERT_TRUE(c1);
    EXPECT_EQ(c1->status, nvme::kCommandAborted);
    EXPECT_EQ(c1->latency, Tick{1}) << "aborts complete at the deadline";
    const auto c2 = host.reap(0);
    ASSERT_TRUE(c2);
    EXPECT_TRUE(c2->ok()) << "the second attempt runs to completion";
    EXPECT_EQ(host.timeouts(), 1u);
    EXPECT_EQ(host.requeues(), 1u);
}

TEST(HostInterface, FormulaTimeoutRequeuesWholeGroup)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const auto x = pages(dev.ssd().config(), 1, 32);
    const auto y = pages(dev.ssd().config(), 1, 33);
    dev.writeData(0, x);
    dev.writeData(10, y);

    HostInterface host(dev, 1, 16, Mode::kReAllocate);
    host.setCommandTimeout(1);
    nvme::Formula f;
    f.terms.push_back(nvme::Formula::Term{nvme::OperandRef::logical(0, 1),
                                          nvme::OperandRef::logical(10, 1),
                                          flash::BitwiseOp::kOr});
    ASSERT_TRUE(host.submitFormula(0, f));
    host.pump();

    const auto c1 = host.reap(0);
    ASSERT_TRUE(c1);
    EXPECT_EQ(c1->status, nvme::kCommandAborted);
    EXPECT_TRUE(c1->pages.empty());
    const auto c2 = host.reap(0);
    ASSERT_TRUE(c2);
    EXPECT_TRUE(c2->ok());
    ASSERT_EQ(c2->pages.size(), 1u);
    EXPECT_EQ(c2->pages[0], x[0] | y[0]);
    EXPECT_EQ(host.requeues(), 1u);
}

TEST(HostInterface, RetryBudgetAllowsTwoAbortsThenTerminalCompletion)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const auto d = pages(dev.ssd().config(), 1, 41);
    dev.writeData(0, d);

    HostInterface host(dev, 1, 8);
    RetryPolicy p;
    p.commandTimeout = 1; // 1 ps: every timed attempt misses
    p.maxRequeues = 2;
    host.setRetryPolicy(p);
    ASSERT_TRUE(host.submitRead(0, 0));
    EXPECT_EQ(host.pump(), 3u) << "two aborts plus the terminal attempt";

    const auto c1 = host.reap(0);
    ASSERT_TRUE(c1);
    EXPECT_EQ(c1->status, nvme::kCommandAborted);
    const auto c2 = host.reap(0);
    ASSERT_TRUE(c2);
    EXPECT_EQ(c2->status, nvme::kCommandAborted);
    const auto c3 = host.reap(0);
    ASSERT_TRUE(c3);
    EXPECT_TRUE(c3->ok()) << "the attempt after the last requeue runs "
                             "to completion";
    EXPECT_FALSE(host.reap(0).has_value()) << "no ghost completions";
    EXPECT_EQ(host.timeouts(), 2u);
    EXPECT_EQ(host.requeues(), 2u);
}

TEST(HostInterface, ZeroRequeueBudgetRunsFirstAttemptToCompletion)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const auto d = pages(dev.ssd().config(), 1, 42);
    dev.writeData(0, d);

    HostInterface host(dev, 1, 8);
    RetryPolicy p;
    p.commandTimeout = 1;
    p.maxRequeues = 0; // watchdog armed but never allowed to requeue
    host.setRetryPolicy(p);
    ASSERT_TRUE(host.submitRead(0, 0));
    EXPECT_EQ(host.pump(), 1u);
    const auto c = host.reap(0);
    ASSERT_TRUE(c);
    EXPECT_TRUE(c->ok());
    EXPECT_EQ(host.timeouts(), 0u);
    EXPECT_EQ(host.requeues(), 0u);
}

TEST(HostInterface, BackoffRequeueIsDeterministicAndNeverUnderflows)
{
    const auto run = [] {
        ParaBitDevice dev(ssd::SsdConfig::tiny());
        dev.writeMeta(0, 2);
        HostInterface host(dev, 1, 8);
        RetryPolicy p;
        p.commandTimeout = 1;
        p.maxRequeues = 2;
        p.backoffBase = flash::kDefaultRequeueBackoff;
        p.jitterSeed = 0xC0FFEE;
        host.setRetryPolicy(p);
        EXPECT_TRUE(host.submitRead(0, 0));
        EXPECT_TRUE(host.submitRead(0, 1));
        host.pump();
        std::vector<Tick> latencies;
        while (const auto c = host.reap(0)) {
            // A backed-off resubmission carries a future submission
            // time; its completion must never precede it.
            EXPECT_LE(c->latency, ticks::fromMs(100));
            latencies.push_back(c->latency);
        }
        EXPECT_EQ(latencies.size(), 6u) << "2 aborts + terminal, each";
        return latencies;
    };
    EXPECT_EQ(run(), run()) << "seeded jitter must replay identically";
}

TEST(HostInterface, AbortWhileArrayPhaseBookedKeepsSchedInvariants)
{
    // The watchdog aborts commands whose array-phase transactions are
    // already booked on the scheduler; the booking record must stay
    // consistent (the abort is host-side bookkeeping, not a revocation
    // of device work).
    ssd::SsdConfig cfg = ssd::SsdConfig::tiny();
    cfg.sched.traceEnabled = true;
    ParaBitDevice dev(cfg);
    const auto d = pages(dev.ssd().config(), 4, 43);
    dev.writeData(0, d);

    HostInterface host(dev, 1, 16);
    host.setCommandTimeout(1);
    for (nvme::Lpn l = 0; l < 4; ++l)
        ASSERT_TRUE(host.submitRead(0, l));
    ASSERT_TRUE(host.submitWrite(0, 1));
    host.pump();
    std::size_t reaped = 0;
    for (; host.reap(0); ++reaped)
        ;
    EXPECT_EQ(reaped, 10u) << "5 aborts + 5 completed requeued attempts";

    InvariantReport r;
    ASSERT_TRUE(dev.ssd().invariantRegistry().runSuite("sched", r));
    EXPECT_TRUE(r.ok()) << r.describe();
}

TEST(HostInterface, QueueDepthAddsLatency)
{
    // Two reads targeting the same page serialise on the same plane;
    // the second command's completion must show queueing delay.
    ssd::SsdConfig cfg = ssd::SsdConfig::tiny();
    cfg.storeData = false;
    cfg.geometry.channels = 1;
    cfg.geometry.chipsPerChannel = 1;
    cfg.geometry.planesPerDie = 1;
    ParaBitDevice dev(cfg);
    dev.writeMeta(0, 1);
    HostInterface host(dev, 1, 8);
    ASSERT_TRUE(host.submitRead(0, 0));
    ASSERT_TRUE(host.submitRead(0, 0));
    host.pump();
    const auto c1 = host.reap(0);
    const auto c2 = host.reap(0);
    ASSERT_TRUE(c1 && c2);
    EXPECT_GT(c2->latency, c1->latency)
        << "the queued command must wait for the first";
}

TEST(HostInterface, MixedIoAndComputeInterleave)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const auto x = pages(dev.ssd().config(), 1, 6);
    const auto y = pages(dev.ssd().config(), 1, 7);
    dev.writeData(0, x);
    dev.writeData(10, y);
    dev.writeData(20, x);

    HostInterface host(dev, 1, 32, Mode::kReAllocate);
    ASSERT_TRUE(host.submitRead(0, 20));
    nvme::Formula f;
    f.terms.push_back(nvme::Formula::Term{nvme::OperandRef::logical(0, 1),
                                          nvme::OperandRef::logical(10, 1),
                                          flash::BitwiseOp::kOr});
    ASSERT_TRUE(host.submitFormula(0, f));
    ASSERT_TRUE(host.submitRead(0, 20));
    EXPECT_EQ(host.pump(), 3u);

    // Completions arrive in order: read, formula, read.
    const auto c1 = host.reap(0);
    const auto c2 = host.reap(0);
    const auto c3 = host.reap(0);
    ASSERT_TRUE(c1 && c2 && c3);
    EXPECT_TRUE(c1->pages.empty());
    ASSERT_EQ(c2->pages.size(), 1u);
    EXPECT_EQ(c2->pages[0], x[0] | y[0]);
    EXPECT_TRUE(c3->pages.empty());
}

} // namespace
} // namespace parabit::core
