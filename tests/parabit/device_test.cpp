/**
 * @file
 * ParaBitDevice public-API tests: placement helpers, the device clock,
 * metadata-only mode, and misuse handling.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nvme/parser.hpp"
#include "parabit/device.hpp"

namespace parabit::core {
namespace {

std::vector<BitVector>
pages(const ssd::SsdConfig &cfg, int n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitVector> out;
    for (int p = 0; p < n; ++p) {
        BitVector v(cfg.geometry.pageBits());
        for (auto &w : v.words())
            w = rng.next();
        v.maskTail();
        out.push_back(std::move(v));
    }
    return out;
}

TEST(ParaBitDevice, ClockAdvancesMonotonically)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    EXPECT_EQ(dev.now(), 0u);
    const auto d = pages(dev.ssd().config(), 2, 1);
    dev.writeData(0, d);
    const Tick t1 = dev.now();
    EXPECT_GT(t1, 0u);
    dev.readData(0, 2);
    const Tick t2 = dev.now();
    EXPECT_GT(t2, t1);
    dev.writeData(10, d);
    EXPECT_GT(dev.now(), t2);
}

TEST(ParaBitDevice, WriteReadRoundTrip)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const auto d = pages(dev.ssd().config(), 3, 2);
    dev.writeData(5, d);
    const auto back = dev.readData(5, 3);
    ASSERT_EQ(back.size(), 3u);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(back[static_cast<std::size_t>(i)],
                  d[static_cast<std::size_t>(i)]);
}

TEST(ParaBitDevice, OperandPairIsCoLocated)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const auto x = pages(dev.ssd().config(), 2, 3);
    const auto y = pages(dev.ssd().config(), 2, 4);
    dev.writeOperandPair(0, 100, x, y);
    for (int i = 0; i < 2; ++i) {
        const auto ax = dev.ssd().ftl().lookup(static_cast<nvme::Lpn>(i));
        const auto ay =
            dev.ssd().ftl().lookup(100 + static_cast<nvme::Lpn>(i));
        ASSERT_TRUE(ax && ay);
        EXPECT_TRUE(ax->sameWordline(*ay)) << "page " << i;
        EXPECT_FALSE(ax->msb);
        EXPECT_TRUE(ay->msb);
    }
}

TEST(ParaBitDevice, LsbOnlyInPlanePinsThePlane)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const auto d = pages(dev.ssd().config(), 3, 5);
    dev.writeDataLsbOnlyInPlane(0, d, 2);
    const auto g = dev.ssd().geometry();
    for (int i = 0; i < 3; ++i) {
        const auto a = dev.ssd().ftl().lookup(static_cast<nvme::Lpn>(i));
        ASSERT_TRUE(a);
        EXPECT_FALSE(a->msb);
        EXPECT_EQ(ssd::planeIndex(g, {a->channel, a->chip, a->die,
                                      a->plane}),
                  2u)
            << "page " << i;
    }
}

TEST(ParaBitDevice, MetaModeComputesTimingWithoutData)
{
    ssd::SsdConfig cfg = ssd::SsdConfig::tiny();
    cfg.storeData = false;
    ParaBitDevice dev(cfg);
    dev.writeMetaOperandPair(0, 100, 4);
    const auto r = dev.bitwise(flash::BitwiseOp::kXor, 0, 100, 4,
                               Mode::kPreAllocated);
    EXPECT_TRUE(r.pages.empty()) << "no payloads in timing mode";
    EXPECT_GT(r.stats.senseOps, 0u);
    EXPECT_GT(r.stats.elapsed(), 0u);
}

TEST(ParaBitDevice, MismatchedPairSizesDie)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const auto x = pages(dev.ssd().config(), 2, 6);
    const auto y = pages(dev.ssd().config(), 3, 7);
    EXPECT_DEATH(dev.writeOperandPair(0, 100, x, y), "sizes differ");
}

TEST(ParaBitDevice, UnmappedOperandDies)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const auto x = pages(dev.ssd().config(), 1, 8);
    dev.writeData(0, x);
    EXPECT_DEATH(dev.bitwise(flash::BitwiseOp::kAnd, 0, 999, 1,
                             Mode::kReAllocate),
                 "unmapped");
}

TEST(ParaBitDevice, ExecuteRunsParsedBatches)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const auto x = pages(dev.ssd().config(), 1, 9);
    const auto y = pages(dev.ssd().config(), 1, 10);
    dev.writeData(0, x);
    dev.writeData(10, y);

    nvme::CmdParser parser(dev.ssd().geometry().pageBytes);
    nvme::Formula f;
    f.terms.push_back(nvme::Formula::Term{nvme::OperandRef::logical(0, 1),
                                          nvme::OperandRef::logical(10, 1),
                                          flash::BitwiseOp::kNor});
    const auto r = dev.execute(parser.parse(parser.encode(f)),
                               Mode::kReAllocate);
    ASSERT_EQ(r.pages.size(), 1u);
    EXPECT_EQ(r.pages[0], ~(x[0] | y[0]));
}

TEST(ParaBitDevice, TransferFlagControlsResultBytes)
{
    ssd::SsdConfig cfg = ssd::SsdConfig::tiny();
    cfg.storeData = false;
    ParaBitDevice dev(cfg);
    dev.writeMetaOperandPair(0, 100, 1);
    const auto with = dev.bitwise(flash::BitwiseOp::kAnd, 0, 100, 1,
                                  Mode::kPreAllocated, true);
    dev.writeMetaOperandPair(200, 300, 1);
    const auto without = dev.bitwise(flash::BitwiseOp::kAnd, 200, 300, 1,
                                     Mode::kPreAllocated, false);
    EXPECT_GT(with.stats.resultBytes, 0u);
    EXPECT_EQ(without.stats.resultBytes, 0u);
}

} // namespace
} // namespace parabit::core
