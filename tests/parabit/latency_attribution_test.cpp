/**
 * @file
 * Command-lifecycle latency attribution through the host interface:
 * per-stage histograms under obs.latency.*, SLO trackers fed from
 * served completions, and the Perfetto flow events that stitch each
 * NVMe command to the device transactions that served it — validated
 * end-to-end with the parabit-trace checker.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parabit/host_interface.hpp"
#include "trace_check.hpp"

namespace parabit::core {
namespace {

std::vector<BitVector>
pages(const ssd::SsdConfig &cfg, int n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitVector> out;
    for (int p = 0; p < n; ++p) {
        BitVector v(cfg.geometry.pageBits());
        for (auto &w : v.words())
            w = rng.next();
        v.maskTail();
        out.push_back(std::move(v));
    }
    return out;
}

/** Seed data, run a mixed read/write/formula/flush workload. */
void
workload(ParaBitDevice &dev, HostInterface &host)
{
    for (int round = 0; round < 3; ++round) {
        for (nvme::Lpn l = 0; l < 8; ++l)
            host.submitRead(0, l);
        for (nvme::Lpn l = 0; l < 2; ++l)
            host.submitWrite(0, 16 + l);
        nvme::Formula f;
        f.terms.push_back(
            nvme::Formula::Term{nvme::OperandRef::logical(200, 2),
                                nvme::OperandRef::logical(300, 2),
                                flash::BitwiseOp::kXor});
        host.submitFormula(0, f);
        host.submitFlush(0);
        host.pump();
        while (host.reap(0))
            ;
    }
    (void)dev;
}

void
seed(ParaBitDevice &dev)
{
    const auto d = pages(dev.ssd().config(), 1, 7);
    for (nvme::Lpn l = 0; l < 24; ++l)
        dev.writeData(l, d);
    dev.writeData(200, pages(dev.ssd().config(), 2, 8));
    dev.writeData(300, pages(dev.ssd().config(), 2, 9));
}

TEST(LatencyAttribution, StageHistogramsPopulate)
{
    obs::MetricsRegistry::global().setEnabled(true);
    {
        ParaBitDevice dev(ssd::SsdConfig::tiny());
        seed(dev);
        HostInterface host(dev, 1, 64, Mode::kReAllocate);
        workload(dev, host);

        const auto &hists = obs::MetricsRegistry::global().histograms();
        // Total and sq_wait are sampled for every served op class;
        // scheduler stages populate for ops that booked device time.
        EXPECT_GT(hists.at("obs.latency.read.total").total(), 0u);
        EXPECT_GT(hists.at("obs.latency.read.sq_wait").total(), 0u);
        EXPECT_GT(hists.at("obs.latency.read.array").total(), 0u);
        EXPECT_GT(hists.at("obs.latency.read.xfer_out").total(), 0u);
        EXPECT_GT(hists.at("obs.latency.read.queue").total(), 0u);
        EXPECT_GT(hists.at("obs.latency.write.total").total(), 0u);
        EXPECT_GT(hists.at("obs.latency.formula.total").total(), 0u);
        EXPECT_GT(hists.at("obs.latency.formula.array").total(), 0u);
        // Flush books no flash phases: only total/sq_wait may fill.
        EXPECT_GT(hists.at("obs.latency.flush.total").total(), 0u);
        EXPECT_EQ(hists.at("obs.latency.flush.array").total(), 0u);
    }
    obs::MetricsRegistry::global().setEnabled(false);
    obs::MetricsRegistry::global().clear();
}

TEST(LatencyAttribution, SloTrackersRecordServedCompletions)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    seed(dev);
    HostInterface host(dev, 1, 64, Mode::kReAllocate);

    obs::SloConfig cfg;
    cfg.target = 1; // everything violates: counts become predictable
    cfg.objective = 0.99;
    cfg.window = 0;
    host.setSlo(OpClass::kRead, cfg);
    host.setSlo(OpClass::kFormula, cfg);
    ASSERT_NE(host.slo(OpClass::kRead), nullptr);
    EXPECT_EQ(host.slo(OpClass::kWrite), nullptr); // opt-in per class

    workload(dev, host);
    host.finalizeSlo();

    const obs::SloTracker *read = host.slo(OpClass::kRead);
    EXPECT_EQ(read->windowsClosed(), 1u);
    EXPECT_EQ(read->violations(), 24u); // 3 rounds x 8 reads
    EXPECT_GT(read->windowP99Us(), 0.0);
    EXPECT_GT(read->burnRate(), 1.0);
    const obs::SloTracker *formula = host.slo(OpClass::kFormula);
    EXPECT_EQ(formula->violations(), 3u); // one formula per round
}

TEST(LatencyAttribution, FlowLinkedTraceValidatesEndToEnd)
{
    obs::TraceSink &sink = obs::TraceSink::enableGlobal();
    sink.clear();
    std::string json;
    {
        ParaBitDevice dev(ssd::SsdConfig::tiny());
        seed(dev);
        HostInterface host(dev, 1, 64, Mode::kReAllocate);
        workload(dev, host);
        json = sink.toJson();
    }
    obs::TraceSink::disableGlobal();

    const tracecheck::CheckResult r = tracecheck::checkTrace(json);
    EXPECT_TRUE(r.ok()) << tracecheck::toJson(r);
    // Reads, writes and formulas all emit linked flows with steps on
    // the resource tracks.
    EXPECT_GE(r.stats.flows, 30u);
    EXPECT_GT(r.stats.flowSteps, r.stats.flows);
}

TEST(LatencyAttribution, DisabledObservabilityStaysTickIdentical)
{
    // With no registry and no sink, attribution must not run — and the
    // completion stream must match an attributed run tick for tick.
    std::vector<Tick> plain, attributed;
    for (std::vector<Tick> *out : {&plain, &attributed}) {
        const bool on = out == &attributed;
        if (on)
            obs::MetricsRegistry::global().setEnabled(true);
        {
            ParaBitDevice dev(ssd::SsdConfig::tiny());
            seed(dev);
            HostInterface host(dev, 1, 64, Mode::kReAllocate);
            for (int round = 0; round < 3; ++round) {
                for (nvme::Lpn l = 0; l < 8; ++l)
                    host.submitRead(0, l);
                host.pump();
                while (auto c = host.reap(0))
                    out->push_back(c->latency);
            }
        }
        if (on) {
            obs::MetricsRegistry::global().setEnabled(false);
            obs::MetricsRegistry::global().clear();
        }
    }
    ASSERT_FALSE(plain.empty());
    EXPECT_EQ(plain, attributed);
}

} // namespace
} // namespace parabit::core
