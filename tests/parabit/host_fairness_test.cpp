/**
 * @file
 * Round-robin fairness of the host interface under ParaBit pressure:
 * a queue saturated with formula commands must not starve plain I/O on
 * sibling queues — every queue's commands retire in one pump, and the
 * deferred plain-I/O batching keeps per-queue FIFO completion order.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "parabit/host_interface.hpp"

namespace parabit::core {
namespace {

std::vector<BitVector>
pages(const ssd::SsdConfig &cfg, int n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitVector> out;
    for (int p = 0; p < n; ++p) {
        BitVector v(cfg.geometry.pageBits());
        for (auto &w : v.words())
            w = rng.next();
        v.maskTail();
        out.push_back(std::move(v));
    }
    return out;
}

TEST(HostFairness, SaturatedFormulaQueueDoesNotStarvePlainIo)
{
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const auto x = pages(dev.ssd().config(), 1, 1);
    const auto y = pages(dev.ssd().config(), 1, 2);
    dev.writeData(0, x);
    dev.writeData(10, y);
    const auto d = pages(dev.ssd().config(), 4, 3);
    dev.writeData(100, d);

    HostInterface host(dev, 3, 64, Mode::kReAllocate);

    // Queue 0: as many formulas as the ring accepts.
    nvme::Formula f;
    f.terms.push_back(nvme::Formula::Term{nvme::OperandRef::logical(0, 1),
                                          nvme::OperandRef::logical(10, 1),
                                          flash::BitwiseOp::kXor});
    std::size_t formulas = 0;
    while (host.submitFormula(0, f))
        ++formulas;
    ASSERT_GT(formulas, 4u);

    // Queues 1 and 2: plain reads and writes.
    std::vector<std::uint16_t> readCids, writeCids;
    for (int i = 0; i < 4; ++i) {
        const auto rc = host.submitRead(1, 100 + static_cast<nvme::Lpn>(i));
        const auto wc = host.submitWrite(2, 100 + static_cast<nvme::Lpn>(i));
        ASSERT_TRUE(rc && wc);
        readCids.push_back(*rc);
        writeCids.push_back(*wc);
    }

    // One pump must retire everything: round-robin fetch interleaves
    // the saturated formula queue with the plain queues.
    host.pump();

    std::size_t formulaDone = 0;
    while (auto c = host.reap(0)) {
        EXPECT_TRUE(c->ok());
        ++formulaDone;
    }
    EXPECT_EQ(formulaDone, formulas);

    // Plain queues fully served, completions in submission (FIFO)
    // order, no starvation-induced aborts.
    for (std::uint16_t q = 1; q <= 2; ++q) {
        const auto &cids = q == 1 ? readCids : writeCids;
        std::size_t i = 0;
        Tick prev = 0;
        while (auto c = host.reap(q)) {
            ASSERT_LT(i, cids.size());
            EXPECT_EQ(c->cid, cids[i]);
            EXPECT_TRUE(c->ok()) << "queue " << q << " cid " << c->cid;
            EXPECT_GE(c->latency, prev); // later submit, no earlier finish
            ++i;
        }
        EXPECT_EQ(i, cids.size()) << "queue " << q << " starved";
    }
    EXPECT_EQ(host.timeouts(), 0u);
}

TEST(HostFairness, PlainLatencyBoundedByOneFormulaRound)
{
    // With round-robin arbitration a plain read fetched in the same
    // round as the formulas completes no later than the device clock
    // after that round — it is not pushed behind the ENTIRE formula
    // backlog of the other queue.
    ParaBitDevice dev(ssd::SsdConfig::tiny());
    const auto x = pages(dev.ssd().config(), 1, 1);
    const auto y = pages(dev.ssd().config(), 1, 2);
    dev.writeData(0, x);
    dev.writeData(10, y);
    const auto d = pages(dev.ssd().config(), 1, 3);
    dev.writeData(100, d);

    HostInterface host(dev, 2, 64, Mode::kReAllocate);
    nvme::Formula f;
    f.terms.push_back(nvme::Formula::Term{nvme::OperandRef::logical(0, 1),
                                          nvme::OperandRef::logical(10, 1),
                                          flash::BitwiseOp::kXor});
    std::size_t formulas = 0;
    while (host.submitFormula(0, f))
        ++formulas;
    ASSERT_GT(formulas, 2u);
    ASSERT_TRUE(host.submitRead(1, 100));
    host.pump();

    const auto rc = host.reap(1);
    ASSERT_TRUE(rc);
    EXPECT_TRUE(rc->ok());
    // The whole pump ends at dev.now(); the single read must have
    // finished well before the full formula backlog did.
    EXPECT_LT(rc->latency, dev.now());

    std::size_t formulaDone = 0;
    while (host.reap(0))
        ++formulaDone;
    EXPECT_EQ(formulaDone, formulas);
}

} // namespace
} // namespace parabit::core
