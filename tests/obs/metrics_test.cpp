/**
 * @file
 * Unit tests for the metrics registry and its instrument handles:
 * disabled-by-default local behaviour, slot registration, aggregation
 * of same-name handles, zero(), and the JSON dump.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"

namespace parabit::obs {
namespace {

/** Enables the global registry for the test's scope, then wipes it. */
class RegistryScope
{
  public:
    RegistryScope() { MetricsRegistry::global().setEnabled(true); }

    ~RegistryScope()
    {
        MetricsRegistry::global().setEnabled(false);
        MetricsRegistry::global().clear();
    }
};

TEST(Metrics, DisabledHandlesStayLocal)
{
    ASSERT_FALSE(MetricsRegistry::global().enabled());
    Counter c("test.disabled.counter");
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    Gauge g("test.disabled.gauge");
    g.set(2.5);
    g.noteMax(1.0);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    Hist h("test.disabled.hist", 0.0, 1.0, 4);
    EXPECT_FALSE(h.live());
    h.sample(0.5); // no-op, must not crash
    // Nothing registered while disabled.
    EXPECT_EQ(MetricsRegistry::global().counters().count(
                  "test.disabled.counter"),
              0u);
    EXPECT_EQ(MetricsRegistry::global().gauges().count(
                  "test.disabled.gauge"),
              0u);
}

TEST(Metrics, EnabledHandlesRegister)
{
    RegistryScope scope;
    Counter c("test.counter");
    c += 7;
    Gauge g("test.gauge");
    g.noteMax(3.0);
    g.noteMax(1.0); // high watermark keeps 3.0
    Hist h("test.hist", 0.0, 10.0, 10);
    ASSERT_TRUE(h.live());
    h.sample(4.5);
    h.sample(-1.0);

    const MetricsRegistry &r = MetricsRegistry::global();
    ASSERT_EQ(r.counters().count("test.counter"), 1u);
    EXPECT_EQ(r.counters().at("test.counter"), 7u);
    EXPECT_DOUBLE_EQ(r.gauges().at("test.gauge"), 3.0);
    EXPECT_EQ(r.histograms().at("test.hist").total(), 2u);
    EXPECT_EQ(r.histograms().at("test.hist").underflow(), 1u);
}

TEST(Metrics, SameNameHandlesAggregate)
{
    RegistryScope scope;
    // Two devices constructing the same instrument share one slot.
    Counter a("test.shared");
    Counter b("test.shared");
    a += 2;
    b += 3;
    EXPECT_EQ(a.value(), 2u);
    EXPECT_EQ(b.value(), 3u);
    EXPECT_EQ(MetricsRegistry::global().counters().at("test.shared"), 5u);
}

TEST(Metrics, ZeroKeepsSlotsValid)
{
    RegistryScope scope;
    Counter c("test.zeroed");
    c += 9;
    MetricsRegistry::global().zero();
    EXPECT_EQ(MetricsRegistry::global().counters().at("test.zeroed"), 0u);
    // The handle's slot pointer must still be usable after zero().
    ++c;
    EXPECT_EQ(MetricsRegistry::global().counters().at("test.zeroed"), 1u);
    EXPECT_EQ(c.value(), 10u);
}

TEST(Metrics, JsonDumpContainsInstruments)
{
    RegistryScope scope;
    Counter c("a.count");
    c += 42;
    Gauge g("b.gauge");
    g.set(1.5);
    Hist h("c.hist", 0.0, 2.0, 2);
    h.sample(0.5);
    h.sample(1.5);
    const std::string json = MetricsRegistry::global().toJson();
    EXPECT_NE(json.find("\"a.count\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"b.gauge\": 1.5"), std::string::npos);
    EXPECT_NE(json.find("\"c.hist\": {\"total\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"buckets\": [1,1]"), std::string::npos);
}

TEST(Metrics, JsonDumpIsSortedAndByteStable)
{
    // The dump is diffed across runs and committed as a CI trajectory
    // artifact, so key order must be lexicographic regardless of
    // registration order and two identical registries must render
    // byte-identically.
    std::string first, second;
    for (std::string *out : {&first, &second}) {
        RegistryScope scope;
        Counter z("z.last");
        Counter a("a.first");
        Gauge m("m.middle");
        z += 9;
        a += 1;
        m.set(2.25);
        *out = MetricsRegistry::global().toJson();
    }
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
    const std::size_t a_at = first.find("\"a.first\"");
    const std::size_t z_at = first.find("\"z.last\"");
    ASSERT_NE(a_at, std::string::npos);
    ASSERT_NE(z_at, std::string::npos);
    EXPECT_LT(a_at, z_at);
}

TEST(Metrics, LateEnableDoesNotRetrofitHandles)
{
    // A handle built while disabled must stay local even if the
    // registry is switched on afterwards (benches enable first).
    Counter c("test.late");
    MetricsRegistry::global().setEnabled(true);
    ++c;
    EXPECT_EQ(c.value(), 1u);
    EXPECT_EQ(MetricsRegistry::global().counters().count("test.late"), 0u);
    MetricsRegistry::global().setEnabled(false);
    MetricsRegistry::global().clear();
}

} // namespace
} // namespace parabit::obs
