/**
 * @file
 * Unit tests for SLO tracking: the deterministic quantile sketch
 * (accuracy bound, merge, reproducibility) and the windowed tracker
 * (violation counts, burn rate, tumbling windows on the logical
 * clock).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "obs/metrics.hpp"
#include "obs/slo.hpp"

namespace parabit::obs {
namespace {

TEST(QuantileSketch, QuantilesWithinRelativeErrorBound)
{
    QuantileSketch s(0.01);
    for (int v = 1; v <= 10000; ++v)
        s.sample(static_cast<double>(v));
    EXPECT_EQ(s.count(), 10000u);
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        const double exact = q * 10000.0;
        const double got = s.quantile(q);
        // Log-bucketed: answer within gamma of the true value, plus
        // one nearest-rank step.
        EXPECT_NEAR(got, exact, exact * 0.03 + 1.0)
            << "q=" << q << " got=" << got;
    }
}

TEST(QuantileSketch, CountAboveIsExactAtBucketBoundaries)
{
    QuantileSketch s(0.01);
    for (int v = 0; v < 100; ++v)
        s.sample(v < 90 ? 10.0 : 1e6);
    EXPECT_EQ(s.countAbove(1000.0), 10u);
    EXPECT_EQ(s.countAbove(1e9), 0u);
}

TEST(QuantileSketch, SameStreamSameSketch)
{
    QuantileSketch a(0.01), b(0.01);
    for (int v = 1; v <= 1000; ++v) {
        a.sample(static_cast<double>(v * 7 % 997));
        b.sample(static_cast<double>(v * 7 % 997));
    }
    for (double q : {0.1, 0.5, 0.9, 0.99})
        EXPECT_EQ(a.quantile(q), b.quantile(q));
}

TEST(QuantileSketch, MergeMatchesUnion)
{
    QuantileSketch a(0.01), b(0.01), u(0.01);
    for (int v = 1; v <= 500; ++v) {
        a.sample(static_cast<double>(v));
        u.sample(static_cast<double>(v));
    }
    for (int v = 501; v <= 1000; ++v) {
        b.sample(static_cast<double>(v));
        u.sample(static_cast<double>(v));
    }
    ASSERT_TRUE(a.merge(b));
    EXPECT_EQ(a.count(), u.count());
    for (double q : {0.25, 0.5, 0.75, 0.99})
        EXPECT_EQ(a.quantile(q), u.quantile(q));
}

TEST(QuantileSketch, MergeRefusesShapeMismatch)
{
    QuantileSketch a(0.01), b(0.02);
    b.sample(5.0);
    EXPECT_FALSE(a.merge(b));
    EXPECT_EQ(a.count(), 0u);
}

TEST(SloTracker, CountsViolationsAndBurnRate)
{
    SloConfig cfg;
    cfg.target = ticks::fromUs(100);
    cfg.objective = 0.9; // 10% error budget
    cfg.window = 0;      // one run-length window
    SloTracker t("obs.slo.test", cfg);
    // 20 completions, 4 over target: 20% violations on a 10% budget.
    for (int i = 0; i < 16; ++i)
        t.record(ticks::fromUs(50), 1000 * (i + 1));
    for (int i = 0; i < 4; ++i)
        t.record(ticks::fromUs(200), 1000 * (17 + i));
    t.finalize(ticks::fromUs(1000));
    EXPECT_EQ(t.windowsClosed(), 1u);
    EXPECT_EQ(t.violations(), 4u);
    EXPECT_NEAR(t.burnRate(), 2.0, 1e-9);
    // p99 of the window lands in the violating population.
    EXPECT_GT(t.windowP99Us(), 100.0);
}

TEST(SloTracker, TumblingWindowsCloseOnTheLogicalClock)
{
    SloConfig cfg;
    cfg.target = ticks::fromUs(100);
    cfg.objective = 0.99;
    cfg.window = ticks::fromUs(1000);
    SloTracker t("obs.slo.test2", cfg);
    // Window 1: all fast.  Window 2: all slow.
    for (int i = 0; i < 8; ++i)
        t.record(ticks::fromUs(10), ticks::fromUs(100 * (i + 1)));
    EXPECT_EQ(t.violations(), 0u); // window 1 was clean
    for (int i = 0; i < 8; ++i)
        t.record(ticks::fromUs(500), ticks::fromUs(1100 + 100 * i));
    EXPECT_EQ(t.windowsClosed(), 1u); // first boundary crossed
    // Finalize just shy of the next boundary: closes the partial
    // second window without tacking on an empty third.
    t.finalize(ticks::fromUs(1999));
    EXPECT_EQ(t.windowsClosed(), 2u);
    EXPECT_EQ(t.violations(), 8u);
    EXPECT_GT(t.burnRate(), 1.0);
}

TEST(SloTracker, ExportsThroughTheRegistry)
{
    MetricsRegistry::global().setEnabled(true);
    {
        SloConfig cfg;
        cfg.target = ticks::fromUs(100);
        cfg.window = 0;
        SloTracker t("obs.slo.reg", cfg);
        t.record(ticks::fromUs(250), 500);
        t.finalize(1000);
        const std::string json = MetricsRegistry::global().toJson();
        EXPECT_NE(json.find("\"obs.slo.reg.violations\": 1"),
                  std::string::npos);
        EXPECT_NE(json.find("\"obs.slo.reg.windows\": 1"),
                  std::string::npos);
        EXPECT_NE(json.find("\"obs.slo.reg.p99_us\""), std::string::npos);
    }
    MetricsRegistry::global().setEnabled(false);
    MetricsRegistry::global().clear();
}

} // namespace
} // namespace parabit::obs
