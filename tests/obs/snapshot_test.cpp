/**
 * @file
 * Unit tests for periodic registry snapshots: frozen column sets,
 * CSV/JSON rendering, and the EventEngine-driven sampler.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "ssd/event_engine.hpp"

namespace parabit::obs {
namespace {

/** Enables the global registry for the test's scope, then wipes it. */
class RegistryScope
{
  public:
    RegistryScope() { MetricsRegistry::global().setEnabled(true); }

    ~RegistryScope()
    {
        MetricsRegistry::global().setEnabled(false);
        MetricsRegistry::global().clear();
    }
};

TEST(Snapshot, RecordsCountersAndGauges)
{
    RegistryScope scope;
    Counter c("snap.count");
    Gauge g("snap.gauge");
    SnapshotSeries series;
    c += 3;
    g.set(1.5);
    series.record(100);
    c += 2;
    g.set(2.5);
    series.record(200);
    ASSERT_EQ(series.size(), 2u);
    ASSERT_EQ(series.columns().size(), 2u);
    EXPECT_EQ(series.columns()[0], "snap.count");
    EXPECT_EQ(series.columns()[1], "snap.gauge");

    const std::string csv = series.toCsv();
    EXPECT_NE(csv.find("tick,snap.count,snap.gauge"), std::string::npos);
    EXPECT_NE(csv.find("100,3,1.5"), std::string::npos);
    EXPECT_NE(csv.find("200,5,2.5"), std::string::npos);

    const std::string json = series.toJson();
    EXPECT_NE(json.find("\"columns\": [\"snap.count\", \"snap.gauge\"]"),
              std::string::npos);
    EXPECT_NE(json.find("\"tick\": 200"), std::string::npos);
}

TEST(Snapshot, ColumnsFreezeAtFirstRecord)
{
    RegistryScope scope;
    Counter c("snap.first");
    ++c;
    SnapshotSeries series;
    series.record(10);
    // An instrument registered after the first record() is ignored —
    // every row keeps the same width.
    Counter late("snap.late");
    ++late;
    series.record(20);
    ASSERT_EQ(series.columns().size(), 1u);
    EXPECT_EQ(series.columns()[0], "snap.first");
    EXPECT_EQ(series.size(), 2u);
}

TEST(Snapshot, CsvEscapesHostileColumnNames)
{
    RegistryScope scope;
    // Metric names with CSV metacharacters are illegal by the lint
    // naming rule, but the renderer must not corrupt the file even if
    // one slips through (RFC 4180: quote, double embedded quotes).
    Counter comma("snap.evil,name");
    Counter quote("snap.evil\"name");
    ++comma;
    ++quote;
    SnapshotSeries series;
    series.record(10);
    const std::string csv = series.toCsv();
    EXPECT_NE(csv.find("\"snap.evil,name\""), std::string::npos);
    EXPECT_NE(csv.find("\"snap.evil\"\"name\""), std::string::npos);
    // Header row still has exactly tick + 2 columns on the first line
    // (registry order is lexicographic; '"' sorts before ',').
    const std::string header = csv.substr(0, csv.find('\n'));
    EXPECT_EQ(header, "tick,\"snap.evil\"\"name\",\"snap.evil,name\"");
}

TEST(Snapshot, SameStreamRendersByteIdenticalCsv)
{
    std::string first, second;
    for (std::string *out : {&first, &second}) {
        RegistryScope scope;
        Counter c("snap.det");
        Gauge g("snap.det_gauge");
        SnapshotSeries series;
        for (Tick t = 100; t <= 500; t += 100) {
            c += 7;
            g.set(static_cast<double>(t) * 0.25);
            series.record(t);
        }
        *out = series.toCsv();
    }
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST(Snapshot, SamplerRecordsOnTheLogicalClock)
{
    RegistryScope scope;
    Counter c("snap.engine");
    SnapshotSeries series;
    ssd::EventEngine eng;
    // Simulated work: bump the counter at t=150 and t=450.
    eng.schedule(150, [&c] { ++c; });
    eng.schedule(450, [&c] { ++c; });
    scheduleSampler(eng, series, /*period=*/100, /*horizon=*/500);
    eng.run();
    ASSERT_EQ(series.size(), 5u); // t = 100, 200, 300, 400, 500
    const std::string csv = series.toCsv();
    EXPECT_NE(csv.find("100,0"), std::string::npos);
    EXPECT_NE(csv.find("200,1"), std::string::npos);
    EXPECT_NE(csv.find("400,1"), std::string::npos);
    EXPECT_NE(csv.find("500,2"), std::string::npos);
}

TEST(Snapshot, ZeroPeriodSchedulesNothing)
{
    RegistryScope scope;
    SnapshotSeries series;
    ssd::EventEngine eng;
    scheduleSampler(eng, series, 0, 1000);
    EXPECT_EQ(eng.pending(), 0u);
    eng.run();
    EXPECT_EQ(series.size(), 0u);
}

} // namespace
} // namespace parabit::obs
