/**
 * @file
 * Unit tests for the self-profiler: self-time attribution across
 * nested scopes, the disabled fast path, and the PROFILE_SCOPE macro.
 *
 * Wall-clock durations are nondeterministic, so assertions are about
 * *structure* — entry counts, which buckets received time, totals
 * being finite and non-negative — never about specific durations.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "obs/profiler.hpp"

namespace parabit::obs {
namespace {

/** Enables the global profiler for the test's scope. */
class ProfilerScope
{
  public:
    ProfilerScope() { Profiler::enableGlobal().reset(); }
    ~ProfilerScope() { Profiler::disableGlobal(); }
};

TEST(Profiler, DisabledGlobalIsNull)
{
    EXPECT_EQ(Profiler::global(), nullptr);
    { PROFILE_SCOPE(Subsystem::kSched); } // must be a safe no-op
}

TEST(Profiler, CountsEntriesPerSubsystem)
{
    ProfilerScope scope;
    for (int i = 0; i < 3; ++i) {
        PROFILE_SCOPE(Subsystem::kEngine);
    }
    {
        PROFILE_SCOPE(Subsystem::kFtl);
    }
    const Profiler::Totals t = Profiler::global()->totals();
    EXPECT_EQ(t.entries[static_cast<std::size_t>(Subsystem::kEngine)], 3u);
    EXPECT_EQ(t.entries[static_cast<std::size_t>(Subsystem::kFtl)], 1u);
    EXPECT_EQ(t.entries[static_cast<std::size_t>(Subsystem::kSched)], 0u);
}

TEST(Profiler, SelfTimeNeverNegativeAndSumsFinite)
{
    ProfilerScope scope;
    {
        PROFILE_SCOPE(Subsystem::kSched);
        {
            // Nested: the inner stretch charges kFlashArray, not
            // kSched — self-time, not inclusive time.
            PROFILE_SCOPE(Subsystem::kFlashArray);
            volatile int sink = 0;
            for (int i = 0; i < 1000; ++i)
                sink += i;
        }
    }
    const Profiler::Totals t = Profiler::global()->totals();
    for (std::size_t s = 0; s < kNumSubsystems; ++s)
        EXPECT_GE(t.seconds[s], 0.0) << subsystemName(
            static_cast<Subsystem>(s));
    EXPECT_TRUE(std::isfinite(t.totalSeconds()));
    EXPECT_EQ(t.entries[static_cast<std::size_t>(Subsystem::kSched)], 1u);
    EXPECT_EQ(
        t.entries[static_cast<std::size_t>(Subsystem::kFlashArray)], 1u);
}

TEST(Profiler, ResetClearsTotals)
{
    ProfilerScope scope;
    {
        PROFILE_SCOPE(Subsystem::kObs);
    }
    Profiler::global()->reset();
    const Profiler::Totals t = Profiler::global()->totals();
    for (std::size_t s = 0; s < kNumSubsystems; ++s) {
        EXPECT_EQ(t.entries[s], 0u);
        EXPECT_EQ(t.seconds[s], 0.0);
    }
}

TEST(Profiler, SubsystemNamesAreStable)
{
    EXPECT_STREQ(subsystemName(Subsystem::kEngine), "engine");
    EXPECT_STREQ(subsystemName(Subsystem::kSched), "sched");
    EXPECT_STREQ(subsystemName(Subsystem::kFlashArray), "flash_array");
    EXPECT_STREQ(subsystemName(Subsystem::kFtl), "ftl");
    EXPECT_STREQ(subsystemName(Subsystem::kObs), "obs");
    EXPECT_STREQ(subsystemName(Subsystem::kOther), "other");
}

} // namespace
} // namespace parabit::obs
