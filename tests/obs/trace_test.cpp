/**
 * @file
 * Unit tests for the trace sink: track/metadata bookkeeping, integer
 * timestamp rendering, async pairing, and — the property the whole
 * design leans on — byte-identical traces across two runs of the same
 * seed and config.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bitvector.hpp"
#include "obs/trace.hpp"
#include "ssd/ssd.hpp"

namespace parabit::obs {
namespace {

TEST(TraceSink, TracksAssignStableIds)
{
    TraceSink sink;
    const TrackId a = sink.track("channels", "channel 0");
    const TrackId b = sink.track("channels", "channel 1");
    const TrackId c = sink.track("dies", "ch0 chip0 die0 plane0");
    // Same process shares a pid; re-asking returns the same track.
    EXPECT_EQ(a.pid, b.pid);
    EXPECT_NE(a.tid, b.tid);
    EXPECT_NE(a.pid, c.pid);
    const TrackId a2 = sink.track("channels", "channel 0");
    EXPECT_EQ(a.pid, a2.pid);
    EXPECT_EQ(a.tid, a2.tid);
    EXPECT_EQ(sink.trackCount(), 3u);
    // Metadata: 2 process_name + 3 thread_name events.
    EXPECT_EQ(sink.eventCount(), 5u);
}

TEST(TraceSink, SpanRendersIntegerMicroseconds)
{
    TraceSink sink;
    const TrackId t = sink.track("channels", "channel 0");
    // 2.5 us and 0.75 us in picoseconds: fractional microseconds must
    // render as exactly three decimals, integral ones bare.
    sink.span(t, "xfer_out", 2500000, 3250000);
    sink.span(t, "cmd", 4000000, 5000000);
    const std::string json = sink.toJson();
    EXPECT_NE(json.find("\"ts\":2.500,\"dur\":0.750"), std::string::npos);
    EXPECT_NE(json.find("\"ts\":4,\"dur\":1,"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"xfer_out\""), std::string::npos);
}

TEST(TraceSink, SpanArgsQuotedAndBare)
{
    TraceSink sink;
    const TrackId t = sink.track("dies", "d0");
    sink.span(t, "array", 0, 1000000,
              {{"tx", "17", false}, {"class", "read", true}});
    const std::string json = sink.toJson();
    EXPECT_NE(json.find("\"args\":{\"tx\":17,\"class\":\"read\"}"),
              std::string::npos);
}

TEST(TraceSink, AsyncPairCarriesCatIdName)
{
    TraceSink sink;
    const TrackId t = sink.track("host", "queue 0");
    sink.asyncBegin(t, "nvme", "read", 3, 1000000,
                    {{"status", "0", false}});
    sink.asyncEnd(t, "nvme", "read", 3, 9000000);
    const std::string json = sink.toJson();
    EXPECT_NE(json.find("\"ph\":\"b\",\"pid\":1,\"tid\":1,\"ts\":1,"
                        "\"cat\":\"nvme\",\"id\":\"3\",\"name\":\"read\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
}

TEST(TraceSink, FlowEventsRenderStepAndTerminus)
{
    TraceSink sink;
    const TrackId host = sink.track("host", "queue 0");
    const TrackId die = sink.track("dies", "d0");
    sink.flowStart(host, kNvmeFlowCat, kNvmeFlowName, 7, 1000000);
    sink.flowStep(die, kNvmeFlowCat, kNvmeFlowName, 7, 2000000);
    sink.flowEnd(host, kNvmeFlowCat, kNvmeFlowName, 7, 3000000);
    const std::string json = sink.toJson();
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
    // All three carry the shared cat/id the viewer stitches on, and the
    // step lands on the die track's coordinates.
    EXPECT_NE(json.find("\"cat\":\"nvme_flow\",\"id\":\"7\","
                        "\"name\":\"nvme_cmd\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"t\",\"pid\":2,\"tid\":2,\"ts\":2,"),
              std::string::npos);
}

TEST(TraceSink, MetadataNamesProcessesAndThreads)
{
    TraceSink sink;
    sink.track("channels", "channel 2");
    const std::string json = sink.toJson();
    EXPECT_NE(json.find("\"ph\":\"M\",\"pid\":1,\"tid\":0,"
                        "\"name\":\"process_name\",\"args\":{\"name\":"
                        "\"channels\"}"),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"thread_name\",\"args\":{\"name\":"
                        "\"channel 2\"}"),
              std::string::npos);
}

TEST(TraceSink, ClearDropsEverything)
{
    TraceSink sink;
    const TrackId t = sink.track("host", "q");
    sink.span(t, "s", 0, 1);
    sink.clear();
    EXPECT_EQ(sink.eventCount(), 0u);
    EXPECT_EQ(sink.trackCount(), 0u);
    EXPECT_EQ(sink.toJson(), "{\"traceEvents\":[\n\n]}\n");
}

/** One deterministic device workload traced through the global sink. */
std::string
tracedWorkload()
{
    TraceSink &sink = TraceSink::enableGlobal();
    sink.clear();
    std::string out;
    {
        ssd::SsdDevice dev(ssd::SsdConfig::tiny());
        const std::vector<const BitVector *> data(8, nullptr);
        const Tick wrote = dev.writePages(0, data, 0);
        dev.readPages(0, 8, nullptr, wrote);
        out = sink.toJson();
    }
    TraceSink::disableGlobal();
    return out;
}

TEST(TraceSink, SameSeedSameConfigIsByteIdentical)
{
    const std::string first = tracedWorkload();
    const std::string second = tracedWorkload();
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
    // Sanity: the trace actually contains scheduler spans on both the
    // channel and die track families.
    EXPECT_NE(first.find("\"channels\""), std::string::npos);
    EXPECT_NE(first.find("\"dies\""), std::string::npos);
    EXPECT_NE(first.find("\"name\":\"array\""), std::string::npos);
}

} // namespace
} // namespace parabit::obs
