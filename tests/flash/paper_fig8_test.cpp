/**
 * @file
 * Step-level verification of paper Fig 8: the two-phase location-free
 * XOR.  Phase 1 computes ~M.N through the inverted-initialised L1 and
 * stages it in L2; phase 2 computes M.~N using the M7 inverter to
 * recover the original LSB value, and the final transfer ORs the two
 * minterms into OUT.  Checked for all four (M, N) combinations with
 * node-level assertions on a scalar circuit.
 */

#include <gtest/gtest.h>

#include "flash/latch_circuit.hpp"
#include "flash/op_sequences.hpp"

namespace parabit::flash {
namespace {

/** Broadcast a concrete bit onto the symbolic circuit's SO node. */
StateVec
broadcast(bool bit)
{
    return bit ? statevec::kAllOne : statevec::kAllZero;
}

class Fig8Xor : public ::testing::TestWithParam<std::tuple<bool, bool>>
{
};

TEST_P(Fig8Xor, TwoPhaseStructure)
{
    const auto [m, n] = GetParam();

    LatchCircuit lc;

    // ---- Phase 1: compute ~M.N -------------------------------------
    // L1 initialised as Fig 7 (inverted), then a NOT-MSB-style read of
    // WL(M) leaves A = ~M.
    lc.initInverted();
    // VREAD1 against a cell whose MSB is M (companion LSB erased = 1):
    // the cell is E (above = 0) when M = 1 and S1 (above = 1) when
    // M = 0, so SO = ~M.
    lc.driveSo(broadcast(!m));
    lc.pulseM1(); // C &= ~SO = M, A regenerates to ~M
    // VREAD3: E and S1 both read "below" (SO = 0) — a no-op pulse.
    lc.driveSo(broadcast(false));
    lc.pulseM2();
    ASSERT_EQ(lc.a(), broadcast(!m)) << "A must hold ~M after phase-1 read";

    // LSB sense of WL(N): SO naturally carries ~N at VREAD2.
    lc.driveSo(broadcast(!n));
    lc.pulseM2();
    ASSERT_EQ(lc.a(), broadcast(!m && n)) << "A = ~M.N";

    // Stage into L2.
    lc.pulseM3();
    ASSERT_EQ(lc.out(), broadcast(!m && n)) << "OUT holds the first minterm";

    // ---- Phase 2: compute M.~N and OR it in ------------------------
    // Re-initialise L1 to all-ones (VREAD0 + M1), then a plain MSB read
    // leaves A = M.
    lc.driveSo(statevec::kAllOne);
    lc.pulseM1();
    ASSERT_EQ(lc.a(), statevec::kAllOne);
    lc.driveSo(broadcast(!m));
    lc.pulseM2();
    ASSERT_EQ(lc.a(), broadcast(m)) << "A must hold M";

    // LSB sense through the M7 inverter recovers the original N, so
    // A &= ~N.
    lc.driveSo(broadcast(n)); // M7 path: SO = N
    lc.pulseM2();
    ASSERT_EQ(lc.a(), broadcast(m && !n)) << "A = M.~N";

    // Final transfer ORs the second minterm into OUT.
    lc.pulseM3();
    EXPECT_EQ(lc.out(), broadcast(m != n))
        << "OUT = ~M.N + M.~N = M XOR N";
}

INSTANTIATE_TEST_SUITE_P(
    AllOperands, Fig8Xor,
    ::testing::Combine(::testing::Bool(), ::testing::Bool()),
    [](const auto &info) {
        return "M" + std::to_string(std::get<0>(info.param)) + "_N" +
               std::to_string(std::get<1>(info.param));
    });

TEST(Fig8, ProgramEncodesTheSameStructure)
{
    // The declarative program must have exactly the Fig 8 shape: an
    // inverted init, a two-SRO NOT-MSB read, an LSB sense, a transfer,
    // an L1 re-init, a two-SRO MSB read, an inverted-SO LSB sense, and
    // the final transfer.
    const MicroProgram &p = locationFreeProgram(BitwiseOp::kXor);
    ASSERT_EQ(p.steps.size(), 10u);
    EXPECT_EQ(p.steps[0].kind, MicroStep::Kind::kInitInverted);
    EXPECT_EQ(p.steps[4].kind, MicroStep::Kind::kTransfer);
    EXPECT_EQ(p.steps[5].wl, WordlineSel::kNone); // VREAD0 re-init
    EXPECT_TRUE(p.steps[8].soInverted) << "M7 recovers the original LSB";
    EXPECT_EQ(p.steps[9].kind, MicroStep::Kind::kTransfer);
    EXPECT_EQ(p.senseCount(), 7);
}

} // namespace
} // namespace parabit::flash
