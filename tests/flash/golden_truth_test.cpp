/**
 * @file
 * Exhaustive truth-table test for the op_sequences golden bits,
 * independent of the model checker and of the latch-circuit executors:
 * opGolden() is compared against a hand-written boolean oracle for all
 * 8 ops x 4 operand pairs, and the derived artifacts (opTruth columns,
 * the Gray code round trip) are re-derived from it.
 *
 * If this test and parabit-verify ever disagree, one of the two has a
 * corrupted specification — which is exactly the point of keeping them
 * independent.
 */

#include <gtest/gtest.h>

#include "flash/mlc.hpp"
#include "flash/op_sequences.hpp"

namespace parabit::flash {
namespace {

/**
 * Direct boolean-expression oracle, written without switch/lookup
 * sharing with opGolden: each op is its textbook gate formula.
 */
bool
oracle(BitwiseOp op, bool l, bool m)
{
    if (op == BitwiseOp::kAnd)
        return l & m;
    if (op == BitwiseOp::kOr)
        return l | m;
    if (op == BitwiseOp::kXnor)
        return !(l ^ m);
    if (op == BitwiseOp::kNand)
        return !(l & m);
    if (op == BitwiseOp::kNor)
        return !(l | m);
    if (op == BitwiseOp::kXor)
        return l ^ m;
    if (op == BitwiseOp::kNotLsb)
        return !l;
    return !m; // kNotMsb
}

TEST(GoldenTruth, OpGoldenMatchesOracleForAllOpsAndOperandPairs)
{
    for (int o = 0; o < kNumBitwiseOps; ++o) {
        const auto op = static_cast<BitwiseOp>(o);
        for (int l = 0; l <= 1; ++l) {
            for (int m = 0; m <= 1; ++m) {
                EXPECT_EQ(opGolden(op, l != 0, m != 0),
                          oracle(op, l != 0, m != 0))
                    << opName(op) << " lsb=" << l << " msb=" << m;
            }
        }
    }
}

TEST(GoldenTruth, UnaryOpsIgnoreTheOtherOperand)
{
    for (int l = 0; l <= 1; ++l) {
        EXPECT_EQ(opGolden(BitwiseOp::kNotLsb, l != 0, false),
                  opGolden(BitwiseOp::kNotLsb, l != 0, true));
        EXPECT_EQ(opGolden(BitwiseOp::kNotMsb, false, l != 0),
                  opGolden(BitwiseOp::kNotMsb, true, l != 0));
    }
}

TEST(GoldenTruth, OpTruthColumnsAreThePerStateGoldenBits)
{
    for (int o = 0; o < kNumBitwiseOps; ++o) {
        const auto op = static_cast<BitwiseOp>(o);
        const StateVec col = opTruth(op);
        for (int s = 0; s < kNumMlcStates; ++s) {
            const auto st = static_cast<MlcState>(s);
            EXPECT_EQ(col.at(s), oracle(op, mlcLsb(st), mlcMsb(st)))
                << opName(op) << " state " << s;
        }
    }
}

TEST(GoldenTruth, GrayCodeRoundTripsAndIsTable1)
{
    for (int l = 0; l <= 1; ++l) {
        for (int m = 0; m <= 1; ++m) {
            const MlcState st = mlcEncode(l != 0, m != 0);
            EXPECT_EQ(mlcLsb(st), l != 0);
            EXPECT_EQ(mlcMsb(st), m != 0);
        }
    }
    // Table 1 placement: E=(1/1), S1=(1/0), S2=(0/0), S3=(0/1).
    EXPECT_EQ(mlcEncode(true, true), MlcState::kE);
    EXPECT_EQ(mlcEncode(true, false), MlcState::kS1);
    EXPECT_EQ(mlcEncode(false, false), MlcState::kS2);
    EXPECT_EQ(mlcEncode(false, true), MlcState::kS3);
}

TEST(GoldenTruth, SenseVectorsSeparateNeighbouringStates)
{
    // VREAD0 < E < VREAD1 < S1 < VREAD2 < S2 < VREAD3 < S3.
    EXPECT_EQ(senseVector(VRead::kVRead0).toString(), "1111");
    EXPECT_EQ(senseVector(VRead::kVRead1).toString(), "0111");
    EXPECT_EQ(senseVector(VRead::kVRead2).toString(), "0011");
    EXPECT_EQ(senseVector(VRead::kVRead3).toString(), "0001");
}

} // namespace
} // namespace parabit::flash
