/**
 * @file
 * Functional TLC execution tests: the vectorized array must compute
 * every possible three-operand function correctly on random page data,
 * and its per-threshold SO derivation must match the state enumeration.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "flash/tlc_array.hpp"

namespace parabit::flash::tlc {
namespace {

BitVector
randomBits(std::size_t n, Rng &rng)
{
    BitVector v(n);
    for (auto &w : v.words())
        w = rng.next();
    v.maskTail();
    return v;
}

BitVector
golden(TlcVec target, const BitVector &l, const BitVector &c,
       const BitVector &m)
{
    BitVector out(l.size());
    for (std::size_t i = 0; i < l.size(); ++i) {
        const int state = tlcEncode(l.get(i), c.get(i), m.get(i));
        out.set(i, target.at(state));
    }
    return out;
}

TEST(TlcArray, NamedOpsMatchGoldenOnRandomPages)
{
    Rng rng(42);
    const std::size_t n = 512;
    const BitVector l = randomBits(n, rng);
    const BitVector c = randomBits(n, rng);
    const BitVector m = randomBits(n, rng);

    struct Named { const char *name; TlcVec t; };
    const Named ops[] = {
        {"AND3", and3Truth()},   {"OR3", or3Truth()},
        {"NAND3", nand3Truth()}, {"NOR3", nor3Truth()},
        {"XOR3", xor3Truth()},   {"XNOR3", xnor3Truth()},
        {"MAJ3", majority3Truth()},
    };
    for (const auto &op : ops)
        EXPECT_EQ(executeTlc(op.t, l, c, m), golden(op.t, l, c, m))
            << op.name;
}

TEST(TlcArray, ExhaustiveOverAllTruthVectorsOnSmallPages)
{
    // Every one of the 256 possible three-operand functions, against a
    // page that contains every cell state at least once.
    BitVector l(64), c(64), m(64);
    Rng rng(7);
    for (std::size_t i = 0; i < 64; ++i) {
        const int state = static_cast<int>(i % 8);
        l.set(i, tlcBit(state, 0));
        c.set(i, tlcBit(state, 1));
        m.set(i, tlcBit(state, 2));
    }
    for (int mask = 0; mask < 256; ++mask) {
        const TlcVec t(static_cast<std::uint8_t>(mask));
        ASSERT_EQ(executeTlc(t, l, c, m), golden(t, l, c, m))
            << "mask " << mask;
    }
}

TEST(TlcArray, MissingPagesReadAsErased)
{
    // Absent pages default to all-ones (erased look), matching the MLC
    // array convention.
    TlcLatchArray la(32);
    BitVector l(32, true), c(32, true), m(32, true);
    la.execute(synthesize(and3Truth()), TlcWordlineData{nullptr, nullptr,
                                                        nullptr});
    EXPECT_EQ(la.out(), golden(and3Truth(), l, c, m));
}

TEST(TlcArray, GoldenSelfConsistency)
{
    // MAJ3 == (L&C) | (L&M) | (C&M) bit-for-bit on random data.
    Rng rng(99);
    const std::size_t n = 300;
    const BitVector l = randomBits(n, rng);
    const BitVector c = randomBits(n, rng);
    const BitVector m = randomBits(n, rng);
    const BitVector maj = executeTlc(majority3Truth(), l, c, m);
    EXPECT_EQ(maj, (l & c) | (l & m) | (c & m));
    // XOR3 == L ^ C ^ M.
    EXPECT_EQ(executeTlc(xor3Truth(), l, c, m), l ^ c ^ m);
}

} // namespace
} // namespace parabit::flash::tlc
