/**
 * @file
 * Bit-for-bit verification of every latch-control sequence printed in
 * the paper: Figures 2, 3, 5, 6 and Tables 2-5.  Each test walks the
 * symbolic circuit through the published steps and checks the node
 * values L(SO), L(C), L(A), L(B), L(OUT) against the published vectors.
 */

#include <gtest/gtest.h>

#include "flash/latch_circuit.hpp"
#include "flash/op_sequences.hpp"
#include "flash/sequence_executor.hpp"

namespace parabit::flash {
namespace {

StateVec
sv(const char (&s)[5])
{
    return StateVec::fromString(s);
}

// ---------------------------------------------------------------- Fig 2

TEST(PaperFig2, InitialisationOfLatchingCircuit)
{
    LatchCircuit lc;
    lc.initNormal();
    EXPECT_EQ(lc.c(), sv("0000"));
    EXPECT_EQ(lc.a(), sv("1111"));
    EXPECT_EQ(lc.out(), sv("0000"));
    EXPECT_EQ(lc.b(), sv("1111"));
}

TEST(PaperFig7, InvertedInitialisation)
{
    LatchCircuit lc;
    lc.initInverted();
    EXPECT_EQ(lc.a(), sv("0000"));
    EXPECT_EQ(lc.c(), sv("1111"));
    EXPECT_EQ(lc.out(), sv("0000"));
    EXPECT_EQ(lc.b(), sv("1111"));
}

// ---------------------------------------------------------------- Fig 3

TEST(PaperFig3, LsbRead)
{
    LatchCircuit lc;
    lc.initNormal();
    lc.sense(VRead::kVRead2);
    EXPECT_EQ(lc.so(), sv("0011")); // step 1.1
    lc.pulseM2();
    EXPECT_EQ(lc.a(), sv("1100")); // step 1.3: the LSB bit value
    lc.pulseM3();
    EXPECT_EQ(lc.out(), sv("1100")); // cache-read staging
}

TEST(PaperFig3, MsbRead)
{
    LatchCircuit lc;
    lc.initNormal();
    lc.sense(VRead::kVRead1);
    EXPECT_EQ(lc.so(), sv("0111")); // step 1.1
    lc.pulseM2();
    EXPECT_EQ(lc.a(), sv("1000")); // step 1.3
    EXPECT_EQ(lc.c(), sv("0111")); // step 1.4
    lc.sense(VRead::kVRead3);
    EXPECT_EQ(lc.so(), sv("0001")); // step 2.1
    lc.pulseM1();
    EXPECT_EQ(lc.c(), sv("0110")); // step 2.3
    EXPECT_EQ(lc.a(), sv("1001")); // step 2.4: the MSB bit value
    lc.pulseM3();
    EXPECT_EQ(lc.out(), sv("1001"));
}

// --------------------------------------------------------------- Fig 5a

TEST(PaperFig5a, AndOperation)
{
    LatchCircuit lc;
    lc.initNormal();
    lc.sense(VRead::kVRead1);
    EXPECT_EQ(lc.so(), sv("0111")); // step 1.1
    lc.pulseM2();
    EXPECT_EQ(lc.a(), sv("1000")); // step 1.3
    lc.pulseM3();
    EXPECT_EQ(lc.out(), sv("1000")); // step 2.3: AND truth column
}

// --------------------------------------------------------------- Fig 5b

TEST(PaperFig5b, OrOperation)
{
    LatchCircuit lc;
    lc.initNormal();
    lc.sense(VRead::kVRead2);
    EXPECT_EQ(lc.so(), sv("0011")); // step 1.1
    lc.pulseM2();
    EXPECT_EQ(lc.a(), sv("1100")); // step 1.3
    EXPECT_EQ(lc.c(), sv("0011")); // step 1.4
    lc.sense(VRead::kVRead3);
    EXPECT_EQ(lc.so(), sv("0001")); // step 2.1
    lc.pulseM1();
    EXPECT_EQ(lc.c(), sv("0010")); // step 2.3
    EXPECT_EQ(lc.a(), sv("1101")); // step 2.4: OR truth column
    lc.pulseM3();
    EXPECT_EQ(lc.out(), sv("1101")); // step 3.3
}

// ---------------------------------------------------------------- Fig 6

TEST(PaperFig6, XnorOperationSixSteps)
{
    LatchCircuit lc;
    lc.initNormal();

    // Step 1: VREAD1 + M2.
    lc.sense(VRead::kVRead1);
    lc.pulseM2();
    EXPECT_EQ(lc.a(), sv("1000")); // step 1.3
    EXPECT_EQ(lc.c(), sv("0111")); // step 1.4

    // Step 2: transfer.
    lc.pulseM3();
    EXPECT_EQ(lc.out(), sv("1000"));

    // Step 3: VREAD0 + M2 resets L1 (SO always high).
    lc.sense(VRead::kVRead0);
    EXPECT_EQ(lc.so(), sv("1111"));
    lc.pulseM2();
    EXPECT_EQ(lc.a(), sv("0000")); // step 3.3
    EXPECT_EQ(lc.c(), sv("1111")); // step 3.4

    // Step 4: VREAD2 + M1.
    lc.sense(VRead::kVRead2);
    lc.pulseM1();
    EXPECT_EQ(lc.c(), sv("1100")); // step 4.3
    EXPECT_EQ(lc.a(), sv("0011")); // step 4.4

    // Step 5: VREAD3 + M2.
    lc.sense(VRead::kVRead3);
    EXPECT_EQ(lc.so(), sv("0001"));
    lc.pulseM2();
    EXPECT_EQ(lc.a(), sv("0010")); // step 5.3

    // Step 6: transfer merges with the step-2 content of L2.
    lc.pulseM3();
    EXPECT_EQ(lc.b(), sv("0101")); // step 6.2
    EXPECT_EQ(lc.out(), sv("1010")); // step 6.3: XNOR truth column
}

// --------------------------------------------------------------- Table 2

TEST(PaperTable2, NandRows)
{
    std::vector<SymbolicTraceRow> trace;
    runSymbolicTraced(coLocatedProgram(BitwiseOp::kNand), trace);
    ASSERT_EQ(trace.size(), 3u);

    // Row 1: initialisation.
    EXPECT_EQ(trace[0].c, sv("1111"));
    EXPECT_EQ(trace[0].a, sv("0000"));
    EXPECT_EQ(trace[0].b, sv("1111"));
    EXPECT_EQ(trace[0].out, sv("0000"));

    // Row 2: VREAD1 / M1.
    EXPECT_EQ(trace[1].so, sv("0111"));
    EXPECT_EQ(trace[1].c, sv("1000"));
    EXPECT_EQ(trace[1].a, sv("0111"));
    EXPECT_EQ(trace[1].b, sv("1111"));
    EXPECT_EQ(trace[1].out, sv("0000"));

    // Row 3: L1 to L2.
    EXPECT_EQ(trace[2].b, sv("1000"));
    EXPECT_EQ(trace[2].out, sv("0111"));
}

// --------------------------------------------------------------- Table 3

TEST(PaperTable3, NorRows)
{
    std::vector<SymbolicTraceRow> trace;
    runSymbolicTraced(coLocatedProgram(BitwiseOp::kNor), trace);
    ASSERT_EQ(trace.size(), 4u);

    EXPECT_EQ(trace[0].c, sv("1111"));
    EXPECT_EQ(trace[0].a, sv("0000"));

    // VREAD2 / M1.
    EXPECT_EQ(trace[1].so, sv("0011"));
    EXPECT_EQ(trace[1].c, sv("1100"));
    EXPECT_EQ(trace[1].a, sv("0011"));

    // VREAD3 / M2.
    EXPECT_EQ(trace[2].so, sv("0001"));
    EXPECT_EQ(trace[2].c, sv("1101"));
    EXPECT_EQ(trace[2].a, sv("0010"));

    // L1 to L2.
    EXPECT_EQ(trace[3].b, sv("1101"));
    EXPECT_EQ(trace[3].out, sv("0010"));
}

// --------------------------------------------------------------- Table 4

TEST(PaperTable4, XorRows)
{
    std::vector<SymbolicTraceRow> trace;
    runSymbolicTraced(coLocatedProgram(BitwiseOp::kXor), trace);
    ASSERT_EQ(trace.size(), 7u);

    // Row 1: initialisation.
    EXPECT_EQ(trace[0].c, sv("1111"));
    EXPECT_EQ(trace[0].a, sv("0000"));
    EXPECT_EQ(trace[0].b, sv("1111"));
    EXPECT_EQ(trace[0].out, sv("0000"));

    // Row 2: VREAD3 / M1.
    EXPECT_EQ(trace[1].so, sv("0001"));
    EXPECT_EQ(trace[1].c, sv("1110"));
    EXPECT_EQ(trace[1].a, sv("0001"));

    // Row 3: L1 to L2.
    EXPECT_EQ(trace[2].b, sv("1110"));
    EXPECT_EQ(trace[2].out, sv("0001"));

    // Row 4: VREAD0 / M2 (L1 re-initialisation).
    EXPECT_EQ(trace[3].so, sv("1111"));
    EXPECT_EQ(trace[3].c, sv("1111"));
    EXPECT_EQ(trace[3].a, sv("0000"));
    EXPECT_EQ(trace[3].out, sv("0001")); // L2 untouched

    // Row 5: VREAD1 / M1.
    EXPECT_EQ(trace[4].so, sv("0111"));
    EXPECT_EQ(trace[4].c, sv("1000"));
    EXPECT_EQ(trace[4].a, sv("0111"));

    // Row 6: VREAD2 / M2.
    EXPECT_EQ(trace[5].so, sv("0011"));
    EXPECT_EQ(trace[5].c, sv("1011"));
    EXPECT_EQ(trace[5].a, sv("0100"));

    // Row 7: L1 to L2.
    EXPECT_EQ(trace[6].b, sv("1010"));
    EXPECT_EQ(trace[6].out, sv("0101"));
}

// --------------------------------------------------------------- Table 5

TEST(PaperTable5, NotLsbRows)
{
    std::vector<SymbolicTraceRow> trace;
    runSymbolicTraced(coLocatedProgram(BitwiseOp::kNotLsb), trace);
    ASSERT_EQ(trace.size(), 3u);

    EXPECT_EQ(trace[1].so, sv("0011")); // VREAD2 / M1
    EXPECT_EQ(trace[1].c, sv("1100"));
    EXPECT_EQ(trace[1].a, sv("0011"));

    EXPECT_EQ(trace[2].b, sv("1100"));
    EXPECT_EQ(trace[2].out, sv("0011"));
}

TEST(PaperTable5, NotMsbRows)
{
    std::vector<SymbolicTraceRow> trace;
    runSymbolicTraced(coLocatedProgram(BitwiseOp::kNotMsb), trace);
    ASSERT_EQ(trace.size(), 4u);

    EXPECT_EQ(trace[1].so, sv("0111")); // VREAD1 / M1
    EXPECT_EQ(trace[1].c, sv("1000"));
    EXPECT_EQ(trace[1].a, sv("0111"));

    EXPECT_EQ(trace[2].so, sv("0001")); // VREAD3 / M2
    EXPECT_EQ(trace[2].c, sv("1001"));
    EXPECT_EQ(trace[2].a, sv("0110"));

    EXPECT_EQ(trace[3].b, sv("1001"));
    EXPECT_EQ(trace[3].out, sv("0110"));
}

} // namespace
} // namespace parabit::flash
