/**
 * @file
 * Majority-vote redundant-execution tests: the voting primitive itself,
 * error-rate reduction on a noisy chip, and cost accounting.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "flash/read_retry.hpp"

namespace parabit::flash {
namespace {

TEST(MajorityVote, SingleRunPassesThrough)
{
    const BitVector v = BitVector::fromString("1010");
    EXPECT_EQ(majorityVote({v}), v);
}

TEST(MajorityVote, ThreeWayMajority)
{
    const BitVector a = BitVector::fromString("1100");
    const BitVector b = BitVector::fromString("1010");
    const BitVector c = BitVector::fromString("1001");
    // Per-bit: 1 appears 3,1,1,1 times -> majority 1000.
    EXPECT_EQ(majorityVote({a, b, c}).toString(), "1000");
}

TEST(MajorityVote, OutvotesSingleCorruption)
{
    Rng rng(1);
    BitVector clean(300);
    for (std::size_t i = 0; i < clean.size(); ++i)
        clean.set(i, rng.chance(0.5));
    BitVector corrupt = clean;
    corrupt.set(17, !corrupt.get(17));
    corrupt.set(250, !corrupt.get(250));
    EXPECT_EQ(majorityVote({clean, corrupt, clean}), clean);
}

TEST(MajorityVote, EvenVoteCountDies)
{
    const BitVector v(8);
    EXPECT_DEATH(majorityVote({v, v}), "odd");
}

TEST(MajorityVote, EmptyBallotDies)
{
    EXPECT_DEATH(majorityVote({}), "no runs");
}

TEST(MajorityVote, MismatchedRunSizesDie)
{
    const BitVector a(8), b(16);
    EXPECT_DEATH(majorityVote({a, b, a}), "mismatched");
}

TEST(LowMarginCount, EmptyBallotDies)
{
    EXPECT_DEATH(lowMarginCount({}, 1), "no runs");
}

TEST(LowMarginCount, EvenBallotDies)
{
    const BitVector v(8);
    EXPECT_DEATH(lowMarginCount({v, v}, 1), "odd");
}

TEST(LowMarginCount, MismatchedRunSizesDie)
{
    const BitVector a(8), b(16);
    EXPECT_DEATH(lowMarginCount({a, b, a}, 1), "mismatched");
}

TEST(LowMarginCount, UnanimousBallotHasFullMargin)
{
    const BitVector v = BitVector::fromString("10110100");
    EXPECT_EQ(lowMarginCount({v, v, v}, 3), 0u);
}

TEST(LowMarginCount, SplitVoteIsLowMargin)
{
    BitVector a = BitVector::fromString("00000000");
    BitVector b = a;
    b.set(3, true); // 2-1 split at bit 3: margin 1
    EXPECT_EQ(lowMarginCount({a, b, a}, 3), 1u);
    EXPECT_EQ(lowMarginCount({a, b, a}, 1), 0u);
}

TEST(LowMarginCount, SingleRunClampsToLogicalWidth)
{
    // k = 1 < min_margin: every logical bit is low-margin, but the
    // count must clamp to the vector's width, not the padded words.
    const BitVector v(10);
    EXPECT_EQ(lowMarginCount({v}, 3), 10u);
}

struct NoisyChipFixture
{
    NoisyChipFixture()
    {
        FlashGeometry g = FlashGeometry::tiny();
        g.pageBytes = 512; // larger pages: more bits per trial
        ErrorModelConfig ec;
        // Aggressive error rate so single executions err visibly.
        ec.observedErrorsAtRef = 40.0;
        ec.wordlineBits = static_cast<double>(g.pageBits());
        ec.refPeCycles = 1.0;
        ec.decadesOverLife = 0.0;
        chip = std::make_unique<Chip>(g, true, ec, 77);

        Rng rng(5);
        x = BitVector(g.pageBits());
        y = BitVector(g.pageBits());
        for (std::size_t i = 0; i < x.size(); ++i) {
            x.set(i, rng.chance(0.5));
            y.set(i, rng.chance(0.5));
        }
        chip->programPage({0, 0, 0, 0, false}, &x);
        chip->programPage({0, 0, 0, 0, true}, &y);
    }

    std::unique_ptr<Chip> chip;
    BitVector x, y;
};

TEST(ReadRetry, VotingReducesErrorsCoLocated)
{
    NoisyChipFixture f;
    std::int64_t single = 0, voted = 0;
    for (int t = 0; t < 60; ++t) {
        const VotedResult one = opCoLocatedVoted(
            *f.chip, BitwiseOp::kXor, {0, 0, 0, 0, false}, 1);
        const VotedResult three = opCoLocatedVoted(
            *f.chip, BitwiseOp::kXor, {0, 0, 0, 0, false}, 3);
        single += one.totalBitErrors;
        voted += three.totalBitErrors;
    }
    EXPECT_GT(single, 0) << "error model must be active";
    EXPECT_LT(voted * 3, single)
        << "3-way voting should cut the error rate by far more than 3x";
}

TEST(ReadRetry, VotedResultMatchesGoldenWhenErrorsAreRare)
{
    NoisyChipFixture f;
    const VotedResult v = opCoLocatedVoted(*f.chip, BitwiseOp::kAnd,
                                           {0, 0, 0, 0, false}, 5);
    EXPECT_EQ(v.votes, 5);
    // AND has a single sensing: with 5-way voting residual errors are
    // vanishingly rare at this page size.
    EXPECT_LE(v.totalBitErrors, 1);
    const BitVector diff = v.out ^ (f.x & f.y);
    EXPECT_LE(diff.popcount(), 1u);
}

TEST(ReadRetry, LocationFreeVotingWorks)
{
    FlashGeometry g = FlashGeometry::tiny();
    ErrorModelConfig ec;
    ec.observedErrorsAtRef = 10.0;
    ec.wordlineBits = static_cast<double>(g.pageBits());
    ec.refPeCycles = 1.0;
    ec.decadesOverLife = 0.0;
    Chip chip(g, true, ec, 3);
    Rng rng(9);
    BitVector m(g.pageBits()), n(g.pageBits());
    for (std::size_t i = 0; i < m.size(); ++i) {
        m.set(i, rng.chance(0.5));
        n.set(i, rng.chance(0.5));
    }
    chip.programPage({0, 0, 0, 0, true}, &m);
    chip.programPage({0, 0, 1, 0, false}, &n);
    std::int64_t single = 0, voted = 0;
    for (int t = 0; t < 40; ++t) {
        single += opLocationFreeVoted(chip, BitwiseOp::kXor,
                                      {0, 0, 0, 0, true},
                                      {0, 0, 1, 0, false}, 1)
                      .totalBitErrors;
        voted += opLocationFreeVoted(chip, BitwiseOp::kXor,
                                     {0, 0, 0, 0, true},
                                     {0, 0, 1, 0, false}, 3)
                     .totalBitErrors;
    }
    EXPECT_GT(single, 0);
    EXPECT_LT(voted, single);
}

} // namespace
} // namespace parabit::flash
