/**
 * @file
 * Unit tests for the symbolic latch circuit beyond the paper tables:
 * invariants, pulse algebra, and the location-free driveSo path.
 */

#include <gtest/gtest.h>

#include "flash/latch_circuit.hpp"

namespace parabit::flash {
namespace {

TEST(LatchCircuit, ComplementarityInvariantHolds)
{
    // After any pulse sequence, C = ~A and OUT = ~B (latch regeneration).
    LatchCircuit lc;
    const VRead reads[] = {VRead::kVRead1, VRead::kVRead3, VRead::kVRead0,
                           VRead::kVRead2};
    int i = 0;
    for (VRead v : reads) {
        lc.sense(v);
        if (i % 2 == 0)
            lc.pulseM1();
        else
            lc.pulseM2();
        lc.pulseM3();
        EXPECT_EQ(lc.c(), ~lc.a());
        EXPECT_EQ(lc.out(), ~lc.b());
        ++i;
    }
}

TEST(LatchCircuit, M1OnlyPullsDown)
{
    // M1 can only clear bits of C (conditional ground), never set them.
    LatchCircuit lc;
    lc.initInverted(); // C = 1111
    lc.sense(VRead::kVRead2);
    lc.pulseM1();
    const StateVec c1 = lc.c();
    lc.sense(VRead::kVRead1);
    lc.pulseM1();
    const StateVec c2 = lc.c();
    EXPECT_EQ(c2 & c1, c2) << "M1 must be monotonically clearing on C";
}

TEST(LatchCircuit, M3AccumulatesOrIntoOut)
{
    // Each transfer can only add 1s to OUT (B only loses 1s).
    LatchCircuit lc;
    lc.initNormal();
    lc.sense(VRead::kVRead1);
    lc.pulseM2(); // A = 1000
    lc.pulseM3();
    const StateVec out1 = lc.out();
    lc.sense(VRead::kVRead0);
    lc.pulseM2(); // A = 0000
    lc.sense(VRead::kVRead2);
    lc.pulseM1(); // A = 0011
    lc.pulseM3();
    const StateVec out2 = lc.out();
    EXPECT_EQ(out2 & out1, out1) << "OUT accumulates OR of transfers";
    EXPECT_EQ(out2.toString(), "1011");
}

TEST(LatchCircuit, DriveSoOverridesSensing)
{
    LatchCircuit lc;
    lc.initNormal();
    lc.sense(VRead::kVRead1);
    lc.driveSo(StateVec::fromString("0101"));
    EXPECT_EQ(lc.so().toString(), "0101");
    lc.pulseM2();
    EXPECT_EQ(lc.a().toString(), "1010");
}

TEST(LatchCircuit, ReinitL1InvertedResetsOnlyL1)
{
    LatchCircuit lc;
    lc.initNormal();
    lc.sense(VRead::kVRead1);
    lc.pulseM2();
    lc.pulseM3(); // OUT = 1000
    lc.reinitL1Inverted();
    EXPECT_EQ(lc.a(), statevec::kAllZero);
    EXPECT_EQ(lc.c(), statevec::kAllOne);
    EXPECT_EQ(lc.out().toString(), "1000") << "L2 must be untouched";
}

TEST(LatchCircuit, Vread0SenseEquivalentToL1Reset)
{
    // The XNOR/XOR sequences reset L1 via a VREAD0 sense + M2; verify
    // equivalence with the direct reset.
    LatchCircuit a, b;
    a.initNormal();
    a.sense(VRead::kVRead3);
    a.pulseM2();
    a.sense(VRead::kVRead0);
    a.pulseM2();

    b.initNormal();
    b.sense(VRead::kVRead3);
    b.pulseM2();
    b.reinitL1Inverted();

    EXPECT_EQ(a.a(), b.a());
    EXPECT_EQ(a.c(), b.c());
}

} // namespace
} // namespace parabit::flash
