/**
 * @file
 * TLC extension tests: Gray map, the paper's single-sensing AND3, and
 * the run-decomposition synthesizer over all 256 possible truth vectors.
 */

#include <gtest/gtest.h>

#include "flash/tlc.hpp"

namespace parabit::flash::tlc {
namespace {

TEST(Tlc, GrayMapMatchesPaperSection441)
{
    // E=111, S1=110, S2=100, S3=101, S4=001, S5=000, S6=010, S7=011
    const std::uint8_t expect[8] = {0b111, 0b110, 0b100, 0b101,
                                    0b001, 0b000, 0b010, 0b011};
    for (int s = 0; s < kNumTlcStates; ++s) {
        const std::uint8_t got =
            static_cast<std::uint8_t>((tlcBit(s, 0) << 2) |
                                      (tlcBit(s, 1) << 1) | tlcBit(s, 2));
        EXPECT_EQ(got, expect[s]) << "state " << s;
    }
}

TEST(Tlc, EncodeIsInverse)
{
    for (int s = 0; s < kNumTlcStates; ++s)
        EXPECT_EQ(tlcEncode(tlcBit(s, 0), tlcBit(s, 1), tlcBit(s, 2)), s);
}

TEST(Tlc, SenseVectors)
{
    EXPECT_EQ(senseVector(0).toString(), "11111111");
    EXPECT_EQ(senseVector(1).toString(), "01111111");
    EXPECT_EQ(senseVector(4).toString(), "00001111");
    EXPECT_EQ(senseVector(7).toString(), "00000001");
}

TEST(Tlc, And3IsSingleSensingAtVread1)
{
    // Paper Section 4.4.1: AND over the three TLC pages needs just the
    // VREAD1 sensing that isolates state E.
    const TlcProgram p = synthesize(and3Truth());
    EXPECT_EQ(p.senseCount(), 1);
    EXPECT_EQ(runSymbolic(p), and3Truth());
    EXPECT_EQ(and3Truth().toString(), "10000000");
}

TEST(Tlc, Nand3IsSingleSensing)
{
    const TlcProgram p = synthesize(nand3Truth());
    EXPECT_EQ(p.senseCount(), 1);
    EXPECT_EQ(runSymbolic(p), nand3Truth());
}

TEST(Tlc, NamedTruthVectors)
{
    // Only state S5 stores 000, so OR3 is 0 exactly there (position 5).
    EXPECT_EQ(or3Truth().toString(), "11111011");
    EXPECT_EQ(nor3Truth().toString(), "00000100");
    EXPECT_EQ(xor3Truth(), ~xnor3Truth());
    // Majority: at least two 1-bits among (lsb, csb, msb).
    for (int s = 0; s < kNumTlcStates; ++s) {
        const int ones = tlcBit(s, 0) + tlcBit(s, 1) + tlcBit(s, 2);
        EXPECT_EQ(majority3Truth().at(s), ones >= 2) << "state " << s;
    }
}

TEST(Tlc, SynthesizerIsExhaustivelyCorrect)
{
    // Every possible 8-state truth vector must synthesize and execute
    // to itself.
    for (int mask = 0; mask < 256; ++mask) {
        const TlcVec target(static_cast<std::uint8_t>(mask));
        const TlcProgram p = synthesize(target);
        EXPECT_EQ(runSymbolic(p), target) << "mask " << mask;
    }
}

TEST(Tlc, SynthesizerSenseCountIsRunBased)
{
    // k runs of consecutive 1s cost at most 3k-1 sensings (2 bounds per
    // run plus re-inits between runs) and at least 1 (unless trivial).
    for (int mask = 1; mask < 256; ++mask) {
        const TlcVec target(static_cast<std::uint8_t>(mask));
        int runs = 0;
        for (int s = 0; s < 8; ++s)
            if (target.at(s) && (s == 0 || !target.at(s - 1)))
                ++runs;
        const TlcProgram p = synthesize(target);
        EXPECT_LE(p.senseCount(), 3 * runs) << "mask " << mask;
        if (mask != 0xFF) {
            EXPECT_GE(p.senseCount(), 1) << "mask " << mask;
        }
    }
}

TEST(Tlc, ConstantVectorsSynthesize)
{
    EXPECT_EQ(runSymbolic(synthesize(TlcVec::allZero())), TlcVec::allZero());
    EXPECT_EQ(runSymbolic(synthesize(TlcVec::allOnes())), TlcVec::allOnes());
}

TEST(Tlc, Xor3CostReflectsAlternation)
{
    // XOR3 = 10101010 has four single-state runs: the most expensive
    // shape for the synthesizer.
    const TlcProgram p = synthesize(xor3Truth());
    EXPECT_EQ(runSymbolic(p), xor3Truth());
    EXPECT_GE(p.senseCount(), 8);
}

TEST(Tlc, DescribePrintsSteps)
{
    const std::string d = synthesize(and3Truth()).describe();
    EXPECT_NE(d.find("VREAD1"), std::string::npos);
    EXPECT_NE(d.find("transfer"), std::string::npos);
}

} // namespace
} // namespace parabit::flash::tlc
