/**
 * @file
 * Error-model tests: calibration anchor, exponential growth, injection
 * statistics (the basis of the Fig 17 reproduction).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "flash/error_model.hpp"

namespace parabit::flash {
namespace {

TEST(ErrorModel, IdealInjectsNothing)
{
    ErrorModel em(ErrorModelConfig::ideal());
    EXPECT_FALSE(em.enabled());
    EXPECT_EQ(em.rberPerSense(5000), 0.0);
    Rng rng(1);
    BitVector so(65536, true);
    EXPECT_EQ(em.inject(so, 5000, rng), 0);
    EXPECT_EQ(so.popcount(), so.size());
}

TEST(ErrorModel, AnchorMatchesPaperFig17)
{
    // At 5K P/E, 7 sensings over a 65536-bit wordline must average
    // 0.945 *observed* output errors; with the measured propagation
    // survival of 0.404, the raw injected-flip mean is 0.945 / 0.404.
    ErrorModel em;
    const double rber = em.rberPerSense(5000);
    EXPECT_NEAR(rber * 0.404 * 7 * 65536, 0.945, 1e-9);
}

TEST(ErrorModel, GrowsExponentiallyWithPe)
{
    ErrorModel em;
    const double r0 = em.rberPerSense(0);
    const double r5k = em.rberPerSense(5000);
    EXPECT_NEAR(r5k / r0, 10.0, 1e-6); // one decade over life (default)
    // Midpoint: half a decade.
    EXPECT_NEAR(em.rberPerSense(2500) / r0, std::sqrt(10.0), 1e-6);
}

TEST(ErrorModel, InjectionMeanMatchesRate)
{
    ErrorModel em;
    Rng rng(42);
    const int trials = 4000;
    std::int64_t flips = 0;
    for (int t = 0; t < trials; ++t) {
        BitVector so(65536, false);
        flips += em.inject(so, 5000, rng);
    }
    // Expected flips per injection: 65536 * rber(5000)
    // = 0.945 / (0.404 * 7) = 0.334.
    const double mean = static_cast<double>(flips) / trials;
    EXPECT_NEAR(mean, 0.945 / (0.404 * 7.0), 0.03);
}

TEST(ErrorModel, InjectionActuallyFlipsBits)
{
    ErrorModelConfig cfg;
    cfg.observedErrorsAtRef = 0.01 * cfg.propagationSurvival *
                              cfg.refSensings * cfg.wordlineBits;
    cfg.refPeCycles = 100;
    ErrorModel em(cfg);
    Rng rng(7);
    BitVector so(10000, false);
    const int flips = em.inject(so, 100, rng);
    EXPECT_GT(flips, 0);
    // Colliding flip positions toggle a bit back, so the surviving
    // count is bounded by (and shares parity with) the flip count.
    EXPECT_LE(so.popcount(), static_cast<std::size_t>(flips));
    EXPECT_GT(so.popcount(), 0u);
    EXPECT_EQ(so.popcount() % 2, static_cast<std::size_t>(flips) % 2);
}

TEST(ErrorModel, MoreCyclingMeansMoreErrors)
{
    ErrorModel em;
    Rng rng(11);
    auto total = [&](std::uint32_t pe) {
        std::int64_t sum = 0;
        for (int t = 0; t < 3000; ++t) {
            BitVector so(65536, false);
            sum += em.inject(so, pe, rng);
        }
        return sum;
    };
    EXPECT_LT(total(500), total(5000));
}

} // namespace
} // namespace parabit::flash
