/**
 * @file
 * Block lifecycle tests: page states, program-before-erase protection,
 * payload storage, erase counting.
 */

#include <gtest/gtest.h>

#include "flash/block.hpp"

namespace parabit::flash {
namespace {

TEST(Block, StartsFree)
{
    Block b(8, 64, true);
    EXPECT_EQ(b.wordlines(), 8u);
    EXPECT_EQ(b.eraseCount(), 0u);
    EXPECT_EQ(b.validPages(), 0u);
    EXPECT_EQ(b.freePages(), 16u);
    for (std::uint32_t wl = 0; wl < 8; ++wl) {
        EXPECT_EQ(b.pageState(wl, false), PageState::kFree);
        EXPECT_EQ(b.pageState(wl, true), PageState::kFree);
    }
}

TEST(Block, ProgramStoresDataAndChangesState)
{
    Block b(4, 16, true);
    const BitVector d = BitVector::fromString("1010101010101010");
    b.program(1, false, &d);
    EXPECT_EQ(b.pageState(1, false), PageState::kValid);
    EXPECT_EQ(b.pageState(1, true), PageState::kFree);
    ASSERT_NE(b.pageData(1, false), nullptr);
    EXPECT_EQ(*b.pageData(1, false), d);
    EXPECT_EQ(b.validPages(), 1u);
    EXPECT_EQ(b.freePages(), 7u);
}

TEST(Block, TimingOnlyModeKeepsNoPayload)
{
    Block b(4, 16, false);
    const BitVector d(16, true);
    b.program(0, false, &d);
    EXPECT_EQ(b.pageState(0, false), PageState::kValid);
    EXPECT_EQ(b.pageData(0, false), nullptr);
}

TEST(Block, ProgramTwiceDies)
{
    Block b(4, 16, true);
    b.program(0, false, nullptr);
    EXPECT_DEATH(b.program(0, false, nullptr), "not free");
}

TEST(Block, InvalidateRequiresValid)
{
    Block b(4, 16, true);
    EXPECT_DEATH(b.invalidate(0, false), "not valid");
    b.program(0, false, nullptr);
    b.invalidate(0, false);
    EXPECT_EQ(b.pageState(0, false), PageState::kInvalid);
    EXPECT_EQ(b.validPages(), 0u);
}

TEST(Block, EraseResetsEverythingAndCounts)
{
    Block b(4, 16, true);
    const BitVector d(16, true);
    b.program(0, false, &d);
    b.program(0, true, &d);
    b.program(1, false, &d);
    b.invalidate(1, false);
    b.erase();
    EXPECT_EQ(b.eraseCount(), 1u);
    EXPECT_EQ(b.validPages(), 0u);
    EXPECT_EQ(b.freePages(), 8u);
    EXPECT_EQ(b.pageData(0, false), nullptr);
    b.erase();
    EXPECT_EQ(b.eraseCount(), 2u);
}

TEST(Block, OobAttachesPerPageAndSurvivesInvalidate)
{
    Block b(4, 16, true);
    const PageOob lsb_oob{7, 100, 1, true};
    const PageOob msb_oob{9, 101, 2, false};
    b.program(2, false, nullptr, &lsb_oob);
    b.program(2, true, nullptr, &msb_oob);

    ASSERT_NE(b.pageOob(2, false), nullptr);
    EXPECT_EQ(b.pageOob(2, false)->lpn, 7u);
    EXPECT_EQ(b.pageOob(2, false)->seq, 100u);
    EXPECT_EQ(b.pageOob(2, false)->tag, 1);
    EXPECT_TRUE(b.pageOob(2, false)->scrambled);
    ASSERT_NE(b.pageOob(2, true), nullptr);
    EXPECT_EQ(b.pageOob(2, true)->lpn, 9u);

    // Pages programmed without OOB, and free pages, expose none.
    b.program(0, false, nullptr);
    EXPECT_EQ(b.pageOob(0, false), nullptr);
    EXPECT_EQ(b.pageOob(3, false), nullptr);

    // A stale copy keeps its OOB (it loses recovery arbitration by
    // sequence number, it is not physically wiped)...
    b.invalidate(2, false);
    ASSERT_NE(b.pageOob(2, false), nullptr);
    EXPECT_EQ(b.pageOob(2, false)->seq, 100u);

    // ...and erase clears it with the rest of the block.
    b.erase();
    EXPECT_EQ(b.pageOob(2, false), nullptr);
    EXPECT_EQ(b.pageOob(2, true), nullptr);
}

TEST(Block, MarkTornDropsBothPayloadsOfTheWordline)
{
    Block b(4, 8, true);
    const BitVector lsb = BitVector::fromString("11110000");
    const PageOob oob{3, 50, 1, false};
    b.program(1, false, &lsb, &oob);

    // Power cut mid-MSB-program: the shared cells corrupt the paired
    // LSB too, so both payloads are gone while states/OOB remain for
    // recovery to inspect (and then discard the wordline).
    b.program(1, true, &lsb, &oob);
    b.markTorn(1);
    EXPECT_TRUE(b.torn(1));
    EXPECT_FALSE(b.torn(0));
    EXPECT_EQ(b.pageData(1, false), nullptr);
    EXPECT_EQ(b.pageData(1, true), nullptr);
    EXPECT_NE(b.pageOob(1, false), nullptr);
    EXPECT_EQ(b.pageState(1, false), PageState::kValid);

    // Erase heals the mark.
    b.erase();
    EXPECT_FALSE(b.torn(1));
    EXPECT_EQ(b.freePages(), 8u);
}

TEST(Block, WordlineDataExposesBothPages)
{
    Block b(2, 8, true);
    const BitVector lsb = BitVector::fromString("11110000");
    const BitVector msb = BitVector::fromString("10101010");
    b.program(0, false, &lsb);
    b.program(0, true, &msb);
    const WordlineData wd = b.wordlineData(0);
    ASSERT_NE(wd.lsb, nullptr);
    ASSERT_NE(wd.msb, nullptr);
    EXPECT_EQ(*wd.lsb, lsb);
    EXPECT_EQ(*wd.msb, msb);
    // Unprogrammed wordline: both absent.
    const WordlineData empty = b.wordlineData(1);
    EXPECT_EQ(empty.lsb, nullptr);
    EXPECT_EQ(empty.msb, nullptr);
}

} // namespace
} // namespace parabit::flash
