/**
 * @file
 * Location-free operation correctness (paper Section 4.2, Fig 8,
 * Tables 6/7): every op, every operand combination, every companion-bit
 * combination — the unrelated data sharing the operand wordlines must
 * never influence the result.
 */

#include <gtest/gtest.h>

#include "flash/latch_circuit.hpp"
#include "flash/op_sequences.hpp"
#include "flash/sequence_executor.hpp"

namespace parabit::flash {
namespace {

struct LocFreeCase
{
    BitwiseOp op;
    LocFreeVariant variant;
};

class LocFreeOpTest
    : public ::testing::TestWithParam<std::tuple<BitwiseOp, LocFreeVariant>>
{
};

TEST_P(LocFreeOpTest, GoldenForAllOperandAndCompanionCombos)
{
    const auto [op, variant] = GetParam();
    const MicroProgram &prog = locationFreeProgram(op, variant);
    const bool m_in_msb = variant == LocFreeVariant::kMsbLsb;

    for (int m = 0; m <= 1; ++m) {
        for (int n = 0; n <= 1; ++n) {
            const bool expect = isUnary(op)
                                    ? opGolden(op, n != 0, m != 0)
                                    : opGolden(op, n != 0, m != 0);
            // Sweep the companion (don't-care) bit of each operand cell.
            for (int cm = 0; cm <= 1; ++cm) {
                for (int cn = 0; cn <= 1; ++cn) {
                    // Operand M occupies MSB (kMsbLsb) or LSB (kLsbLsb)
                    // of its cell; N always occupies LSB of its cell.
                    const MlcState cell_m =
                        m_in_msb ? mlcEncode(cm != 0, m != 0)
                                 : mlcEncode(m != 0, cm != 0);
                    const MlcState cell_n = mlcEncode(n != 0, cn != 0);
                    EXPECT_EQ(runScalar(prog, MlcState::kE, cell_m, cell_n),
                              expect)
                        << opName(op) << " m=" << m << " n=" << n
                        << " companions=(" << cm << "," << cn << ")";
                }
            }
        }
    }
}

TEST_P(LocFreeOpTest, ProgramShapeIsSane)
{
    const auto [op, variant] = GetParam();
    const MicroProgram &p = locationFreeProgram(op, variant);
    ASSERT_FALSE(p.steps.empty());
    EXPECT_TRUE(p.locationFree);
    EXPECT_EQ(p.steps.back().kind, MicroStep::Kind::kTransfer);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpsBothVariants, LocFreeOpTest,
    ::testing::Combine(
        ::testing::Values(BitwiseOp::kAnd, BitwiseOp::kOr, BitwiseOp::kXnor,
                          BitwiseOp::kNand, BitwiseOp::kNor, BitwiseOp::kXor,
                          BitwiseOp::kNotLsb, BitwiseOp::kNotMsb),
        ::testing::Values(LocFreeVariant::kMsbLsb, LocFreeVariant::kLsbLsb)),
    [](const auto &info) {
        std::string n = opName(std::get<0>(info.param));
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n + "_" +
               (std::get<1>(info.param) == flash::LocFreeVariant::kMsbLsb
                    ? "MsbLsb" : "LsbLsb");
    });

TEST(LocFree, SenseCountsMatchPaperAnchors)
{
    // Section 5.8 counts seven sensings for the location-free XOR.
    EXPECT_EQ(locationFreeProgram(BitwiseOp::kXor).senseCount(), 7);
    // AND: MSB read (2 SROs) + LSB sense (1).
    EXPECT_EQ(locationFreeProgram(BitwiseOp::kAnd).senseCount(), 3);
    // OR: MSB read (2) + L1 re-init (1) + LSB sense (1).
    EXPECT_EQ(locationFreeProgram(BitwiseOp::kOr).senseCount(), 4);
}

TEST(LocFree, LsbLsbVariantIsCheaper)
{
    for (int i = 0; i < kNumBitwiseOps; ++i) {
        const auto op = static_cast<BitwiseOp>(i);
        EXPECT_LE(locationFreeProgram(op, LocFreeVariant::kLsbLsb)
                      .senseCount(),
                  locationFreeProgram(op, LocFreeVariant::kMsbLsb)
                      .senseCount())
            << opName(op);
    }
}

TEST(LocFree, XorUsesInverterExtension)
{
    // Fig 8: the second phase of XOR needs the M7 inverted-SO path; the
    // plain AND/OR do not.
    EXPECT_TRUE(locationFreeProgram(BitwiseOp::kXor)
                    .needsInverterExtension());
    EXPECT_FALSE(locationFreeProgram(BitwiseOp::kAnd)
                     .needsInverterExtension());
    EXPECT_FALSE(locationFreeProgram(BitwiseOp::kOr)
                     .needsInverterExtension());
}

// ----- Paper Table 6: location-free AND row-by-row. ---------------------

TEST(PaperTable6, LocationFreeAndRows)
{
    // After the MSB read of WL(M), L(A) holds the MSB vector 1001 over
    // M's cell states.  The LSB sense of WL(N) then either keeps A (when
    // the LSB is 1, SO = 0) or clears it (LSB 0, SO = 1).
    for (int lsb = 0; lsb <= 1; ++lsb) {
        LatchCircuit lc;
        lc.initNormal();
        // MSB read of WL(M): the symbolic vector ranges over M's states.
        lc.sense(VRead::kVRead1);
        lc.pulseM2();
        lc.sense(VRead::kVRead3);
        lc.pulseM1();
        ASSERT_EQ(lc.a().toString(), "1001");

        // LSB sense of WL(N): SO is a concrete broadcast bit ~lsb.
        lc.driveSo(lsb ? statevec::kAllZero : statevec::kAllOne);
        lc.pulseM2();
        lc.pulseM3();
        if (lsb) {
            EXPECT_EQ(lc.a().toString(), "1001"); // Table 6 row 1
            EXPECT_EQ(lc.out().toString(), "1001");
        } else {
            EXPECT_EQ(lc.a().toString(), "0000"); // Table 6 row 2
            EXPECT_EQ(lc.out().toString(), "0000");
        }
    }
}

// ----- Paper Table 7: location-free OR row-by-row. ----------------------

TEST(PaperTable7, LocationFreeOrRows)
{
    for (int lsb = 0; lsb <= 1; ++lsb) {
        LatchCircuit lc;
        lc.initNormal();
        // Stage MSB of WL(M) into L2.
        lc.sense(VRead::kVRead1);
        lc.pulseM2();
        lc.sense(VRead::kVRead3);
        lc.pulseM1();
        lc.pulseM3();
        ASSERT_EQ(lc.b().toString(), "0110"); // ~MSB, as in Table 7
        ASSERT_EQ(lc.out().toString(), "1001");

        // Re-init L1 to all-ones, then the LSB sense of WL(N).
        lc.sense(VRead::kVRead0);
        lc.pulseM1();
        ASSERT_EQ(lc.a().toString(), "1111");
        lc.driveSo(lsb ? statevec::kAllZero : statevec::kAllOne);
        lc.pulseM2();
        lc.pulseM3();
        if (lsb) {
            EXPECT_EQ(lc.b().toString(), "0000"); // Table 7 row 1
            EXPECT_EQ(lc.out().toString(), "1111");
        } else {
            EXPECT_EQ(lc.b().toString(), "0110"); // Table 7 row 2
            EXPECT_EQ(lc.out().toString(), "1001");
        }
    }
}

} // namespace
} // namespace parabit::flash
