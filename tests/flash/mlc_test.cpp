/**
 * @file
 * Unit tests for the MLC state model and sensing semantics.
 */

#include <gtest/gtest.h>

#include "flash/mlc.hpp"

namespace parabit::flash {
namespace {

TEST(Mlc, GrayMapMatchesPaperTable1)
{
    // state (LSB/MSB): E (1/1), S1 (1/0), S2 (0/0), S3 (0/1).
    EXPECT_TRUE(mlcLsb(MlcState::kE));
    EXPECT_TRUE(mlcMsb(MlcState::kE));
    EXPECT_TRUE(mlcLsb(MlcState::kS1));
    EXPECT_FALSE(mlcMsb(MlcState::kS1));
    EXPECT_FALSE(mlcLsb(MlcState::kS2));
    EXPECT_FALSE(mlcMsb(MlcState::kS2));
    EXPECT_FALSE(mlcLsb(MlcState::kS3));
    EXPECT_TRUE(mlcMsb(MlcState::kS3));
}

TEST(Mlc, EncodeIsInverseOfDecode)
{
    for (int s = 0; s < kNumMlcStates; ++s) {
        const auto st = static_cast<MlcState>(s);
        EXPECT_EQ(mlcEncode(mlcLsb(st), mlcMsb(st)), st);
    }
}

TEST(Mlc, EncodeCoversAllBitPairs)
{
    EXPECT_EQ(mlcEncode(true, true), MlcState::kE);
    EXPECT_EQ(mlcEncode(true, false), MlcState::kS1);
    EXPECT_EQ(mlcEncode(false, false), MlcState::kS2);
    EXPECT_EQ(mlcEncode(false, true), MlcState::kS3);
}

TEST(Mlc, GrayCodeAdjacentStatesDifferInOneBit)
{
    // The threshold-ordered states E, S1, S2, S3 must form a Gray code
    // so that a single threshold shift corrupts at most one bit.
    for (int s = 0; s + 1 < kNumMlcStates; ++s) {
        const auto a = static_cast<MlcState>(s);
        const auto b = static_cast<MlcState>(s + 1);
        const int diff = (mlcLsb(a) != mlcLsb(b)) + (mlcMsb(a) != mlcMsb(b));
        EXPECT_EQ(diff, 1) << "states " << s << " and " << s + 1;
    }
}

TEST(Mlc, SenseAboveThresholdOrdering)
{
    // VREAD0 < E < VREAD1 < S1 < VREAD2 < S2 < VREAD3 < S3.
    for (int s = 0; s < kNumMlcStates; ++s) {
        const auto st = static_cast<MlcState>(s);
        EXPECT_TRUE(senseAbove(st, VRead::kVRead0));
        for (int v = 1; v < 4; ++v) {
            EXPECT_EQ(senseAbove(st, static_cast<VRead>(v)), s >= v)
                << "state " << s << " vread " << v;
        }
    }
}

TEST(Mlc, SenseVectorsMatchPaper)
{
    EXPECT_EQ(senseVector(VRead::kVRead0).toString(), "1111");
    EXPECT_EQ(senseVector(VRead::kVRead1).toString(), "0111");
    EXPECT_EQ(senseVector(VRead::kVRead2).toString(), "0011");
    EXPECT_EQ(senseVector(VRead::kVRead3).toString(), "0001");
}

} // namespace
} // namespace parabit::flash
