/**
 * @file
 * Cross-model fuzzing: the three latch-circuit interpreters (symbolic
 * StateVec, scalar single-bitline, vectorized LatchArray) implement the
 * same algebra and must agree on randomly generated control programs,
 * not just the curated ParaBit sequences.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "flash/latch_array.hpp"
#include "flash/sequence_executor.hpp"

namespace parabit::flash {
namespace {

/** Build a random (syntactically valid) co-located control program. */
MicroProgram
randomProgram(Rng &rng)
{
    MicroProgram p;
    p.op = BitwiseOp::kAnd; // label only; semantics come from the steps
    p.locationFree = false;
    p.steps.push_back(rng.chance(0.5) ? MicroStep::initNormal()
                                      : MicroStep::initInverted());
    const int body = 1 + static_cast<int>(rng.below(8));
    for (int s = 0; s < body; ++s) {
        if (rng.chance(0.25)) {
            p.steps.push_back(MicroStep::transfer());
        } else {
            const auto v = static_cast<VRead>(rng.below(4));
            const auto pulse =
                rng.chance(0.5) ? LatchPulse::kM1 : LatchPulse::kM2;
            p.steps.push_back(MicroStep::sense(v, pulse));
        }
    }
    p.steps.push_back(MicroStep::transfer());
    return p;
}

TEST(CrossModelFuzz, SymbolicScalarAndArrayAgree)
{
    Rng rng(31337);
    for (int trial = 0; trial < 200; ++trial) {
        const MicroProgram prog = randomProgram(rng);

        // Symbolic execution: one OUT bit per hypothetical cell state.
        const StateVec symbolic = runSymbolic(prog);

        // Scalar execution per concrete state must match the symbolic
        // column for that state.
        for (int s = 0; s < kNumMlcStates; ++s) {
            const auto st = static_cast<MlcState>(s);
            EXPECT_EQ(runScalar(prog, st), symbolic.at(s))
                << "trial " << trial << " state " << s;
        }

        // Vectorized execution on a page containing all four states
        // must produce the symbolic column per bitline.
        const std::size_t n = 64;
        BitVector lsb(n), msb(n);
        for (std::size_t i = 0; i < n; ++i) {
            const auto st = static_cast<MlcState>(i % 4);
            lsb.set(i, mlcLsb(st));
            msb.set(i, mlcMsb(st));
        }
        LatchArray la(n);
        la.execute(prog, WordlineData{&lsb, &msb});
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(la.out().get(i), symbolic.at(static_cast<int>(i % 4)))
                << "trial " << trial << " bitline " << i;
        }
    }
}

TEST(CrossModelFuzz, EveryRandomProgramKeepsLatchInvariants)
{
    // OUT accumulates monotonically (transfers only OR results in), and
    // the derived B stays its complement throughout.
    Rng rng(4242);
    for (int trial = 0; trial < 100; ++trial) {
        const MicroProgram prog = randomProgram(rng);
        std::vector<SymbolicTraceRow> trace;
        runSymbolicTraced(prog, trace);
        StateVec prev_out = statevec::kAllZero;
        for (const auto &row : trace) {
            EXPECT_EQ(row.out, ~row.b) << "trial " << trial;
            EXPECT_EQ(row.c, ~row.a) << "trial " << trial;
            if (row.label.rfind("Init", 0) == 0) {
                prev_out = row.out;
                continue;
            }
            EXPECT_EQ(row.out & prev_out, prev_out)
                << "OUT lost a bit outside initialisation, trial " << trial;
            prev_out = row.out;
        }
    }
}

} // namespace
} // namespace parabit::flash
