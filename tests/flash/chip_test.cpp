/**
 * @file
 * Chip-level functional tests: program/read round trips, both ParaBit
 * op entry points on stored data, plane isolation, erase counting.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "flash/chip.hpp"

namespace parabit::flash {
namespace {

FlashGeometry
tinyGeom()
{
    return FlashGeometry::tiny();
}

BitVector
randomPage(const FlashGeometry &g, Rng &rng)
{
    BitVector v(g.pageBits());
    for (std::size_t i = 0; i < v.size(); ++i)
        v.set(i, rng.chance(0.5));
    return v;
}

TEST(Chip, ProgramReadRoundTrip)
{
    const FlashGeometry g = tinyGeom();
    Chip chip(g, true);
    Rng rng(1);
    const BitVector d = randomPage(g, rng);
    const ChipPageAddr a{0, 1, 2, 3, false};
    chip.programPage(a, &d);
    EXPECT_EQ(chip.pageState(a), PageState::kValid);
    EXPECT_EQ(chip.readPage(a), d);
}

TEST(Chip, UnwrittenPageReadsAllOnes)
{
    const FlashGeometry g = tinyGeom();
    Chip chip(g, true);
    const ChipPageAddr a{0, 0, 0, 0, true};
    const BitVector v = chip.readPage(a);
    EXPECT_EQ(v.popcount(), v.size()); // erased
}

TEST(Chip, OpCoLocatedComputesOverWordline)
{
    const FlashGeometry g = tinyGeom();
    Chip chip(g, true);
    Rng rng(2);
    const BitVector x = randomPage(g, rng);
    const BitVector y = randomPage(g, rng);
    const ChipPageAddr lsb{0, 0, 1, 4, false};
    const ChipPageAddr msb{0, 0, 1, 4, true};
    chip.programPage(lsb, &x);
    chip.programPage(msb, &y);

    int errors = -1;
    const BitVector out = chip.opCoLocated(BitwiseOp::kXor, lsb, &errors);
    EXPECT_EQ(out, x ^ y);
    EXPECT_EQ(errors, 0); // ideal error model
}

TEST(Chip, OpLocationFreeAcrossWordlines)
{
    const FlashGeometry g = tinyGeom();
    Chip chip(g, true);
    Rng rng(3);
    const BitVector m = randomPage(g, rng);
    const BitVector n = randomPage(g, rng);
    // M in the MSB page of WL 2, N in the LSB page of WL 5, same plane.
    const ChipPageAddr ma{0, 1, 0, 2, true};
    const ChipPageAddr na{0, 1, 3, 5, false};
    chip.programPage(ma, &m);
    chip.programPage(na, &n);
    const BitVector out =
        chip.opLocationFree(BitwiseOp::kAnd, ma, na);
    EXPECT_EQ(out, m & n);
}

TEST(Chip, OpLocationFreeLsbLsbVariant)
{
    const FlashGeometry g = tinyGeom();
    Chip chip(g, true);
    Rng rng(4);
    const BitVector m = randomPage(g, rng);
    const BitVector n = randomPage(g, rng);
    const ChipPageAddr ma{0, 0, 2, 0, false};
    const ChipPageAddr na{0, 0, 4, 1, false};
    chip.programPage(ma, &m);
    chip.programPage(na, &n);
    const BitVector out = chip.opLocationFree(
        BitwiseOp::kXor, ma, na, nullptr, LocFreeVariant::kLsbLsb);
    EXPECT_EQ(out, m ^ n);
}

TEST(Chip, LocationFreeAcrossPlanesDies)
{
    const FlashGeometry g = tinyGeom();
    Chip chip(g, true);
    const ChipPageAddr ma{0, 0, 0, 0, true};
    const ChipPageAddr na{0, 1, 0, 0, false};
    chip.programPage(ma, nullptr);
    chip.programPage(na, nullptr);
    EXPECT_DEATH(chip.opLocationFree(BitwiseOp::kAnd, ma, na),
                 "share a plane");
}

TEST(Chip, EraseCountTracksPerBlock)
{
    const FlashGeometry g = tinyGeom();
    Chip chip(g, true);
    chip.programPage({0, 0, 3, 0, false}, nullptr);
    chip.eraseBlock(0, 0, 3);
    chip.eraseBlock(0, 0, 3);
    EXPECT_EQ(chip.blockEraseCount(0, 0, 3), 2u);
    EXPECT_EQ(chip.blockEraseCount(0, 0, 2), 0u);
}

TEST(Chip, PlanesAreIsolated)
{
    const FlashGeometry g = tinyGeom();
    Chip chip(g, true);
    Rng rng(5);
    const BitVector d0 = randomPage(g, rng);
    const BitVector d1 = randomPage(g, rng);
    chip.programPage({0, 0, 0, 0, false}, &d0);
    chip.programPage({0, 1, 0, 0, false}, &d1);
    EXPECT_EQ(chip.readPage({0, 0, 0, 0, false}), d0);
    EXPECT_EQ(chip.readPage({0, 1, 0, 0, false}), d1);
}

TEST(Chip, ErrorInjectionReportsBitErrors)
{
    const FlashGeometry g = tinyGeom();
    // Extremely aggressive error model so flips are certain.
    ErrorModelConfig ec;
    ec.observedErrorsAtRef =
        0.05 * ec.propagationSurvival * ec.refSensings * ec.wordlineBits;
    ec.refPeCycles = 1.0;
    ec.decadesOverLife = 0.0; // flat: same rate at 0 P/E
    Chip chip(g, true, ec, 99);
    const BitVector x(g.pageBits(), true);
    const BitVector y(g.pageBits(), true);
    chip.programPage({0, 0, 0, 0, false}, &x);
    chip.programPage({0, 0, 0, 0, true}, &y);
    int errors = 0;
    chip.opCoLocated(BitwiseOp::kXor, {0, 0, 0, 0, false}, &errors);
    EXPECT_GT(errors, 0);
}

} // namespace
} // namespace parabit::flash
