/**
 * @file
 * Correctness of every co-located operation program: the symbolic
 * executor must reproduce the Table 1 truth columns, and the scalar
 * executor must produce the golden bit for every concrete cell state.
 */

#include <gtest/gtest.h>

#include "flash/op_sequences.hpp"
#include "flash/sequence_executor.hpp"

namespace parabit::flash {
namespace {

class CoLocatedOpTest : public ::testing::TestWithParam<BitwiseOp>
{
};

TEST_P(CoLocatedOpTest, SymbolicOutMatchesTruthColumn)
{
    const BitwiseOp op = GetParam();
    EXPECT_EQ(runSymbolic(coLocatedProgram(op)), opTruth(op))
        << opName(op) << ": " << runSymbolic(coLocatedProgram(op)).toString()
        << " != " << opTruth(op).toString();
}

TEST_P(CoLocatedOpTest, ScalarMatchesGoldenForEveryCellState)
{
    const BitwiseOp op = GetParam();
    for (int s = 0; s < kNumMlcStates; ++s) {
        const auto st = static_cast<MlcState>(s);
        const bool expect = opGolden(op, mlcLsb(st), mlcMsb(st));
        EXPECT_EQ(runScalar(coLocatedProgram(op), st), expect)
            << opName(op) << " state " << s;
    }
}

TEST_P(CoLocatedOpTest, ProgramShapeIsSane)
{
    const MicroProgram &p = coLocatedProgram(GetParam());
    ASSERT_FALSE(p.steps.empty());
    // Programs begin with exactly one initialisation...
    EXPECT_TRUE(p.steps.front().kind == MicroStep::Kind::kInitNormal ||
                p.steps.front().kind == MicroStep::Kind::kInitInverted);
    // ...and end with a transfer so the result lands in L2.
    EXPECT_EQ(p.steps.back().kind, MicroStep::Kind::kTransfer);
    // Co-located programs never need the M6/M7 extension.
    EXPECT_FALSE(p.needsInverterExtension());
    EXPECT_FALSE(p.locationFree);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, CoLocatedOpTest,
    ::testing::Values(BitwiseOp::kAnd, BitwiseOp::kOr, BitwiseOp::kXnor,
                      BitwiseOp::kNand, BitwiseOp::kNor, BitwiseOp::kXor,
                      BitwiseOp::kNotLsb, BitwiseOp::kNotMsb),
    [](const auto &info) {
        std::string n = opName(info.param);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(CoLocatedOps, SenseCountsMatchPaper)
{
    // Section 5.2: AND is an LSB-read-shaped single sensing; OR an
    // MSB-read-shaped double sensing; XNOR/XOR take four sensings
    // (100 us at 25 us per SRO).
    EXPECT_EQ(coLocatedProgram(BitwiseOp::kAnd).senseCount(), 1);
    EXPECT_EQ(coLocatedProgram(BitwiseOp::kOr).senseCount(), 2);
    EXPECT_EQ(coLocatedProgram(BitwiseOp::kXnor).senseCount(), 4);
    EXPECT_EQ(coLocatedProgram(BitwiseOp::kNand).senseCount(), 1);
    EXPECT_EQ(coLocatedProgram(BitwiseOp::kNor).senseCount(), 2);
    EXPECT_EQ(coLocatedProgram(BitwiseOp::kXor).senseCount(), 4);
    EXPECT_EQ(coLocatedProgram(BitwiseOp::kNotLsb).senseCount(), 1);
    EXPECT_EQ(coLocatedProgram(BitwiseOp::kNotMsb).senseCount(), 2);
}

TEST(CoLocatedOps, TruthColumnsMatchPaperTable1)
{
    EXPECT_EQ(opTruth(BitwiseOp::kAnd).toString(), "1000");
    EXPECT_EQ(opTruth(BitwiseOp::kOr).toString(), "1101");
    EXPECT_EQ(opTruth(BitwiseOp::kXnor).toString(), "1010");
    EXPECT_EQ(opTruth(BitwiseOp::kNand).toString(), "0111");
    EXPECT_EQ(opTruth(BitwiseOp::kNor).toString(), "0010");
    EXPECT_EQ(opTruth(BitwiseOp::kXor).toString(), "0101");
    EXPECT_EQ(opTruth(BitwiseOp::kNotLsb).toString(), "0011");
    EXPECT_EQ(opTruth(BitwiseOp::kNotMsb).toString(), "0110");
}

TEST(CoLocatedOps, InvertedPairsAreComplements)
{
    EXPECT_EQ(opTruth(BitwiseOp::kNand), ~opTruth(BitwiseOp::kAnd));
    EXPECT_EQ(opTruth(BitwiseOp::kNor), ~opTruth(BitwiseOp::kOr));
    EXPECT_EQ(opTruth(BitwiseOp::kXor), ~opTruth(BitwiseOp::kXnor));
}

TEST(CoLocatedOps, DescribeMentionsStepStructure)
{
    const std::string d = coLocatedProgram(BitwiseOp::kXor).describe();
    EXPECT_NE(d.find("XOR"), std::string::npos);
    EXPECT_NE(d.find("4 SROs"), std::string::npos);
    EXPECT_NE(d.find("transfer"), std::string::npos);
}

} // namespace
} // namespace parabit::flash
