/**
 * @file
 * Vectorized latch-array tests: whole-page execution must agree with the
 * host golden functions on random data, for every op in both modes, and
 * the noise hook must inject exactly where sensing happens.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "flash/latch_array.hpp"

namespace parabit::flash {
namespace {

BitVector
randomBits(std::size_t n, Rng &rng)
{
    BitVector v(n);
    for (std::size_t i = 0; i < n; ++i)
        v.set(i, rng.chance(0.5));
    return v;
}

BitVector
golden(BitwiseOp op, const BitVector &lsb, const BitVector &msb)
{
    BitVector out(lsb.size());
    for (std::size_t i = 0; i < lsb.size(); ++i)
        out.set(i, opGolden(op, lsb.get(i), msb.get(i)));
    return out;
}

class LatchArrayOpTest : public ::testing::TestWithParam<BitwiseOp>
{
};

TEST_P(LatchArrayOpTest, CoLocatedMatchesGoldenOnRandomPages)
{
    const BitwiseOp op = GetParam();
    Rng rng(1000 + static_cast<std::uint64_t>(op));
    for (int trial = 0; trial < 8; ++trial) {
        const std::size_t n = 64 + rng.below(512);
        const BitVector x = randomBits(n, rng); // LSB operand
        const BitVector y = randomBits(n, rng); // MSB operand
        EXPECT_EQ(executeCoLocated(op, x, y), golden(op, x, y))
            << opName(op) << " trial " << trial;
    }
}

TEST_P(LatchArrayOpTest, LocationFreeMatchesGoldenBothVariants)
{
    const BitwiseOp op = GetParam();
    Rng rng(2000 + static_cast<std::uint64_t>(op));
    for (auto variant :
         {LocFreeVariant::kMsbLsb, LocFreeVariant::kLsbLsb}) {
        const std::size_t n = 256;
        const BitVector m = randomBits(n, rng);
        const BitVector nn = randomBits(n, rng);
        const BitVector junk1 = randomBits(n, rng);
        const BitVector junk2 = randomBits(n, rng);
        // Golden convention: N plays the LSB role, M the MSB role.
        const BitVector expect = golden(op, nn, m);
        EXPECT_EQ(executeLocationFree(op, m, nn, &junk1, &junk2, {}, variant),
                  expect)
            << opName(op) << " variant "
            << (variant == LocFreeVariant::kMsbLsb ? "MsbLsb" : "LsbLsb");
    }
}

TEST_P(LatchArrayOpTest, CompanionDataDoesNotLeakIntoResult)
{
    const BitwiseOp op = GetParam();
    Rng rng(3000 + static_cast<std::uint64_t>(op));
    const std::size_t n = 128;
    const BitVector m = randomBits(n, rng);
    const BitVector nn = randomBits(n, rng);
    const BitVector junk_a = randomBits(n, rng);
    const BitVector junk_b = randomBits(n, rng);
    const BitVector r1 = executeLocationFree(op, m, nn, &junk_a, &junk_a);
    const BitVector r2 = executeLocationFree(op, m, nn, &junk_b, &junk_b);
    const BitVector r3 = executeLocationFree(op, m, nn, nullptr, nullptr);
    EXPECT_EQ(r1, r2) << opName(op);
    EXPECT_EQ(r1, r3) << opName(op);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, LatchArrayOpTest,
    ::testing::Values(BitwiseOp::kAnd, BitwiseOp::kOr, BitwiseOp::kXnor,
                      BitwiseOp::kNand, BitwiseOp::kNor, BitwiseOp::kXor,
                      BitwiseOp::kNotLsb, BitwiseOp::kNotMsb),
    [](const auto &info) {
        std::string n = opName(info.param);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(LatchArray, NoiseHookSeesEverySensing)
{
    const BitVector x(64, true), y(64, false);
    int senses = 0;
    SenseNoiseHook hook = [&](BitVector &, int idx) {
        ++senses;
        EXPECT_EQ(idx, senses);
    };
    LatchArray la(64);
    la.execute(coLocatedProgram(BitwiseOp::kXor), WordlineData{&x, &y}, {},
               {}, hook);
    EXPECT_EQ(senses, coLocatedProgram(BitwiseOp::kXor).senseCount());
}

TEST(LatchArray, InjectedSoFlipCorruptsExactlyThatBitline)
{
    // Flip SO bit 5 during the single AND sensing: only output bit 5
    // may differ from golden.
    const std::size_t n = 64;
    const BitVector x(n, true), y(n, true); // all cells in state E
    SenseNoiseHook hook = [](BitVector &so, int) {
        so.set(5, !so.get(5));
    };
    const BitVector noisy = executeCoLocated(BitwiseOp::kAnd, x, y, hook);
    const BitVector clean = executeCoLocated(BitwiseOp::kAnd, x, y);
    const BitVector diff = noisy ^ clean;
    EXPECT_EQ(diff.popcount(), 1u);
    EXPECT_TRUE(diff.get(5));
}

TEST(LatchArray, WidthMismatchAssertsInDebug)
{
    LatchArray la(32);
    EXPECT_EQ(la.width(), 32u);
    EXPECT_EQ(la.out().size(), 32u);
}

TEST(LatchArray, ChainedExecutionsReuseCircuit)
{
    // Run two different programs back-to-back on one array; the second
    // result must be independent of the first (init resets state).
    Rng rng(77);
    const std::size_t n = 128;
    const BitVector x = randomBits(n, rng);
    const BitVector y = randomBits(n, rng);
    LatchArray la(n);
    la.execute(coLocatedProgram(BitwiseOp::kXor), WordlineData{&x, &y});
    la.execute(coLocatedProgram(BitwiseOp::kAnd), WordlineData{&x, &y});
    EXPECT_EQ(la.out(), golden(BitwiseOp::kAnd, x, y));
}

} // namespace
} // namespace parabit::flash
