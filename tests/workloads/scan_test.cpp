/**
 * @file
 * Fast data-scanning workload tests: golden scan, selectivity, and the
 * full in-flash XNOR scan against the golden results.
 */

#include <gtest/gtest.h>

#include "parabit/device.hpp"
#include "workloads/scan.hpp"

namespace parabit::workloads {
namespace {

TEST(Scan, GoldenMatchesContentEquality)
{
    ScanWorkload w(500, 32, 0.05);
    const auto matches = w.goldenMatches();
    // Every reported match equals the key; every other row differs.
    std::vector<bool> is_match(500, false);
    for (auto r : matches)
        is_match[r] = true;
    for (std::uint64_t r = 0; r < 500; ++r) {
        bool eq = true;
        for (std::uint32_t b = 0; eq && b < 32; ++b)
            eq = w.column().get(r * 32 + b) == w.key().get(b);
        EXPECT_EQ(eq, is_match[r]) << "record " << r;
    }
}

TEST(Scan, SelectivityIsRespected)
{
    ScanWorkload w(20000, 64, 0.1);
    const double rate =
        static_cast<double>(w.goldenMatches().size()) / 20000.0;
    EXPECT_NEAR(rate, 0.1, 0.01);
}

TEST(Scan, KeyPatternRepeatsKey)
{
    ScanWorkload w(10, 16, 0.5);
    const BitVector p = w.keyPattern(64);
    for (std::size_t i = 0; i < p.size(); ++i)
        EXPECT_EQ(p.get(i), w.key().get(i % 16)) << "bit " << i;
}

TEST(Scan, MatchesFromXnorDecodesAllOnesRuns)
{
    ScanWorkload w(4, 4, 0.0, 777);
    // Hand-craft an XNOR result: record 1 and 3 all-ones.
    BitVector xnor(16);
    for (int b = 4; b < 8; ++b)
        xnor.set(static_cast<std::size_t>(b), true);
    for (int b = 12; b < 16; ++b)
        xnor.set(static_cast<std::size_t>(b), true);
    xnor.set(0, true); // partial run: not a match
    const auto m = w.matchesFromXnor(xnor, 0);
    ASSERT_EQ(m.size(), 2u);
    EXPECT_EQ(m[0], 1u);
    EXPECT_EQ(m[1], 3u);
}

TEST(Scan, InFlashScanMatchesGolden)
{
    core::ParaBitDevice dev(ssd::SsdConfig::tiny());
    const std::size_t page_bits = dev.ssd().geometry().pageBits();
    const std::uint32_t record_bits = 32;
    const std::uint64_t records_per_page = page_bits / record_bits;
    const std::uint64_t records = records_per_page * 3; // 3 pages

    ScanWorkload w(records, record_bits, 0.15, 99);

    // Column pages + matching key-pattern pages.
    std::vector<std::uint64_t> found;
    for (std::uint64_t p = 0; p < 3; ++p) {
        BitVector col_page(page_bits);
        col_page.assign(0, w.column().slice(p * page_bits, page_bits));
        dev.writeDataLsbOnly(p, {col_page});
        dev.writeDataLsbOnly(100 + p, {w.keyPattern(page_bits)});

        const auto r = dev.bitwise(flash::BitwiseOp::kXnor, p, 100 + p, 1,
                                   core::Mode::kReAllocate);
        const auto page_matches =
            w.matchesFromXnor(r.pages[0], p * records_per_page);
        found.insert(found.end(), page_matches.begin(), page_matches.end());
    }
    EXPECT_EQ(found, w.goldenMatches());
}

TEST(Scan, WorkMovesOnlyMatchBitmap)
{
    ScanWorkload w(1'000'000, 64, 0.01);
    const auto bulk = w.work();
    EXPECT_EQ(bulk.bytesIn, 1'000'000ull * 64 / 8);
    EXPECT_EQ(bulk.bytesOut, 125'000u);
    EXPECT_EQ(bulk.ops[0].op, flash::BitwiseOp::kXnor);
}

} // namespace
} // namespace parabit::workloads
