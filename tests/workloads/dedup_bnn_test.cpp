/**
 * @file
 * Tests for the Section 5.3.4 application workloads: deduplication
 * (XOR + zero check) and binarized neural networks (XNOR + popcount),
 * including full in-flash execution against the golden models.
 */

#include <gtest/gtest.h>

#include "parabit/device.hpp"
#include "workloads/bnn.hpp"
#include "workloads/dedup.hpp"

namespace parabit::workloads {
namespace {

// ---------------------------------------------------------------- dedup

TEST(Dedup, CorpusIsDeterministic)
{
    DedupWorkload a(100, 256), b(100, 256);
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_EQ(a.page(i), b.page(i)) << "page " << i;
    EXPECT_EQ(a.candidates().size(), b.candidates().size());
}

TEST(Dedup, GroundTruthMatchesContentEquality)
{
    DedupWorkload w(200, 256);
    ASSERT_FALSE(w.candidates().empty());
    int dups = 0, collisions = 0;
    for (const auto &c : w.candidates()) {
        EXPECT_EQ(w.goldenDuplicate(c), c.trulyDuplicate);
        dups += c.trulyDuplicate;
        collisions += !c.trulyDuplicate;
    }
    EXPECT_GT(dups, 0) << "corpus must contain duplicates";
    EXPECT_GT(collisions, 0) << "corpus must contain fingerprint collisions";
}

TEST(Dedup, InFlashXorVerifiesCandidates)
{
    core::ParaBitDevice dev(ssd::SsdConfig::tiny());
    const std::size_t page_bits = dev.ssd().geometry().pageBits();
    DedupWorkload w(40, page_bits, 0.4, 0.3);

    // Store the corpus, one logical page per corpus page.
    for (std::uint64_t i = 0; i < w.pages(); ++i)
        dev.writeDataLsbOnly(i, {w.page(i)});

    int checked = 0;
    for (const auto &c : w.candidates()) {
        const auto r = dev.bitwise(flash::BitwiseOp::kXor, c.pageA, c.pageB,
                                   1, core::Mode::kReAllocate);
        const bool is_dup = r.pages[0].popcount() == 0;
        EXPECT_EQ(is_dup, c.trulyDuplicate)
            << "pair (" << c.pageA << "," << c.pageB << ")";
        ++checked;
        if (checked >= 10)
            break; // enough pairs; keep the test fast
    }
    EXPECT_GE(checked, 3);
}

TEST(Dedup, WorkMovesOnlyVerdictsForParaBit)
{
    DedupWorkload w(500, 8 * 1024 * 8);
    const auto bulk = w.work();
    EXPECT_EQ(bulk.bytesIn,
              2ull * 8 * 1024 * w.candidates().size());
    EXPECT_EQ(bulk.bytesOut, w.candidates().size());
    EXPECT_LT(bulk.bytesOut * 1000, bulk.bytesIn)
        << "the verdict traffic must be negligible";
}

// ------------------------------------------------------------------ BNN

TEST(Bnn, NetworkShapeFollowsSizes)
{
    BnnWorkload net({256, 128, 64});
    ASSERT_EQ(net.layers().size(), 2u);
    EXPECT_EQ(net.layers()[0].inputs, 256u);
    EXPECT_EQ(net.layers()[0].outputs, 128u);
    EXPECT_EQ(net.layers()[1].inputs, 128u);
    EXPECT_EQ(net.layers()[1].outputs, 64u);
    EXPECT_EQ(net.weightBits(), 256u * 128 + 128u * 64);
}

TEST(Bnn, NeuronPopcountIsXnorPopcount)
{
    const BitVector x = BitVector::fromString("1100");
    const BitVector w = BitVector::fromString("1010");
    // XNOR = 1001 -> popcount 2.
    EXPECT_EQ(BnnWorkload::neuronPopcount(x, w), 2u);
    // Perfect match: popcount = width.
    EXPECT_EQ(BnnWorkload::neuronPopcount(x, x), 4u);
}

TEST(Bnn, GoldenInferenceIsDeterministic)
{
    BnnWorkload a({64, 32, 16}), b({64, 32, 16});
    EXPECT_EQ(a.goldenInfer(a.input(3)), b.goldenInfer(b.input(3)));
}

TEST(Bnn, ActivationsStayBalanced)
{
    // Thresholds are placed near the half-match point, so activations
    // through a deep stack must not saturate to all-0/all-1.
    BnnWorkload net({512, 256, 256, 128});
    const BitVector out = net.goldenInfer(net.input(1));
    const double density =
        static_cast<double>(out.popcount()) / out.size();
    EXPECT_GT(density, 0.1);
    EXPECT_LT(density, 0.9);
}

TEST(Bnn, InFlashLayerMatchesGolden)
{
    core::ParaBitDevice dev(ssd::SsdConfig::tiny());
    const std::size_t page_bits = dev.ssd().geometry().pageBits();
    // One layer whose input width equals the flash page size: each
    // weight row occupies one page.
    BnnWorkload net({static_cast<std::uint32_t>(page_bits), 8});
    const BnnLayer &layer = net.layers()[0];
    const BitVector x = net.input(0);

    // Weights live in flash; the activation vector is written once.
    dev.writeDataLsbOnly(0, {x});
    for (std::uint32_t j = 0; j < layer.outputs; ++j)
        dev.writeDataLsbOnly(100 + j, {layer.weights[j]});

    BitVector out(layer.outputs);
    for (std::uint32_t j = 0; j < layer.outputs; ++j) {
        const auto r = dev.bitwise(flash::BitwiseOp::kXnor, 0, 100 + j, 1,
                                   core::Mode::kReAllocate);
        const auto pc =
            static_cast<std::uint32_t>(r.pages[0].popcount());
        EXPECT_EQ(pc, BnnWorkload::neuronPopcount(x, layer.weights[j]))
            << "neuron " << j;
        out.set(j, pc >= layer.thresholds[j]);
    }
    EXPECT_EQ(out, net.goldenLayer(layer, x));
}

TEST(Bnn, WorkVolumeDominatedByWeights)
{
    BnnWorkload net({8192, 4096, 1024});
    const auto bulk = net.work(1);
    EXPECT_EQ(bulk.bytesIn, net.weightBits() / 8);
    ASSERT_EQ(bulk.ops.size(), 2u);
    EXPECT_EQ(bulk.ops[0].op, flash::BitwiseOp::kXnor);
    EXPECT_EQ(bulk.ops[0].instances, 4096u);
}

} // namespace
} // namespace parabit::workloads
