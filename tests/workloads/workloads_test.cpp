/**
 * @file
 * Workload-model tests: determinism, golden functions, and the
 * paper-scale volume arithmetic (0.72 MB/image class planes, 1.37 MiB
 * raw images, 33.99 GiB of daily bitmaps).
 */

#include <gtest/gtest.h>

#include "workloads/bitmap_index.hpp"
#include "workloads/encryption.hpp"
#include "workloads/image.hpp"
#include "workloads/segmentation.hpp"

namespace parabit::workloads {
namespace {

TEST(Image, GeneratorIsDeterministic)
{
    ImageGenerator g(64, 48, 1);
    const auto a = g.generate(5);
    const auto b = g.generate(5);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].y, b[i].y);
        EXPECT_EQ(a[i].u, b[i].u);
        EXPECT_EQ(a[i].v, b[i].v);
    }
}

TEST(Image, DifferentIndicesDiffer)
{
    ImageGenerator g(64, 48, 1);
    const auto a = g.generate(1);
    const auto b = g.generate(2);
    int same = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        same += a[i].y == b[i].y;
    EXPECT_LT(same, static_cast<int>(a.size()));
}

TEST(Image, ClassTableMatchesPaperRepresentation)
{
    // The paper's example: a range over the upper levels sets exactly
    // those table bits.
    const BitVector t = classTable(ColorRange{7, 9}, 10);
    EXPECT_EQ(t.toString(), "0000000111");
}

TEST(Image, ClassPlaneMatchesPerPixelCheck)
{
    ImageGenerator g(32, 32, 3);
    const auto img = g.generate(0);
    const ColorClass c = defaultColorClasses()[0];
    const BitVector plane = channelClassPlane(img, 1, c);
    for (std::size_t i = 0; i < img.size(); ++i)
        EXPECT_EQ(plane.get(i), c.u.contains(img[i].u)) << "pixel " << i;
}

TEST(Image, GoldenSegmentationIsAndOfPlanes)
{
    ImageGenerator g(40, 30, 4);
    const auto img = g.generate(7);
    for (const auto &c : defaultColorClasses()) {
        const BitVector expect = channelClassPlane(img, 0, c) &
                                 channelClassPlane(img, 1, c) &
                                 channelClassPlane(img, 2, c);
        EXPECT_EQ(goldenSegmentation(img, c), expect) << c.name;
    }
}

TEST(Image, PackImageBitsRoundTripsChannels)
{
    ImageGenerator g(8, 8, 5);
    const auto img = g.generate(0);
    const BitVector bits = packImageBits(img);
    ASSERT_EQ(bits.size(), img.size() * 24);
    // Spot-check pixel 3's U channel.
    std::uint8_t u = 0;
    for (int b = 0; b < 8; ++b)
        u |= static_cast<std::uint8_t>(bits.get(3 * 24 + 8 + b) << b);
    EXPECT_EQ(u, img[3].u);
}

TEST(Segmentation, BytesPerImageMatchesPaper)
{
    // 800x600, 4 colours: 3 channels x 4 bits/pixel = 0.72 MB.
    SegmentationWorkload w(800, 600);
    EXPECT_EQ(w.bytesPerImage(), 720000u);
}

TEST(Segmentation, WorkVolumesMatchPaper)
{
    SegmentationWorkload w(800, 600);
    const auto bulk = w.work(200000);
    EXPECT_EQ(bulk.bytesIn, Bytes{144'000'000'000});
    // Output masks are one third of the class-plane volume.
    EXPECT_EQ(bulk.bytesOut * 3, bulk.bytesIn);
    ASSERT_EQ(bulk.ops.size(), 4u);
    for (const auto &g : bulk.ops) {
        EXPECT_EQ(g.chainLength, 3u);
        EXPECT_EQ(g.op, flash::BitwiseOp::kAnd);
    }
}

TEST(Segmentation, PlanesAndGoldenAgree)
{
    SegmentationWorkload w(64, 48);
    const BitVector y = w.plane(3, 0, 1);
    const BitVector u = w.plane(3, 1, 1);
    const BitVector v = w.plane(3, 2, 1);
    EXPECT_EQ(y & u & v, w.golden(3, 1));
}

TEST(BitmapIndex, DayBitmapsDeterministicAndDistinct)
{
    BitmapIndexWorkload w(1000, 5, 0.9, 1);
    EXPECT_EQ(w.dayBitmap(2), w.dayBitmap(2));
    EXPECT_NE(w.dayBitmap(1), w.dayBitmap(2));
}

TEST(BitmapIndex, GoldenIsAndOfDays)
{
    BitmapIndexWorkload w(500, 4, 0.8, 2);
    BitVector expect = w.dayBitmap(0);
    for (std::uint32_t d = 1; d < 4; ++d)
        expect &= w.dayBitmap(d);
    EXPECT_EQ(w.goldenEveryday(), expect);
    EXPECT_EQ(w.goldenCount(), expect.popcount());
}

TEST(BitmapIndex, ActivityRateIsRespected)
{
    BitmapIndexWorkload w(20000, 1, 0.75, 3);
    const double rate =
        static_cast<double>(w.dayBitmap(0).popcount()) / 20000.0;
    EXPECT_NEAR(rate, 0.75, 0.02);
}

TEST(BitmapIndex, DaysForMonthsMatchesPaperScale)
{
    EXPECT_EQ(BitmapIndexWorkload::daysForMonths(12), 365u);
    EXPECT_EQ(BitmapIndexWorkload::daysForMonths(1), 30u);
}

TEST(BitmapIndex, WorkVolumesMatchPaper)
{
    // 800M users, 12 months: 365 bitmaps x 95.37 MiB = 33.99 GiB.
    const auto bulk = BitmapIndexWorkload::work(800'000'000, 365);
    EXPECT_NEAR(bytes::toGiB(bulk.bytesIn), 33.99, 0.05);
    ASSERT_EQ(bulk.ops.size(), 1u);
    EXPECT_EQ(bulk.ops[0].chainLength, 365u);
    EXPECT_EQ(bulk.bytesOut, Bytes{100'000'000});
}

TEST(Encryption, GoldenCipherIsXor)
{
    EncryptionWorkload w(16, 16);
    const BitVector img = w.imageBits(3);
    const BitVector key = w.keyBits();
    EXPECT_EQ(w.goldenCipher(3), img ^ key);
    // Decryption: XOR with the key again restores the plaintext.
    EXPECT_EQ(w.goldenCipher(3) ^ key, img);
}

TEST(Encryption, BytesPerImageMatchesPaper)
{
    EncryptionWorkload w(800, 600);
    EXPECT_EQ(w.bytesPerImage(), 1'440'000u);
    EXPECT_NEAR(bytes::toMiB(w.bytesPerImage()), 1.37, 0.01);
}

TEST(Encryption, WorkVolumesAndWritebackFlag)
{
    EncryptionWorkload w(800, 600);
    const auto co = w.work(100000, /*cipher_writeback=*/false);
    const auto lf = w.work(100000, /*cipher_writeback=*/true);
    EXPECT_NEAR(bytes::toGiB(co.bytesIn), 134.1, 0.5); // ~140 GB decimal
    EXPECT_EQ(co.bytesOut, 0u);
    EXPECT_EQ(co.writebackBytes, 0u);
    EXPECT_EQ(lf.writebackBytes, Bytes{144'000'000'000});
    ASSERT_EQ(co.ops.size(), 1u);
    EXPECT_EQ(co.ops[0].instances, 100000u);
    EXPECT_EQ(co.ops[0].op, flash::BitwiseOp::kXor);
}

} // namespace
} // namespace parabit::workloads
