/**
 * @file
 * FTL tests: mapping correctness, overwrite invalidation, the ParaBit
 * placement primitives, garbage collection with data preservation, and
 * write-amplification accounting.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ssd/ftl.hpp"

namespace parabit::ssd {
namespace {

struct FtlFixture
{
    FtlFixture()
    {
        cfg = SsdConfig::tiny();
        for (std::uint32_t i = 0; i < cfg.geometry.chips(); ++i)
            chips.emplace_back(cfg.geometry, cfg.storeData, cfg.errors, i);
        ftl = std::make_unique<Ftl>(cfg, chips);
    }

    BitVector
    randomPage(Rng &rng) const
    {
        BitVector v(cfg.geometry.pageBits());
        for (std::size_t i = 0; i < v.size(); ++i)
            v.set(i, rng.chance(0.5));
        return v;
    }

    SsdConfig cfg;
    std::vector<flash::Chip> chips;
    std::unique_ptr<Ftl> ftl;
};

TEST(Ftl, LogicalCapacityReflectsOverProvisioning)
{
    FtlFixture f;
    EXPECT_LT(f.ftl->logicalPages(), f.cfg.geometry.totalPages());
    EXPECT_GT(f.ftl->logicalPages(),
              static_cast<std::uint64_t>(0.9 * f.cfg.geometry.totalPages()));
}

TEST(Ftl, WriteReadRoundTrip)
{
    FtlFixture f;
    Rng rng(1);
    std::vector<PhysOp> ops;
    const BitVector d = f.randomPage(rng);
    f.ftl->writePage(7, &d, ops);
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].kind, PhysOp::Kind::kPageProgram);
    std::vector<PhysOp> rops;
    EXPECT_EQ(f.ftl->readPage(7, rops), d);
    ASSERT_EQ(rops.size(), 1u);
    EXPECT_EQ(rops[0].kind, PhysOp::Kind::kPageRead);
}

TEST(Ftl, OverwriteInvalidatesOldPage)
{
    FtlFixture f;
    Rng rng(2);
    std::vector<PhysOp> ops;
    const BitVector d1 = f.randomPage(rng);
    const BitVector d2 = f.randomPage(rng);
    f.ftl->writePage(3, &d1, ops);
    const auto old = f.ftl->lookup(3);
    f.ftl->writePage(3, &d2, ops);
    const auto fresh = f.ftl->lookup(3);
    ASSERT_TRUE(old && fresh);
    EXPECT_NE(*old, *fresh);
    EXPECT_EQ(f.ftl->readPage(3, ops), d2);
}

TEST(Ftl, TrimUnmaps)
{
    FtlFixture f;
    std::vector<PhysOp> ops;
    f.ftl->writePage(5, nullptr, ops);
    EXPECT_TRUE(f.ftl->lookup(5).has_value());
    f.ftl->trim(5);
    EXPECT_FALSE(f.ftl->lookup(5).has_value());
}

TEST(Ftl, ConsecutiveWritesStripeAcrossChannels)
{
    FtlFixture f;
    std::vector<PhysOp> ops;
    f.ftl->writePage(0, nullptr, ops);
    f.ftl->writePage(1, nullptr, ops);
    const auto a = f.ftl->lookup(0);
    const auto b = f.ftl->lookup(1);
    ASSERT_TRUE(a && b);
    EXPECT_NE(a->channel, b->channel);
}

TEST(Ftl, WritePairCoLocatesOperands)
{
    FtlFixture f;
    Rng rng(3);
    std::vector<PhysOp> ops;
    const BitVector x = f.randomPage(rng);
    const BitVector y = f.randomPage(rng);
    const auto pair = f.ftl->writePair(10, 11, &x, &y, ops);
    ASSERT_TRUE(pair.has_value());
    EXPECT_TRUE(pair->lsb.sameWordline(pair->msb));
    EXPECT_EQ(*f.ftl->lookup(10), pair->lsb);
    EXPECT_EQ(*f.ftl->lookup(11), pair->msb);
    EXPECT_EQ(f.ftl->readPage(10, ops), x);
    EXPECT_EQ(f.ftl->readPage(11, ops), y);
    EXPECT_EQ(f.ftl->parabitPagesWritten(), 2u);
}

TEST(Ftl, WriteLsbOnlyLeavesMsbFree)
{
    FtlFixture f;
    std::vector<PhysOp> ops;
    const auto addr_opt = f.ftl->writeLsbOnly(20, nullptr, ops);
    ASSERT_TRUE(addr_opt.has_value());
    const flash::PhysPageAddr addr = *addr_opt;
    EXPECT_FALSE(addr.msb);
    flash::PhysPageAddr msb = addr;
    msb.msb = true;
    EXPECT_EQ(f.ftl->chipAt(msb).pageState(
                  {msb.die, msb.plane, msb.block, msb.wordline, true}),
              flash::PageState::kFree);
}

TEST(Ftl, WriteIntoFreeMsbSucceedsOnceThenFails)
{
    FtlFixture f;
    Rng rng(4);
    std::vector<PhysOp> ops;
    const BitVector d = f.randomPage(rng);
    const auto lsb = f.ftl->writeLsbOnly(30, nullptr, ops);
    ASSERT_TRUE(lsb.has_value());
    EXPECT_TRUE(f.ftl->writeIntoFreeMsb(31, *lsb, &d, ops));
    EXPECT_EQ(f.ftl->readPage(31, ops), d);
    // The MSB is now occupied: a second drop must be refused.
    EXPECT_FALSE(f.ftl->writeIntoFreeMsb(32, *lsb, &d, ops));
}

TEST(Ftl, GarbageCollectionPreservesLiveData)
{
    FtlFixture f;
    Rng rng(5);
    // Working set much smaller than the device; overwrite it many times
    // to force GC.
    const std::uint64_t live = 24;
    std::vector<BitVector> latest(live);
    std::vector<PhysOp> ops;
    for (int round = 0; round < 40; ++round) {
        for (std::uint64_t l = 0; l < live; ++l) {
            latest[l] = f.randomPage(rng);
            f.ftl->writePage(l, &latest[l], ops);
        }
    }
    EXPECT_GT(f.ftl->gcRuns(), 0u) << "working set should have forced GC";
    for (std::uint64_t l = 0; l < live; ++l) {
        std::vector<PhysOp> r;
        EXPECT_EQ(f.ftl->readPage(l, r), latest[l]) << "lpn " << l;
    }
}

TEST(Ftl, WriteAmplificationAboveOneUnderGc)
{
    // Fill most of the device, then repeatedly rewrite only the odd
    // LPNs: every block holds a mix of still-valid even pages and
    // invalidated odd pages, so GC victims always carry live data that
    // must be relocated.  (A pure overwrite workload leaves blocks fully
    // invalid and correctly yields WAF = 1, which
    // GarbageCollectionReclaimsDeadBlocksForFree covers.)
    FtlFixture f;
    std::vector<PhysOp> ops;
    const std::uint64_t working_set = 600;
    for (std::uint64_t l = 0; l < working_set; ++l)
        f.ftl->writePage(l, nullptr, ops);
    for (int round = 0; round < 6; ++round)
        for (std::uint64_t l = 1; l < working_set; l += 2)
            f.ftl->writePage(l, nullptr, ops);
    EXPECT_GT(f.ftl->gcRuns(), 0u);
    EXPECT_GT(f.ftl->gcPagesWritten(), 0u);
    EXPECT_GT(f.ftl->writeAmplification(), 1.0);
    EXPECT_GT(f.ftl->blockErases(), 0u);
}

TEST(Ftl, GarbageCollectionReclaimsDeadBlocksForFree)
{
    // Pure overwrites leave victim blocks fully invalid: GC erases them
    // without relocation traffic, so WAF stays exactly 1.
    FtlFixture f;
    std::vector<PhysOp> ops;
    for (int round = 0; round < 60; ++round)
        for (std::uint64_t l = 0; l < 16; ++l)
            f.ftl->writePage(l, nullptr, ops);
    EXPECT_GT(f.ftl->blockErases(), 0u);
    EXPECT_EQ(f.ftl->gcPagesWritten(), 0u);
    EXPECT_DOUBLE_EQ(f.ftl->writeAmplification(), 1.0);
}

TEST(Ftl, GcOpsAreFlaggedForTiming)
{
    FtlFixture f;
    std::vector<PhysOp> ops;
    for (int round = 0; round < 60; ++round)
        for (std::uint64_t l = 0; l < 16; ++l)
            f.ftl->writePage(l, nullptr, ops);
    bool saw_gc_op = false, saw_erase = false;
    for (const auto &op : ops) {
        saw_gc_op |= op.forGc;
        saw_erase |= op.kind == PhysOp::Kind::kBlockErase;
    }
    EXPECT_TRUE(saw_gc_op);
    EXPECT_TRUE(saw_erase);
}

TEST(Ftl, UnmappedReadDies)
{
    FtlFixture f;
    std::vector<PhysOp> ops;
    EXPECT_DEATH(f.ftl->readPage(999, ops), "unmapped");
}

TEST(Ftl, LpnBeyondCapacityDies)
{
    FtlFixture f;
    std::vector<PhysOp> ops;
    EXPECT_DEATH(f.ftl->writePage(f.ftl->logicalPages(), nullptr, ops),
                 "beyond");
}

} // namespace
} // namespace parabit::ssd
