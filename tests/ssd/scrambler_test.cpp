/**
 * @file
 * Scrambler tests (paper Section 4.3.2): involution, whitening, the
 * host-path round trip, and the ParaBit bypass — operands must be
 * stored raw or in-flash computation would operate on keystreamed bits.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "parabit/device.hpp"
#include "ssd/scrambler.hpp"

namespace parabit::ssd {
namespace {

BitVector
randomPage(std::size_t bits, std::uint64_t seed)
{
    Rng rng(seed);
    BitVector v(bits);
    for (auto &w : v.words())
        w = rng.next();
    v.maskTail();
    return v;
}

TEST(Scrambler, IsInvolutive)
{
    Scrambler s(42);
    BitVector page = randomPage(512, 1);
    const BitVector original = page;
    s.apply(page, 7);
    EXPECT_NE(page, original);
    s.apply(page, 7);
    EXPECT_EQ(page, original);
}

TEST(Scrambler, KeystreamDependsOnLpn)
{
    Scrambler s(42);
    const BitVector page = randomPage(512, 2);
    EXPECT_NE(s.scrambled(page, 1), s.scrambled(page, 2));
}

TEST(Scrambler, KeystreamDependsOnDeviceKey)
{
    Scrambler a(1), b(2);
    const BitVector page = randomPage(512, 3);
    EXPECT_NE(a.scrambled(page, 5), b.scrambled(page, 5));
}

TEST(Scrambler, WhitensPathologicalPatterns)
{
    // An all-ones page (the worst array stress pattern) must come out
    // roughly balanced.
    Scrambler s(99);
    BitVector ones(4096, true);
    s.apply(ones, 3);
    const double density =
        static_cast<double>(ones.popcount()) / ones.size();
    EXPECT_GT(density, 0.40);
    EXPECT_LT(density, 0.60);
}

TEST(Scrambler, HostPathRoundTripsThroughFtl)
{
    SsdConfig cfg = SsdConfig::tiny();
    cfg.scrambleHostData = true;
    core::ParaBitDevice dev(cfg);
    const BitVector d = randomPage(cfg.geometry.pageBits(), 4);
    dev.writeData(0, {d});
    EXPECT_EQ(dev.readData(0, 1)[0], d) << "descramble must restore data";
}

TEST(Scrambler, HostWritesAreStoredWhitened)
{
    SsdConfig cfg = SsdConfig::tiny();
    cfg.scrambleHostData = true;
    core::ParaBitDevice dev(cfg);
    const BitVector d(cfg.geometry.pageBits(), true); // all-ones page
    dev.writeData(0, {d});
    const auto addr = dev.ssd().ftl().lookup(0);
    ASSERT_TRUE(addr);
    const BitVector raw =
        dev.ssd().chipAt(addr->channel, addr->chip)
            .readPage({addr->die, addr->plane, addr->block, addr->wordline,
                       addr->msb});
    EXPECT_NE(raw, d) << "stored bits must be whitened";
}

TEST(Scrambler, ParaBitPlacementBypassesScrambling)
{
    // Paper Section 4.3.2: scrambling is disabled when operands are
    // allocated or reallocated, so in-flash ops see real data.
    SsdConfig cfg = SsdConfig::tiny();
    cfg.scrambleHostData = true;
    core::ParaBitDevice dev(cfg);
    const BitVector x = randomPage(cfg.geometry.pageBits(), 5);
    const BitVector y = randomPage(cfg.geometry.pageBits(), 6);
    dev.writeOperandPair(0, 100, {x}, {y});
    const auto addr = dev.ssd().ftl().lookup(0);
    ASSERT_TRUE(addr);
    const BitVector raw =
        dev.ssd().chipAt(addr->channel, addr->chip)
            .readPage({addr->die, addr->plane, addr->block, addr->wordline,
                       false});
    EXPECT_EQ(raw, x) << "operands must be stored raw";

    const auto r = dev.bitwise(flash::BitwiseOp::kAnd, 0, 100, 1,
                               core::Mode::kPreAllocated);
    EXPECT_EQ(r.pages[0], x & y)
        << "in-flash computation must see unscrambled operands";
}

TEST(Scrambler, ReallocPathDescramblesHostDataFirst)
{
    // Operands originally written through the scrambled host path are
    // read (descrambled by ECC path) and re-programmed raw during
    // reallocation, so the computation is still correct.
    SsdConfig cfg = SsdConfig::tiny();
    cfg.scrambleHostData = true;
    core::ParaBitDevice dev(cfg);
    const BitVector x = randomPage(cfg.geometry.pageBits(), 7);
    const BitVector y = randomPage(cfg.geometry.pageBits(), 8);
    dev.writeData(0, {x});
    dev.writeData(100, {y});
    const auto r = dev.bitwise(flash::BitwiseOp::kXor, 0, 100, 1,
                               core::Mode::kReAllocate);
    EXPECT_EQ(r.pages[0], x ^ y);
}

} // namespace
} // namespace parabit::ssd
