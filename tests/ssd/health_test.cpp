/**
 * @file
 * Device health state machine: config validation, deterministic
 * hysteresis-guarded transitions on the standalone machine, and the
 * host-visible policy effects (write-protected, formula shedding)
 * through the full queue path.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "parabit/host_interface.hpp"
#include "ssd/health.hpp"
#include "ssd/ssd.hpp"

namespace parabit::ssd {
namespace {

// ---------------------------------------------------------------------
// Config validation.

TEST(HealthConfigValidation, DisabledConfigIsInertWhateverTheKnobs)
{
    SsdConfig cfg = SsdConfig::tiny();
    cfg.health.enabled = false;
    cfg.health.degradedThreshold = -1.0; // nonsense, but inert
    cfg.health.hysteresis = 7.0;
    cfg.health.minDwell = 0;
    EXPECT_EQ(validateHealthConfig(cfg), nullptr);
}

TEST(HealthConfigValidation, DefaultEnabledConfigIsValid)
{
    SsdConfig cfg = SsdConfig::tiny();
    cfg.health.enabled = true;
    EXPECT_EQ(validateHealthConfig(cfg), nullptr);
}

TEST(HealthConfigValidation, RejectsUnorderedThresholds)
{
    SsdConfig cfg = SsdConfig::tiny();
    cfg.health.enabled = true;
    cfg.health.readOnlyThreshold = cfg.health.failedThreshold + 1.0;
    const char *err = validateHealthConfig(cfg);
    ASSERT_NE(err, nullptr);
    EXPECT_NE(std::string(err).find("strictly ordered"), std::string::npos);

    cfg = SsdConfig::tiny();
    cfg.health.enabled = true;
    cfg.health.degradedThreshold = 0.0;
    EXPECT_NE(validateHealthConfig(cfg), nullptr);
}

TEST(HealthConfigValidation, RejectsDegenerateHysteresisAndClocks)
{
    SsdConfig cfg = SsdConfig::tiny();
    cfg.health.enabled = true;
    cfg.health.hysteresis = 0.0;
    const char *err = validateHealthConfig(cfg);
    ASSERT_NE(err, nullptr);
    EXPECT_NE(std::string(err).find("hysteresis"), std::string::npos);

    cfg = SsdConfig::tiny();
    cfg.health.enabled = true;
    cfg.health.pressureHalfLife = 0;
    ASSERT_NE(validateHealthConfig(cfg), nullptr);

    cfg = SsdConfig::tiny();
    cfg.health.enabled = true;
    cfg.health.minDwell = 0;
    ASSERT_NE(validateHealthConfig(cfg), nullptr);

    cfg = SsdConfig::tiny();
    cfg.health.enabled = true;
    cfg.health.degradedScrubDivisor = 0;
    ASSERT_NE(validateHealthConfig(cfg), nullptr);
}

TEST(HealthConfigValidation, DeviceConstructionRejectsBrokenConfig)
{
    EXPECT_DEATH(
        {
            SsdConfig cfg = SsdConfig::tiny();
            cfg.health.enabled = true;
            cfg.health.hysteresis = 1.5;
            SsdDevice dev(cfg);
        },
        "hysteresis");
}

// ---------------------------------------------------------------------
// The standalone state machine.

HealthConfig
testMachineConfig()
{
    HealthConfig h;
    h.enabled = true;
    h.degradedThreshold = 4.0;
    h.readOnlyThreshold = 12.0;
    h.failedThreshold = 100.0;
    h.hysteresis = 0.25;
    h.pressureHalfLife = 100; // ticks; fast decay for the tests
    h.minDwell = 1000;
    return h;
}

TEST(DeviceHealthMachine, EscalatesAtThresholdOneStepAtATime)
{
    DeviceHealth h(testMachineConfig());
    EXPECT_EQ(h.state(), HealthState::kHealthy);
    h.noteUncorrectable(); // weight 4.0 == degradedThreshold
    EXPECT_EQ(h.state(), HealthState::kDegraded);
    ASSERT_EQ(h.transitions().size(), 1u);
    EXPECT_EQ(h.transitions()[0].from, HealthState::kHealthy);
    EXPECT_EQ(h.transitions()[0].to, HealthState::kDegraded);

    // A burst crossing two more thresholds still records single steps.
    for (int i = 0; i < 24; ++i)
        h.noteUncorrectable(); // pressure ~100 >= failedThreshold
    EXPECT_EQ(h.state(), HealthState::kFailed);
    ASSERT_EQ(h.transitions().size(), 3u);
    EXPECT_EQ(h.transitions()[1].to, HealthState::kReadOnly);
    EXPECT_EQ(h.transitions()[2].to, HealthState::kFailed);
    EXPECT_EQ(h.maxState(), HealthState::kFailed);
}

TEST(DeviceHealthMachine, DeEscalationWaitsForDwellAndHysteresis)
{
    DeviceHealth h(testMachineConfig());
    h.noteUncorrectable();
    ASSERT_EQ(h.state(), HealthState::kDegraded);

    // Pressure decays to ~nothing after 5 half-lives, clearing the
    // hysteresis bar (4.0 * 0.75 = 3.0), but 500 < minDwell: stay.
    h.pump(500);
    EXPECT_LT(h.pressure(), 3.0);
    EXPECT_EQ(h.state(), HealthState::kDegraded);

    // Past the dwell the same pressure steps the machine back down.
    h.pump(2000);
    EXPECT_EQ(h.state(), HealthState::kHealthy);
    EXPECT_EQ(h.maxState(), HealthState::kDegraded) << "peak is retained";
}

TEST(DeviceHealthMachine, HysteresisMarginBlocksDeEscalation)
{
    HealthConfig cfg = testMachineConfig();
    cfg.pressureHalfLife = ticks::fromMs(1000); // effectively no decay
    DeviceHealth h(cfg);
    h.noteUncorrectable(); // pressure 4.0 -> degraded
    ASSERT_EQ(h.state(), HealthState::kDegraded);
    // Dwell satisfied, but pressure (4.0) > 4.0 * (1 - 0.25): hold.
    h.pump(5000);
    EXPECT_EQ(h.state(), HealthState::kDegraded);
}

TEST(DeviceHealthMachine, FailedIsTerminal)
{
    DeviceHealth h(testMachineConfig());
    for (int i = 0; i < 30; ++i)
        h.noteUncorrectable();
    ASSERT_EQ(h.state(), HealthState::kFailed);
    h.pump(ticks::fromMs(10)); // decay to ~zero changes nothing
    EXPECT_EQ(h.state(), HealthState::kFailed);
    EXPECT_FALSE(h.admitRead());
    EXPECT_FALSE(h.admitWrite());
    EXPECT_FALSE(h.admitFormula());
}

TEST(DeviceHealthMachine, PolicyQueriesFollowTheState)
{
    DeviceHealth h(testMachineConfig());
    EXPECT_TRUE(h.admitWrite());
    EXPECT_TRUE(h.admitFormula());
    EXPECT_TRUE(h.admitRead());
    EXPECT_FALSE(h.backgroundThrottled());

    h.noteUncorrectable(); // -> degraded
    EXPECT_TRUE(h.admitWrite());
    EXPECT_FALSE(h.admitFormula()) << "degraded sheds computation first";
    EXPECT_TRUE(h.admitRead());
    EXPECT_TRUE(h.backgroundThrottled());

    h.noteUncorrectable();
    h.noteUncorrectable(); // pressure 12 -> read-only
    ASSERT_EQ(h.state(), HealthState::kReadOnly);
    EXPECT_FALSE(h.admitWrite());
    EXPECT_TRUE(h.admitRead());
}

TEST(DeviceHealthMachine, FrozenWhilePowerLost)
{
    DeviceHealth h(testMachineConfig());
    h.noteUncorrectable();
    ASSERT_EQ(h.state(), HealthState::kDegraded);
    const double p = h.pressure();

    h.setPowerLost(true);
    h.noteUncorrectable(); // ignored: the machine is frozen
    h.pump(ticks::fromMs(50));
    EXPECT_EQ(h.pressure(), p) << "no charge and no decay mid-cut";
    EXPECT_EQ(h.state(), HealthState::kDegraded);
    EXPECT_EQ(h.transitions().size(), 1u);

    h.setPowerLost(false);
    h.pump(ticks::fromMs(50));
    EXPECT_EQ(h.state(), HealthState::kHealthy) << "resumes after power";
    for (const HealthTransition &t : h.transitions())
        EXPECT_FALSE(t.powerLost);
}

TEST(DeviceHealthMachine, DeterministicAcrossIdenticalRuns)
{
    const auto run = [] {
        DeviceHealth h(testMachineConfig());
        Rng rng(0xFEED);
        for (int i = 0; i < 200; ++i) {
            if (rng.chance(0.3))
                h.noteUncorrectable();
            if (rng.chance(0.5))
                h.noteRefresh();
            h.pump(static_cast<Tick>(i) * 50);
        }
        return h.transitions();
    };
    const auto a = run();
    const auto b = run();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].to, b[i].to);
        EXPECT_EQ(a[i].at, b[i].at);
        EXPECT_EQ(a[i].pressure, b[i].pressure);
    }
}

} // namespace
} // namespace parabit::ssd

// ---------------------------------------------------------------------
// Host-visible policy effects through the queue path.

namespace parabit::core {
namespace {

ssd::SsdConfig
healthyTinyConfig()
{
    ssd::SsdConfig cfg = ssd::SsdConfig::tiny();
    cfg.health.enabled = true; // default thresholds: 8 / 24 / 96
    return cfg;
}

TEST(HostHealthPolicy, ReadOnlyDeviceRejectsWritesWithDistinctStatus)
{
    ParaBitDevice dev(healthyTinyConfig());
    dev.writeMeta(0, 1);
    ssd::DeviceHealth *h = dev.ssd().health();
    ASSERT_NE(h, nullptr);
    for (int i = 0; i < 6; ++i)
        h->noteUncorrectable(); // 6 * 4.0 = 24 -> read-only
    ASSERT_EQ(h->state(), ssd::HealthState::kReadOnly);

    HostInterface host(dev, 1, 8);
    ASSERT_TRUE(host.submitWrite(0, 1));
    ASSERT_TRUE(host.submitRead(0, 0));
    EXPECT_EQ(host.pump(), 2u);

    const auto w = host.reap(0);
    ASSERT_TRUE(w);
    EXPECT_EQ(w->status, nvme::kWriteProtected);
    const auto r = host.reap(0);
    ASSERT_TRUE(r);
    EXPECT_TRUE(r->ok()) << "reads keep flowing in read-only";
    EXPECT_EQ(host.writeRejects(), 1u);
    EXPECT_EQ(h->admittedWritesSinceEntry(), 0u);
}

TEST(HostHealthPolicy, DegradedDeviceShedsFormulasButServesIo)
{
    ParaBitDevice dev(healthyTinyConfig());
    const ssd::SsdConfig &cfg = dev.ssd().config();
    Rng rng(7);
    BitVector x(cfg.geometry.pageBits()), y(cfg.geometry.pageBits());
    for (std::size_t i = 0; i < x.size(); ++i) {
        x.set(i, rng.chance(0.5));
        y.set(i, rng.chance(0.5));
    }
    dev.writeData(0, {x});
    dev.writeData(10, {y});

    ssd::DeviceHealth *h = dev.ssd().health();
    ASSERT_NE(h, nullptr);
    h->noteUncorrectable();
    h->noteUncorrectable(); // 8.0 -> degraded
    ASSERT_EQ(h->state(), ssd::HealthState::kDegraded);

    HostInterface host(dev, 1, 32, Mode::kReAllocate);
    nvme::Formula f;
    f.terms.push_back(nvme::Formula::Term{nvme::OperandRef::logical(0, 1),
                                          nvme::OperandRef::logical(10, 1),
                                          flash::BitwiseOp::kXor});
    ASSERT_TRUE(host.submitFormula(0, f));
    ASSERT_TRUE(host.submitWrite(0, 20));
    host.pump();

    const auto c1 = host.reap(0);
    ASSERT_TRUE(c1);
    EXPECT_EQ(c1->status, nvme::kAdmissionShed)
        << "a degraded device sheds computation with its own status";
    EXPECT_TRUE(c1->pages.empty());
    const auto c2 = host.reap(0);
    ASSERT_TRUE(c2);
    EXPECT_TRUE(c2->ok()) << "plain writes still admitted while degraded";
    EXPECT_EQ(host.sheds(), 1u);
}

TEST(HostHealthPolicy, AdmissionLimitShedsFastWithImmediateCompletion)
{
    ParaBitDevice dev(healthyTinyConfig());
    dev.writeMeta(0, 1);
    HostInterface host(dev, 1, 8);
    host.setAdmissionLimit(2);

    ASSERT_TRUE(host.submitRead(0, 0));
    ASSERT_TRUE(host.submitRead(0, 0));
    const auto shed = host.submitRead(0, 0); // third: over the cap
    ASSERT_TRUE(shed) << "a shed command still yields a reapable cid";

    // The shed completion is already in the CQ, before the pump runs.
    const auto c0 = host.reap(0);
    ASSERT_TRUE(c0);
    EXPECT_EQ(c0->cid, *shed);
    EXPECT_EQ(c0->status, nvme::kAdmissionShed);
    EXPECT_EQ(c0->latency, Tick{0}) << "shedding is immediate";

    EXPECT_EQ(host.pump(), 2u);
    EXPECT_TRUE(host.reap(0)->ok());
    EXPECT_TRUE(host.reap(0)->ok());
    EXPECT_EQ(host.sheds(), 1u);
}

} // namespace
} // namespace parabit::core
