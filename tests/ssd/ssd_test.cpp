/**
 * @file
 * SsdDevice timing-model tests: latency anchors, channel/die pipelining,
 * plane parallelism, endurance accounting, internal bandwidth.
 */

#include <gtest/gtest.h>

#include "ssd/ssd.hpp"

namespace parabit::ssd {
namespace {

SsdConfig
tinyCfg()
{
    SsdConfig c = SsdConfig::tiny();
    c.storeData = false; // timing-only is enough here
    return c;
}

TEST(SsdDevice, SingleLsbReadLatency)
{
    SsdConfig cfg = tinyCfg();
    SsdDevice dev(cfg);
    std::vector<PhysOp> ops;
    dev.ftl().writePage(0, nullptr, ops);
    // Use a fresh op list so only the read is timed.
    std::vector<PhysOp> rops;
    dev.ftl().readPage(0, rops);
    const Tick done = dev.scheduleOps(rops, ticks::fromSec(1.0));
    const Tick expect = ticks::fromSec(1.0) + cfg.timing.tCmdOverhead +
                        cfg.timing.lsbReadTime() +
                        cfg.timing.transferTime(cfg.geometry.pageBytes);
    EXPECT_EQ(done, expect);
}

TEST(SsdDevice, MsbReadCostsTwoSensings)
{
    SsdConfig cfg = tinyCfg();
    SsdDevice dev(cfg);
    // Occupy LSB then MSB pages; LPN 1 lands on the MSB of some pair
    // only with paired placement, so place explicitly.
    std::vector<PhysOp> ops;
    dev.ftl().writePair(0, 1, nullptr, nullptr, ops);
    std::vector<PhysOp> r_lsb, r_msb;
    dev.ftl().readPage(0, r_lsb);
    dev.ftl().readPage(1, r_msb);
    const Tick t_lsb = dev.scheduleOps(r_lsb, 0);
    // Schedule the MSB read far later so timelines are idle again.
    const Tick base = ticks::fromSec(10.0);
    const Tick t_msb = dev.scheduleOps(r_msb, base) - base;
    EXPECT_EQ(t_msb - t_lsb, cfg.timing.tSense);
}

TEST(SsdDevice, ProgramLatencyAnchor)
{
    SsdConfig cfg = tinyCfg();
    SsdDevice dev(cfg);
    std::vector<PhysOp> ops;
    dev.ftl().writePage(0, nullptr, ops);
    const Tick done = dev.scheduleOps(ops, 0);
    const Tick expect = cfg.timing.tCmdOverhead +
                        cfg.timing.transferTime(cfg.geometry.pageBytes) +
                        cfg.timing.tProgram;
    EXPECT_EQ(done, expect);
}

TEST(SsdDevice, ReadsOnDifferentChannelsRunInParallel)
{
    SsdConfig cfg = tinyCfg();
    SsdDevice dev(cfg);
    std::vector<PhysOp> w;
    // Striped writes land on different channels.
    dev.ftl().writePage(0, nullptr, w);
    dev.ftl().writePage(1, nullptr, w);
    std::vector<PhysOp> r;
    dev.ftl().readPage(0, r);
    dev.ftl().readPage(1, r);
    const Tick both = dev.scheduleOps(r, 0);
    std::vector<PhysOp> r0{r[0]};
    SsdDevice dev2(cfg);
    std::vector<PhysOp> w2;
    dev2.ftl().writePage(0, nullptr, w2);
    std::vector<PhysOp> r2;
    dev2.ftl().readPage(0, r2);
    const Tick one = dev2.scheduleOps(r2, 0);
    EXPECT_EQ(both, one) << "independent channels must fully overlap";
}

TEST(SsdDevice, CacheReadPipelinesSensingUnderTransfer)
{
    // Many sequential reads from one die: total time must approach
    // max(sum of sensings, sum of transfers) + pipeline fill, not the
    // sum of both.
    SsdConfig cfg = tinyCfg();
    cfg.geometry.channels = 1;
    cfg.geometry.chipsPerChannel = 1;
    cfg.geometry.planesPerDie = 1;
    SsdDevice dev(cfg);
    const int n = 16;
    std::vector<PhysOp> w;
    for (int i = 0; i < n; ++i)
        dev.ftl().writeLsbOnly(static_cast<Lpn>(i), nullptr, w);
    std::vector<PhysOp> r;
    for (int i = 0; i < n; ++i)
        dev.ftl().readPage(static_cast<Lpn>(i), r);
    const Tick done = dev.scheduleOps(r, 0);
    // Sensing dominates and transfers hide under it: total is the
    // sensing train plus one command overhead and one trailing transfer.
    const Tick sense_total = static_cast<Tick>(n) * cfg.timing.lsbReadTime();
    const Tick xfer = cfg.timing.transferTime(cfg.geometry.pageBytes);
    EXPECT_LT(done, sense_total + static_cast<Tick>(n) * xfer)
        << "no pipelining happened";
    EXPECT_GE(done, sense_total);
    EXPECT_EQ(done, sense_total + cfg.timing.tCmdOverhead + xfer);
}

TEST(SsdDevice, ArrayJobsBookSenseTimePerDie)
{
    SsdConfig cfg = tinyCfg();
    SsdDevice dev(cfg);
    flash::PhysPageAddr a{};
    const Tick done =
        dev.scheduleArrayJobs({ArrayJob{a, 4, 0}}, 0); // XOR: 4 SROs
    EXPECT_EQ(done, cfg.timing.tCmdOverhead + 4 * cfg.timing.tSense);
}

TEST(SsdDevice, ArrayJobsOnAllPlanesOverlap)
{
    SsdConfig cfg = tinyCfg();
    SsdDevice dev(cfg);
    std::vector<ArrayJob> jobs;
    for (std::uint32_t ch = 0; ch < cfg.geometry.channels; ++ch) {
        for (std::uint32_t c = 0; c < cfg.geometry.chipsPerChannel; ++c) {
            flash::PhysPageAddr a{};
            a.channel = ch;
            a.chip = c;
            jobs.push_back(ArrayJob{a, 1, 0});
        }
    }
    const Tick done = dev.scheduleArrayJobs(jobs, 0);
    EXPECT_EQ(done, cfg.timing.tCmdOverhead + cfg.timing.tSense)
        << "independent dies must sense concurrently";
}

TEST(SsdDevice, EnduranceTracksWriteClasses)
{
    SsdConfig cfg = tinyCfg();
    SsdDevice dev(cfg);
    std::vector<PhysOp> ops;
    dev.ftl().writePage(0, nullptr, ops);       // host
    dev.ftl().writePair(1, 2, nullptr, nullptr, ops); // parabit x2
    const EnduranceStats e = dev.endurance();
    EXPECT_EQ(e.hostBytes, cfg.geometry.pageBytes);
    EXPECT_EQ(e.reallocBytes, 2 * cfg.geometry.pageBytes);
    EXPECT_DOUBLE_EQ(e.effectiveTbw(600.0), 600.0 * 1.0 / 3.0);
}

TEST(SsdDevice, InternalBandwidthScalesWithChannels)
{
    SsdConfig one = tinyCfg();
    one.geometry.channels = 1;
    SsdConfig two = tinyCfg();
    two.geometry.channels = 2;
    EXPECT_NEAR(SsdDevice(two).internalReadBandwidth() /
                    SsdDevice(one).internalReadBandwidth(),
                2.0, 1e-9);
}

TEST(SsdDevice, PaperSsdBandwidthIsBusBound)
{
    // 16 chips x 4 planes per channel easily saturate an 800 MB/s bus.
    SsdConfig cfg = SsdConfig::paperSsd();
    SsdDevice dev(cfg);
    EXPECT_NEAR(dev.internalReadBandwidth(),
                cfg.timing.channelBytesPerSec * cfg.geometry.channels,
                1.0);
}

TEST(EnduranceStats, PaperSection54Formula)
{
    // Bitmap: 33.99 GiB host data, 67.79 GiB reallocated -> TBW 600
    // shrinks to ~200.4 (paper: 200.67).
    EnduranceStats e;
    e.hostBytes = static_cast<Bytes>(33.99 * 1024) * bytes::kMiB;
    e.reallocBytes = static_cast<Bytes>(67.79 * 1024) * bytes::kMiB;
    EXPECT_NEAR(e.effectiveTbw(600.0), 200.4, 1.0);
}

} // namespace
} // namespace parabit::ssd
