/**
 * @file
 * Resource-timeline tests: serialisation, back-to-back booking, and the
 * pipeline composition property used by the SSD scheduler.
 */

#include <gtest/gtest.h>

#include "ssd/timeline.hpp"

namespace parabit::ssd {
namespace {

TEST(Timeline, FirstReservationStartsAtEarliest)
{
    Timeline t;
    EXPECT_EQ(t.reserve(100, 50), 100u);
    EXPECT_EQ(t.nextFree(), 150u);
}

TEST(Timeline, SerialisesOverlappingRequests)
{
    Timeline t;
    EXPECT_EQ(t.reserve(0, 100), 0u);
    // Wants to start at 10 but the resource is busy until 100.
    EXPECT_EQ(t.reserve(10, 20), 100u);
    EXPECT_EQ(t.nextFree(), 120u);
}

TEST(Timeline, IdleGapsAreHonoured)
{
    Timeline t;
    t.reserve(0, 10);
    // Ready long after the resource freed: start at ready time.
    EXPECT_EQ(t.reserve(500, 10), 500u);
}

TEST(Timeline, PipelineOfTwoResources)
{
    // Classic cache-read overlap: die sensing (25 us) feeding channel
    // transfers (10 us).  Steady-state throughput must be sensing-bound:
    // the k-th read completes at (k+1)*25 + 10 us.
    Timeline die, channel;
    const Tick sense = 25, xfer = 10;
    Tick last_end = 0;
    for (int k = 0; k < 4; ++k) {
        const Tick s = die.reserve(0, sense);
        const Tick x = channel.reserve(s + sense, xfer);
        last_end = x + xfer;
        EXPECT_EQ(s, static_cast<Tick>(k) * sense);
    }
    EXPECT_EQ(last_end, 4 * sense + xfer);
}

TEST(Timeline, ResetClears)
{
    Timeline t;
    t.reserve(0, 1000);
    t.reset();
    EXPECT_EQ(t.nextFree(), 0u);
    EXPECT_EQ(t.reserve(0, 1), 0u);
}

TEST(Timeline, BusyTimeAccumulatesBookedDurations)
{
    Timeline t;
    EXPECT_EQ(t.bookedTicks(), 0u);
    t.reserve(0, 100);
    t.reserve(500, 50); // idle gap 100-500 is not busy time
    EXPECT_EQ(t.bookedTicks(), 150u);
    EXPECT_EQ(t.nextFree(), 550u);
}

TEST(Timeline, UtilizationIsBusyOverHorizon)
{
    Timeline t;
    t.reserve(0, 250);
    EXPECT_DOUBLE_EQ(t.utilization(1000), 0.25);
    EXPECT_DOUBLE_EQ(t.utilization(0), 0.0); // degenerate horizon
}

TEST(Timeline, ResetClearsBusyTime)
{
    Timeline t;
    t.reserve(0, 123);
    t.reset();
    EXPECT_EQ(t.bookedTicks(), 0u);
    EXPECT_DOUBLE_EQ(t.utilization(100), 0.0);
}

} // namespace
} // namespace parabit::ssd
