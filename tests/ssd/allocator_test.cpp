/**
 * @file
 * Allocator tests: striping order, the three placement modes, free-pool
 * bookkeeping, and the paired/LSB-only invariants ParaBit relies on.
 */

#include <gtest/gtest.h>

#include <set>

#include "ssd/allocator.hpp"

namespace parabit::ssd {
namespace {

flash::FlashGeometry
geom()
{
    return flash::FlashGeometry::tiny(); // 2 ch x 2 chips x 2 planes
}

TEST(PlaneCoord, RoundTripsThroughIndex)
{
    const auto g = geom();
    for (PlaneIndex i = 0; i < g.planesTotal(); ++i) {
        const PlaneCoord c = planeCoord(g, i);
        EXPECT_EQ(planeIndex(g, c), i);
        EXPECT_LT(c.channel, g.channels);
        EXPECT_LT(c.chip, g.chipsPerChannel);
        EXPECT_LT(c.plane, g.planesPerDie);
    }
}

TEST(Allocator, NextPlaneVisitsChannelsRoundRobin)
{
    const auto g = geom();
    Allocator a(g);
    // Consecutive allocations must alternate channels before reusing
    // one — the bus-parallelism striping the paper relies on.
    std::vector<std::uint32_t> channels;
    for (int i = 0; i < 4; ++i)
        channels.push_back(planeCoord(g, a.nextPlane()).channel);
    EXPECT_EQ(channels[0], 0u);
    EXPECT_EQ(channels[1], 1u);
    EXPECT_EQ(channels[2], 0u);
    EXPECT_EQ(channels[3], 1u);
}

TEST(Allocator, NextPlaneEventuallyCoversAllPlanes)
{
    const auto g = geom();
    Allocator a(g);
    std::set<PlaneIndex> seen;
    for (std::uint32_t i = 0; i < g.planesTotal(); ++i)
        seen.insert(a.nextPlane());
    EXPECT_EQ(seen.size(), g.planesTotal());
}

TEST(Allocator, InterleavedOrderIsLsbThenMsb)
{
    Allocator a(geom());
    const auto p0 = a.nextPage(0);
    const auto p1 = a.nextPage(0);
    const auto p2 = a.nextPage(0);
    ASSERT_TRUE(p0 && p1 && p2);
    EXPECT_FALSE(p0->msb);
    EXPECT_TRUE(p1->msb);
    EXPECT_TRUE(p0->sameWordline(*p1));
    EXPECT_FALSE(p2->msb);
    EXPECT_EQ(p2->wordline, p0->wordline + 1);
}

TEST(Allocator, PairSharesOneWordline)
{
    Allocator a(geom());
    const auto pair = a.nextPair(0);
    ASSERT_TRUE(pair);
    EXPECT_TRUE(pair->lsb.sameWordline(pair->msb));
    EXPECT_FALSE(pair->lsb.msb);
    EXPECT_TRUE(pair->msb.msb);
}

TEST(Allocator, PairAfterOddInterleavedSkipsPendingMsb)
{
    Allocator a(geom());
    const auto lone = a.nextPage(0); // LSB of WL0; MSB pending
    const auto pair = a.nextPair(0);
    ASSERT_TRUE(lone && pair);
    EXPECT_NE(pair->lsb.wordline, lone->wordline)
        << "a pair must claim a fresh wordline";
}

TEST(Allocator, LsbOnlyNeverTouchesMsb)
{
    const auto g = geom();
    Allocator a(g);
    for (std::uint32_t i = 0; i < g.wordlinesPerBlock; ++i) {
        const auto p = a.nextLsbOnly(0);
        ASSERT_TRUE(p);
        EXPECT_FALSE(p->msb);
        EXPECT_EQ(p->wordline, i % g.wordlinesPerBlock);
    }
}

TEST(Allocator, LsbOnlyAndInterleavedUseSeparateBlocks)
{
    Allocator a(geom());
    const auto interleaved = a.nextPage(0);
    const auto lsb_only = a.nextLsbOnly(0);
    ASSERT_TRUE(interleaved && lsb_only);
    EXPECT_NE(interleaved->block, lsb_only->block);
}

TEST(Allocator, ExhaustionReturnsNullopt)
{
    const auto g = geom();
    Allocator a(g);
    const std::uint64_t capacity =
        static_cast<std::uint64_t>(g.blocksPerPlane) * g.pagesPerBlock();
    for (std::uint64_t i = 0; i < capacity; ++i)
        ASSERT_TRUE(a.nextPage(0)) << "page " << i;
    EXPECT_FALSE(a.nextPage(0));
    EXPECT_EQ(a.freeBlocks(0), 0u);
}

TEST(Allocator, ErasedBlocksReturnToPool)
{
    const auto g = geom();
    Allocator a(g);
    const std::uint32_t before = a.freeBlocks(0);
    auto p = a.nextPage(0);
    ASSERT_TRUE(p);
    EXPECT_EQ(a.freeBlocks(0), before - 1);
    // Fill and release a different block id back.
    a.noteErased(0, g.blocksPerPlane - 1);
    EXPECT_EQ(a.freeBlocks(0), before);
}

TEST(Allocator, ActiveBlockIsReported)
{
    Allocator a(geom());
    const auto p = a.nextPage(3);
    ASSERT_TRUE(p);
    EXPECT_TRUE(a.isActiveBlock(3, p->block));
    EXPECT_FALSE(a.isActiveBlock(3, p->block + 1));
}

} // namespace
} // namespace parabit::ssd
