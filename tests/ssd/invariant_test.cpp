/**
 * @file
 * Whole-device invariant layer: clean audits over a mixed workload,
 * negative tests proving each corruption fires the matching violation
 * ID, the PARABIT_CHECK fatal path, and the cadence hook.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/bitvector.hpp"
#include "common/invariant.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "ssd/ssd.hpp"

namespace parabit::ssd {
namespace {

SsdConfig
auditedConfig()
{
    SsdConfig cfg = SsdConfig::tiny();
    cfg.media.enabled = true;
    cfg.media.scrubInterval = ticks::fromUs(2);
    cfg.media.scrubWordlinesPerPass = 64;
    cfg.rain.enabled = true;
    cfg.sched.traceEnabled = true;
    cfg.health.enabled = true;
    return cfg;
}

std::vector<BitVector>
seededPages(const SsdConfig &cfg, Lpn count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitVector> ref;
    for (Lpn l = 0; l < count; ++l) {
        BitVector d(cfg.geometry.pageBits());
        for (std::size_t i = 0; i < d.size(); ++i)
            d.set(i, rng.chance(0.5));
        ref.push_back(std::move(d));
    }
    return ref;
}

Tick
mixedWorkload(SsdDevice &dev, const std::vector<BitVector> &ref)
{
    std::vector<const BitVector *> batch;
    for (const BitVector &d : ref)
        batch.push_back(&d);
    Tick t = dev.writePages(0, batch, 0);
    // Overwrites invalidate pages; reads book sensing traffic; trim
    // drops a mapping — together the audits see every lifecycle edge.
    t = dev.writePages(0, {batch.begin(), batch.begin() + ref.size() / 2},
                       t);
    t = dev.readPages(0, ref.size(), nullptr, t);
    dev.ftl().trim(ref.size() - 1);
    return t;
}

TEST(Invariants, CleanAuditAfterMixedWorkload)
{
    SsdConfig cfg = auditedConfig();
    SsdDevice dev(cfg);
    mixedWorkload(dev, seededPages(cfg, 48, 0xBEEF));
    const InvariantReport r = dev.auditInvariants();
    EXPECT_TRUE(r.ok()) << r.describe();
    EXPECT_EQ(r.suitesRun, 5u); // ftl, sched, rain, media, health
    EXPECT_GT(r.checksRun, 0u);
}

TEST(Invariants, RegistryListsDeviceSuites)
{
    SsdConfig cfg = auditedConfig();
    SsdDevice dev(cfg);
    const std::vector<std::string> names = dev.invariantRegistry().names();
    ASSERT_EQ(names.size(), 5u);
    EXPECT_EQ(names[0], "ftl");
    EXPECT_EQ(names[1], "sched");
    EXPECT_EQ(names[2], "rain");
    EXPECT_EQ(names[3], "media");
    EXPECT_EQ(names[4], "health");

    // Without RAIN or health the suites are simply absent, not stubs.
    SsdConfig plain = SsdConfig::tiny();
    SsdDevice small(plain);
    EXPECT_EQ(small.invariantRegistry().names(),
              (std::vector<std::string>{"ftl", "sched", "media"}));
}

TEST(Invariants, FtlMapCorruptionFiresBijectionId)
{
    SsdConfig cfg = auditedConfig();
    cfg.invariants.auditInterval = 0; // corrupt state must survive to
    SsdDevice dev(cfg);               // the explicit audit below
    mixedWorkload(dev, seededPages(cfg, 32, 0xF71));
    ASSERT_TRUE(dev.ftl().debugCorruptMapping(3));
    InvariantReport r;
    ASSERT_TRUE(dev.invariantRegistry().runSuite("ftl", r));
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.has("ftl.map.bijection")) << r.describe();
}

TEST(Invariants, SchedBookingCorruptionFiresExclusivityId)
{
    SsdConfig cfg = auditedConfig();
    cfg.invariants.auditInterval = 0;
    SsdDevice dev(cfg);
    mixedWorkload(dev, seededPages(cfg, 16, 0x5C4E));
    ASSERT_TRUE(dev.scheduler().debugCorruptTraceForAudit());
    InvariantReport r;
    ASSERT_TRUE(dev.invariantRegistry().runSuite("sched", r));
    EXPECT_TRUE(r.has("sched.booking.exclusivity")) << r.describe();
}

TEST(Invariants, RainParityCorruptionFiresStripeXorId)
{
    SsdConfig cfg = auditedConfig();
    cfg.invariants.auditInterval = 0;
    SsdDevice dev(cfg);
    mixedWorkload(dev, seededPages(cfg, 16, 0x4A1));
    ASSERT_NE(dev.rain(), nullptr);
    ASSERT_TRUE(dev.rain()->debugCorruptParity());
    InvariantReport r;
    ASSERT_TRUE(dev.invariantRegistry().runSuite("rain", r));
    EXPECT_TRUE(r.has("rain.parity.stripe_xor")) << r.describe();
}

TEST(Invariants, HealthPressureCorruptionFiresBudgetRangeId)
{
    SsdConfig cfg = auditedConfig();
    cfg.invariants.auditInterval = 0;
    SsdDevice dev(cfg);
    mixedWorkload(dev, seededPages(cfg, 16, 0x8EA1));
    ASSERT_NE(dev.health(), nullptr);
    ASSERT_TRUE(dev.health()->debugCorruptPressure());
    InvariantReport r;
    ASSERT_TRUE(dev.invariantRegistry().runSuite("health", r));
    EXPECT_TRUE(r.has("health.budget.range")) << r.describe();
}

TEST(Invariants, HealthForgedPowerLostTransitionFiresPowerlostId)
{
    SsdConfig cfg = auditedConfig();
    cfg.invariants.auditInterval = 0;
    SsdDevice dev(cfg);
    mixedWorkload(dev, seededPages(cfg, 16, 0x8EA2));
    ASSERT_NE(dev.health(), nullptr);
    ASSERT_TRUE(dev.health()->debugForgeTransitionWhilePowerLost());
    InvariantReport r;
    ASSERT_TRUE(dev.invariantRegistry().runSuite("health", r));
    EXPECT_TRUE(r.has("health.transition.powerlost")) << r.describe();
}

TEST(Invariants, HealthReadOnlyAdmitCorruptionFiresWritesId)
{
    SsdConfig cfg = auditedConfig();
    cfg.invariants.auditInterval = 0;
    SsdDevice dev(cfg);
    mixedWorkload(dev, seededPages(cfg, 16, 0x8EA3));
    ASSERT_NE(dev.health(), nullptr);
    ASSERT_TRUE(dev.health()->debugCorruptReadOnlyAdmit());
    InvariantReport r;
    ASSERT_TRUE(dev.invariantRegistry().runSuite("health", r));
    EXPECT_TRUE(r.has("health.readonly.writes")) << r.describe();
}

TEST(Invariants, CorruptionSurfacesOnDeviceAudit)
{
    SsdConfig cfg = auditedConfig();
    cfg.invariants.auditInterval = 0;
    SsdDevice dev(cfg);
    mixedWorkload(dev, seededPages(cfg, 16, 0xD00D));
    ASSERT_TRUE(dev.ftl().debugCorruptMapping(1));
    // Capture the structured violation dump the device emits.
    std::vector<std::string> lines;
    LogSink prev = setLogSink(
        [&](LogLevel, const std::string &m) { lines.push_back(m); });
    const InvariantReport r = dev.auditInvariants();
    setLogSink(prev);
    EXPECT_FALSE(r.ok());
    ASSERT_FALSE(lines.empty());
    EXPECT_NE(lines.front().find("ftl.map.bijection"), std::string::npos)
        << lines.front();
}

TEST(Invariants, CadenceAuditPanicsOnCorruptState)
{
    EXPECT_DEATH(
        {
            SsdConfig cfg = auditedConfig();
            cfg.invariants.auditInterval = 1; // audit every drain
            SsdDevice dev(cfg);
            const auto ref = seededPages(cfg, 8, 0xDEAD);
            std::vector<const BitVector *> batch;
            for (const BitVector &d : ref)
                batch.push_back(&d);
            dev.writePages(0, batch, 0);
            dev.ftl().debugCorruptMapping(0);
            dev.readPages(0, 1, nullptr, ticks::fromUs(100));
        },
        "invariant audit failed");
}

TEST(Invariants, CheckMacroPanicsWithContext)
{
    BitVector v(8);
    EXPECT_DEATH((void)v.get(9), "BitVector::get");
}

} // namespace
} // namespace parabit::ssd
