/**
 * @file
 * Unit tests for the crash-consistency layer (SPOR): OOB metadata,
 * power-cut boundaries, torn-wordline handling with PLP restore,
 * write-ahead trim journaling, checkpoint-bounded recovery scans and
 * the NVMe Flush / shutdown-notification checkpoint path.
 *
 * The integration-level seed sweep lives in tests/integration/
 * spor_test.cpp; these tests pin down the individual mechanisms.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "parabit/device.hpp"
#include "parabit/host_interface.hpp"
#include "ssd/ssd.hpp"

namespace parabit::ssd {
namespace {

/** Recovery-enabled test device: tiny geometry widened to 16 blocks per
 *  plane (2 reserved for the log region) and 128 B pages so checkpoint
 *  images of a few hundred mappings fit in one ping-pong half. */
SsdConfig
recCfg(std::uint32_t ckpt_interval = 0)
{
    SsdConfig c = SsdConfig::tiny();
    c.geometry.blocksPerPlane = 16;
    c.geometry.pageBytes = 128;
    c.recovery.enabled = true;
    c.recovery.checkpointIntervalPrograms = ckpt_interval;
    return c;
}

/** Deterministic per-LPN page pattern (distinct across versions via
 *  @p version so overwrites are distinguishable). */
BitVector
pattern(std::size_t bits, Lpn lpn, std::uint64_t version = 0)
{
    BitVector v(bits, false);
    std::uint64_t s = (lpn + 1) * 0x9E3779B97F4A7C15ull + version * 0x85EBull;
    for (std::size_t i = 0; i < bits; ++i) {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        v.set(i, ((s >> 61) & 1) != 0);
    }
    return v;
}

const flash::PageOob *
oobAt(SsdDevice &dev, const flash::PhysPageAddr &a)
{
    const flash::ChipPageAddr ca{a.die, a.plane, a.block, a.wordline, a.msb};
    return dev.chipAt(a.channel, a.chip).pageOob(ca);
}

FaultSpec
powerCut(std::uint32_t onset, std::optional<bool> mid = std::nullopt)
{
    FaultSpec s;
    s.cls = FaultClass::kPowerLoss;
    s.onset = onset;
    s.cutMidProgram = mid;
    return s;
}

/** Write fresh LPNs starting at @p base until the armed cut fires;
 *  acked writes are recorded in @p acked.  Returns pages acked. */
std::size_t
writeUntilCut(SsdDevice &dev, Lpn base, std::map<Lpn, BitVector> &acked)
{
    const std::size_t bits = dev.geometry().pageBits();
    std::size_t n = 0;
    for (Lpn l = base; !dev.ftl().powerLost(); ++l) {
        std::vector<PhysOp> ops;
        const BitVector d = pattern(bits, l);
        if (dev.ftl().writePage(l, &d, ops)) {
            acked[l] = d;
            ++n;
        }
        if (l - base > 5000) {
            ADD_FAILURE() << "power cut never fired";
            break;
        }
    }
    return n;
}

TEST(Recovery, ReservedRegionMustBeEvenAndLeaveDataBlocks)
{
    SsdConfig c = recCfg();
    c.recovery.reservedBlocksPerPlane = 3;
    EXPECT_DEATH(SsdDevice dev(c), "reservedBlocksPerPlane");
    c.recovery.reservedBlocksPerPlane = 16;
    EXPECT_DEATH(SsdDevice dev(c), "reservedBlocksPerPlane");
}

TEST(Recovery, ReservedRegionShrinksLogicalCapacity)
{
    SsdConfig on = recCfg();
    SsdConfig off = recCfg();
    off.recovery.enabled = false;
    SsdDevice a(on);
    SsdDevice b(off);
    EXPECT_LT(a.ftl().logicalPages(), b.ftl().logicalPages());
}

TEST(Recovery, HostWritesCarryOobMetadata)
{
    SsdDevice dev(recCfg());
    const std::size_t bits = dev.geometry().pageBits();
    std::uint64_t prev_seq = 0;
    for (Lpn lpn = 10; lpn < 14; ++lpn) {
        std::vector<PhysOp> ops;
        const BitVector d = pattern(bits, lpn);
        ASSERT_TRUE(dev.ftl().writePage(lpn, &d, ops));
        const auto a = dev.ftl().lookup(lpn);
        ASSERT_TRUE(a.has_value());
        const flash::PageOob *oob = oobAt(dev, *a);
        ASSERT_NE(oob, nullptr);
        EXPECT_EQ(oob->lpn, lpn);
        EXPECT_EQ(oob->tag, static_cast<std::uint8_t>(OobTag::kHostData));
        EXPECT_FALSE(oob->scrambled);
        EXPECT_GT(oob->seq, prev_seq); // monotonic sequence stream
        prev_seq = oob->seq;
    }
}

TEST(Recovery, TrimIsWriteAheadJournaled)
{
    SsdDevice dev(recCfg());
    const std::size_t bits = dev.geometry().pageBits();
    const BitVector d = pattern(bits, 3);
    std::vector<PhysOp> ops;
    ASSERT_TRUE(dev.ftl().writePage(3, &d, ops));
    ASSERT_TRUE(dev.ftl().trim(3, &ops));
    EXPECT_FALSE(dev.ftl().lookup(3).has_value());
    EXPECT_EQ(dev.ftl().journalRecordsWritten(), 1u);
    ASSERT_EQ(dev.ftl().durableLog().records.size(), 1u);
    const JournalRecord &r = dev.ftl().durableLog().records.front();
    EXPECT_EQ(r.kind, JournalRecord::Kind::kTrim);
    EXPECT_EQ(r.lpn, 3u);
    EXPECT_GT(r.seq, 0u);
}

TEST(Recovery, MappingSurvivesPowerCutViaFullOobScan)
{
    SsdDevice dev(recCfg());
    const std::size_t bits = dev.geometry().pageBits();
    std::map<Lpn, BitVector> acked;
    for (Lpn l = 0; l < 24; ++l) {
        std::vector<PhysOp> ops;
        const BitVector d = pattern(bits, l);
        ASSERT_TRUE(dev.ftl().writePage(l, &d, ops));
        acked[l] = d;
    }
    // Overwrite a few so stale copies exist on flash.
    for (Lpn l = 0; l < 6; ++l) {
        std::vector<PhysOp> ops;
        const BitVector d = pattern(bits, l, /*version=*/1);
        ASSERT_TRUE(dev.ftl().writePage(l, &d, ops));
        acked[l] = d;
    }
    dev.injectFault(powerCut(/*onset=*/7, /*mid=*/false));
    writeUntilCut(dev, 100, acked);
    EXPECT_TRUE(dev.ftl().powerLost());

    const RecoveryReport rep = dev.powerCycle();
    EXPECT_TRUE(rep.recovered);
    EXPECT_FALSE(rep.usedCheckpoint); // no checkpoint was ever taken
    EXPECT_GE(rep.mappingsRebuilt, acked.size());
    EXPECT_GT(rep.pagesScanned, 0u);
    EXPECT_GT(rep.oobCandidates, 0u);
    EXPECT_GT(rep.scanTime, 0);
    for (const auto &[lpn, d] : acked) {
        ASSERT_TRUE(dev.ftl().lookup(lpn).has_value()) << "LPN " << lpn;
        std::vector<PhysOp> ops;
        EXPECT_EQ(dev.ftl().readPage(lpn, ops), d) << "LPN " << lpn;
    }

    // The sequence stream continues past everything recovered.
    std::vector<PhysOp> ops;
    const BitVector d = pattern(bits, 500);
    ASSERT_TRUE(dev.ftl().writePage(500, &d, ops));
    const flash::PageOob *oob = oobAt(dev, *dev.ftl().lookup(500));
    ASSERT_NE(oob, nullptr);
    EXPECT_GE(oob->seq, rep.nextSeq);
}

TEST(Recovery, ScrambledPagesRecoverBitExact)
{
    SsdConfig c = recCfg();
    c.scrambleHostData = true;
    SsdDevice dev(c);
    const std::size_t bits = dev.geometry().pageBits();
    std::map<Lpn, BitVector> acked;
    for (Lpn l = 0; l < 12; ++l) {
        std::vector<PhysOp> ops;
        const BitVector d = pattern(bits, l);
        ASSERT_TRUE(dev.ftl().writePage(l, &d, ops));
        acked[l] = d;
    }
    dev.injectFault(powerCut(/*onset=*/3, /*mid=*/false));
    writeUntilCut(dev, 100, acked);
    const RecoveryReport rep = dev.powerCycle();
    EXPECT_TRUE(rep.recovered);
    for (const auto &[lpn, d] : acked) {
        ASSERT_TRUE(dev.ftl().lookup(lpn).has_value()) << "LPN " << lpn;
        std::vector<PhysOp> ops;
        EXPECT_EQ(dev.ftl().readPage(lpn, ops), d) << "LPN " << lpn;
    }
}

TEST(Recovery, TornMsbWordlineDetectedAndPairedLsbRestoredFromPlp)
{
    SsdDevice dev(recCfg());
    const std::size_t bits = dev.geometry().pageBits();
    const std::uint32_t planes = dev.geometry().planesTotal();
    // One LSB write per plane: every plane cursor now sits on the MSB
    // phase of a wordline holding acknowledged data.
    std::map<Lpn, BitVector> acked;
    std::map<Lpn, flash::PhysPageAddr> at;
    for (Lpn l = 0; l < planes; ++l) {
        std::vector<PhysOp> ops;
        const BitVector d = pattern(bits, l);
        ASSERT_TRUE(dev.ftl().writePage(l, &d, ops));
        acked[l] = d;
        at[l] = *dev.ftl().lookup(l);
        EXPECT_FALSE(at[l].msb);
    }
    // The very next program is an interleaved MSB — cut mid-tPROG.
    dev.injectFault(powerCut(/*onset=*/0, /*mid=*/true));
    std::vector<PhysOp> ops;
    const BitVector d = pattern(bits, planes);
    EXPECT_FALSE(dev.ftl().writePage(planes, &d, ops));
    EXPECT_TRUE(dev.ftl().powerLost());

    const RecoveryReport rep = dev.powerCycle();
    EXPECT_EQ(rep.tornWordlines, 1u);
    EXPECT_EQ(rep.plpRestored, 1u);
    // Every acknowledged page survived; the one whose wordline tore was
    // re-placed from the capacitor-flushed buffer.
    std::size_t moved = 0;
    for (const auto &[lpn, data] : acked) {
        ASSERT_TRUE(dev.ftl().lookup(lpn).has_value()) << "LPN " << lpn;
        std::vector<PhysOp> r;
        EXPECT_EQ(dev.ftl().readPage(lpn, r), data) << "LPN " << lpn;
        if (!(*dev.ftl().lookup(lpn) == at[lpn]))
            ++moved;
    }
    EXPECT_EQ(moved, 1u);
    // The torn write itself was never acknowledged and must stay unmapped.
    EXPECT_FALSE(dev.ftl().lookup(planes).has_value());
}

TEST(Recovery, TrimmedLpnStaysUnmappedThroughGcAndPowerCut)
{
    SsdDevice dev(recCfg());
    const std::size_t bits = dev.geometry().pageBits();
    std::map<Lpn, BitVector> acked;
    // Hammer a small working set until GC has run: stale copies of the
    // victims are spread over many blocks and GC's erase journal keeps
    // the recovery scan set honest.
    std::uint64_t version = 0;
    while (dev.ftl().gcRuns() == 0) {
        ++version;
        for (Lpn l = 0; l < 10; ++l) {
            std::vector<PhysOp> ops;
            const BitVector d = pattern(bits, l, version);
            ASSERT_TRUE(dev.ftl().writePage(l, &d, ops));
            acked[l] = d;
        }
        ASSERT_LT(version, 1000u) << "GC never triggered";
    }
    std::vector<PhysOp> ops;
    ASSERT_TRUE(dev.ftl().trim(5, &ops)); // acknowledged trim
    acked.erase(5);

    dev.injectFault(powerCut(/*onset=*/6, /*mid=*/false));
    writeUntilCut(dev, 200, acked);
    const RecoveryReport rep = dev.powerCycle();
    EXPECT_TRUE(rep.recovered);
    EXPECT_FALSE(dev.ftl().lookup(5).has_value())
        << "trimmed LPN resurrected by recovery";
    for (const auto &[lpn, d] : acked) {
        ASSERT_TRUE(dev.ftl().lookup(lpn).has_value()) << "LPN " << lpn;
        std::vector<PhysOp> r;
        EXPECT_EQ(dev.ftl().readPage(lpn, r), d) << "LPN " << lpn;
    }
}

TEST(Recovery, CheckpointBoundsTheRecoveryScan)
{
    auto run = [](std::uint32_t interval) {
        SsdDevice dev(recCfg(interval));
        const std::size_t bits = dev.geometry().pageBits();
        std::map<Lpn, BitVector> acked;
        // Enough distinct pages to seal a couple of blocks per plane —
        // sealed blocks are exactly what the checkpoint's bounded scan
        // set excludes.
        for (Lpn l = 0; l < 320; ++l) {
            std::vector<PhysOp> ops;
            const BitVector d = pattern(bits, l);
            EXPECT_TRUE(dev.ftl().writePage(l, &d, ops));
            acked[l] = d;
        }
        dev.injectFault(powerCut(/*onset=*/2, /*mid=*/false));
        writeUntilCut(dev, 1000, acked);
        const RecoveryReport rep = dev.powerCycle();
        EXPECT_TRUE(rep.recovered);
        for (const auto &[lpn, d] : acked) {
            EXPECT_TRUE(dev.ftl().lookup(lpn).has_value()) << "LPN " << lpn;
            std::vector<PhysOp> r;
            EXPECT_EQ(dev.ftl().readPage(lpn, r), d) << "LPN " << lpn;
        }
        return rep;
    };
    const RecoveryReport full = run(/*interval=*/0);
    const RecoveryReport bounded = run(/*interval=*/16);
    EXPECT_FALSE(full.usedCheckpoint);
    EXPECT_TRUE(bounded.usedCheckpoint);
    EXPECT_GT(bounded.checkpointPagesRead, 0u);
    // The checkpoint excludes blocks sealed before it from the scan.
    EXPECT_LT(bounded.pagesScanned, full.pagesScanned);
    EXPECT_LT(bounded.blocksScanned, full.blocksScanned);
}

TEST(Recovery, ChainedMsbDropBackupProtectsTheSourceOperand)
{
    SsdDevice dev(recCfg());
    const std::size_t bits = dev.geometry().pageBits();
    const BitVector da = pattern(bits, 40);
    const BitVector db = pattern(bits, 41);
    std::vector<PhysOp> ops;
    const auto lsb = dev.ftl().writeLsbOnly(40, &da, ops);
    ASSERT_TRUE(lsb.has_value());
    // Boundaries: read gate, backup program, then the MSB drop — which
    // tears the wordline holding the acknowledged source operand.
    dev.injectFault(powerCut(/*onset=*/2, /*mid=*/true));
    EXPECT_FALSE(dev.ftl().writeIntoFreeMsb(41, *lsb, &db, ops));
    EXPECT_TRUE(dev.ftl().powerLost());

    const RecoveryReport rep = dev.powerCycle();
    EXPECT_EQ(rep.tornWordlines, 1u);
    // The source operand survives via the backup copy...
    ASSERT_TRUE(dev.ftl().lookup(40).has_value());
    EXPECT_FALSE(*dev.ftl().lookup(40) == *lsb);
    std::vector<PhysOp> r;
    EXPECT_EQ(dev.ftl().readPage(40, r), da);
    // ...and the unacknowledged drop is fully rolled back.
    EXPECT_FALSE(dev.ftl().lookup(41).has_value());
}

TEST(Recovery, CompletedMsbDropSurvivesALaterCut)
{
    SsdDevice dev(recCfg());
    const std::size_t bits = dev.geometry().pageBits();
    const BitVector da = pattern(bits, 40);
    const BitVector db = pattern(bits, 41);
    std::vector<PhysOp> ops;
    const auto lsb = dev.ftl().writeLsbOnly(40, &da, ops);
    ASSERT_TRUE(lsb.has_value());
    ASSERT_TRUE(dev.ftl().writeIntoFreeMsb(41, *lsb, &db, ops));
    dev.injectFault(powerCut(/*onset=*/0, /*mid=*/false));
    std::map<Lpn, BitVector> sink;
    writeUntilCut(dev, 100, sink);

    const RecoveryReport rep = dev.powerCycle();
    EXPECT_TRUE(rep.recovered);
    ASSERT_TRUE(dev.ftl().lookup(40).has_value());
    ASSERT_TRUE(dev.ftl().lookup(41).has_value());
    EXPECT_TRUE(dev.ftl().lookup(41)->msb);
    std::vector<PhysOp> r;
    EXPECT_EQ(dev.ftl().readPage(40, r), da);
    EXPECT_EQ(dev.ftl().readPage(41, r), db);
}

TEST(Recovery, DisabledRecoveryLosesMappingButDeviceStaysUsable)
{
    SsdConfig c = recCfg();
    c.recovery.enabled = false;
    SsdDevice dev(c);
    const std::size_t bits = dev.geometry().pageBits();
    const BitVector d = pattern(bits, 7);
    std::vector<PhysOp> ops;
    ASSERT_TRUE(dev.ftl().writePage(7, &d, ops));
    dev.injectFault(powerCut(/*onset=*/0, /*mid=*/false));
    std::map<Lpn, BitVector> sink;
    writeUntilCut(dev, 100, sink);

    const RecoveryReport rep = dev.powerCycle();
    EXPECT_FALSE(rep.recovered);
    EXPECT_FALSE(dev.ftl().lookup(7).has_value()); // mapping gone
    const BitVector d2 = pattern(bits, 8);
    ASSERT_TRUE(dev.ftl().writePage(8, &d2, ops)); // but writes work
    std::vector<PhysOp> r;
    EXPECT_EQ(dev.ftl().readPage(8, r), d2);
}

TEST(Recovery, CleanPowerCycleRecoversWithoutACut)
{
    SsdDevice dev(recCfg(/*ckpt_interval=*/8));
    const std::size_t bits = dev.geometry().pageBits();
    std::map<Lpn, BitVector> acked;
    for (Lpn l = 0; l < 20; ++l) {
        std::vector<PhysOp> ops;
        const BitVector d = pattern(bits, l);
        ASSERT_TRUE(dev.ftl().writePage(l, &d, ops));
        acked[l] = d;
    }
    const RecoveryReport rep = dev.powerCycle(); // no fault armed
    EXPECT_TRUE(rep.recovered);
    for (const auto &[lpn, d] : acked) {
        ASSERT_TRUE(dev.ftl().lookup(lpn).has_value()) << "LPN " << lpn;
        std::vector<PhysOp> r;
        EXPECT_EQ(dev.ftl().readPage(lpn, r), d) << "LPN " << lpn;
    }
}

TEST(Recovery, FlushAndShutdownForceCheckpoints)
{
    core::ParaBitDevice dev(recCfg());
    const std::size_t bits = dev.ssd().geometry().pageBits();
    dev.writeData(0, {pattern(bits, 0), pattern(bits, 1)});
    EXPECT_EQ(dev.ssd().ftl().checkpointsTaken(), 0u);

    EXPECT_TRUE(dev.flush()); // NVMe Flush semantics
    EXPECT_EQ(dev.ssd().ftl().checkpointsTaken(), 1u);
    ASSERT_TRUE(dev.ssd().ftl().durableLog().checkpoint.has_value());
    EXPECT_EQ(dev.ssd().ftl().durableLog().checkpoint->map.size(), 2u);

    // Flush over the NVMe queue pair path.
    core::HostInterface host(dev, 1, 8);
    ASSERT_TRUE(host.submitFlush(0).has_value());
    host.pump();
    const auto cqe = host.reap(0);
    ASSERT_TRUE(cqe.has_value());
    EXPECT_EQ(cqe->status, 0u);
    EXPECT_EQ(dev.ssd().ftl().checkpointsTaken(), 2u);

    // CC.SHN shutdown notification: one more checkpoint.
    EXPECT_TRUE(host.shutdownNotify());
    EXPECT_EQ(dev.ssd().ftl().checkpointsTaken(), 3u);
}

TEST(Recovery, FlushIsANoOpWhenRecoveryDisabled)
{
    core::ParaBitDevice dev(SsdConfig::tiny());
    EXPECT_TRUE(dev.flush());
    EXPECT_TRUE(dev.shutdownNotify());
    EXPECT_EQ(dev.ssd().ftl().checkpointsTaken(), 0u);
}

} // namespace
} // namespace parabit::ssd
