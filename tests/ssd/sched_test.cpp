/**
 * @file
 * Transaction-scheduler behaviour: policy semantics (FCFS head-of-line
 * vs out-of-order independence vs read priority), suspend-resume
 * arithmetic and its bounds, multi-plane batching, channel command
 * modelling, and batch bookkeeping edges.
 *
 * Durations are hand-picked round numbers set directly on the
 * DeviceTransaction, so every expected tick below is derivable by eye.
 */

#include <gtest/gtest.h>

#include <vector>

#include "ssd/sched/scheduler.hpp"
#include "ssd/ssd.hpp"

namespace parabit::ssd::sched {
namespace {

flash::PhysPageAddr
planeAddr(std::uint32_t channel, std::uint32_t chip, std::uint32_t plane)
{
    flash::PhysPageAddr a;
    a.channel = channel;
    a.chip = chip;
    a.plane = plane;
    return a;
}

DeviceTransaction
readTx(const flash::PhysPageAddr &a, Tick ready, Tick array, Tick xferOut)
{
    DeviceTransaction tx;
    tx.cls = TxClass::kRead;
    tx.addr = a;
    tx.readyAt = ready;
    tx.arrayTicks = array;
    tx.xferOutTicks = xferOut;
    return tx;
}

DeviceTransaction
programTx(const flash::PhysPageAddr &a, Tick ready, Tick array)
{
    DeviceTransaction tx;
    tx.cls = TxClass::kProgram;
    tx.addr = a;
    tx.readyAt = ready;
    tx.arrayTicks = array;
    return tx;
}

/** Timing with easy suspend/resume arithmetic. */
flash::FlashTiming
testTiming()
{
    flash::FlashTiming t;
    t.tSuspend = 7;
    t.tResume = 9;
    return t;
}

TEST(SchedPolicy, FcfsWaitsForHeadOfLine)
{
    SchedConfig cfg; // FCFS
    TransactionScheduler s(flash::FlashGeometry::tiny(), testTiming(), cfg);
    // tx0 (submitted first) is not ready until 100; its channel
    // transfer heads the channel queue, so tx1's earlier transfer must
    // wait behind it under FCFS.
    const auto id0 = s.submit(readTx(planeAddr(0, 0, 0), 100, 50, 30));
    const auto id1 = s.submit(readTx(planeAddr(0, 1, 0), 0, 10, 30));
    s.drain();
    EXPECT_EQ(s.completionOf(id0), 180u); // array 100-150, xfer 150-180
    // Array done at 10, but the channel head (tx0) books 150-180 first.
    EXPECT_EQ(s.completionOf(id1), 210u);
}

TEST(SchedPolicy, OutOfOrderProceedsPastBlockedHead)
{
    SchedConfig cfg;
    cfg.policy = SchedPolicyKind::kOutOfOrderDieFirst;
    TransactionScheduler s(flash::FlashGeometry::tiny(), testTiming(), cfg);
    const auto id0 = s.submit(readTx(planeAddr(0, 0, 0), 100, 50, 30));
    const auto id1 = s.submit(readTx(planeAddr(0, 1, 0), 0, 10, 30));
    s.drain();
    // tx1's transfer no longer waits for the not-yet-ready head.
    EXPECT_EQ(s.completionOf(id1), 40u); // array 0-10, xfer 10-40
    EXPECT_EQ(s.completionOf(id0), 180u);
}

TEST(SchedPolicy, OutOfOrderNeverSuspends)
{
    SchedConfig cfg;
    cfg.policy = SchedPolicyKind::kOutOfOrderDieFirst;
    TransactionScheduler s(flash::FlashGeometry::tiny(), testTiming(), cfg);
    s.submit(programTx(planeAddr(0, 0, 0), 0, 100));
    const auto rd = s.submit(readTx(planeAddr(0, 0, 0), 40, 10, 0));
    s.drain();
    EXPECT_EQ(s.stats().suspends, 0u);
    EXPECT_EQ(s.completionOf(rd), 110u); // waits out the program
}

TEST(SchedReadPriority, SuspendResumeArithmetic)
{
    SchedConfig cfg;
    cfg.policy = SchedPolicyKind::kReadPriority;
    TransactionScheduler s(flash::FlashGeometry::tiny(), testTiming(), cfg);
    const auto prog = s.submit(programTx(planeAddr(0, 0, 0), 0, 100));
    const auto rd = s.submit(readTx(planeAddr(0, 0, 0), 40, 10, 0));
    s.drain();
    // Program runs 0-40, suspends (7): plane busy until 47.  Read runs
    // 47-57.  Resume overhead (9) 57-66, remainder 66-126.
    EXPECT_EQ(s.completionOf(rd), 57u);
    EXPECT_EQ(s.completionOf(prog), 126u);
    EXPECT_EQ(s.stats().suspends, 1u);

    // Suspend-resume conserves total array time.
    for (const TxRecord &r : s.records())
        EXPECT_EQ(r.arrayExecuted, r.arrayTicks) << "tx " << r.id;
    // Plane busy time: [0,47) + [47,57) + [57,126).
    EXPECT_EQ(s.stats().dieBusy.at(0), 126u);
}

TEST(SchedReadPriority, SuspendBudgetIsHonoured)
{
    SchedConfig cfg;
    cfg.policy = SchedPolicyKind::kReadPriority;
    cfg.maxSuspendsPerOp = 1;
    TransactionScheduler s(flash::FlashGeometry::tiny(), testTiming(), cfg);
    const auto prog = s.submit(programTx(planeAddr(0, 0, 0), 0, 100));
    const auto r1 = s.submit(readTx(planeAddr(0, 0, 0), 40, 10, 0));
    const auto r2 = s.submit(readTx(planeAddr(0, 0, 0), 60, 10, 0));
    s.drain();
    EXPECT_EQ(s.completionOf(r1), 57u);
    // Budget spent: the second read cannot suspend the resumed
    // remainder (66-126) and waits it out.
    EXPECT_EQ(s.completionOf(prog), 126u);
    EXPECT_EQ(s.completionOf(r2), 136u);
    EXPECT_EQ(s.stats().suspends, 1u);
}

TEST(SchedReadPriority, ParkedDeadlineOutranksFurtherReads)
{
    SchedConfig cfg;
    cfg.policy = SchedPolicyKind::kReadPriority;
    cfg.maxSuspendedTicks = 20; // forceAt = first suspension + 20
    TransactionScheduler s(flash::FlashGeometry::tiny(), testTiming(), cfg);
    const auto prog = s.submit(programTx(planeAddr(0, 0, 0), 0, 100));
    const auto ra = s.submit(readTx(planeAddr(0, 0, 0), 10, 10, 0));
    const auto rb = s.submit(readTx(planeAddr(0, 0, 0), 12, 10, 0));
    const auto rc = s.submit(readTx(planeAddr(0, 0, 0), 12, 10, 0));
    s.drain();
    // Suspend at 10 (forceAt 30), read A 17-27.  At 27 the parked
    // remainder is not yet forced, so read B runs 27-37.  At 37 the
    // deadline has passed: the remainder resumes (37 + 9 resume + 90)
    // ahead of read C even though suspend budget remains.
    EXPECT_EQ(s.completionOf(ra), 27u);
    EXPECT_EQ(s.completionOf(rb), 37u);
    EXPECT_EQ(s.completionOf(prog), 136u);
    EXPECT_EQ(s.completionOf(rc), 146u);
    EXPECT_EQ(s.stats().suspends, 1u);
}

TEST(SchedReadPriority, ReducesReadLatencyUnderParaBitInterference)
{
    // The acceptance-criteria shape in miniature: a read arriving
    // behind a long co-plane program completes sooner under
    // read-priority than under FCFS.
    const auto runWith = [](SchedPolicyKind p) {
        SchedConfig cfg;
        cfg.policy = p;
        TransactionScheduler s(flash::FlashGeometry::tiny(), testTiming(),
                               cfg);
        s.submit(programTx(planeAddr(0, 0, 0), 0, 1000));
        const auto rd = s.submit(readTx(planeAddr(0, 0, 0), 100, 25, 0));
        s.drain();
        return s.completionOf(rd) - 100; // read latency
    };
    const Tick fcfs = runWith(SchedPolicyKind::kFcfs);
    const Tick rp = runWith(SchedPolicyKind::kReadPriority);
    EXPECT_LT(rp, fcfs);
    EXPECT_EQ(rp, 32u);   // suspend at 100, read 107-132
    EXPECT_EQ(fcfs, 925u); // waits for the program to finish
}

TEST(SchedBatching, CoalescesSameDieArrayJobs)
{
    SsdConfig cfg = SsdConfig::tiny();
    cfg.storeData = false;
    cfg.sched.multiPlaneBatch = true;
    SsdDevice dev(cfg);
    const flash::FlashTiming &t = cfg.timing;

    std::vector<ArrayJob> jobs;
    ArrayJob j0;
    j0.loc = planeAddr(0, 0, 0);
    j0.sroCount = 2;
    ArrayJob j1;
    j1.loc = planeAddr(0, 0, 1); // other plane, same die
    j1.sroCount = 4;
    jobs.push_back(j0);
    jobs.push_back(j1);
    const Tick done = dev.scheduleArrayJobs(jobs, 0);
    // Lockstep: both planes sense for the longest member (4 SROs),
    // sharing one command issue.
    EXPECT_EQ(done, t.tCmdOverhead + t.senseTime(4));
    const SchedStats s = dev.scheduler().stats();
    EXPECT_EQ(s.batches, 1u);
    EXPECT_EQ(s.batchedJobs, 2u);
    // Both planes booked the padded array time.
    EXPECT_EQ(s.dieBusy.at(0), t.senseTime(4));
    EXPECT_EQ(s.dieBusy.at(1), t.senseTime(4));
}

TEST(SchedBatching, DifferentDiesDoNotCoalesce)
{
    SsdConfig cfg = SsdConfig::tiny();
    cfg.storeData = false;
    cfg.sched.multiPlaneBatch = true;
    SsdDevice dev(cfg);
    std::vector<ArrayJob> jobs;
    ArrayJob j0;
    j0.loc = planeAddr(0, 0, 0);
    j0.sroCount = 2;
    ArrayJob j1;
    j1.loc = planeAddr(0, 1, 0); // different chip
    j1.sroCount = 4;
    jobs.push_back(j0);
    jobs.push_back(j1);
    dev.scheduleArrayJobs(jobs, 0);
    EXPECT_EQ(dev.scheduler().stats().batches, 0u);
}

TEST(SchedCmdOnChannel, CommandIssueBooksChannelTimeForEveryKind)
{
    // Legacy model: the command byte of kPageRead/kBlockErase consumes
    // no channel time.  With cmdOnChannel every kind books tCmdOverhead
    // on the channel; isolated-op completion times are unchanged.
    SsdConfig base = SsdConfig::tiny();
    base.storeData = false;
    SsdConfig withCmd = base;
    withCmd.sched.cmdOnChannel = true;

    SsdDevice legacy(base);
    SsdDevice modeled(withCmd);
    const flash::FlashTiming &t = base.timing;

    std::vector<PhysOp> ops(3);
    ops[0].kind = PhysOp::Kind::kPageRead;
    ops[0].addr = planeAddr(0, 0, 0);
    ops[1].kind = PhysOp::Kind::kPageProgram;
    ops[1].addr = planeAddr(0, 0, 1);
    ops[2].kind = PhysOp::Kind::kBlockErase;
    ops[2].addr = planeAddr(0, 1, 0);

    // Spread the ops out so they do not contend; completion of each op
    // is then the intrinsic latency in both models.
    Tick tl = 0, tm = 0;
    for (const PhysOp &op : ops) {
        const Tick at = std::max(tl, tm) + t.tErase;
        tl = legacy.scheduleOps({op}, at);
        tm = modeled.scheduleOps({op}, at);
        EXPECT_EQ(tl, tm);
    }

    const SchedStats sl = legacy.scheduler().stats();
    const SchedStats sm = modeled.scheduler().stats();
    Tick chLegacy = 0, chModeled = 0;
    for (std::size_t c = 0; c < sl.channelBusy.size(); ++c) {
        chLegacy += sl.channelBusy[c];
        chModeled += sm.channelBusy[c];
    }
    // Three commands' worth of extra channel occupancy, die time equal.
    EXPECT_EQ(chModeled, chLegacy + 3 * t.tCmdOverhead);
    Tick dieLegacy = 0, dieModeled = 0;
    for (std::size_t p = 0; p < sl.dieBusy.size(); ++p) {
        dieLegacy += sl.dieBusy[p];
        dieModeled += sm.dieBusy[p];
    }
    EXPECT_EQ(dieModeled, dieLegacy);
}

TEST(SchedBookkeeping, GroupAndZeroPhaseEdges)
{
    SchedConfig cfg;
    TransactionScheduler s(flash::FlashGeometry::tiny(), testTiming(), cfg);

    // Empty group falls back.
    EXPECT_EQ(s.groupCompletion(TxGroup{}, 42), 42u);

    // A transaction with no nonzero phases completes at readyAt plus
    // its command delay without touching any resource.
    DeviceTransaction tx;
    tx.cls = TxClass::kParaBit;
    tx.addr = planeAddr(0, 0, 0);
    tx.readyAt = 10;
    tx.cmdTicks = 5;
    const auto id = s.submit(tx);
    s.drain();
    EXPECT_EQ(s.completionOf(id), 15u);
    const SchedStats st = s.stats();
    for (Tick b : st.dieBusy)
        EXPECT_EQ(b, 0u);
    EXPECT_EQ(st.submitted, 1u);
    EXPECT_EQ(st.completed, 1u);
}

TEST(SchedBookkeeping, LatencySamplingPerClass)
{
    SchedConfig cfg;
    cfg.latencySampling = true;
    TransactionScheduler s(flash::FlashGeometry::tiny(), testTiming(), cfg);
    s.submit(readTx(planeAddr(0, 0, 0), 0, 10, 0));
    s.submit(readTx(planeAddr(0, 0, 0), 0, 10, 0));
    s.submit(programTx(planeAddr(0, 0, 1), 0, 100));
    s.drain();
    const SampleSeries &rd = s.latencySeries(TxClass::kRead);
    EXPECT_EQ(rd.count(), 2u);
    EXPECT_EQ(rd.percentile(50.0), 10.0);
    EXPECT_EQ(rd.percentile(99.0), 20.0); // second read queues behind
    EXPECT_EQ(s.latencySeries(TxClass::kProgram).count(), 1u);
    EXPECT_EQ(s.latencySeries(TxClass::kErase).count(), 0u);
}

TEST(SchedTrace, PhaseOrderAndNonOverlapObservable)
{
    SchedConfig cfg;
    cfg.traceEnabled = true;
    TransactionScheduler s(flash::FlashGeometry::tiny(), testTiming(), cfg);
    const auto id = s.submit(readTx(planeAddr(0, 0, 0), 0, 50, 30));
    s.drain();
    const auto &tr = s.trace();
    ASSERT_EQ(tr.size(), 2u);
    EXPECT_EQ(tr[0].txId, id);
    EXPECT_EQ(tr[0].kind, PhaseKind::kArray);
    EXPECT_EQ(tr[1].kind, PhaseKind::kXferOut);
    EXPECT_LE(tr[0].end, tr[1].start);
}

DeviceTransaction
scrubTx(const flash::PhysPageAddr &a, Tick ready, Tick array)
{
    DeviceTransaction tx;
    tx.cls = TxClass::kScrub;
    tx.addr = a;
    tx.readyAt = ready;
    tx.arrayTicks = array;
    return tx;
}

TEST(SchedScrub, ClassNameAndSuspendability)
{
    EXPECT_STREQ(txClassName(TxClass::kScrub), "scrub");
}

TEST(SchedScrub, RunsAfterEveryForegroundClass)
{
    SchedConfig cfg;
    cfg.policy = SchedPolicyKind::kReadPriority;
    TransactionScheduler s(flash::FlashGeometry::tiny(), testTiming(), cfg);
    // A running read holds the plane 0-50 (reads are never preempted),
    // so the next three arbitrate when it frees.  The scan was queued
    // FIRST (oldest seq) yet both the read and the program beat it.
    s.submit(readTx(planeAddr(0, 0, 0), 0, 50, 0));
    const auto sc = s.submit(scrubTx(planeAddr(0, 0, 0), 0, 10));
    const auto pr = s.submit(programTx(planeAddr(0, 0, 0), 0, 100));
    const auto rd = s.submit(readTx(planeAddr(0, 0, 0), 0, 10, 0));
    s.drain();
    EXPECT_EQ(s.completionOf(rd), 60u);
    EXPECT_EQ(s.completionOf(pr), 160u);
    EXPECT_EQ(s.completionOf(sc), 170u); // background: strictly last
}

TEST(SchedScrub, AntiStarvationBoundPromotesDeferredScan)
{
    SchedConfig cfg;
    cfg.policy = SchedPolicyKind::kReadPriority;
    cfg.scrubMaxDeferredTicks = 50;
    TransactionScheduler s(flash::FlashGeometry::tiny(), testTiming(), cfg);
    // The blocker read holds the plane 0-100.  By then the scan has
    // been deferred past the 50-tick bound, left the background bucket
    // and — as the oldest entry — beats the program to the plane.
    s.submit(readTx(planeAddr(0, 0, 0), 0, 100, 0));
    const auto sc = s.submit(scrubTx(planeAddr(0, 0, 0), 0, 10));
    const auto pr = s.submit(programTx(planeAddr(0, 0, 0), 0, 100));
    s.drain();
    EXPECT_EQ(s.completionOf(sc), 110u); // promoted ahead of the program
    EXPECT_EQ(s.completionOf(pr), 210u);
}

TEST(SchedScrub, WithoutBoundHostTrafficKeepsWinning)
{
    SchedConfig cfg;
    cfg.policy = SchedPolicyKind::kReadPriority;
    cfg.scrubMaxDeferredTicks = ticks::fromMs(1); // far beyond this run
    TransactionScheduler s(flash::FlashGeometry::tiny(), testTiming(), cfg);
    s.submit(readTx(planeAddr(0, 0, 0), 0, 100, 0));
    const auto sc = s.submit(scrubTx(planeAddr(0, 0, 0), 0, 10));
    const auto pr = s.submit(programTx(planeAddr(0, 0, 0), 0, 100));
    s.drain();
    EXPECT_EQ(s.completionOf(pr), 200u);
    EXPECT_EQ(s.completionOf(sc), 210u); // still dead last
}

TEST(SchedScrub, ArrivingReadSuspendsRunningScan)
{
    SchedConfig cfg;
    cfg.policy = SchedPolicyKind::kReadPriority;
    TransactionScheduler s(flash::FlashGeometry::tiny(), testTiming(), cfg);
    // Same arithmetic as SuspendResumeArithmetic, with the scan in the
    // program's role: scan 0-40, suspend (7) to 47, read 47-57, resume
    // (9) to 66, remainder 66-126.
    const auto sc = s.submit(scrubTx(planeAddr(0, 0, 0), 0, 100));
    const auto rd = s.submit(readTx(planeAddr(0, 0, 0), 40, 10, 0));
    s.drain();
    EXPECT_EQ(s.completionOf(rd), 57u);
    EXPECT_EQ(s.completionOf(sc), 126u);
    EXPECT_EQ(s.stats().suspends, 1u);
}

} // namespace
} // namespace parabit::ssd::sched
