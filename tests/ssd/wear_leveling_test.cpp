/**
 * @file
 * Static wear-leveling tests: cold data must not pin young blocks
 * forever — under a skewed hot/cold workload, the erase-count spread
 * stays bounded when wear leveling is on and grows when it is off.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ssd/ftl.hpp"

namespace parabit::ssd {
namespace {

struct Rig
{
    explicit Rig(std::uint32_t wl_threshold)
    {
        cfg = SsdConfig::tiny();
        // One plane keeps all churn in a single wear domain.
        cfg.geometry.channels = 1;
        cfg.geometry.chipsPerChannel = 1;
        cfg.geometry.planesPerDie = 1;
        cfg.geometry.blocksPerPlane = 16;
        cfg.wearLevelThreshold = wl_threshold;
        for (std::uint32_t i = 0; i < cfg.geometry.chips(); ++i)
            chips.emplace_back(cfg.geometry, cfg.storeData, cfg.errors, i);
        ftl = std::make_unique<Ftl>(cfg, chips);
    }

    /** Fill ~half the plane with cold data, then churn a hot set. */
    void
    run(int rounds)
    {
        std::vector<PhysOp> ops;
        const std::uint64_t cold_pages =
            cfg.geometry.pagesPerBlock() * 6; // ~6 blocks of static data
        for (std::uint64_t l = 0; l < cold_pages; ++l)
            ftl->writePage(100 + l, nullptr, ops);
        for (int round = 0; round < rounds; ++round)
            for (std::uint64_t l = 0; l < 8; ++l)
                ftl->writePage(l, nullptr, ops);
    }

    SsdConfig cfg;
    std::vector<flash::Chip> chips;
    std::unique_ptr<Ftl> ftl;
};

TEST(WearLeveling, SpreadBoundedWhenEnabled)
{
    Rig rig(/*wl_threshold=*/4);
    rig.run(600);
    EXPECT_GT(rig.ftl->wearLevelMoves(), 0u)
        << "skewed churn must trigger migrations";
    // Spread can exceed the threshold transiently (migration happens on
    // the GC path), but must stay the same order of magnitude.
    EXPECT_LE(rig.ftl->eraseSpread(0), 3 * 4 + 4);
}

TEST(WearLeveling, SpreadGrowsWhenDisabled)
{
    Rig off(/*wl_threshold=*/0);
    off.run(600);
    EXPECT_EQ(off.ftl->wearLevelMoves(), 0u);

    Rig on(/*wl_threshold=*/4);
    on.run(600);
    EXPECT_LT(on.ftl->eraseSpread(0), off.ftl->eraseSpread(0))
        << "wear leveling must shrink the skew vs disabled";
}

TEST(WearLeveling, DataSurvivesMigration)
{
    SsdConfig cfg = SsdConfig::tiny();
    cfg.geometry.channels = 1;
    cfg.geometry.chipsPerChannel = 1;
    cfg.geometry.planesPerDie = 1;
    cfg.geometry.blocksPerPlane = 16;
    cfg.wearLevelThreshold = 4;
    std::vector<flash::Chip> chips;
    for (std::uint32_t i = 0; i < cfg.geometry.chips(); ++i)
        chips.emplace_back(cfg.geometry, cfg.storeData, cfg.errors, i);
    Ftl ftl(cfg, chips);

    Rng rng(3);
    std::vector<PhysOp> ops;
    std::vector<BitVector> cold;
    const std::uint64_t cold_pages = cfg.geometry.pagesPerBlock() * 6;
    for (std::uint64_t l = 0; l < cold_pages; ++l) {
        BitVector v(cfg.geometry.pageBits());
        for (auto &w : v.words())
            w = rng.next();
        v.maskTail();
        cold.push_back(v);
        ftl.writePage(100 + l, &cold.back(), ops);
    }
    for (int round = 0; round < 600; ++round)
        for (std::uint64_t l = 0; l < 8; ++l)
            ftl.writePage(l, nullptr, ops);
    ASSERT_GT(ftl.wearLevelMoves(), 0u);

    for (std::uint64_t l = 0; l < cold_pages; ++l) {
        std::vector<PhysOp> r;
        ASSERT_EQ(ftl.readPage(100 + l, r), cold[l]) << "cold page " << l;
    }
}

} // namespace
} // namespace parabit::ssd
