/**
 * @file
 * Die-level RAIN parity: stripe consistency across host writes, GC,
 * trim and refresh; rebuild of dead-die pages; the uncorrectable
 * two-failure case; and parity recomputation across a power cycle.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "ssd/media.hpp"
#include "ssd/ssd.hpp"

namespace parabit::ssd {
namespace {

SsdConfig
rainConfig()
{
    SsdConfig cfg = SsdConfig::tiny();
    cfg.media.enabled = true;
    cfg.media.scrubInterval = ticks::fromUs(1);
    cfg.media.scrubWordlinesPerPass = 512;
    cfg.rain.enabled = true;
    return cfg;
}

std::vector<BitVector>
seededPages(const SsdConfig &cfg, Lpn count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitVector> ref;
    for (Lpn l = 0; l < count; ++l) {
        BitVector d(cfg.geometry.pageBits());
        for (std::size_t i = 0; i < d.size(); ++i)
            d.set(i, rng.chance(0.5));
        ref.push_back(std::move(d));
    }
    return ref;
}

Tick
writeAll(SsdDevice &dev, const std::vector<BitVector> &ref, Tick at)
{
    std::vector<const BitVector *> batch;
    for (const BitVector &d : ref)
        batch.push_back(&d);
    return dev.writePages(0, batch, at);
}

/** Every mapped LPN's stripe must rebuild to exactly its payload. */
void
expectParityConsistent(SsdDevice &dev, const std::vector<BitVector> &ref)
{
    std::vector<PhysOp> ops;
    for (Lpn l = 0; l < static_cast<Lpn>(ref.size()); ++l) {
        const auto a = dev.ftl().lookup(l);
        ASSERT_TRUE(a.has_value()) << "lpn " << l;
        const auto rebuilt = dev.rain()->rebuildPage(*a);
        ASSERT_TRUE(rebuilt.has_value()) << "lpn " << l;
        ops.clear();
        EXPECT_EQ(*rebuilt, dev.ftl().readPage(l, ops)) << "lpn " << l;
    }
}

TEST(Rain, StripeParityMatchesEveryPayloadAfterWrites)
{
    SsdConfig cfg = rainConfig();
    SsdDevice dev(cfg);
    ASSERT_NE(dev.rain(), nullptr);
    const auto ref = seededPages(cfg, 64, 0xA1);
    writeAll(dev, ref, 0);
    EXPECT_GT(dev.rain()->parityUpdates(), 0u);
    EXPECT_GT(dev.rain()->stripesTracked(), 0u);
    expectParityConsistent(dev, ref);
}

TEST(Rain, ParityStaysConsistentThroughOverwriteTrimAndGc)
{
    SsdConfig cfg = rainConfig();
    SsdDevice dev(cfg);
    auto ref = seededPages(cfg, 128, 0xB2);
    Tick now = writeAll(dev, ref, 0);

    // Overwrite half the LPNs a few times (invalidations + GC churn),
    // trim a few, then re-write them.
    Rng rng(3);
    for (int round = 0; round < 40; ++round) {
        for (Lpn l = 0; l < 64; ++l) {
            BitVector d(cfg.geometry.pageBits());
            for (std::size_t i = 0; i < d.size(); ++i)
                d.set(i, rng.chance(0.5));
            ref[static_cast<std::size_t>(l)] = d;
            now = dev.writePages(l, {&ref[static_cast<std::size_t>(l)]},
                                 now);
        }
    }
    for (Lpn l = 100; l < 110; ++l)
        ASSERT_TRUE(dev.ftl().trim(l));
    for (Lpn l = 100; l < 110; ++l)
        now = dev.writePages(l, {&ref[static_cast<std::size_t>(l)]}, now);

    EXPECT_GT(dev.ftl().gcRuns(), 0u) << "churn should have forced GC";
    expectParityConsistent(dev, ref);
}

TEST(Rain, RebuildRecoversDeadDiePagesBitExactly)
{
    SsdConfig cfg = rainConfig();
    SsdDevice dev(cfg);
    const auto ref = seededPages(cfg, 96, 0xC3);
    const Tick t0 = writeAll(dev, ref, 0);

    // Kill channel 0 / chip 1's die (planes 2 and 3 in flat order).
    FaultSpec spec;
    spec.cls = FaultClass::kDieFail;
    spec.plane = 2;
    dev.injectFault(spec);

    std::size_t dead_pages = 0;
    for (Lpn l = 0; l < 96; ++l) {
        const auto a = dev.ftl().lookup(l);
        ASSERT_TRUE(a.has_value());
        if (dev.planeAlive(*a))
            continue;
        ++dead_pages;
        const auto rebuilt = dev.rain()->rebuildPage(*a);
        ASSERT_TRUE(rebuilt.has_value()) << "lpn " << l;
        EXPECT_EQ(*rebuilt, ref[static_cast<std::size_t>(l)])
            << "lpn " << l;
        EXPECT_TRUE(dev.repairPage(l, t0)) << "lpn " << l;
        EXPECT_TRUE(dev.ftl().pageAccessible(l));
    }
    EXPECT_GT(dead_pages, 0u) << "striping must have hit the dead die";
    EXPECT_GE(dev.rain()->rebuildsSucceeded(), dead_pages);

    // After repair everything reads back through the normal path.
    std::vector<BitVector> got;
    dev.readPages(0, 96, &got, t0);
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], ref[i]) << "lpn " << i;
}

TEST(Rain, ScrubPassRepairsDeadDiePagesInBackground)
{
    SsdConfig cfg = rainConfig();
    SsdDevice dev(cfg);
    const auto ref = seededPages(cfg, 160, 0xD4);
    Tick now = writeAll(dev, ref, 0);

    FaultSpec spec;
    spec.cls = FaultClass::kDieFail;
    spec.plane = 2;
    dev.injectFault(spec);

    // Patrol passes find the dead-die wordlines and repair them.
    for (int round = 0; round < 8; ++round)
        now = dev.pumpMedia(dev.media()->nextPassAt() + 1);

    EXPECT_GT(dev.media()->repairs(), 0u);
    EXPECT_EQ(dev.media()->uncorrectable(), 0u);
    for (Lpn l = 0; l < 160; ++l) {
        const auto a = dev.ftl().lookup(l);
        ASSERT_TRUE(a.has_value());
        if (!dev.planeAlive(*a)) {
            // Still on the dead die: must be in a not-yet-patrolled
            // open block; on-demand repair covers those.
            EXPECT_TRUE(dev.repairPage(l, now));
        }
    }
    std::vector<BitVector> got;
    dev.readPages(0, 160, &got, now);
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], ref[i]) << "lpn " << i;
}

TEST(Rain, SecondFailureInStripeIsUncorrectable)
{
    SsdConfig cfg = rainConfig();
    SsdDevice dev(cfg);
    const auto ref = seededPages(cfg, 64, 0xE5);
    writeAll(dev, ref, 0);

    // Tiny geometry: each channel has two dies (2 chips x 1 die), so a
    // stripe has two members — killing both dies of channel 0 leaves
    // nothing to rebuild from.
    FaultSpec a;
    a.cls = FaultClass::kDieFail;
    a.plane = 0;
    dev.injectFault(a);
    FaultSpec b;
    b.cls = FaultClass::kDieFail;
    b.plane = 2;
    dev.injectFault(b);

    bool saw_uncorrectable = false;
    for (Lpn l = 0; l < 64; ++l) {
        const auto loc = dev.ftl().lookup(l);
        ASSERT_TRUE(loc.has_value());
        if (dev.planeAlive(*loc))
            continue;
        const bool partner_present =
            !dev.rain()->rebuildPage(*loc).has_value();
        if (partner_present) {
            saw_uncorrectable = true;
            EXPECT_FALSE(dev.repairPage(l, 0));
        }
    }
    EXPECT_TRUE(saw_uncorrectable);
    EXPECT_GT(dev.rain()->rebuildsFailed(), 0u);
}

TEST(Rain, ParityRecomputedAcrossPowerCycle)
{
    SsdConfig cfg = rainConfig();
    cfg.recovery.enabled = true;
    SsdDevice dev(cfg);
    const auto ref = seededPages(cfg, 64, 0xF6);
    Tick now = writeAll(dev, ref, 0);

    const RecoveryReport rep = dev.powerCycle(now);
    EXPECT_TRUE(rep.recovered);
    expectParityConsistent(dev, ref);

    // And the recomputed parity still powers a real rebuild.
    FaultSpec spec;
    spec.cls = FaultClass::kDieFail;
    spec.plane = 0;
    dev.injectFault(spec);
    bool repaired = false;
    for (Lpn l = 0; l < 64 && !repaired; ++l) {
        const auto a = dev.ftl().lookup(l);
        ASSERT_TRUE(a.has_value());
        if (!dev.planeAlive(*a))
            repaired = dev.repairPage(l, now);
    }
    EXPECT_TRUE(repaired);
}

TEST(Rain, DestageProgramsAreBookedWhenCharged)
{
    SsdConfig cfg = rainConfig();
    cfg.rain.chargeParityPrograms = true;
    SsdDevice dev(cfg);
    const auto ref = seededPages(cfg, 32, 0x17);
    writeAll(dev, ref, 0);
    EXPECT_GT(dev.rain()->destagePrograms(), 0u);

    SsdConfig quiet = rainConfig();
    quiet.rain.chargeParityPrograms = false;
    SsdDevice dev2(quiet);
    writeAll(dev2, ref, 0);
    EXPECT_EQ(dev2.rain()->destagePrograms(), 0u);
    // Parity still functionally consistent without the booked traffic.
    expectParityConsistent(dev2, ref);
}

} // namespace
} // namespace parabit::ssd
