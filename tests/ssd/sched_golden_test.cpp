/**
 * @file
 * Golden timing regression: the FCFS transaction scheduler must
 * reproduce the pre-refactor greedy Timeline booking tick-for-tick.
 *
 * The reference implementation below is a verbatim replica of the seed
 * `SsdDevice::scheduleOps` / `scheduleArrayJobs` algorithm (greedy
 * per-call booking on persistent per-channel / per-plane Timelines).  A
 * deterministic mixed trace — reads, programs, erases and ParaBit array
 * jobs in interleaved batches at varying ready times — is driven
 * through both the reference and the real device, for every SsdConfig
 * preset geometry, and every returned completion time plus the final
 * per-resource busy-tick totals must match exactly.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "ssd/ssd.hpp"
#include "ssd/timeline.hpp"

namespace parabit::ssd {
namespace {

/** Verbatim replica of the seed greedy scheduler. */
class GreedyReference
{
  public:
    explicit GreedyReference(const SsdConfig &cfg)
        : cfg_(cfg), channelTls_(cfg.geometry.channels),
          planeTls_(cfg.geometry.planesTotal())
    {
    }

    Tick
    scheduleOps(const std::vector<PhysOp> &ops, Tick ready_at)
    {
        const flash::FlashTiming &t = cfg_.timing;
        const Bytes page = cfg_.geometry.pageBytes;
        Tick done = ready_at;
        for (const auto &op : ops) {
            Timeline &ch = channelTl(op.addr.channel);
            Timeline &die = planeTl(op.addr);
            Tick end = ready_at;
            switch (op.kind) {
              case PhysOp::Kind::kPageRead: {
                const Tick array =
                    op.addr.msb ? t.msbReadTime() : t.lsbReadTime();
                const Tick a_start =
                    die.reserve(ready_at + t.tCmdOverhead, array);
                const Tick x_start =
                    ch.reserve(a_start + array, t.transferTime(page));
                end = x_start + t.transferTime(page);
                break;
              }
              case PhysOp::Kind::kPageProgram: {
                const Tick x_start = ch.reserve(ready_at + t.tCmdOverhead,
                                                t.transferTime(page));
                const Tick a_start = die.reserve(
                    x_start + t.transferTime(page), t.tProgram);
                end = a_start + t.tProgram;
                break;
              }
              case PhysOp::Kind::kBlockErase: {
                const Tick a_start =
                    die.reserve(ready_at + t.tCmdOverhead, t.tErase);
                end = a_start + t.tErase;
                break;
              }
              case PhysOp::Kind::kScrubRead: {
                // Patrol scan: array sense only, no channel transfer.
                const Tick array =
                    op.addr.msb ? t.msbReadTime() : t.lsbReadTime();
                const Tick a_start =
                    die.reserve(ready_at + t.tCmdOverhead, array);
                end = a_start + array;
                break;
              }
            }
            done = std::max(done, end);
        }
        return done;
    }

    Tick
    scheduleArrayJobs(const std::vector<ArrayJob> &jobs, Tick ready_at)
    {
        const flash::FlashTiming &t = cfg_.timing;
        Tick done = ready_at;
        for (const auto &job : jobs) {
            Timeline &die = planeTl(job.loc);
            Tick ready = ready_at + t.tCmdOverhead;
            if (job.xferInBytes > 0) {
                Timeline &ch = channelTl(job.loc.channel);
                const Tick x = t.transferTime(job.xferInBytes);
                ready = ch.reserve(ready, x) + x;
            }
            const Tick array = t.senseTime(job.sroCount);
            const Tick a_start = die.reserve(ready, array);
            Tick end = a_start + array;
            if (job.xferOutBytes > 0) {
                Timeline &ch = channelTl(job.loc.channel);
                const Tick x = t.transferTime(job.xferOutBytes);
                const Tick x_start = ch.reserve(end, x);
                end = x_start + x;
            }
            done = std::max(done, end);
        }
        return done;
    }

    Tick
    totalBookedTicks() const
    {
        Tick sum = 0;
        for (const Timeline &t : channelTls_)
            sum += t.bookedTicks();
        for (const Timeline &t : planeTls_)
            sum += t.bookedTicks();
        return sum;
    }

    Tick
    channelBooked(std::uint32_t c) const
    {
        return channelTls_.at(c).bookedTicks();
    }

    Tick planeBooked(std::size_t p) const { return planeTls_.at(p).bookedTicks(); }

  private:
    Timeline &channelTl(std::uint32_t c) { return channelTls_.at(c); }

    Timeline &
    planeTl(const flash::PhysPageAddr &a)
    {
        const std::size_t idx =
            ((static_cast<std::size_t>(a.channel) *
                  cfg_.geometry.chipsPerChannel +
              a.chip) *
                 cfg_.geometry.diesPerChip +
             a.die) *
                cfg_.geometry.planesPerDie +
            a.plane;
        return planeTls_.at(idx);
    }

    SsdConfig cfg_;
    std::vector<Timeline> channelTls_;
    std::vector<Timeline> planeTls_;
};

flash::PhysPageAddr
randomAddr(Rng &rng, const flash::FlashGeometry &g)
{
    flash::PhysPageAddr a;
    a.channel = static_cast<std::uint32_t>(rng.below(g.channels));
    a.chip = static_cast<std::uint32_t>(rng.below(g.chipsPerChannel));
    a.die = static_cast<std::uint32_t>(rng.below(g.diesPerChip));
    a.plane = static_cast<std::uint32_t>(rng.below(g.planesPerDie));
    a.block = static_cast<std::uint32_t>(rng.below(g.blocksPerPlane));
    a.wordline = static_cast<std::uint32_t>(rng.below(g.wordlinesPerBlock));
    a.msb = rng.chance(0.5);
    return a;
}

std::vector<PhysOp>
randomOps(Rng &rng, const flash::FlashGeometry &g, std::size_t n)
{
    std::vector<PhysOp> ops;
    ops.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        PhysOp op;
        op.addr = randomAddr(rng, g);
        const std::uint64_t k = rng.below(10);
        op.kind = k < 5   ? PhysOp::Kind::kPageRead
                  : k < 9 ? PhysOp::Kind::kPageProgram
                          : PhysOp::Kind::kBlockErase;
        ops.push_back(op);
    }
    return ops;
}

std::vector<ArrayJob>
randomJobs(Rng &rng, const flash::FlashGeometry &g, std::size_t n)
{
    std::vector<ArrayJob> jobs;
    jobs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        ArrayJob j;
        j.loc = randomAddr(rng, g);
        j.sroCount = 1 + static_cast<int>(rng.below(7));
        if (rng.chance(0.3))
            j.xferInBytes = g.pageBytes;
        if (rng.chance(0.5))
            j.xferOutBytes = g.pageBytes;
        jobs.push_back(j);
    }
    return jobs;
}

void
runGoldenTrace(const SsdConfig &base)
{
    SsdConfig cfg = base;
    cfg.storeData = false; // timing only: no payloads needed
    ASSERT_EQ(cfg.sched.policy, sched::SchedPolicyKind::kFcfs)
        << "the golden trace pins the default policy";

    SsdDevice dev(cfg);
    GreedyReference ref(cfg);
    Rng rng(0x60D71ACE);

    Tick now_dev = 0;
    Tick now_ref = 0;
    for (int round = 0; round < 12; ++round) {
        // Mixed batches at a drifting ready time, including batches
        // that start while earlier bookings still occupy resources.
        const Tick jitter = rng.below(ticks::fromUs(100));
        const Tick at_dev = now_dev / 2 + jitter;
        const Tick at_ref = now_ref / 2 + jitter;
        ASSERT_EQ(at_dev, at_ref);
        if (round % 3 == 2) {
            const auto jobs =
                randomJobs(rng, cfg.geometry, 1 + rng.below(24));
            now_dev = dev.scheduleArrayJobs(jobs, at_dev);
            now_ref = ref.scheduleArrayJobs(jobs, at_ref);
        } else {
            const auto ops = randomOps(rng, cfg.geometry, 1 + rng.below(32));
            now_dev = dev.scheduleOps(ops, at_dev);
            now_ref = ref.scheduleOps(ops, at_ref);
        }
        ASSERT_EQ(now_dev, now_ref) << "diverged at round " << round;
    }

    // Busy-time accounting must agree resource-by-resource (satellite:
    // FCFS-vs-greedy utilization asserted equal).
    const sched::SchedStats s = dev.scheduler().stats();
    for (std::uint32_t c = 0; c < cfg.geometry.channels; ++c)
        EXPECT_EQ(s.channelBusy.at(c), ref.channelBooked(c)) << "channel " << c;
    for (std::uint32_t p = 0; p < cfg.geometry.planesTotal(); ++p)
        EXPECT_EQ(s.dieBusy.at(p), ref.planeBooked(p)) << "plane " << p;
    EXPECT_EQ(s.submitted, s.completed);
    EXPECT_EQ(s.suspends, 0u) << "FCFS never suspends";
}

TEST(SchedGolden, TinyPresetTickIdentical)
{
    runGoldenTrace(SsdConfig::tiny());
}

TEST(SchedGolden, PaperSsdPresetTickIdentical)
{
    runGoldenTrace(SsdConfig::paperSsd());
}

TEST(SchedGolden, SkewedGeometryTickIdentical)
{
    // A deliberately lopsided geometry: one channel, many planes (die
    // contention differs sharply from channel contention).
    SsdConfig cfg = SsdConfig::tiny();
    cfg.geometry.channels = 1;
    cfg.geometry.chipsPerChannel = 4;
    cfg.geometry.diesPerChip = 2;
    cfg.geometry.planesPerDie = 4;
    runGoldenTrace(cfg);
}

TEST(SchedGolden, RepeatedRunsAreDeterministic)
{
    // Same trace, two fresh devices: identical final clocks and busy
    // vectors (the determinism anchor for the TSan job).
    SsdConfig cfg = SsdConfig::tiny();
    cfg.storeData = false;
    auto runOnce = [&cfg] {
        SsdDevice dev(cfg);
        Rng rng(0xD37E12);
        Tick now = 0;
        for (int round = 0; round < 6; ++round) {
            const auto ops = randomOps(rng, cfg.geometry, 16);
            now = dev.scheduleOps(ops, now / 2);
        }
        return std::make_pair(now, dev.scheduler().stats().channelBusy);
    };
    const auto a = runOnce();
    const auto b = runOnce();
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

} // namespace
} // namespace parabit::ssd
