/**
 * @file
 * Background media management: disturb/retention wear growth, the
 * patrol scrubber's refresh decisions, the new fault classes, and the
 * config validation that gates the subsystem.
 *
 * Layout note: the tiny geometry blocks hold 8 wordlines (16 pages) and
 * the scrubber skips open (write-cursor) blocks, so tests that want the
 * patrol to see data write 160 logical pages — 20 per plane, closing
 * every plane's first block and parking the cursor in the second.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "flash/read_retry.hpp"
#include "ssd/media.hpp"
#include "ssd/ssd.hpp"

namespace parabit::ssd {
namespace {

constexpr Lpn kFillPages = 160;

SsdConfig
mediaConfig()
{
    SsdConfig cfg = SsdConfig::tiny();
    cfg.media.enabled = true;
    cfg.media.scrubInterval = ticks::fromUs(1);
    cfg.media.scrubWordlinesPerPass = 512; // one full sweep per pass
    return cfg;
}

/** Write @p count seeded pages; returns the reference payloads. */
std::vector<BitVector>
fillPages(SsdDevice &dev, Lpn count, Tick &now)
{
    Rng rng(17);
    std::vector<BitVector> ref;
    std::vector<const BitVector *> batch;
    for (Lpn l = 0; l < count; ++l) {
        BitVector d(dev.geometry().pageBits());
        for (std::size_t i = 0; i < d.size(); ++i)
            d.set(i, rng.chance(0.5));
        ref.push_back(std::move(d));
    }
    for (const BitVector &d : ref)
        batch.push_back(&d);
    now = dev.writePages(0, batch, now);
    return ref;
}

TEST(MediaConfigValidation, RainRequiresRunningScrubber)
{
    SsdConfig cfg = SsdConfig::tiny();
    cfg.rain.enabled = true;
    EXPECT_NE(validateMediaConfig(cfg), nullptr) << "scrubber disabled";

    cfg.media.enabled = true;
    cfg.media.scrubInterval = 0;
    EXPECT_NE(validateMediaConfig(cfg), nullptr) << "scrub interval 0";

    cfg.media.scrubInterval = ticks::fromMs(1);
    EXPECT_EQ(validateMediaConfig(cfg), nullptr);
}

TEST(MediaConfigValidation, ScrubBatchMustBeNonzero)
{
    SsdConfig cfg = SsdConfig::tiny();
    cfg.media.enabled = true;
    cfg.media.scrubWordlinesPerPass = 0;
    EXPECT_NE(validateMediaConfig(cfg), nullptr);
    cfg.media.scrubWordlinesPerPass = 1;
    EXPECT_EQ(validateMediaConfig(cfg), nullptr);
}

TEST(MediaFaults, NewClassesHaveNames)
{
    EXPECT_STREQ(faultClassName(FaultClass::kReadDisturbHot),
                 "read-disturb-hot");
    EXPECT_STREQ(faultClassName(FaultClass::kRetentionLoss),
                 "retention-loss");
    EXPECT_STREQ(faultClassName(FaultClass::kDieFail), "die-fail");
}

TEST(MediaFaults, DieFailKillsEveryPlaneOfTheDie)
{
    const flash::FlashGeometry g = flash::FlashGeometry::tiny();
    ASSERT_EQ(g.planesPerDie, 2u);
    FaultInjector inj(g, 7);
    FaultSpec spec;
    spec.cls = FaultClass::kDieFail;
    spec.plane = 2; // second die's first plane
    inj.addFault(spec);
    EXPECT_FALSE(inj.planeDead(0));
    EXPECT_FALSE(inj.planeDead(1));
    EXPECT_TRUE(inj.planeDead(2));
    EXPECT_TRUE(inj.planeDead(3)) << "sibling plane of the same die";
    EXPECT_FALSE(inj.planeDead(4));
}

TEST(MediaFaults, DisturbAndRetentionMultipliersMatchRegion)
{
    const flash::FlashGeometry g = flash::FlashGeometry::tiny();
    FaultInjector inj(g, 7);
    FaultSpec hot;
    hot.cls = FaultClass::kReadDisturbHot;
    hot.plane = 0;
    hot.block = 3;
    hot.rberMultiplier = 8.0;
    inj.addFault(hot);
    FaultSpec leak;
    leak.cls = FaultClass::kRetentionLoss;
    leak.plane = 1;
    leak.rberMultiplier = 5.0;
    inj.addFault(leak);

    flash::PhysPageAddr a; // plane 0 = channel 0, chip 0, die 0, plane 0
    a.block = 3;
    EXPECT_DOUBLE_EQ(inj.disturbMultiplier(a), 8.0);
    EXPECT_DOUBLE_EQ(inj.retentionMultiplier(a), 1.0);
    a.block = 2;
    EXPECT_DOUBLE_EQ(inj.disturbMultiplier(a), 1.0) << "other block";
    a.plane = 1;
    EXPECT_DOUBLE_EQ(inj.retentionMultiplier(a), 5.0);
    EXPECT_DOUBLE_EQ(inj.disturbMultiplier(a), 1.0);
}

TEST(MediaFaults, RandomScheduleNeverDrawsMediaClasses)
{
    // The legacy seeded schedules must stay bit-identical, so the new
    // classes are armed only explicitly via addFault().
    const auto specs = FaultInjector::randomSchedule(
        flash::FlashGeometry::tiny(), 0xFEED, 256);
    ASSERT_EQ(specs.size(), 256u);
    for (const FaultSpec &s : specs) {
        EXPECT_NE(s.cls, FaultClass::kReadDisturbHot);
        EXPECT_NE(s.cls, FaultClass::kRetentionLoss);
        EXPECT_NE(s.cls, FaultClass::kDieFail);
    }
}

TEST(MediaWear, ReadsChargeNeighborsAndGrowPrediction)
{
    const flash::FlashGeometry g = flash::FlashGeometry::tiny();
    flash::ErrorModelConfig ec; // non-ideal: paper-calibrated base rate
    ec.readDisturbFactor = 0.01;
    ec.retentionPerHour = 0.5;
    flash::Chip chip(g, true, ec, 1);
    const BitVector d(g.pageBits(), false);
    ASSERT_TRUE(chip.programPage({0, 0, 0, 0, false}, &d));
    ASSERT_TRUE(chip.programPage({0, 0, 0, 1, false}, &d));

    const double base = chip.predictedRber({0, 0, 0, 0, false});
    ASSERT_GT(base, 0.0);
    for (int i = 0; i < 100; ++i)
        (void)chip.readPage({0, 0, 0, 1, false}); // LSB read: 1 sense
    EXPECT_EQ(chip.wordlineDisturb({0, 0, 0, 0, false}), 100u);
    EXPECT_EQ(chip.wordlineDisturb({0, 0, 0, 1, false}), 0u)
        << "a read disturbs its neighbors, not itself";
    const double disturbed = chip.predictedRber({0, 0, 0, 0, false});
    EXPECT_NEAR(disturbed / base, 2.0, 1e-9) << "1 + 0.01 * 100";

    // Retention compounds multiplicatively on top of disturb.
    chip.setNow(ticks::fromSec(2 * 3600.0));
    const double aged = chip.predictedRber({0, 0, 0, 0, false});
    EXPECT_NEAR(aged / disturbed, 2.0, 1e-9) << "1 + 0.5/hr * 2 hr";
}

TEST(MediaWear, MsbReadChargesTwoSenses)
{
    const flash::FlashGeometry g = flash::FlashGeometry::tiny();
    flash::Chip chip(g, true, flash::ErrorModelConfig::ideal(), 1);
    const BitVector d(g.pageBits(), false);
    ASSERT_TRUE(chip.programPage({0, 0, 0, 1, false}, &d));
    ASSERT_TRUE(chip.programPage({0, 0, 0, 1, true}, &d));
    (void)chip.readPage({0, 0, 0, 1, true});
    EXPECT_EQ(chip.wordlineDisturb({0, 0, 0, 0, false}), 2u);
    EXPECT_EQ(chip.wordlineDisturb({0, 0, 0, 2, false}), 2u);
}

TEST(MediaWear, EraseResetsDisturb)
{
    const flash::FlashGeometry g = flash::FlashGeometry::tiny();
    flash::Chip chip(g, true, flash::ErrorModelConfig::ideal(), 1);
    const BitVector d(g.pageBits(), false);
    ASSERT_TRUE(chip.programPage({0, 0, 0, 1, false}, &d));
    (void)chip.readPage({0, 0, 0, 1, false});
    ASSERT_GT(chip.wordlineDisturb({0, 0, 0, 0, false}), 0u);
    ASSERT_TRUE(chip.eraseBlock(0, 0, 0));
    EXPECT_EQ(chip.wordlineDisturb({0, 0, 0, 0, false}), 0u);
}

TEST(MediaScrub, PassRunsOnScheduleAndScansValidPages)
{
    SsdConfig cfg = mediaConfig();
    SsdDevice dev(cfg);
    ASSERT_NE(dev.media(), nullptr);
    EXPECT_EQ(dev.rain(), nullptr);

    Tick now = 0;
    fillPages(dev, kFillPages, now); // pumps a pass at write completion

    EXPECT_GE(dev.media()->passes(), 1u);
    EXPECT_GT(dev.media()->wordlinesScanned(), 0u);
    EXPECT_GT(dev.media()->scrubReads(), 0u);
    EXPECT_EQ(dev.media()->uncorrectable(), 0u);

    // Not due again until the interval elapses.
    const std::uint64_t before = dev.media()->passes();
    dev.pumpMedia(dev.media()->nextPassAt() - 1);
    EXPECT_EQ(dev.media()->passes(), before);
    dev.pumpMedia(dev.media()->nextPassAt());
    EXPECT_EQ(dev.media()->passes(), before + 1);
}

TEST(MediaScrub, DisturbThresholdTriggersRefreshWithDataIntact)
{
    SsdConfig cfg = mediaConfig();
    cfg.media.refreshDisturbThreshold = 64;
    SsdDevice dev(cfg);

    Tick now = 0;
    const std::vector<BitVector> ref = fillPages(dev, kFillPages, now);

    // Hammer reads: every read charges its physical wordline neighbors,
    // so closed-block wordlines cross the 64-sense threshold and the
    // pass that follows each host batch refresh-relocates them.
    for (int round = 0; round < 100 && dev.media()->refreshes() == 0;
         ++round)
        now = dev.readPages(0, kFillPages, nullptr, now);

    EXPECT_GT(dev.media()->refreshes(), 0u);
    EXPECT_GT(dev.ftl().refreshPagesWritten(), 0u);
    EXPECT_EQ(dev.media()->refreshFailures(), 0u);
    EXPECT_EQ(dev.media()->uncorrectable(), 0u);

    // Every relocation preserved the payload bit-exactly.
    std::vector<BitVector> got;
    dev.readPages(0, kFillPages, &got, now);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_EQ(got[i], ref[i]) << "lpn " << i;
}

TEST(MediaFtl, RefreshWordlineMovesPagesAndResetsCounters)
{
    SsdConfig cfg = SsdConfig::tiny(); // scrubber not needed: direct call
    SsdDevice dev(cfg);
    Ftl &ftl = dev.ftl();

    // Fill enough that plane 0's first block closes: the refresh
    // destination (an open-block wordline) is then disjoint from the
    // wordlines the neighbor-read below charges.
    Tick now = 0;
    const std::vector<BitVector> ref = fillPages(dev, kFillPages, now);

    // lpns 0 and 8 share plane 0's first wordline (8-plane striping,
    // interleaved LSB/MSB order); lpn 16 is that plane's next wordline,
    // so reading it charges disturb into the first.
    const auto lsb = ftl.lookup(0);
    const auto msb = ftl.lookup(8);
    ASSERT_TRUE(lsb && msb);
    ASSERT_TRUE(lsb->sameWordline(*msb));
    std::vector<PhysOp> ops;
    for (int i = 0; i < 50; ++i)
        (void)ftl.readPage(16, ops);
    flash::Chip &chip = dev.chipAt(lsb->channel, lsb->chip);
    const flash::ChipPageAddr old_ca{lsb->die, lsb->plane, lsb->block,
                                     lsb->wordline, false};
    ASSERT_GE(chip.wordlineDisturb(old_ca), 50u);

    ops.clear();
    ASSERT_TRUE(ftl.refreshWordline(*lsb, ops));
    EXPECT_FALSE(ops.empty());
    EXPECT_EQ(ftl.refreshPagesWritten(), 2u);

    const auto lsb2 = ftl.lookup(0);
    const auto msb2 = ftl.lookup(8);
    ASSERT_TRUE(lsb2 && msb2);
    EXPECT_FALSE(lsb2->sameWordline(*lsb)) << "page must have moved";
    flash::Chip &chip2 = dev.chipAt(lsb2->channel, lsb2->chip);
    EXPECT_EQ(chip2.wordlineDisturb({lsb2->die, lsb2->plane, lsb2->block,
                                     lsb2->wordline, false}),
              0u)
        << "fresh wordline starts with a clean disturb counter";
    EXPECT_EQ(chip.pageState(old_ca), flash::PageState::kInvalid);

    ops.clear();
    EXPECT_EQ(ftl.readPage(0, ops), ref[0]);
    EXPECT_EQ(ftl.readPage(8, ops), ref[8]);
}

TEST(MediaFtl, RefreshKeepsParabitPairCoLocated)
{
    SsdConfig cfg = SsdConfig::tiny();
    SsdDevice dev(cfg);
    Ftl &ftl = dev.ftl();

    const BitVector x(cfg.geometry.pageBits(), false);
    const BitVector y(cfg.geometry.pageBits(), true);
    std::vector<PhysOp> ops;
    const auto pair = ftl.writePair(100, 101, &x, &y, ops);
    ASSERT_TRUE(pair.has_value());

    ops.clear();
    ASSERT_TRUE(ftl.refreshWordline(pair->lsb, ops));

    const auto a = ftl.lookup(100);
    const auto b = ftl.lookup(101);
    ASSERT_TRUE(a && b);
    EXPECT_TRUE(a->sameWordline(*b))
        << "refresh must move a ParaBit pair through writePair";
    EXPECT_FALSE(a->sameWordline(pair->lsb));
    EXPECT_FALSE(a->msb);
    EXPECT_TRUE(b->msb);
    ops.clear();
    EXPECT_EQ(ftl.readPage(100, ops), x);
    EXPECT_EQ(ftl.readPage(101, ops), y);
}

TEST(RetryLadder, MatchesHandComputedThresholds)
{
    // Budget: <= 0.1 expected voted errors on a 65536-bit page; the
    // per-bit per-execution error is q = 0.404 * 7 * p = 2.83 p.
    const double q = 0.404 * 7;
    const double p1 = 0.1 / (65536.0 * q); // 1-vote exact limit ~5.4e-7
    const double p3 =
        std::sqrt(0.1 / (3.0 * 65536.0)) / q; // 3-vote limit ~2.5e-4
    // The rungs are the derived limits rounded to a decade boundary
    // (5.4e-7 -> 1e-6 rung, 2.5e-4 -> 1e-4 rung): within half a decade.
    EXPECT_GE(flash::kRetryLadder[0].maxRber, p1);
    EXPECT_LE(flash::kRetryLadder[0].maxRber, 3.0 * p1);
    EXPECT_LE(flash::kRetryLadder[1].maxRber, p3);
    EXPECT_GE(flash::kRetryLadder[1].maxRber, p3 / 3.0);

    struct Case
    {
        double rber;
        int votes;
    };
    const Case table[] = {{0.0, 1},  {9.9e-7, 1}, {1e-6, 3}, {9.9e-5, 3},
                          {1e-4, 5}, {9.9e-3, 5}, {1e-2, 7}, {0.5, 7}};
    for (const Case &c : table)
        EXPECT_EQ(flash::recommendedVotes(c.rber), c.votes) << c.rber;
}

TEST(RetryLadder, RefreshDropsTheRecommendation)
{
    // A wordline pushed up the ladder by disturb wear falls back to the
    // bottom rungs once the scrubber relocates its pages.
    SsdConfig cfg = mediaConfig();
    cfg.errors = flash::ErrorModelConfig{}; // paper-calibrated base
    cfg.errors.readDisturbFactor = 10.0;    // aggressive, test-scale
    cfg.media.refreshRberThreshold = 1e-4;
    SsdDevice dev(cfg);

    Tick now = 0;
    fillPages(dev, kFillPages, now);
    std::vector<flash::PhysPageAddr> initial;
    for (Lpn l = 0; l < kFillPages; ++l)
        initial.push_back(*dev.ftl().lookup(l));

    for (int round = 0; round < 100 && dev.media()->refreshes() == 0;
         ++round)
        now = dev.readPages(0, kFillPages, nullptr, now);
    ASSERT_GT(dev.media()->refreshes(), 0u);

    // Every page the scrubber moved now predicts below the refresh
    // threshold, i.e. back down the retry ladder.
    std::size_t moved = 0;
    for (Lpn l = 0; l < kFillPages; ++l) {
        const auto a = dev.ftl().lookup(l);
        ASSERT_TRUE(a.has_value());
        if (a->sameWordline(initial[static_cast<std::size_t>(l)]))
            continue;
        ++moved;
        const double rber =
            dev.chipAt(a->channel, a->chip)
                .predictedRber(
                    {a->die, a->plane, a->block, a->wordline, a->msb});
        EXPECT_LT(rber, cfg.media.refreshRberThreshold);
        EXPECT_LE(flash::recommendedVotes(rber), 3);
    }
    EXPECT_GT(moved, 0u);
}

} // namespace
} // namespace parabit::ssd
