/**
 * @file
 * FaultInjector unit tests: determinism of the derived schedule, query
 * semantics per fault class, and the plane-level wiring through
 * SsdDevice (dead flags, stuck bitlines, FTL retirement).
 */

#include <gtest/gtest.h>

#include <string>

#include "ssd/fault_injector.hpp"
#include "ssd/ssd.hpp"

namespace parabit::ssd {
namespace {

flash::FlashGeometry
tinyGeom()
{
    return flash::FlashGeometry::tiny();
}

flash::PhysPageAddr
addrInPlane(const flash::FlashGeometry &g, PlaneIndex p,
            std::uint32_t block = 0, std::uint32_t wl = 0, bool msb = false)
{
    const PlaneCoord c = planeCoord(g, p);
    flash::PhysPageAddr a;
    a.channel = c.channel;
    a.chip = c.chip;
    a.die = c.die;
    a.plane = c.plane;
    a.block = block;
    a.wordline = wl;
    a.msb = msb;
    return a;
}

TEST(FaultInjector, ElevatedRberMultipliesOnlyMatchingRegion)
{
    FaultInjector inj(tinyGeom(), 42);
    FaultSpec s;
    s.cls = FaultClass::kElevatedRber;
    s.plane = 2;
    s.block = 3;
    s.rberMultiplier = 50.0;
    inj.addFault(s);

    const auto g = tinyGeom();
    EXPECT_DOUBLE_EQ(inj.rberMultiplier(addrInPlane(g, 2, 3)), 50.0);
    EXPECT_DOUBLE_EQ(inj.rberMultiplier(addrInPlane(g, 2, 4)), 1.0);
    EXPECT_DOUBLE_EQ(inj.rberMultiplier(addrInPlane(g, 1, 3)), 1.0);

    // Whole-plane fault stacks multiplicatively on the block fault.
    FaultSpec w = s;
    w.block.reset();
    w.rberMultiplier = 2.0;
    inj.addFault(w);
    EXPECT_DOUBLE_EQ(inj.rberMultiplier(addrInPlane(g, 2, 3)), 100.0);
    EXPECT_DOUBLE_EQ(inj.rberMultiplier(addrInPlane(g, 2, 4)), 2.0);
}

TEST(FaultInjector, StuckBitlinePositionsAreSeedDeterministic)
{
    FaultSpec s;
    s.cls = FaultClass::kStuckBitline;
    s.plane = 1;
    s.stuckCount = 5;
    s.stuckValue = true;

    FaultInjector a(tinyGeom(), 7), b(tinyGeom(), 7), c(tinyGeom(), 8);
    a.addFault(s);
    b.addFault(s);
    c.addFault(s);

    EXPECT_EQ(a.stuckBitlines(1), b.stuckBitlines(1));
    EXPECT_NE(a.stuckBitlines(1), c.stuckBitlines(1));
    EXPECT_EQ(a.stuckBitlines(1).size(), 5u);
    EXPECT_TRUE(a.stuckBitlines(0).empty());
    for (const auto &sb : a.stuckBitlines(1)) {
        EXPECT_LT(sb.bitline, tinyGeom().pageBits());
        EXPECT_TRUE(sb.value);
    }
}

TEST(FaultInjector, ProgramFailurePeriodicSchedule)
{
    FaultInjector inj(tinyGeom(), 1);
    FaultSpec s;
    s.cls = FaultClass::kProgramFailure;
    s.plane = 0;
    s.failPeriod = 3;
    s.onset = 2;
    inj.addFault(s);

    const auto a = addrInPlane(tinyGeom(), 0);
    // Attempts 1,2 succeed (onset); then every 3rd fails: 5, 8, ...
    std::vector<bool> seen;
    for (int i = 0; i < 8; ++i)
        seen.push_back(inj.programShouldFail(a));
    const std::vector<bool> expect = {false, false, false, false,
                                      true,  false, false, true};
    EXPECT_EQ(seen, expect);
    EXPECT_EQ(inj.programFailuresInjected(), 2u);
    // Other planes are untouched.
    EXPECT_FALSE(inj.programShouldFail(addrInPlane(tinyGeom(), 3)));
}

TEST(FaultInjector, DeadChipKillsAllItsPlanes)
{
    const auto g = tinyGeom();
    FaultInjector inj(g, 3);
    FaultSpec s;
    s.cls = FaultClass::kDeadChip;
    s.plane = 0;
    inj.addFault(s);

    const std::uint32_t per_chip = g.diesPerChip * g.planesPerDie;
    for (PlaneIndex p = 0; p < g.planesTotal(); ++p)
        EXPECT_EQ(inj.planeDead(p), p < per_chip) << "plane " << p;
}

TEST(FaultInjector, RandomScheduleIsReproducible)
{
    const auto g = tinyGeom();
    const auto s1 = FaultInjector::randomSchedule(g, 99, 12);
    const auto s2 = FaultInjector::randomSchedule(g, 99, 12);
    const auto s3 = FaultInjector::randomSchedule(g, 100, 12);
    ASSERT_EQ(s1.size(), 12u);
    EXPECT_EQ(s1, s2);
    EXPECT_NE(s1, s3);
    for (const auto &f : s1)
        EXPECT_LT(f.plane, g.planesTotal());
}

TEST(FaultInjector, FingerprintTracksScheduleAndSeed)
{
    const auto g = tinyGeom();
    const auto sched = FaultInjector::randomSchedule(g, 5, 6);

    FaultInjector a(g, 11), b(g, 11), c(g, 12);
    for (const auto &f : sched) {
        a.addFault(f);
        b.addFault(f);
        c.addFault(f);
    }
    EXPECT_EQ(a.scheduleFingerprint(), b.scheduleFingerprint());
    // A different injector seed draws different stuck positions, so the
    // fingerprint must move (the schedule contains stuck faults with
    // overwhelming probability; guard in case it does not).
    bool has_stuck = false;
    for (const auto &f : sched)
        has_stuck |= f.cls == FaultClass::kStuckBitline;
    if (has_stuck)
        EXPECT_NE(a.scheduleFingerprint(), c.scheduleFingerprint());

    // Registering one more fault changes the fingerprint.
    const std::uint64_t before = a.scheduleFingerprint();
    FaultSpec extra;
    extra.cls = FaultClass::kDeadPlane;
    extra.plane = 1;
    a.addFault(extra);
    EXPECT_NE(a.scheduleFingerprint(), before);
}

TEST(FaultInjector, FaultClassNamesAreExhaustive)
{
    // Every enumerator must render a real name; "?" would mean a class
    // was added without updating faultClassName() (the verify tool lints
    // the switch, this guards the runtime behaviour).
    for (int c = 0; c <= static_cast<int>(FaultClass::kPowerLoss); ++c) {
        const char *name = faultClassName(static_cast<FaultClass>(c));
        EXPECT_STRNE(name, "?") << "class " << c;
        EXPECT_GT(std::string(name).size(), 1u);
    }
    EXPECT_STREQ(faultClassName(FaultClass::kPowerLoss), "power-loss");
}

TEST(FaultInjector, PowerCutFiresAfterOnsetBoundaries)
{
    FaultInjector inj(tinyGeom(), 21);
    FaultSpec s;
    s.cls = FaultClass::kPowerLoss;
    s.onset = 3; // three boundaries complete, the fourth op is cut
    s.cutMidProgram = false;
    inj.addFault(s);

    EXPECT_EQ(inj.powerCutOnOp(false), PowerCut::kNone);
    EXPECT_EQ(inj.powerCutOnOp(true), PowerCut::kNone);
    EXPECT_EQ(inj.powerCutOnOp(false), PowerCut::kNone);
    EXPECT_FALSE(inj.powerLost());
    EXPECT_EQ(inj.powerCutOnOp(false), PowerCut::kBeforeOp);
    EXPECT_TRUE(inj.powerLost());
    // Power stays down: every later boundary is refused.
    EXPECT_EQ(inj.powerCutOnOp(true), PowerCut::kBeforeOp);
    EXPECT_EQ(inj.powerCutOnOp(false), PowerCut::kBeforeOp);
}

TEST(FaultInjector, PowerCutMidProgramOnlyTearsPrograms)
{
    FaultInjector inj(tinyGeom(), 21);
    FaultSpec s;
    s.cls = FaultClass::kPowerLoss;
    s.onset = 0;
    s.cutMidProgram = true; // pin mid-tPROG
    inj.addFault(s);

    // The cut boundary lands on a program: the wordline tears.
    EXPECT_EQ(inj.powerCutOnOp(true), PowerCut::kMidProgram);
    EXPECT_TRUE(inj.powerLost());

    // Same spec, but the boundary lands on a read/erase: a mid-program
    // cut is impossible, it degrades to before-op.
    FaultInjector inj2(tinyGeom(), 21);
    inj2.addFault(s);
    EXPECT_EQ(inj2.powerCutOnOp(false), PowerCut::kBeforeOp);
}

TEST(FaultInjector, PowerCutModeIsSeedDeterministicWhenUnpinned)
{
    FaultSpec s;
    s.cls = FaultClass::kPowerLoss;
    s.onset = 0; // cutMidProgram stays nullopt: drawn from the seed
    auto cut_of = [&](std::uint64_t seed) {
        FaultInjector inj(tinyGeom(), seed);
        inj.addFault(s);
        return inj.powerCutOnOp(true);
    };
    // Replays agree; across seeds both modes occur.
    bool saw_mid = false, saw_before = false;
    for (std::uint64_t seed = 0; seed < 32; ++seed) {
        const PowerCut c = cut_of(seed);
        EXPECT_EQ(c, cut_of(seed)) << "seed " << seed;
        saw_mid |= c == PowerCut::kMidProgram;
        saw_before |= c == PowerCut::kBeforeOp;
    }
    EXPECT_TRUE(saw_mid);
    EXPECT_TRUE(saw_before);
}

TEST(FaultInjector, ClearPowerLossRearmsNothing)
{
    FaultInjector inj(tinyGeom(), 5);
    FaultSpec s;
    s.cls = FaultClass::kPowerLoss;
    s.onset = 0;
    s.cutMidProgram = false;
    inj.addFault(s);

    EXPECT_EQ(inj.powerCutOnOp(false), PowerCut::kBeforeOp);
    inj.clearPowerLoss();
    EXPECT_FALSE(inj.powerLost());
    // The fired fault is spent: power stays up indefinitely.
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(inj.powerCutOnOp(i % 2 == 0), PowerCut::kNone);

    // A freshly armed fault fires on its own schedule.
    FaultSpec again = s;
    again.onset = 1;
    inj.addFault(again);
    EXPECT_EQ(inj.powerCutOnOp(false), PowerCut::kNone);
    EXPECT_EQ(inj.powerCutOnOp(false), PowerCut::kBeforeOp);
    EXPECT_TRUE(inj.powerLost());
}

TEST(FaultInjector, StormScheduleIsReproducibleAndTransientOnly)
{
    const auto g = tinyGeom();
    StormConfig sc;
    sc.bursts = 3;
    sc.faultsPerBurst = 5;
    const auto s1 = FaultInjector::stormSchedule(g, 77, sc);
    const auto s2 = FaultInjector::stormSchedule(g, 77, sc);
    const auto s3 = FaultInjector::stormSchedule(g, 78, sc);
    ASSERT_EQ(s1.size(), 15u);
    EXPECT_EQ(s1, s2);
    EXPECT_NE(s1, s3);
    for (const auto &f : s1) {
        EXPECT_TRUE(faultClassTransient(f.cls))
            << "storms draw only transient classes ("
            << faultClassName(f.cls) << ")";
        EXPECT_LT(f.plane, g.planesTotal());
    }
}

TEST(FaultInjector, StormBurstsClusterOnFocusChips)
{
    // With full locality bias every burst lands entirely on one chip.
    const auto g = tinyGeom();
    StormConfig sc;
    sc.bursts = 2;
    sc.faultsPerBurst = 8;
    sc.localityBias = 1.0;
    const auto sched = FaultInjector::stormSchedule(g, 5, sc);
    const std::uint32_t per_chip = g.diesPerChip * g.planesPerDie;
    for (std::uint32_t b = 0; b < sc.bursts; ++b) {
        const std::uint32_t chip0 = sched[b * sc.faultsPerBurst].plane /
                                    per_chip;
        for (std::uint32_t i = 1; i < sc.faultsPerBurst; ++i)
            EXPECT_EQ(sched[b * sc.faultsPerBurst + i].plane / per_chip,
                      chip0)
                << "burst " << b << " fault " << i << " left its focus";
    }
}

TEST(FaultInjector, ClearTransientKeepsPermanentDamage)
{
    const auto g = tinyGeom();
    FaultInjector inj(g, 9);
    FaultSpec dead;
    dead.cls = FaultClass::kDeadPlane;
    dead.plane = 3;
    inj.addFault(dead);
    for (const auto &f : FaultInjector::stormSchedule(g, 9, StormConfig{}))
        inj.addFault(f);
    const std::size_t total = inj.faults().size();
    ASSERT_GT(total, 1u);

    const std::size_t removed = inj.clearTransient();
    EXPECT_EQ(removed, total - 1);
    ASSERT_EQ(inj.faults().size(), 1u);
    EXPECT_EQ(inj.faults()[0].cls, FaultClass::kDeadPlane);
    EXPECT_TRUE(inj.planeDead(3)) << "permanent damage survives the storm";
    // Transient queries all read clean now.
    for (PlaneIndex p = 0; p < g.planesTotal(); ++p) {
        EXPECT_TRUE(inj.stuckBitlines(p).empty());
        EXPECT_DOUBLE_EQ(inj.rberMultiplier(addrInPlane(g, p)), 1.0);
        if (p != 3)
            EXPECT_FALSE(inj.programShouldFail(addrInPlane(g, p)));
    }
    EXPECT_EQ(inj.clearTransient(), 0u) << "idempotent once cleared";
}

TEST(SsdDeviceFaults, ClearTransientFaultsRestoresPlaneState)
{
    SsdDevice dev(SsdConfig::tiny());
    FaultSpec stuck;
    stuck.cls = FaultClass::kStuckBitline;
    stuck.plane = 2;
    stuck.stuckCount = 3;
    dev.injectFault(stuck);
    FaultSpec dead;
    dead.cls = FaultClass::kDeadPlane;
    dead.plane = 1;
    dev.injectFault(dead);

    const PlaneCoord c2 = planeCoord(dev.geometry(), 2);
    ASSERT_EQ(dev.chipAt(c2.channel, c2.chip)
                  .plane(c2.die, c2.plane)
                  .stuckBitlines()
                  .size(),
              3u);

    EXPECT_EQ(dev.clearTransientFaults(), 1u);
    EXPECT_TRUE(dev.chipAt(c2.channel, c2.chip)
                    .plane(c2.die, c2.plane)
                    .stuckBitlines()
                    .empty())
        << "stuck bitlines lift with the storm";
    const PlaneCoord c1 = planeCoord(dev.geometry(), 1);
    EXPECT_FALSE(
        dev.chipAt(c1.channel, c1.chip).planeOperational(c1.die, c1.plane))
        << "a dead plane is permanent";
}

TEST(SsdDeviceFaults, InjectDeadPlaneMarksChipPlane)
{
    SsdDevice dev(SsdConfig::tiny());
    FaultSpec s;
    s.cls = FaultClass::kDeadPlane;
    s.plane = 1;
    dev.injectFault(s);

    const PlaneCoord c = planeCoord(dev.geometry(), 1);
    EXPECT_FALSE(dev.chipAt(c.channel, c.chip).planeOperational(c.die,
                                                                c.plane));
    const PlaneCoord c0 = planeCoord(dev.geometry(), 0);
    EXPECT_TRUE(dev.chipAt(c0.channel, c0.chip).planeOperational(c0.die,
                                                                 c0.plane));
}

TEST(SsdDeviceFaults, InjectStuckBitlinesReachesPlane)
{
    SsdDevice dev(SsdConfig::tiny());
    FaultSpec s;
    s.cls = FaultClass::kStuckBitline;
    s.plane = 2;
    s.stuckCount = 3;
    dev.injectFault(s);

    const PlaneCoord c = planeCoord(dev.geometry(), 2);
    const flash::Plane &pl =
        dev.chipAt(c.channel, c.chip).plane(c.die, c.plane);
    EXPECT_EQ(pl.stuckBitlines().size(), 3u);
    EXPECT_EQ(pl.stuckBitlines(), dev.faultInjector().stuckBitlines(2));
}

TEST(SsdDeviceFaults, ProgramFailureRetiresBlockAndRemaps)
{
    SsdConfig cfg = SsdConfig::tiny();
    SsdDevice dev(cfg);
    FaultSpec s;
    s.cls = FaultClass::kProgramFailure;
    s.plane = 0;
    s.failPeriod = 1; // every program into plane 0 fails
    dev.injectFault(s);

    // Write pages across the device; writes allocated to plane 0 must
    // retire its blocks and land elsewhere, never failing the host op.
    BitVector d(dev.geometry().pageBits());
    for (Lpn l = 0; l < 32; ++l) {
        std::vector<PhysOp> ops;
        EXPECT_TRUE(dev.ftl().writePage(l, &d, ops));
        const auto a = dev.ftl().lookup(l);
        ASSERT_TRUE(a.has_value());
        const PlaneIndex p = planeIndex(
            dev.geometry(), {a->channel, a->chip, a->die, a->plane});
        EXPECT_NE(p, 0u) << "LPN " << l << " mapped into the failing plane";
    }
    EXPECT_GT(dev.ftl().programFailures(), 0u);
    EXPECT_GT(dev.ftl().retiredBlocks(), 0u);
    // Data stays readable after the retirement storm.
    std::vector<PhysOp> ops;
    EXPECT_EQ(dev.ftl().readPage(0, ops), d);
}

} // namespace
} // namespace parabit::ssd
