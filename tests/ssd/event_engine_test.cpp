/**
 * @file
 * Discrete-event engine tests: ordering, determinism, time monotonicity.
 */

#include <gtest/gtest.h>

#include "ssd/event_engine.hpp"

namespace parabit::ssd {
namespace {

TEST(EventEngine, StartsAtZero)
{
    EventEngine e;
    EXPECT_EQ(e.now(), 0u);
    EXPECT_EQ(e.pending(), 0u);
    EXPECT_FALSE(e.runOne());
}

TEST(EventEngine, ExecutesInTimeOrder)
{
    EventEngine e;
    std::vector<int> order;
    e.schedule(30, [&] { order.push_back(3); });
    e.schedule(10, [&] { order.push_back(1); });
    e.schedule(20, [&] { order.push_back(2); });
    e.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(e.now(), 30u);
}

TEST(EventEngine, TiesBreakByInsertionOrder)
{
    EventEngine e;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        e.schedule(100, [&order, i] { order.push_back(i); });
    e.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventEngine, EventsCanScheduleEvents)
{
    EventEngine e;
    int fired = 0;
    e.schedule(10, [&] {
        ++fired;
        e.scheduleAfter(5, [&] { ++fired; });
    });
    const Tick end = e.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(end, 15u);
}

TEST(EventEngine, PastSchedulingDies)
{
    EventEngine e;
    e.schedule(100, [] {});
    e.runOne();
    EXPECT_DEATH(e.schedule(50, [] {}), "past");
}

TEST(EventEngine, RunOneAdvancesStepwise)
{
    EventEngine e;
    e.schedule(1, [] {});
    e.schedule(2, [] {});
    EXPECT_TRUE(e.runOne());
    EXPECT_EQ(e.now(), 1u);
    EXPECT_EQ(e.pending(), 1u);
    EXPECT_TRUE(e.runOne());
    EXPECT_FALSE(e.runOne());
}

} // namespace
} // namespace parabit::ssd
