/**
 * @file
 * Discrete-event engine tests: ordering, determinism, time monotonicity.
 */

#include <gtest/gtest.h>

#include "ssd/event_engine.hpp"

namespace parabit::ssd {
namespace {

TEST(EventEngine, StartsAtZero)
{
    EventEngine e;
    EXPECT_EQ(e.now(), 0u);
    EXPECT_EQ(e.pending(), 0u);
    EXPECT_FALSE(e.runOne());
}

TEST(EventEngine, ExecutesInTimeOrder)
{
    EventEngine e;
    std::vector<int> order;
    e.schedule(30, [&] { order.push_back(3); });
    e.schedule(10, [&] { order.push_back(1); });
    e.schedule(20, [&] { order.push_back(2); });
    e.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(e.now(), 30u);
}

TEST(EventEngine, TiesBreakByInsertionOrder)
{
    EventEngine e;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        e.schedule(100, [&order, i] { order.push_back(i); });
    e.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventEngine, EventsCanScheduleEvents)
{
    EventEngine e;
    int fired = 0;
    e.schedule(10, [&] {
        ++fired;
        e.scheduleAfter(5, [&] { ++fired; });
    });
    const Tick end = e.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(end, 15u);
}

TEST(EventEngine, PastSchedulingDies)
{
    EventEngine e;
    e.schedule(100, [] {});
    e.runOne();
    EXPECT_DEATH(e.schedule(50, [] {}), "past");
}

TEST(EventEngine, RunOneAdvancesStepwise)
{
    EventEngine e;
    e.schedule(1, [] {});
    e.schedule(2, [] {});
    EXPECT_TRUE(e.runOne());
    EXPECT_EQ(e.now(), 1u);
    EXPECT_EQ(e.pending(), 1u);
    EXPECT_TRUE(e.runOne());
    EXPECT_FALSE(e.runOne());
}

TEST(EventEngine, RunUntilStopsAtBoundary)
{
    EventEngine e;
    std::vector<int> order;
    e.schedule(10, [&] { order.push_back(1); });
    e.schedule(20, [&] { order.push_back(2); });
    e.schedule(30, [&] { order.push_back(3); });
    EXPECT_EQ(e.runUntil(20), 20u);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(e.now(), 20u);
    EXPECT_EQ(e.pending(), 1u);
    // Resuming picks up the remainder.
    EXPECT_EQ(e.runUntil(100), 100u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventEngine, RunUntilAdvancesIdleTime)
{
    EventEngine e;
    EXPECT_EQ(e.runUntil(500), 500u);
    EXPECT_EQ(e.now(), 500u);
    // A target in the past never rewinds the clock.
    EXPECT_EQ(e.runUntil(100), 500u);
    EXPECT_EQ(e.now(), 500u);
}

TEST(EventEngine, RunUntilRunsCascadedEventsInsideWindow)
{
    EventEngine e;
    int fired = 0;
    e.schedule(10, [&] {
        ++fired;
        e.scheduleAfter(5, [&] { ++fired; });   // at 15: inside
        e.scheduleAfter(100, [&] { ++fired; }); // at 110: outside
    });
    e.runUntil(50);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(e.pending(), 1u);
}

TEST(EventEngine, HaltDrainsNothingFurther)
{
    EventEngine e;
    int fired = 0;
    e.schedule(10, [&] { ++fired; });
    e.schedule(20, [&] {
        ++fired;
        e.halt(); // power cut mid-simulation
    });
    e.schedule(30, [&] { ++fired; });
    const Tick end = e.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(end, 20u);
    EXPECT_TRUE(e.halted());
    EXPECT_EQ(e.pending(), 0u);
    // Everything after the halt is inert.
    e.schedule(40, [&] { ++fired; });
    EXPECT_EQ(e.pending(), 0u);
    EXPECT_FALSE(e.runOne());
    EXPECT_EQ(e.runUntil(100), 20u);
    EXPECT_EQ(fired, 2);
}

} // namespace
} // namespace parabit::ssd
