/**
 * @file
 * Baseline-model tests: interconnect bandwidth calibration, Ambit
 * command-round latencies, ISC throughput, and pipeline composition.
 */

#include <gtest/gtest.h>

#include "baselines/ambit.hpp"
#include "baselines/interconnect.hpp"
#include "baselines/isc.hpp"
#include "baselines/pipeline.hpp"

namespace parabit::baselines {
namespace {

TEST(Interconnect, DefaultBandwidthMatchesPaperFig4)
{
    // 144 GB of pre-processed images (200K x 0.72 MB) must take about
    // 43.9 s on the PIM path (paper Fig 4).
    Interconnect link;
    const double sec = link.transferSeconds(Bytes{144'000'000'000});
    EXPECT_NEAR(sec, 43.9, 0.5);
}

TEST(Interconnect, IscAttachmentIsSlightlyFaster)
{
    Interconnect pim, isc{InterconnectConfig::iscAttachment()};
    const Bytes n = 144'000'000'000;
    EXPECT_LT(isc.transferSeconds(n), pim.transferSeconds(n));
    EXPECT_NEAR(isc.transferSeconds(n), 41.8, 0.5);
}

TEST(Interconnect, TransferIsLinear)
{
    Interconnect link;
    EXPECT_NEAR(link.transferSeconds(2 * bytes::kGiB),
                2 * link.transferSeconds(bytes::kGiB), 1e-12);
}

TEST(Ambit, CommandRoundsPerOp)
{
    EXPECT_EQ(AmbitModel::commandRounds(flash::BitwiseOp::kAnd), 4);
    EXPECT_EQ(AmbitModel::commandRounds(flash::BitwiseOp::kOr), 4);
    EXPECT_EQ(AmbitModel::commandRounds(flash::BitwiseOp::kNand), 4);
    EXPECT_EQ(AmbitModel::commandRounds(flash::BitwiseOp::kNor), 4);
    EXPECT_EQ(AmbitModel::commandRounds(flash::BitwiseOp::kXor), 7);
    EXPECT_EQ(AmbitModel::commandRounds(flash::BitwiseOp::kXnor), 7);
    EXPECT_EQ(AmbitModel::commandRounds(flash::BitwiseOp::kNotLsb), 1);
}

TEST(Ambit, RoundLatencyFromDramTiming)
{
    AmbitModel m;
    EXPECT_NEAR(m.roundSeconds(), (35.0 + 13.75) * 1e-9, 1e-15);
    EXPECT_NEAR(m.sliceSeconds(flash::BitwiseOp::kAnd), 4 * 48.75e-9,
                1e-15);
}

TEST(Ambit, LargeOperandsSerialiseInto16KSlices)
{
    AmbitModel m;
    const Bytes eight_mb = 8 * bytes::kMiB;
    const double t = m.opSeconds(flash::BitwiseOp::kNotMsb, eight_mb);
    // 512 slices x 1 round x 48.75 ns ~= 25 us.
    EXPECT_NEAR(t, 512 * 48.75e-9, 1e-12);
}

TEST(Ambit, CapacityIs64GiB)
{
    AmbitModel m;
    EXPECT_EQ(m.capacityBytes(), 64 * bytes::kGiB);
}

TEST(Isc, ThroughputFromLutArray)
{
    IscModel m;
    EXPECT_NEAR(m.bitsPerSecond(), 218600.0 * 100e6 * 0.325, 1.0);
}

TEST(Isc, SingleSmallOpIsOnePassLatency)
{
    IscModel m;
    EXPECT_DOUBLE_EQ(m.opSeconds(flash::BitwiseOp::kAnd, 8), 10e-9);
}

TEST(Isc, SerialChainsCostOnePassPerOp)
{
    IscModel m;
    const Bytes n = bytes::kMiB;
    EXPECT_NEAR(m.chainSeconds(6, n) / m.chainSeconds(3, n), 2.0, 1e-9);
}

TEST(Isc, FusedExpressionsFoldFiveOpsPerPass)
{
    IscModel m;
    const Bytes n = bytes::kMiB;
    const double five = m.fusedChainSeconds(5, n);
    const double six = m.fusedChainSeconds(6, n);
    EXPECT_NEAR(six / five, 2.0, 1e-9) << "6 ops need a second pass";
    EXPECT_NEAR(m.chainSeconds(5, n) / five, 5.0, 1e-9);
}

TEST(Isc, EightMegabyteOpBeatsParaBitSense)
{
    // Fig 13(b): with two 8 MB operands, ISC is the fastest scheme —
    // its streaming time must undercut even ParaBit's single 25 us SRO.
    IscModel m;
    EXPECT_LT(m.opSeconds(flash::BitwiseOp::kAnd, 8 * bytes::kMiB), 25e-6);
}

TEST(Isc, BitmapAnchorFromPaper)
{
    // 364 chained ANDs over 100 MB vectors ~= 41 ms (paper 5.3.2).
    IscModel m;
    const double sec = m.chainSeconds(364, Bytes{100'000'000});
    EXPECT_NEAR(sec, 41e-3, 10e-3);
}

TEST(Pipeline, PimTotalIsSumOfStages)
{
    PimPipeline pim{AmbitModel{}, Interconnect{}};
    BulkWork w;
    w.bytesIn = 10 * bytes::kGiB;
    w.bytesOut = bytes::kGiB;
    w.ops.push_back(BulkOpGroup{flash::BitwiseOp::kAnd, bytes::kGiB, 3, 1});
    const Breakdown b = pim.run(w);
    EXPECT_GT(b.moveInSec, 0.0);
    EXPECT_GT(b.computeSec, 0.0);
    EXPECT_NEAR(b.totalSec,
                b.moveInSec + b.computeSec + b.moveOutSec + b.writebackSec,
                1e-12);
    EXPECT_GT(b.moveInSec, b.computeSec)
        << "movement must dominate (the paper's motivation)";
}

TEST(Pipeline, ParaBitHasNoMoveIn)
{
    core::CostModel cm(ssd::SsdConfig::paperSsd());
    ParaBitPipeline pb{cm, Interconnect{}, core::Mode::kPreAllocated, false};
    BulkWork w;
    w.bytesIn = 10 * bytes::kGiB; // ignored: data already in flash
    w.bytesOut = bytes::kGiB;
    w.ops.push_back(
        BulkOpGroup{flash::BitwiseOp::kAnd, 64 * bytes::kMiB, 2, 1});
    const Breakdown b = pb.run(w);
    EXPECT_EQ(b.moveInSec, 0.0);
    EXPECT_GT(b.computeSec, 0.0);
    EXPECT_GT(b.moveOutSec, 0.0);
}

TEST(Pipeline, PipelinedParaBitOverlapsMoveOut)
{
    core::CostModel cm(ssd::SsdConfig::paperSsd());
    BulkWork w;
    w.bytesOut = 16 * bytes::kGiB;
    w.ops.push_back(
        BulkOpGroup{flash::BitwiseOp::kAnd, 64 * bytes::kMiB, 2, 1});
    ParaBitPipeline seq{cm, Interconnect{}, core::Mode::kPreAllocated, false};
    ParaBitPipeline pipe{cm, Interconnect{}, core::Mode::kPreAllocated, true};
    const Breakdown bs = seq.run(w);
    const Breakdown bp = pipe.run(w);
    EXPECT_LT(bp.totalSec, bs.totalSec);
    EXPECT_NEAR(bp.totalSec, std::max(bs.computeSec, bs.moveOutSec), 1e-9);
}

TEST(Pipeline, ReallocModeReportsWriteTraffic)
{
    core::CostModel cm(ssd::SsdConfig::paperSsd());
    ParaBitPipeline pb{cm, Interconnect{}, core::Mode::kReAllocate, false};
    BulkWork w;
    w.ops.push_back(
        BulkOpGroup{flash::BitwiseOp::kXor, 8 * bytes::kMiB, 2, 10});
    pb.run(w);
    EXPECT_GT(pb.lastCost().reallocBytes, 0u);
    EXPECT_GT(pb.lastCost().pagePrograms, 0u);
}

} // namespace
} // namespace parabit::baselines
