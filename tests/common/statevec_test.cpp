/**
 * @file
 * Unit tests for the four-state logic vector.
 */

#include <gtest/gtest.h>

#include "common/statevec.hpp"

namespace parabit {
namespace {

TEST(StateVec, DefaultIsZero)
{
    StateVec v;
    EXPECT_EQ(v, statevec::kAllZero);
    EXPECT_EQ(v.toString(), "0000");
}

TEST(StateVec, ConstructionAndAt)
{
    StateVec v(true, false, true, true);
    EXPECT_TRUE(v.at(0));
    EXPECT_FALSE(v.at(1));
    EXPECT_TRUE(v.at(2));
    EXPECT_TRUE(v.at(3));
    EXPECT_EQ(v.toString(), "1011");
}

TEST(StateVec, FromString)
{
    EXPECT_EQ(StateVec::fromString("0111").toString(), "0111");
    EXPECT_EQ(StateVec::fromString("0000"), statevec::kAllZero);
    EXPECT_EQ(StateVec::fromString("1111"), statevec::kAllOne);
}

TEST(StateVec, PaperAlgebra)
{
    // The exact identity used throughout the paper:
    // L(A) = L(A)_old AND NOT L(SO), with L(A)_old=1111, L(SO)=0011.
    const StateVec a_old = statevec::kAllOne;
    const StateVec so = StateVec::fromString("0011");
    EXPECT_EQ((a_old & ~so).toString(), "1100");
}

TEST(StateVec, ComplementIsInvolutive)
{
    for (int m = 0; m < 16; ++m) {
        StateVec v((m >> 3) & 1, (m >> 2) & 1, (m >> 1) & 1, m & 1);
        EXPECT_EQ(~~v, v);
    }
}

TEST(StateVec, AndOrTruthExhaustive)
{
    for (int a = 0; a < 16; ++a) {
        for (int b = 0; b < 16; ++b) {
            StateVec va((a >> 3) & 1, (a >> 2) & 1, (a >> 1) & 1, a & 1);
            StateVec vb((b >> 3) & 1, (b >> 2) & 1, (b >> 1) & 1, b & 1);
            for (int s = 0; s < 4; ++s) {
                EXPECT_EQ((va & vb).at(s), va.at(s) && vb.at(s));
                EXPECT_EQ((va | vb).at(s), va.at(s) || vb.at(s));
            }
        }
    }
}

TEST(StateVec, ConstexprUsable)
{
    constexpr StateVec v(true, false, false, true);
    static_assert(v.at(0) && !v.at(1) && !v.at(2) && v.at(3));
    static_assert((~v).at(1));
}

} // namespace
} // namespace parabit
