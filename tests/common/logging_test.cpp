/**
 * @file
 * Unit tests for the logging helpers: threshold filtering, the
 * pluggable sink, and the logError convenience wrapper.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/logging.hpp"

namespace parabit {
namespace {

/** Installs a capturing sink for the test's scope, then restores. */
class SinkCapture
{
  public:
    SinkCapture()
        : previous_(setLogSink([this](LogLevel level,
                                      const std::string &msg) {
              lines_.emplace_back(level, msg);
          }))
    {
    }

    ~SinkCapture() { setLogSink(std::move(previous_)); }

    const std::vector<std::pair<LogLevel, std::string>> &lines() const
    {
        return lines_;
    }

  private:
    LogSink previous_;
    std::vector<std::pair<LogLevel, std::string>> lines_;
};

TEST(Logging, SinkCapturesMessages)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::kDebug);
    {
        SinkCapture cap;
        logDebug("d");
        logInfo("i");
        logWarn("w");
        logError("e");
        ASSERT_EQ(cap.lines().size(), 4u);
        EXPECT_EQ(cap.lines()[0].first, LogLevel::kDebug);
        EXPECT_EQ(cap.lines()[3].first, LogLevel::kError);
        EXPECT_EQ(cap.lines()[3].second, "e");
    }
    setLogLevel(saved);
}

TEST(Logging, ThresholdFiltersBeforeSink)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::kError);
    {
        SinkCapture cap;
        logDebug("hidden");
        logWarn("hidden");
        logError("visible");
        ASSERT_EQ(cap.lines().size(), 1u);
        EXPECT_EQ(cap.lines()[0].second, "visible");
    }
    setLogLevel(saved);
}

TEST(Logging, SetLogSinkReturnsPrevious)
{
    std::vector<std::string> outer;
    LogSink original =
        setLogSink([&outer](LogLevel, const std::string &m) {
            outer.push_back(m);
        });
    // Swap in a second sink; the first must come back out.
    LogSink first = setLogSink({});
    EXPECT_TRUE(static_cast<bool>(first));
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::kInfo);
    first(LogLevel::kInfo, "direct");
    EXPECT_EQ(outer, std::vector<std::string>{"direct"});
    setLogLevel(saved);
    setLogSink(std::move(original)); // restore the default
}

TEST(Logging, LevelNames)
{
    EXPECT_STREQ(logLevelName(LogLevel::kDebug), "DEBUG");
    EXPECT_STREQ(logLevelName(LogLevel::kInfo), "INFO");
    EXPECT_STREQ(logLevelName(LogLevel::kWarn), "WARN");
    EXPECT_STREQ(logLevelName(LogLevel::kError), "ERROR");
}

} // namespace
} // namespace parabit
