/**
 * @file
 * Unit tests for BitVector.
 */

#include <gtest/gtest.h>

#include "common/bitvector.hpp"
#include "common/rng.hpp"

namespace parabit {
namespace {

TEST(BitVector, DefaultIsEmpty)
{
    BitVector v;
    EXPECT_EQ(v.size(), 0u);
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVector, ConstructFilled)
{
    BitVector z(100, false);
    BitVector o(100, true);
    EXPECT_EQ(z.popcount(), 0u);
    EXPECT_EQ(o.popcount(), 100u);
    for (std::size_t i = 0; i < 100; ++i) {
        EXPECT_FALSE(z.get(i));
        EXPECT_TRUE(o.get(i));
    }
}

TEST(BitVector, TailMaskedAfterFill)
{
    // 70 bits spans two words; the upper 58 bits of word 1 must stay 0.
    BitVector v(70, true);
    EXPECT_EQ(v.popcount(), 70u);
    EXPECT_EQ(v.words()[1], (std::uint64_t{1} << 6) - 1);
}

TEST(BitVector, SetGet)
{
    BitVector v(130);
    v.set(0, true);
    v.set(64, true);
    v.set(129, true);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(129));
    EXPECT_FALSE(v.get(1));
    EXPECT_EQ(v.popcount(), 3u);
    v.set(64, false);
    EXPECT_FALSE(v.get(64));
    EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVector, FromStringAndToString)
{
    const std::string s = "0110100111";
    BitVector v = BitVector::fromString(s);
    EXPECT_EQ(v.size(), s.size());
    EXPECT_EQ(v.toString(), s);
    EXPECT_EQ(v.popcount(), 6u);
}

TEST(BitVector, FromStringRejectsBadChars)
{
    EXPECT_THROW(BitVector::fromString("01x"), std::invalid_argument);
}

TEST(BitVector, BitwiseOperators)
{
    BitVector a = BitVector::fromString("1100");
    BitVector b = BitVector::fromString("1010");
    EXPECT_EQ((a & b).toString(), "1000");
    EXPECT_EQ((a | b).toString(), "1110");
    EXPECT_EQ((a ^ b).toString(), "0110");
    EXPECT_EQ((~a).toString(), "0011");
}

TEST(BitVector, InvertKeepsTailInvariant)
{
    BitVector v(65);
    v.invert();
    EXPECT_EQ(v.popcount(), 65u);
    v.invert();
    EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVector, SliceAndAssign)
{
    BitVector v = BitVector::fromString("110101101");
    BitVector s = v.slice(2, 5);
    EXPECT_EQ(s.toString(), "01011");
    BitVector w(9);
    w.assign(2, s);
    EXPECT_EQ(w.toString(), "000101100");
}

TEST(BitVector, ResizePreservesPrefixAndZeroesNewBits)
{
    BitVector v = BitVector::fromString("1111");
    v.resize(8);
    EXPECT_EQ(v.toString(), "11110000");
    v.resize(2);
    EXPECT_EQ(v.toString(), "11");
    // Growing again after shrink must not resurrect stale bits.
    v.resize(6);
    EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVector, EqualityRespectsSizeAndContent)
{
    BitVector a(10, true), b(10, true), c(11, true);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    b.set(3, false);
    EXPECT_NE(a, b);
}

TEST(BitVector, DeMorganPropertyOnRandomData)
{
    Rng rng(123);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 1 + rng.below(500);
        BitVector a(n), b(n);
        for (std::size_t i = 0; i < n; ++i) {
            a.set(i, rng.chance(0.5));
            b.set(i, rng.chance(0.5));
        }
        EXPECT_EQ(~(a & b), (~a | ~b));
        EXPECT_EQ(~(a | b), (~a & ~b));
        EXPECT_EQ((a ^ b), ((a | b) & ~(a & b)));
    }
}

TEST(BitVector, PopcountMatchesNaiveOnRandomData)
{
    Rng rng(321);
    BitVector v(1000);
    std::size_t expected = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
        const bool bit = rng.chance(0.3);
        v.set(i, bit);
        expected += bit;
    }
    EXPECT_EQ(v.popcount(), expected);
}

} // namespace
} // namespace parabit
