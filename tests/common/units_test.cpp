/**
 * @file
 * Unit tests for time/size unit helpers.
 */

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace parabit {
namespace {

TEST(Units, TickConversionsRoundTrip)
{
    EXPECT_EQ(ticks::fromNs(13.75), 13750u);
    EXPECT_EQ(ticks::fromUs(25), 25u * 1000 * 1000);
    EXPECT_EQ(ticks::fromMs(3.5), Tick{3500} * 1000 * 1000);
    EXPECT_DOUBLE_EQ(ticks::toNs(ticks::fromNs(35)), 35.0);
    EXPECT_DOUBLE_EQ(ticks::toUs(ticks::fromUs(640)), 640.0);
    EXPECT_DOUBLE_EQ(ticks::toSec(ticks::kSecond), 1.0);
}

TEST(Units, FractionalNanosecondsPreserved)
{
    // DRAM timing: tRCD = 13.75 ns must not round to 13 or 14.
    const Tick t = ticks::fromNs(13.75);
    EXPECT_DOUBLE_EQ(ticks::toNs(t), 13.75);
}

TEST(Units, ByteHelpers)
{
    EXPECT_EQ(bytes::kKiB, 1024u);
    EXPECT_EQ(bytes::kMiB, 1024u * 1024);
    EXPECT_DOUBLE_EQ(bytes::toMiB(8 * bytes::kMiB), 8.0);
    EXPECT_DOUBLE_EQ(bytes::toGiB(512 * bytes::kGiB), 512.0);
}

TEST(Units, LargeSimTimesFit)
{
    // 1000 simulated seconds in picoseconds stays well inside 64 bits.
    const Tick t = ticks::fromSec(1000.0);
    EXPECT_DOUBLE_EQ(ticks::toSec(t), 1000.0);
}

} // namespace
} // namespace parabit
