/**
 * @file
 * Unit tests for statistics accumulators.
 */

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace parabit {
namespace {

TEST(ScalarStat, EmptyIsSafe)
{
    ScalarStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(ScalarStat, TracksMoments)
{
    ScalarStat s;
    s.sample(2.0);
    s.sample(4.0);
    s.sample(9.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.sum(), 15.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(ScalarStat, ResetClears)
{
    ScalarStat s;
    s.sample(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    s.sample(-3.0);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), -3.0);
}

TEST(Histogram, BucketsValues)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.sample(i + 0.5);
    for (std::size_t b = 0; b < 10; ++b)
        EXPECT_EQ(h.bucketCount(b), 1u);
    EXPECT_EQ(h.total(), 10u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, UnderAndOverflow)
{
    Histogram h(0.0, 1.0, 4);
    h.sample(-0.1);
    h.sample(1.0); // hi edge counts as overflow ([lo, hi) semantics)
    h.sample(2.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BucketEdges)
{
    Histogram h(0.0, 4.0, 4);
    EXPECT_DOUBLE_EQ(h.bucketLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketLo(3), 3.0);
    h.sample(0.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
}

} // namespace
} // namespace parabit
