/**
 * @file
 * Unit tests for statistics accumulators.
 */

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace parabit {
namespace {

TEST(ScalarStat, EmptyIsSafe)
{
    ScalarStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(ScalarStat, TracksMoments)
{
    ScalarStat s;
    s.sample(2.0);
    s.sample(4.0);
    s.sample(9.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.sum(), 15.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(ScalarStat, ResetClears)
{
    ScalarStat s;
    s.sample(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    s.sample(-3.0);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), -3.0);
}

TEST(Histogram, BucketsValues)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.sample(i + 0.5);
    for (std::size_t b = 0; b < 10; ++b)
        EXPECT_EQ(h.bucketCount(b), 1u);
    EXPECT_EQ(h.total(), 10u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, UnderAndOverflow)
{
    Histogram h(0.0, 1.0, 4);
    h.sample(-0.1);
    h.sample(1.0); // hi edge counts as overflow ([lo, hi) semantics)
    h.sample(2.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BucketEdges)
{
    Histogram h(0.0, 4.0, 4);
    EXPECT_DOUBLE_EQ(h.bucketLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketLo(3), 3.0);
    h.sample(0.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
}

TEST(Histogram, BucketLoWithNegativeRange)
{
    Histogram h(-2.0, 2.0, 4);
    EXPECT_DOUBLE_EQ(h.bucketLo(0), -2.0);
    EXPECT_DOUBLE_EQ(h.bucketLo(2), 0.0);
    h.sample(-1.5);
    EXPECT_EQ(h.bucketCount(0), 1u);
    h.sample(1.99);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, SummaryFormatting)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_EQ(h.summary(), "hist[0,10) n=0");
    h.sample(5.0);
    EXPECT_EQ(h.summary(), "hist[0,10) n=1");
    h.sample(-1.0);
    h.sample(10.0);
    h.sample(11.0);
    EXPECT_EQ(h.summary(), "hist[0,10) n=4 under=1 over=2");
}

TEST(Histogram, ResetPreservesLayout)
{
    Histogram h(0.0, 10.0, 5);
    h.sample(-1.0);
    h.sample(3.0);
    h.sample(42.0);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    for (std::size_t b = 0; b < h.buckets(); ++b)
        EXPECT_EQ(h.bucketCount(b), 0u);
    // Layout survives: same bucket edges, sampling works again.
    EXPECT_DOUBLE_EQ(h.bucketLo(2), 4.0);
    h.sample(3.0);
    EXPECT_EQ(h.bucketCount(1), 1u);
}

TEST(SampleSeries, ExactBelowCap)
{
    SampleSeries s(8);
    for (int i = 0; i < 8; ++i)
        s.sample(i);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_EQ(s.stored(), 8u);
    // Every sample kept: percentiles are exact.
    EXPECT_DOUBLE_EQ(s.percentile(100), 7.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 3.0);
}

TEST(SampleSeries, ReservoirCapsStorage)
{
    SampleSeries s(16);
    for (int i = 0; i < 10000; ++i)
        s.sample(i);
    EXPECT_EQ(s.count(), 10000u);
    EXPECT_EQ(s.stored(), 16u);
    EXPECT_EQ(s.cap(), 16u);
    // Scalar moments see every sample regardless of the reservoir.
    EXPECT_DOUBLE_EQ(s.max(), 9999.0);
    EXPECT_DOUBLE_EQ(s.mean(), 4999.5);
    // The reservoir holds a genuine subset of the stream.
    for (double p : {10.0, 50.0, 90.0}) {
        const double v = s.percentile(p);
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 9999.0);
    }
}

TEST(SampleSeries, ReservoirIsDeterministic)
{
    SampleSeries a(8), b(8);
    for (int i = 0; i < 5000; ++i) {
        a.sample(i * 0.5);
        b.sample(i * 0.5);
    }
    for (double p : {1.0, 25.0, 50.0, 75.0, 99.0})
        EXPECT_DOUBLE_EQ(a.percentile(p), b.percentile(p));
    // reset() reseeds the reservoir stream: replays identically too.
    a.reset();
    for (int i = 0; i < 5000; ++i)
        a.sample(i * 0.5);
    for (double p : {1.0, 25.0, 50.0, 75.0, 99.0})
        EXPECT_DOUBLE_EQ(a.percentile(p), b.percentile(p));
}

TEST(SampleSeries, ZeroCapKeepsEverything)
{
    SampleSeries s;
    for (int i = 0; i < 1000; ++i)
        s.sample(i);
    EXPECT_EQ(s.stored(), 1000u);
    EXPECT_DOUBLE_EQ(s.percentile(99), 989.0);
}

} // namespace
} // namespace parabit
