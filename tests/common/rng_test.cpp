/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace parabit {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(11);
    int counts[8] = {};
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.below(8)];
    for (int c : counts) {
        EXPECT_GT(c, n / 8 - n / 80);
        EXPECT_LT(c, n / 8 + n / 80);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(17);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.2);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.2, 0.01);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(5);
    Rng child = a.fork();
    // The forked stream must not mirror the parent.
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == child.next();
    EXPECT_EQ(same, 0);
}

} // namespace
} // namespace parabit
