/**
 * @file
 * parabit-model: clean bounded exploration across all three policies,
 * POR soundness, and the pinned counterexample-replay round trip
 * (corrupt -> finding with decision trace -> JSON -> parse -> replay
 * reproduces the same violation).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "model.hpp"

namespace parabit::model {
namespace {

TEST(Model, AlphabetCoversWritesReadsTrimAndCrash)
{
    ModelOptions opts;
    const std::vector<Action> a = actionAlphabet(opts);
    ASSERT_EQ(a.size(), 6u); // W0 W1 R0 R1 T0 CRASH
    EXPECT_EQ(a[0].describe(), "W(0)");
    EXPECT_EQ(a[5].describe(), "CRASH");
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].index, static_cast<int>(i));

    opts.faultBudget = 0;
    EXPECT_EQ(actionAlphabet(opts).size(), 5u); // no crash action
}

TEST(Model, CleanBoundedExplorationAllPolicies)
{
    ModelOptions opts; // depth 3, 1 fault point, all three policies
    const ModelReport r = runModel(opts);
    EXPECT_TRUE(r.ok()) << toJson(r, opts);
    EXPECT_GE(r.maxDepth, 3u);
    EXPECT_GT(r.pathsExplored, 0u);
    EXPECT_GT(r.pathsPruned, 0u);
    EXPECT_GT(r.crashesInjected, 0u);
    EXPECT_GT(r.checksRun, 0u);
    EXPECT_EQ(r.auditsRun, r.actionsApplied); // one audit per action
}

TEST(Model, PartialOrderReductionIsSound)
{
    // POR must cut paths without changing the verdict: both runs clean,
    // the reduced one strictly smaller.
    ModelOptions por;
    por.depth = 3;
    por.policies = {"fcfs"};
    ModelOptions full = por;
    full.por = false;
    const ModelReport a = runModel(por);
    const ModelReport b = runModel(full);
    EXPECT_TRUE(a.ok());
    EXPECT_TRUE(b.ok());
    EXPECT_LT(a.pathsExplored, b.pathsExplored);
    EXPECT_EQ(b.pathsPruned, 0u);
}

TEST(Model, JsonReportCarriesSchemaAndProvenance)
{
    ModelOptions opts;
    opts.depth = 1;
    opts.policies = {"fcfs"};
    const ModelReport r = runModel(opts);
    const std::string json = toJson(r, opts);
    EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"tool\": \"parabit-model\""), std::string::npos);
    EXPECT_NE(json.find("\"config\""), std::string::npos);
    EXPECT_NE(json.find("\"seed\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"policies\": [\"fcfs\"]"), std::string::npos);
}

TEST(Model, PinnedCounterexampleReplaysFromJson)
{
    // Corrupt the FTL mapping of LPN 0 right after the first action:
    // every path opening with W(0) now violates ftl.map.bijection, and
    // the very first explored path — [0, 0] — is the pinned
    // counterexample whose decision trace must survive the JSON round
    // trip and reproduce the same violation on replay.
    ModelOptions opts;
    opts.depth = 2;
    opts.policies = {"fcfs"};
    opts.corruptAfterStep = 0;
    opts.corruptLpn = 0;
    const ModelReport found = runModel(opts);
    ASSERT_FALSE(found.ok());
    const ModelFinding &f = found.findings.front();
    EXPECT_EQ(f.check, "invariant");
    EXPECT_EQ(f.subject, "ftl.map.bijection");
    EXPECT_EQ(f.path, std::vector<int>{0}); // pinned: corrupted W(0)

    const std::string json = toJson(found, opts);
    std::vector<int> path;
    std::uint64_t seed = 0;
    std::string err;
    ASSERT_TRUE(parseTrace(json, path, seed, err)) << err;
    EXPECT_EQ(path, f.path);
    EXPECT_EQ(seed, opts.seed);

    const ModelReport replayed = replayPath(opts, path);
    ASSERT_FALSE(replayed.ok());
    EXPECT_EQ(replayed.findings.front().check, "invariant");
    EXPECT_EQ(replayed.findings.front().subject, "ftl.map.bijection");
}

TEST(Model, ReplayOfCleanPathStaysClean)
{
    ModelOptions opts;
    opts.policies = {"fcfs", "read_priority"};
    const ModelReport r = replayPath(opts, {0, 5, 2}); // W0, CRASH, R0
    EXPECT_TRUE(r.ok()) << toJson(r, opts);
    EXPECT_EQ(r.pathsExplored, 1u);
    EXPECT_EQ(r.crashesInjected, 2u); // once per policy
}

TEST(Model, ParseTraceRejectsGarbage)
{
    std::vector<int> path;
    std::uint64_t seed = 0;
    std::string err;
    EXPECT_FALSE(parseTrace("{}", path, seed, err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(parseTrace("{\"path\": []}", path, seed, err));
}

} // namespace
} // namespace parabit::model
