/**
 * @file
 * Unit tests for the parabit-lint rules (positive and negative snippets
 * per rule) plus the enforcement test: the real src/ and tools/ trees
 * must lint clean.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "lint.hpp"

namespace parabit::lint {
namespace {

std::vector<Finding>
lintCpp(const std::string &content)
{
    SourceInfo info;
    info.guardPath = "flash/sample.cpp";
    return lintSource("flash/sample.cpp", content, info);
}

std::vector<Finding>
lintHpp(const std::string &content, const std::string &path = "flash/sample.hpp")
{
    SourceInfo info;
    info.guardPath = path;
    return lintSource(path, content, info);
}

bool
hasRule(const std::vector<Finding> &fs, const std::string &rule)
{
    return std::any_of(fs.begin(), fs.end(), [&](const Finding &f) {
        return f.rule == rule;
    });
}

TEST(LintDuration, FlagsConstructionOutsideAllowlist)
{
    const auto fs = lintCpp("Tick t = ticks::fromUs(25);\n");
    ASSERT_TRUE(hasRule(fs, "naked-duration"));
    EXPECT_EQ(fs[0].line, 1);

    EXPECT_TRUE(hasRule(lintCpp("Tick t = 100 * ticks::kMicrosecond;\n"),
                        "naked-duration"));
}

TEST(LintDuration, AllowsConversionsAndAllowlistedFiles)
{
    EXPECT_FALSE(hasRule(lintCpp("double s = ticks::toSec(t);\n"),
                         "naked-duration"));
    SourceInfo info;
    info.guardPath = "flash/timing.hpp";
    info.durationAllowed = true;
    EXPECT_FALSE(hasRule(lintSource("flash/timing.hpp",
                                    "Tick t = ticks::fromUs(25);\n", info),
                         "naked-duration"));
}

TEST(LintDuration, SuppressionCommentWorks)
{
    EXPECT_FALSE(hasRule(
        lintCpp("Tick t = ticks::fromUs(9); // lint:allow(naked-duration)\n"),
        "naked-duration"));
}

TEST(LintNewDelete, FlagsOwningRawPointers)
{
    EXPECT_TRUE(hasRule(lintCpp("int *p = new int(3);\n"), "raw-new-delete"));
    EXPECT_TRUE(hasRule(lintCpp("delete p;\n"), "raw-new-delete"));
    EXPECT_TRUE(hasRule(lintCpp("delete[] p;\n"), "raw-new-delete"));
}

TEST(LintNewDelete, AllowsDeletedFunctionsCommentsAndIdentifiers)
{
    EXPECT_FALSE(hasRule(lintCpp("Foo(const Foo &) = delete;\n"),
                         "raw-new-delete"));
    EXPECT_FALSE(hasRule(lintCpp("// the new sequence deletes nothing\n"),
                         "raw-new-delete"));
    EXPECT_FALSE(hasRule(lintCpp("int new_page = renew(delete_count);\n"),
                         "raw-new-delete"));
    EXPECT_FALSE(hasRule(lintCpp("auto s = \"new delete\";\n"),
                         "raw-new-delete"));
}

TEST(LintEnumSwitch, FlagsDefaultInEnumClassSwitch)
{
    const std::string bad = "switch (op) {\n"
                            "  case BitwiseOp::kAnd: return 1;\n"
                            "  default: return 0;\n"
                            "}\n";
    const auto fs = lintCpp(bad);
    ASSERT_TRUE(hasRule(fs, "enum-switch-default"));
    EXPECT_EQ(fs[0].line, 3);
}

TEST(LintEnumSwitch, AllowsIntegerSwitchesAndExhaustiveEnumSwitches)
{
    EXPECT_FALSE(hasRule(lintCpp("switch (v) {\n"
                                 "  case 0: return 1;\n"
                                 "  default: return 0;\n"
                                 "}\n"),
                         "enum-switch-default"));
    EXPECT_FALSE(hasRule(lintCpp("switch (op) {\n"
                                 "  case BitwiseOp::kAnd: return 1;\n"
                                 "  case BitwiseOp::kOr: return 2;\n"
                                 "}\n"),
                         "enum-switch-default"));
    // "= default;" member declarations are not default labels.
    EXPECT_FALSE(hasRule(lintCpp("switch (op) {\n"
                                 "  case B::kA: { Foo f; }\n"
                                 "}\n"
                                 "Foo() = default;\n"),
                         "enum-switch-default"));
}

TEST(LintNondeterminism, FlagsBannedSources)
{
    EXPECT_TRUE(hasRule(lintCpp("srand(42);\n"), "nondeterminism"));
    EXPECT_TRUE(hasRule(lintCpp("int x = std::rand();\n"),
                        "nondeterminism"));
    EXPECT_TRUE(hasRule(lintCpp("std::random_device rd;\n"),
                        "nondeterminism"));
    EXPECT_TRUE(hasRule(
        lintCpp("auto t = std::chrono::system_clock::now();\n"),
        "nondeterminism"));
}

TEST(LintNondeterminism, AllowsSeededRngAndOperands)
{
    EXPECT_FALSE(hasRule(lintCpp("Rng rng(seed);\n"), "nondeterminism"));
    EXPECT_FALSE(hasRule(lintCpp("int operand = rands[i];\n"),
                         "nondeterminism"));
}

TEST(LintNondeterminism, WallClockBannedInSimulatorSources)
{
    for (const char *read :
         {"auto t = std::chrono::steady_clock::now();\n",
          "auto t = std::chrono::system_clock::now();\n",
          "auto t = std::chrono::high_resolution_clock::now();\n"})
        EXPECT_TRUE(hasRule(lintCpp(read), "nondeterminism")) << read;
}

TEST(LintNondeterminism, WallClockAllowedWhereSanctioned)
{
    // The self-profiler TU (and tools/benches, which the tree walker
    // marks the same way) may read the clock; seeded-randomness bans
    // still apply there.
    SourceInfo info;
    info.wallClockAllowed = true;
    EXPECT_FALSE(hasRule(
        lintSource("obs/profiler.cpp",
                   "auto t = std::chrono::steady_clock::now();\n", info),
        "nondeterminism"));
    EXPECT_TRUE(hasRule(lintSource("obs/profiler.cpp",
                                   "std::random_device rd;\n", info),
                        "nondeterminism"));
}

TEST(LintNondeterminism, WallClockSuppressibleWithAllow)
{
    EXPECT_FALSE(
        hasRule(lintCpp("auto t = std::chrono::steady_clock::now(); "
                        "// lint:allow(nondeterminism)\n"),
                "nondeterminism"));
    // Comments and string literals never trigger the rule.
    EXPECT_FALSE(hasRule(
        lintCpp("// std::chrono::steady_clock::now() is banned here\n"
                "const char *s = \"steady_clock::now()\";\n"),
        "nondeterminism"));
}

TEST(LintGuard, EnforcesCanonicalGuard)
{
    const std::string good = "#ifndef PARABIT_FLASH_SAMPLE_HPP_\n"
                             "#define PARABIT_FLASH_SAMPLE_HPP_\n"
                             "#endif\n";
    EXPECT_FALSE(hasRule(lintHpp(good), "include-guard"));

    const auto fs = lintHpp("#ifndef WRONG_H\n#define WRONG_H\n#endif\n");
    ASSERT_TRUE(hasRule(fs, "include-guard"));
    EXPECT_NE(fs[0].message.find("PARABIT_FLASH_SAMPLE_HPP_"),
              std::string::npos);
}

TEST(LintFirstInclude, EnforcesOwnHeaderFirst)
{
    SourceInfo info;
    info.guardPath = "flash/sample.cpp";
    info.hasMatchingHeader = true;
    EXPECT_FALSE(hasRule(
        lintSource("flash/sample.cpp",
                   "#include \"flash/sample.hpp\"\n#include <vector>\n",
                   info),
        "first-include"));
    // Tools layout: plain basename is also accepted.
    EXPECT_FALSE(hasRule(lintSource("flash/sample.cpp",
                                    "#include \"sample.hpp\"\n", info),
                         "first-include"));
    EXPECT_TRUE(hasRule(lintSource("flash/sample.cpp",
                                   "#include <vector>\n"
                                   "#include \"flash/sample.hpp\"\n",
                                   info),
                        "first-include"));
    // No matching header (e.g. a main file): rule does not apply.
    info.hasMatchingHeader = false;
    EXPECT_FALSE(hasRule(lintSource("flash/sample.cpp",
                                    "#include <vector>\n", info),
                         "first-include"));
}

TEST(LintUsingNamespace, StdBannedEverywhereOthersOnlyInHeaders)
{
    EXPECT_TRUE(hasRule(lintCpp("using namespace std;\n"),
                        "using-namespace"));
    EXPECT_FALSE(hasRule(lintCpp("using namespace parabit::flash;\n"),
                         "using-namespace"));
    EXPECT_TRUE(hasRule(lintHpp("#ifndef PARABIT_FLASH_SAMPLE_HPP_\n"
                                "#define PARABIT_FLASH_SAMPLE_HPP_\n"
                                "using namespace parabit;\n"
                                "#endif\n"),
                        "using-namespace"));
    EXPECT_FALSE(hasRule(lintCpp("using flash::BitwiseOp;\n"),
                         "using-namespace"));
}

TEST(LintRawStderr, FlagsDirectStderrWrites)
{
    EXPECT_TRUE(hasRule(lintCpp("std::fprintf(stderr, \"x\");\n"),
                        "raw-stderr"));
    EXPECT_TRUE(hasRule(lintCpp("std::cerr << \"oops\";\n"), "raw-stderr"));
    EXPECT_TRUE(hasRule(lintCpp("std::clog << \"note\";\n"), "raw-stderr"));
}

TEST(LintRawStderr, AllowsLoggingBackendCommentsAndSuppression)
{
    SourceInfo info;
    info.guardPath = "common/logging.cpp";
    info.stderrAllowed = true;
    EXPECT_FALSE(hasRule(lintSource("common/logging.cpp",
                                    "std::fprintf(stderr, \"x\");\n", info),
                         "raw-stderr"));
    // Comments and string literals are stripped before the scan.
    EXPECT_FALSE(hasRule(lintCpp("// falls back to stderr\n"),
                         "raw-stderr"));
    EXPECT_FALSE(hasRule(lintCpp("auto s = \"stderr\";\n"), "raw-stderr"));
    // Identifiers merely containing the token are fine.
    EXPECT_FALSE(hasRule(lintCpp("int cerrors = 0;\n"), "raw-stderr"));
    EXPECT_FALSE(hasRule(
        lintCpp("std::cerr << x; // lint:allow(raw-stderr)\n"),
        "raw-stderr"));
}

TEST(LintTimeline, FlagsDirectUseOutsideScheduler)
{
    const auto fs = lintCpp("Timeline tl;\ntl.reserve(now, dur);\n");
    ASSERT_TRUE(hasRule(fs, "timeline-booking"));
    EXPECT_EQ(fs[0].line, 1);
}

TEST(LintTimeline, AllowsSchedulerSubsystemCommentsAndSuppression)
{
    SourceInfo info;
    info.guardPath = "ssd/sched/scheduler.hpp";
    info.timelineAllowed = true;
    EXPECT_FALSE(hasRule(lintSource("ssd/sched/scheduler.hpp",
                                    "Timeline tl;\n", info),
                         "timeline-booking"));
    // Comments, strings and longer identifiers do not trip the rule.
    EXPECT_FALSE(hasRule(lintCpp("// one Timeline per die\n"),
                         "timeline-booking"));
    EXPECT_FALSE(hasRule(lintCpp("auto s = \"Timeline\";\n"),
                         "timeline-booking"));
    EXPECT_FALSE(hasRule(lintCpp("int TimelineCount = 0;\n"),
                         "timeline-booking"));
    EXPECT_FALSE(hasRule(
        lintCpp("Timeline tl; // lint:allow(timeline-booking)\n"),
        "timeline-booking"));
}

TEST(LintMetricName, FlagsNonConformingLiterals)
{
    // Too few segments.
    EXPECT_TRUE(hasRule(lintCpp("obs::Counter c_{\"reads\"};\n"),
                        "metric-name"));
    // Uppercase.
    EXPECT_TRUE(hasRule(lintCpp("obs::Gauge g_{\"Sched.depth\"};\n"),
                        "metric-name"));
    // Too many segments.
    EXPECT_TRUE(hasRule(lintCpp("obs::Hist h_(\"a.b.c.d.e\");\n"),
                        "metric-name"));
    // Empty segment.
    EXPECT_TRUE(hasRule(lintCpp("obs::Counter c_{\"ftl..runs\"};\n"),
                        "metric-name"));
    // Segment starting with a digit.
    EXPECT_TRUE(hasRule(lintCpp("obs::Counter c_{\"ftl.2nd\"};\n"),
                        "metric-name"));
}

TEST(LintMetricName, AllowsConformingNamesAndNonLiteralConstruction)
{
    EXPECT_FALSE(hasRule(lintCpp("obs::Counter c_{\"ftl.gc.runs\"};\n"),
                         "metric-name"));
    EXPECT_FALSE(hasRule(
        lintCpp("obs::Hist h_(\"sched.latency.read_us\");\n"),
        "metric-name"));
    // No literal to check: declarations, element types, references and
    // runtime-computed names.
    EXPECT_FALSE(hasRule(lintCpp("obs::Counter submitted_;\n"),
                         "metric-name"));
    EXPECT_FALSE(hasRule(lintCpp("std::vector<obs::Counter> cs_;\n"),
                         "metric-name"));
    EXPECT_FALSE(hasRule(lintCpp("void f(obs::Counter &c);\n"),
                         "metric-name"));
    EXPECT_FALSE(hasRule(lintCpp("obs::Counter c_{name};\n"),
                         "metric-name"));
    EXPECT_FALSE(hasRule(
        lintCpp("obs::Counter c_{\"x\"}; // lint:allow(metric-name)\n"),
        "metric-name"));
}

TEST(LintBoundedRetry, FlagsUncappedRetryLoops)
{
    // Magic-number bound: the cap must be named.
    EXPECT_TRUE(hasRule(
        lintCpp("for (int attempt = 0; attempt < 3; ++attempt) {}\n"),
        "bounded-retry"));
    // Unbounded while driven by a retry predicate.
    EXPECT_TRUE(hasRule(
        lintCpp("while (shouldRetry(st)) { resend(); }\n"),
        "bounded-retry"));
    // Requeue spelling counts as retry flavour.
    EXPECT_TRUE(hasRule(
        lintCpp("while (requeuePending()) { pump(); }\n"),
        "bounded-retry"));
}

TEST(LintBoundedRetry, AllowsNamedCapsTablesAndPlainLoops)
{
    // The real FTL program-retry shape: a named constant cap.
    EXPECT_FALSE(hasRule(
        lintCpp("for (int attempt = 0; attempt < kMaxProgramRetries; "
                "++attempt) {}\n"),
        "bounded-retry"));
    // A config-named budget.
    EXPECT_FALSE(hasRule(
        lintCpp("while (t.attempts < retry_.maxRequeues) { again(); }\n"),
        "bounded-retry"));
    // Range-for over a fixed retry ladder is bounded by construction.
    EXPECT_FALSE(hasRule(
        lintCpp("for (const RetryRung &r : kRetryLadder) { apply(r); }\n"),
        "bounded-retry"));
    // Loops that never speak of retrying are out of scope.
    EXPECT_FALSE(hasRule(
        lintCpp("for (int i = 0; i < 3; ++i) { work(i); }\n"),
        "bounded-retry"));
    EXPECT_FALSE(hasRule(
        lintCpp("for (int attempt = 0; attempt < 3; ++attempt) {} "
                "// lint:allow(bounded-retry)\n"),
        "bounded-retry"));
}

TEST(LintJson, RendersFindings)
{
    const auto fs = lintCpp("delete p;\n");
    const std::string json = toJson(fs);
    EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
    EXPECT_NE(json.find("raw-new-delete"), std::string::npos);
    EXPECT_NE(toJson({}).find("\"ok\": true"), std::string::npos);
}

// ----- Enforcement: the real trees must be clean. -----------------------

TEST(LintEnforcement, SrcTreeIsClean)
{
    const auto fs = lintTree(PARABIT_REPO_ROOT "/src");
    for (const auto &f : fs)
        ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                      << f.message;
    EXPECT_TRUE(fs.empty());
}

TEST(LintEnforcement, ToolsTreeIsClean)
{
    const auto fs = lintTree(PARABIT_REPO_ROOT "/tools");
    for (const auto &f : fs)
        ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                      << f.message;
    EXPECT_TRUE(fs.empty());
}

} // namespace
} // namespace parabit::lint
