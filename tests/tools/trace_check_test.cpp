/**
 * @file
 * Unit tests for the parabit-trace validator: accepts traces the sink
 * actually emits and rejects each class of structural damage.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/trace.hpp"
#include "trace_check.hpp"

namespace parabit::tracecheck {
namespace {

using obs::TraceSink;
using obs::TrackId;

bool
hasFinding(const CheckResult &r, const std::string &check)
{
    for (const Finding &f : r.findings)
        if (f.check == check)
            return true;
    return false;
}

TEST(TraceCheck, AcceptsSinkOutput)
{
    TraceSink sink;
    const TrackId ch = sink.track("channels", "channel 0");
    const TrackId die = sink.track("dies", "ch0 chip0 die0 plane0");
    const TrackId host = sink.track("host", "queue 0");
    // One transaction through its phases: cmd + xfer_in on the channel,
    // array on the die, xfer_out back on the channel.
    sink.span(ch, "cmd", 0, 1000000, {{"tx", "1", false}});
    sink.span(ch, "xfer_in", 1000000, 3000000, {{"tx", "1", false}});
    sink.span(die, "array", 3000000, 9000000, {{"tx", "1", false}});
    sink.span(ch, "xfer_out", 9000000, 10000000, {{"tx", "1", false}});
    sink.asyncBegin(host, "nvme", "write", 0, 0);
    sink.asyncEnd(host, "nvme", "write", 0, 10000000);

    const CheckResult r = checkTrace(sink.toJson());
    EXPECT_TRUE(r.ok()) << toJson(r);
    EXPECT_EQ(r.stats.spans, 4u);
    EXPECT_EQ(r.stats.asyncPairs, 1u);
    EXPECT_EQ(r.stats.tracks, 3u);
    EXPECT_EQ(r.stats.processes, 3u);
}

TEST(TraceCheck, RejectsMalformedJson)
{
    const CheckResult r = checkTrace("{\"traceEvents\":[");
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasFinding(r, "json"));
}

TEST(TraceCheck, RejectsMissingTraceEvents)
{
    const CheckResult r = checkTrace("{\"events\":[]}");
    EXPECT_TRUE(hasFinding(r, "json"));
}

TEST(TraceCheck, RejectsOverlapOnResourceTrack)
{
    TraceSink sink;
    const TrackId ch = sink.track("channels", "channel 0");
    sink.span(ch, "xfer_out", 0, 5000000);
    sink.span(ch, "cmd", 2000000, 3000000); // starts inside xfer_out
    const CheckResult r = checkTrace(sink.toJson());
    EXPECT_TRUE(hasFinding(r, "track-exclusivity"));
}

TEST(TraceCheck, AllowsNestingOffResourceTracks)
{
    TraceSink sink;
    const TrackId dev = sink.track("device", "recovery");
    sink.span(dev, "power_cycle", 0, 10000000);
    sink.span(dev, "journal_replay", 2000000, 4000000); // nested: fine
    const CheckResult r = checkTrace(sink.toJson());
    EXPECT_TRUE(r.ok()) << toJson(r);
}

TEST(TraceCheck, RejectsPartialOverlapOffResourceTracks)
{
    TraceSink sink;
    const TrackId dev = sink.track("device", "recovery");
    sink.span(dev, "a", 0, 5000000);
    sink.span(dev, "b", 3000000, 8000000); // straddles a's end
    const CheckResult r = checkTrace(sink.toJson());
    EXPECT_TRUE(hasFinding(r, "span-nesting"));
}

TEST(TraceCheck, RejectsDanglingAsyncBegin)
{
    TraceSink sink;
    const TrackId host = sink.track("host", "queue 0");
    sink.asyncBegin(host, "nvme", "read", 7, 0);
    const CheckResult r = checkTrace(sink.toJson());
    EXPECT_TRUE(hasFinding(r, "async-pairing"));
}

TEST(TraceCheck, RejectsAsyncNameMismatch)
{
    TraceSink sink;
    const TrackId host = sink.track("host", "queue 0");
    sink.asyncBegin(host, "nvme", "read", 7, 0);
    sink.asyncEnd(host, "nvme", "write", 7, 1000000);
    const CheckResult r = checkTrace(sink.toJson());
    EXPECT_TRUE(hasFinding(r, "async-pairing"));
}

TEST(TraceCheck, RejectsPhaseOrderViolation)
{
    TraceSink sink;
    const TrackId ch = sink.track("channels", "channel 0");
    const TrackId die = sink.track("dies", "d0");
    // xfer_out before the array phase of the same tx: impossible.
    sink.span(ch, "xfer_out", 0, 1000000, {{"tx", "5", false}});
    sink.span(die, "array", 2000000, 4000000, {{"tx", "5", false}});
    const CheckResult r = checkTrace(sink.toJson());
    EXPECT_TRUE(hasFinding(r, "phase-order"));
}

TEST(TraceCheck, RejectsUnknownPhaseNameOnResourceTrack)
{
    TraceSink sink;
    const TrackId ch = sink.track("channels", "channel 0");
    sink.span(ch, "mystery", 0, 1000000);
    const CheckResult r = checkTrace(sink.toJson());
    EXPECT_TRUE(hasFinding(r, "phase-order"));
}

TEST(TraceCheck, AllowsSuspendResumeCycles)
{
    TraceSink sink;
    const TrackId die = sink.track("dies", "d0");
    sink.span(die, "array", 0, 2000000, {{"tx", "9", false}});
    sink.span(die, "suspend", 2000000, 2100000, {{"tx", "9", false}});
    sink.span(die, "resume", 5000000, 5100000, {{"tx", "9", false}});
    sink.span(die, "array", 5100000, 7000000, {{"tx", "9", false}});
    const CheckResult r = checkTrace(sink.toJson());
    EXPECT_TRUE(r.ok()) << toJson(r);
}

TEST(TraceCheck, AcceptsLinkedFlow)
{
    TraceSink sink;
    const TrackId host = sink.track("host", "queue 0");
    const TrackId ch = sink.track("channels", "channel 0");
    const TrackId die = sink.track("dies", "d0");
    sink.span(ch, "cmd", 1000000, 2000000, {{"tx", "3", false}});
    sink.span(die, "array", 2000000, 6000000, {{"tx", "3", false}});
    sink.span(ch, "xfer_out", 6000000, 7000000, {{"tx", "3", false}});
    sink.flowStart(host, obs::kNvmeFlowCat, obs::kNvmeFlowName, 11, 0);
    sink.flowStep(ch, obs::kNvmeFlowCat, obs::kNvmeFlowName, 11, 1000000);
    sink.flowStep(die, obs::kNvmeFlowCat, obs::kNvmeFlowName, 11, 2000000);
    sink.flowEnd(host, obs::kNvmeFlowCat, obs::kNvmeFlowName, 11, 8000000);
    const CheckResult r = checkTrace(sink.toJson());
    EXPECT_TRUE(r.ok()) << toJson(r);
    EXPECT_EQ(r.stats.flows, 1u);
    EXPECT_EQ(r.stats.flowSteps, 2u);
}

TEST(TraceCheck, AcceptsSteplessFlow)
{
    TraceSink sink;
    const TrackId host = sink.track("host", "queue 0");
    sink.flowStart(host, obs::kNvmeFlowCat, obs::kNvmeFlowName, 4, 0);
    sink.flowEnd(host, obs::kNvmeFlowCat, obs::kNvmeFlowName, 4, 1000000);
    const CheckResult r = checkTrace(sink.toJson());
    EXPECT_TRUE(r.ok()) << toJson(r);
    EXPECT_EQ(r.stats.flows, 1u);
    EXPECT_EQ(r.stats.flowSteps, 0u);
}

TEST(TraceCheck, RejectsDanglingFlowStart)
{
    TraceSink sink;
    const TrackId host = sink.track("host", "queue 0");
    sink.flowStart(host, obs::kNvmeFlowCat, obs::kNvmeFlowName, 5, 0);
    const CheckResult r = checkTrace(sink.toJson());
    EXPECT_TRUE(hasFinding(r, "flow-linkage"));
}

TEST(TraceCheck, RejectsFlowStepOutsideWindow)
{
    TraceSink sink;
    const TrackId host = sink.track("host", "queue 0");
    const TrackId ch = sink.track("channels", "channel 0");
    sink.span(ch, "cmd", 9000000, 10000000, {{"tx", "6", false}});
    sink.flowStart(host, obs::kNvmeFlowCat, obs::kNvmeFlowName, 6, 0);
    // Step at the span start, but after the flow already finished.
    sink.flowStep(ch, obs::kNvmeFlowCat, obs::kNvmeFlowName, 6, 9000000);
    sink.flowEnd(host, obs::kNvmeFlowCat, obs::kNvmeFlowName, 6, 5000000);
    const CheckResult r = checkTrace(sink.toJson());
    EXPECT_TRUE(hasFinding(r, "flow-linkage"));
}

TEST(TraceCheck, RejectsFlowStepOffSpanStart)
{
    TraceSink sink;
    const TrackId host = sink.track("host", "queue 0");
    const TrackId ch = sink.track("channels", "channel 0");
    sink.span(ch, "cmd", 1000000, 3000000, {{"tx", "8", false}});
    sink.flowStart(host, obs::kNvmeFlowCat, obs::kNvmeFlowName, 8, 0);
    // Step in the middle of the span, not at its start: the binding
    // the attribution protocol promises is broken.
    sink.flowStep(ch, obs::kNvmeFlowCat, obs::kNvmeFlowName, 8, 2000000);
    sink.flowEnd(host, obs::kNvmeFlowCat, obs::kNvmeFlowName, 8, 4000000);
    const CheckResult r = checkTrace(sink.toJson());
    EXPECT_TRUE(hasFinding(r, "flow-linkage"));
}

TEST(TraceCheck, RejectsFlowStepOffResourceTracks)
{
    TraceSink sink;
    const TrackId host = sink.track("host", "queue 0");
    sink.flowStart(host, obs::kNvmeFlowCat, obs::kNvmeFlowName, 9, 0);
    sink.flowStep(host, obs::kNvmeFlowCat, obs::kNvmeFlowName, 9, 500000);
    sink.flowEnd(host, obs::kNvmeFlowCat, obs::kNvmeFlowName, 9, 1000000);
    const CheckResult r = checkTrace(sink.toJson());
    EXPECT_TRUE(hasFinding(r, "flow-linkage"));
}

TEST(TraceCheck, ReportJsonRoundTrips)
{
    TraceSink sink;
    sink.track("channels", "channel 0");
    const CheckResult r = checkTrace(sink.toJson());
    const std::string report = toJson(r);
    EXPECT_NE(report.find("\"tool\": \"parabit-trace\""),
              std::string::npos);
    EXPECT_NE(report.find("\"ok\": true"), std::string::npos);
}

} // namespace
} // namespace parabit::tracecheck
