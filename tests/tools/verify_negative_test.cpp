/**
 * @file
 * Proof that parabit-verify actually catches regressions: a clean run
 * reports zero findings, and a single mutated control step in a copied
 * program produces a reported divergence.  Without this test the model
 * checker could rot into a rubber stamp (e.g. by comparing a program
 * against itself) and nobody would notice.
 */

#include <gtest/gtest.h>

#include "flash/op_sequences.hpp"
#include "verifier.hpp"

namespace parabit::verify {
namespace {

using flash::BitwiseOp;
using flash::LatchPulse;
using flash::MicroProgram;
using flash::MicroStep;
using flash::VRead;

TEST(VerifyPositive, FullRunIsCleanOnTheRegisteredPrograms)
{
    const Report r = verifyAll();
    for (const auto &f : r.findings)
        ADD_FAILURE() << f.check << " / " << f.subject << ": " << f.message
                      << " (expected " << f.expected << ", actual "
                      << f.actual << ")";
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.programsChecked, 24); // 8 ops x 3 flavours
    EXPECT_GT(r.combosChecked, 0);
    EXPECT_GT(r.chainsChecked, 0);
    EXPECT_GT(r.costChecksRun, 0);
}

TEST(VerifyNegative, MutatedSenseLevelOfAndIsDetected)
{
    // Copy the AND program and move its single discriminating sense from
    // VREAD1 to VREAD2 — exactly the one-line edit the checker exists
    // to catch.  The program now computes an LSB read, not AND.
    MicroProgram mutated = flash::coLocatedProgram(BitwiseOp::kAnd);
    ASSERT_EQ(mutated.steps.size(), 3u);
    ASSERT_EQ(mutated.steps[1].kind, MicroStep::Kind::kSense);
    ASSERT_EQ(mutated.steps[1].vread, VRead::kVRead1);
    mutated.steps[1].vread = VRead::kVRead2;

    Report r;
    checkTruthTable(mutated, BitwiseOp::kAnd, Flavor::kCoLocated, r);
    ASSERT_FALSE(r.ok());
    // The symbolic leg must name the divergence precisely: expected the
    // Table 1 AND column 1000, got the LSB-read column 1100.
    bool symbolic_found = false;
    for (const auto &f : r.findings) {
        EXPECT_EQ(f.check, "truth-table");
        if (f.expected == "1000" && f.actual == "1100")
            symbolic_found = true;
    }
    EXPECT_TRUE(symbolic_found);

    // Structure is still legal — only the semantics broke.
    Report rs;
    checkStructure(mutated, BitwiseOp::kAnd, Flavor::kCoLocated, rs);
    EXPECT_TRUE(rs.ok());
}

TEST(VerifyNegative, MutatedPulseIsDetected)
{
    MicroProgram mutated = flash::coLocatedProgram(BitwiseOp::kAnd);
    mutated.steps[1].pulse = LatchPulse::kM1; // M2 -> M1
    Report r;
    checkTruthTable(mutated, BitwiseOp::kAnd, Flavor::kCoLocated, r);
    EXPECT_FALSE(r.ok());
}

TEST(VerifyNegative, MutatedLocationFreeStepIsDetected)
{
    // Flip the M7 inverter off on the final LSB sense of the
    // location-free XOR (Fig 8 phase 2) — the subtlest single-bit edit.
    MicroProgram mutated = flash::locationFreeProgram(BitwiseOp::kXor);
    bool flipped = false;
    for (auto &st : mutated.steps) {
        if (st.soInverted) {
            st.soInverted = false;
            flipped = true;
            break;
        }
    }
    ASSERT_TRUE(flipped);
    Report r;
    checkTruthTable(mutated, BitwiseOp::kXor, Flavor::kLocFreeMsbLsb, r);
    EXPECT_FALSE(r.ok());
}

TEST(VerifyNegative, DroppedFinalTransferIsAStructuralFinding)
{
    MicroProgram mutated = flash::coLocatedProgram(BitwiseOp::kOr);
    ASSERT_EQ(mutated.steps.back().kind, MicroStep::Kind::kTransfer);
    mutated.steps.pop_back();
    Report r;
    checkStructure(mutated, BitwiseOp::kOr, Flavor::kCoLocated, r);
    ASSERT_FALSE(r.ok());
    bool found = false;
    for (const auto &f : r.findings)
        if (f.check == "structural" &&
            f.message.find("transfer") != std::string::npos)
            found = true;
    EXPECT_TRUE(found);
}

TEST(VerifyNegative, M3PulseOnASenseStepIsAStructuralFinding)
{
    // "No L1->L2 transfer while MSO is open": a sense step may only
    // pulse M1/M2.
    MicroProgram mutated = flash::coLocatedProgram(BitwiseOp::kAnd);
    mutated.steps[1].pulse = LatchPulse::kM3;
    Report r;
    checkStructure(mutated, BitwiseOp::kAnd, Flavor::kCoLocated, r);
    ASSERT_FALSE(r.ok());
    bool found = false;
    for (const auto &f : r.findings)
        if (f.message.find("MSO is open") != std::string::npos)
            found = true;
    EXPECT_TRUE(found);
}

TEST(VerifyNegative, SecondInitIsAStructuralFinding)
{
    MicroProgram mutated = flash::coLocatedProgram(BitwiseOp::kAnd);
    mutated.steps.insert(mutated.steps.begin() + 1,
                         MicroStep::initNormal());
    Report r;
    checkStructure(mutated, BitwiseOp::kAnd, Flavor::kCoLocated, r);
    EXPECT_FALSE(r.ok());
}

TEST(VerifyNegative, InverterInCoLocatedProgramIsAStructuralFinding)
{
    MicroProgram mutated = flash::coLocatedProgram(BitwiseOp::kAnd);
    mutated.steps[1].soInverted = true;
    Report r;
    checkStructure(mutated, BitwiseOp::kAnd, Flavor::kCoLocated, r);
    EXPECT_FALSE(r.ok());
}

TEST(VerifyReport, JsonCarriesFindingsAndCounters)
{
    MicroProgram mutated = flash::coLocatedProgram(BitwiseOp::kAnd);
    mutated.steps[1].vread = VRead::kVRead2;
    Report r;
    checkTruthTable(mutated, BitwiseOp::kAnd, Flavor::kCoLocated, r);
    const std::string json = toJson(r);
    EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
    EXPECT_NE(json.find("\"truth-table\""), std::string::npos);
    EXPECT_NE(json.find("AND (co-located)"), std::string::npos);

    const std::string clean = toJson(verifyAll());
    EXPECT_NE(clean.find("\"ok\": true"), std::string::npos);
    EXPECT_NE(clean.find("\"programs_checked\": 24"), std::string::npos);
    // Schema/provenance header consumers key on.
    EXPECT_NE(clean.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(clean.find("\"tool\": \"parabit-verify\""), std::string::npos);
    EXPECT_NE(clean.find("\"sched_sweep\": false"), std::string::npos);
}

} // namespace
} // namespace parabit::verify
