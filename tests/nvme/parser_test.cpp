/**
 * @file
 * CMD Parse tests (paper Figs 10-12): host encode -> device parse must
 * reconstruct the batch structure, including page-spanning operands
 * (sub-operations) and chained batches with previous-result operands.
 */

#include <gtest/gtest.h>

#include "nvme/parser.hpp"

namespace parabit::nvme {
namespace {

constexpr Bytes kPage = 8 * bytes::kKiB;

Formula
singleOp(flash::BitwiseOp op, Lpn x, Lpn y, std::uint32_t pages)
{
    Formula f;
    f.terms.push_back(Formula::Term{OperandRef::logical(x, pages),
                                    OperandRef::logical(y, pages), op});
    return f;
}

TEST(CmdParser, SectorsPerPage)
{
    CmdParser p(kPage);
    EXPECT_EQ(p.sectorsPerPage(), 16u);
}

TEST(CmdParser, SinglePageOpEncodesTwoCommands)
{
    CmdParser p(kPage);
    const auto cmds = p.encode(singleOp(flash::BitwiseOp::kAnd, 4, 9, 1));
    ASSERT_EQ(cmds.size(), 2u);
    EXPECT_FALSE(cmds[0].operandTag());
    EXPECT_TRUE(cmds[1].operandTag());
    EXPECT_EQ(cmds[0].intraOp(), flash::BitwiseOp::kAnd);
    EXPECT_EQ(cmds[0].slba(), 4u * 16);
    EXPECT_EQ(cmds[1].slba(), 9u * 16);
    // First command binds to the second via the partner LBA.
    EXPECT_TRUE(cmds[0].hasPartner());
    EXPECT_EQ(cmds[0].partnerLba(), cmds[1].slba());
    // Last sub-operation: no forward chain.
    EXPECT_FALSE(cmds[1].hasPartner());
}

TEST(CmdParser, ParseReconstructsSingleBatch)
{
    CmdParser p(kPage);
    const auto cmds = p.encode(singleOp(flash::BitwiseOp::kXor, 2, 5, 1));
    const auto batches = p.parse(cmds);
    ASSERT_EQ(batches.size(), 1u);
    EXPECT_EQ(batches[0].intraOp, flash::BitwiseOp::kXor);
    ASSERT_EQ(batches[0].subOps.size(), 1u);
    EXPECT_EQ(batches[0].subOps[0].first.lpn, 2u);
    EXPECT_EQ(batches[0].subOps[0].second.lpn, 5u);
    EXPECT_FALSE(batches[0].extraOp.has_value());
}

TEST(CmdParser, MultiPageOperandSplitsIntoSubOperations)
{
    // Paper Fig 11: operands twice the page size -> two sub-operations
    // bound through the second command's partner field.
    CmdParser p(kPage);
    const auto cmds = p.encode(singleOp(flash::BitwiseOp::kOr, 0, 100, 2));
    ASSERT_EQ(cmds.size(), 4u);
    // CMD1 (second operand of sub-op 0) chains to CMD2 (first operand of
    // sub-op 1).
    EXPECT_TRUE(cmds[1].hasPartner());
    EXPECT_EQ(cmds[1].partnerLba(), cmds[2].slba());
    EXPECT_FALSE(cmds[3].hasPartner());

    const auto batches = p.parse(cmds);
    ASSERT_EQ(batches.size(), 1u);
    ASSERT_EQ(batches[0].subOps.size(), 2u);
    EXPECT_EQ(batches[0].subOps[1].first.lpn, 1u);
    EXPECT_EQ(batches[0].subOps[1].second.lpn, 101u);
}

TEST(CmdParser, ChainedFormulaSynthesisesResultBatches)
{
    // (a AND b) AND c AND d: three explicit-operand batches plus the
    // Fig 12-style synthesised combinations is folded as chain() does —
    // verify parse() mirrors buildBatches().
    const Formula f =
        Formula::chain(flash::BitwiseOp::kAnd, {10, 20, 30, 40}, 1);
    ASSERT_EQ(f.terms.size(), 3u);
    EXPECT_EQ(f.terms[1].first.kind, OperandRef::Kind::kBatchResult);

    CmdParser p(kPage);
    const auto direct = p.buildBatches(f);
    ASSERT_EQ(direct.size(), 3u);
    EXPECT_EQ(direct[1].firstOperand.kind, OperandRef::Kind::kBatchResult);
    EXPECT_EQ(direct[1].firstOperand.batchId, 0u);
    EXPECT_EQ(direct[2].firstOperand.batchId, 1u);
    EXPECT_EQ(direct[2].secondOperand.lpn, 40u);
}

TEST(CmdParser, EncodeParseRoundTripMatchesBuildBatches)
{
    // Two independent explicit batches with a chain op between them.
    Formula f;
    f.terms.push_back(Formula::Term{OperandRef::logical(0, 2),
                                    OperandRef::logical(10, 2),
                                    flash::BitwiseOp::kAnd});
    f.terms.push_back(Formula::Term{OperandRef::logical(20, 2),
                                    OperandRef::logical(30, 2),
                                    flash::BitwiseOp::kOr});
    f.chainOps.push_back(flash::BitwiseOp::kXor);

    CmdParser p(kPage);
    const auto parsed = p.parse(p.encode(f));
    // Two explicit batches + one synthesised combination batch.
    ASSERT_EQ(parsed.size(), 3u);
    EXPECT_EQ(parsed[0].intraOp, flash::BitwiseOp::kAnd);
    EXPECT_EQ(parsed[1].intraOp, flash::BitwiseOp::kOr);
    EXPECT_EQ(parsed[2].intraOp, flash::BitwiseOp::kXor);
    EXPECT_EQ(parsed[2].firstOperand.kind, OperandRef::Kind::kBatchResult);
    EXPECT_EQ(parsed[2].firstOperand.batchId, 0u);
    EXPECT_EQ(parsed[2].secondOperand.batchId, 1u);
    EXPECT_EQ(parsed[0].subOps.size(), 2u);
}

TEST(CmdParser, MismatchedOperandSizesDie)
{
    Formula f;
    f.terms.push_back(Formula::Term{OperandRef::logical(0, 2),
                                    OperandRef::logical(10, 3),
                                    flash::BitwiseOp::kAnd});
    CmdParser p(kPage);
    EXPECT_DEATH(p.encode(f), "differ");
}

TEST(CmdParser, DanglingCommandDies)
{
    CmdParser p(kPage);
    auto cmds = p.encode(singleOp(flash::BitwiseOp::kAnd, 0, 1, 1));
    cmds.pop_back();
    EXPECT_DEATH(p.parse(cmds), "dangling");
}

TEST(CmdParser, BrokenPartnerBindingDies)
{
    CmdParser p(kPage);
    auto cmds = p.encode(singleOp(flash::BitwiseOp::kAnd, 0, 1, 1));
    cmds[0].setPartnerLba(999 * 16);
    EXPECT_DEATH(p.parse(cmds), "partner");
}

TEST(Formula, ChainNeedsTwoOperands)
{
    EXPECT_DEATH(Formula::chain(flash::BitwiseOp::kAnd, {1}, 1),
                 "two operands");
}

} // namespace
} // namespace parabit::nvme
