/**
 * @file
 * NVMe queue-pair ring tests: FIFO order, full/empty detection with the
 * reserved slot, wraparound, and completion phase-tag behaviour.
 */

#include <gtest/gtest.h>

#include "nvme/queue.hpp"

namespace parabit::nvme {
namespace {

NvmeCommand
readCmd(std::uint64_t lba)
{
    NvmeCommand c;
    c.setOpcode(Opcode::kRead);
    c.setSlba(lba);
    return c;
}

TEST(QueuePair, StartsEmpty)
{
    QueuePair qp(1, 8);
    EXPECT_EQ(qp.sqOccupancy(), 0u);
    EXPECT_FALSE(qp.fetch().has_value());
    EXPECT_FALSE(qp.reap().has_value());
}

TEST(QueuePair, SubmitFetchPreservesFifoOrder)
{
    QueuePair qp(1, 8);
    for (std::uint64_t i = 0; i < 5; ++i)
        ASSERT_TRUE(qp.submit(readCmd(i), 0).has_value());
    EXPECT_EQ(qp.sqOccupancy(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i) {
        auto f = qp.fetch();
        ASSERT_TRUE(f);
        EXPECT_EQ(f->cmd.slba(), i);
    }
    EXPECT_FALSE(qp.fetch().has_value());
}

TEST(QueuePair, FullRingRejectsWithReservedSlot)
{
    QueuePair qp(1, 4); // 3 usable slots
    EXPECT_TRUE(qp.submit(readCmd(0), 0).has_value());
    EXPECT_TRUE(qp.submit(readCmd(1), 0).has_value());
    EXPECT_TRUE(qp.submit(readCmd(2), 0).has_value());
    EXPECT_FALSE(qp.submit(readCmd(3), 0).has_value()) << "ring full";
    qp.fetch();
    EXPECT_TRUE(qp.submit(readCmd(3), 0).has_value())
        << "slot freed by fetch";
}

TEST(QueuePair, CidsAreUniqueAndSequential)
{
    QueuePair qp(1, 8);
    const auto a = qp.submit(readCmd(0), 0);
    const auto b = qp.submit(readCmd(1), 0);
    ASSERT_TRUE(a && b);
    EXPECT_NE(*a, *b);
}

TEST(QueuePair, CompletionRoundTripWithLatency)
{
    QueuePair qp(1, 8);
    const auto cid = qp.submit(readCmd(7), 100);
    ASSERT_TRUE(cid);
    auto f = qp.fetch();
    ASSERT_TRUE(f);
    ASSERT_TRUE(qp.complete(f->cid, f->submittedAt, 350));
    auto c = qp.reap();
    ASSERT_TRUE(c);
    EXPECT_EQ(c->cid, *cid);
    EXPECT_EQ(c->latency(), 250u);
    EXPECT_FALSE(qp.reap().has_value()) << "CQ drained";
}

TEST(QueuePair, WraparoundManyTimes)
{
    QueuePair qp(1, 4);
    for (int round = 0; round < 40; ++round) {
        const auto cid = qp.submit(readCmd(static_cast<std::uint64_t>(round)),
                                   static_cast<Tick>(round));
        ASSERT_TRUE(cid) << "round " << round;
        auto f = qp.fetch();
        ASSERT_TRUE(f);
        EXPECT_EQ(f->cmd.slba(), static_cast<std::uint64_t>(round));
        ASSERT_TRUE(qp.complete(f->cid, f->submittedAt,
                                static_cast<Tick>(round + 1)));
        auto c = qp.reap();
        ASSERT_TRUE(c) << "phase tag must track CQ wraps, round " << round;
        EXPECT_EQ(c->cid, *cid);
    }
}

TEST(QueuePair, MultipleInFlightCompletions)
{
    QueuePair qp(1, 8);
    std::vector<std::uint16_t> cids;
    for (int i = 0; i < 5; ++i)
        cids.push_back(*qp.submit(readCmd(static_cast<std::uint64_t>(i)), 0));
    for (int i = 0; i < 5; ++i) {
        auto f = qp.fetch();
        ASSERT_TRUE(qp.complete(f->cid, f->submittedAt, 10));
    }
    for (int i = 0; i < 5; ++i) {
        auto c = qp.reap();
        ASSERT_TRUE(c);
        EXPECT_EQ(c->cid, cids[static_cast<std::size_t>(i)]);
    }
}

TEST(QueuePair, TinyDepthDies)
{
    EXPECT_DEATH(QueuePair(0, 1), "depth");
}

} // namespace
} // namespace parabit::nvme
