/**
 * @file
 * NVMe command field-packing tests (paper Fig 10): every ParaBit
 * semantic must round-trip through the reserved DWord fields without
 * clobbering the standard NVMe fields or each other.
 */

#include <gtest/gtest.h>

#include "nvme/command.hpp"

namespace parabit::nvme {
namespace {

TEST(NvmeCommand, FreshCommandIsZeroed)
{
    NvmeCommand c;
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(c.dword(i), 0u);
    EXPECT_FALSE(c.operandTag());
    EXPECT_FALSE(c.hasExtraOp());
    EXPECT_FALSE(c.hasPartner());
}

TEST(NvmeCommand, StandardFieldsRoundTrip)
{
    NvmeCommand c;
    c.setOpcode(Opcode::kRead);
    c.setNamespaceId(3);
    c.setSlba(0x1234567890ABCDEFull >> 8); // 56-bit LBA
    c.setNlb(15);
    EXPECT_EQ(c.opcode(), Opcode::kRead);
    EXPECT_EQ(c.namespaceId(), 3u);
    EXPECT_EQ(c.slba(), 0x1234567890ABCDEFull >> 8);
    EXPECT_EQ(c.nlb(), 15u);
}

TEST(NvmeCommand, OperandTagIsBit0OfDword13)
{
    NvmeCommand c;
    c.setOperandTag(true);
    EXPECT_TRUE(c.operandTag());
    EXPECT_EQ(c.dword(13) & 1u, 1u);
    c.setOperandTag(false);
    EXPECT_FALSE(c.operandTag());
}

TEST(NvmeCommand, IntraOpRoundTripsAllEightTypes)
{
    for (int i = 0; i < flash::kNumBitwiseOps; ++i) {
        NvmeCommand c;
        c.setIntraOp(static_cast<flash::BitwiseOp>(i));
        EXPECT_EQ(c.intraOp(), static_cast<flash::BitwiseOp>(i));
    }
}

TEST(NvmeCommand, ExtraOpHasExplicitPresence)
{
    NvmeCommand c;
    EXPECT_FALSE(c.extraOp().has_value());
    c.setExtraOp(flash::BitwiseOp::kAnd); // op code 0 must still be seen
    ASSERT_TRUE(c.extraOp().has_value());
    EXPECT_EQ(*c.extraOp(), flash::BitwiseOp::kAnd);
}

TEST(NvmeCommand, FieldsDoNotInterfere)
{
    NvmeCommand c;
    c.setOperandTag(true);
    c.setIntraOp(flash::BitwiseOp::kXor);
    c.setExtraOp(flash::BitwiseOp::kNor);
    c.setBatchOrder(0xAB);
    c.setPageOffsetSectors(7);
    c.setSizeSectors(9);
    EXPECT_TRUE(c.operandTag());
    EXPECT_EQ(c.intraOp(), flash::BitwiseOp::kXor);
    EXPECT_EQ(*c.extraOp(), flash::BitwiseOp::kNor);
    EXPECT_EQ(c.batchOrder(), 0xAB);
    EXPECT_EQ(c.pageOffsetSectors(), 7);
    EXPECT_EQ(c.sizeSectors(), 9);
    // Overwrite one field; the others must survive.
    c.setBatchOrder(0x11);
    EXPECT_TRUE(c.operandTag());
    EXPECT_EQ(c.intraOp(), flash::BitwiseOp::kXor);
    EXPECT_EQ(c.pageOffsetSectors(), 7);
}

TEST(NvmeCommand, PartnerLbaLivesInDwords2And3)
{
    NvmeCommand c;
    const std::uint64_t lba = 0x00345678ull << 16;
    c.setPartnerLba(lba);
    EXPECT_TRUE(c.hasPartner());
    EXPECT_EQ(c.partnerLba(), lba);
    EXPECT_NE(c.dword(2), 0u);
    c.setHasPartner(false);
    EXPECT_FALSE(c.hasPartner());
}

TEST(NvmeCommand, ParaBitFieldsStayInsideReservedSpace)
{
    // The ParaBit semantics must never spill into the standard fields:
    // opcode (DW0), NSID (DW1), SLBA (DW10/11), NLB (DW12).
    NvmeCommand c;
    c.setOpcode(Opcode::kRead);
    c.setSlba(42);
    c.setNlb(7);
    c.setOperandTag(true);
    c.setIntraOp(flash::BitwiseOp::kXnor);
    c.setExtraOp(flash::BitwiseOp::kXor);
    c.setBatchOrder(200);
    c.setPageOffsetSectors(255);
    c.setSizeSectors(255);
    c.setPartnerLba((1ull << 40) | 5);
    EXPECT_EQ(c.opcode(), Opcode::kRead);
    EXPECT_EQ(c.slba(), 42u);
    EXPECT_EQ(c.nlb(), 7u);
    EXPECT_EQ(c.dword(10), 42u);
    EXPECT_EQ(c.dword(12) & 0xFFFFu, 7u);
}

} // namespace
} // namespace parabit::nvme
