#include "ssd/rain.hpp"

#include "ssd/health.hpp"

namespace parabit::ssd {

RainController::RainController(const SsdConfig &cfg,
                               std::vector<flash::Chip> &chips)
    : geom_(cfg.geometry), storeData_(cfg.storeData),
      chargeParity_(cfg.rain.chargeParityPrograms), chips_(&chips)
{
}

std::uint64_t
RainController::stripeKey(const flash::PhysPageAddr &a) const
{
    // Everything but (chip, die): the stripe spans the dies of the
    // channel at one (plane, block, wordline, page-kind) position.
    std::uint64_t k = a.channel;
    k = k * geom_.planesPerDie + a.plane;
    k = k * geom_.blocksPerPlane + a.block;
    k = k * geom_.wordlinesPerBlock + a.wordline;
    return k * 2 + (a.msb ? 1 : 0);
}

flash::PhysPageAddr
RainController::parityAddr(const flash::PhysPageAddr &a) const
{
    const std::uint32_t dies_per_channel =
        geom_.chipsPerChannel * geom_.diesPerChip;
    const std::uint32_t d = (a.block + a.wordline) % dies_per_channel;
    flash::PhysPageAddr p = a;
    p.chip = d / geom_.diesPerChip;
    p.die = d % geom_.diesPerChip;
    return p;
}

const BitVector *
RainController::payloadAt(const flash::PhysPageAddr &a) const
{
    const std::size_t idx =
        static_cast<std::size_t>(a.channel) * geom_.chipsPerChannel + a.chip;
    const flash::Plane &pl = (*chips_)[idx].plane(a.die, a.plane);
    const flash::Block *blk = pl.blockIfExists(a.block);
    return blk ? blk->pageData(a.wordline, a.msb) : nullptr;
}

bool
RainController::planeAlive(const flash::PhysPageAddr &a) const
{
    const std::size_t idx =
        static_cast<std::size_t>(a.channel) * geom_.chipsPerChannel + a.chip;
    return (*chips_)[idx].planeOperational(a.die, a.plane);
}

void
RainController::xorInto(std::uint64_t key, const BitVector &v)
{
    auto it = parity_.find(key);
    if (it == parity_.end())
        it = parity_.emplace(key, BitVector(geom_.pageBits(), false)).first;
    it->second ^= v;
}

void
RainController::onProgram(const flash::PhysPageAddr &a,
                          std::vector<PhysOp> &ops)
{
    if (storeData_) {
        if (const BitVector *d = payloadAt(a))
            xorInto(stripeKey(a), *d);
    }
    ++updates_;
    if (chargeParity_ && !(health_ && health_->backgroundThrottled())) {
        // One stripe-buffer destage program rides along with the data
        // program; it is booked as background traffic on the rotating
        // parity die and has no functional side effect.  A degraded
        // device defers destage (the buffer is battery-backed) to keep
        // the channels free for foreground I/O.
        ops.push_back(PhysOp{PhysOp::Kind::kPageProgram, parityAddr(a),
                             true});
        ++destages_;
    }
}

void
RainController::willInvalidate(const flash::PhysPageAddr &a)
{
    if (!storeData_)
        return;
    if (const BitVector *d = payloadAt(a)) {
        xorInto(stripeKey(a), *d);
        ++updates_;
    }
}

std::optional<BitVector>
RainController::rebuildPage(const flash::PhysPageAddr &a)
{
    auto it = parity_.find(stripeKey(a));
    if (it == parity_.end()) {
        ++rebuildFails_;
        return std::nullopt;
    }
    BitVector acc = it->second;
    for (std::uint32_t chip = 0; chip < geom_.chipsPerChannel; ++chip) {
        for (std::uint32_t die = 0; die < geom_.diesPerChip; ++die) {
            flash::PhysPageAddr m = a;
            m.chip = chip;
            m.die = die;
            if (m == a)
                continue;
            const BitVector *d = payloadAt(m);
            if (!d)
                continue;
            if (!planeAlive(m)) {
                // Two unreadable members in one stripe: single-parity
                // RAIN cannot separate their contributions.
                ++rebuildFails_;
                return std::nullopt;
            }
            acc ^= *d;
        }
    }
    ++rebuilds_;
    return acc;
}

void
RainController::recomputeAll()
{
    ++recomputes_;
    parity_.clear();
    if (!storeData_)
        return;
    computeParityFromFlash(parity_);
}

void
RainController::computeParityFromFlash(
    std::unordered_map<std::uint64_t, BitVector> &out) const
{
    auto xor_into = [&](std::uint64_t key, const BitVector &v) {
        auto it = out.find(key);
        if (it == out.end())
            it = out.emplace(key, BitVector(geom_.pageBits(), false)).first;
        it->second ^= v;
    };
    for (std::size_t i = 0; i < chips_->size(); ++i) {
        flash::PhysPageAddr a;
        a.channel = static_cast<std::uint32_t>(i / geom_.chipsPerChannel);
        a.chip = static_cast<std::uint32_t>(i % geom_.chipsPerChannel);
        for (a.die = 0; a.die < geom_.diesPerChip; ++a.die) {
            for (a.plane = 0; a.plane < geom_.planesPerDie; ++a.plane) {
                const flash::Plane &pl =
                    (*chips_)[i].plane(a.die, a.plane);
                for (a.block = 0; a.block < geom_.blocksPerPlane;
                     ++a.block) {
                    const flash::Block *blk = pl.blockIfExists(a.block);
                    if (!blk)
                        continue;
                    for (a.wordline = 0;
                         a.wordline < geom_.wordlinesPerBlock;
                         ++a.wordline) {
                        if (const BitVector *lsb =
                                blk->pageData(a.wordline, false)) {
                            a.msb = false;
                            xor_into(stripeKey(a), *lsb);
                        }
                        if (const BitVector *msb =
                                blk->pageData(a.wordline, true)) {
                            a.msb = true;
                            xor_into(stripeKey(a), *msb);
                        }
                    }
                }
            }
        }
    }
}

void
RainController::auditParity(InvariantReport &r) const
{
    if (!storeData_)
        return; // no payloads, no functional parity to audit
    std::unordered_map<std::uint64_t, BitVector> truth;
    computeParityFromFlash(truth);

    // A stripe with a member on a dead plane legitimately diverges from
    // the surviving members' XOR: the buffer still remembers the lost
    // payloads — exactly what rebuildPage() consumes to restore them.
    // Audit only stripes whose members are all alive.  The stripe key's
    // top component is (channel * planesPerDie + plane), so one flag per
    // channel-plane position covers every member die.
    std::vector<bool> degraded(
        static_cast<std::size_t>(geom_.channels) * geom_.planesPerDie,
        false);
    for (std::uint32_t ch = 0; ch < geom_.channels; ++ch)
        for (std::uint32_t chip = 0; chip < geom_.chipsPerChannel; ++chip)
            for (std::uint32_t die = 0; die < geom_.diesPerChip; ++die)
                for (std::uint32_t pl = 0; pl < geom_.planesPerDie; ++pl)
                    if (!(*chips_)[static_cast<std::size_t>(ch) *
                                       geom_.chipsPerChannel +
                                   chip]
                             .planeOperational(die, pl))
                        degraded[static_cast<std::size_t>(ch) *
                                     geom_.planesPerDie +
                                 pl] = true;
    const std::uint64_t stripesPerPlane =
        2ull * geom_.blocksPerPlane * geom_.wordlinesPerBlock;
    auto stripeDegraded = [&](std::uint64_t key) {
        return degraded[static_cast<std::size_t>(key / stripesPerPlane)];
    };

    const BitVector zero(geom_.pageBits(), false);
    for (const auto &[key, page] : parity_) {
        if (stripeDegraded(key))
            continue;
        const auto it = truth.find(key);
        // A stripe whose members all dropped their payloads folds back
        // to all-zero parity but keeps its buffer entry.
        const BitVector &expect = it == truth.end() ? zero : it->second;
        if (!r.check(page == expect))
            r.fail("rain.parity.stripe_xor",
                   "stripe " + std::to_string(key),
                   "stripe-buffer parity diverges from the XOR of the "
                   "members' stored payloads");
    }
    for (const auto &[key, page] : truth) {
        if (stripeDegraded(key))
            continue;
        if (!r.check(parity_.count(key) > 0 || page == zero))
            r.fail("rain.parity.stripe_xor",
                   "stripe " + std::to_string(key),
                   "members hold payload but the stripe buffer tracks "
                   "no parity page");
    }
}

bool
RainController::debugCorruptParity()
{
    if (parity_.empty())
        return false;
    BitVector &page = parity_.begin()->second;
    page.set(0, !page.get(0));
    return true;
}

} // namespace parabit::ssd
