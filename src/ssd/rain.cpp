#include "ssd/rain.hpp"

namespace parabit::ssd {

RainController::RainController(const SsdConfig &cfg,
                               std::vector<flash::Chip> &chips)
    : geom_(cfg.geometry), storeData_(cfg.storeData),
      chargeParity_(cfg.rain.chargeParityPrograms), chips_(&chips)
{
}

std::uint64_t
RainController::stripeKey(const flash::PhysPageAddr &a) const
{
    // Everything but (chip, die): the stripe spans the dies of the
    // channel at one (plane, block, wordline, page-kind) position.
    std::uint64_t k = a.channel;
    k = k * geom_.planesPerDie + a.plane;
    k = k * geom_.blocksPerPlane + a.block;
    k = k * geom_.wordlinesPerBlock + a.wordline;
    return k * 2 + (a.msb ? 1 : 0);
}

flash::PhysPageAddr
RainController::parityAddr(const flash::PhysPageAddr &a) const
{
    const std::uint32_t dies_per_channel =
        geom_.chipsPerChannel * geom_.diesPerChip;
    const std::uint32_t d = (a.block + a.wordline) % dies_per_channel;
    flash::PhysPageAddr p = a;
    p.chip = d / geom_.diesPerChip;
    p.die = d % geom_.diesPerChip;
    return p;
}

const BitVector *
RainController::payloadAt(const flash::PhysPageAddr &a) const
{
    const std::size_t idx =
        static_cast<std::size_t>(a.channel) * geom_.chipsPerChannel + a.chip;
    const flash::Plane &pl = (*chips_)[idx].plane(a.die, a.plane);
    const flash::Block *blk = pl.blockIfExists(a.block);
    return blk ? blk->pageData(a.wordline, a.msb) : nullptr;
}

bool
RainController::planeAlive(const flash::PhysPageAddr &a) const
{
    const std::size_t idx =
        static_cast<std::size_t>(a.channel) * geom_.chipsPerChannel + a.chip;
    return (*chips_)[idx].planeOperational(a.die, a.plane);
}

void
RainController::xorInto(std::uint64_t key, const BitVector &v)
{
    auto it = parity_.find(key);
    if (it == parity_.end())
        it = parity_.emplace(key, BitVector(geom_.pageBits(), false)).first;
    it->second ^= v;
}

void
RainController::onProgram(const flash::PhysPageAddr &a,
                          std::vector<PhysOp> &ops)
{
    if (storeData_) {
        if (const BitVector *d = payloadAt(a))
            xorInto(stripeKey(a), *d);
    }
    ++updates_;
    if (chargeParity_) {
        // One stripe-buffer destage program rides along with the data
        // program; it is booked as background traffic on the rotating
        // parity die and has no functional side effect.
        ops.push_back(PhysOp{PhysOp::Kind::kPageProgram, parityAddr(a),
                             true});
        ++destages_;
    }
}

void
RainController::willInvalidate(const flash::PhysPageAddr &a)
{
    if (!storeData_)
        return;
    if (const BitVector *d = payloadAt(a)) {
        xorInto(stripeKey(a), *d);
        ++updates_;
    }
}

std::optional<BitVector>
RainController::rebuildPage(const flash::PhysPageAddr &a)
{
    auto it = parity_.find(stripeKey(a));
    if (it == parity_.end()) {
        ++rebuildFails_;
        return std::nullopt;
    }
    BitVector acc = it->second;
    for (std::uint32_t chip = 0; chip < geom_.chipsPerChannel; ++chip) {
        for (std::uint32_t die = 0; die < geom_.diesPerChip; ++die) {
            flash::PhysPageAddr m = a;
            m.chip = chip;
            m.die = die;
            if (m == a)
                continue;
            const BitVector *d = payloadAt(m);
            if (!d)
                continue;
            if (!planeAlive(m)) {
                // Two unreadable members in one stripe: single-parity
                // RAIN cannot separate their contributions.
                ++rebuildFails_;
                return std::nullopt;
            }
            acc ^= *d;
        }
    }
    ++rebuilds_;
    return acc;
}

void
RainController::recomputeAll()
{
    ++recomputes_;
    parity_.clear();
    if (!storeData_)
        return;
    for (std::size_t i = 0; i < chips_->size(); ++i) {
        flash::PhysPageAddr a;
        a.channel = static_cast<std::uint32_t>(i / geom_.chipsPerChannel);
        a.chip = static_cast<std::uint32_t>(i % geom_.chipsPerChannel);
        for (a.die = 0; a.die < geom_.diesPerChip; ++a.die) {
            for (a.plane = 0; a.plane < geom_.planesPerDie; ++a.plane) {
                const flash::Plane &pl =
                    (*chips_)[i].plane(a.die, a.plane);
                for (a.block = 0; a.block < geom_.blocksPerPlane;
                     ++a.block) {
                    const flash::Block *blk = pl.blockIfExists(a.block);
                    if (!blk)
                        continue;
                    for (a.wordline = 0;
                         a.wordline < geom_.wordlinesPerBlock;
                         ++a.wordline) {
                        if (const BitVector *lsb =
                                blk->pageData(a.wordline, false)) {
                            a.msb = false;
                            xorInto(stripeKey(a), *lsb);
                        }
                        if (const BitVector *msb =
                                blk->pageData(a.wordline, true)) {
                            a.msb = true;
                            xorInto(stripeKey(a), *msb);
                        }
                    }
                }
            }
        }
    }
}

} // namespace parabit::ssd
