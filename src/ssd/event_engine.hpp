/**
 * @file
 * Discrete-event simulation core.
 *
 * A minimal, deterministic event engine: events are (tick, sequence)
 * ordered callbacks.  Ties on the tick are broken by insertion order so
 * repeated runs are bit-identical.
 */

#ifndef PARABIT_SSD_EVENT_ENGINE_HPP_
#define PARABIT_SSD_EVENT_ENGINE_HPP_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace parabit::ssd {

/** Deterministic discrete-event engine; see file comment. */
class EventEngine
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p cb at absolute time @p when (>= now). */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb @p delay after now. */
    void scheduleAfter(Tick delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /** Execute the earliest event.  @return false if none pending. */
    bool runOne();

    /** Run until the queue drains; @return the final time. */
    Tick run();

    /**
     * Run every event with when <= @p t, then advance now() to exactly
     * @p t (events scheduled later stay queued).  @return the new now().
     * A @p t in the past is a no-op (time never rewinds), and a halted
     * engine's clock stays frozen at the halt time.
     */
    Tick runUntil(Tick t);

    /**
     * Power-cut semantics: drop every pending event and drain no
     * further ones — runOne()/run()/runUntil() execute nothing and
     * schedule() is silently ignored after this call.
     */
    void halt();

    /** Whether halt() was called. */
    bool halted() const { return halted_; }

    /** Pending event count. */
    std::size_t pending() const { return queue_.size(); }

    /** Events executed across every engine in this process (engines
     *  are per-drain throwaways); bench_simspeed's events/sec
     *  denominator.  Monotonic, never reset. */
    static std::uint64_t processExecuted();

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            return a.when != b.when ? a.when > b.when : a.seq > b.seq;
        }
    };

    Tick now_ = 0;
    bool halted_ = false;
    std::uint64_t nextSeq_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

} // namespace parabit::ssd

#endif // PARABIT_SSD_EVENT_ENGINE_HPP_
