/**
 * @file
 * Top-level SSD configuration.
 */

#ifndef PARABIT_SSD_CONFIG_HPP_
#define PARABIT_SSD_CONFIG_HPP_

#include <cstdint>

#include "flash/error_model.hpp"
#include "flash/geometry.hpp"
#include "flash/timing.hpp"
#include "ssd/sched/sched_config.hpp"

namespace parabit::ssd {

/**
 * Sudden-power-off recovery (SPOR) configuration.  When enabled the FTL
 * reserves the top blocks of every plane as an SLC-mode checkpoint +
 * write-ahead-journal region, attaches OOB metadata arbitration to
 * every mapping change, and can rebuild its tables after a power cut
 * (see DESIGN.md "Crash consistency").
 */
struct RecoveryConfig
{
    bool enabled = false;

    /**
     * Data-page programs between automatic checkpoints (taken at the
     * next safe point).  0 = only explicit checkpoints (NVMe Flush,
     * shutdown notification, journal-region rotation).
     */
    std::uint32_t checkpointIntervalPrograms = 0;

    /**
     * Blocks reserved per plane for the checkpoint/journal region
     * (even, >= 2: the region is two ping-pong halves).
     */
    std::uint32_t reservedBlocksPerPlane = 2;
};

/** Configuration of a simulated SSD. */
struct SsdConfig
{
    flash::FlashGeometry geometry;
    flash::FlashTiming timing;
    flash::ErrorModelConfig errors = flash::ErrorModelConfig::ideal();

    /** Whether flash pages carry payloads (functional mode) or only
     *  state (timing mode for device-scale experiments). */
    bool storeData = true;

    /** Fraction of blocks held back as over-provisioning. */
    double overProvisioning = 0.07;

    /**
     * GC trigger: a plane starts garbage collection when its free-block
     * count drops below this fraction of blocksPerPlane.
     */
    double gcFreeBlockThreshold = 0.05;

    /**
     * Static wear leveling: when the erase-count spread within a plane
     * exceeds this threshold, the coldest data block is migrated onto a
     * well-worn free block so static data stops pinning young blocks.
     * 0 disables static wear leveling.
     */
    std::uint32_t wearLevelThreshold = 16;

    /**
     * Scramble host data before programming (paper Section 4.3.2).
     * ParaBit operand placement always bypasses the scrambler, as the
     * paper requires; this flag covers the normal host write path.
     */
    bool scrambleHostData = false;

    /** RNG seed (error injection, scrambler key, tie-breaking). */
    std::uint64_t seed = 0xC0FFEE;

    /** Sudden-power-off recovery (off by default). */
    RecoveryConfig recovery;

    /** Transaction-scheduler knobs (defaults reproduce the legacy
     *  greedy timing exactly; see ssd/sched/sched_config.hpp). */
    sched::SchedConfig sched;

    /** The paper's evaluated device (Section 5.1) in timing mode. */
    static SsdConfig
    paperSsd()
    {
        SsdConfig c;
        c.geometry = flash::FlashGeometry::paperSsd();
        c.storeData = false;
        return c;
    }

    /** Small functional device for tests and examples. */
    static SsdConfig
    tiny()
    {
        SsdConfig c;
        c.geometry = flash::FlashGeometry::tiny();
        c.storeData = true;
        return c;
    }
};

} // namespace parabit::ssd

#endif // PARABIT_SSD_CONFIG_HPP_
