/**
 * @file
 * Top-level SSD configuration.
 */

#ifndef PARABIT_SSD_CONFIG_HPP_
#define PARABIT_SSD_CONFIG_HPP_

#include <cstdint>

#include "flash/error_model.hpp"
#include "flash/geometry.hpp"
#include "flash/timing.hpp"
#include "ssd/sched/sched_config.hpp"

namespace parabit::ssd {

/**
 * Sudden-power-off recovery (SPOR) configuration.  When enabled the FTL
 * reserves the top blocks of every plane as an SLC-mode checkpoint +
 * write-ahead-journal region, attaches OOB metadata arbitration to
 * every mapping change, and can rebuild its tables after a power cut
 * (see DESIGN.md "Crash consistency").
 *
 * Interaction with media management: a scrub-triggered refresh
 * relocation is an ordinary sequence of OOB-stamped programs and
 * invalidations, so it inherits the same journaling/arbitration
 * guarantees — a power cut mid-refresh leaves either the old or the new
 * copy as the sequence-arbitration winner, never neither.  Paired
 * LSB/MSB operand refreshes go through the writePair copy-then-remap
 * path, so operands stay readable mid-refresh.  Disturb counters and
 * program timestamps are physical charge state: they survive a power
 * cut with the cells, and patrol scanning simply resumes after
 * powerCycle().
 */
struct RecoveryConfig
{
    bool enabled = false;

    /**
     * Data-page programs between automatic checkpoints (taken at the
     * next safe point).  0 = only explicit checkpoints (NVMe Flush,
     * shutdown notification, journal-region rotation).
     */
    std::uint32_t checkpointIntervalPrograms = 0;

    /**
     * Blocks reserved per plane for the checkpoint/journal region
     * (even, >= 2: the region is two ping-pong halves).
     */
    std::uint32_t reservedBlocksPerPlane = 2;
};

/**
 * Background media management: patrol scrub + refresh relocation.
 *
 * The patrol scrubber walks the physical pages of the device in
 * low-priority scan batches (TxClass::kScrub through the transaction
 * scheduler), predicts each mapped wordline's raw per-sensing RBER from
 * its P/E count, accumulated read disturb and retention age
 * (Chip::predictedRber), and refresh-relocates wordlines whose
 * prediction crosses refreshRberThreshold.  Relocation re-places pages
 * with their OOB tags preserved; paired ParaBit operands move through
 * the atomic writePair copy-then-remap.  Disabled (the default) the
 * subsystem adds no transactions and no state: the device is
 * tick-identical to a build without it.
 */
struct MediaConfig
{
    bool enabled = false;

    /**
     * Simulated time between patrol passes; a pass is started by the
     * first host I/O whose submission tick crosses the deadline (or by
     * an explicit SsdDevice::pumpMedia()).  0 = never scan.
     */
    Tick scrubInterval = flash::kDefaultScrubInterval;

    /** Wordlines scanned per patrol pass (bounds the burst a pass can
     *  impose on the device; anti-starvation at the batch level). */
    std::uint32_t scrubWordlinesPerPass = 256;

    /** Predicted raw per-sensing RBER beyond which a scanned wordline
     *  is refresh-relocated. */
    double refreshRberThreshold = 1e-4;

    /** Optional pure-count trigger: refresh once a wordline's disturb
     *  counter alone reaches this many senses (0 = disabled). */
    std::uint64_t refreshDisturbThreshold = 0;
};

/**
 * Die-level RAIN (Redundant Array of Independent NAND) parity.
 *
 * When enabled, every data-page program XORs its payload into a parity
 * page per stripe; a stripe is the set of pages at the same (plane,
 * block, wordline, page-kind) position across every die of one channel,
 * so any single die (or plane/chip) failure leaves at most one member
 * unreadable per stripe and RainController::rebuildPage() recovers it
 * as parity XOR surviving members.  Parity lives in the controller's
 * battery-backed stripe buffer (recomputed from flash on power cycle)
 * and its destage traffic is booked on the timing model.  Requires a
 * running patrol scrubber (scrubInterval > 0) so dead-die pages are
 * found and rebuilt in the background — validateMediaConfig() rejects
 * parity with scrubbing off.
 */
struct RainConfig
{
    bool enabled = false;

    /** Book one parity-destage program on the timing model for every
     *  data program of a stripe member (off = parity kept consistent
     *  functionally but destage bandwidth not charged). */
    bool chargeParityPrograms = true;
};

/**
 * Device health state machine: overload and degradation control plane.
 *
 * When enabled the device runs a DeviceHealth instance (ssd/health.hpp)
 * that folds existing distress signals — uncorrectable pages, RAIN
 * rebuilds, retired blocks, scrub refreshes, sustained queue depth —
 * into one exponentially-decaying pressure budget and walks a
 * healthy -> degraded -> read-only -> failed state machine over it.
 * Escalation happens the moment pressure crosses the next state's
 * threshold; de-escalation additionally requires a minimum dwell in the
 * state and pressure below threshold * (1 - hysteresis), so the machine
 * cannot oscillate at a boundary.  kFailed is terminal.  Per-state
 * policy: degraded throttles background scrub batches and RAIN parity
 * destage and sheds ParaBit formula admission; read-only additionally
 * rejects host writes with nvme::kWriteProtected; failed rejects
 * everything with nvme::kInternalError.  Disabled (the default) the
 * subsystem does not exist and the device is byte-identical to a build
 * without it.
 */
struct HealthConfig
{
    bool enabled = false;

    /** Pressure at which healthy escalates to degraded. */
    double degradedThreshold = 8.0;

    /** Pressure at which degraded escalates to read-only. */
    double readOnlyThreshold = 24.0;

    /** Pressure at which read-only escalates to failed (terminal). */
    double failedThreshold = 96.0;

    /**
     * De-escalation margin in (0, 1): a state steps back toward healthy
     * only once pressure has fallen below its own entry threshold times
     * (1 - hysteresis).
     */
    double hysteresis = 0.25;

    /** Exponential half-life of the pressure budget. */
    Tick pressureHalfLife = flash::kDefaultHealthHalfLife;

    /** Minimum simulated time in a state before de-escalation. */
    Tick minDwell = flash::kDefaultHealthMinDwell;

    /** @name Signal weights (pressure charged per event). */
    /// @{
    double weightUncorrectable = 4.0; ///< per uncorrectable page
    double weightRebuild = 1.0;       ///< per RAIN page rebuild
    double weightRetiredBlock = 2.0;  ///< per bad-block retirement
    double weightRefresh = 0.25;      ///< per scrub refresh relocation
    double weightQueuePressure = 0.5; ///< per near-full SQ submission
    /// @}

    /** SQ occupancy fraction above which a submission charges
     *  weightQueuePressure (sustained-queue-depth signal). */
    double queuePressureFraction = 0.75;

    /** Degraded-state throttle: background scrub batches shrink to
     *  scrubWordlinesPerPass / this (min 1); must be >= 1. */
    std::uint32_t degradedScrubDivisor = 4;
};

/**
 * Whole-device invariant audits (common/invariant.hpp).
 *
 * Every subsystem registers a named audit suite with the device's
 * InvariantRegistry at construction (FTL mapping bijection and OOB
 * agreement, scheduler booking exclusivity and work conservation, RAIN
 * stripe parity, media wear monotonicity).  The device runs all suites
 * every auditInterval transaction drains; a violation is dumped
 * through the obs/logging layer and treated as a panic (an audit
 * firing means the simulator state is corrupt — continuing would turn
 * a detected bug into silent wrong numbers).
 *
 * Audits are pure observation: they never book traffic or schedule
 * events, so enabling them changes no simulated timing — only wall
 * clock.  The default cadence is 0 (never) unless the build was
 * configured with -DPARABIT_INVARIANTS=ON, which flips it to every
 * drain; SsdDevice::auditInvariants() is available in every build for
 * tests and the parabit-model checker.
 */
struct InvariantConfig
{
    /** Run all registered audit suites every N drains (0 = never). */
    std::uint32_t auditInterval =
#ifdef PARABIT_INVARIANTS_ENABLED
        1;
#else
        0;
#endif

    /** Panic on a cadence-audit violation (tests running audits
     *  explicitly inspect the report instead). */
    bool fatalOnViolation = true;
};

/** Configuration of a simulated SSD. */
struct SsdConfig
{
    flash::FlashGeometry geometry;
    flash::FlashTiming timing;
    flash::ErrorModelConfig errors = flash::ErrorModelConfig::ideal();

    /** Whether flash pages carry payloads (functional mode) or only
     *  state (timing mode for device-scale experiments). */
    bool storeData = true;

    /** Fraction of blocks held back as over-provisioning. */
    double overProvisioning = 0.07;

    /**
     * GC trigger: a plane starts garbage collection when its free-block
     * count drops below this fraction of blocksPerPlane.
     */
    double gcFreeBlockThreshold = 0.05;

    /**
     * Static wear leveling: when the erase-count spread within a plane
     * exceeds this threshold, the coldest data block is migrated onto a
     * well-worn free block so static data stops pinning young blocks.
     * 0 disables static wear leveling.
     */
    std::uint32_t wearLevelThreshold = 16;

    /**
     * Scramble host data before programming (paper Section 4.3.2).
     * ParaBit operand placement always bypasses the scrambler, as the
     * paper requires; this flag covers the normal host write path.
     */
    bool scrambleHostData = false;

    /** RNG seed (error injection, scrambler key, tie-breaking). */
    std::uint64_t seed = 0xC0FFEE;

    /** Sudden-power-off recovery (off by default). */
    RecoveryConfig recovery;

    /** Transaction-scheduler knobs (defaults reproduce the legacy
     *  greedy timing exactly; see ssd/sched/sched_config.hpp). */
    sched::SchedConfig sched;

    /** Background media management (off by default). */
    MediaConfig media;

    /** Die-level RAIN parity (off by default). */
    RainConfig rain;

    /** Device health state machine (off by default). */
    HealthConfig health;

    /** Whole-device invariant audit cadence (defaults follow the
     *  PARABIT_INVARIANTS build option). */
    InvariantConfig invariants;

    /** The paper's evaluated device (Section 5.1) in timing mode. */
    static SsdConfig
    paperSsd()
    {
        SsdConfig c;
        c.geometry = flash::FlashGeometry::paperSsd();
        c.storeData = false;
        return c;
    }

    /** Small functional device for tests and examples. */
    static SsdConfig
    tiny()
    {
        SsdConfig c;
        c.geometry = flash::FlashGeometry::tiny();
        c.storeData = true;
        return c;
    }
};

/**
 * Validate the media-management/RAIN corner of @p cfg.  Returns nullptr
 * when consistent, else a static description of the violation.
 * SsdDevice's constructor treats a violation as fatal; parabit-verify
 * and the config tests call this directly.
 */
inline const char *
validateMediaConfig(const SsdConfig &cfg)
{
    if (cfg.rain.enabled &&
        (!cfg.media.enabled || cfg.media.scrubInterval == 0))
        return "rain.enabled requires a running patrol scrubber "
               "(media.enabled with media.scrubInterval > 0): parity "
               "rebuild of failed-die pages happens from scrub passes";
    if (cfg.media.enabled && cfg.media.scrubInterval > 0 &&
        cfg.media.scrubWordlinesPerPass == 0)
        return "media.scrubWordlinesPerPass must be nonzero when patrol "
               "scrubbing is enabled";
    return nullptr;
}

/**
 * Validate the device-health corner of @p cfg.  Returns nullptr when
 * consistent, else a static description of the violation.  SsdDevice's
 * constructor treats a violation as fatal; the config tests call this
 * directly.
 */
inline const char *
validateHealthConfig(const SsdConfig &cfg)
{
    const HealthConfig &h = cfg.health;
    if (!h.enabled)
        return nullptr; // knobs of a disabled subsystem are inert
    if (!(h.degradedThreshold > 0.0 &&
          h.degradedThreshold < h.readOnlyThreshold &&
          h.readOnlyThreshold < h.failedThreshold))
        return "health thresholds must be strictly ordered: 0 < "
               "degradedThreshold < readOnlyThreshold < failedThreshold "
               "(each state escalates at its own pressure level)";
    if (!(h.hysteresis > 0.0 && h.hysteresis < 1.0))
        return "health.hysteresis must be in (0, 1): without a nonzero "
               "de-escalation margin the state machine oscillates at a "
               "threshold boundary";
    if (h.pressureHalfLife == 0)
        return "health.pressureHalfLife must be nonzero: an instant-decay "
               "budget can never accumulate sustained distress";
    if (h.minDwell == 0)
        return "health.minDwell must be nonzero: zero dwell defeats the "
               "hysteresis guard on de-escalation";
    if (h.degradedScrubDivisor == 0)
        return "health.degradedScrubDivisor must be >= 1 (it divides the "
               "scrub batch size)";
    return nullptr;
}

} // namespace parabit::ssd

#endif // PARABIT_SSD_CONFIG_HPP_
