#include "ssd/scrambler.hpp"

#include "common/rng.hpp"

namespace parabit::ssd {

void
Scrambler::apply(BitVector &page, std::uint64_t lpn) const
{
    // One SplitMix64 stream per (device key, LPN); the stream is
    // deterministic, so XOR-ing twice cancels.
    Rng stream(key_ ^ (lpn * 0x9E3779B97F4A7C15ull) ^ 0x5CA4B1E5u);
    for (auto &w : page.words())
        w ^= stream.next();
    page.maskTail();
}

} // namespace parabit::ssd
