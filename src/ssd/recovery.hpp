/**
 * @file
 * Sudden-power-off recovery (SPOR) data model shared between the FTL,
 * the SSD device and the recovery tests/benches.
 *
 * Durability in this simulator is modeled at PhysOp granularity: a
 * checkpoint page or journal record only enters the DurableLog once its
 * flash program completed *before* the power cut (the FTL gates every
 * log-region program through the fault injector's power-cut check), so
 * what recovery can read after a crash is exactly what a real device
 * would find in its reserved blocks.  See DESIGN.md "Crash consistency"
 * for the on-flash layout the model stands in for.
 */

#ifndef PARABIT_SSD_RECOVERY_HPP_
#define PARABIT_SSD_RECOVERY_HPP_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitvector.hpp"
#include "common/units.hpp"

namespace parabit::ssd {

/** Host-visible logical page number. */
using Lpn = std::uint64_t;

/** OOB lpn value for pages that carry no logical mapping. */
inline constexpr Lpn kNoLpn = ~0ull;

/**
 * Why a page was programmed; stored in flash::PageOob::tag.  Recovery
 * treats all data tags identically (the mapping is arbitrated purely by
 * sequence number); the tag exists for debugging and for excluding
 * checkpoint/journal pages from the data scan.
 */
enum class OobTag : std::uint8_t
{
    kNone = 0,
    kHostData,
    kGcRelocated,
    kParabitPair,     ///< co-located operand pair (writePair)
    kParabitLsbOnly,  ///< LSB-only pre-allocation (writeLsbOnly)
    kParabitChainMsb, ///< chained result dropped into a free MSB
    kPairBackup,      ///< copy protecting an LSB under an in-place MSB drop
    kLog,             ///< checkpoint/journal page in the reserved region
};

/** One write-ahead journal record. */
struct JournalRecord
{
    enum class Kind : std::uint8_t
    {
        kTrim = 0, ///< lpn unmapped (written ahead of the trim ack)
        kRemap,    ///< lpn maps to linear page index `value`
        kErase,    ///< linear block id `value` erased (GC / wear level)
        kRetire,   ///< linear block id `value` retired (bad block)
    };

    Kind kind = Kind::kTrim;
    std::uint64_t seq = 0; ///< assigned from the FTL sequence stream
    Lpn lpn = 0;           ///< kTrim / kRemap
    std::uint64_t value = 0; ///< kRemap: linear page; kErase/kRetire: block
};

/** Snapshot of mapping + allocator state taken by a checkpoint. */
struct CheckpointImage
{
    struct Entry
    {
        Lpn lpn = 0;
        std::uint64_t phys = 0; ///< linear page index
        bool scrambled = false;
    };

    /** Sequence horizon: every program with seq < this is covered by
     *  the image; journal/OOB entries at or above it supersede it. */
    std::uint64_t seq = 0;
    std::vector<Entry> map;
    /** Linear block ids that may receive programs after this
     *  checkpoint (free pool + active cursor blocks): the bounded
     *  recovery scan set. */
    std::vector<std::uint64_t> scanBlocks;
    /** Linear block ids retired (bad) at checkpoint time. */
    std::vector<std::uint64_t> retired;
    /** Flash pages the serialized image occupies in the log region. */
    std::uint32_t pages = 0;
};

/**
 * One entry of the power-loss-protected unpaired-LSB buffer.  The MLC
 * shared-wordline hazard means a torn MSB program destroys the paired —
 * already acknowledged — LSB page.  The controller therefore keeps each
 * interleaved LSB write buffered in RAM until its partner MSB program
 * completes; on power failure the hold-up capacitors dump the buffer to
 * the reserved region (standard enterprise-SSD PLP), and recovery
 * re-programs any entry whose flash copy did not survive the tear.
 */
struct PlpEntry
{
    Lpn lpn = kNoLpn;
    /** OOB sequence number of the original program (stale-entry
     *  arbitration when an LPN was rewritten while still buffered). */
    std::uint64_t seq = 0;
    /** Payload exactly as programmed (absent in timing-only mode). */
    std::optional<BitVector> data;
    bool scrambled = false;
};

/** What survives in the reserved blocks; see file comment. */
struct DurableLog
{
    std::optional<CheckpointImage> checkpoint;
    /** Records flushed after `checkpoint` (the journal tail). */
    std::vector<JournalRecord> records;
    /** Capacitor-flushed unpaired-LSB buffer (see PlpEntry). */
    std::vector<PlpEntry> plpFlush;
};

/** Outcome and cost accounting of one recovery pass. */
struct RecoveryReport
{
    bool recovered = false;
    bool usedCheckpoint = false;
    std::uint64_t blocksScanned = 0;
    std::uint64_t pagesScanned = 0;      ///< OOB reads during the scan
    std::uint64_t oobCandidates = 0;     ///< valid pages entering arbitration
    std::uint64_t journalRecords = 0;    ///< journal records replayed
    std::uint64_t checkpointPagesRead = 0;
    std::uint64_t tornWordlines = 0;     ///< wordlines excluded as torn
    std::uint64_t mappingsRebuilt = 0;   ///< LPNs mapped after arbitration
    std::uint64_t staleInvalidated = 0;  ///< valid pages that lost arbitration
    std::uint64_t plpRestored = 0;       ///< pages re-programmed from PLP
    std::uint64_t nextSeq = 0;           ///< sequence stream after recovery
    Tick scanTime = 0;                   ///< simulated recovery time
};

} // namespace parabit::ssd

#endif // PARABIT_SSD_RECOVERY_HPP_
