#include "ssd/media.hpp"

#include <algorithm>

#include "ssd/health.hpp"

namespace parabit::ssd {

MediaScrubber::MediaScrubber(const SsdConfig &cfg, Ftl &ftl,
                             std::vector<flash::Chip> &chips,
                             RainController *rain)
    : cfg_(cfg), ftl_(&ftl), chips_(&chips), rain_(rain)
{
}

ScrubPassStats
MediaScrubber::pump(Tick now, std::vector<PhysOp> &ops)
{
    ScrubPassStats s;
    if (ftl_->powerLost() || now < nextPassAt_)
        return s;
    s.ran = true;
    ++passes_;
    // Degraded throttle: a distressed device shrinks its patrol batch
    // so foreground I/O is not competing with a full-rate scrub.
    std::uint32_t batch = cfg_.media.scrubWordlinesPerPass;
    if (health_ && health_->backgroundThrottled())
        batch = std::max<std::uint32_t>(
            1, batch / cfg_.health.degradedScrubDivisor);
    for (std::uint32_t n = 0; n < batch; ++n) {
        scanOne(s, ops);
        advanceCursor();
        if (ftl_->powerLost())
            break; // a power cut mid-pass ends the patrol
    }
    nextPassAt_ = now + cfg_.media.scrubInterval;
    return s;
}

void
MediaScrubber::scanOne(ScrubPassStats &s, std::vector<PhysOp> &ops)
{
    const flash::FlashGeometry &g = cfg_.geometry;
    // Reserved (SPOR log) and open (write-cursor) blocks are not
    // patrolled: the log region has its own lifecycle and open blocks
    // are still being filled by the FTL's cursors.
    if (ftl_->allocator().isReserved(plane_, block_) ||
        ftl_->allocator().isActiveBlock(plane_, block_))
        return;
    const PlaneCoord c = planeCoord(g, plane_);
    flash::Chip &chip =
        (*chips_)[static_cast<std::size_t>(c.channel) * g.chipsPerChannel +
                  c.chip];
    const flash::Block *blk = chip.plane(c.die, c.plane).blockIfExists(block_);
    if (!blk)
        return; // never-programmed block: nothing to patrol
    ++s.wordlinesScanned;
    ++scanned_;

    flash::PhysPageAddr a;
    a.channel = c.channel;
    a.chip = c.chip;
    a.die = c.die;
    a.plane = c.plane;
    a.block = block_;
    a.wordline = wl_;

    if (!chip.planeOperational(c.die, c.plane)) {
        repairWordline(a, s, ops);
        return;
    }

    // One patrol scan sense per valid page.  The functional read
    // charges neighbor disturb exactly like a host read (patrol is not
    // free); the booked kScrubRead runs in the background class.
    bool any_valid = false;
    for (const bool msb : {false, true}) {
        const flash::ChipPageAddr ca{c.die, c.plane, block_, wl_, msb};
        if (chip.pageState(ca) != flash::PageState::kValid)
            continue;
        any_valid = true;
        (void)chip.readPage(ca);
        a.msb = msb;
        ops.push_back(PhysOp{PhysOp::Kind::kScrubRead, a, true});
        ++s.scrubReads;
        ++reads_;
    }
    if (!any_valid)
        return;

    const flash::ChipPageAddr ca{c.die, c.plane, block_, wl_, false};
    const double rber = chip.predictedRber(ca);
    const std::uint64_t disturb = chip.wordlineDisturb(ca);
    const bool over_rber = rber >= cfg_.media.refreshRberThreshold;
    const bool over_disturb = cfg_.media.refreshDisturbThreshold > 0 &&
                              disturb >= cfg_.media.refreshDisturbThreshold;
    if (!over_rber && !over_disturb)
        return;
    a.msb = false;
    if (ftl_->refreshWordline(a, ops)) {
        ++s.refreshes;
        ++refreshes_;
        if (health_)
            health_->noteRefresh();
    } else {
        ++s.refreshFailures;
        ++refreshFails_;
    }
}

void
MediaScrubber::repairWordline(flash::PhysPageAddr a, ScrubPassStats &s,
                              std::vector<PhysOp> &ops)
{
    for (const bool msb : {false, true}) {
        a.msb = msb;
        const Lpn lpn = ftl_->lpnAt(a);
        if (lpn == kNoLpn)
            continue; // unmapped: nothing the host can lose
        std::optional<BitVector> data;
        if (rain_)
            data = rain_->rebuildPage(a);
        if (!data && cfg_.storeData) {
            // No parity (or a second stripe member is gone too):
            // genuine data loss, counted but left mapped so reads
            // fail loudly rather than silently serving garbage.
            ++s.uncorrectable;
            ++uncorrectable_;
            if (health_)
                health_->noteUncorrectable();
            continue;
        }
        if (ftl_->relocatePage(lpn, data ? &*data : nullptr, ops)) {
            ++s.repairs;
            ++repairs_;
            if (health_)
                health_->noteRebuild();
        } else {
            ++s.uncorrectable;
            ++uncorrectable_;
            if (health_)
                health_->noteUncorrectable();
        }
    }
}

void
MediaScrubber::advanceCursor()
{
    const flash::FlashGeometry &g = cfg_.geometry;
    if (++wl_ < g.wordlinesPerBlock)
        return;
    wl_ = 0;
    if (++block_ < g.blocksPerPlane)
        return;
    block_ = 0;
    if (++plane_ >= g.planesTotal())
        plane_ = 0;
}

} // namespace parabit::ssd
