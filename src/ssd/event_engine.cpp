#include "ssd/event_engine.hpp"

#include "common/logging.hpp"

namespace parabit::ssd {

void
EventEngine::schedule(Tick when, Callback cb)
{
    if (when < now_)
        panic("EventEngine::schedule: event in the past");
    queue_.push(Event{when, nextSeq_++, std::move(cb)});
}

bool
EventEngine::runOne()
{
    if (queue_.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast as the
    // element is popped immediately after (standard idiom).
    Event ev = std::move(const_cast<Event &>(queue_.top()));
    queue_.pop();
    now_ = ev.when;
    ev.cb();
    return true;
}

Tick
EventEngine::run()
{
    while (runOne()) {
    }
    return now_;
}

} // namespace parabit::ssd
