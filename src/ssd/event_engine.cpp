#include "ssd/event_engine.hpp"

#include "common/logging.hpp"
#include "obs/profiler.hpp"

namespace parabit::ssd {

namespace {

/** Events executed by every engine this process ever ran; the
 *  denominator of bench_simspeed's events/sec.  Engines are created
 *  per drain, so the counter lives outside any instance. */
std::uint64_t g_executed = 0;

} // namespace

std::uint64_t
EventEngine::processExecuted()
{
    return g_executed;
}

void
EventEngine::schedule(Tick when, Callback cb)
{
    if (halted_)
        return;
    if (when < now_)
        panic("EventEngine::schedule: event in the past");
    queue_.push(Event{when, nextSeq_++, std::move(cb)});
}

bool
EventEngine::runOne()
{
    if (halted_ || queue_.empty())
        return false;
    Event ev;
    {
        // Engine self-time is the queue discipline only; the callback
        // runs outside the scope so its time lands on the subsystem
        // that scheduled it (or the enclosing scope).
        PROFILE_SCOPE(obs::Subsystem::kEngine);
        // priority_queue::top() is const; move out via const_cast as
        // the element is popped immediately after (standard idiom).
        ev = std::move(const_cast<Event &>(queue_.top()));
        queue_.pop();
        now_ = ev.when;
        ++g_executed;
    }
    ev.cb();
    return true;
}

Tick
EventEngine::run()
{
    while (runOne()) {
    }
    return now_;
}

Tick
EventEngine::runUntil(Tick t)
{
    if (halted_)
        return now_; // a halted engine's clock is frozen
    while (!queue_.empty() && queue_.top().when <= t && runOne()) {
    }
    if (now_ < t && !halted_)
        now_ = t;
    return now_;
}

void
EventEngine::halt()
{
    halted_ = true;
    // priority_queue has no clear(); swap with an empty one.
    std::priority_queue<Event, std::vector<Event>, Later> empty;
    queue_.swap(empty);
}

} // namespace parabit::ssd
