#include "ssd/ftl.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/logging.hpp"
#include "obs/profiler.hpp"
#include "ssd/health.hpp"
#include "ssd/rain.hpp"

namespace parabit::ssd {

namespace {

} // namespace

Ftl::Ftl(const SsdConfig &cfg, std::vector<flash::Chip> &chips)
    : cfg_(cfg), chips_(&chips), alloc_(cfg.geometry),
      scrambler_(cfg.seed ^ 0x5C4A3B2E1D0FULL)
{
    double usable_blocks = cfg_.geometry.blocksPerPlane;
    if (cfg_.recovery.enabled) {
        const std::uint32_t r = cfg_.recovery.reservedBlocksPerPlane;
        if (r < 2 || r % 2 != 0 || r + 2 >= cfg_.geometry.blocksPerPlane)
            fatal("Ftl: recovery.reservedBlocksPerPlane must be even, >= 2 "
                  "and leave room for data blocks");
        // The top r blocks of every plane become the SLC checkpoint +
        // journal region, split into two ping-pong halves.
        for (PlaneIndex p = 0; p < alloc_.planeCount(); ++p)
            for (std::uint32_t i = 0; i < r; ++i)
                alloc_.reserveBlock(p, cfg_.geometry.blocksPerPlane - 1 - i);
        usable_blocks -= r;
    }
    const double usable = (1.0 - cfg_.overProvisioning) * usable_blocks /
                          cfg_.geometry.blocksPerPlane;
    logicalPages_ = static_cast<std::uint64_t>(
        std::floor(static_cast<double>(cfg_.geometry.totalPages()) * usable));
    gcThresholdBlocks_ = std::max<std::uint32_t>(
        2, static_cast<std::uint32_t>(cfg_.gcFreeBlockThreshold *
                                      cfg_.geometry.blocksPerPlane));
}

flash::Chip &
Ftl::chipAt(const flash::PhysPageAddr &a)
{
    const std::size_t idx =
        static_cast<std::size_t>(a.channel) * cfg_.geometry.chipsPerChannel +
        a.chip;
    return (*chips_).at(idx);
}

flash::ChipPageAddr
Ftl::chipAddr(const flash::PhysPageAddr &a) const
{
    return flash::ChipPageAddr{a.die, a.plane, a.block, a.wordline, a.msb};
}

void
Ftl::invalidatePhys(const flash::PhysPageAddr &a)
{
    if (rain_)
        rain_->willInvalidate(a);
    chipAt(a).plane(a.die, a.plane).block(a.block).invalidate(a.wordline,
                                                              a.msb);
}

Lpn
Ftl::lpnAt(const flash::PhysPageAddr &a) const
{
    auto it = reverse_.find(flash::linearPageIndex(cfg_.geometry, a));
    return it == reverse_.end() ? kNoLpn : it->second;
}

void
Ftl::unmapPhys(const flash::PhysPageAddr &a)
{
    const std::uint64_t lin = flash::linearPageIndex(cfg_.geometry, a);
    auto it = reverse_.find(lin);
    if (it == reverse_.end())
        return;
    map_.erase(it->second);
    reverse_.erase(it);
}

bool
Ftl::programPhys(const flash::PhysPageAddr &a, const BitVector *data,
                 bool for_gc, std::vector<PhysOp> &ops, Lpn lpn, OobTag tag,
                 bool scrambled)
{
    const PowerCut cut = powerBoundary(true);
    if (cut == PowerCut::kBeforeOp)
        return false; // power was cut before tPROG started
    // The attempt costs program time whether or not it sticks.
    ops.push_back(PhysOp{PhysOp::Kind::kPageProgram, a, for_gc});
    const flash::PageOob oob{lpn, seq_++, static_cast<std::uint8_t>(tag),
                             scrambled};
    if (!chipAt(a).programPage(chipAddr(a), data,
                               lpn == kNoLpn ? nullptr : &oob)) {
        ++programFailures_;
        const PlaneIndex p = planeIndex(
            cfg_.geometry, PlaneCoord{a.channel, a.chip, a.die, a.plane});
        alloc_.retireBlock(p, a.block);
        if (health_)
            health_->noteRetiredBlock();
        journalAppend(JournalRecord{JournalRecord::Kind::kRetire, 0, 0,
                                    linearBlockId(p, a.block)},
                      ops);
        logWarn("Ftl: program failure, retired block " +
                std::to_string(a.block) + " of plane " + std::to_string(p));
        return false;
    }
    if (cut == PowerCut::kMidProgram) {
        // tPROG was interrupted: the shared-wordline cells are left in
        // indeterminate states, corrupting the paired page as well.
        chipAt(a).markTornWordline(chipAddr(a));
        return false;
    }
    ++programsSinceCkpt_;
    if (recoveryEnabled() && lpn != kNoLpn) {
        // Paired-page protection: an interleaved LSB write stays in the
        // controller's PLP buffer until its partner MSB program
        // completes untorn (see PlpEntry).  ParaBit LSB-only layouts
        // are excluded — their free MSBs are filled via the explicit
        // backup protocol of writeIntoFreeMsb() instead.
        flash::PhysPageAddr lsb = a;
        lsb.msb = false;
        const std::uint64_t key = flash::linearPageIndex(cfg_.geometry, lsb);
        if (a.msb) {
            plpBuffer_.erase(key);
        } else if (tag == OobTag::kHostData || tag == OobTag::kGcRelocated) {
            flash::PhysPageAddr msb = a;
            msb.msb = true;
            if (chipAt(a).pageState(chipAddr(msb)) == flash::PageState::kFree) {
                PlpEntry e;
                e.lpn = lpn;
                e.seq = oob.seq;
                e.scrambled = scrambled;
                if (data)
                    e.data = *data;
                plpBuffer_[key] = std::move(e);
            }
        }
    }
    if (rain_)
        rain_->onProgram(a, ops);
    return true;
}

bool
Ftl::planeAlive(PlaneIndex plane)
{
    const PlaneCoord pc = planeCoord(cfg_.geometry, plane);
    flash::PhysPageAddr probe;
    probe.channel = pc.channel;
    probe.chip = pc.chip;
    probe.die = pc.die;
    probe.plane = pc.plane;
    return chipAt(probe).planeOperational(pc.die, pc.plane);
}

PlaneIndex
Ftl::pickAlivePlane()
{
    for (std::uint32_t i = 0; i < alloc_.planeCount(); ++i) {
        const PlaneIndex p = alloc_.nextPlane();
        if (planeAlive(p))
            return p;
    }
    fatal("Ftl: no operational plane left");
    return 0;
}

void
Ftl::mapLpn(Lpn lpn, const flash::PhysPageAddr &a, std::vector<PhysOp> &ops)
{
    // Invalidate any previous mapping of this LPN.
    auto old = map_.find(lpn);
    if (old != map_.end()) {
        const flash::PhysPageAddr o = old->second;
        invalidatePhys(o);
        reverse_.erase(flash::linearPageIndex(cfg_.geometry, o));
    }
    (void)ops;
    map_[lpn] = a;
    reverse_[flash::linearPageIndex(cfg_.geometry, a)] = lpn;
}

void
Ftl::collectGarbage(PlaneIndex plane, std::vector<PhysOp> &ops)
{
    if (inGc_)
        return; // GC relocations must not recurse
    inGc_ = true;
    ++gcRuns_;

    const PlaneCoord pc = planeCoord(cfg_.geometry, plane);
    flash::PhysPageAddr probe;
    probe.channel = pc.channel;
    probe.chip = pc.chip;
    probe.die = pc.die;
    probe.plane = pc.plane;
    flash::Chip &chip = chipAt(probe);
    flash::Plane &pl = chip.plane(pc.die, pc.plane);

    // Greedy victim selection: the touched, non-active block with the
    // fewest valid pages (untouched blocks are still free).
    std::int64_t victim = -1;
    std::uint32_t best_valid = cfg_.geometry.pagesPerBlock() + 1;
    for (std::uint32_t b = 0; b < cfg_.geometry.blocksPerPlane; ++b) {
        const flash::Block *blk = pl.blockIfExists(b);
        if (!blk || alloc_.isActiveBlock(plane, b) ||
            alloc_.isReserved(plane, b))
            continue;
        // Only consider blocks that are fully written or hold garbage.
        if (blk->freePages() == cfg_.geometry.pagesPerBlock())
            continue; // erased / never used: not a GC victim
        if (blk->validPages() < best_valid) {
            best_valid = blk->validPages();
            victim = b;
        }
    }
    if (victim < 0) {
        inGc_ = false;
        return;
    }

    // Relocate valid pages, then erase.
    flash::Block &blk = pl.block(static_cast<std::uint32_t>(victim));
    for (std::uint32_t wl = 0; wl < cfg_.geometry.wordlinesPerBlock; ++wl) {
        for (int m = 0; m < 2; ++m) {
            const bool msb = m == 1;
            if (blk.pageState(wl, msb) != flash::PageState::kValid)
                continue;
            flash::PhysPageAddr src = probe;
            src.block = static_cast<std::uint32_t>(victim);
            src.wordline = wl;
            src.msb = msb;
            const std::uint64_t lin =
                flash::linearPageIndex(cfg_.geometry, src);
            auto rit = reverse_.find(lin);
            const Lpn lpn = rit != reverse_.end() ? rit->second : kNoLpn;

            // Read the victim page.
            if (powerBoundary(false) != PowerCut::kNone) {
                inGc_ = false;
                return; // power cut: the victim keeps its valid pages
            }
            BitVector data = chip.readPage(chipAddr(src));
            ops.push_back(PhysOp{PhysOp::Kind::kPageRead, src, true});

            // Program it to a fresh page in the same plane.  A program
            // failure retires the destination block, so retrying simply
            // walks to the next pooled block.  When the plane runs out
            // of relocation targets (full, or its blocks fault-retired)
            // or power is cut, abort this GC: the victim keeps its
            // remaining valid pages and is simply never erased —
            // degraded, not corrupted.
            auto dst = alloc_.nextPage(plane);
            while (dst && !powerLost_ &&
                   !programPhys(*dst, cfg_.storeData ? &data : nullptr, true,
                                ops, lpn, OobTag::kGcRelocated,
                                lpn != kNoLpn &&
                                    scrambledLpns_.count(lpn) > 0)) {
                ++programRetries_;
                dst = alloc_.nextPage(plane);
            }
            if (!dst || powerLost_) {
                if (!powerLost_)
                    logWarn("Ftl::collectGarbage: no space to relocate in "
                            "plane " +
                            std::to_string(plane) + "; aborting GC");
                inGc_ = false;
                return;
            }
            ++gcWrites_;

            invalidatePhys(src);
            if (rit != reverse_.end()) {
                reverse_.erase(rit);
                map_[lpn] = *dst;
                reverse_[flash::linearPageIndex(cfg_.geometry, *dst)] = lpn;
            }
        }
    }
    // Journal the erase ahead of issuing it: after a checkpoint this
    // block would otherwise be outside the bounded recovery scan even
    // though it may be reused for fresh data.
    flash::PhysPageAddr eaddr = probe;
    eaddr.block = static_cast<std::uint32_t>(victim);
    if (!journalAppend(
            JournalRecord{JournalRecord::Kind::kErase, 0, 0,
                          linearBlockId(plane,
                                        static_cast<std::uint32_t>(victim))},
            ops) ||
        powerBoundary(false) != PowerCut::kNone) {
        inGc_ = false;
        return; // power cut: the victim stays unerased (all invalid)
    }
    ops.push_back(PhysOp{PhysOp::Kind::kBlockErase, eaddr, true});
    if (chip.eraseBlock(pc.die, pc.plane,
                        static_cast<std::uint32_t>(victim))) {
        ++erases_;
        alloc_.noteErased(plane, static_cast<std::uint32_t>(victim));
    } else {
        ++eraseFailures_;
        alloc_.retireBlock(plane, static_cast<std::uint32_t>(victim));
        if (health_)
            health_->noteRetiredBlock();
        journalAppend(
            JournalRecord{JournalRecord::Kind::kRetire, 0, 0,
                          linearBlockId(plane,
                                        static_cast<std::uint32_t>(victim))},
            ops);
        logWarn("Ftl: erase failure, retired block " +
                std::to_string(victim) + " of plane " +
                std::to_string(plane));
    }
    inGc_ = false;
}

std::uint32_t
Ftl::eraseSpread(PlaneIndex plane)
{
    const PlaneCoord pc = planeCoord(cfg_.geometry, plane);
    flash::PhysPageAddr probe;
    probe.channel = pc.channel;
    probe.chip = pc.chip;
    probe.die = pc.die;
    probe.plane = pc.plane;
    flash::Plane &pl = chipAt(probe).plane(pc.die, pc.plane);
    std::uint32_t lo = UINT32_MAX, hi = 0;
    for (std::uint32_t b = 0; b < cfg_.geometry.blocksPerPlane; ++b) {
        const flash::Block *blk = pl.blockIfExists(b);
        const std::uint32_t e = blk ? blk->eraseCount() : 0;
        lo = std::min(lo, e);
        hi = std::max(hi, e);
    }
    return hi - lo;
}

void
Ftl::maybeWearLevel(PlaneIndex plane, std::vector<PhysOp> &ops)
{
    if (cfg_.wearLevelThreshold == 0 || inGc_)
        return;

    const PlaneCoord pc = planeCoord(cfg_.geometry, plane);
    flash::PhysPageAddr probe;
    probe.channel = pc.channel;
    probe.chip = pc.chip;
    probe.die = pc.die;
    probe.plane = pc.plane;
    flash::Chip &chip = chipAt(probe);
    flash::Plane &pl = chip.plane(pc.die, pc.plane);

    // Find the coldest block holding static (fully valid) data and the
    // overall wear range.
    std::int64_t coldest = -1;
    std::uint32_t cold_erases = UINT32_MAX, hottest = 0;
    for (std::uint32_t b = 0; b < cfg_.geometry.blocksPerPlane; ++b) {
        if (alloc_.isReserved(plane, b))
            continue; // the log region does not take part in leveling
        const flash::Block *blk = pl.blockIfExists(b);
        const std::uint32_t e = blk ? blk->eraseCount() : 0;
        hottest = std::max(hottest, e);
        if (!blk || alloc_.isActiveBlock(plane, b))
            continue;
        if (blk->validPages() == 0)
            continue; // no data worth migrating
        if (e < cold_erases) {
            cold_erases = e;
            coldest = b;
        }
    }
    if (coldest < 0 || hottest - cold_erases < cfg_.wearLevelThreshold)
        return;
    if (alloc_.freeBlocks(plane) == 0)
        return;

    // Migrate the cold block's valid pages onto a pooled (well-worn,
    // thanks to FIFO recycling) free block, then recycle the cold one.
    inGc_ = true; // reuse the recursion guard: migration must not nest
    ++wearMoves_;
    bool migrated_all = true;
    flash::Block &blk = pl.block(static_cast<std::uint32_t>(coldest));
    for (std::uint32_t wl = 0;
         migrated_all && wl < cfg_.geometry.wordlinesPerBlock; ++wl) {
        for (int m = 0; m < 2; ++m) {
            const bool msb = m == 1;
            if (blk.pageState(wl, msb) != flash::PageState::kValid)
                continue;
            flash::PhysPageAddr src = probe;
            src.block = static_cast<std::uint32_t>(coldest);
            src.wordline = wl;
            src.msb = msb;
            const std::uint64_t lin =
                flash::linearPageIndex(cfg_.geometry, src);
            auto rit = reverse_.find(lin);
            const Lpn lpn = rit != reverse_.end() ? rit->second : kNoLpn;

            if (powerBoundary(false) != PowerCut::kNone) {
                migrated_all = false; // power cut: keep the cold block
                break;
            }
            BitVector data = chip.readPage(chipAddr(src));
            ops.push_back(PhysOp{PhysOp::Kind::kPageRead, src, true});
            auto dst = alloc_.nextPage(plane);
            while (dst && !powerLost_ &&
                   !programPhys(*dst, cfg_.storeData ? &data : nullptr, true,
                                ops, lpn, OobTag::kGcRelocated,
                                lpn != kNoLpn &&
                                    scrambledLpns_.count(lpn) > 0)) {
                ++programRetries_;
                dst = alloc_.nextPage(plane);
            }
            if (!dst || powerLost_) {
                // Out of relocation targets (or power cut): the cold
                // block must NOT be erased — its unmigrated pages are
                // still the only copy.
                migrated_all = false;
                break;
            }
            ++gcWrites_;
            invalidatePhys(src);
            if (rit != reverse_.end()) {
                reverse_.erase(rit);
                map_[lpn] = *dst;
                reverse_[flash::linearPageIndex(cfg_.geometry, *dst)] = lpn;
            }
        }
    }
    if (!migrated_all) {
        if (!powerLost_)
            logWarn("Ftl: wear-level migration ran out of space in plane " +
                    std::to_string(plane) + "; cold block kept");
        inGc_ = false;
        return;
    }
    flash::PhysPageAddr eaddr = probe;
    eaddr.block = static_cast<std::uint32_t>(coldest);
    if (!journalAppend(
            JournalRecord{JournalRecord::Kind::kErase, 0, 0,
                          linearBlockId(plane,
                                        static_cast<std::uint32_t>(coldest))},
            ops) ||
        powerBoundary(false) != PowerCut::kNone) {
        inGc_ = false;
        return; // power cut: the cold block stays unerased (all invalid)
    }
    ops.push_back(PhysOp{PhysOp::Kind::kBlockErase, eaddr, true});
    if (chip.eraseBlock(pc.die, pc.plane,
                        static_cast<std::uint32_t>(coldest))) {
        ++erases_;
        alloc_.noteErased(plane, static_cast<std::uint32_t>(coldest));
    } else {
        ++eraseFailures_;
        alloc_.retireBlock(plane, static_cast<std::uint32_t>(coldest));
        if (health_)
            health_->noteRetiredBlock();
        journalAppend(
            JournalRecord{JournalRecord::Kind::kRetire, 0, 0,
                          linearBlockId(plane,
                                        static_cast<std::uint32_t>(coldest))},
            ops);
        logWarn("Ftl: erase failure, retired block " +
                std::to_string(coldest) + " of plane " +
                std::to_string(plane));
    }
    inGc_ = false;
}

std::optional<flash::PhysPageAddr>
Ftl::allocateOrGc(PlaneIndex plane, bool lsb_only, std::vector<PhysOp> &ops)
{
    if (alloc_.freeBlocks(plane) < gcThresholdBlocks_) {
        collectGarbage(plane, ops);
        maybeWearLevel(plane, ops);
    }
    auto a = lsb_only ? alloc_.nextLsbOnly(plane) : alloc_.nextPage(plane);
    if (!a) {
        collectGarbage(plane, ops);
        a = lsb_only ? alloc_.nextLsbOnly(plane) : alloc_.nextPage(plane);
    }
    return a;
}

std::optional<PagePair>
Ftl::allocatePairOrGc(PlaneIndex plane, std::vector<PhysOp> &ops)
{
    if (alloc_.freeBlocks(plane) < gcThresholdBlocks_)
        collectGarbage(plane, ops);
    auto p = alloc_.nextPair(plane);
    if (!p) {
        collectGarbage(plane, ops);
        p = alloc_.nextPair(plane);
    }
    return p;
}

bool
Ftl::writePage(Lpn lpn, const BitVector *data, std::vector<PhysOp> &ops)
{
    PROFILE_SCOPE(obs::Subsystem::kFtl);
    if (lpn >= logicalPages_)
        fatal("Ftl::writePage: LPN beyond logical capacity");
    BitVector whitened;
    const BitVector *payload = data;
    const bool scramble = cfg_.scrambleHostData && data;
    if (scramble) {
        whitened = *data;
        scrambler_.apply(whitened, lpn);
        payload = &whitened;
    }
    for (int attempt = 0; attempt < kMaxProgramRetries; ++attempt) {
        if (powerLost_)
            break; // cut: the write is never acknowledged
        const PlaneIndex plane = pickAlivePlane();
        const auto a = allocateOrGc(plane, false, ops);
        if (!a) {
            // Plane full even after GC (e.g. fault-retired blocks);
            // the next attempt strides to another plane.
            ++programRetries_;
            continue;
        }
        if (!programPhys(*a, payload, false, ops, lpn, OobTag::kHostData,
                         scramble)) {
            ++programRetries_;
            continue;
        }
        if (scramble)
            scrambledLpns_.insert(lpn);
        else
            scrambledLpns_.erase(lpn);
        ++hostWrites_;
        mapLpn(lpn, *a, ops);
        maybeCheckpoint(ops);
        return true;
    }
    if (!powerLost_)
        logWarn("Ftl::writePage: program retries exhausted for LPN " +
                std::to_string(lpn));
    return false;
}

BitVector
Ftl::readPage(Lpn lpn, std::vector<PhysOp> &ops)
{
    PROFILE_SCOPE(obs::Subsystem::kFtl);
    auto it = map_.find(lpn);
    if (it == map_.end())
        fatal("Ftl::readPage: unmapped LPN");
    const flash::PhysPageAddr &a = it->second;
    if (powerBoundary(false) != PowerCut::kNone)
        return BitVector(cfg_.geometry.pageBits(), false); // power is down
    ops.push_back(PhysOp{PhysOp::Kind::kPageRead, a, false});
    BitVector page = chipAt(a).readPage(chipAddr(a));
    if (cfg_.scrambleHostData && scrambledLpns_.count(lpn))
        scrambler_.apply(page, lpn);
    return page;
}

std::optional<flash::PhysPageAddr>
Ftl::lookup(Lpn lpn) const
{
    auto it = map_.find(lpn);
    if (it == map_.end())
        return std::nullopt;
    return it->second;
}

bool
Ftl::pageAccessible(Lpn lpn)
{
    auto it = map_.find(lpn);
    if (it == map_.end())
        return false;
    const flash::PhysPageAddr &a = it->second;
    return chipAt(a).planeOperational(a.die, a.plane);
}

bool
Ftl::trim(Lpn lpn, std::vector<PhysOp> *ops)
{
    if (powerLost_)
        return false;
    auto it = map_.find(lpn);
    if (it == map_.end())
        return true;
    // Write-ahead: the trim record must be durable before the mapping
    // is dropped, otherwise recovery would resurrect the page (its OOB
    // entry is still the newest mapping on flash).
    std::vector<PhysOp> local;
    std::vector<PhysOp> &o = ops ? *ops : local;
    if (!journalAppend(JournalRecord{JournalRecord::Kind::kTrim, 0, lpn, 0},
                       o))
        return false; // cut before the record flushed: trim not acked
    const flash::PhysPageAddr a = it->second;
    invalidatePhys(a);
    reverse_.erase(flash::linearPageIndex(cfg_.geometry, a));
    map_.erase(it);
    scrambledLpns_.erase(lpn);
    // A buffered unpaired-LSB copy of this LPN must die with the trim,
    // or a later capacitor flush would resurrect the trimmed page.
    for (auto pit = plpBuffer_.begin(); pit != plpBuffer_.end();) {
        if (pit->second.lpn == lpn)
            pit = plpBuffer_.erase(pit);
        else
            ++pit;
    }
    return true;
}

std::optional<PagePair>
Ftl::writePair(Lpn lpn_x, Lpn lpn_y, const BitVector *data_x,
               const BitVector *data_y, std::vector<PhysOp> &ops,
               std::optional<PlaneIndex> plane)
{
    if (plane && !planeAlive(*plane))
        return std::nullopt;
    for (int attempt = 0; attempt < kMaxProgramRetries; ++attempt) {
        if (powerLost_)
            break;
        const PlaneIndex p = plane ? *plane : pickAlivePlane();
        const auto pair = allocatePairOrGc(p, ops);
        if (!pair) {
            ++programRetries_;
            continue;
        }
        if (!programPhys(pair->lsb, data_x, false, ops, lpn_x,
                         OobTag::kParabitPair)) {
            ++programRetries_;
            continue;
        }
        if (!programPhys(pair->msb, data_y, false, ops, lpn_y,
                         OobTag::kParabitPair)) {
            // The block was retired (or the program torn by a power
            // cut); the LSB half just written goes with it — mark it
            // garbage so GC never relocates it.  Until both halves are
            // durable neither LPN's mapping moves (copy-then-remap), so
            // a cut here fully rolls the pair placement back.
            invalidatePhys(pair->lsb);
            ++programRetries_;
            continue;
        }
        parabitWrites_ += 2;
        // ParaBit operands are stored raw (scrambling off, Sec 4.3.2).
        scrambledLpns_.erase(lpn_x);
        scrambledLpns_.erase(lpn_y);
        mapLpn(lpn_x, pair->lsb, ops);
        mapLpn(lpn_y, pair->msb, ops);
        maybeCheckpoint(ops);
        return *pair;
    }
    if (!powerLost_)
        logWarn("Ftl::writePair: program retries exhausted");
    return std::nullopt;
}

std::optional<flash::PhysPageAddr>
Ftl::writeLsbOnly(Lpn lpn, const BitVector *data, std::vector<PhysOp> &ops,
                  std::optional<PlaneIndex> plane)
{
    if (plane && !planeAlive(*plane))
        return std::nullopt;
    for (int attempt = 0; attempt < kMaxProgramRetries; ++attempt) {
        if (powerLost_)
            break;
        const PlaneIndex p = plane ? *plane : pickAlivePlane();
        const auto a = allocateOrGc(p, true, ops);
        if (!a) {
            ++programRetries_;
            continue;
        }
        if (!programPhys(*a, data, false, ops, lpn,
                         OobTag::kParabitLsbOnly)) {
            ++programRetries_;
            continue;
        }
        ++parabitWrites_;
        scrambledLpns_.erase(lpn);
        mapLpn(lpn, *a, ops);
        maybeCheckpoint(ops);
        return *a;
    }
    if (!powerLost_)
        logWarn("Ftl::writeLsbOnly: program retries exhausted");
    return std::nullopt;
}

bool
Ftl::writeIntoFreeMsb(Lpn lpn, const flash::PhysPageAddr &lsb_addr,
                      const BitVector *data, std::vector<PhysOp> &ops)
{
    flash::PhysPageAddr msb = lsb_addr;
    msb.msb = true;
    flash::Chip &chip = chipAt(msb);
    if (chip.pageState(chipAddr(msb)) != flash::PageState::kFree)
        return false;

    // Crash hazard: a power cut mid-tPROG of this MSB tears the
    // wordline and takes the *already acknowledged* LSB page with it.
    // In recovery mode, first copy that LSB aside (backup, higher
    // sequence number, mapping untouched); after the MSB is durable a
    // journaled remap re-asserts the original location and releases the
    // copy.  Whatever prefix of that protocol a cut leaves behind,
    // arbitration resolves to intact data (copy-then-remap).
    std::optional<flash::PhysPageAddr> backup;
    Lpn lsb_lpn = kNoLpn;
    if (recoveryEnabled()) {
        auto rit = reverse_.find(flash::linearPageIndex(cfg_.geometry,
                                                        lsb_addr));
        if (rit != reverse_.end()) {
            lsb_lpn = rit->second;
            if (powerBoundary(false) != PowerCut::kNone)
                return false;
            BitVector copy = chip.readPage(chipAddr(lsb_addr));
            ops.push_back(PhysOp{PhysOp::Kind::kPageRead, lsb_addr, false});
            const PlaneIndex p = planeIndex(
                cfg_.geometry, PlaneCoord{lsb_addr.channel, lsb_addr.chip,
                                          lsb_addr.die, lsb_addr.plane});
            // Suppress GC while placing the copy: a GC run here could
            // relocate the very LSB we are protecting out from under
            // the caller's placement decision.
            const bool was_in_gc = inGc_;
            inGc_ = true;
            auto a = alloc_.nextLsbOnly(p);
            while (a && !powerLost_ &&
                   !programPhys(*a, cfg_.storeData ? &copy : nullptr, false,
                                ops, lsb_lpn, OobTag::kPairBackup,
                                scrambledLpns_.count(lsb_lpn) > 0)) {
                ++programRetries_;
                a = alloc_.nextLsbOnly(p);
            }
            inGc_ = was_in_gc;
            if (!a || powerLost_)
                return false; // cannot protect the LSB: refuse the drop
            backup = *a;
            ++parabitWrites_; // protocol overhead traffic
        }
    }

    if (!programPhys(msb, data, false, ops, lpn, OobTag::kParabitChainMsb)) {
        // Block retired or power cut; roll the protocol back.
        if (backup && !powerLost_)
            invalidatePhys(*backup);
        return false;
    }
    if (backup) {
        // MSB durable: journal the drop itself (its block may be
        // outside the bounded scan set) and re-assert the original LSB
        // location with a sequence number above the backup's, then drop
        // the copy.  A cut between these steps leaves the backup as the
        // arbitration winner — same data, different page.
        journalAppend(
            JournalRecord{JournalRecord::Kind::kRemap, 0, lpn,
                          flash::linearPageIndex(cfg_.geometry, msb)},
            ops);
        journalAppend(
            JournalRecord{JournalRecord::Kind::kRemap, 0, lsb_lpn,
                          flash::linearPageIndex(cfg_.geometry, lsb_addr)},
            ops);
        if (!powerLost_)
            invalidatePhys(*backup);
    } else if (recoveryEnabled()) {
        journalAppend(
            JournalRecord{JournalRecord::Kind::kRemap, 0, lpn,
                          flash::linearPageIndex(cfg_.geometry, msb)},
            ops);
    }
    ++parabitWrites_;
    scrambledLpns_.erase(lpn);
    mapLpn(lpn, msb, ops);
    maybeCheckpoint(ops);
    return true;
}

bool
Ftl::refreshOnePage(const flash::PhysPageAddr &src, Lpn lpn, OobTag tag,
                    bool lsb_only, std::vector<PhysOp> &ops)
{
    if (powerBoundary(false) != PowerCut::kNone)
        return false;
    BitVector data = chipAt(src).readPage(chipAddr(src));
    ops.push_back(PhysOp{PhysOp::Kind::kPageRead, src, true});
    const bool scr = scrambledLpns_.count(lpn) > 0;
    for (int attempt = 0; attempt < kMaxProgramRetries; ++attempt) {
        if (powerLost_)
            break;
        const PlaneIndex p = pickAlivePlane();
        const auto a = allocateOrGc(p, lsb_only, ops);
        if (!a) {
            ++programRetries_;
            continue;
        }
        if (!programPhys(*a, cfg_.storeData ? &data : nullptr, true, ops,
                         lpn, tag, scr)) {
            ++programRetries_;
            continue;
        }
        ++refreshWrites_;
        mapLpn(lpn, *a, ops);
        maybeCheckpoint(ops);
        return true;
    }
    if (!powerLost_)
        logWarn("Ftl::refreshOnePage: program retries exhausted for LPN " +
                std::to_string(lpn));
    return false;
}

bool
Ftl::refreshWordline(const flash::PhysPageAddr &wl, std::vector<PhysOp> &ops)
{
    if (powerLost_)
        return false;
    flash::PhysPageAddr lsb = wl;
    lsb.msb = false;
    flash::PhysPageAddr msb = wl;
    msb.msb = true;
    flash::Chip &chip = chipAt(wl);
    const bool lsb_valid =
        chip.pageState(chipAddr(lsb)) == flash::PageState::kValid;
    const bool msb_valid =
        chip.pageState(chipAddr(msb)) == flash::PageState::kValid;
    const Lpn lsb_lpn = lsb_valid ? lpnAt(lsb) : kNoLpn;
    const Lpn msb_lpn = msb_valid ? lpnAt(msb) : kNoLpn;

    auto tag_of = [&](const flash::PhysPageAddr &a) {
        const flash::PageOob *oob = chip.pageOob(chipAddr(a));
        return oob ? static_cast<OobTag>(oob->tag) : OobTag::kNone;
    };
    auto is_parabit = [](OobTag t) {
        return t == OobTag::kParabitPair || t == OobTag::kParabitLsbOnly ||
               t == OobTag::kParabitChainMsb;
    };

    // A co-located ParaBit operand pair moves atomically through
    // writePair (copy-then-remap): both operands land on one fresh
    // wordline, so co-location — and mid-refresh readability — hold.
    // ParaBit operands are stored raw, so the writePair path's
    // scrambling reset is a no-op for them.
    if (lsb_valid && msb_valid && lsb_lpn != kNoLpn && msb_lpn != kNoLpn &&
        is_parabit(tag_of(lsb)) && is_parabit(tag_of(msb))) {
        if (powerBoundary(false) != PowerCut::kNone)
            return false;
        BitVector dx = chip.readPage(chipAddr(lsb));
        ops.push_back(PhysOp{PhysOp::Kind::kPageRead, lsb, true});
        BitVector dy = chip.readPage(chipAddr(msb));
        ops.push_back(PhysOp{PhysOp::Kind::kPageRead, msb, true});
        const auto pair =
            writePair(lsb_lpn, msb_lpn, cfg_.storeData ? &dx : nullptr,
                      cfg_.storeData ? &dy : nullptr, ops);
        return pair.has_value();
    }

    // Everything else relocates per page, preserving tag semantics:
    // LSB-only placements keep their free-MSB property, data pages
    // move as GC-style copies with their scrambling flag intact.
    // Unmapped valid pages (pair backups mid-protocol) are left alone.
    bool ok = true;
    if (lsb_valid && lsb_lpn != kNoLpn) {
        const OobTag t = tag_of(lsb);
        const bool lsb_only = t == OobTag::kParabitLsbOnly;
        ok = refreshOnePage(lsb, lsb_lpn,
                            lsb_only ? OobTag::kParabitLsbOnly
                                     : OobTag::kGcRelocated,
                            lsb_only, ops) &&
             ok;
    }
    if (msb_valid && msb_lpn != kNoLpn)
        ok = refreshOnePage(msb, msb_lpn, OobTag::kGcRelocated, false,
                            ops) &&
             ok;
    return ok;
}

bool
Ftl::relocatePage(Lpn lpn, const BitVector *data, std::vector<PhysOp> &ops)
{
    auto it = map_.find(lpn);
    if (it == map_.end())
        return false;
    const bool scr = scrambledLpns_.count(lpn) > 0;
    for (int attempt = 0; attempt < kMaxProgramRetries; ++attempt) {
        if (powerLost_)
            break;
        const PlaneIndex p = pickAlivePlane();
        const auto a = allocateOrGc(p, false, ops);
        if (!a) {
            ++programRetries_;
            continue;
        }
        if (!programPhys(*a, data, true, ops, lpn, OobTag::kGcRelocated,
                         scr)) {
            ++programRetries_;
            continue;
        }
        ++refreshWrites_;
        mapLpn(lpn, *a, ops);
        maybeCheckpoint(ops);
        return true;
    }
    if (!powerLost_)
        logWarn("Ftl::relocatePage: program retries exhausted for LPN " +
                std::to_string(lpn));
    return false;
}

void
Ftl::auditInvariants(InvariantReport &r) const
{
    const flash::FlashGeometry &g = cfg_.geometry;

    // ftl.map.bijection: map_ and reverse_ are exact inverses.  Equal
    // sizes plus every forward entry round-tripping implies the reverse
    // map holds nothing else.
    if (!r.check(map_.size() == reverse_.size()))
        r.fail("ftl.map.bijection", "table sizes",
               "map has " + std::to_string(map_.size()) +
                   " entries, reverse has " +
                   std::to_string(reverse_.size()));
    for (const auto &[lpn, addr] : map_) {
        const std::uint64_t lin = flash::linearPageIndex(g, addr);
        const auto rit = reverse_.find(lin);
        if (!r.check(rit != reverse_.end() && rit->second == lpn)) {
            r.fail("ftl.map.bijection", "lpn " + std::to_string(lpn),
                   "maps to linear page " + std::to_string(lin) +
                       ", whose reverse entry is " +
                       (rit == reverse_.end()
                            ? std::string("missing")
                            : "lpn " + std::to_string(rit->second)));
            continue; // the OOB checks below would only cascade
        }

        // ftl.map.oob: the mapped page is valid on flash and its OOB
        // metadata agrees with the tables.
        const flash::Chip &chip =
            (*chips_)[static_cast<std::size_t>(addr.channel) *
                          g.chipsPerChannel +
                      addr.chip];
        const flash::Block *blk =
            chip.plane(addr.die, addr.plane).blockIfExists(addr.block);
        const std::string subj = "lpn " + std::to_string(lpn);
        if (!r.check(blk != nullptr &&
                     blk->pageState(addr.wordline, addr.msb) ==
                         flash::PageState::kValid)) {
            r.fail("ftl.map.oob", subj,
                   "mapped physical page is not valid on flash");
            continue;
        }
        const flash::PageOob *oob = blk->pageOob(addr.wordline, addr.msb);
        if (!r.check(oob != nullptr && oob->lpn == lpn)) {
            r.fail("ftl.map.oob", subj,
                   std::string("OOB ") +
                       (oob ? "lpn " + std::to_string(oob->lpn)
                            : "metadata missing") +
                       " does not name the mapped lpn");
            continue;
        }
        if (!r.check(oob->seq < seq_))
            r.fail("ftl.map.oob", subj,
                   "OOB seq " + std::to_string(oob->seq) +
                       " >= next sequence " + std::to_string(seq_));
        if (!r.check(oob->scrambled == (scrambledLpns_.count(lpn) > 0)))
            r.fail("ftl.map.oob", subj,
                   std::string("OOB scrambled flag ") +
                       (oob->scrambled ? "set" : "clear") +
                       " disagrees with the scrambled-LPN table");
    }

    // One walk over every materialised block: valid-count accounting
    // and the MLC program-order pairing invariant.
    for (PlaneIndex p = 0; p < g.planesTotal(); ++p) {
        const PlaneCoord c = planeCoord(g, p);
        const flash::Chip &chip =
            (*chips_)[static_cast<std::size_t>(c.channel) *
                          g.chipsPerChannel +
                      c.chip];
        const flash::Plane &pl = chip.plane(c.die, c.plane);
        for (std::uint32_t b = 0; b < g.blocksPerPlane; ++b) {
            const flash::Block *blk = pl.blockIfExists(b);
            if (!blk)
                continue;
            const std::string subj = "plane " + std::to_string(p) +
                                     " block " + std::to_string(b);
            std::uint32_t valid = 0;
            for (std::uint32_t wl = 0; wl < blk->wordlines(); ++wl) {
                const flash::PageState lsb = blk->pageState(wl, false);
                const flash::PageState msb = blk->pageState(wl, true);
                valid += (lsb == flash::PageState::kValid) +
                         (msb == flash::PageState::kValid);
                // ftl.pair.lsb_msb: an MSB page is only ever programmed
                // over a non-free LSB (interleaved order, writePair,
                // writeIntoFreeMsb all guarantee it).
                if (!r.check(msb == flash::PageState::kFree ||
                             lsb != flash::PageState::kFree))
                    r.fail("ftl.pair.lsb_msb",
                           subj + " wordline " + std::to_string(wl),
                           "MSB page programmed while the LSB page is "
                           "free");
            }
            if (!r.check(valid == blk->validPages()))
                r.fail("ftl.blocks.valid_count", subj,
                       "block counter says " +
                           std::to_string(blk->validPages()) +
                           " valid pages, recount says " +
                           std::to_string(valid));
        }
    }
}

bool
Ftl::debugCorruptMapping(Lpn lpn)
{
    const auto it = map_.find(lpn);
    if (it == map_.end())
        return false;
    // Reroute the forward entry one wordline over; reverse_ still holds
    // the old linear index, so the bijection audit must fire.
    it->second.wordline =
        (it->second.wordline + 1) % cfg_.geometry.wordlinesPerBlock;
    return true;
}

} // namespace parabit::ssd
