#include "ssd/ftl.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/logging.hpp"

namespace parabit::ssd {

namespace {

/** Re-placements attempted after an injected program failure before the
 *  write is reported as failed (each failure also retires a block, so
 *  repeated failures walk across fresh blocks, not the same one). */
constexpr int kMaxProgramRetries = 4;

} // namespace

Ftl::Ftl(const SsdConfig &cfg, std::vector<flash::Chip> &chips)
    : cfg_(cfg), chips_(&chips), alloc_(cfg.geometry),
      scrambler_(cfg.seed ^ 0x5C4A3B2E1D0FULL)
{
    const double usable = 1.0 - cfg_.overProvisioning;
    logicalPages_ = static_cast<std::uint64_t>(
        std::floor(static_cast<double>(cfg_.geometry.totalPages()) * usable));
    gcThresholdBlocks_ = std::max<std::uint32_t>(
        2, static_cast<std::uint32_t>(cfg_.gcFreeBlockThreshold *
                                      cfg_.geometry.blocksPerPlane));
}

flash::Chip &
Ftl::chipAt(const flash::PhysPageAddr &a)
{
    const std::size_t idx =
        static_cast<std::size_t>(a.channel) * cfg_.geometry.chipsPerChannel +
        a.chip;
    return (*chips_).at(idx);
}

flash::ChipPageAddr
Ftl::chipAddr(const flash::PhysPageAddr &a) const
{
    return flash::ChipPageAddr{a.die, a.plane, a.block, a.wordline, a.msb};
}

void
Ftl::unmapPhys(const flash::PhysPageAddr &a)
{
    const std::uint64_t lin = flash::linearPageIndex(cfg_.geometry, a);
    auto it = reverse_.find(lin);
    if (it == reverse_.end())
        return;
    map_.erase(it->second);
    reverse_.erase(it);
}

bool
Ftl::programPhys(const flash::PhysPageAddr &a, const BitVector *data,
                 bool for_gc, std::vector<PhysOp> &ops)
{
    // The attempt costs program time whether or not it sticks.
    ops.push_back(PhysOp{PhysOp::Kind::kPageProgram, a, for_gc});
    if (chipAt(a).programPage(chipAddr(a), data))
        return true;
    ++programFailures_;
    const PlaneIndex p = planeIndex(
        cfg_.geometry, PlaneCoord{a.channel, a.chip, a.die, a.plane});
    alloc_.retireBlock(p, a.block);
    logWarn("Ftl: program failure, retired block " +
            std::to_string(a.block) + " of plane " + std::to_string(p));
    return false;
}

bool
Ftl::planeAlive(PlaneIndex plane)
{
    const PlaneCoord pc = planeCoord(cfg_.geometry, plane);
    flash::PhysPageAddr probe;
    probe.channel = pc.channel;
    probe.chip = pc.chip;
    probe.die = pc.die;
    probe.plane = pc.plane;
    return chipAt(probe).planeOperational(pc.die, pc.plane);
}

PlaneIndex
Ftl::pickAlivePlane()
{
    for (std::uint32_t i = 0; i < alloc_.planeCount(); ++i) {
        const PlaneIndex p = alloc_.nextPlane();
        if (planeAlive(p))
            return p;
    }
    fatal("Ftl: no operational plane left");
    return 0;
}

void
Ftl::mapLpn(Lpn lpn, const flash::PhysPageAddr &a, std::vector<PhysOp> &ops)
{
    // Invalidate any previous mapping of this LPN.
    auto old = map_.find(lpn);
    if (old != map_.end()) {
        const flash::PhysPageAddr &o = old->second;
        chipAt(o).plane(o.die, o.plane)
            .block(o.block)
            .invalidate(o.wordline, o.msb);
        reverse_.erase(flash::linearPageIndex(cfg_.geometry, o));
    }
    (void)ops;
    map_[lpn] = a;
    reverse_[flash::linearPageIndex(cfg_.geometry, a)] = lpn;
}

void
Ftl::collectGarbage(PlaneIndex plane, std::vector<PhysOp> &ops)
{
    if (inGc_)
        return; // GC relocations must not recurse
    inGc_ = true;
    ++gcRuns_;

    const PlaneCoord pc = planeCoord(cfg_.geometry, plane);
    flash::PhysPageAddr probe;
    probe.channel = pc.channel;
    probe.chip = pc.chip;
    probe.die = pc.die;
    probe.plane = pc.plane;
    flash::Chip &chip = chipAt(probe);
    flash::Plane &pl = chip.plane(pc.die, pc.plane);

    // Greedy victim selection: the touched, non-active block with the
    // fewest valid pages (untouched blocks are still free).
    std::int64_t victim = -1;
    std::uint32_t best_valid = cfg_.geometry.pagesPerBlock() + 1;
    for (std::uint32_t b = 0; b < cfg_.geometry.blocksPerPlane; ++b) {
        const flash::Block *blk = pl.blockIfExists(b);
        if (!blk || alloc_.isActiveBlock(plane, b))
            continue;
        // Only consider blocks that are fully written or hold garbage.
        if (blk->freePages() == cfg_.geometry.pagesPerBlock())
            continue; // erased / never used: not a GC victim
        if (blk->validPages() < best_valid) {
            best_valid = blk->validPages();
            victim = b;
        }
    }
    if (victim < 0) {
        inGc_ = false;
        return;
    }

    // Relocate valid pages, then erase.
    flash::Block &blk = pl.block(static_cast<std::uint32_t>(victim));
    for (std::uint32_t wl = 0; wl < cfg_.geometry.wordlinesPerBlock; ++wl) {
        for (int m = 0; m < 2; ++m) {
            const bool msb = m == 1;
            if (blk.pageState(wl, msb) != flash::PageState::kValid)
                continue;
            flash::PhysPageAddr src = probe;
            src.block = static_cast<std::uint32_t>(victim);
            src.wordline = wl;
            src.msb = msb;
            const std::uint64_t lin =
                flash::linearPageIndex(cfg_.geometry, src);
            auto rit = reverse_.find(lin);

            // Read the victim page.
            BitVector data = chip.readPage(chipAddr(src));
            ops.push_back(PhysOp{PhysOp::Kind::kPageRead, src, true});

            // Program it to a fresh page in the same plane.  A program
            // failure retires the destination block, so retrying simply
            // walks to the next pooled block.  When the plane runs out
            // of relocation targets (full, or its blocks fault-retired)
            // abort this GC: the victim keeps its remaining valid pages
            // and is simply never erased — degraded, not corrupted.
            auto dst = alloc_.nextPage(plane);
            while (dst && !programPhys(*dst, cfg_.storeData ? &data : nullptr,
                                       true, ops)) {
                ++programRetries_;
                dst = alloc_.nextPage(plane);
            }
            if (!dst) {
                logWarn("Ftl::collectGarbage: no space to relocate in "
                        "plane " +
                        std::to_string(plane) + "; aborting GC");
                inGc_ = false;
                return;
            }
            ++gcWrites_;

            blk.invalidate(wl, msb);
            if (rit != reverse_.end()) {
                const Lpn lpn = rit->second;
                reverse_.erase(rit);
                map_[lpn] = *dst;
                reverse_[flash::linearPageIndex(cfg_.geometry, *dst)] = lpn;
            }
        }
    }
    flash::PhysPageAddr eaddr = probe;
    eaddr.block = static_cast<std::uint32_t>(victim);
    ops.push_back(PhysOp{PhysOp::Kind::kBlockErase, eaddr, true});
    if (chip.eraseBlock(pc.die, pc.plane,
                        static_cast<std::uint32_t>(victim))) {
        ++erases_;
        alloc_.noteErased(plane, static_cast<std::uint32_t>(victim));
    } else {
        ++eraseFailures_;
        alloc_.retireBlock(plane, static_cast<std::uint32_t>(victim));
        logWarn("Ftl: erase failure, retired block " +
                std::to_string(victim) + " of plane " +
                std::to_string(plane));
    }
    inGc_ = false;
}

std::uint32_t
Ftl::eraseSpread(PlaneIndex plane)
{
    const PlaneCoord pc = planeCoord(cfg_.geometry, plane);
    flash::PhysPageAddr probe;
    probe.channel = pc.channel;
    probe.chip = pc.chip;
    probe.die = pc.die;
    probe.plane = pc.plane;
    flash::Plane &pl = chipAt(probe).plane(pc.die, pc.plane);
    std::uint32_t lo = UINT32_MAX, hi = 0;
    for (std::uint32_t b = 0; b < cfg_.geometry.blocksPerPlane; ++b) {
        const flash::Block *blk = pl.blockIfExists(b);
        const std::uint32_t e = blk ? blk->eraseCount() : 0;
        lo = std::min(lo, e);
        hi = std::max(hi, e);
    }
    return hi - lo;
}

void
Ftl::maybeWearLevel(PlaneIndex plane, std::vector<PhysOp> &ops)
{
    if (cfg_.wearLevelThreshold == 0 || inGc_)
        return;

    const PlaneCoord pc = planeCoord(cfg_.geometry, plane);
    flash::PhysPageAddr probe;
    probe.channel = pc.channel;
    probe.chip = pc.chip;
    probe.die = pc.die;
    probe.plane = pc.plane;
    flash::Chip &chip = chipAt(probe);
    flash::Plane &pl = chip.plane(pc.die, pc.plane);

    // Find the coldest block holding static (fully valid) data and the
    // overall wear range.
    std::int64_t coldest = -1;
    std::uint32_t cold_erases = UINT32_MAX, hottest = 0;
    for (std::uint32_t b = 0; b < cfg_.geometry.blocksPerPlane; ++b) {
        const flash::Block *blk = pl.blockIfExists(b);
        const std::uint32_t e = blk ? blk->eraseCount() : 0;
        hottest = std::max(hottest, e);
        if (!blk || alloc_.isActiveBlock(plane, b))
            continue;
        if (blk->validPages() == 0)
            continue; // no data worth migrating
        if (e < cold_erases) {
            cold_erases = e;
            coldest = b;
        }
    }
    if (coldest < 0 || hottest - cold_erases < cfg_.wearLevelThreshold)
        return;
    if (alloc_.freeBlocks(plane) == 0)
        return;

    // Migrate the cold block's valid pages onto a pooled (well-worn,
    // thanks to FIFO recycling) free block, then recycle the cold one.
    inGc_ = true; // reuse the recursion guard: migration must not nest
    ++wearMoves_;
    bool migrated_all = true;
    flash::Block &blk = pl.block(static_cast<std::uint32_t>(coldest));
    for (std::uint32_t wl = 0;
         migrated_all && wl < cfg_.geometry.wordlinesPerBlock; ++wl) {
        for (int m = 0; m < 2; ++m) {
            const bool msb = m == 1;
            if (blk.pageState(wl, msb) != flash::PageState::kValid)
                continue;
            flash::PhysPageAddr src = probe;
            src.block = static_cast<std::uint32_t>(coldest);
            src.wordline = wl;
            src.msb = msb;
            const std::uint64_t lin =
                flash::linearPageIndex(cfg_.geometry, src);
            auto rit = reverse_.find(lin);

            BitVector data = chip.readPage(chipAddr(src));
            ops.push_back(PhysOp{PhysOp::Kind::kPageRead, src, true});
            auto dst = alloc_.nextPage(plane);
            while (dst && !programPhys(*dst, cfg_.storeData ? &data : nullptr,
                                       true, ops)) {
                ++programRetries_;
                dst = alloc_.nextPage(plane);
            }
            if (!dst) {
                // Out of relocation targets: the cold block must NOT be
                // erased — its unmigrated pages are still the only copy.
                migrated_all = false;
                break;
            }
            ++gcWrites_;
            blk.invalidate(wl, msb);
            if (rit != reverse_.end()) {
                const Lpn lpn = rit->second;
                reverse_.erase(rit);
                map_[lpn] = *dst;
                reverse_[flash::linearPageIndex(cfg_.geometry, *dst)] = lpn;
            }
        }
    }
    if (!migrated_all) {
        logWarn("Ftl: wear-level migration ran out of space in plane " +
                std::to_string(plane) + "; cold block kept");
        inGc_ = false;
        return;
    }
    flash::PhysPageAddr eaddr = probe;
    eaddr.block = static_cast<std::uint32_t>(coldest);
    ops.push_back(PhysOp{PhysOp::Kind::kBlockErase, eaddr, true});
    if (chip.eraseBlock(pc.die, pc.plane,
                        static_cast<std::uint32_t>(coldest))) {
        ++erases_;
        alloc_.noteErased(plane, static_cast<std::uint32_t>(coldest));
    } else {
        ++eraseFailures_;
        alloc_.retireBlock(plane, static_cast<std::uint32_t>(coldest));
        logWarn("Ftl: erase failure, retired block " +
                std::to_string(coldest) + " of plane " +
                std::to_string(plane));
    }
    inGc_ = false;
}

std::optional<flash::PhysPageAddr>
Ftl::allocateOrGc(PlaneIndex plane, bool lsb_only, std::vector<PhysOp> &ops)
{
    if (alloc_.freeBlocks(plane) < gcThresholdBlocks_) {
        collectGarbage(plane, ops);
        maybeWearLevel(plane, ops);
    }
    auto a = lsb_only ? alloc_.nextLsbOnly(plane) : alloc_.nextPage(plane);
    if (!a) {
        collectGarbage(plane, ops);
        a = lsb_only ? alloc_.nextLsbOnly(plane) : alloc_.nextPage(plane);
    }
    return a;
}

std::optional<PagePair>
Ftl::allocatePairOrGc(PlaneIndex plane, std::vector<PhysOp> &ops)
{
    if (alloc_.freeBlocks(plane) < gcThresholdBlocks_)
        collectGarbage(plane, ops);
    auto p = alloc_.nextPair(plane);
    if (!p) {
        collectGarbage(plane, ops);
        p = alloc_.nextPair(plane);
    }
    return p;
}

bool
Ftl::writePage(Lpn lpn, const BitVector *data, std::vector<PhysOp> &ops)
{
    if (lpn >= logicalPages_)
        fatal("Ftl::writePage: LPN beyond logical capacity");
    BitVector whitened;
    const BitVector *payload = data;
    const bool scramble = cfg_.scrambleHostData && data;
    if (scramble) {
        whitened = *data;
        scrambler_.apply(whitened, lpn);
        payload = &whitened;
    }
    for (int attempt = 0; attempt < kMaxProgramRetries; ++attempt) {
        const PlaneIndex plane = pickAlivePlane();
        const auto a = allocateOrGc(plane, false, ops);
        if (!a) {
            // Plane full even after GC (e.g. fault-retired blocks);
            // the next attempt strides to another plane.
            ++programRetries_;
            continue;
        }
        if (!programPhys(*a, payload, false, ops)) {
            ++programRetries_;
            continue;
        }
        if (scramble)
            scrambledLpns_.insert(lpn);
        else
            scrambledLpns_.erase(lpn);
        ++hostWrites_;
        mapLpn(lpn, *a, ops);
        return true;
    }
    logWarn("Ftl::writePage: program retries exhausted for LPN " +
            std::to_string(lpn));
    return false;
}

BitVector
Ftl::readPage(Lpn lpn, std::vector<PhysOp> &ops)
{
    auto it = map_.find(lpn);
    if (it == map_.end())
        fatal("Ftl::readPage: unmapped LPN");
    const flash::PhysPageAddr &a = it->second;
    ops.push_back(PhysOp{PhysOp::Kind::kPageRead, a, false});
    BitVector page = chipAt(a).readPage(chipAddr(a));
    if (cfg_.scrambleHostData && scrambledLpns_.count(lpn))
        scrambler_.apply(page, lpn);
    return page;
}

std::optional<flash::PhysPageAddr>
Ftl::lookup(Lpn lpn) const
{
    auto it = map_.find(lpn);
    if (it == map_.end())
        return std::nullopt;
    return it->second;
}

bool
Ftl::pageAccessible(Lpn lpn)
{
    auto it = map_.find(lpn);
    if (it == map_.end())
        return false;
    const flash::PhysPageAddr &a = it->second;
    return chipAt(a).planeOperational(a.die, a.plane);
}

void
Ftl::trim(Lpn lpn)
{
    auto it = map_.find(lpn);
    if (it == map_.end())
        return;
    const flash::PhysPageAddr a = it->second;
    chipAt(a).plane(a.die, a.plane).block(a.block).invalidate(a.wordline,
                                                              a.msb);
    reverse_.erase(flash::linearPageIndex(cfg_.geometry, a));
    map_.erase(it);
    scrambledLpns_.erase(lpn);
}

std::optional<PagePair>
Ftl::writePair(Lpn lpn_x, Lpn lpn_y, const BitVector *data_x,
               const BitVector *data_y, std::vector<PhysOp> &ops,
               std::optional<PlaneIndex> plane)
{
    if (plane && !planeAlive(*plane))
        return std::nullopt;
    for (int attempt = 0; attempt < kMaxProgramRetries; ++attempt) {
        const PlaneIndex p = plane ? *plane : pickAlivePlane();
        const auto pair = allocatePairOrGc(p, ops);
        if (!pair) {
            ++programRetries_;
            continue;
        }
        if (!programPhys(pair->lsb, data_x, false, ops)) {
            ++programRetries_;
            continue;
        }
        if (!programPhys(pair->msb, data_y, false, ops)) {
            // The block was retired; the LSB half just written goes
            // with it — mark it garbage so GC never relocates it.
            chipAt(pair->lsb)
                .plane(pair->lsb.die, pair->lsb.plane)
                .block(pair->lsb.block)
                .invalidate(pair->lsb.wordline, false);
            ++programRetries_;
            continue;
        }
        parabitWrites_ += 2;
        // ParaBit operands are stored raw (scrambling off, Sec 4.3.2).
        scrambledLpns_.erase(lpn_x);
        scrambledLpns_.erase(lpn_y);
        mapLpn(lpn_x, pair->lsb, ops);
        mapLpn(lpn_y, pair->msb, ops);
        return *pair;
    }
    logWarn("Ftl::writePair: program retries exhausted");
    return std::nullopt;
}

std::optional<flash::PhysPageAddr>
Ftl::writeLsbOnly(Lpn lpn, const BitVector *data, std::vector<PhysOp> &ops,
                  std::optional<PlaneIndex> plane)
{
    if (plane && !planeAlive(*plane))
        return std::nullopt;
    for (int attempt = 0; attempt < kMaxProgramRetries; ++attempt) {
        const PlaneIndex p = plane ? *plane : pickAlivePlane();
        const auto a = allocateOrGc(p, true, ops);
        if (!a) {
            ++programRetries_;
            continue;
        }
        if (!programPhys(*a, data, false, ops)) {
            ++programRetries_;
            continue;
        }
        ++parabitWrites_;
        scrambledLpns_.erase(lpn);
        mapLpn(lpn, *a, ops);
        return *a;
    }
    logWarn("Ftl::writeLsbOnly: program retries exhausted");
    return std::nullopt;
}

bool
Ftl::writeIntoFreeMsb(Lpn lpn, const flash::PhysPageAddr &lsb_addr,
                      const BitVector *data, std::vector<PhysOp> &ops)
{
    flash::PhysPageAddr msb = lsb_addr;
    msb.msb = true;
    flash::Chip &chip = chipAt(msb);
    if (chip.pageState(chipAddr(msb)) != flash::PageState::kFree)
        return false;
    if (!programPhys(msb, data, false, ops))
        return false; // block retired; caller re-places elsewhere
    ++parabitWrites_;
    scrambledLpns_.erase(lpn);
    mapLpn(lpn, msb, ops);
    return true;
}

} // namespace parabit::ssd
