#include "ssd/ftl.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace parabit::ssd {

Ftl::Ftl(const SsdConfig &cfg, std::vector<flash::Chip> &chips)
    : cfg_(cfg), chips_(&chips), alloc_(cfg.geometry),
      scrambler_(cfg.seed ^ 0x5C4A3B2E1D0FULL)
{
    const double usable = 1.0 - cfg_.overProvisioning;
    logicalPages_ = static_cast<std::uint64_t>(
        std::floor(static_cast<double>(cfg_.geometry.totalPages()) * usable));
    gcThresholdBlocks_ = std::max<std::uint32_t>(
        2, static_cast<std::uint32_t>(cfg_.gcFreeBlockThreshold *
                                      cfg_.geometry.blocksPerPlane));
}

flash::Chip &
Ftl::chipAt(const flash::PhysPageAddr &a)
{
    const std::size_t idx =
        static_cast<std::size_t>(a.channel) * cfg_.geometry.chipsPerChannel +
        a.chip;
    return (*chips_).at(idx);
}

flash::ChipPageAddr
Ftl::chipAddr(const flash::PhysPageAddr &a) const
{
    return flash::ChipPageAddr{a.die, a.plane, a.block, a.wordline, a.msb};
}

void
Ftl::unmapPhys(const flash::PhysPageAddr &a)
{
    const std::uint64_t lin = flash::linearPageIndex(cfg_.geometry, a);
    auto it = reverse_.find(lin);
    if (it == reverse_.end())
        return;
    map_.erase(it->second);
    reverse_.erase(it);
}

void
Ftl::programPhys(const flash::PhysPageAddr &a, const BitVector *data,
                 bool for_gc, std::vector<PhysOp> &ops)
{
    chipAt(a).programPage(chipAddr(a), data);
    ops.push_back(PhysOp{PhysOp::Kind::kPageProgram, a, for_gc});
}

void
Ftl::mapLpn(Lpn lpn, const flash::PhysPageAddr &a, std::vector<PhysOp> &ops)
{
    // Invalidate any previous mapping of this LPN.
    auto old = map_.find(lpn);
    if (old != map_.end()) {
        const flash::PhysPageAddr &o = old->second;
        chipAt(o).plane(o.die, o.plane)
            .block(o.block)
            .invalidate(o.wordline, o.msb);
        reverse_.erase(flash::linearPageIndex(cfg_.geometry, o));
    }
    (void)ops;
    map_[lpn] = a;
    reverse_[flash::linearPageIndex(cfg_.geometry, a)] = lpn;
}

void
Ftl::collectGarbage(PlaneIndex plane, std::vector<PhysOp> &ops)
{
    if (inGc_)
        return; // GC relocations must not recurse
    inGc_ = true;
    ++gcRuns_;

    const PlaneCoord pc = planeCoord(cfg_.geometry, plane);
    flash::PhysPageAddr probe;
    probe.channel = pc.channel;
    probe.chip = pc.chip;
    probe.die = pc.die;
    probe.plane = pc.plane;
    flash::Chip &chip = chipAt(probe);
    flash::Plane &pl = chip.plane(pc.die, pc.plane);

    // Greedy victim selection: the touched, non-active block with the
    // fewest valid pages (untouched blocks are still free).
    std::int64_t victim = -1;
    std::uint32_t best_valid = cfg_.geometry.pagesPerBlock() + 1;
    for (std::uint32_t b = 0; b < cfg_.geometry.blocksPerPlane; ++b) {
        const flash::Block *blk = pl.blockIfExists(b);
        if (!blk || alloc_.isActiveBlock(plane, b))
            continue;
        // Only consider blocks that are fully written or hold garbage.
        if (blk->freePages() == cfg_.geometry.pagesPerBlock())
            continue; // erased / never used: not a GC victim
        if (blk->validPages() < best_valid) {
            best_valid = blk->validPages();
            victim = b;
        }
    }
    if (victim < 0) {
        inGc_ = false;
        return;
    }

    // Relocate valid pages, then erase.
    flash::Block &blk = pl.block(static_cast<std::uint32_t>(victim));
    for (std::uint32_t wl = 0; wl < cfg_.geometry.wordlinesPerBlock; ++wl) {
        for (int m = 0; m < 2; ++m) {
            const bool msb = m == 1;
            if (blk.pageState(wl, msb) != flash::PageState::kValid)
                continue;
            flash::PhysPageAddr src = probe;
            src.block = static_cast<std::uint32_t>(victim);
            src.wordline = wl;
            src.msb = msb;
            const std::uint64_t lin =
                flash::linearPageIndex(cfg_.geometry, src);
            auto rit = reverse_.find(lin);

            // Read the victim page.
            BitVector data = chip.readPage(chipAddr(src));
            ops.push_back(PhysOp{PhysOp::Kind::kPageRead, src, true});

            // Program it to a fresh page in the same plane.
            auto dst = alloc_.nextPage(plane);
            if (!dst)
                panic("Ftl::collectGarbage: no space to relocate");
            programPhys(*dst, cfg_.storeData ? &data : nullptr, true, ops);
            ++gcWrites_;

            blk.invalidate(wl, msb);
            if (rit != reverse_.end()) {
                const Lpn lpn = rit->second;
                reverse_.erase(rit);
                map_[lpn] = *dst;
                reverse_[flash::linearPageIndex(cfg_.geometry, *dst)] = lpn;
            }
        }
    }
    chip.eraseBlock(pc.die, pc.plane, static_cast<std::uint32_t>(victim));
    ++erases_;
    flash::PhysPageAddr eaddr = probe;
    eaddr.block = static_cast<std::uint32_t>(victim);
    ops.push_back(PhysOp{PhysOp::Kind::kBlockErase, eaddr, true});
    alloc_.noteErased(plane, static_cast<std::uint32_t>(victim));
    inGc_ = false;
}

std::uint32_t
Ftl::eraseSpread(PlaneIndex plane)
{
    const PlaneCoord pc = planeCoord(cfg_.geometry, plane);
    flash::PhysPageAddr probe;
    probe.channel = pc.channel;
    probe.chip = pc.chip;
    probe.die = pc.die;
    probe.plane = pc.plane;
    flash::Plane &pl = chipAt(probe).plane(pc.die, pc.plane);
    std::uint32_t lo = UINT32_MAX, hi = 0;
    for (std::uint32_t b = 0; b < cfg_.geometry.blocksPerPlane; ++b) {
        const flash::Block *blk = pl.blockIfExists(b);
        const std::uint32_t e = blk ? blk->eraseCount() : 0;
        lo = std::min(lo, e);
        hi = std::max(hi, e);
    }
    return hi - lo;
}

void
Ftl::maybeWearLevel(PlaneIndex plane, std::vector<PhysOp> &ops)
{
    if (cfg_.wearLevelThreshold == 0 || inGc_)
        return;

    const PlaneCoord pc = planeCoord(cfg_.geometry, plane);
    flash::PhysPageAddr probe;
    probe.channel = pc.channel;
    probe.chip = pc.chip;
    probe.die = pc.die;
    probe.plane = pc.plane;
    flash::Chip &chip = chipAt(probe);
    flash::Plane &pl = chip.plane(pc.die, pc.plane);

    // Find the coldest block holding static (fully valid) data and the
    // overall wear range.
    std::int64_t coldest = -1;
    std::uint32_t cold_erases = UINT32_MAX, hottest = 0;
    for (std::uint32_t b = 0; b < cfg_.geometry.blocksPerPlane; ++b) {
        const flash::Block *blk = pl.blockIfExists(b);
        const std::uint32_t e = blk ? blk->eraseCount() : 0;
        hottest = std::max(hottest, e);
        if (!blk || alloc_.isActiveBlock(plane, b))
            continue;
        if (blk->validPages() == 0)
            continue; // no data worth migrating
        if (e < cold_erases) {
            cold_erases = e;
            coldest = b;
        }
    }
    if (coldest < 0 || hottest - cold_erases < cfg_.wearLevelThreshold)
        return;
    if (alloc_.freeBlocks(plane) == 0)
        return;

    // Migrate the cold block's valid pages onto a pooled (well-worn,
    // thanks to FIFO recycling) free block, then recycle the cold one.
    inGc_ = true; // reuse the recursion guard: migration must not nest
    ++wearMoves_;
    flash::Block &blk = pl.block(static_cast<std::uint32_t>(coldest));
    for (std::uint32_t wl = 0; wl < cfg_.geometry.wordlinesPerBlock; ++wl) {
        for (int m = 0; m < 2; ++m) {
            const bool msb = m == 1;
            if (blk.pageState(wl, msb) != flash::PageState::kValid)
                continue;
            flash::PhysPageAddr src = probe;
            src.block = static_cast<std::uint32_t>(coldest);
            src.wordline = wl;
            src.msb = msb;
            const std::uint64_t lin =
                flash::linearPageIndex(cfg_.geometry, src);
            auto rit = reverse_.find(lin);

            BitVector data = chip.readPage(chipAddr(src));
            ops.push_back(PhysOp{PhysOp::Kind::kPageRead, src, true});
            auto dst = alloc_.nextPage(plane);
            if (!dst)
                break;
            programPhys(*dst, cfg_.storeData ? &data : nullptr, true, ops);
            ++gcWrites_;
            blk.invalidate(wl, msb);
            if (rit != reverse_.end()) {
                const Lpn lpn = rit->second;
                reverse_.erase(rit);
                map_[lpn] = *dst;
                reverse_[flash::linearPageIndex(cfg_.geometry, *dst)] = lpn;
            }
        }
    }
    chip.eraseBlock(pc.die, pc.plane, static_cast<std::uint32_t>(coldest));
    ++erases_;
    flash::PhysPageAddr eaddr = probe;
    eaddr.block = static_cast<std::uint32_t>(coldest);
    ops.push_back(PhysOp{PhysOp::Kind::kBlockErase, eaddr, true});
    alloc_.noteErased(plane, static_cast<std::uint32_t>(coldest));
    inGc_ = false;
}

flash::PhysPageAddr
Ftl::allocateOrGc(PlaneIndex plane, bool lsb_only, std::vector<PhysOp> &ops)
{
    if (alloc_.freeBlocks(plane) < gcThresholdBlocks_) {
        collectGarbage(plane, ops);
        maybeWearLevel(plane, ops);
    }
    auto a = lsb_only ? alloc_.nextLsbOnly(plane) : alloc_.nextPage(plane);
    if (!a) {
        collectGarbage(plane, ops);
        a = lsb_only ? alloc_.nextLsbOnly(plane) : alloc_.nextPage(plane);
    }
    if (!a)
        fatal("Ftl: device full (no free blocks after GC)");
    return *a;
}

PagePair
Ftl::allocatePairOrGc(PlaneIndex plane, std::vector<PhysOp> &ops)
{
    if (alloc_.freeBlocks(plane) < gcThresholdBlocks_)
        collectGarbage(plane, ops);
    auto p = alloc_.nextPair(plane);
    if (!p) {
        collectGarbage(plane, ops);
        p = alloc_.nextPair(plane);
    }
    if (!p)
        fatal("Ftl: device full (no free wordline pair after GC)");
    return *p;
}

void
Ftl::writePage(Lpn lpn, const BitVector *data, std::vector<PhysOp> &ops)
{
    if (lpn >= logicalPages_)
        fatal("Ftl::writePage: LPN beyond logical capacity");
    const PlaneIndex plane = alloc_.nextPlane();
    const flash::PhysPageAddr a = allocateOrGc(plane, false, ops);
    if (cfg_.scrambleHostData && data) {
        BitVector whitened = *data;
        scrambler_.apply(whitened, lpn);
        programPhys(a, &whitened, false, ops);
        scrambledLpns_.insert(lpn);
    } else {
        programPhys(a, data, false, ops);
        scrambledLpns_.erase(lpn);
    }
    ++hostWrites_;
    mapLpn(lpn, a, ops);
}

BitVector
Ftl::readPage(Lpn lpn, std::vector<PhysOp> &ops)
{
    auto it = map_.find(lpn);
    if (it == map_.end())
        fatal("Ftl::readPage: unmapped LPN");
    const flash::PhysPageAddr &a = it->second;
    ops.push_back(PhysOp{PhysOp::Kind::kPageRead, a, false});
    BitVector page = chipAt(a).readPage(chipAddr(a));
    if (cfg_.scrambleHostData && scrambledLpns_.count(lpn))
        scrambler_.apply(page, lpn);
    return page;
}

std::optional<flash::PhysPageAddr>
Ftl::lookup(Lpn lpn) const
{
    auto it = map_.find(lpn);
    if (it == map_.end())
        return std::nullopt;
    return it->second;
}

void
Ftl::trim(Lpn lpn)
{
    auto it = map_.find(lpn);
    if (it == map_.end())
        return;
    const flash::PhysPageAddr a = it->second;
    chipAt(a).plane(a.die, a.plane).block(a.block).invalidate(a.wordline,
                                                              a.msb);
    reverse_.erase(flash::linearPageIndex(cfg_.geometry, a));
    map_.erase(it);
    scrambledLpns_.erase(lpn);
}

PagePair
Ftl::writePair(Lpn lpn_x, Lpn lpn_y, const BitVector *data_x,
               const BitVector *data_y, std::vector<PhysOp> &ops,
               std::optional<PlaneIndex> plane)
{
    const PlaneIndex p = plane ? *plane : alloc_.nextPlane();
    const PagePair pair = allocatePairOrGc(p, ops);
    programPhys(pair.lsb, data_x, false, ops);
    programPhys(pair.msb, data_y, false, ops);
    parabitWrites_ += 2;
    // ParaBit operands are stored raw (scrambling disabled, Sec 4.3.2).
    scrambledLpns_.erase(lpn_x);
    scrambledLpns_.erase(lpn_y);
    mapLpn(lpn_x, pair.lsb, ops);
    mapLpn(lpn_y, pair.msb, ops);
    return pair;
}

flash::PhysPageAddr
Ftl::writeLsbOnly(Lpn lpn, const BitVector *data, std::vector<PhysOp> &ops,
                  std::optional<PlaneIndex> plane)
{
    const PlaneIndex p = plane ? *plane : alloc_.nextPlane();
    const flash::PhysPageAddr a = allocateOrGc(p, true, ops);
    programPhys(a, data, false, ops);
    ++parabitWrites_;
    scrambledLpns_.erase(lpn);
    mapLpn(lpn, a, ops);
    return a;
}

bool
Ftl::writeIntoFreeMsb(Lpn lpn, const flash::PhysPageAddr &lsb_addr,
                      const BitVector *data, std::vector<PhysOp> &ops)
{
    flash::PhysPageAddr msb = lsb_addr;
    msb.msb = true;
    flash::Chip &chip = chipAt(msb);
    if (chip.pageState(chipAddr(msb)) != flash::PageState::kFree)
        return false;
    programPhys(msb, data, false, ops);
    ++parabitWrites_;
    scrambledLpns_.erase(lpn);
    mapLpn(lpn, msb, ops);
    return true;
}

} // namespace parabit::ssd
