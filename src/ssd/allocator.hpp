/**
 * @file
 * Physical page allocator with ParaBit-aware placement modes.
 *
 * The allocator owns the per-plane free-block pools and write cursors.
 * Three placement modes exist:
 *
 *  - interleaved: normal density — each wordline's LSB page is written,
 *    then its MSB page (the common MLC shared-page order);
 *  - paired: both logical pages of a fresh wordline are handed out
 *    together, for ParaBit operand pairs (co-location);
 *  - LSB-only: only LSB pages are written and every MSB page is left
 *    free, the pre-allocation strategy of paper Section 5.5 that lets a
 *    chained ParaBit op drop its result into the free MSB of the next
 *    operand's wordline with a single program.
 *
 * Freed (erased) blocks return to a FIFO pool per plane, which evens out
 * erase counts across blocks (dynamic wear leveling).
 */

#ifndef PARABIT_SSD_ALLOCATOR_HPP_
#define PARABIT_SSD_ALLOCATOR_HPP_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "flash/geometry.hpp"

namespace parabit::ssd {

/** Flat plane index across the whole device. */
using PlaneIndex = std::uint32_t;

/** Decompose a flat plane index into the geometric coordinates. */
struct PlaneCoord
{
    std::uint32_t channel, chip, die, plane;
};

PlaneCoord planeCoord(const flash::FlashGeometry &g, PlaneIndex idx);
PlaneIndex planeIndex(const flash::FlashGeometry &g, const PlaneCoord &c);

/** A co-located LSB/MSB page pair on one wordline. */
struct PagePair
{
    flash::PhysPageAddr lsb;
    flash::PhysPageAddr msb;
};

/** Physical page allocator; see file comment. */
class Allocator
{
  public:
    explicit Allocator(const flash::FlashGeometry &geom);

    std::uint32_t planeCount() const
    {
        return static_cast<std::uint32_t>(planes_.size());
    }

    /** Next plane in the channel-first striping order (advances). */
    PlaneIndex nextPlane();

    /** Free blocks currently pooled in @p plane. */
    std::uint32_t freeBlocks(PlaneIndex plane) const;

    /** Return an erased block to @p plane's pool (no-op if retired). */
    void noteErased(PlaneIndex plane, std::uint32_t block);

    /**
     * Permanently remove @p block from circulation (bad-block
     * retirement after a program or erase failure).  The block leaves
     * the free pool, any write cursor parked on it is abandoned, and
     * noteErased() will never re-pool it.
     */
    void retireBlock(PlaneIndex plane, std::uint32_t block);

    bool isRetired(PlaneIndex plane, std::uint32_t block) const;

    /** Blocks retired across the whole device. */
    std::uint64_t retiredBlocks() const { return retiredCount_; }

    /**
     * Withdraw @p block from data allocation for FTL-internal use (the
     * SPOR checkpoint/journal region).  Unlike retirement the block is
     * healthy and not counted in retiredBlocks(); like retirement it
     * leaves the pool, abandons cursors, and is never re-pooled.
     */
    void reserveBlock(PlaneIndex plane, std::uint32_t block);

    bool isReserved(PlaneIndex plane, std::uint32_t block) const;

    /**
     * Reset @p plane's pool and cursors from a physically derived free
     * list (sudden-power-off recovery).  @p free_blocks replaces the
     * pool verbatim (order preserved — pass a deterministic order);
     * retired/reserved blocks are skipped.  Cursors restart empty, so
     * partially written blocks are left for GC to reclaim.
     */
    void rebuild(PlaneIndex plane,
                 const std::vector<std::uint32_t> &free_blocks);

    /** Snapshot of @p plane's pooled free blocks, in pool order. */
    std::vector<std::uint32_t> poolBlocks(PlaneIndex plane) const;

    /**
     * Allocate the next page in @p plane in interleaved order.
     * @return nullopt when the plane has no free blocks left.
     */
    std::optional<flash::PhysPageAddr> nextPage(PlaneIndex plane);

    /** Allocate a fresh co-located pair in @p plane. */
    std::optional<PagePair> nextPair(PlaneIndex plane);

    /** Allocate the next LSB page in @p plane, leaving its MSB free. */
    std::optional<flash::PhysPageAddr> nextLsbOnly(PlaneIndex plane);

    /**
     * Blocks currently tied up in write cursors (not in the free pool,
     * not yet full).  GC must not victimise these.
     */
    bool isActiveBlock(PlaneIndex plane, std::uint32_t block) const;

  private:
    struct Cursor
    {
        std::int64_t block = -1; ///< -1 = no active block
        std::uint32_t wordline = 0;
        bool msbPhase = false; ///< interleaved mode: next page is MSB
    };

    struct PlaneState
    {
        std::deque<std::uint32_t> freePool;
        Cursor interleaved; ///< shared by interleaved + paired modes
        Cursor lsbOnly;
        std::vector<bool> retired;  ///< lazily sized to blocksPerPlane
        std::vector<bool> reserved; ///< lazily sized to blocksPerPlane
    };

    bool ensureBlock(PlaneState &ps, Cursor &cur);
    flash::PhysPageAddr makeAddr(PlaneIndex plane, const Cursor &cur,
                                 bool msb) const;

    flash::FlashGeometry geom_;
    std::vector<PlaneState> planes_;
    PlaneIndex rrCursor_ = 0;
    std::uint64_t retiredCount_ = 0;
};

} // namespace parabit::ssd

#endif // PARABIT_SSD_ALLOCATOR_HPP_
