#include "ssd/health.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/trace.hpp"

namespace parabit::ssd {

const char *
healthStateName(HealthState s)
{
    switch (s) {
      case HealthState::kHealthy: return "healthy";
      case HealthState::kDegraded: return "degraded";
      case HealthState::kReadOnly: return "read-only";
      case HealthState::kFailed: return "failed";
    }
    return "?";
}

DeviceHealth::DeviceHealth(const HealthConfig &cfg) : cfg_(cfg)
{
    stateGauge_.set(0.0);
    pressureGauge_.set(0.0);
}

double
DeviceHealth::escalateThreshold(HealthState s) const
{
    switch (s) {
      case HealthState::kDegraded: return cfg_.degradedThreshold;
      case HealthState::kReadOnly: return cfg_.readOnlyThreshold;
      case HealthState::kFailed: return cfg_.failedThreshold;
      case HealthState::kHealthy: break;
    }
    return 0.0; // healthy has no entry threshold
}

void
DeviceHealth::pump(Tick now)
{
    if (powerLost_)
        return; // frozen mid-cut; the clock resumes after recovery
    if (now > now_) {
        const Tick dt = now - now_;
        pressure_ *= std::exp2(-static_cast<double>(dt) /
                               static_cast<double>(cfg_.pressureHalfLife));
        now_ = now;
    }
    pressureGauge_.set(pressure_);
    evaluate();
}

void
DeviceHealth::charge(double weight)
{
    if (powerLost_)
        return;
    pressure_ += weight;
    pressureGauge_.set(pressure_);
    evaluate();
}

void
DeviceHealth::evaluate()
{
    // Escalate one step at a time, as far as the pressure justifies
    // right now (a huge burst may cross several thresholds in one
    // charge; each step is still recorded as its own transition).
    while (state_ != HealthState::kFailed) {
        const auto next =
            static_cast<HealthState>(static_cast<std::uint8_t>(state_) + 1);
        if (pressure_ < escalateThreshold(next))
            break;
        transitionTo(next);
    }
    // De-escalate at most one step per evaluation: dwell long enough in
    // the state, and fall clear below its own entry threshold by the
    // hysteresis margin.  kFailed is terminal.
    if (state_ != HealthState::kHealthy && state_ != HealthState::kFailed &&
        now_ - enteredAt_ >= cfg_.minDwell &&
        pressure_ <= escalateThreshold(state_) * (1.0 - cfg_.hysteresis))
        transitionTo(
            static_cast<HealthState>(static_cast<std::uint8_t>(state_) - 1));
}

void
DeviceHealth::transitionTo(HealthState to)
{
    const HealthState from = state_;
    transitions_.push_back(
        HealthTransition{from, to, now_, pressure_, powerLost_});
    if (obs::TraceSink *sink = obs::TraceSink::global()) {
        // Span = the completed occupancy of the state being left.
        const Tick s0 = std::max(enteredAt_, healthSpanEnd_);
        const Tick s1 = std::max(now_, s0);
        healthSpanEnd_ = s1;
        sink->span(sink->track("device", "health"), healthStateName(from),
                   s0, s1,
                   {{"to", healthStateName(to), true},
                    {"pressure", std::to_string(pressure_), false}});
    }
    state_ = to;
    maxState_ = std::max(maxState_, to);
    enteredAt_ = now_;
    admittedWritesSinceEntry_ = 0;
    ++transitionsCount_;
    stateGauge_.set(static_cast<double>(static_cast<std::uint8_t>(to)));
}

void
DeviceHealth::auditInvariants(InvariantReport &r) const
{
    if (!r.check(std::isfinite(pressure_) && pressure_ >= 0.0))
        r.fail("health.budget.range",
               "pressure " + std::to_string(pressure_),
               "the pressure budget must stay finite and non-negative");
    for (std::size_t i = 0; i < transitions_.size(); ++i) {
        const HealthTransition &t = transitions_[i];
        const int step = static_cast<int>(t.to) - static_cast<int>(t.from);
        if (!r.check(step == 1 || step == -1))
            r.fail("health.budget.range",
                   "transition " + std::to_string(i),
                   std::string(healthStateName(t.from)) + " -> " +
                       healthStateName(t.to) +
                       " skipped a state (transitions move one step)");
        if (!r.check(!t.powerLost))
            r.fail("health.transition.powerlost",
                   "transition " + std::to_string(i),
                   std::string(healthStateName(t.from)) + " -> " +
                       healthStateName(t.to) +
                       " fired while power was lost (the machine must "
                       "freeze across a cut)");
    }
    if (!r.check(state_ < HealthState::kReadOnly ||
                 admittedWritesSinceEntry_ == 0))
        r.fail("health.readonly.writes",
               std::string("state ") + healthStateName(state_),
               std::to_string(admittedWritesSinceEntry_) +
                   " host write(s) admitted since entering a "
                   "write-rejecting state");
}

bool
DeviceHealth::debugCorruptPressure()
{
    pressure_ = -1.0;
    return true;
}

bool
DeviceHealth::debugForgeTransitionWhilePowerLost()
{
    transitions_.push_back(HealthTransition{HealthState::kHealthy,
                                            HealthState::kDegraded, now_,
                                            pressure_, true});
    return true;
}

bool
DeviceHealth::debugCorruptReadOnlyAdmit()
{
    state_ = HealthState::kReadOnly;
    admittedWritesSinceEntry_ = 1;
    return true;
}

} // namespace parabit::ssd
