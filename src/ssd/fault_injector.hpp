/**
 * @file
 * Deterministic, seeded fault injection for the reliability layer.
 *
 * The paper (Section 5.8) concedes that ParaBit results bypass ECC and
 * that real deployments lean on read-retry and redundancy; to evaluate
 * those mitigations this module injects the fault classes a NAND device
 * actually suffers, on a schedule that is a pure function of the seed:
 *
 *  - kElevatedRber: a block (or whole plane) whose raw per-sensing bit
 *    error rate is multiplied — the cycled/worn-region case of Fig 17;
 *  - kStuckBitline: sense-amplifier columns pinned to a fixed value,
 *    corrupting the same bit position of every sensing in the plane;
 *  - kProgramFailure: page programs into the region fail periodically
 *    (every failPeriod-th attempt after onset), the classic bad-block
 *    trigger;
 *  - kEraseFailure: block erases fail on the same periodic schedule;
 *  - kDeadPlane / kDeadChip: the plane (or every plane of the chip)
 *    rejects all array operations;
 *  - kReadDisturbHot: sensings into the region charge their neighbor
 *    wordlines rberMultiplier times the normal disturb units, so the
 *    region's predicted RBER climbs that much faster under read traffic
 *    (drives the patrol scrubber's disturb-triggered refresh);
 *  - kRetentionLoss: the region's wordlines age rberMultiplier times
 *    faster than simulated time (charge-leak acceleration), driving
 *    retention-triggered refresh;
 *  - kDieFail: every plane of the die containing the target plane
 *    rejects all array operations — the whole-die failure RAIN parity
 *    is built to survive;
 *  - kPowerLoss: sudden power-off — execution is cut deterministically
 *    at a seeded PhysOp boundary (spec.onset = number of op boundaries
 *    that complete first).  When the boundary lands on a page program
 *    the cut may strike *mid-tPROG*, tearing the wordline and
 *    corrupting the paired LSB page (the MLC shared-wordline hazard);
 *    whether a program boundary cuts before or mid-program is drawn
 *    from the seed unless the spec pins it.
 *
 * Determinism contract: two injectors built with the same geometry and
 * seed, given the same addFault() calls and the same query sequence,
 * return identical answers — scheduleFingerprint() captures the derived
 * schedule so tests can assert replayability.  The injector is passive:
 * SsdDevice::faultInjector() wires its queries into the chip/plane fault
 * hooks and applies the plane-level state (dead flags, stuck bitlines).
 */

#ifndef PARABIT_SSD_FAULT_INJECTOR_HPP_
#define PARABIT_SSD_FAULT_INJECTOR_HPP_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "flash/geometry.hpp"
#include "obs/metrics.hpp"
#include "flash/plane.hpp"
#include "ssd/allocator.hpp"

namespace parabit::ssd {

/** The injectable fault classes; see file comment. */
enum class FaultClass : std::uint8_t
{
    kElevatedRber = 0,
    kStuckBitline,
    kProgramFailure,
    kEraseFailure,
    kDeadPlane,
    kDeadChip,
    kPowerLoss,
    // Media-management classes (PR "background media management").
    // Deliberately outside randomSchedule()'s draw range so legacy
    // seeded schedules stay bit-identical; arm them with addFault().
    kReadDisturbHot,
    kRetentionLoss,
    kDieFail,
};

const char *faultClassName(FaultClass c);

/**
 * Whether a fault class models a *transient* condition — one a real
 * device shakes off once the environmental stress ends (storm over,
 * marginal power rail restored, thermal excursion passed).  Permanent
 * classes (dead plane/chip/die, armed power loss) survive
 * FaultInjector::clearTransient().
 */
bool faultClassTransient(FaultClass c);

/** How a power-loss fault strikes one PhysOp boundary. */
enum class PowerCut : std::uint8_t
{
    kNone = 0,   ///< power is up; the op proceeds
    kBeforeOp,   ///< cut before the op starts (op never executes)
    kMidProgram, ///< cut mid-tPROG: the wordline is torn
};

/** One fault to inject. */
struct FaultSpec
{
    FaultClass cls = FaultClass::kElevatedRber;
    /** Target plane (flat index); for kDeadChip, any plane of the chip. */
    PlaneIndex plane = 0;
    /** Restrict kElevatedRber / kProgramFailure / kEraseFailure to one
     *  block of the plane (nullopt = whole plane). */
    std::optional<std::uint32_t> block;
    /** kElevatedRber: multiplier on the raw per-sensing RBER.
     *  kReadDisturbHot / kRetentionLoss reuse this field as their
     *  acceleration factor (disturb charge / aging-rate multiplier). */
    double rberMultiplier = 100.0;
    /** kStuckBitline: number of stuck columns (positions drawn from the
     *  injector seed) and the value they are pinned to. */
    std::uint32_t stuckCount = 4;
    bool stuckValue = false;
    /** kProgramFailure / kEraseFailure: the Nth, 2Nth, ... matching
     *  attempt after @p onset fails (1 = every attempt). */
    std::uint32_t failPeriod = 4;
    /** Matching attempts that succeed before the periodic failures.
     *  For kPowerLoss: the number of PhysOp boundaries that complete
     *  before the cut (0 = the very first op is cut). */
    std::uint32_t onset = 0;
    /** kPowerLoss only: force the cut mode when the boundary lands on a
     *  program — true = mid-tPROG (torn wordline), false = before the
     *  op.  nullopt (default) draws the mode from the injector seed. */
    std::optional<bool> cutMidProgram;

    bool operator==(const FaultSpec &) const = default;
};

/**
 * Shape of a correlated fault storm (FaultInjector::stormSchedule): a
 * burst of faults concentrates on one "focus" chip — correlated damage,
 * the way a marginal power rail or a thermal excursion hits co-located
 * dies — with a seeded fraction leaking to random planes elsewhere.
 * Only transient classes are drawn, so clearTransient() models the
 * storm passing.
 */
struct StormConfig
{
    /** Number of bursts; each burst draws a fresh focus chip. */
    std::uint32_t bursts = 4;
    /** Faults per burst. */
    std::uint32_t faultsPerBurst = 6;
    /** Probability that a burst fault lands on the focus chip (the rest
     *  scatter over the whole device). */
    double localityBias = 0.75;
};

/** Deterministic fault injector; see file comment. */
class FaultInjector
{
  public:
    FaultInjector(const flash::FlashGeometry &geom, std::uint64_t seed);

    std::uint64_t seed() const { return seed_; }

    /**
     * Register @p spec.  Stuck-bitline positions are drawn here, from
     * the injector's own stream, so registration order (not query
     * order) determines them.
     */
    void addFault(const FaultSpec &spec);

    /**
     * A reproducible random schedule of @p count faults over the whole
     * device: class, target, and parameters are all drawn from @p seed.
     * Feed the result to addFault() to apply it.
     */
    static std::vector<FaultSpec>
    randomSchedule(const flash::FlashGeometry &geom, std::uint64_t seed,
                   std::size_t count);

    /**
     * A reproducible *correlated* schedule — bursty faults clustered on
     * per-burst focus chips (see StormConfig) — that is a pure function
     * of @p seed.  Draws only transient classes, so the storm can be
     * lifted again with clearTransient().  Feed to addFault() to apply.
     */
    static std::vector<FaultSpec>
    stormSchedule(const flash::FlashGeometry &geom, std::uint64_t seed,
                  const StormConfig &cfg);

    const std::vector<FaultSpec> &faults() const { return specs_; }

    /**
     * Drop every registered transient fault (faultClassTransient) —
     * the storm has passed.  Permanent damage (dead plane/chip/die)
     * and armed power-loss faults stay.  The schedule fingerprint
     * changes accordingly.  @return the number of faults removed.
     * Callers that mirror plane state (SsdDevice) must re-derive it;
     * use SsdDevice::clearTransientFaults() from device code.
     */
    std::size_t clearTransient();

    /** @name Queries (wired into the chip/plane hooks). */
    /// @{

    /** Combined RBER multiplier for a sensing of @p a's wordline. */
    double rberMultiplier(const flash::PhysPageAddr &a) const;

    /** Combined disturb-charge multiplier for a sensing of @p a's
     *  wordline (kReadDisturbHot hot spots). */
    double disturbMultiplier(const flash::PhysPageAddr &a) const;

    /** Combined retention-aging multiplier for @p a's wordline
     *  (kRetentionLoss charge-leak acceleration). */
    double retentionMultiplier(const flash::PhysPageAddr &a) const;

    bool planeDead(PlaneIndex p) const;

    /** Stuck columns of plane @p p (empty if none). */
    std::vector<flash::StuckBitline> stuckBitlines(PlaneIndex p) const;

    /** Consume one program attempt at @p a from the schedule.
     *  @return true if that attempt fails. */
    bool programShouldFail(const flash::PhysPageAddr &a);

    /** Consume one erase attempt of @p a's block from the schedule. */
    bool eraseShouldFail(const flash::PhysPageAddr &a);

    /**
     * Consume one PhysOp boundary from every armed kPowerLoss fault.
     * Once a fault's boundary count is reached the device is powered
     * off: this call returns the cut mode (kMidProgram only possible
     * when @p is_program) and every later call returns kBeforeOp until
     * clearPowerLoss() models power restoration.
     */
    PowerCut powerCutOnOp(bool is_program);

    /** Whether a power-loss fault has fired and power is still down. */
    bool powerLost() const { return powerLost_; }

    /** Power restored (device reboot).  Fired faults stay spent; a
     *  separately armed kPowerLoss fault can still fire later. */
    void clearPowerLoss() { powerLost_ = false; }
    /// @}

    /** @name Injection counters. */
    /// @{
    std::uint64_t programFailuresInjected() const
    {
        return progFails_.value();
    }
    std::uint64_t eraseFailuresInjected() const
    {
        return eraseFails_.value();
    }
    /** kPowerLoss faults that actually cut power. */
    std::uint64_t powerCutsInjected() const { return powerCuts_.value(); }
    /// @}

    /**
     * Stable hash of the registered schedule (specs plus every derived
     * stuck-bitline position) — equal seeds and registration sequences
     * give equal fingerprints, which is what makes fault runs
     * replayable for debugging.
     */
    std::uint64_t scheduleFingerprint() const;

  private:
    struct Active
    {
        FaultSpec spec;
        std::vector<flash::StuckBitline> stuck; ///< kStuckBitline only
        std::uint64_t attempts = 0; ///< program/erase attempts consumed
        bool cutMid = false;        ///< kPowerLoss: resolved cut mode
        bool fired = false;         ///< kPowerLoss: boundary reached
    };

    bool matches(const Active &f, const flash::PhysPageAddr &a) const;
    PlaneIndex planeOf(const flash::PhysPageAddr &a) const;

    flash::FlashGeometry geom_;
    std::uint64_t seed_;
    Rng rng_;
    std::vector<Active> active_;
    std::vector<FaultSpec> specs_;
    obs::Counter progFails_{"fault.program_failures_injected"};
    obs::Counter eraseFails_{"fault.erase_failures_injected"};
    obs::Counter powerCuts_{"fault.power_cuts"};
    bool powerLost_ = false;
};

} // namespace parabit::ssd

#endif // PARABIT_SSD_FAULT_INJECTOR_HPP_
