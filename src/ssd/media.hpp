/**
 * @file
 * Background media management: the patrol scrubber.
 *
 * NAND pages degrade while they sit: neighbor sensings charge read
 * disturb into a wordline and retention leakage grows with time since
 * program (flash::ErrorModel compounds both with P/E wear).  The
 * scrubber bounds that growth the way real SSD firmware does — a
 * low-priority patrol walk over the device:
 *
 *  - pump() runs at most one scrub pass per MediaConfig::scrubInterval
 *    of simulated time, scanning up to scrubWordlinesPerPass wordlines
 *    from a persistent linear cursor (plane, block, wordline);
 *  - each valid page gets one patrol scan sense, booked as a
 *    PhysOp::Kind::kScrubRead — the scheduler runs those in the
 *    TxClass::kScrub background class (suspendable, starvation-bounded)
 *    so patrol traffic hides behind host idle time;
 *  - when a wordline's predicted RBER (or raw disturb count) crosses
 *    the configured refresh threshold, the FTL refresh-relocates it
 *    (Ftl::refreshWordline) and the wordline's counters restart at its
 *    new location;
 *  - wordlines on a dead plane are repaired instead: the RAIN parity
 *    stripe rebuilds each mapped page's content and the FTL re-places
 *    it on an operational plane (uncorrectable when a second stripe
 *    member is also lost).
 *
 * Open (write-cursor) and reserved (SPOR log) blocks are skipped, as is
 * anything after power loss; the scrubber resumes after powerCycle().
 */

#ifndef PARABIT_SSD_MEDIA_HPP_
#define PARABIT_SSD_MEDIA_HPP_

#include <cstdint>
#include <vector>

#include "common/invariant.hpp"
#include "obs/metrics.hpp"
#include "ssd/ftl.hpp"
#include "ssd/rain.hpp"

namespace parabit::ssd {

class DeviceHealth;

/** What one pump() call did (feeds the device's scrub trace span). */
struct ScrubPassStats
{
    bool ran = false; ///< false: not due yet, or power is lost
    std::uint64_t wordlinesScanned = 0;
    std::uint64_t scrubReads = 0;      ///< patrol scan senses booked
    std::uint64_t refreshes = 0;       ///< wordlines refresh-relocated
    std::uint64_t refreshFailures = 0; ///< refresh wanted, re-place failed
    std::uint64_t repairs = 0;         ///< dead-plane pages rebuilt+moved
    std::uint64_t uncorrectable = 0;   ///< dead-plane pages lost for good
};

/** Patrol scrubber; see file comment. */
class MediaScrubber
{
  public:
    /** @p rain may be null (scrubbing without parity protection). */
    MediaScrubber(const SsdConfig &cfg, Ftl &ftl,
                  std::vector<flash::Chip> &chips, RainController *rain);

    /**
     * Run one scrub pass if @p now has reached the next deadline;
     * appends the pass's patrol reads and any refresh/repair traffic to
     * @p ops for the timing layer.  Returns what happened (ran == false
     * when no pass was due).
     */
    ScrubPassStats pump(Tick now, std::vector<PhysOp> &ops);

    /** Earliest simulated time the next pass may run. */
    Tick nextPassAt() const { return nextPassAt_; }

    /**
     * Attach the device health machine (ssd/health.hpp): refreshes,
     * repairs and uncorrectable pages charge its error budget, and in
     * degraded states the patrol batch shrinks to scrubWordlinesPerPass
     * / HealthConfig::degradedScrubDivisor so background traffic yields
     * to distressed foreground I/O.
     */
    void setHealth(DeviceHealth *health) { health_ = health; }

    /**
     * Audit media.cursor.range: the persistent patrol cursor points at
     * a real (plane, block, wordline) of the configured geometry, so a
     * resumed patrol can never scan out of bounds.  Violations are
     * appended to @p r (common/invariant.hpp).
     */
    void
    auditInvariants(InvariantReport &r) const
    {
        const flash::FlashGeometry &g = cfg_.geometry;
        if (!r.check(plane_ < g.planesTotal() && block_ < g.blocksPerPlane &&
                     wl_ < g.wordlinesPerBlock))
            r.fail("media.cursor.range",
                   "cursor (" + std::to_string(plane_) + ", " +
                       std::to_string(block_) + ", " + std::to_string(wl_) +
                       ")",
                   "patrol cursor escaped the device geometry");
    }

    /** @name Lifetime metric accessors (registry names media.*). */
    /// @{
    std::uint64_t passes() const { return passes_.value(); }
    std::uint64_t wordlinesScanned() const { return scanned_.value(); }
    std::uint64_t scrubReads() const { return reads_.value(); }
    std::uint64_t refreshes() const { return refreshes_.value(); }
    std::uint64_t refreshFailures() const { return refreshFails_.value(); }
    std::uint64_t repairs() const { return repairs_.value(); }
    std::uint64_t uncorrectable() const { return uncorrectable_.value(); }
    /// @}

  private:
    /** Scan the wordline under the cursor (skips reserved/open/
     *  untouched blocks); dead planes divert to repairWordline(). */
    void scanOne(ScrubPassStats &s, std::vector<PhysOp> &ops);

    /** RAIN-rebuild and re-place every mapped page of the dead-plane
     *  wordline at @p a. */
    void repairWordline(flash::PhysPageAddr a, ScrubPassStats &s,
                        std::vector<PhysOp> &ops);

    void advanceCursor();

    SsdConfig cfg_;
    Ftl *ftl_;
    std::vector<flash::Chip> *chips_;
    RainController *rain_;
    DeviceHealth *health_ = nullptr;

    /** Persistent patrol cursor (flat plane, block, wordline). */
    PlaneIndex plane_ = 0;
    std::uint32_t block_ = 0;
    std::uint32_t wl_ = 0;
    Tick nextPassAt_ = 0;

    obs::Counter passes_{"media.scrub.passes"};
    obs::Counter scanned_{"media.scrub.wordlines_scanned"};
    obs::Counter reads_{"media.scrub.reads"};
    obs::Counter refreshes_{"media.refresh.wordlines"};
    obs::Counter refreshFails_{"media.refresh.failures"};
    obs::Counter repairs_{"media.rain.repairs"};
    obs::Counter uncorrectable_{"media.rain.uncorrectable"};
};

} // namespace parabit::ssd

#endif // PARABIT_SSD_MEDIA_HPP_
