/**
 * @file
 * Die-level RAIN (Redundant Array of Independent NAND) parity.
 *
 * A stripe is the set of pages at one (plane, block, wordline, page
 * kind) position across every die of a channel (chipsPerChannel x
 * diesPerChip members), so a whole-die failure — FaultClass::kDieFail,
 * or the narrower kDeadPlane/kDeadChip — leaves at most one member of
 * each stripe unreadable.  The controller keeps one XOR parity page per
 * stripe in its battery-backed stripe buffer:
 *
 *  - onProgram() folds every data-page program into its stripe's parity
 *    (the FTL calls it from its single program gateway) and, when
 *    configured, books one parity-destage program on the timing model;
 *  - willInvalidate() folds a page back *out* before the FTL drops it
 *    (the simulator's invalidate() releases the payload, so the XOR
 *    must happen first);
 *  - rebuildPage() recovers an unreadable member as parity XOR the
 *    surviving members — it fails (data loss) only when a second
 *    member of the same stripe is also unreadable;
 *  - recomputeAll() rebuilds the whole parity map from flash contents
 *    after a power cycle (the stripe buffer is volatile RAM).
 *
 * Invariant: each stripe's parity equals the XOR of the stored payloads
 * of its members (pages whose payload was dropped — invalidated, torn,
 * erased — contribute nothing).  Between a mid-program power cut and
 * the subsequent powerCycle() the invariant may be violated; no reads
 * are possible in that window and recomputeAll() restores it.
 *
 * Functional parity needs stored payloads (SsdConfig::storeData); in
 * timing mode the controller still counts updates and books destage
 * traffic, but rebuildPage() reports failure.
 */

#ifndef PARABIT_SSD_RAIN_HPP_
#define PARABIT_SSD_RAIN_HPP_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bitvector.hpp"
#include "common/invariant.hpp"
#include "obs/metrics.hpp"
#include "ssd/ftl.hpp"

namespace parabit::ssd {

class DeviceHealth;

/** Die-level parity controller; see file comment. */
class RainController
{
  public:
    RainController(const SsdConfig &cfg, std::vector<flash::Chip> &chips);

    /**
     * Attach the device health machine (ssd/health.hpp): in degraded
     * states parity-destage programs stop being booked on the timing
     * model (the stripe buffer is battery-backed, so deferring destage
     * bandwidth is safe), freeing the channels for distressed
     * foreground I/O.  Parity itself stays exactly consistent.
     */
    void setHealth(const DeviceHealth *health) { health_ = health; }

    /** Fold the just-programmed page at @p a into its stripe's parity;
     *  books the parity-destage program on @p ops when configured. */
    void onProgram(const flash::PhysPageAddr &a, std::vector<PhysOp> &ops);

    /** Fold the page at @p a back out of its stripe's parity.  Must be
     *  called before the page's payload is dropped (invalidate). */
    void willInvalidate(const flash::PhysPageAddr &a);

    /**
     * Recover the content of the (unreadable) page at @p a: stripe
     * parity XOR every *readable* member payload.  nullopt when the
     * stripe has no parity (timing mode / nothing ever programmed) or a
     * second member is unreadable too — genuine data loss.
     */
    std::optional<BitVector> rebuildPage(const flash::PhysPageAddr &a);

    /** Rebuild the parity map from flash contents (power cycle). */
    void recomputeAll();

    /** @name Invariant audit (common/invariant.hpp). */
    /// @{

    /**
     * Audit rain.parity.stripe_xor: every tracked stripe's parity page
     * equals the XOR of its members' stored payloads, recomputed from
     * flash (a stripe whose members all dropped their payloads must
     * hold all-zero parity).  Stripes with a member on a dead plane are
     * skipped: their buffers deliberately diverge from the survivors'
     * XOR — that difference IS the lost data, until rebuild.  Only
     * meaningful with stored data; in timing mode the audit contributes
     * no checks.  Violations are appended to @p r.
     */
    void auditParity(InvariantReport &r) const;

    /**
     * Deliberately flip a bit of one tracked parity page so negative
     * tests can prove the audit fires.  @return false when no stripe
     * holds parity yet.  Test-only.
     */
    bool debugCorruptParity();
    /// @}

    /** @name Introspection / metrics accessors. */
    /// @{
    std::size_t stripesTracked() const { return parity_.size(); }
    std::uint64_t parityUpdates() const { return updates_.value(); }
    std::uint64_t destagePrograms() const { return destages_.value(); }
    std::uint64_t rebuildsSucceeded() const { return rebuilds_.value(); }
    std::uint64_t rebuildsFailed() const { return rebuildFails_.value(); }
    /// @}

  private:
    std::uint64_t stripeKey(const flash::PhysPageAddr &a) const;

    /** Rotating destage target: the parity page of @p a's stripe lives
     *  on die (block + wordline) mod diesPerChannel, spreading parity
     *  write wear evenly across the stripe's dies. */
    flash::PhysPageAddr parityAddr(const flash::PhysPageAddr &a) const;

    /** Stored payload of @p a, or nullptr (timing mode, untouched
     *  block, or payload dropped). */
    const BitVector *payloadAt(const flash::PhysPageAddr &a) const;

    bool planeAlive(const flash::PhysPageAddr &a) const;

    void xorInto(std::uint64_t key, const BitVector &v);

    /** XOR every stored payload into @p out by stripe key (the ground
     *  truth recomputeAll() and auditParity() share). */
    void
    computeParityFromFlash(std::unordered_map<std::uint64_t, BitVector> &out)
        const;

    flash::FlashGeometry geom_;
    bool storeData_;
    bool chargeParity_;
    std::vector<flash::Chip> *chips_;
    const DeviceHealth *health_ = nullptr;
    /** Stripe key -> parity page (store-data mode only). */
    std::unordered_map<std::uint64_t, BitVector> parity_;

    obs::Counter updates_{"rain.parity_updates"};
    obs::Counter destages_{"rain.parity_destage_programs"};
    obs::Counter rebuilds_{"rain.rebuilds_ok"};
    obs::Counter rebuildFails_{"rain.rebuilds_failed"};
    obs::Counter recomputes_{"rain.recomputes"};
};

} // namespace parabit::ssd

#endif // PARABIT_SSD_RAIN_HPP_
