/**
 * @file
 * Crash-consistency half of the FTL: power-cut boundaries, the reserved
 * SLC checkpoint/journal region, and sudden-power-off recovery (OOB
 * scan + sequence-number arbitration).  See DESIGN.md "Crash
 * consistency" for the protocol; ftl.cpp holds the normal data path.
 */

#include "ssd/ftl.hpp"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "common/logging.hpp"

namespace parabit::ssd {

PowerCut
Ftl::powerBoundary(bool is_program)
{
    if (powerLost_)
        return PowerCut::kBeforeOp;
    if (!injector_)
        return PowerCut::kNone;
    const PowerCut cut = injector_->powerCutOnOp(is_program);
    if (cut != PowerCut::kNone) {
        powerLost_ = true;
        plpFlush();
    }
    return cut;
}

void
Ftl::plpFlush()
{
    // Hold-up capacitors dump the unpaired-LSB buffer to the reserved
    // region on residual energy; the dump is modeled always-durable
    // (that is the PLP hardware contract), unlike journal records which
    // gate on the cut boundary.
    for (auto &[key, e] : plpBuffer_)
        durable_.plpFlush.push_back(std::move(e));
    plpBuffer_.clear();
}

void
Ftl::restorePlpEntries(RecoveryReport &rep, std::vector<PhysOp> &ops)
{
    if (durable_.plpFlush.empty())
        return;
    // Newest copy of each LPN wins (an LPN rewritten while still
    // buffered leaves a stale entry behind).
    std::sort(durable_.plpFlush.begin(), durable_.plpFlush.end(),
              [](const PlpEntry &x, const PlpEntry &y) {
                  return x.lpn != y.lpn ? x.lpn < y.lpn : x.seq > y.seq;
              });
    bool first = true;
    Lpn prev = kNoLpn;
    for (PlpEntry &e : durable_.plpFlush) {
        if (!first && e.lpn == prev)
            continue;
        first = false;
        prev = e.lpn;
        if (map_.count(e.lpn) > 0)
            continue; // the flash copy survived: the dump is redundant
        bool placed = false;
        for (int attempt = 0; attempt < kMaxProgramRetries && !placed;
             ++attempt) {
            const auto a = allocateOrGc(pickAlivePlane(), false, ops);
            if (!a)
                break;
            if (!programPhys(*a, e.data ? &*e.data : nullptr, false, ops,
                             e.lpn, OobTag::kHostData, e.scrambled))
                continue;
            mapLpn(e.lpn, *a, ops);
            if (e.scrambled)
                scrambledLpns_.insert(e.lpn);
            placed = true;
        }
        if (placed)
            ++rep.plpRestored;
        else
            logWarn("Ftl::restorePlpEntries: could not re-place LPN " +
                    std::to_string(e.lpn) + " from the PLP dump");
    }
    durable_.plpFlush.clear();
}

std::uint64_t
Ftl::linearBlockId(PlaneIndex plane, std::uint32_t block) const
{
    return static_cast<std::uint64_t>(plane) * cfg_.geometry.blocksPerPlane +
           block;
}

std::uint32_t
Ftl::halfPages() const
{
    // The log region is written SLC-mode (LSB pages only) so that a
    // torn log program can never corrupt an earlier, committed record
    // through the shared-wordline coupling.
    return alloc_.planeCount() * (cfg_.recovery.reservedBlocksPerPlane / 2) *
           cfg_.geometry.wordlinesPerBlock;
}

flash::PhysPageAddr
Ftl::logAddr(int half, std::uint32_t idx) const
{
    const std::uint32_t r = cfg_.recovery.reservedBlocksPerPlane;
    const std::uint32_t blocks_per_half = r / 2;
    const std::uint32_t pages_per_plane =
        blocks_per_half * cfg_.geometry.wordlinesPerBlock;
    const PlaneIndex p = idx / pages_per_plane;
    const std::uint32_t rem = idx % pages_per_plane;
    const PlaneCoord c = planeCoord(cfg_.geometry, p);
    flash::PhysPageAddr a;
    a.channel = c.channel;
    a.chip = c.chip;
    a.die = c.die;
    a.plane = c.plane;
    a.block = cfg_.geometry.blocksPerPlane - r +
              static_cast<std::uint32_t>(half) * blocks_per_half +
              rem / cfg_.geometry.wordlinesPerBlock;
    a.wordline = rem % cfg_.geometry.wordlinesPerBlock;
    a.msb = false;
    return a;
}

bool
Ftl::eraseHalf(int half, std::vector<PhysOp> &ops)
{
    const std::uint32_t r = cfg_.recovery.reservedBlocksPerPlane;
    const std::uint32_t blocks_per_half = r / 2;
    for (PlaneIndex p = 0; p < alloc_.planeCount(); ++p) {
        const PlaneCoord c = planeCoord(cfg_.geometry, p);
        for (std::uint32_t i = 0; i < blocks_per_half; ++i) {
            const std::uint32_t b = cfg_.geometry.blocksPerPlane - r +
                                    static_cast<std::uint32_t>(half) *
                                        blocks_per_half +
                                    i;
            flash::PhysPageAddr a;
            a.channel = c.channel;
            a.chip = c.chip;
            a.die = c.die;
            a.plane = c.plane;
            a.block = b;
            flash::Chip &chip = chipAt(a);
            const flash::Block *blk =
                chip.plane(c.die, c.plane).blockIfExists(b);
            if (!blk || blk->freePages() == cfg_.geometry.pagesPerBlock())
                continue; // nothing programmed: nothing to erase
            if (powerBoundary(false) != PowerCut::kNone)
                return false;
            ops.push_back(PhysOp{PhysOp::Kind::kBlockErase, a, false});
            if (chip.eraseBlock(c.die, c.plane, b))
                ++logErases_;
            else
                logWarn("Ftl::eraseHalf: erase failure in the reserved "
                        "region; pages will be skipped");
        }
    }
    return true;
}

bool
Ftl::logProgram(std::vector<PhysOp> &ops, bool allow_rotate)
{
    const std::uint32_t cap = halfPages();
    for (std::uint32_t guard = 0; guard <= cap + 1; ++guard) {
        if (logHead_ >= cap) {
            if (!allow_rotate) {
                // Checkpoint image exceeds the reserved region;
                // modelled truncated (warned by the caller).
                return !powerLost_;
            }
            // Journal half full: rotate via a fresh checkpoint, which
            // erases the other half and restarts logHead_ there.
            if (!checkpoint(ops))
                return false;
            continue;
        }
        const flash::PhysPageAddr a = logAddr(logHalf_, logHead_++);
        if (powerBoundary(true) != PowerCut::kNone)
            return false; // the record never became durable
        ops.push_back(PhysOp{PhysOp::Kind::kPageProgram, a, false});
        if (chipAt(a).pageState(chipAddr(a)) != flash::PageState::kFree)
            continue; // residue of a failed erase: skip the page
        const flash::PageOob oob{kNoLpn, seq_++,
                                 static_cast<std::uint8_t>(OobTag::kLog),
                                 false};
        if (!chipAt(a).programPage(chipAddr(a), nullptr, &oob))
            continue; // injected program failure: skip the bad page
        return true;
    }
    logWarn("Ftl::logProgram: reserved log region unusable");
    return false;
}

bool
Ftl::journalAppend(JournalRecord r, std::vector<PhysOp> &ops)
{
    if (!recoveryEnabled())
        return true;
    if (powerLost_)
        return false;
    r.seq = seq_++;
    if (!logProgram(ops))
        return false;
    durable_.records.push_back(r);
    ++journalWrites_;
    return true;
}

bool
Ftl::checkpoint(std::vector<PhysOp> &ops)
{
    if (!recoveryEnabled() || powerLost_ || inCheckpoint_)
        return false;
    inCheckpoint_ = true;

    CheckpointImage img;
    img.seq = seq_;
    img.map.reserve(map_.size());
    for (const auto &[lpn, a] : map_)
        img.map.push_back(CheckpointImage::Entry{
            lpn, flash::linearPageIndex(cfg_.geometry, a),
            scrambledLpns_.count(lpn) > 0});
    // Deterministic image (unordered_map iteration order is not).
    std::sort(img.map.begin(), img.map.end(),
              [](const CheckpointImage::Entry &x,
                 const CheckpointImage::Entry &y) { return x.lpn < y.lpn; });
    for (PlaneIndex p = 0; p < alloc_.planeCount(); ++p) {
        for (std::uint32_t b : alloc_.poolBlocks(p))
            img.scanBlocks.push_back(linearBlockId(p, b));
        for (std::uint32_t b = 0; b < cfg_.geometry.blocksPerPlane; ++b) {
            if (alloc_.isActiveBlock(p, b))
                img.scanBlocks.push_back(linearBlockId(p, b));
            if (alloc_.isRetired(p, b))
                img.retired.push_back(linearBlockId(p, b));
        }
    }
    std::sort(img.scanBlocks.begin(), img.scanBlocks.end());

    // Serialized size -> log pages: 32 B header + 17 B per map entry
    // (lpn, linear index, flags) + 8 B per block id.
    const std::uint64_t bytes =
        32 + 17ull * img.map.size() +
        8ull * (img.scanBlocks.size() + img.retired.size());
    const std::uint64_t page_bytes = cfg_.geometry.pageBytes;
    img.pages = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, (bytes + page_bytes - 1) / page_bytes));
    if (img.pages + 1 > halfPages())
        logWarn("Ftl::checkpoint: image exceeds half the reserved region; "
                "modelling it truncated");

    // Write into the half NOT holding the committed generation: if the
    // cut strikes before the commit page below, the previous checkpoint
    // plus its journal tail remain the durable truth.
    const int prev_half = logHalf_;
    const std::uint32_t prev_head = logHead_;
    logHalf_ = 1 - prev_half;
    logHead_ = 0;
    bool ok = eraseHalf(logHalf_, ops);
    const std::uint32_t to_write = std::min(img.pages + 1, halfPages());
    for (std::uint32_t i = 0; ok && i < to_write; ++i)
        ok = logProgram(ops, /*allow_rotate=*/false);
    if (!ok) {
        logHalf_ = prev_half;
        logHead_ = prev_head;
        inCheckpoint_ = false;
        return false;
    }
    // The last page above is the commit record: the new generation is
    // durable, the journal continues behind it in the same half.
    durable_.checkpoint = std::move(img);
    durable_.records.clear();
    programsSinceCkpt_ = 0;
    ++checkpoints_;
    inCheckpoint_ = false;
    return true;
}

void
Ftl::maybeCheckpoint(std::vector<PhysOp> &ops)
{
    if (!recoveryEnabled() || powerLost_ || inGc_ || inCheckpoint_)
        return;
    const std::uint32_t interval = cfg_.recovery.checkpointIntervalPrograms;
    if (interval == 0 || programsSinceCkpt_ < interval)
        return;
    checkpoint(ops);
}

RecoveryReport
Ftl::recover(std::vector<PhysOp> &ops)
{
    RecoveryReport rep;
    rep.recovered = true;
    map_.clear();
    reverse_.clear();
    scrambledLpns_.clear();
    inGc_ = false;
    inCheckpoint_ = false;

    const std::uint32_t reserved = cfg_.recovery.reservedBlocksPerPlane;
    const std::uint32_t data_blocks =
        cfg_.geometry.blocksPerPlane - reserved;

    // One mapping candidate per (source, lpn); highest sequence wins.
    struct Cand
    {
        std::uint64_t seq = 0;
        bool isTrim = false;
        std::uint64_t phys = 0;
        bool scrambled = false;
        bool fromOob = false;
    };
    std::unordered_map<Lpn, std::vector<Cand>> cands;
    std::uint64_t max_seq = 0;

    // Phase 1: checkpoint load + journal replay bound the scan set.
    const bool use_ckpt = durable_.checkpoint.has_value();
    rep.usedCheckpoint = use_ckpt;
    std::unordered_set<std::uint64_t> scan_set;
    if (use_ckpt) {
        const CheckpointImage &img = *durable_.checkpoint;
        max_seq = std::max(max_seq, img.seq);
        rep.checkpointPagesRead = img.pages + 1;
        for (const CheckpointImage::Entry &e : img.map)
            cands[e.lpn].push_back(
                Cand{img.seq, false, e.phys, e.scrambled, false});
        scan_set.insert(img.scanBlocks.begin(), img.scanBlocks.end());
        scan_set.insert(img.retired.begin(), img.retired.end());
        for (const JournalRecord &r : durable_.records) {
            ++rep.journalRecords;
            max_seq = std::max(max_seq, r.seq);
            switch (r.kind) {
              case JournalRecord::Kind::kTrim:
                cands[r.lpn].push_back(Cand{r.seq, true, 0, false, false});
                break;
              case JournalRecord::Kind::kRemap:
                cands[r.lpn].push_back(
                    Cand{r.seq, false, r.value, false, false});
                break;
              case JournalRecord::Kind::kErase:
                scan_set.insert(r.value);
                break;
              case JournalRecord::Kind::kRetire:
                scan_set.insert(r.value);
                alloc_.retireBlock(
                    static_cast<PlaneIndex>(r.value /
                                            cfg_.geometry.blocksPerPlane),
                    static_cast<std::uint32_t>(r.value %
                                               cfg_.geometry.blocksPerPlane));
                break;
            }
        }
        // Book the checkpoint + journal replay reads from the log half.
        const std::uint64_t log_reads =
            std::min<std::uint64_t>(rep.checkpointPagesRead +
                                        rep.journalRecords,
                                    halfPages());
        for (std::uint64_t i = 0; i < log_reads; ++i)
            ops.push_back(PhysOp{
                PhysOp::Kind::kPageRead,
                logAddr(logHalf_, static_cast<std::uint32_t>(i)), false});
    } else {
        for (PlaneIndex p = 0; p < alloc_.planeCount(); ++p)
            for (std::uint32_t b = 0; b < data_blocks; ++b)
                scan_set.insert(linearBlockId(p, b));
    }

    // Phase 2: OOB scan of the (bounded) block set.
    std::vector<std::uint64_t> scan_list(scan_set.begin(), scan_set.end());
    std::sort(scan_list.begin(), scan_list.end());
    for (std::uint64_t id : scan_list) {
        const PlaneIndex p =
            static_cast<PlaneIndex>(id / cfg_.geometry.blocksPerPlane);
        const std::uint32_t b =
            static_cast<std::uint32_t>(id % cfg_.geometry.blocksPerPlane);
        if (b >= data_blocks)
            continue; // never scan the log region for data
        const PlaneCoord c = planeCoord(cfg_.geometry, p);
        flash::PhysPageAddr probe;
        probe.channel = c.channel;
        probe.chip = c.chip;
        probe.die = c.die;
        probe.plane = c.plane;
        probe.block = b;
        const flash::Block *blk =
            chipAt(probe).plane(c.die, c.plane).blockIfExists(b);
        if (!blk)
            continue;
        ++rep.blocksScanned;
        for (std::uint32_t wl = 0; wl < cfg_.geometry.wordlinesPerBlock;
             ++wl) {
            const bool torn = blk->torn(wl);
            if (torn)
                ++rep.tornWordlines;
            for (int m = 0; m < 2; ++m) {
                const bool msb = m == 1;
                if (blk->pageState(wl, msb) == flash::PageState::kFree)
                    continue;
                ++rep.pagesScanned;
                flash::PhysPageAddr a = probe;
                a.wordline = wl;
                a.msb = msb;
                ops.push_back(PhysOp{PhysOp::Kind::kPageRead, a, true});
                if (torn || blk->pageState(wl, msb) != flash::PageState::kValid)
                    continue;
                const flash::PageOob *oob = blk->pageOob(wl, msb);
                if (!oob || oob->lpn == kNoLpn ||
                    oob->tag == static_cast<std::uint8_t>(OobTag::kLog))
                    continue;
                ++rep.oobCandidates;
                max_seq = std::max(max_seq, oob->seq);
                cands[oob->lpn].push_back(
                    Cand{oob->seq, false,
                         flash::linearPageIndex(cfg_.geometry, a),
                         oob->scrambled, true});
            }
        }
    }

    // Phase 3: arbitration — newest durable statement about each LPN
    // wins; physical candidates must still check out on flash (valid,
    // untorn, OOB agrees), else the next-newest is consulted.
    std::vector<Lpn> lpns;
    lpns.reserve(cands.size());
    for (const auto &[lpn, list] : cands)
        lpns.push_back(lpn);
    std::sort(lpns.begin(), lpns.end());
    for (Lpn lpn : lpns) {
        std::vector<Cand> &list = cands[lpn];
        std::sort(list.begin(), list.end(),
                  [](const Cand &x, const Cand &y) {
                      if (x.seq != y.seq)
                          return x.seq > y.seq;
                      if (x.isTrim != y.isTrim)
                          return x.isTrim;
                      return x.phys > y.phys;
                  });
        for (const Cand &cand : list) {
            if (cand.isTrim)
                break; // newest statement: the LPN is unmapped
            const flash::PhysPageAddr a =
                flash::pageFromLinear(cfg_.geometry, cand.phys);
            if (a.block >= data_blocks)
                continue;
            flash::Chip &chip = chipAt(a);
            const flash::Block *blk =
                chip.plane(a.die, a.plane).blockIfExists(a.block);
            if (!blk || blk->torn(a.wordline) ||
                blk->pageState(a.wordline, a.msb) != flash::PageState::kValid)
                continue;
            const flash::PageOob *oob = blk->pageOob(a.wordline, a.msb);
            if (!oob || oob->lpn != lpn)
                continue;
            map_[lpn] = a;
            reverse_[cand.phys] = lpn;
            if (oob->scrambled)
                scrambledLpns_.insert(lpn);
            break;
        }
    }
    rep.mappingsRebuilt = map_.size();

    // Phase 4: valid pages that lost arbitration (stale copies, torn
    // survivors, released backups) are marked invalid so GC reclaims
    // them and they can never resurface.
    for (std::uint64_t id : scan_list) {
        const PlaneIndex p =
            static_cast<PlaneIndex>(id / cfg_.geometry.blocksPerPlane);
        const std::uint32_t b =
            static_cast<std::uint32_t>(id % cfg_.geometry.blocksPerPlane);
        if (b >= data_blocks)
            continue;
        const PlaneCoord c = planeCoord(cfg_.geometry, p);
        flash::PhysPageAddr probe;
        probe.channel = c.channel;
        probe.chip = c.chip;
        probe.die = c.die;
        probe.plane = c.plane;
        probe.block = b;
        flash::Plane &pl = chipAt(probe).plane(c.die, c.plane);
        flash::Block *blk = pl.blockIfExists(b) ? &pl.block(b) : nullptr;
        if (!blk)
            continue;
        for (std::uint32_t wl = 0; wl < cfg_.geometry.wordlinesPerBlock;
             ++wl) {
            for (int m = 0; m < 2; ++m) {
                const bool msb = m == 1;
                if (blk->pageState(wl, msb) != flash::PageState::kValid)
                    continue;
                flash::PhysPageAddr a = probe;
                a.wordline = wl;
                a.msb = msb;
                const std::uint64_t lin =
                    flash::linearPageIndex(cfg_.geometry, a);
                if (reverse_.count(lin))
                    continue; // arbitration winner: stays valid
                blk->invalidate(wl, msb);
                ++rep.staleInvalidated;
            }
        }
    }

    seq_ = max_seq + 1;
    programsSinceCkpt_ = 0;
    rep.nextSeq = seq_;
    return rep;
}

void
Ftl::rebuildAllocator()
{
    const std::uint32_t reserved =
        cfg_.recovery.enabled ? cfg_.recovery.reservedBlocksPerPlane : 0;
    const std::uint32_t data_blocks =
        cfg_.geometry.blocksPerPlane - reserved;
    for (PlaneIndex p = 0; p < alloc_.planeCount(); ++p) {
        const PlaneCoord c = planeCoord(cfg_.geometry, p);
        flash::PhysPageAddr probe;
        probe.channel = c.channel;
        probe.chip = c.chip;
        probe.die = c.die;
        probe.plane = c.plane;
        flash::Plane &pl = chipAt(probe).plane(c.die, c.plane);
        std::vector<std::uint32_t> free;
        for (std::uint32_t b = 0; b < data_blocks; ++b) {
            const flash::Block *blk = pl.blockIfExists(b);
            // Only fully-free blocks are pooled; partially written ones
            // are left to GC (their write points are not trustworthy
            // after a crash).
            if (!blk || blk->freePages() == cfg_.geometry.pagesPerBlock())
                free.push_back(b);
        }
        alloc_.rebuild(p, free);
    }
}

RecoveryReport
Ftl::powerCycle(std::vector<PhysOp> &ops)
{
    // A clean restart (no prior cut) still loses controller RAM: dump
    // the unpaired-LSB buffer as if the plug had been pulled now.
    if (recoveryEnabled() && !powerLost_)
        plpFlush();
    powerLost_ = false;
    if (!recoveryEnabled()) {
        // No SPOR subsystem: the volatile mapping is simply gone.  The
        // device stays usable for new writes (motivating test case).
        map_.clear();
        reverse_.clear();
        scrambledLpns_.clear();
        inGc_ = false;
        rebuildAllocator();
        RecoveryReport rep;
        rep.nextSeq = seq_;
        return rep;
    }
    RecoveryReport rep = recover(ops);
    rebuildAllocator();
    restorePlpEntries(rep, ops);
    // Re-establish a bounded-scan baseline for the next cut.
    checkpoint(ops);
    rep.nextSeq = seq_;
    return rep;
}

} // namespace parabit::ssd
