/**
 * @file
 * Page-mapping Flash Translation Layer with greedy garbage collection.
 *
 * The FTL is purely functional: it mutates the chip array and appends a
 * log of the physical operations it performed (including GC traffic) so
 * the device layer can book them on the timing model.  Besides the
 * standard read/write/trim path it exposes the placement primitives the
 * ParaBit controller builds on:
 *
 *  - writePair():  place two logical pages on one wordline (operand
 *                  co-location / ReAllocation);
 *  - writeLsbOnly(): LSB-only placement leaving MSBs free (Section 5.5
 *                  pre-allocation);
 *  - writeIntoFreeMsb(): drop a fresh logical page into the free MSB of
 *                  an existing wordline (chained-result placement).
 */

#ifndef PARABIT_SSD_FTL_HPP_
#define PARABIT_SSD_FTL_HPP_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bitvector.hpp"
#include "flash/chip.hpp"
#include "ssd/allocator.hpp"
#include "ssd/config.hpp"
#include "ssd/scrambler.hpp"

namespace parabit::ssd {

/** Logical page number. */
using Lpn = std::uint64_t;

/** One physical flash operation, for the timing layer. */
struct PhysOp
{
    enum class Kind : std::uint8_t
    {
        kPageRead,    ///< array sense (1 SRO LSB / 2 SRO MSB) + page out
        kPageProgram, ///< page in + program
        kBlockErase,  ///< erase (addr.block significant)
    };

    Kind kind;
    flash::PhysPageAddr addr;
    bool forGc = false; ///< true when induced by garbage collection
};

/** Page-mapping FTL; see file comment. */
class Ftl
{
  public:
    /**
     * @param cfg device configuration
     * @param chips chip array, indexed channel * chipsPerChannel + chip
     */
    Ftl(const SsdConfig &cfg, std::vector<flash::Chip> &chips);

    /** Logical capacity in pages after over-provisioning. */
    std::uint64_t logicalPages() const { return logicalPages_; }

    /** @name Standard host path. */
    /// @{

    /**
     * Write one logical page (data may be null in timing mode); striped
     * placement, interleaved density.  GC may piggyback.  A program
     * failure retires the block and retries on a fresh one; @return
     * false only when the bounded retries are exhausted.
     */
    bool writePage(Lpn lpn, const BitVector *data, std::vector<PhysOp> &ops);

    /** Read a mapped logical page (ECC-clean). */
    BitVector readPage(Lpn lpn, std::vector<PhysOp> &ops);

    /** Current physical location of @p lpn, if mapped. */
    std::optional<flash::PhysPageAddr> lookup(Lpn lpn) const;

    /** True iff @p lpn is mapped and its plane is operational (a dead
     *  plane makes the stored copy unreadable — data loss). */
    bool pageAccessible(Lpn lpn);

    /** Unmap @p lpn and invalidate its physical page. */
    void trim(Lpn lpn);
    /// @}

    /** @name ParaBit placement primitives. */
    /// @{

    /**
     * Place logical pages @p lpn_x (LSB) and @p lpn_y (MSB) on one fresh
     * wordline of @p plane (or a striped plane if nullopt).
     * @return the wordline's pair of physical addresses, or nullopt if
     * the requested plane is dead or program retries were exhausted.
     */
    std::optional<PagePair>
    writePair(Lpn lpn_x, Lpn lpn_y, const BitVector *data_x,
              const BitVector *data_y, std::vector<PhysOp> &ops,
              std::optional<PlaneIndex> plane = std::nullopt);

    /** LSB-only placement of @p lpn in @p plane (or striped); nullopt
     *  under the same failure conditions as writePair(). */
    std::optional<flash::PhysPageAddr>
    writeLsbOnly(Lpn lpn, const BitVector *data, std::vector<PhysOp> &ops,
                 std::optional<PlaneIndex> plane = std::nullopt);

    /**
     * Write @p lpn into the free MSB page of the wordline holding
     * @p lsb_addr.  Fails (returns false) if that MSB is not free.
     */
    bool writeIntoFreeMsb(Lpn lpn, const flash::PhysPageAddr &lsb_addr,
                          const BitVector *data, std::vector<PhysOp> &ops);
    /// @}

    /** @name Statistics (endurance / WAF). */
    /// @{
    std::uint64_t hostPagesWritten() const { return hostWrites_; }
    std::uint64_t gcPagesWritten() const { return gcWrites_; }
    std::uint64_t totalPagesWritten() const
    {
        return hostWrites_ + gcWrites_ + parabitWrites_;
    }
    /** Pages written by ParaBit reallocation (counted via writePair /
     *  writeLsbOnly / writeIntoFreeMsb). */
    std::uint64_t parabitPagesWritten() const { return parabitWrites_; }
    std::uint64_t blockErases() const { return erases_; }
    std::uint64_t gcRuns() const { return gcRuns_; }
    std::uint64_t wearLevelMoves() const { return wearMoves_; }

    /** @name Reliability counters. */
    /// @{
    std::uint64_t programFailures() const { return programFailures_; }
    std::uint64_t eraseFailures() const { return eraseFailures_; }
    /** Program attempts re-placed after a failure. */
    std::uint64_t programRetries() const { return programRetries_; }
    std::uint64_t retiredBlocks() const { return alloc_.retiredBlocks(); }
    /// @}

    /** Max-min block erase-count spread in @p plane (wear skew). */
    std::uint32_t eraseSpread(PlaneIndex plane);
    double
    writeAmplification() const
    {
        const std::uint64_t host = hostWrites_ + parabitWrites_;
        return host == 0 ? 1.0
                         : static_cast<double>(totalPagesWritten()) /
                               static_cast<double>(host);
    }
    /// @}

    /** Direct chip access for the controller layer. */
    flash::Chip &chipAt(const flash::PhysPageAddr &a);

    Allocator &allocator() { return alloc_; }

  private:
    flash::ChipPageAddr chipAddr(const flash::PhysPageAddr &a) const;
    void unmapPhys(const flash::PhysPageAddr &a);
    void mapLpn(Lpn lpn, const flash::PhysPageAddr &a,
                std::vector<PhysOp> &ops);
    /** Allocate in @p plane, running GC first if needed.  nullopt when
     *  the plane has no space even after GC (full, or its blocks were
     *  retired by faults) — callers retry elsewhere or fail typed. */
    std::optional<flash::PhysPageAddr>
    allocateOrGc(PlaneIndex plane, bool lsb_only, std::vector<PhysOp> &ops);
    std::optional<PagePair> allocatePairOrGc(PlaneIndex plane,
                                             std::vector<PhysOp> &ops);
    void collectGarbage(PlaneIndex plane, std::vector<PhysOp> &ops);
    void maybeWearLevel(PlaneIndex plane, std::vector<PhysOp> &ops);
    /** Program @p a (attempt is charged to @p ops either way); on an
     *  injected program failure the block is retired and false returned. */
    bool programPhys(const flash::PhysPageAddr &a, const BitVector *data,
                     bool for_gc, std::vector<PhysOp> &ops);
    bool planeAlive(PlaneIndex plane);
    /** Next striped plane that is still operational (fatal if none). */
    PlaneIndex pickAlivePlane();

    SsdConfig cfg_;
    std::vector<flash::Chip> *chips_;
    Allocator alloc_;
    Scrambler scrambler_;
    std::uint64_t logicalPages_;
    std::unordered_map<Lpn, flash::PhysPageAddr> map_;
    /** Reverse map: linear physical page index -> LPN (for GC). */
    std::unordered_map<std::uint64_t, Lpn> reverse_;
    /** LPNs whose stored bits are whitened (host path with scrambling);
     *  ParaBit placements store raw data and clear membership. */
    std::unordered_set<Lpn> scrambledLpns_;

    std::uint64_t hostWrites_ = 0;
    std::uint64_t gcWrites_ = 0;
    std::uint64_t parabitWrites_ = 0;
    std::uint64_t erases_ = 0;
    std::uint64_t gcRuns_ = 0;
    std::uint64_t wearMoves_ = 0;
    std::uint64_t programFailures_ = 0;
    std::uint64_t eraseFailures_ = 0;
    std::uint64_t programRetries_ = 0;
    std::uint32_t gcThresholdBlocks_;
    bool inGc_ = false;
};

} // namespace parabit::ssd

#endif // PARABIT_SSD_FTL_HPP_
