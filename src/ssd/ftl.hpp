/**
 * @file
 * Page-mapping Flash Translation Layer with greedy garbage collection.
 *
 * The FTL is purely functional: it mutates the chip array and appends a
 * log of the physical operations it performed (including GC traffic) so
 * the device layer can book them on the timing model.  Besides the
 * standard read/write/trim path it exposes the placement primitives the
 * ParaBit controller builds on:
 *
 *  - writePair():  place two logical pages on one wordline (operand
 *                  co-location / ReAllocation);
 *  - writeLsbOnly(): LSB-only placement leaving MSBs free (Section 5.5
 *                  pre-allocation);
 *  - writeIntoFreeMsb(): drop a fresh logical page into the free MSB of
 *                  an existing wordline (chained-result placement).
 *
 * With SsdConfig::recovery enabled the FTL is crash-consistent: every
 * program carries OOB metadata (LPN, sequence number, tag), mapping
 * deletions are write-ahead journaled to a reserved SLC log region,
 * periodic checkpoints bound the recovery scan, and powerCycle()
 * rebuilds map/reverse/allocator state after a kPowerLoss fault cut
 * execution at an arbitrary PhysOp boundary.  See DESIGN.md "Crash
 * consistency".
 */

#ifndef PARABIT_SSD_FTL_HPP_
#define PARABIT_SSD_FTL_HPP_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bitvector.hpp"
#include "common/invariant.hpp"
#include "flash/chip.hpp"
#include "obs/metrics.hpp"
#include "ssd/allocator.hpp"
#include "ssd/config.hpp"
#include "ssd/fault_injector.hpp"
#include "ssd/recovery.hpp"
#include "ssd/scrambler.hpp"

namespace parabit::ssd {

class RainController;
class DeviceHealth;

/** One physical flash operation, for the timing layer. */
struct PhysOp
{
    enum class Kind : std::uint8_t
    {
        kPageRead,    ///< array sense (1 SRO LSB / 2 SRO MSB) + page out
        kPageProgram, ///< page in + program
        kBlockErase,  ///< erase (addr.block significant)
        kScrubRead,   ///< patrol-scrub scan sense (low-priority, no xfer)
    };

    Kind kind;
    flash::PhysPageAddr addr;
    bool forGc = false; ///< true when induced by garbage collection
};

/** Page-mapping FTL; see file comment. */
class Ftl
{
  public:
    /** Re-placements attempted after a program failure before the write
     *  is reported as failed (each failure also retires a block, so
     *  repeated failures walk across fresh blocks, not the same one). */
    static constexpr int kMaxProgramRetries = 4;

    /**
     * @param cfg device configuration
     * @param chips chip array, indexed channel * chipsPerChannel + chip
     */
    Ftl(const SsdConfig &cfg, std::vector<flash::Chip> &chips);

    /** Logical capacity in pages after over-provisioning. */
    std::uint64_t logicalPages() const { return logicalPages_; }

    /** @name Standard host path. */
    /// @{

    /**
     * Write one logical page (data may be null in timing mode); striped
     * placement, interleaved density.  GC may piggyback.  A program
     * failure retires the block and retries on a fresh one; @return
     * false only when the bounded retries are exhausted.
     */
    bool writePage(Lpn lpn, const BitVector *data, std::vector<PhysOp> &ops);

    /** Read a mapped logical page (ECC-clean). */
    BitVector readPage(Lpn lpn, std::vector<PhysOp> &ops);

    /** Current physical location of @p lpn, if mapped. */
    std::optional<flash::PhysPageAddr> lookup(Lpn lpn) const;

    /** True iff @p lpn is mapped and its plane is operational (a dead
     *  plane makes the stored copy unreadable — data loss). */
    bool pageAccessible(Lpn lpn);

    /**
     * Unmap @p lpn and invalidate its physical page.  In recovery mode
     * the trim is write-ahead journaled before the mapping is touched;
     * @return false when a power cut struck before the journal record
     * became durable (the trim is then NOT acknowledged and recovery
     * may legitimately keep the page mapped).  @p ops receives the
     * journal-flush program when provided.
     */
    bool trim(Lpn lpn, std::vector<PhysOp> *ops = nullptr);
    /// @}

    /** @name ParaBit placement primitives. */
    /// @{

    /**
     * Place logical pages @p lpn_x (LSB) and @p lpn_y (MSB) on one fresh
     * wordline of @p plane (or a striped plane if nullopt).
     * @return the wordline's pair of physical addresses, or nullopt if
     * the requested plane is dead or program retries were exhausted.
     */
    std::optional<PagePair>
    writePair(Lpn lpn_x, Lpn lpn_y, const BitVector *data_x,
              const BitVector *data_y, std::vector<PhysOp> &ops,
              std::optional<PlaneIndex> plane = std::nullopt);

    /** LSB-only placement of @p lpn in @p plane (or striped); nullopt
     *  under the same failure conditions as writePair(). */
    std::optional<flash::PhysPageAddr>
    writeLsbOnly(Lpn lpn, const BitVector *data, std::vector<PhysOp> &ops,
                 std::optional<PlaneIndex> plane = std::nullopt);

    /**
     * Write @p lpn into the free MSB page of the wordline holding
     * @p lsb_addr.  Fails (returns false) if that MSB is not free.
     */
    bool writeIntoFreeMsb(Lpn lpn, const flash::PhysPageAddr &lsb_addr,
                          const BitVector *data, std::vector<PhysOp> &ops);
    /// @}

    /** @name Media management (patrol scrub / RAIN); see ssd/media.hpp. */
    /// @{

    /**
     * Attach the device's RAIN parity controller.  Every data-page
     * program and invalidation is then reported to it, keeping stripe
     * parity consistent across host writes, GC, wear leveling, trims,
     * refresh relocation and ParaBit reallocation.
     */
    void setRain(RainController *rain) { rain_ = rain; }

    /** Attach the device health machine: every bad-block retirement
     *  then charges its error budget (ssd/health.hpp). */
    void setHealth(DeviceHealth *health) { health_ = health; }

    /** LPN mapped to physical page @p a, or kNoLpn. */
    Lpn lpnAt(const flash::PhysPageAddr &a) const;

    /**
     * Refresh-relocate the wordline of @p wl (patrol scrubber, elevated
     * predicted RBER): every valid mapped page moves to a fresh
     * location with tag and scrambling preserved, old copies are
     * invalidated copy-then-remap style.  A co-located ParaBit operand
     * pair moves through writePair(), keeping both operands on one
     * fresh wordline.  @return false when any page could not be
     * re-placed (it then keeps its old location — degraded, not lost).
     */
    bool refreshWordline(const flash::PhysPageAddr &wl,
                         std::vector<PhysOp> &ops);

    /**
     * Re-place @p lpn's content (e.g. a RAIN rebuild of a dead-die
     * page) on a fresh page of an operational plane and remap; the old
     * copy is invalidated.  @p data may be null in timing mode.
     */
    bool relocatePage(Lpn lpn, const BitVector *data,
                      std::vector<PhysOp> &ops);

    /** Pages re-placed by refresh/repair relocation. */
    std::uint64_t refreshPagesWritten() const { return refreshWrites_.value(); }
    /// @}

    /** @name Crash consistency (SPOR); see file comment. */
    /// @{

    bool recoveryEnabled() const { return cfg_.recovery.enabled; }

    /** Wire the device's fault injector in (power-cut boundaries are
     *  consumed from it; null = no power faults possible). */
    void setFaultInjector(FaultInjector *injector) { injector_ = injector; }

    /** True after a kPowerLoss fault fired: every subsequent flash op
     *  is suppressed until powerCycle(). */
    bool powerLost() const { return powerLost_; }

    /**
     * Take a full checkpoint now (NVMe Flush / shutdown notification):
     * the mapping + allocator snapshot is written to the inactive half
     * of the reserved log region and committed, and the journal tail is
     * cleared.  @return false if recovery is disabled, power is lost,
     * or the cut struck before the commit page (the previous checkpoint
     * generation then remains the durable truth).
     */
    bool checkpoint(std::vector<PhysOp> &ops);

    /**
     * Power restoration after a cut: rebuild map_/reverse_/scrambled
     * state by checkpoint load + journal replay + OOB scan with
     * sequence-number arbitration (torn wordlines discarded), rebuild
     * the allocator from physical block occupancy, and take a fresh
     * checkpoint.  With recovery disabled the mapping is simply lost
     * (the device stays usable for new writes).  @p ops receives the
     * scan/replay reads for the timing layer.
     */
    RecoveryReport powerCycle(std::vector<PhysOp> &ops);

    /** The modeled content of the reserved log region (tests). */
    const DurableLog &durableLog() const { return durable_; }

    std::uint64_t checkpointsTaken() const { return checkpoints_.value(); }
    std::uint64_t journalRecordsWritten() const
    {
        return journalWrites_.value();
    }
    /** Next OOB sequence number (monotonic across power cycles). */
    std::uint64_t sequence() const { return seq_; }
    /// @}

    /** @name Statistics (endurance / WAF). */
    /// @{
    std::uint64_t hostPagesWritten() const { return hostWrites_.value(); }
    std::uint64_t gcPagesWritten() const { return gcWrites_.value(); }
    std::uint64_t totalPagesWritten() const
    {
        return hostWrites_.value() + gcWrites_.value() +
               parabitWrites_.value() + refreshWrites_.value();
    }
    /** Pages written by ParaBit reallocation (counted via writePair /
     *  writeLsbOnly / writeIntoFreeMsb). */
    std::uint64_t parabitPagesWritten() const
    {
        return parabitWrites_.value();
    }
    std::uint64_t blockErases() const { return erases_.value(); }
    std::uint64_t gcRuns() const { return gcRuns_.value(); }
    std::uint64_t wearLevelMoves() const { return wearMoves_.value(); }

    /** @name Reliability counters. */
    /// @{
    std::uint64_t programFailures() const { return programFailures_.value(); }
    std::uint64_t eraseFailures() const { return eraseFailures_.value(); }
    /** Program attempts re-placed after a failure. */
    std::uint64_t programRetries() const { return programRetries_.value(); }
    std::uint64_t retiredBlocks() const { return alloc_.retiredBlocks(); }
    /// @}

    /** Max-min block erase-count spread in @p plane (wear skew). */
    std::uint32_t eraseSpread(PlaneIndex plane);
    double
    writeAmplification() const
    {
        const std::uint64_t host = hostWrites_.value() + parabitWrites_.value();
        return host == 0 ? 1.0
                         : static_cast<double>(totalPagesWritten()) /
                               static_cast<double>(host);
    }
    /// @}

    /** @name Invariant audit (common/invariant.hpp). */
    /// @{

    /**
     * Audit the FTL's structural invariants against the chip array,
     * appending violations to @p r:
     *
     *  - ftl.map.bijection: map_ and reverse_ are exact inverses;
     *  - ftl.map.oob: every mapped page is valid on flash and its OOB
     *    metadata (LPN, sequence bound, scrambled flag) agrees with the
     *    mapping tables;
     *  - ftl.blocks.valid_count: every block's incremental valid-page
     *    counter equals a recount of its page states;
     *  - ftl.pair.lsb_msb: no wordline has a programmed MSB page over a
     *    free LSB page (MLC shared-wordline program order, which the
     *    ParaBit pairing/chaining placements rely on).
     *
     * Pure observation: no flash traffic, no timing effect.
     */
    void auditInvariants(InvariantReport &r) const;

    /**
     * Deliberately corrupt the mapping of @p lpn — the physical address
     * is rerouted without updating reverse_ — so negative tests and the
     * parabit-model counterexample path can prove the audit fires.
     * @return false when @p lpn is unmapped.  Test-only.
     */
    bool debugCorruptMapping(Lpn lpn);
    /// @}

    /** Direct chip access for the controller layer. */
    flash::Chip &chipAt(const flash::PhysPageAddr &a);

    Allocator &allocator() { return alloc_; }

  private:
    flash::ChipPageAddr chipAddr(const flash::PhysPageAddr &a) const;
    void unmapPhys(const flash::PhysPageAddr &a);
    /** Invalidate the physical page at @p a, folding it out of RAIN
     *  parity first (invalidate drops the payload the XOR needs).  The
     *  only invalidation gateway, as programPhys is for programs. */
    void invalidatePhys(const flash::PhysPageAddr &a);
    /** Relocate one page to @p plane with @p tag (refreshWordline's
     *  per-page path); retries across retired blocks like GC. */
    bool refreshOnePage(const flash::PhysPageAddr &src, Lpn lpn, OobTag tag,
                        bool lsb_only, std::vector<PhysOp> &ops);
    void mapLpn(Lpn lpn, const flash::PhysPageAddr &a,
                std::vector<PhysOp> &ops);
    /** Allocate in @p plane, running GC first if needed.  nullopt when
     *  the plane has no space even after GC (full, or its blocks were
     *  retired by faults) — callers retry elsewhere or fail typed. */
    std::optional<flash::PhysPageAddr>
    allocateOrGc(PlaneIndex plane, bool lsb_only, std::vector<PhysOp> &ops);
    std::optional<PagePair> allocatePairOrGc(PlaneIndex plane,
                                             std::vector<PhysOp> &ops);
    void collectGarbage(PlaneIndex plane, std::vector<PhysOp> &ops);
    void maybeWearLevel(PlaneIndex plane, std::vector<PhysOp> &ops);
    /** Program @p a (attempt is charged to @p ops either way) with OOB
     *  {@p lpn, fresh seq, @p tag, @p scrambled}; on an injected
     *  program failure the block is retired and false returned; on a
     *  mid-program power cut the wordline is torn and false returned. */
    bool programPhys(const flash::PhysPageAddr &a, const BitVector *data,
                     bool for_gc, std::vector<PhysOp> &ops, Lpn lpn,
                     OobTag tag, bool scrambled = false);
    bool planeAlive(PlaneIndex plane);
    /** Next striped plane that is still operational (fatal if none). */
    PlaneIndex pickAlivePlane();

    /** @name Crash-consistency internals (ftl_recovery.cpp). */
    /// @{
    /** Consume one PhysOp boundary from the injector; latches
     *  powerLost_ on a cut.  kNone means the op may proceed. */
    PowerCut powerBoundary(bool is_program);
    /** Write-ahead append @p r: the record is durable (and pushed to
     *  durable_) only if its log-page program completed pre-cut. */
    bool journalAppend(JournalRecord r, std::vector<PhysOp> &ops);
    /** Program the next free SLC log page (skipping bad pages); when
     *  the active half is full, rotates via checkpoint() unless
     *  @p allow_rotate is false (checkpoint's own pages). */
    bool logProgram(std::vector<PhysOp> &ops, bool allow_rotate = true);
    bool eraseHalf(int half, std::vector<PhysOp> &ops);
    flash::PhysPageAddr logAddr(int half, std::uint32_t idx) const;
    /** SLC log pages per ping-pong half, device-wide. */
    std::uint32_t halfPages() const;
    std::uint64_t linearBlockId(PlaneIndex plane, std::uint32_t block) const;
    void maybeCheckpoint(std::vector<PhysOp> &ops);
    RecoveryReport recover(std::vector<PhysOp> &ops);
    /** Re-pool fully-free blocks per plane from physical occupancy. */
    void rebuildAllocator();
    /** Capacitor flush: dump the unpaired-LSB buffer to the durable
     *  log (called exactly when a power cut latches, and on a clean
     *  power cycle).  See PlpEntry. */
    void plpFlush();
    /** Re-program capacitor-flushed LSB copies whose flash page did
     *  not survive the torn wordline. */
    void restorePlpEntries(RecoveryReport &rep, std::vector<PhysOp> &ops);
    /// @}

    SsdConfig cfg_;
    std::vector<flash::Chip> *chips_;
    Allocator alloc_;
    Scrambler scrambler_;
    std::uint64_t logicalPages_;
    std::unordered_map<Lpn, flash::PhysPageAddr> map_;
    /** Reverse map: linear physical page index -> LPN (for GC). */
    std::unordered_map<std::uint64_t, Lpn> reverse_;
    /** LPNs whose stored bits are whitened (host path with scrambling);
     *  ParaBit placements store raw data and clear membership. */
    std::unordered_set<Lpn> scrambledLpns_;

    /** @name Registered instruments (obs/metrics.hpp); value() feeds
     *  the accessor API, the registry feeds snapshots and dumps. */
    /// @{
    obs::Counter hostWrites_{"ftl.pages.host_written"};
    obs::Counter gcWrites_{"ftl.pages.gc_written"};
    obs::Counter parabitWrites_{"ftl.pages.parabit_written"};
    obs::Counter erases_{"ftl.block_erases"};
    obs::Counter gcRuns_{"ftl.gc.runs"};
    obs::Counter wearMoves_{"ftl.wear_level.moves"};
    obs::Counter programFailures_{"ftl.program.failures"};
    obs::Counter eraseFailures_{"ftl.erase.failures"};
    obs::Counter programRetries_{"ftl.program.retries"};
    obs::Counter refreshWrites_{"ftl.pages.refresh_written"};
    /// @}
    RainController *rain_ = nullptr;
    DeviceHealth *health_ = nullptr;
    std::uint32_t gcThresholdBlocks_;
    bool inGc_ = false;

    /** @name Crash-consistency state. */
    /// @{
    FaultInjector *injector_ = nullptr;
    bool powerLost_ = false;
    /** Monotonic OOB/journal sequence stream (0 = never assigned). */
    std::uint64_t seq_ = 1;
    DurableLog durable_;
    int logHalf_ = 0;          ///< half holding the committed generation
    std::uint32_t logHead_ = 0; ///< next free log page in logHalf_
    std::uint32_t programsSinceCkpt_ = 0;
    bool inCheckpoint_ = false;
    obs::Counter checkpoints_{"ftl.ckpt.taken"};
    obs::Counter journalWrites_{"ftl.journal.records"};
    obs::Counter logErases_{"ftl.log.erases"};
    /** Unpaired interleaved LSB writes awaiting their partner MSB
     *  program, keyed by the LSB page's linear index (PLP-protected
     *  controller RAM; at most one entry per plane write cursor). */
    std::unordered_map<std::uint64_t, PlpEntry> plpBuffer_;
    /// @}
};

} // namespace parabit::ssd

#endif // PARABIT_SSD_FTL_HPP_
