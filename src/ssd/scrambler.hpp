/**
 * @file
 * Data scrambler (paper Section 4.3.2).
 *
 * Real SSDs whiten host data before programming it — long runs of
 * identical bits stress the cell array — by XORing each page with a
 * keystream derived from its logical address.  The paper notes that
 * scrambling "would complicate the use of ParaBit": the latch circuit
 * computes on the raw stored bits, so AND/OR/... over scrambled pages is
 * meaningless.  ParaBit therefore disables scrambling when operands are
 * allocated or reallocated and re-enables it when results are restored.
 *
 * This module implements the keystream (XOR with a SplitMix64-expanded
 * stream keyed by device seed and LPN, hence involutive) and the FTL
 * applies it on the host read/write path only — the ParaBit placement
 * primitives (writePair, writeLsbOnly, writeIntoFreeMsb) store raw data,
 * exactly the paper's policy.
 */

#ifndef PARABIT_SSD_SCRAMBLER_HPP_
#define PARABIT_SSD_SCRAMBLER_HPP_

#include <cstdint>

#include "common/bitvector.hpp"

namespace parabit::ssd {

/** Involutive page scrambler; see file comment. */
class Scrambler
{
  public:
    explicit Scrambler(std::uint64_t device_key) : key_(device_key) {}

    /**
     * XOR @p page with the keystream of logical page @p lpn, in place.
     * Applying it twice restores the original (involution).
     */
    void apply(BitVector &page, std::uint64_t lpn) const;

    /** Convenience: scrambled copy. */
    BitVector
    scrambled(BitVector page, std::uint64_t lpn) const
    {
        apply(page, lpn);
        return page;
    }

  private:
    std::uint64_t key_;
};

} // namespace parabit::ssd

#endif // PARABIT_SSD_SCRAMBLER_HPP_
