/**
 * @file
 * DeviceTransaction: the unit of work the transaction scheduler books.
 *
 * A transaction unifies the two historical timing inputs — PhysOp
 * (host/FTL flash operations) and ArrayJob (ParaBit sensing sequences)
 * — into one phase-decomposed form:
 *
 *   [cmd] -> [channel xfer-in] -> [die/plane array] -> [channel xfer-out]
 *
 * Absent phases have zero duration.  The command phase is a die-side
 * delay by default (legacy model) or a channel booking when
 * SchedConfig::cmdOnChannel is set.  The scheduler queues each phase on
 * its resource (one array queue per plane — the granularity the device
 * exploits for plane-level parallelism — and one queue per channel) and
 * a SchedulerPolicy arbitrates.
 */

#ifndef PARABIT_SSD_SCHED_TRANSACTION_HPP_
#define PARABIT_SSD_SCHED_TRANSACTION_HPP_

#include <cstdint>

#include "common/units.hpp"
#include "flash/geometry.hpp"

namespace parabit::ssd::sched {

/** Traffic class, the unit the policies and latency stats reason in. */
enum class TxClass : std::uint8_t
{
    kRead = 0, ///< host/FTL page read (kPageRead)
    kProgram,  ///< page program (kPageProgram)
    kErase,    ///< block erase (kBlockErase)
    kParaBit,  ///< in-flash bitwise sensing sequence (ArrayJob)
    kScrub,    ///< background patrol-scrub scan read (kScrubRead)
};

inline constexpr int kNumTxClasses = 5;

const char *txClassName(TxClass c);

/** Booking phases as they appear in the trace. */
enum class PhaseKind : std::uint8_t
{
    kCmd = 0,  ///< command/address cycles (channel, when modelled)
    kXferIn,   ///< channel transfer toward the die
    kArray,    ///< die/plane array time (sense, program, erase)
    kXferOut,  ///< channel transfer toward the controller
    kSuspend,  ///< suspend-transition overhead on the die
    kResume,   ///< resume-transition overhead on the die
};

const char *phaseKindName(PhaseKind k);

/** One schedulable device operation; see file comment. */
struct DeviceTransaction
{
    TxClass cls = TxClass::kRead;
    /** Channel/chip/die/plane identify the two resources involved. */
    flash::PhysPageAddr addr{};
    /** Earliest start (submission time). */
    Tick readyAt = 0;
    /** Command/address overhead (die delay or channel booking). */
    Tick cmdTicks = 0;
    /** Extra die-side delay before the first phase; used by multi-plane
     *  batch followers that ride a leader's shared command issue. */
    Tick extraDelay = 0;
    Tick xferInTicks = 0;
    Tick arrayTicks = 0;
    Tick xferOutTicks = 0;

    /** Whether the array phase accepts suspend commands.  Scrub scans
     *  are suspendable by construction: a patrol sensing holds no latch
     *  state a host read cares about, so the controller may abandon and
     *  re-issue it at any pulse boundary. */
    bool
    suspendable() const
    {
        return cls == TxClass::kProgram || cls == TxClass::kErase ||
               cls == TxClass::kScrub;
    }
};

/** A contiguous range of transaction ids [lo, hi) submitted together
 *  (e.g. every PhysOp of one host command, GC traffic included). */
struct TxGroup
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    bool empty() const { return hi <= lo; }
    std::uint64_t size() const { return hi - lo; }
};

} // namespace parabit::ssd::sched

#endif // PARABIT_SSD_SCHED_TRANSACTION_HPP_
