#include "ssd/sched/policy.hpp"

#include "common/logging.hpp"

namespace parabit::ssd::sched {

const char *
policyName(SchedPolicyKind k)
{
    switch (k)
    {
    case SchedPolicyKind::kFcfs:
        return "fcfs";
    case SchedPolicyKind::kOutOfOrderDieFirst:
        return "ooo_die_first";
    case SchedPolicyKind::kReadPriority:
        return "read_priority";
    }
    panic("unknown SchedPolicyKind");
}

const char *
txClassName(TxClass c)
{
    switch (c)
    {
    case TxClass::kRead:
        return "read";
    case TxClass::kProgram:
        return "program";
    case TxClass::kErase:
        return "erase";
    case TxClass::kParaBit:
        return "parabit";
    case TxClass::kScrub:
        return "scrub";
    }
    panic("unknown TxClass");
}

const char *
phaseKindName(PhaseKind k)
{
    switch (k)
    {
    case PhaseKind::kCmd:
        return "cmd";
    case PhaseKind::kXferIn:
        return "xfer_in";
    case PhaseKind::kArray:
        return "array";
    case PhaseKind::kXferOut:
        return "xfer_out";
    case PhaseKind::kSuspend:
        return "suspend";
    case PhaseKind::kResume:
        return "resume";
    }
    panic("unknown PhaseKind");
}

namespace {

/**
 * Strict per-resource submission order, wait-for-head: the resource
 * serves only its oldest queued entry, idling until that entry becomes
 * ready.  This is exactly the semantics of the legacy greedy
 * Timeline::reserve sequence (each resource's reservations happened in
 * submission order with start = max(earliest, nextFree)), which makes
 * this policy the tick-identical regression anchor.
 */
class FcfsPolicy final : public SchedulerPolicy
{
  public:
    const char *name() const override { return "fcfs"; }

    std::size_t
    pick(const std::vector<PendingView> &views, Tick) const override
    {
        if (views.empty())
        {
            return kNoPick;
        }
        // Queue order is submission order; the head is views[0].
        return views.front().ready ? 0 : kNoPick;
    }

    bool preempts(TxClass, TxClass) const override { return false; }
};

/**
 * Work-conserving out-of-order: the oldest *ready* entry starts, so a
 * resource never idles behind a head-of-line entry that is still
 * waiting on another resource.  Order within a resource can change;
 * order between equally-ready entries cannot (lowest seq wins).
 */
class OooDieFirstPolicy final : public SchedulerPolicy
{
  public:
    const char *name() const override { return "ooo_die_first"; }

    std::size_t
    pick(const std::vector<PendingView> &views, Tick) const override
    {
        std::size_t best = kNoPick;
        for (std::size_t i = 0; i < views.size(); ++i)
        {
            if (!views[i].ready)
            {
                continue;
            }
            if (best == kNoPick || views[i].seq < views[best].seq)
            {
                best = i;
            }
        }
        return best;
    }

    bool preempts(TxClass, TxClass) const override { return false; }
};

/**
 * Out-of-order plus read preference with program/erase suspend-resume.
 * Pick order on an idle resource:
 *
 *  1. a ready resume remainder whose parked deadline (forceAt, set at
 *     the first suspension) has passed — with the per-op suspend budget
 *     this is the bounded-extra-latency guarantee;
 *  2. the oldest ready host/FTL read;
 *  3. the oldest other ready non-scrub entry;
 *  4. the oldest ready background scrub scan.
 *
 * A scrub scan deferred longer than the configured anti-starvation
 * bound leaves bucket 4 and rejoins bucket 3, so host floods cannot
 * starve patrol coverage indefinitely.  An arriving ready read
 * additionally suspends a running program/erase/scrub array phase (the
 * scheduler enforces the budget and transition costs).
 */
class ReadPriorityPolicy final : public SchedulerPolicy
{
  public:
    explicit ReadPriorityPolicy(Tick scrub_max_deferred)
        : scrubMaxDeferred_(scrub_max_deferred)
    {
    }

    const char *name() const override { return "read_priority"; }

    std::size_t
    pick(const std::vector<PendingView> &views, Tick now) const override
    {
        std::size_t forced = kNoPick;
        std::size_t read = kNoPick;
        std::size_t any = kNoPick;
        std::size_t scrub = kNoPick;
        for (std::size_t i = 0; i < views.size(); ++i)
        {
            const PendingView &v = views[i];
            if (!v.ready)
            {
                continue;
            }
            if (v.isResume && now >= v.forceAt)
            {
                if (forced == kNoPick || v.seq < views[forced].seq)
                {
                    forced = i;
                }
            }
            if (v.cls == TxClass::kRead)
            {
                if (read == kNoPick || v.seq < views[read].seq)
                {
                    read = i;
                }
            }
            if (v.cls == TxClass::kScrub && !v.isResume &&
                now < v.earliest + scrubMaxDeferred_)
            {
                if (scrub == kNoPick || v.seq < views[scrub].seq)
                {
                    scrub = i;
                }
                continue;
            }
            if (any == kNoPick || v.seq < views[any].seq)
            {
                any = i;
            }
        }
        if (forced != kNoPick)
        {
            return forced;
        }
        if (read != kNoPick)
        {
            return read;
        }
        if (any != kNoPick)
        {
            return any;
        }
        return scrub;
    }

    bool
    preempts(TxClass incoming, TxClass running) const override
    {
        return incoming == TxClass::kRead &&
               (running == TxClass::kProgram || running == TxClass::kErase ||
                running == TxClass::kScrub);
    }

  private:
    Tick scrubMaxDeferred_;
};

} // namespace

std::unique_ptr<SchedulerPolicy>
makePolicy(const SchedConfig &cfg)
{
    switch (cfg.policy)
    {
    case SchedPolicyKind::kFcfs:
        return std::make_unique<FcfsPolicy>();
    case SchedPolicyKind::kOutOfOrderDieFirst:
        return std::make_unique<OooDieFirstPolicy>();
    case SchedPolicyKind::kReadPriority:
        return std::make_unique<ReadPriorityPolicy>(cfg.scrubMaxDeferredTicks);
    }
    panic("unknown SchedPolicyKind");
}

} // namespace parabit::ssd::sched
