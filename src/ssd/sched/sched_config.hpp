/**
 * @file
 * Configuration of the transaction-scheduler subsystem.
 *
 * The scheduler replaces the monolithic greedy Timeline booking with
 * per-die / per-channel queues arbitrated by a pluggable policy.  The
 * default configuration (FCFS, no channel command modelling, no
 * batching) is tick-identical to the historical greedy path, so
 * existing latency results are the regression anchor; every other knob
 * is opt-in.
 */

#ifndef PARABIT_SSD_SCHED_SCHED_CONFIG_HPP_
#define PARABIT_SSD_SCHED_SCHED_CONFIG_HPP_

#include <cstddef>
#include <cstdint>

#include "common/units.hpp"
#include "flash/timing.hpp"

namespace parabit::ssd::sched {

/** Arbitration policy; see policy.hpp for semantics. */
enum class SchedPolicyKind : std::uint8_t
{
    /** Strict submission order per resource — reproduces the legacy
     *  greedy Timeline path tick-for-tick (the regression anchor). */
    kFcfs = 0,
    /** Work-conserving: an independent die/channel proceeds past a
     *  blocked head-of-line transaction. */
    kOutOfOrderDieFirst,
    /** Out-of-order plus read preference and program/erase
     *  suspend-resume: host reads jump queues and may suspend an
     *  in-flight array operation (bounded; see SchedConfig). */
    kReadPriority,
};

inline constexpr int kNumSchedPolicies = 3;

const char *policyName(SchedPolicyKind k);

/** Scheduler knobs; defaults reproduce the legacy timing exactly. */
struct SchedConfig
{
    SchedPolicyKind policy = SchedPolicyKind::kFcfs;

    /**
     * Model the command/address cycles of every flash command as
     * channel time (tCmdOverhead booked on the channel before the
     * first data/array phase).  The legacy model charged the command
     * overhead as a die-side delay only, so kPageRead/kBlockErase
     * command issue consumed no channel bandwidth while kPageProgram
     * implicitly delayed its channel transfer; this flag makes command
     * issue consistent across all op kinds and policies.  Off by
     * default for seed compatibility.
     */
    bool cmdOnChannel = false;

    /**
     * Coalesce consecutive same-die ParaBit array jobs into one
     * multi-plane activation: the group shares a single command issue
     * and its planes sense in lockstep (every member's array time is
     * padded to the longest member's).  Off by default.
     */
    bool multiPlaneBatch = false;

    /**
     * Read-priority policy: how many times one program/erase may be
     * suspended by arriving reads.  After the budget is spent the
     * remainder outranks further reads, which hard-bounds the extra
     * latency of the suspended operation.
     */
    int maxSuspendsPerOp = 4;

    /**
     * Read-priority policy: once a suspended remainder has waited this
     * long it outranks arriving reads even with suspend budget left —
     * the second half of the bounded-extra-latency guarantee.
     */
    Tick maxSuspendedTicks = flash::kDefaultMaxSuspended;

    /**
     * Read-priority policy: a background scrub scan (TxClass::kScrub)
     * normally yields to every other ready entry, but once it has been
     * deferred this long past its earliest start it rejoins normal
     * oldest-first arbitration — the scrubber's anti-starvation bound.
     */
    Tick scrubMaxDeferredTicks = flash::kDefaultScrubMaxDeferred;

    /**
     * Record per-transaction completion latencies (per class) for
     * percentile reporting.  Off by default: the sample vectors grow
     * with every transaction, which device-lifetime endurance runs do
     * not want.
     */
    bool latencySampling = false;

    /**
     * Bound the per-class latency sample vectors via reservoir sampling
     * (SampleSeries cap).  0 (the default) keeps every sample — exact
     * percentiles, unbounded growth; a nonzero cap keeps percentile
     * estimates statistically sound at fixed memory for
     * device-lifetime runs.  Only meaningful with latencySampling.
     */
    std::size_t latencySampleCap = 0;

    /**
     * Keep a full booking trace (every phase interval on every
     * resource).  Enables the parabit-verify scheduler invariants and
     * the golden regression assertions; off by default for the same
     * growth reason as latencySampling.
     */
    bool traceEnabled = false;
};

} // namespace parabit::ssd::sched

#endif // PARABIT_SSD_SCHED_SCHED_CONFIG_HPP_
