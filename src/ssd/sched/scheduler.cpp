#include "ssd/sched/scheduler.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "obs/profiler.hpp"

namespace parabit::ssd::sched {

TransactionScheduler::TransactionScheduler(
    const flash::FlashGeometry &geometry, const flash::FlashTiming &timing,
    const SchedConfig &cfg)
    : geo_(geometry), timing_(timing), cfg_(cfg), policy_(makePolicy(cfg)),
      latency_(kNumTxClasses, SampleSeries(cfg.latencySampleCap)),
      submitted_("sched.tx.submitted"),
      completedCount_("sched.tx.completed"),
      suspendCount_("sched.suspends"), batches_("sched.batch.groups"),
      batchedJobs_("sched.batch.jobs"),
      maxQueueDepth_("sched.queue.max_depth")
{
    latencyHist_.reserve(kNumTxClasses);
    for (int c = 0; c < kNumTxClasses; ++c) {
        latencyHist_.emplace_back(
            std::string("sched.latency_us.") +
                txClassName(static_cast<TxClass>(c)),
            0.0, 10000.0, 100);
    }
    resources_.resize(static_cast<std::size_t>(geo_.channels) +
                      geo_.planesTotal());
    for (std::uint32_t c = 0; c < geo_.channels; ++c)
    {
        resources_[c].onChannel = true;
        resources_[c].index = c;
    }
    for (std::uint32_t p = 0; p < geo_.planesTotal(); ++p)
    {
        Resource &r = resources_[geo_.channels + p];
        r.onChannel = false;
        r.index = p;
    }
}

std::size_t
TransactionScheduler::channelResource(std::uint32_t channel) const
{
    return channel;
}

std::string
TransactionScheduler::dieTrackName(std::uint32_t plane_ordinal) const
{
    // Inverse of the arrayResource() linearisation, so the track name
    // carries the full physical coordinate of the plane.
    const std::uint32_t plane = plane_ordinal % geo_.planesPerDie;
    std::uint32_t rest = plane_ordinal / geo_.planesPerDie;
    const std::uint32_t die = rest % geo_.diesPerChip;
    rest /= geo_.diesPerChip;
    const std::uint32_t chip = rest % geo_.chipsPerChannel;
    const std::uint32_t channel = rest / geo_.chipsPerChannel;
    return "ch" + std::to_string(channel) + " chip" +
           std::to_string(chip) + " die" + std::to_string(die) + " plane" +
           std::to_string(plane);
}

void
TransactionScheduler::setTraceSink(obs::TraceSink *sink)
{
    sink_ = sink;
    resourceTracks_.clear();
    if (!sink_)
    {
        return;
    }
    resourceTracks_.reserve(resources_.size());
    for (const Resource &r : resources_)
    {
        if (r.onChannel)
        {
            resourceTracks_.push_back(sink_->track(
                "channels", "channel " + std::to_string(r.index)));
        }
        else
        {
            resourceTracks_.push_back(
                sink_->track("dies", dieTrackName(r.index)));
        }
    }
}

void
TransactionScheduler::noteSpan(std::size_t res, TxState &st,
                               PhaseKind kind, Tick start, Tick end)
{
    const Resource &r = resources_[res];
    st.stages.phase[static_cast<std::size_t>(kind)] += end - start;
    if (cfg_.traceEnabled)
    {
        trace_.push_back({st.id, r.onChannel, r.index, kind, start, end});
    }
    if (sink_ != nullptr)
    {
        sink_->span(resourceTracks_[res], phaseKindName(kind), start, end,
                    {{"tx", std::to_string(st.id), false},
                     {"class", txClassName(st.tx.cls), true}});
        const auto it = cmdOf_.find(st.id);
        if (it != cmdOf_.end())
        {
            // The step lands exactly on the span's start ts, which is
            // what binds the command's flow to this span in Perfetto
            // (and what the flow-linkage check verifies).
            sink_->flowStep(resourceTracks_[res], obs::kNvmeFlowCat,
                            obs::kNvmeFlowName, it->second, start);
        }
    }
}

std::size_t
TransactionScheduler::arrayResource(const flash::PhysPageAddr &a) const
{
    // Same linearisation as the legacy per-plane Timelines.
    const std::size_t idx =
        ((static_cast<std::size_t>(a.channel) * geo_.chipsPerChannel +
          a.chip) *
             geo_.diesPerChip +
         a.die) *
            geo_.planesPerDie +
        a.plane;
    return static_cast<std::size_t>(geo_.channels) + idx;
}

void
TransactionScheduler::buildPhases(TxState &st) const
{
    const DeviceTransaction &tx = st.tx;
    const std::size_t ch = channelResource(tx.addr.channel);
    const std::size_t die = arrayResource(tx.addr);
    // Canonical phase order across every class: cmd, xfer-in, array,
    // xfer-out (zero-duration phases are elided).  Reads have no
    // xfer-in, programs/erases no xfer-out, so this reproduces the
    // class-specific legacy reserve() sequences exactly.
    if (cfg_.cmdOnChannel && tx.cmdTicks > 0)
    {
        st.phases.push_back({PhaseKind::kCmd, ch, tx.cmdTicks});
    }
    if (tx.xferInTicks > 0)
    {
        st.phases.push_back({PhaseKind::kXferIn, ch, tx.xferInTicks});
    }
    if (tx.arrayTicks > 0)
    {
        st.phases.push_back({PhaseKind::kArray, die, tx.arrayTicks});
    }
    if (tx.xferOutTicks > 0)
    {
        st.phases.push_back({PhaseKind::kXferOut, ch, tx.xferOutTicks});
    }
}

Tick
TransactionScheduler::firstEarliest(const TxState &st) const
{
    // The command overhead is a die-side delay unless modelled as a
    // channel phase; batch followers add their leader-alignment delay.
    Tick delay = st.tx.extraDelay;
    if (!cfg_.cmdOnChannel)
    {
        delay += st.tx.cmdTicks;
    }
    return st.tx.readyAt + delay;
}

std::uint64_t
TransactionScheduler::submit(const DeviceTransaction &tx)
{
    if (!batchOpen_)
    {
        // First submit after a drain: discard the previous batch's
        // records and completion map (callers must have flushed any
        // group queries by now) so memory stays bounded.
        txs_.clear();
        completions_.clear();
        trace_.clear();
        // Command tags refer to batch-local tx ids; stage aggregates in
        // cmdStages_ survive (a formula command spans several drains).
        cmdOf_.clear();
        batchOpen_ = true;
    }
    TxState st;
    st.tx = tx;
    st.id = nextId_++;
    if (curCmd_)
    {
        cmdOf_[st.id] = *curCmd_;
    }
    buildPhases(st);
    ++submitted_;

    const std::size_t txIdx = txs_.size();
    txs_.push_back(std::move(st));
    TxState &added = txs_.back();
    if (added.phases.empty())
    {
        // Pure delay (all phase durations zero): completes without
        // touching any resource.
        finishTx(added, firstEarliest(added));
        return added.id;
    }
    for (std::size_t p = 0; p < added.phases.size(); ++p)
    {
        Resource &r = resources_[added.phases[p].resource];
        QEntry e;
        e.txIdx = txIdx;
        e.phaseIdx = p;
        r.q.push_back(e);
        maxQueueDepth_.noteMax(static_cast<double>(r.q.size()));
    }
    return added.id;
}

Tick
TransactionScheduler::drain()
{
    PROFILE_SCOPE(obs::Subsystem::kSched);
    batchOpen_ = false;
    bool anyPending = false;
    for (const TxState &st : txs_)
    {
        if (!st.done)
        {
            anyPending = true;
            break;
        }
    }
    Tick batchMax = 0;
    for (const TxState &st : txs_)
    {
        if (st.done)
        {
            batchMax = std::max(batchMax, st.complete);
        }
    }
    if (!anyPending)
    {
        return batchMax;
    }

    EventEngine eng;
    eng_ = &eng;
    for (std::size_t i = 0; i < txs_.size(); ++i)
    {
        TxState &st = txs_[i];
        if (st.done || st.phases.empty())
        {
            continue;
        }
        const std::size_t res = st.phases[0].resource;
        const Tick earliest = firstEarliest(st);
        eng.schedule(earliest,
                     [this, res, i, earliest] { markReady(res, i, 0, earliest); });
    }
    eng.run();
    eng_ = nullptr;

    for (const TxState &st : txs_)
    {
        if (!st.done)
        {
            panic("TransactionScheduler::drain: arbitration stalled "
                  "(policy left a transaction unserved)");
        }
        batchMax = std::max(batchMax, st.complete);
    }
    for (Resource &r : resources_)
    {
        if (!r.q.empty() || r.busy)
        {
            panic("TransactionScheduler::drain: residual queue state");
        }
    }
    return batchMax;
}

void
TransactionScheduler::markReady(std::size_t res, std::size_t txIdx,
                                std::size_t phaseIdx, Tick earliest)
{
    Resource &r = resources_[res];
    for (QEntry &e : r.q)
    {
        if (e.txIdx == txIdx && e.phaseIdx == phaseIdx && !e.isResume)
        {
            e.ready = true;
            e.earliest = earliest;
            dispatch(res);
            return;
        }
    }
    panic("TransactionScheduler::markReady: phase entry not queued");
}

void
TransactionScheduler::dispatch(std::size_t res)
{
    Resource &r = resources_[res];
    if (r.busy)
    {
        maybeSuspend(res);
        return;
    }
    if (r.q.empty())
    {
        return;
    }
    std::vector<PendingView> views;
    views.reserve(r.q.size());
    for (const QEntry &e : r.q)
    {
        const TxState &st = txs_[e.txIdx];
        PendingView v;
        v.seq = st.id;
        v.cls = st.tx.cls;
        v.kind = st.phases[e.phaseIdx].kind;
        v.ready = e.ready;
        v.earliest = e.earliest;
        v.isResume = e.isResume;
        v.forceAt = st.forceAt;
        views.push_back(v);
    }
    const std::size_t pick = policy_->pick(views, eng_->now());
    if (pick == kNoPick)
    {
        return;
    }
    if (pick >= r.q.size() || !r.q[pick].ready)
    {
        panic("TransactionScheduler::dispatch: policy picked an entry "
              "that cannot start");
    }
    startEntry(res, pick);
}

void
TransactionScheduler::startEntry(std::size_t res, std::size_t qIdx)
{
    Resource &r = resources_[res];
    const QEntry e = r.q[qIdx];
    r.q.erase(r.q.begin() + static_cast<std::ptrdiff_t>(qIdx));

    const TxState &st = txs_[e.txIdx];
    const Tick payload =
        e.isResume ? e.resumeRemaining : st.phases[e.phaseIdx].duration;
    const Tick overhead = e.isResume ? timing_.tResume : 0;

    Running run;
    run.txIdx = e.txIdx;
    run.phaseIdx = e.phaseIdx;
    run.gen = ++r.gen;
    // Logical booking start: never the engine clock — resource free
    // times persist across drains while the engine restarts at zero.
    run.start = std::max(e.earliest, r.tl.nextFree());
    run.payloadStart = run.start + overhead;
    run.plannedEnd = run.payloadStart + payload;
    run.isResume = e.isResume;
    // Queue wait: how long the phase sat ready but unserved (resource
    // contention / arbitration), as opposed to booked work time.
    txs_[e.txIdx].stages.queueWait += run.start - e.earliest;
    r.busy = true;
    r.running = run;

    const std::uint64_t gen = run.gen;
    eng_->schedule(run.plannedEnd, [this, res, gen] { onComplete(res, gen); });
}

void
TransactionScheduler::onComplete(std::size_t res, std::uint64_t gen)
{
    Resource &r = resources_[res];
    if (!r.busy || r.running.gen != gen)
    {
        return; // stale: the booking was suspended
    }
    const Running run = r.running;
    r.busy = false;

    TxState &st = txs_[run.txIdx];
    const Phase &ph = st.phases[run.phaseIdx];
    r.tl.reserve(run.start, run.plannedEnd - run.start);

    if (run.isResume)
    {
        noteSpan(res, st, PhaseKind::kResume, run.start, run.payloadStart);
    }
    noteSpan(res, st, ph.kind, run.payloadStart, run.plannedEnd);
    if (ph.kind == PhaseKind::kArray)
    {
        st.arrayExecuted += run.plannedEnd - run.payloadStart;
    }

    st.nextPhase = run.phaseIdx + 1;
    if (st.nextPhase < st.phases.size())
    {
        const std::size_t nextRes = st.phases[st.nextPhase].resource;
        markReady(nextRes, run.txIdx, st.nextPhase, run.plannedEnd);
    }
    else
    {
        finishTx(st, run.plannedEnd);
    }
    dispatch(res);
}

void
TransactionScheduler::maybeSuspend(std::size_t res)
{
    Resource &r = resources_[res];
    const Running run = r.running;
    TxState &st = txs_[run.txIdx];
    const Phase &ph = st.phases[run.phaseIdx];
    const Tick now = eng_->now();

    if (ph.kind != PhaseKind::kArray || !st.tx.suspendable())
    {
        return;
    }
    if (st.suspends >= cfg_.maxSuspendsPerOp)
    {
        return;
    }
    // The transition windows (tResume restore, or a booking whose start
    // is still in the future) cannot be interrupted, and a phase at its
    // planned end has nothing left to suspend.
    if (now < run.payloadStart || now >= run.plannedEnd)
    {
        return;
    }
    bool wanted = false;
    for (const QEntry &e : r.q)
    {
        if (e.ready && policy_->preempts(txs_[e.txIdx].tx.cls, st.tx.cls))
        {
            wanted = true;
            break;
        }
    }
    if (!wanted)
    {
        return;
    }

    // Suspend: book the executed segment plus the suspend transition,
    // park the remainder as a resume entry.
    const Tick executed = now - run.payloadStart;
    const Tick remaining = run.plannedEnd - now;
    r.tl.reserve(run.start, (now - run.start) + timing_.tSuspend);
    st.arrayExecuted += executed;
    if (st.suspends == 0)
    {
        st.forceAt = now + cfg_.maxSuspendedTicks;
    }
    ++st.suspends;
    ++suspendCount_;

    if (run.isResume)
    {
        noteSpan(res, st, PhaseKind::kResume, run.start, run.payloadStart);
    }
    if (executed > 0)
    {
        noteSpan(res, st, PhaseKind::kArray, run.payloadStart, now);
    }
    noteSpan(res, st, PhaseKind::kSuspend, now, now + timing_.tSuspend);

    QEntry e;
    e.txIdx = run.txIdx;
    e.phaseIdx = run.phaseIdx;
    e.ready = true;
    e.earliest = now + timing_.tSuspend;
    e.isResume = true;
    e.resumeRemaining = remaining;
    r.busy = false;
    r.q.push_back(e);

    dispatch(res);
}

void
TransactionScheduler::finishTx(TxState &st, Tick end)
{
    st.done = true;
    st.complete = end;
    completions_[st.id] = end;
    ++completedCount_;
    const auto cmd = cmdOf_.find(st.id);
    if (cmd != cmdOf_.end())
    {
        StageTicks &agg = cmdStages_[cmd->second];
        agg.add(st.stages);
        ++agg.txCount;
    }
    const auto cls = static_cast<std::size_t>(st.tx.cls);
    // Tick is picoseconds; the registry histogram is bucketed in us.
    latencyHist_[cls].sample(static_cast<double>(end - st.tx.readyAt) /
                             1e6);
    if (cfg_.latencySampling)
    {
        latency_[cls].sample(static_cast<double>(end - st.tx.readyAt));
    }
}

StageTicks
TransactionScheduler::takeCommandStages(std::uint64_t token)
{
    const auto it = cmdStages_.find(token);
    if (it == cmdStages_.end())
    {
        return StageTicks{};
    }
    StageTicks out = it->second;
    cmdStages_.erase(it);
    return out;
}

Tick
TransactionScheduler::completionOf(std::uint64_t id) const
{
    auto it = completions_.find(id);
    if (it == completions_.end())
    {
        panic("TransactionScheduler::completionOf: unknown transaction "
              "(batch already discarded? drain before querying)");
    }
    return it->second;
}

Tick
TransactionScheduler::groupCompletion(const TxGroup &g, Tick fallback) const
{
    if (g.empty())
    {
        return fallback;
    }
    Tick done = 0;
    for (std::uint64_t id = g.lo; id < g.hi; ++id)
    {
        done = std::max(done, completionOf(id));
    }
    return done;
}

SchedStats
TransactionScheduler::stats() const
{
    SchedStats s;
    s.channelBusy.reserve(geo_.channels);
    for (std::uint32_t c = 0; c < geo_.channels; ++c)
    {
        s.channelBusy.push_back(resources_[c].tl.bookedTicks());
    }
    s.dieBusy.reserve(geo_.planesTotal());
    for (std::uint32_t p = 0; p < geo_.planesTotal(); ++p)
    {
        s.dieBusy.push_back(resources_[geo_.channels + p].tl.bookedTicks());
    }
    s.submitted = submitted_.value();
    s.completed = completedCount_.value();
    s.suspends = suspendCount_.value();
    s.batches = batches_.value();
    s.batchedJobs = batchedJobs_.value();
    s.maxQueueDepth = static_cast<std::size_t>(maxQueueDepth_.value());
    return s;
}

const SampleSeries &
TransactionScheduler::latencySeries(TxClass c) const
{
    return latency_[static_cast<std::size_t>(c)];
}

std::vector<TxRecord>
TransactionScheduler::records() const
{
    std::vector<TxRecord> out;
    out.reserve(txs_.size());
    for (const TxState &st : txs_)
    {
        TxRecord rec;
        rec.id = st.id;
        rec.cls = st.tx.cls;
        rec.readyAt = st.tx.readyAt;
        rec.complete = st.complete;
        rec.arrayTicks = st.tx.arrayTicks;
        rec.arrayExecuted = st.arrayExecuted;
        rec.suspends = st.suspends;
        out.push_back(rec);
    }
    return out;
}

void
TransactionScheduler::auditInvariants(InvariantReport &r) const
{
    // sched.queue.drained: a drain boundary leaves no residual work.
    for (std::size_t i = 0; i < resources_.size(); ++i) {
        const Resource &res = resources_[i];
        const std::string subj =
            std::string(res.onChannel ? "channel " : "die ") +
            std::to_string(res.index);
        if (!r.check(res.q.empty()))
            r.fail("sched.queue.drained", subj,
                   std::to_string(res.q.size()) +
                       " queue entries survived the drain");
        if (!r.check(!res.busy))
            r.fail("sched.queue.drained", subj,
                   "a booking is still marked running after the drain");
    }

    // sched.queue.accounting: lifetime submit/complete balance plus
    // full completion coverage of the last batch.
    if (!r.check(submitted_.value() == completedCount_.value()))
        r.fail("sched.queue.accounting", "lifetime counters",
               "submitted " + std::to_string(submitted_.value()) +
                   " != completed " +
                   std::to_string(completedCount_.value()));
    if (!r.check(completions_.size() == txs_.size()))
        r.fail("sched.queue.accounting", "last batch",
               std::to_string(txs_.size()) + " transactions but " +
                   std::to_string(completions_.size()) +
                   " completion entries");

    // sched.work.conservation: suspend-resume never loses or invents
    // array work, and nothing completes before it was ready.
    for (const TxState &st : txs_) {
        const std::string subj = "tx " + std::to_string(st.id);
        if (!r.check(st.done))
            r.fail("sched.work.conservation", subj,
                   "transaction never finished");
        if (!r.check(st.arrayExecuted == st.tx.arrayTicks))
            r.fail("sched.work.conservation", subj,
                   "planned " + std::to_string(st.tx.arrayTicks) +
                       " array ticks, executed " +
                       std::to_string(st.arrayExecuted) +
                       " across " + std::to_string(st.suspends) +
                       " suspends");
        if (!r.check(st.complete >= st.tx.readyAt))
            r.fail("sched.work.conservation", subj,
                   "completed at " + std::to_string(st.complete) +
                       " before ready time " +
                       std::to_string(st.tx.readyAt));
    }

    // sched.booking.exclusivity: per-resource bookings never overlap.
    // The interval log only exists with cfg.traceEnabled; without it
    // this leg simply contributes no checks.
    std::vector<std::vector<TraceEntry>> byResource(resources_.size());
    for (const TraceEntry &e : trace_) {
        const std::size_t idx =
            e.onChannel ? channelResource(e.resource)
                        : geo_.channels + e.resource;
        if (idx < byResource.size())
            byResource[idx].push_back(e);
    }
    for (std::size_t i = 0; i < byResource.size(); ++i) {
        auto &v = byResource[i];
        std::sort(v.begin(), v.end(),
                  [](const TraceEntry &a, const TraceEntry &b) {
                      return a.start != b.start ? a.start < b.start
                                                : a.end < b.end;
                  });
        for (std::size_t j = 1; j < v.size(); ++j) {
            if (!r.check(v[j].start >= v[j - 1].end))
                r.fail("sched.booking.exclusivity",
                       std::string(v[j].onChannel ? "channel "
                                                  : "die ") +
                           std::to_string(v[j].resource),
                       "tx " + std::to_string(v[j].txId) + " booked [" +
                           std::to_string(v[j].start) + ", " +
                           std::to_string(v[j].end) +
                           ") overlapping tx " +
                           std::to_string(v[j - 1].txId) + " [" +
                           std::to_string(v[j - 1].start) + ", " +
                           std::to_string(v[j - 1].end) + ")");
        }
    }
}

bool
TransactionScheduler::debugCorruptTraceForAudit()
{
    if (trace_.empty())
        return false;
    TraceEntry dup = trace_.front();
    dup.end = std::max(dup.end, dup.start + 1);
    trace_.push_back(dup);
    return true;
}

} // namespace parabit::ssd::sched
