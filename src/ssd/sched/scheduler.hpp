/**
 * @file
 * TransactionScheduler: per-die/per-channel arbitration of
 * DeviceTransactions, driven by the deterministic EventEngine.
 *
 * Usage is submit-then-drain: callers submit any number of transactions
 * (each gets a monotonically increasing id) and then drain(), which
 * replays the whole batch through a fresh event engine.  Resource
 * Timelines persist across drains, so consecutive batches see the
 * device exactly as the legacy greedy path did; the engine only orders
 * events — every booking is computed from logical times
 * (max(phase-chain earliest, resource nextFree)), never from the
 * engine clock.
 *
 * Array resources are plane-granular (the device exploits plane-level
 * parallelism), matching the legacy per-plane Timelines; the stats
 * call them "die" resources for continuity with the paper's die/channel
 * vocabulary.
 *
 * Preemption (read-priority policy): a booking is finalized on the
 * Timeline only when its completion — or suspension — actually happens,
 * so a program/erase array phase can be cut short.  Completion events
 * carry a generation tag and are ignored once stale.
 */

#ifndef PARABIT_SSD_SCHED_SCHEDULER_HPP_
#define PARABIT_SSD_SCHED_SCHEDULER_HPP_

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/invariant.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "flash/geometry.hpp"
#include "flash/timing.hpp"
#include "ssd/event_engine.hpp"
#include "ssd/sched/policy.hpp"
#include "ssd/sched/sched_config.hpp"
#include "ssd/sched/transaction.hpp"
#include "ssd/timeline.hpp"

namespace parabit::ssd::sched {

/** One booked interval on one resource (traceEnabled only). */
struct TraceEntry
{
    std::uint64_t txId = 0;
    bool onChannel = false;
    std::uint32_t resource = 0;
    PhaseKind kind = PhaseKind::kArray;
    Tick start = 0;
    Tick end = 0;
};

/**
 * Where a transaction's (or a whole host command's) ticks went: booked
 * time per phase kind plus the time its phases sat in a resource queue
 * beyond their dependency-readiness (the "scheduler queue" stage of
 * the command lifecycle).  Aggregated per host command via the
 * attribution scope (beginCommandAttribution / takeCommandStages).
 */
struct StageTicks
{
    /** Sum over phases of (booking start - phase earliest): time lost
     *  to arbitration and resource contention. */
    Tick queueWait = 0;
    /** Booked ticks per PhaseKind (cmd, xfer_in, array, xfer_out,
     *  suspend, resume), indexed by the enum. */
    std::array<Tick, 6> phase{};
    /** Device transactions aggregated in. */
    std::uint64_t txCount = 0;

    void
    add(const StageTicks &o)
    {
        queueWait += o.queueWait;
        for (std::size_t i = 0; i < phase.size(); ++i)
            phase[i] += o.phase[i];
        txCount += o.txCount;
    }
};

/** Per-transaction outcome of the last drained batch. */
struct TxRecord
{
    std::uint64_t id = 0;
    TxClass cls = TxClass::kRead;
    Tick readyAt = 0;
    Tick complete = 0;
    Tick arrayTicks = 0;
    /** Array time actually spent sensing/programming (must equal
     *  arrayTicks — suspend-resume conserves array work). */
    Tick arrayExecuted = 0;
    int suspends = 0;
};

/** Counters and busy-time snapshot. */
struct SchedStats
{
    std::vector<Tick> channelBusy; ///< booked ticks per channel
    std::vector<Tick> dieBusy;     ///< booked ticks per array resource
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t suspends = 0;
    std::uint64_t batches = 0;     ///< multi-plane groups formed
    std::uint64_t batchedJobs = 0; ///< jobs riding in those groups
    std::size_t maxQueueDepth = 0;
};

/** See file comment. */
class TransactionScheduler
{
  public:
    TransactionScheduler(const flash::FlashGeometry &geometry,
                         const flash::FlashTiming &timing,
                         const SchedConfig &cfg);

    const SchedConfig &config() const { return cfg_; }
    const char *policyName() const { return policy_->name(); }

    /**
     * Queue @p tx for the next drain().  @return its id.  The first
     * submit after a drain starts a new batch and discards the previous
     * batch's completion map and records.
     */
    std::uint64_t submit(const DeviceTransaction &tx);

    /**
     * Run the event engine until every submitted transaction completes.
     * @return the latest completion tick of the batch (0 if empty).
     * Panics if arbitration stalls (a policy bug).
     */
    Tick drain();

    /** Completion tick of @p id from the last drained batch. */
    Tick completionOf(std::uint64_t id) const;

    /** Latest completion over @p g, or @p fallback when @p g is empty. */
    Tick groupCompletion(const TxGroup &g, Tick fallback) const;

    /** Account a multi-plane batch of @p jobs coalesced jobs. */
    void
    noteBatch(std::size_t jobs)
    {
        ++batches_;
        batchedJobs_ += jobs;
    }

    SchedStats stats() const;

    /**
     * Emit every booked phase as a span on @p sink (one track per
     * channel, one per plane-granular die), in addition to — and with
     * the same intervals as — the TraceEntry record.  Pass nullptr to
     * detach.  SsdDevice wires the global sink in automatically when
     * tracing is enabled at construction time.
     */
    void setTraceSink(obs::TraceSink *sink);

    /** Completion-latency samples per class (latencySampling only). */
    const SampleSeries &latencySeries(TxClass c) const;

    /** Booking trace of the last batch (traceEnabled only). */
    const std::vector<TraceEntry> &trace() const { return trace_; }

    /** Per-transaction records of the last drained batch. */
    std::vector<TxRecord> records() const;

    /** @name Host-command attribution
     * The host interface brackets the submissions serving one NVMe
     * command with begin/end; every transaction submitted inside the
     * bracket is tagged with @p token, and its stage breakdown folds
     * into the command's StageTicks at completion.  Accumulation
     * survives batch restarts (a formula command spans several drains);
     * takeCommandStages reads and erases, so memory stays bounded by
     * in-flight commands.  Tokens are host-allocated and must be unique
     * per command lifetime.
     */
    /// @{
    void beginCommandAttribution(std::uint64_t token) { curCmd_ = token; }
    void endCommandAttribution() { curCmd_.reset(); }
    /** Aggregated stages for @p token (default-initialized if unknown);
     *  erases the entry. */
    StageTicks takeCommandStages(std::uint64_t token);
    /// @}

    /** @name Invariant audit (common/invariant.hpp). */
    /// @{

    /**
     * Audit the scheduler's invariants at a drain boundary, appending
     * violations to @p r:
     *
     *  - sched.queue.drained: no residual queue entries or running
     *    bookings survive a drain;
     *  - sched.queue.accounting: lifetime submitted == completed and
     *    the last batch's completion map covers every transaction;
     *  - sched.work.conservation: every transaction's executed array
     *    time equals its planned array time (suspend-resume conserves
     *    work) and it completed no earlier than it became ready;
     *  - sched.booking.exclusivity: no two booked intervals overlap on
     *    one channel or one plane-granular die resource (evaluated
     *    from the booking trace, so it needs cfg.traceEnabled).
     */
    void auditInvariants(InvariantReport &r) const;

    /**
     * Deliberately double-book the first traced interval so negative
     * tests can prove the exclusivity audit fires.  No-op (returns
     * false) when the booking trace is empty.  Test-only.
     */
    bool debugCorruptTraceForAudit();
    /// @}

  private:
    /** One phase booking request against a specific resource. */
    struct Phase
    {
        PhaseKind kind = PhaseKind::kArray;
        std::size_t resource = 0; ///< index into resources_
        Tick duration = 0;
    };

    struct TxState
    {
        DeviceTransaction tx;
        std::uint64_t id = 0;
        std::vector<Phase> phases;
        std::size_t nextPhase = 0;
        Tick complete = 0;
        Tick arrayExecuted = 0;
        int suspends = 0;
        Tick forceAt = 0; ///< set at first suspension
        bool done = false;
        StageTicks stages; ///< where this transaction's ticks went
    };

    struct QEntry
    {
        std::size_t txIdx = 0;
        std::size_t phaseIdx = 0;
        bool ready = false;
        Tick earliest = 0;
        bool isResume = false;
        Tick resumeRemaining = 0;
    };

    struct Running
    {
        std::size_t txIdx = 0;
        std::size_t phaseIdx = 0;
        std::uint64_t gen = 0;
        Tick start = 0;        ///< booking start (incl. resume overhead)
        Tick payloadStart = 0; ///< where actual array/transfer work begins
        Tick plannedEnd = 0;
        bool isResume = false;
    };

    struct Resource
    {
        Timeline tl;
        std::deque<QEntry> q;
        bool busy = false;
        Running running;
        std::uint64_t gen = 0;
        bool onChannel = false;
        std::uint32_t index = 0; ///< channel or array-resource ordinal
    };

    std::size_t channelResource(std::uint32_t channel) const;
    std::size_t arrayResource(const flash::PhysPageAddr &a) const;
    std::string dieTrackName(std::uint32_t plane_ordinal) const;

    /** Record one booked interval in the TraceEntry log (traceEnabled)
     *  and on the attached TraceSink track (if any), accumulate it into
     *  @p st's stage breakdown, and — when @p st belongs to an
     *  attributed host command — emit a flow step binding the span to
     *  the command's NVMe flow. */
    void noteSpan(std::size_t res, TxState &st, PhaseKind kind,
                  Tick start, Tick end);

    void buildPhases(TxState &st) const;
    Tick firstEarliest(const TxState &st) const;

    void markReady(std::size_t res, std::size_t txIdx, std::size_t phaseIdx,
                   Tick earliest);
    void dispatch(std::size_t res);
    void startEntry(std::size_t res, std::size_t qIdx);
    void onComplete(std::size_t res, std::uint64_t gen);
    void maybeSuspend(std::size_t res);
    void finishTx(TxState &st, Tick end);

    flash::FlashGeometry geo_;
    flash::FlashTiming timing_;
    SchedConfig cfg_;
    std::unique_ptr<SchedulerPolicy> policy_;

    std::vector<Resource> resources_; ///< channels first, then planes
    std::vector<TxState> txs_;        ///< current batch
    std::unordered_map<std::uint64_t, Tick> completions_;
    std::vector<SampleSeries> latency_; ///< one per TxClass
    std::vector<obs::Hist> latencyHist_; ///< one per TxClass (us)
    std::vector<TraceEntry> trace_;

    obs::TraceSink *sink_ = nullptr;
    std::vector<obs::TrackId> resourceTracks_; ///< parallel to resources_

    EventEngine *eng_ = nullptr; ///< valid only inside drain()
    std::uint64_t nextId_ = 0;
    bool batchOpen_ = false;

    std::optional<std::uint64_t> curCmd_; ///< open attribution bracket
    /** tx id -> command token, for the current batch. */
    std::unordered_map<std::uint64_t, std::uint64_t> cmdOf_;
    /** command token -> aggregated stages (until takeCommandStages). */
    std::unordered_map<std::uint64_t, StageTicks> cmdStages_;

    obs::Counter submitted_;
    obs::Counter completedCount_;
    obs::Counter suspendCount_;
    obs::Counter batches_;
    obs::Counter batchedJobs_;
    obs::Gauge maxQueueDepth_;
};

} // namespace parabit::ssd::sched

#endif // PARABIT_SSD_SCHED_SCHEDULER_HPP_
