/**
 * @file
 * Pluggable arbitration policies for the transaction scheduler.
 *
 * A policy answers one question — given the pending phase entries of a
 * single resource (one plane-granular die queue or one channel queue),
 * which entry starts next? — plus whether an arriving entry preempts
 * the array operation currently running on that resource.
 *
 * Determinism: a policy sees only the queue snapshot and the current
 * tick, and ties always break toward the lowest submission sequence
 * number, so repeated runs pick identical schedules.
 */

#ifndef PARABIT_SSD_SCHED_POLICY_HPP_
#define PARABIT_SSD_SCHED_POLICY_HPP_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "ssd/sched/sched_config.hpp"
#include "ssd/sched/transaction.hpp"

namespace parabit::ssd::sched {

/**
 * What a policy may know about one queued phase entry.  `ready` means
 * every earlier phase of the same transaction has finished and the
 * entry's earliest-start has been reached, i.e. it could start now.
 */
struct PendingView
{
    /** Global submission sequence of the owning transaction. */
    std::uint64_t seq = 0;
    TxClass cls = TxClass::kRead;
    PhaseKind kind = PhaseKind::kArray;
    bool ready = false;
    /** Earliest tick the entry may start (phase chaining + readyAt). */
    Tick earliest = 0;
    /** The entry is the resumed remainder of a suspended operation. */
    bool isResume = false;
    /** Tick at which a parked remainder must outrank reads (resume
     *  entries only; set at the operation's first suspension). */
    Tick forceAt = 0;
};

/** Sentinel: no entry may start now. */
inline constexpr std::size_t kNoPick = static_cast<std::size_t>(-1);

class SchedulerPolicy
{
  public:
    virtual ~SchedulerPolicy() = default;

    virtual const char *name() const = 0;

    /**
     * Choose the index of the entry to start on an idle resource, or
     * kNoPick to leave the resource idle (e.g. FCFS waiting for a
     * not-yet-ready head of line).  `views` lists the resource's queue
     * in submission order.
     */
    virtual std::size_t pick(const std::vector<PendingView> &views,
                             Tick now) const = 0;

    /**
     * Whether an arriving ready entry of class `incoming` suspends the
     * array operation of class `running` currently occupying the
     * resource.  Only consulted for suspendable running classes.
     */
    virtual bool preempts(TxClass incoming, TxClass running) const = 0;
};

std::unique_ptr<SchedulerPolicy> makePolicy(const SchedConfig &cfg);

} // namespace parabit::ssd::sched

#endif // PARABIT_SSD_SCHED_POLICY_HPP_
