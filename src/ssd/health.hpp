/**
 * @file
 * Device health state machine: the overload/degradation control plane.
 *
 * Real NVMe devices expose a healthy -> degraded -> read-only -> failed
 * progression through their health log pages; this module models the
 * controller side of that progression so fault storms degrade service
 * gracefully instead of hanging or dropping work.  One exponentially
 * decaying *pressure* budget folds together the distress signals the
 * simulator already produces:
 *
 *  - uncorrectable pages (host reads, scrub repairs, formula failures);
 *  - RAIN stripe rebuilds (a rebuild means a die/plane already died);
 *  - bad-block retirements (program/erase failures);
 *  - scrub refresh relocations (media wearing out faster than patrol);
 *  - sustained queue depth (submissions landing in a near-full SQ).
 *
 * Each signal charges a configured weight; the budget decays with a
 * configured half-life, so isolated events fade while a storm's burst
 * accumulates.  Transitions are deterministic and hysteresis-guarded:
 * escalation fires the moment pressure crosses the next state's
 * threshold (one step at a time); de-escalation additionally requires a
 * minimum dwell in the state *and* pressure below the state's own entry
 * threshold times (1 - hysteresis), so the machine cannot oscillate at
 * a boundary.  kFailed is terminal.  While power is lost the machine is
 * frozen: no decay, no transitions (the device's state is legitimately
 * inconsistent mid-cut).
 *
 * Policy is queried, not pushed: the host interface asks admitWrite()/
 * admitFormula()/admitRead() before executing, and the background
 * subsystems (scrub, RAIN destage) ask backgroundThrottled().  Health
 * is observable through the obs registry (health.state / health.pressure
 * gauges, health.transitions counter) and a trace span per completed
 * state occupancy on the device/health track.
 */

#ifndef PARABIT_SSD_HEALTH_HPP_
#define PARABIT_SSD_HEALTH_HPP_

#include <cstdint>
#include <vector>

#include "common/invariant.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "ssd/config.hpp"

namespace parabit::ssd {

/** Health states, ordered by severity (comparisons rely on the order). */
enum class HealthState : std::uint8_t
{
    kHealthy = 0,
    kDegraded = 1,
    kReadOnly = 2,
    kFailed = 3,
};

const char *healthStateName(HealthState s);

/** One recorded state transition (audit + test introspection). */
struct HealthTransition
{
    HealthState from = HealthState::kHealthy;
    HealthState to = HealthState::kHealthy;
    Tick at = 0;          ///< health clock when the transition fired
    double pressure = 0.0; ///< budget value that drove it
    bool powerLost = false; ///< must always be false (audited)
};

/** The health state machine; see file comment. */
class DeviceHealth
{
  public:
    explicit DeviceHealth(const HealthConfig &cfg);

    /**
     * Advance the health clock to @p now: decay the pressure budget and
     * evaluate transitions.  Called from the device's drain path, so
     * every timed batch moves the clock; out-of-order calls are safe
     * (the clock is monotonic, earlier ticks are ignored).
     */
    void pump(Tick now);

    Tick now() const { return now_; }

    /** @name Signal feeds (each charges its configured weight). */
    /// @{
    void noteUncorrectable() { charge(cfg_.weightUncorrectable); }
    void noteRebuild() { charge(cfg_.weightRebuild); }
    void noteRetiredBlock() { charge(cfg_.weightRetiredBlock); }
    void noteRefresh() { charge(cfg_.weightRefresh); }
    void noteQueuePressure() { charge(cfg_.weightQueuePressure); }
    /// @}

    /** Record one host write the policy admitted (read-only entry
     *  resets the count; the health suite audits it stays zero there). */
    void noteAdmittedWrite() { ++admittedWritesSinceEntry_; }

    /** Freeze/unfreeze the machine across a power cut (the device syncs
     *  this from the FTL's latched power-loss state every drain). */
    void setPowerLost(bool lost) { powerLost_ = lost; }
    bool powerLost() const { return powerLost_; }

    /** @name State and policy queries. */
    /// @{
    HealthState state() const { return state_; }
    double pressure() const { return pressure_; }

    /** Plain host writes admitted (healthy/degraded only). */
    bool admitWrite() const { return state_ < HealthState::kReadOnly; }

    /** ParaBit formula execution admitted (healthy only: computation is
     *  the first load a distressed device sheds). */
    bool admitFormula() const { return state_ == HealthState::kHealthy; }

    /** Host reads admitted (everything but failed). */
    bool admitRead() const { return state_ != HealthState::kFailed; }

    /** Background scrub/parity-destage throttled (degraded and worse). */
    bool
    backgroundThrottled() const
    {
        return state_ >= HealthState::kDegraded;
    }
    /// @}

    /** @name Introspection. */
    /// @{
    const std::vector<HealthTransition> &transitions() const
    {
        return transitions_;
    }
    std::uint64_t admittedWritesSinceEntry() const
    {
        return admittedWritesSinceEntry_;
    }
    /** Most severe state ever entered (chaos harness reporting). */
    HealthState maxState() const { return maxState_; }
    /// @}

    /** @name Invariant audit (common/invariant.hpp). */
    /// @{

    /**
     * Audit the machine's own consistency, appending violations to
     * @p r:
     *
     *  - health.budget.range: pressure is finite and non-negative, and
     *    every recorded transition moved exactly one step;
     *  - health.transition.powerlost: no transition fired while power
     *    was lost;
     *  - health.readonly.writes: in read-only or failed, zero host
     *    writes were admitted since the state was entered.
     */
    void auditInvariants(InvariantReport &r) const;

    /** Corrupt the pressure budget (health.budget.range).  Test-only. */
    bool debugCorruptPressure();

    /** Forge a transition record stamped power-lost
     *  (health.transition.powerlost).  Test-only. */
    bool debugForgeTransitionWhilePowerLost();

    /** Force read-only with a nonzero admitted-write count
     *  (health.readonly.writes).  Test-only. */
    bool debugCorruptReadOnlyAdmit();
    /// @}

  private:
    void charge(double weight);
    void evaluate();
    void transitionTo(HealthState to);
    double escalateThreshold(HealthState s) const;

    HealthConfig cfg_;
    HealthState state_ = HealthState::kHealthy;
    HealthState maxState_ = HealthState::kHealthy;
    double pressure_ = 0.0;
    Tick now_ = 0;
    Tick enteredAt_ = 0; ///< health clock at the last transition
    bool powerLost_ = false;
    std::uint64_t admittedWritesSinceEntry_ = 0;
    std::vector<HealthTransition> transitions_;

    /** End tick of the last span emitted on the device/health trace
     *  track (per-track exclusivity, like SsdDevice::mediaSpanEnd_). */
    Tick healthSpanEnd_ = 0;

    obs::Gauge stateGauge_{"health.state"};
    obs::Gauge pressureGauge_{"health.pressure"};
    obs::Counter transitionsCount_{"health.transitions"};
};

} // namespace parabit::ssd

#endif // PARABIT_SSD_HEALTH_HPP_
