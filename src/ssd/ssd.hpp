/**
 * @file
 * SsdDevice: the simulated SSD — chips, FTL and the timing model.
 *
 * Functional behaviour lives in the chip array and the FTL; timing
 * lives in the TransactionScheduler: every PhysOp and ArrayJob is
 * converted to a phase-decomposed DeviceTransaction and arbitrated per
 * channel and per plane (array operations — the device exploits
 * plane-level parallelism for reads, programs and ParaBit sensing, the
 * fourth level of SSD parallelism the paper builds on).  Under the
 * default FCFS policy this reproduces the historical greedy
 * Timeline-booking behaviour tick-for-tick — multi-chip interleaving on
 * a channel, cache-read overlap of sensing with transfer, plane-level
 * parallelism — deterministically; other policies reorder within the
 * bounds described in ssd/sched/policy.hpp.
 *
 * Two calling styles: the legacy scheduleOps/scheduleArrayJobs book and
 * drain in one call (one batch per call), while submitOps/
 * submitArrayJobs + drainTransactions let callers accumulate a batch
 * (e.g. every op of one host-command pump round) so non-FCFS policies
 * have something to arbitrate between.
 */

#ifndef PARABIT_SSD_SSD_HPP_
#define PARABIT_SSD_SSD_HPP_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/bitvector.hpp"
#include "common/invariant.hpp"
#include "ssd/config.hpp"
#include "ssd/endurance.hpp"
#include "ssd/fault_injector.hpp"
#include "ssd/ftl.hpp"
#include "ssd/health.hpp"
#include "ssd/media.hpp"
#include "ssd/rain.hpp"
#include "ssd/sched/scheduler.hpp"

namespace parabit::ssd {

/** An in-flash array job: a ParaBit sensing sequence with optional
 *  buffer load-in (chained operands re-loaded from the controller
 *  buffer, paper Section 4.2) and result transfer out. */
struct ArrayJob
{
    flash::PhysPageAddr loc; ///< plane the latch circuit belongs to
    int sroCount = 0;        ///< sensings to book on the plane
    Bytes xferInBytes = 0;   ///< buffer reload bytes before sensing
    Bytes xferOutBytes = 0;  ///< result bytes to move over the channel
};

/** The simulated SSD; see file comment. */
class SsdDevice
{
  public:
    explicit SsdDevice(const SsdConfig &cfg);

    const SsdConfig &config() const { return cfg_; }
    Ftl &ftl() { return ftl_; }
    const flash::FlashGeometry &geometry() const { return cfg_.geometry; }

    /** @name Timed host-level I/O. */
    /// @{

    /**
     * Write @p data.size() consecutive logical pages starting at
     * @p start, submitted at @p at.  Null entries write metadata only.
     * @return completion time.
     */
    Tick writePages(Lpn start, const std::vector<const BitVector *> &data,
                    Tick at);

    /**
     * Read @p count consecutive logical pages starting at @p start.
     * @param out if non-null, receives the page contents.
     * @return completion time.
     */
    Tick readPages(Lpn start, std::size_t count, std::vector<BitVector> *out,
                   Tick at);
    /// @}

    /**
     * Book the physical ops of an FTL call on the timing model
     * (submit + drain in one batch).
     * @return the completion time of the last op.
     */
    Tick scheduleOps(const std::vector<PhysOp> &ops, Tick ready_at);

    /** Book in-flash array jobs (ParaBit sequences). */
    Tick scheduleArrayJobs(const std::vector<ArrayJob> &jobs, Tick ready_at);

    /** @name Batched transaction submission. */
    /// @{

    /**
     * Queue the physical ops of an FTL call as DeviceTransactions
     * without draining.  @return the id range, for groupCompletion()
     * after drainTransactions().
     */
    sched::TxGroup submitOps(const std::vector<PhysOp> &ops, Tick ready_at);

    /** Queue in-flash array jobs (applies multi-plane batching when
     *  configured). */
    sched::TxGroup submitArrayJobs(const std::vector<ArrayJob> &jobs,
                                   Tick ready_at);

    /** Arbitrate and run every queued transaction to completion, then
     *  audit the registered invariant suites when the configured cadence
     *  (InvariantConfig::auditInterval) says this drain is due.
     *  @return the latest completion tick of the batch. */
    Tick drainTransactions();

    /** Latest completion over @p g (query before the next submit);
     *  @p fallback when @p g is empty. */
    Tick
    groupCompletion(const sched::TxGroup &g, Tick fallback) const
    {
        return sched_.groupCompletion(g, fallback);
    }

    sched::TransactionScheduler &scheduler() { return sched_; }
    const sched::TransactionScheduler &scheduler() const { return sched_; }
    /// @}

    /** @name Whole-device invariant audits (common/invariant.hpp). */
    /// @{

    /**
     * The device's invariant registry.  Suites registered at
     * construction: "ftl" (map bijection, OOB agreement, valid-count
     * accounting, LSB/MSB pairing), "sched" (queue drain/accounting,
     * work conservation, booking exclusivity), "rain" (stripe parity,
     * only when RAIN is enabled), "media" (clock/wear monotonicity
     * and the patrol-cursor range) and "health" (budget/transition
     * consistency, only when the health machine is enabled).  Tools
     * (parabit-model) and tests may run suites individually or
     * register extra ones.
     */
    InvariantRegistry &invariantRegistry() { return invariants_; }

    /**
     * Run every registered suite now and return the report.  Violations
     * are counted on the invariant.* metrics and dumped — one
     * structured "[id] subject: detail" line each — through the log
     * sink.  While power is lost (mid-cut, before powerCycle()) device
     * state is legitimately inconsistent, so the audit reports an empty
     * run instead of false positives.
     */
    InvariantReport auditInvariants();
    /// @}

    /**
     * Power restoration after a kPowerLoss fault (or a clean restart):
     * clears the injector's latched power-loss state, runs the FTL's
     * SPOR pass (checkpoint load + journal replay + OOB scan) and books
     * the recovery reads on the timing model.  The report's scanTime is
     * the simulated recovery duration starting at @p at.
     */
    RecoveryReport powerCycle(Tick at = 0);

    /** Endurance/write-traffic snapshot. */
    EnduranceStats endurance() const;

    /**
     * Peak sequential read bandwidth of the flash back-end in bytes/s
     * (channels saturated; sensing hidden by cache read).
     */
    double internalReadBandwidth() const;

    flash::Chip &chipAt(std::uint32_t channel, std::uint32_t chip)
    {
        return chips_.at(static_cast<std::size_t>(channel) *
                             cfg_.geometry.chipsPerChannel +
                         chip);
    }

    /** @name Fault injection (reliability layer). */
    /// @{

    /**
     * The device's fault injector, created on first use (seeded from
     * the device seed) and wired into every chip's fault hooks.
     */
    FaultInjector &faultInjector();

    bool hasFaultInjector() const { return injector_ != nullptr; }

    /** Register @p spec with the injector and apply its plane-level
     *  side effects (dead flags, stuck bitlines) to the chip array. */
    void injectFault(const FaultSpec &spec);

    /**
     * Drop every transient fault from the injector (storm over) and
     * re-derive the chip array's plane-level state, reviving stuck
     * bitlines and elevated-RBER regions.  Permanent damage (dead
     * planes/chips/dies, retired blocks) stays.  No-op without an
     * injector.  @return faults removed.
     */
    std::size_t clearTransientFaults();

    /** Whether @p a's plane still accepts operations. */
    bool
    planeAlive(const flash::PhysPageAddr &a)
    {
        return chipAt(a.channel, a.chip).planeOperational(a.die, a.plane);
    }
    /// @}

    /** @name Background media management (scrub + RAIN). */
    /// @{

    /** The RAIN parity controller, or null (cfg.rain.enabled false). */
    RainController *rain() { return rain_.get(); }

    /** The patrol scrubber, or null (cfg.media.enabled false). */
    MediaScrubber *media() { return media_.get(); }

    /** The health state machine, or null (cfg.health.enabled false). */
    DeviceHealth *health() { return health_.get(); }

    /**
     * Give the patrol scrubber a chance to run at simulated time @p now
     * (called automatically after every timed host I/O; benches and
     * tests may pump idle time explicitly).  Books any patrol/refresh
     * traffic on the timing model and emits a "scrub_pass" trace span.
     * @return the completion time of the pass's traffic (@p now when no
     * pass was due).
     */
    Tick pumpMedia(Tick now);

    /**
     * On-demand repair of an unreadable logical page (dead plane/die):
     * rebuild its content from the RAIN stripe and re-place it on an
     * operational plane.  @return true when @p lpn is readable again
     * (including the page-was-fine case); false on genuine data loss.
     */
    bool repairPage(Lpn lpn, Tick at);
    /// @}

  private:
    sched::DeviceTransaction toTransaction(const PhysOp &op,
                                           Tick ready_at) const;
    sched::DeviceTransaction toTransaction(const ArrayJob &job,
                                           Tick ready_at) const;
    void installFaultHooks();

    /** Advance every chip's simulated-time cursor (retention ages
     *  against it); monotonic, so out-of-order calls are safe. */
    void advanceClock(Tick now);

    /** Wire the per-subsystem suites into invariants_ (ctor). */
    void registerInvariantSuites();

    /** The "media" suite body: media.clock.monotonic (no wordline was
     *  programmed in the future of its chip's clock), media.wear.
     *  monotonic (erase counts and disturb charge never run backwards
     *  between audits) and the scrubber's media.cursor.range. */
    void auditMedia(InvariantReport &r);

    /** Run a cadenced audit after a drain; panics (fatalOnViolation)
     *  or logs when a suite reports violations. */
    void maybeAudit();

    SsdConfig cfg_;
    std::vector<flash::Chip> chips_;
    Ftl ftl_;
    sched::TransactionScheduler sched_;
    std::unique_ptr<FaultInjector> injector_;
    std::unique_ptr<RainController> rain_;
    std::unique_ptr<MediaScrubber> media_;
    std::unique_ptr<DeviceHealth> health_;

    /** End tick of the last span emitted on the device/media trace
     *  track.  Spans there must not overlap (parabit-trace checks
     *  per-track exclusivity) but callers may pump or repair at ticks
     *  before earlier booked work completed, so starts are clamped. */
    Tick mediaSpanEnd_ = 0;

    InvariantRegistry invariants_;
    std::uint64_t drainCount_ = 0; ///< drains since the last audit

    /** Last audited wear state of one block (media.wear.monotonic). */
    struct WearSnapshot
    {
        std::uint32_t erases = 0;
        std::vector<std::uint64_t> disturb; ///< per wordline
    };
    /** Linear block id -> wear seen at the previous audit. */
    std::unordered_map<std::uint64_t, WearSnapshot> wearSeen_;

    /** Registered invariant instruments (obs/metrics.hpp). */
    obs::Counter auditRuns_{"invariant.audits"};
    obs::Counter auditChecks_{"invariant.checks"};
    obs::Counter auditViolations_{"invariant.violations"};

    /** Registered recovery instruments (obs/metrics.hpp). */
    obs::Counter powerCycles_{"recovery.power_cycles"};
    obs::Counter pagesScannedTotal_{"recovery.pages_scanned"};
    obs::Counter journalReplayedTotal_{"recovery.journal_replayed"};
    obs::Counter mappingsRebuiltTotal_{"recovery.mappings_rebuilt"};
};

} // namespace parabit::ssd

#endif // PARABIT_SSD_SSD_HPP_
