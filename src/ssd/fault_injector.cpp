#include "ssd/fault_injector.hpp"

namespace parabit::ssd {

const char *
faultClassName(FaultClass c)
{
    switch (c) {
      case FaultClass::kElevatedRber: return "elevated-rber";
      case FaultClass::kStuckBitline: return "stuck-bitline";
      case FaultClass::kProgramFailure: return "program-failure";
      case FaultClass::kEraseFailure: return "erase-failure";
      case FaultClass::kDeadPlane: return "dead-plane";
      case FaultClass::kDeadChip: return "dead-chip";
      case FaultClass::kPowerLoss: return "power-loss";
      case FaultClass::kReadDisturbHot: return "read-disturb-hot";
      case FaultClass::kRetentionLoss: return "retention-loss";
      case FaultClass::kDieFail: return "die-fail";
    }
    return "?";
}

bool
faultClassTransient(FaultClass c)
{
    switch (c) {
      case FaultClass::kElevatedRber:
      case FaultClass::kStuckBitline:
      case FaultClass::kProgramFailure:
      case FaultClass::kEraseFailure:
      case FaultClass::kReadDisturbHot:
      case FaultClass::kRetentionLoss:
          return true;
      case FaultClass::kDeadPlane:
      case FaultClass::kDeadChip:
      case FaultClass::kDieFail:
      case FaultClass::kPowerLoss:
          return false;
    }
    return false;
}

FaultInjector::FaultInjector(const flash::FlashGeometry &geom,
                             std::uint64_t seed)
    : geom_(geom), seed_(seed), rng_(seed)
{
}

void
FaultInjector::addFault(const FaultSpec &spec)
{
    Active f;
    f.spec = spec;
    if (spec.cls == FaultClass::kPowerLoss)
        f.cutMid = spec.cutMidProgram ? *spec.cutMidProgram
                                      : rng_.chance(0.5);
    if (spec.cls == FaultClass::kStuckBitline) {
        const std::size_t bits = geom_.pageBits();
        for (std::uint32_t i = 0; i < spec.stuckCount; ++i)
            f.stuck.push_back(flash::StuckBitline{
                static_cast<std::size_t>(rng_.below(bits)),
                spec.stuckValue});
    }
    active_.push_back(std::move(f));
    specs_.push_back(spec);
}

std::vector<FaultSpec>
FaultInjector::randomSchedule(const flash::FlashGeometry &geom,
                              std::uint64_t seed, std::size_t count)
{
    Rng rng(seed);
    std::vector<FaultSpec> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        FaultSpec s;
        // kPowerLoss is excluded from random media-fault schedules: a
        // power cut ends the run, so SPOR harnesses arm it explicitly.
        s.cls = static_cast<FaultClass>(rng.below(6));
        s.plane = static_cast<PlaneIndex>(rng.below(geom.planesTotal()));
        if (rng.chance(0.5))
            s.block = static_cast<std::uint32_t>(
                rng.below(geom.blocksPerPlane));
        s.rberMultiplier = 10.0 * static_cast<double>(1 + rng.below(100));
        s.stuckCount = static_cast<std::uint32_t>(1 + rng.below(8));
        s.stuckValue = rng.chance(0.5);
        s.failPeriod = static_cast<std::uint32_t>(1 + rng.below(8));
        s.onset = static_cast<std::uint32_t>(rng.below(16));
        out.push_back(s);
    }
    return out;
}

std::vector<FaultSpec>
FaultInjector::stormSchedule(const flash::FlashGeometry &geom,
                             std::uint64_t seed, const StormConfig &cfg)
{
    // The transient classes a storm may draw (see faultClassTransient);
    // permanent damage never comes from a storm, so lifting it with
    // clearTransient() restores the device's full capability.
    static constexpr FaultClass kStormClasses[] = {
        FaultClass::kElevatedRber,   FaultClass::kStuckBitline,
        FaultClass::kProgramFailure, FaultClass::kEraseFailure,
        FaultClass::kReadDisturbHot, FaultClass::kRetentionLoss,
    };
    constexpr std::size_t kStormClassCount =
        sizeof(kStormClasses) / sizeof(kStormClasses[0]);

    Rng rng(seed);
    const std::uint32_t chips = geom.channels * geom.chipsPerChannel;
    const std::uint32_t planes_per_chip =
        geom.diesPerChip * geom.planesPerDie;
    std::vector<FaultSpec> out;
    out.reserve(static_cast<std::size_t>(cfg.bursts) * cfg.faultsPerBurst);
    for (std::uint32_t b = 0; b < cfg.bursts; ++b) {
        // Each burst concentrates on one focus chip — correlated damage.
        const std::uint32_t focus =
            static_cast<std::uint32_t>(rng.below(chips));
        for (std::uint32_t i = 0; i < cfg.faultsPerBurst; ++i) {
            FaultSpec s;
            s.cls = kStormClasses[rng.below(kStormClassCount)];
            if (rng.chance(cfg.localityBias))
                s.plane = static_cast<PlaneIndex>(
                    static_cast<std::uint64_t>(focus) * planes_per_chip +
                    rng.below(planes_per_chip));
            else
                s.plane =
                    static_cast<PlaneIndex>(rng.below(geom.planesTotal()));
            if (rng.chance(0.5))
                s.block = static_cast<std::uint32_t>(
                    rng.below(geom.blocksPerPlane));
            s.rberMultiplier = 10.0 * static_cast<double>(1 + rng.below(100));
            s.stuckCount = static_cast<std::uint32_t>(1 + rng.below(8));
            s.stuckValue = rng.chance(0.5);
            s.failPeriod = static_cast<std::uint32_t>(1 + rng.below(4));
            s.onset = static_cast<std::uint32_t>(rng.below(8));
            out.push_back(s);
        }
    }
    return out;
}

std::size_t
FaultInjector::clearTransient()
{
    // active_ and specs_ are parallel (pushed together in addFault);
    // erase in lockstep so the pairing survives.
    std::size_t removed = 0;
    std::size_t w = 0;
    for (std::size_t r = 0; r < active_.size(); ++r) {
        if (faultClassTransient(active_[r].spec.cls)) {
            ++removed;
            continue;
        }
        if (w != r) {
            active_[w] = std::move(active_[r]);
            specs_[w] = specs_[r];
        }
        ++w;
    }
    active_.resize(w);
    specs_.resize(w);
    return removed;
}

PlaneIndex
FaultInjector::planeOf(const flash::PhysPageAddr &a) const
{
    return planeIndex(geom_, PlaneCoord{a.channel, a.chip, a.die, a.plane});
}

bool
FaultInjector::matches(const Active &f, const flash::PhysPageAddr &a) const
{
    if (f.spec.plane != planeOf(a))
        return false;
    return !f.spec.block || *f.spec.block == a.block;
}

double
FaultInjector::rberMultiplier(const flash::PhysPageAddr &a) const
{
    double mult = 1.0;
    for (const Active &f : active_)
        if (f.spec.cls == FaultClass::kElevatedRber && matches(f, a))
            mult *= f.spec.rberMultiplier;
    return mult;
}

double
FaultInjector::disturbMultiplier(const flash::PhysPageAddr &a) const
{
    double mult = 1.0;
    for (const Active &f : active_)
        if (f.spec.cls == FaultClass::kReadDisturbHot && matches(f, a))
            mult *= f.spec.rberMultiplier;
    return mult;
}

double
FaultInjector::retentionMultiplier(const flash::PhysPageAddr &a) const
{
    double mult = 1.0;
    for (const Active &f : active_)
        if (f.spec.cls == FaultClass::kRetentionLoss && matches(f, a))
            mult *= f.spec.rberMultiplier;
    return mult;
}

bool
FaultInjector::planeDead(PlaneIndex p) const
{
    const std::uint32_t planes_per_chip =
        geom_.diesPerChip * geom_.planesPerDie;
    for (const Active &f : active_) {
        if (f.spec.cls == FaultClass::kDeadPlane && f.spec.plane == p)
            return true;
        if (f.spec.cls == FaultClass::kDeadChip &&
            f.spec.plane / planes_per_chip == p / planes_per_chip)
            return true;
        if (f.spec.cls == FaultClass::kDieFail &&
            f.spec.plane / geom_.planesPerDie == p / geom_.planesPerDie)
            return true;
    }
    return false;
}

std::vector<flash::StuckBitline>
FaultInjector::stuckBitlines(PlaneIndex p) const
{
    std::vector<flash::StuckBitline> out;
    for (const Active &f : active_)
        if (f.spec.cls == FaultClass::kStuckBitline && f.spec.plane == p)
            out.insert(out.end(), f.stuck.begin(), f.stuck.end());
    return out;
}

bool
FaultInjector::programShouldFail(const flash::PhysPageAddr &a)
{
    bool fail = false;
    for (Active &f : active_) {
        if (f.spec.cls != FaultClass::kProgramFailure || !matches(f, a))
            continue;
        ++f.attempts;
        if (f.attempts > f.spec.onset &&
            (f.attempts - f.spec.onset) % f.spec.failPeriod == 0)
            fail = true;
    }
    if (fail)
        ++progFails_;
    return fail;
}

bool
FaultInjector::eraseShouldFail(const flash::PhysPageAddr &a)
{
    bool fail = false;
    for (Active &f : active_) {
        if (f.spec.cls != FaultClass::kEraseFailure || !matches(f, a))
            continue;
        ++f.attempts;
        if (f.attempts > f.spec.onset &&
            (f.attempts - f.spec.onset) % f.spec.failPeriod == 0)
            fail = true;
    }
    if (fail)
        ++eraseFails_;
    return fail;
}

PowerCut
FaultInjector::powerCutOnOp(bool is_program)
{
    if (powerLost_)
        return PowerCut::kBeforeOp;
    PowerCut cut = PowerCut::kNone;
    for (Active &f : active_) {
        if (f.spec.cls != FaultClass::kPowerLoss || f.fired)
            continue;
        ++f.attempts;
        if (f.attempts > f.spec.onset) {
            f.fired = true;
            powerLost_ = true;
            ++powerCuts_;
            cut = (is_program && f.cutMid) ? PowerCut::kMidProgram
                                           : PowerCut::kBeforeOp;
        }
    }
    return cut;
}

std::uint64_t
FaultInjector::scheduleFingerprint() const
{
    // FNV-1a over every schedule-determining field.
    std::uint64_t h = 0xCBF29CE484222325ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xFF;
            h *= 0x100000001B3ull;
        }
    };
    for (const Active &f : active_) {
        mix(static_cast<std::uint64_t>(f.spec.cls));
        mix(f.spec.plane);
        mix(f.spec.block ? 1 + static_cast<std::uint64_t>(*f.spec.block)
                         : 0);
        mix(static_cast<std::uint64_t>(f.spec.rberMultiplier * 1e6));
        mix(f.spec.stuckCount);
        mix(f.spec.stuckValue);
        mix(f.spec.failPeriod);
        mix(f.spec.onset);
        mix(f.spec.cls == FaultClass::kPowerLoss ? 1 + f.cutMid : 0);
        for (const flash::StuckBitline &s : f.stuck) {
            mix(s.bitline);
            mix(s.value);
        }
    }
    return h;
}

} // namespace parabit::ssd
