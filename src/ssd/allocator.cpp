#include "ssd/allocator.hpp"

#include "common/logging.hpp"

namespace parabit::ssd {

PlaneCoord
planeCoord(const flash::FlashGeometry &g, PlaneIndex idx)
{
    PlaneCoord c;
    c.plane = idx % g.planesPerDie;
    idx /= g.planesPerDie;
    c.die = idx % g.diesPerChip;
    idx /= g.diesPerChip;
    c.chip = idx % g.chipsPerChannel;
    idx /= g.chipsPerChannel;
    c.channel = idx;
    return c;
}

PlaneIndex
planeIndex(const flash::FlashGeometry &g, const PlaneCoord &c)
{
    PlaneIndex idx = c.channel;
    idx = idx * g.chipsPerChannel + c.chip;
    idx = idx * g.diesPerChip + c.die;
    idx = idx * g.planesPerDie + c.plane;
    return idx;
}

Allocator::Allocator(const flash::FlashGeometry &geom)
    : geom_(geom), planes_(geom.planesTotal())
{
    for (auto &ps : planes_)
        for (std::uint32_t b = 0; b < geom_.blocksPerPlane; ++b)
            ps.freePool.push_back(b);
}

PlaneIndex
Allocator::nextPlane()
{
    // Channel-first striping: consecutive allocations land on different
    // channels, then different chips, maximising bus-level parallelism.
    // The flat index is channel-major, so striding by planesPerChannel
    // and wrapping with an offset visits channels round-robin.
    const PlaneIndex count = planeCount();
    const PlaneIndex planes_per_channel = count / geom_.channels;
    const PlaneIndex step = rrCursor_++;
    const PlaneIndex channel = step % geom_.channels;
    const PlaneIndex within = (step / geom_.channels) % planes_per_channel;
    return channel * planes_per_channel + within;
}

std::uint32_t
Allocator::freeBlocks(PlaneIndex plane) const
{
    return static_cast<std::uint32_t>(planes_.at(plane).freePool.size());
}

void
Allocator::noteErased(PlaneIndex plane, std::uint32_t block)
{
    if (isRetired(plane, block) || isReserved(plane, block))
        return;
    planes_.at(plane).freePool.push_back(block);
}

void
Allocator::retireBlock(PlaneIndex plane, std::uint32_t block)
{
    PlaneState &ps = planes_.at(plane);
    if (ps.retired.empty())
        ps.retired.assign(geom_.blocksPerPlane, false);
    if (ps.retired.at(block))
        return;
    ps.retired.at(block) = true;
    ++retiredCount_;
    std::erase(ps.freePool, block);
    const auto sb = static_cast<std::int64_t>(block);
    if (ps.interleaved.block == sb)
        ps.interleaved.block = -1;
    if (ps.lsbOnly.block == sb)
        ps.lsbOnly.block = -1;
}

bool
Allocator::isRetired(PlaneIndex plane, std::uint32_t block) const
{
    const PlaneState &ps = planes_.at(plane);
    return !ps.retired.empty() && ps.retired.at(block);
}

void
Allocator::reserveBlock(PlaneIndex plane, std::uint32_t block)
{
    PlaneState &ps = planes_.at(plane);
    if (ps.reserved.empty())
        ps.reserved.assign(geom_.blocksPerPlane, false);
    if (ps.reserved.at(block))
        return;
    ps.reserved.at(block) = true;
    std::erase(ps.freePool, block);
    const auto sb = static_cast<std::int64_t>(block);
    if (ps.interleaved.block == sb)
        ps.interleaved.block = -1;
    if (ps.lsbOnly.block == sb)
        ps.lsbOnly.block = -1;
}

bool
Allocator::isReserved(PlaneIndex plane, std::uint32_t block) const
{
    const PlaneState &ps = planes_.at(plane);
    return !ps.reserved.empty() && ps.reserved.at(block);
}

void
Allocator::rebuild(PlaneIndex plane,
                   const std::vector<std::uint32_t> &free_blocks)
{
    PlaneState &ps = planes_.at(plane);
    ps.freePool.clear();
    ps.interleaved = Cursor{};
    ps.lsbOnly = Cursor{};
    for (std::uint32_t b : free_blocks)
        if (!isRetired(plane, b) && !isReserved(plane, b))
            ps.freePool.push_back(b);
}

std::vector<std::uint32_t>
Allocator::poolBlocks(PlaneIndex plane) const
{
    const PlaneState &ps = planes_.at(plane);
    return {ps.freePool.begin(), ps.freePool.end()};
}

bool
Allocator::ensureBlock(PlaneState &ps, Cursor &cur)
{
    if (cur.block >= 0 && cur.wordline < geom_.wordlinesPerBlock)
        return true;
    if (ps.freePool.empty()) {
        cur.block = -1;
        return false;
    }
    cur.block = ps.freePool.front();
    ps.freePool.pop_front();
    cur.wordline = 0;
    cur.msbPhase = false;
    return true;
}

flash::PhysPageAddr
Allocator::makeAddr(PlaneIndex plane, const Cursor &cur, bool msb) const
{
    const PlaneCoord c = planeCoord(geom_, plane);
    flash::PhysPageAddr a;
    a.channel = c.channel;
    a.chip = c.chip;
    a.die = c.die;
    a.plane = c.plane;
    a.block = static_cast<std::uint32_t>(cur.block);
    a.wordline = cur.wordline;
    a.msb = msb;
    return a;
}

std::optional<flash::PhysPageAddr>
Allocator::nextPage(PlaneIndex plane)
{
    PlaneState &ps = planes_.at(plane);
    Cursor &cur = ps.interleaved;
    if (!ensureBlock(ps, cur))
        return std::nullopt;
    const flash::PhysPageAddr a = makeAddr(plane, cur, cur.msbPhase);
    if (cur.msbPhase) {
        cur.msbPhase = false;
        ++cur.wordline;
    } else {
        cur.msbPhase = true;
    }
    return a;
}

std::optional<PagePair>
Allocator::nextPair(PlaneIndex plane)
{
    PlaneState &ps = planes_.at(plane);
    Cursor &cur = ps.interleaved;
    // A pair needs a fresh wordline; if the cursor is mid-wordline the
    // pending MSB page is skipped (it stays free but unreachable, a
    // small accepted waste of pairing).
    if (cur.block >= 0 && cur.msbPhase) {
        cur.msbPhase = false;
        ++cur.wordline;
    }
    if (!ensureBlock(ps, cur))
        return std::nullopt;
    PagePair pair{makeAddr(plane, cur, false), makeAddr(plane, cur, true)};
    ++cur.wordline;
    return pair;
}

std::optional<flash::PhysPageAddr>
Allocator::nextLsbOnly(PlaneIndex plane)
{
    PlaneState &ps = planes_.at(plane);
    Cursor &cur = ps.lsbOnly;
    if (!ensureBlock(ps, cur))
        return std::nullopt;
    const flash::PhysPageAddr a = makeAddr(plane, cur, false);
    ++cur.wordline;
    return a;
}

bool
Allocator::isActiveBlock(PlaneIndex plane, std::uint32_t block) const
{
    const PlaneState &ps = planes_.at(plane);
    return (ps.interleaved.block >= 0 &&
            ps.interleaved.block == static_cast<std::int64_t>(block)) ||
           (ps.lsbOnly.block >= 0 &&
            ps.lsbOnly.block == static_cast<std::int64_t>(block));
}

} // namespace parabit::ssd
