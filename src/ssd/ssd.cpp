#include "ssd/ssd.hpp"

#include <algorithm>
#include <string>

#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace parabit::ssd {

SsdDevice::SsdDevice(const SsdConfig &cfg)
    : cfg_(cfg),
      chips_([&] {
          std::vector<flash::Chip> v;
          const std::uint32_t n = cfg.geometry.chips();
          v.reserve(n);
          for (std::uint32_t i = 0; i < n; ++i)
              v.emplace_back(cfg.geometry, cfg.storeData, cfg.errors,
                             cfg.seed + i);
          return v;
      }()),
      ftl_(cfg, chips_),
      sched_(cfg.geometry, cfg.timing, cfg.sched)
{
    // Benches enable the global sink before constructing the device;
    // every scheduler booking then lands on per-channel/per-die tracks.
    if (obs::TraceSink *sink = obs::TraceSink::global())
        sched_.setTraceSink(sink);
    if (const char *err = validateMediaConfig(cfg_))
        fatal(std::string("SsdDevice: ") + err);
    if (const char *err = validateHealthConfig(cfg_))
        fatal(std::string("SsdDevice: ") + err);
    if (cfg_.rain.enabled)
        rain_ = std::make_unique<RainController>(cfg_, chips_);
    ftl_.setRain(rain_.get());
    if (cfg_.media.enabled)
        media_ = std::make_unique<MediaScrubber>(cfg_, ftl_, chips_,
                                                 rain_.get());
    if (cfg_.health.enabled) {
        health_ = std::make_unique<DeviceHealth>(cfg_.health);
        ftl_.setHealth(health_.get());
        if (rain_)
            rain_->setHealth(health_.get());
        if (media_)
            media_->setHealth(health_.get());
    }
    registerInvariantSuites();
}

void
SsdDevice::registerInvariantSuites()
{
    invariants_.registerSuite(
        "ftl", [this](InvariantReport &r) { ftl_.auditInvariants(r); });
    invariants_.registerSuite(
        "sched", [this](InvariantReport &r) { sched_.auditInvariants(r); });
    if (rain_)
        invariants_.registerSuite(
            "rain", [this](InvariantReport &r) { rain_->auditParity(r); });
    invariants_.registerSuite(
        "media", [this](InvariantReport &r) { auditMedia(r); });
    if (health_)
        invariants_.registerSuite("health", [this](InvariantReport &r) {
            health_->auditInvariants(r);
        });
}

void
SsdDevice::auditMedia(InvariantReport &r)
{
    const flash::FlashGeometry &g = cfg_.geometry;
    for (std::size_t ci = 0; ci < chips_.size(); ++ci) {
        const flash::Chip &chip = chips_[ci];
        const Tick now = chip.now();
        for (std::uint32_t die = 0; die < g.diesPerChip; ++die) {
            for (std::uint32_t pl = 0; pl < g.planesPerDie; ++pl) {
                const flash::Plane &plane = chip.plane(die, pl);
                for (std::uint32_t b = 0; b < g.blocksPerPlane; ++b) {
                    const flash::Block *blk = plane.blockIfExists(b);
                    if (!blk)
                        continue;
                    const std::uint64_t key =
                        ((static_cast<std::uint64_t>(ci) * g.diesPerChip +
                          die) *
                             g.planesPerDie +
                         pl) *
                            g.blocksPerPlane +
                        b;
                    WearSnapshot &seen = wearSeen_[key];
                    const bool erased = blk->eraseCount() > seen.erases;
                    if (!r.check(blk->eraseCount() >= seen.erases))
                        r.fail("media.wear.monotonic",
                               "block " + std::to_string(key),
                               "erase count went backwards: " +
                                   std::to_string(blk->eraseCount()) +
                                   " after " + std::to_string(seen.erases));
                    seen.erases = blk->eraseCount();
                    seen.disturb.resize(g.wordlinesPerBlock, 0);
                    for (std::uint32_t wl = 0; wl < g.wordlinesPerBlock;
                         ++wl) {
                        const Tick programmed = blk->programTick(wl);
                        if (!r.check(programmed <= now))
                            r.fail("media.clock.monotonic",
                                   "block " + std::to_string(key) +
                                       " wordline " + std::to_string(wl),
                                   "programmed at tick " +
                                       std::to_string(programmed) +
                                       ", after the chip clock " +
                                       std::to_string(now));
                        const std::uint64_t d = blk->disturbCount(wl);
                        // erase() legitimately resets disturb charge;
                        // otherwise it only ever accumulates.
                        if (!r.check(erased || d >= seen.disturb[wl]))
                            r.fail("media.wear.monotonic",
                                   "block " + std::to_string(key) +
                                       " wordline " + std::to_string(wl),
                                   "disturb charge shrank without an "
                                   "erase: " +
                                       std::to_string(d) + " after " +
                                       std::to_string(seen.disturb[wl]));
                        seen.disturb[wl] = d;
                    }
                }
            }
        }
    }
    if (media_)
        media_->auditInvariants(r);
}

InvariantReport
SsdDevice::auditInvariants()
{
    InvariantReport r;
    // Between a mid-program cut and powerCycle() the device is
    // legitimately inconsistent (torn wordlines, stale parity); audits
    // resume after recovery.
    if (ftl_.powerLost())
        return r;
    invariants_.runAll(r);
    ++auditRuns_;
    auditChecks_ += r.checksRun;
    if (!r.ok()) {
        auditViolations_ += r.violations.size();
        logError("invariant audit failed:\n" + r.describe());
    }
    return r;
}

void
SsdDevice::maybeAudit()
{
    const std::uint32_t interval = cfg_.invariants.auditInterval;
    if (interval == 0)
        return;
    if (++drainCount_ < interval)
        return;
    drainCount_ = 0;
    const InvariantReport r = auditInvariants();
    if (!r.ok() && cfg_.invariants.fatalOnViolation)
        panic("invariant audit failed (" +
              std::to_string(r.violations.size()) + " violation(s)); see "
              "the log for [id] subject: detail lines");
}

Tick
SsdDevice::drainTransactions()
{
    const Tick done = sched_.drain();
    if (health_) {
        // The drain is the single choke point every timed batch passes
        // through: sync the power state and move the health clock here
        // so pressure decays with simulated time, not call counts.
        health_->setPowerLost(ftl_.powerLost());
        health_->pump(done);
    }
    maybeAudit();
    return done;
}

void
SsdDevice::advanceClock(Tick now)
{
    for (flash::Chip &c : chips_)
        c.setNow(now);
}

Tick
SsdDevice::pumpMedia(Tick now)
{
    if (!media_)
        return now;
    advanceClock(now);
    std::vector<PhysOp> ops;
    const ScrubPassStats s = media_->pump(now, ops);
    if (!s.ran)
        return now;
    const Tick done = ops.empty() ? now : scheduleOps(ops, now);
    if (obs::TraceSink *sink = obs::TraceSink::global()) {
        const Tick s0 = std::max(now, mediaSpanEnd_);
        const Tick s1 = std::max(done, s0);
        mediaSpanEnd_ = s1;
        sink->span(sink->track("device", "media"), "scrub_pass", s0, s1,
                   {{"wordlines", std::to_string(s.wordlinesScanned), false},
                    {"scrub_reads", std::to_string(s.scrubReads), false},
                    {"refreshes", std::to_string(s.refreshes), false},
                    {"refresh_failures", std::to_string(s.refreshFailures),
                     false},
                    {"repairs", std::to_string(s.repairs), false},
                    {"uncorrectable", std::to_string(s.uncorrectable),
                     false}});
    }
    return done;
}

bool
SsdDevice::repairPage(Lpn lpn, Tick at)
{
    const auto loc = ftl_.lookup(lpn);
    if (!loc)
        return false;
    if (planeAlive(*loc))
        return true; // readable already, nothing to rebuild
    if (!rain_)
        return false;
    std::optional<BitVector> data = rain_->rebuildPage(*loc);
    if (!data && cfg_.storeData)
        return false;
    std::vector<PhysOp> ops;
    if (!ftl_.relocatePage(lpn, data ? &*data : nullptr, ops))
        return false;
    if (health_ && data)
        health_->noteRebuild();
    const Tick done = scheduleOps(ops, at);
    if (obs::TraceSink *sink = obs::TraceSink::global()) {
        const Tick s0 = std::max(at, mediaSpanEnd_);
        const Tick s1 = std::max(done, s0);
        mediaSpanEnd_ = s1;
        sink->span(sink->track("device", "media"), "rain_rebuild", s0, s1,
                   {{"lpn", std::to_string(lpn), false}});
    }
    return true;
}

FaultInjector &
SsdDevice::faultInjector()
{
    if (!injector_) {
        injector_ = std::make_unique<FaultInjector>(
            cfg_.geometry, cfg_.seed ^ 0xFA017EC7ull);
        installFaultHooks();
        ftl_.setFaultInjector(injector_.get());
    }
    return *injector_;
}

RecoveryReport
SsdDevice::powerCycle(Tick at)
{
    if (injector_)
        injector_->clearPowerLoss();
    advanceClock(at);
    std::vector<PhysOp> ops;
    RecoveryReport rep = ftl_.powerCycle(ops);
    // The stripe buffer is volatile controller RAM: rebuild parity from
    // flash before any post-recovery read can ask for a rebuild — and
    // before scheduling the recovery ops, whose drain may run a cadence
    // audit that would otherwise see the stale pre-cut buffer.
    if (rain_)
        rain_->recomputeAll();
    rep.scanTime = scheduleOps(ops, at) - at;
    ++powerCycles_;
    pagesScannedTotal_ += rep.pagesScanned;
    journalReplayedTotal_ += rep.journalRecords;
    mappingsRebuiltTotal_ += rep.mappingsRebuilt;
    if (obs::TraceSink *sink = obs::TraceSink::global()) {
        sink->span(sink->track("device", "recovery"), "power_cycle", at,
                   at + rep.scanTime,
                   {{"pages_scanned", std::to_string(rep.pagesScanned),
                     false},
                    {"journal_records", std::to_string(rep.journalRecords),
                     false},
                    {"mappings_rebuilt", std::to_string(rep.mappingsRebuilt),
                     false}});
    }
    return rep;
}

void
SsdDevice::installFaultHooks()
{
    for (std::size_t i = 0; i < chips_.size(); ++i) {
        const auto channel =
            static_cast<std::uint32_t>(i / cfg_.geometry.chipsPerChannel);
        const auto chip =
            static_cast<std::uint32_t>(i % cfg_.geometry.chipsPerChannel);
        FaultInjector *inj = injector_.get();
        auto to_phys = [channel, chip](const flash::ChipPageAddr &a) {
            flash::PhysPageAddr p;
            p.channel = channel;
            p.chip = chip;
            p.die = a.die;
            p.plane = a.plane;
            p.block = a.block;
            p.wordline = a.wordline;
            p.msb = a.msb;
            return p;
        };
        flash::ChipFaultHooks hooks;
        hooks.rberMultiplier = [inj, to_phys](const flash::ChipPageAddr &a) {
            return inj->rberMultiplier(to_phys(a));
        };
        hooks.programFails = [inj, to_phys](const flash::ChipPageAddr &a) {
            return inj->programShouldFail(to_phys(a));
        };
        hooks.eraseFails = [inj, to_phys](const flash::ChipPageAddr &a) {
            return inj->eraseShouldFail(to_phys(a));
        };
        hooks.disturbMultiplier = [inj,
                                   to_phys](const flash::ChipPageAddr &a) {
            return inj->disturbMultiplier(to_phys(a));
        };
        hooks.retentionMultiplier = [inj,
                                     to_phys](const flash::ChipPageAddr &a) {
            return inj->retentionMultiplier(to_phys(a));
        };
        chips_[i].setFaultHooks(std::move(hooks));
    }
}

void
SsdDevice::injectFault(const FaultSpec &spec)
{
    FaultInjector &inj = faultInjector();
    inj.addFault(spec);
    // Re-derive the plane-level state (dead flags, stuck sets) from the
    // injector so repeated injections stay idempotent.
    for (PlaneIndex p = 0; p < cfg_.geometry.planesTotal(); ++p) {
        const PlaneCoord c = planeCoord(cfg_.geometry, p);
        flash::Plane &pl = chipAt(c.channel, c.chip).plane(c.die, c.plane);
        pl.setDead(inj.planeDead(p));
        pl.setStuckBitlines(inj.stuckBitlines(p));
    }
}

std::size_t
SsdDevice::clearTransientFaults()
{
    if (!injector_)
        return 0;
    const std::size_t removed = injector_->clearTransient();
    // Re-derive the plane-level state from the thinned schedule, the
    // same way injectFault() applies it: stuck-bitline sets shrink and
    // permanent dead flags re-assert.
    for (PlaneIndex p = 0; p < cfg_.geometry.planesTotal(); ++p) {
        const PlaneCoord c = planeCoord(cfg_.geometry, p);
        flash::Plane &pl = chipAt(c.channel, c.chip).plane(c.die, c.plane);
        pl.setDead(injector_->planeDead(p));
        pl.setStuckBitlines(injector_->stuckBitlines(p));
    }
    return removed;
}

sched::DeviceTransaction
SsdDevice::toTransaction(const PhysOp &op, Tick ready_at) const
{
    const flash::FlashTiming &t = cfg_.timing;
    const Bytes page = cfg_.geometry.pageBytes;
    sched::DeviceTransaction tx;
    tx.addr = op.addr;
    tx.readyAt = ready_at;
    tx.cmdTicks = t.tCmdOverhead;
    switch (op.kind) {
      case PhysOp::Kind::kPageRead:
        // GC relocation reads map to the read class too: to the die a
        // read is a read, whoever issued it.
        tx.cls = sched::TxClass::kRead;
        tx.arrayTicks = op.addr.msb ? t.msbReadTime() : t.lsbReadTime();
        tx.xferOutTicks = t.transferTime(page);
        break;
      case PhysOp::Kind::kPageProgram:
        tx.cls = sched::TxClass::kProgram;
        tx.xferInTicks = t.transferTime(page);
        tx.arrayTicks = t.tProgram;
        break;
      case PhysOp::Kind::kBlockErase:
        tx.cls = sched::TxClass::kErase;
        tx.arrayTicks = t.tErase;
        break;
      case PhysOp::Kind::kScrubRead:
        // Patrol scan: same array sensing as a read, but the page stays
        // in the die (the on-die comparator checks it), so no channel
        // transfer out — and the background class for arbitration.
        tx.cls = sched::TxClass::kScrub;
        tx.arrayTicks = op.addr.msb ? t.msbReadTime() : t.lsbReadTime();
        break;
    }
    return tx;
}

sched::DeviceTransaction
SsdDevice::toTransaction(const ArrayJob &job, Tick ready_at) const
{
    const flash::FlashTiming &t = cfg_.timing;
    sched::DeviceTransaction tx;
    tx.cls = sched::TxClass::kParaBit;
    tx.addr = job.loc;
    tx.readyAt = ready_at;
    tx.cmdTicks = t.tCmdOverhead;
    if (job.xferInBytes > 0)
        tx.xferInTicks = t.transferTime(job.xferInBytes);
    tx.arrayTicks = t.senseTime(job.sroCount);
    if (job.xferOutBytes > 0)
        tx.xferOutTicks = t.transferTime(job.xferOutBytes);
    return tx;
}

sched::TxGroup
SsdDevice::submitOps(const std::vector<PhysOp> &ops, Tick ready_at)
{
    sched::TxGroup g;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const std::uint64_t id = sched_.submit(toTransaction(ops[i], ready_at));
        if (i == 0)
            g.lo = id;
        g.hi = id + 1;
    }
    return g;
}

sched::TxGroup
SsdDevice::submitArrayJobs(const std::vector<ArrayJob> &jobs, Tick ready_at)
{
    sched::TxGroup g;
    std::size_t i = 0;
    while (i < jobs.size()) {
        // Multi-plane batching: a run of consecutive jobs on distinct
        // planes of one die shares a single command issue and senses in
        // lockstep (every member pays the slowest member's array time).
        std::size_t run = 1;
        if (cfg_.sched.multiPlaneBatch) {
            const flash::PhysPageAddr &a = jobs[i].loc;
            while (i + run < jobs.size()) {
                const flash::PhysPageAddr &b = jobs[i + run].loc;
                if (b.channel != a.channel || b.chip != a.chip ||
                    b.die != a.die)
                    break;
                ++run;
            }
        }
        int maxSro = 0;
        for (std::size_t j = 0; j < run; ++j)
            maxSro = std::max(maxSro, jobs[i + j].sroCount);
        for (std::size_t j = 0; j < run; ++j) {
            sched::DeviceTransaction tx = toTransaction(jobs[i + j], ready_at);
            if (run > 1) {
                tx.arrayTicks = cfg_.timing.senseTime(maxSro);
                if (j > 0) {
                    // Followers ride the leader's command issue: no
                    // channel booking of their own, same start offset.
                    tx.extraDelay = tx.cmdTicks;
                    tx.cmdTicks = 0;
                }
            }
            const std::uint64_t id = sched_.submit(tx);
            if (g.empty())
                g.lo = id;
            g.hi = id + 1;
        }
        if (run > 1)
            sched_.noteBatch(run);
        i += run;
    }
    return g;
}

Tick
SsdDevice::scheduleOps(const std::vector<PhysOp> &ops, Tick ready_at)
{
    const sched::TxGroup g = submitOps(ops, ready_at);
    drainTransactions();
    return sched_.groupCompletion(g, ready_at);
}

Tick
SsdDevice::scheduleArrayJobs(const std::vector<ArrayJob> &jobs, Tick ready_at)
{
    const sched::TxGroup g = submitArrayJobs(jobs, ready_at);
    drainTransactions();
    return sched_.groupCompletion(g, ready_at);
}

Tick
SsdDevice::writePages(Lpn start, const std::vector<const BitVector *> &data,
                      Tick at)
{
    advanceClock(at);
    std::vector<PhysOp> ops;
    for (std::size_t i = 0; i < data.size(); ++i)
        ftl_.writePage(start + i, data[i], ops);
    const Tick done = scheduleOps(ops, at);
    pumpMedia(done);
    return done;
}

Tick
SsdDevice::readPages(Lpn start, std::size_t count, std::vector<BitVector> *out,
                     Tick at)
{
    advanceClock(at);
    std::vector<PhysOp> ops;
    for (std::size_t i = 0; i < count; ++i) {
        BitVector page = ftl_.readPage(start + i, ops);
        if (out)
            out->push_back(std::move(page));
    }
    const Tick done = scheduleOps(ops, at);
    pumpMedia(done);
    return done;
}

EnduranceStats
SsdDevice::endurance() const
{
    EnduranceStats e;
    const Bytes page = cfg_.geometry.pageBytes;
    // ftl_ is logically const here; counters are read-only.
    const Ftl &f = ftl_;
    e.hostBytes = f.hostPagesWritten() * page;
    e.reallocBytes = f.parabitPagesWritten() * page;
    e.gcBytes = f.gcPagesWritten() * page;
    e.blockErases = f.blockErases();
    return e;
}

double
SsdDevice::internalReadBandwidth() const
{
    // With cache read, sensing overlaps transfer; when enough chips
    // share a channel the bus saturates and per-channel throughput is
    // its raw rate.  A device with few chips per channel is
    // sensing-limited instead.
    const flash::FlashTiming &t = cfg_.timing;
    const double page = static_cast<double>(cfg_.geometry.pageBytes);
    const double per_chip_array =
        page / ticks::toSec(t.msbReadTime()); // worst-case page kind
    const double array_limit = per_chip_array *
                               cfg_.geometry.chipsPerChannel *
                               cfg_.geometry.diesPerChip *
                               cfg_.geometry.planesPerDie;
    const double bus_limit = t.channelBytesPerSec;
    const double per_channel = std::min(array_limit, bus_limit);
    return per_channel * cfg_.geometry.channels;
}

} // namespace parabit::ssd
