#include "ssd/ssd.hpp"

#include "common/logging.hpp"

namespace parabit::ssd {

SsdDevice::SsdDevice(const SsdConfig &cfg)
    : cfg_(cfg),
      chips_([&] {
          std::vector<flash::Chip> v;
          const std::uint32_t n = cfg.geometry.chips();
          v.reserve(n);
          for (std::uint32_t i = 0; i < n; ++i)
              v.emplace_back(cfg.geometry, cfg.storeData, cfg.errors,
                             cfg.seed + i);
          return v;
      }()),
      ftl_(cfg, chips_),
      channelTls_(cfg.geometry.channels),
      planeTls_(cfg.geometry.planesTotal())
{
}

FaultInjector &
SsdDevice::faultInjector()
{
    if (!injector_) {
        injector_ = std::make_unique<FaultInjector>(
            cfg_.geometry, cfg_.seed ^ 0xFA017EC7ull);
        installFaultHooks();
        ftl_.setFaultInjector(injector_.get());
    }
    return *injector_;
}

RecoveryReport
SsdDevice::powerCycle(Tick at)
{
    if (injector_)
        injector_->clearPowerLoss();
    std::vector<PhysOp> ops;
    RecoveryReport rep = ftl_.powerCycle(ops);
    rep.scanTime = scheduleOps(ops, at) - at;
    return rep;
}

void
SsdDevice::installFaultHooks()
{
    for (std::size_t i = 0; i < chips_.size(); ++i) {
        const auto channel =
            static_cast<std::uint32_t>(i / cfg_.geometry.chipsPerChannel);
        const auto chip =
            static_cast<std::uint32_t>(i % cfg_.geometry.chipsPerChannel);
        FaultInjector *inj = injector_.get();
        auto to_phys = [channel, chip](const flash::ChipPageAddr &a) {
            flash::PhysPageAddr p;
            p.channel = channel;
            p.chip = chip;
            p.die = a.die;
            p.plane = a.plane;
            p.block = a.block;
            p.wordline = a.wordline;
            p.msb = a.msb;
            return p;
        };
        flash::ChipFaultHooks hooks;
        hooks.rberMultiplier = [inj, to_phys](const flash::ChipPageAddr &a) {
            return inj->rberMultiplier(to_phys(a));
        };
        hooks.programFails = [inj, to_phys](const flash::ChipPageAddr &a) {
            return inj->programShouldFail(to_phys(a));
        };
        hooks.eraseFails = [inj, to_phys](const flash::ChipPageAddr &a) {
            return inj->eraseShouldFail(to_phys(a));
        };
        chips_[i].setFaultHooks(std::move(hooks));
    }
}

void
SsdDevice::injectFault(const FaultSpec &spec)
{
    FaultInjector &inj = faultInjector();
    inj.addFault(spec);
    // Re-derive the plane-level state (dead flags, stuck sets) from the
    // injector so repeated injections stay idempotent.
    for (PlaneIndex p = 0; p < cfg_.geometry.planesTotal(); ++p) {
        const PlaneCoord c = planeCoord(cfg_.geometry, p);
        flash::Plane &pl = chipAt(c.channel, c.chip).plane(c.die, c.plane);
        pl.setDead(inj.planeDead(p));
        pl.setStuckBitlines(inj.stuckBitlines(p));
    }
}

Timeline &
SsdDevice::channelTl(std::uint32_t channel)
{
    return channelTls_.at(channel);
}

Timeline &
SsdDevice::planeTl(const flash::PhysPageAddr &a)
{
    const std::size_t idx =
        ((static_cast<std::size_t>(a.channel) * cfg_.geometry.chipsPerChannel +
          a.chip) *
             cfg_.geometry.diesPerChip +
         a.die) *
            cfg_.geometry.planesPerDie +
        a.plane;
    return planeTls_.at(idx);
}

Tick
SsdDevice::scheduleOps(const std::vector<PhysOp> &ops, Tick ready_at)
{
    const flash::FlashTiming &t = cfg_.timing;
    const Bytes page = cfg_.geometry.pageBytes;
    Tick done = ready_at;
    for (const auto &op : ops) {
        Timeline &ch = channelTl(op.addr.channel);
        Timeline &die = planeTl(op.addr);
        Tick end = ready_at;
        switch (op.kind) {
          case PhysOp::Kind::kPageRead: {
            const Tick array = op.addr.msb ? t.msbReadTime() : t.lsbReadTime();
            const Tick a_start = die.reserve(ready_at + t.tCmdOverhead, array);
            const Tick x_start = ch.reserve(a_start + array,
                                            t.transferTime(page));
            end = x_start + t.transferTime(page);
            break;
          }
          case PhysOp::Kind::kPageProgram: {
            const Tick x_start = ch.reserve(ready_at + t.tCmdOverhead,
                                            t.transferTime(page));
            const Tick a_start = die.reserve(x_start + t.transferTime(page),
                                             t.tProgram);
            end = a_start + t.tProgram;
            break;
          }
          case PhysOp::Kind::kBlockErase: {
            const Tick a_start = die.reserve(ready_at + t.tCmdOverhead,
                                             t.tErase);
            end = a_start + t.tErase;
            break;
          }
        }
        done = std::max(done, end);
    }
    return done;
}

Tick
SsdDevice::scheduleArrayJobs(const std::vector<ArrayJob> &jobs, Tick ready_at)
{
    const flash::FlashTiming &t = cfg_.timing;
    Tick done = ready_at;
    for (const auto &job : jobs) {
        Timeline &die = planeTl(job.loc);
        Tick ready = ready_at + t.tCmdOverhead;
        if (job.xferInBytes > 0) {
            Timeline &ch = channelTl(job.loc.channel);
            const Tick x = t.transferTime(job.xferInBytes);
            ready = ch.reserve(ready, x) + x;
        }
        const Tick array = t.senseTime(job.sroCount);
        const Tick a_start = die.reserve(ready, array);
        Tick end = a_start + array;
        if (job.xferOutBytes > 0) {
            Timeline &ch = channelTl(job.loc.channel);
            const Tick x = t.transferTime(job.xferOutBytes);
            const Tick x_start = ch.reserve(end, x);
            end = x_start + x;
        }
        done = std::max(done, end);
    }
    return done;
}

Tick
SsdDevice::writePages(Lpn start, const std::vector<const BitVector *> &data,
                      Tick at)
{
    std::vector<PhysOp> ops;
    for (std::size_t i = 0; i < data.size(); ++i)
        ftl_.writePage(start + i, data[i], ops);
    return scheduleOps(ops, at);
}

Tick
SsdDevice::readPages(Lpn start, std::size_t count, std::vector<BitVector> *out,
                     Tick at)
{
    std::vector<PhysOp> ops;
    for (std::size_t i = 0; i < count; ++i) {
        BitVector page = ftl_.readPage(start + i, ops);
        if (out)
            out->push_back(std::move(page));
    }
    return scheduleOps(ops, at);
}

EnduranceStats
SsdDevice::endurance() const
{
    EnduranceStats e;
    const Bytes page = cfg_.geometry.pageBytes;
    // ftl_ is logically const here; counters are read-only.
    const Ftl &f = ftl_;
    e.hostBytes = f.hostPagesWritten() * page;
    e.reallocBytes = f.parabitPagesWritten() * page;
    e.gcBytes = f.gcPagesWritten() * page;
    e.blockErases = f.blockErases();
    return e;
}

double
SsdDevice::internalReadBandwidth() const
{
    // With cache read, sensing overlaps transfer; when enough chips
    // share a channel the bus saturates and per-channel throughput is
    // its raw rate.  A device with few chips per channel is
    // sensing-limited instead.
    const flash::FlashTiming &t = cfg_.timing;
    const double page = static_cast<double>(cfg_.geometry.pageBytes);
    const double per_chip_array =
        page / ticks::toSec(t.msbReadTime()); // worst-case page kind
    const double array_limit = per_chip_array *
                               cfg_.geometry.chipsPerChannel *
                               cfg_.geometry.diesPerChip *
                               cfg_.geometry.planesPerDie;
    const double bus_limit = t.channelBytesPerSec;
    const double per_channel = std::min(array_limit, bus_limit);
    return per_channel * cfg_.geometry.channels;
}

} // namespace parabit::ssd
