/**
 * @file
 * Resource timelines for greedy SSD scheduling.
 *
 * Channels, dies and the per-plane register files are modelled as
 * serially reusable resources: a Timeline tracks when the resource next
 * becomes free, and reserve() books an interval no earlier than both the
 * caller's ready time and the resource's availability.  Composing
 * timelines reproduces the classic SSD pipeline behaviour (die sensing
 * overlapping channel transfers, multi-chip interleaving on a shared
 * channel) without callback plumbing, and stays deterministic.
 */

#ifndef PARABIT_SSD_TIMELINE_HPP_
#define PARABIT_SSD_TIMELINE_HPP_

#include <algorithm>

#include "common/units.hpp"

namespace parabit::ssd {

/** One serially reusable resource. */
class Timeline
{
  public:
    /**
     * Book the resource for @p duration, starting no earlier than
     * @p earliest.  @return the start of the booked interval.
     */
    Tick
    reserve(Tick earliest, Tick duration)
    {
        const Tick start = std::max(earliest, nextFree_);
        nextFree_ = start + duration;
        bookedTicks_ += duration;
        return start;
    }

    /** When the resource next becomes free. */
    Tick nextFree() const { return nextFree_; }

    /** Total booked (busy) time over the resource's lifetime. */
    Tick bookedTicks() const { return bookedTicks_; }

    /**
     * Busy fraction over [0, horizon).  A zero horizon yields 0; booked
     * time past the horizon can push the ratio above 1.
     */
    double
    utilization(Tick horizon) const
    {
        if (horizon == 0)
        {
            return 0.0;
        }
        return static_cast<double>(bookedTicks_) /
               static_cast<double>(horizon);
    }

    void
    reset()
    {
        nextFree_ = 0;
        bookedTicks_ = 0;
    }

  private:
    Tick nextFree_ = 0;
    Tick bookedTicks_ = 0;
};

} // namespace parabit::ssd

#endif // PARABIT_SSD_TIMELINE_HPP_
