/**
 * @file
 * Endurance accounting (paper Section 5.4).
 *
 * ParaBit's pre-computation reallocation writes operand copies, which
 * consume program/erase budget that would otherwise serve host data.
 * With a rated budget of TBW terabytes written, the host-visible
 * endurance shrinks to
 *
 *   TBW_eff = TBW * host_bytes / (host_bytes + realloc_bytes + gc_bytes
 *                                 + refresh_bytes)
 *
 * which reproduces the paper's 600 -> 200.67 / 257.51 / 300 figures for
 * the bitmap / segmentation / encryption case studies (refresh_bytes is
 * zero there: the paper's model has no read-disturb/retention wear, so
 * the media scrubber never relocates anything).  When the opt-in
 * disturb/retention model is active, refresh-relocation traffic from
 * patrol scrubbing consumes P/E budget exactly like GC relocation and
 * is accounted in the same way.
 */

#ifndef PARABIT_SSD_ENDURANCE_HPP_
#define PARABIT_SSD_ENDURANCE_HPP_

#include <cstdint>

#include "common/units.hpp"

namespace parabit::ssd {

/** Write-traffic breakdown for endurance analysis. */
struct EnduranceStats
{
    Bytes hostBytes = 0;    ///< host-intended data
    Bytes reallocBytes = 0; ///< ParaBit operand reallocation traffic
    Bytes gcBytes = 0;      ///< garbage-collection relocation traffic
    Bytes refreshBytes = 0; ///< scrub-triggered refresh relocation
    std::uint64_t blockErases = 0;

    Bytes
    totalBytes() const
    {
        return hostBytes + reallocBytes + gcBytes + refreshBytes;
    }

    /** Write amplification seen by the flash array. */
    double
    writeAmplification() const
    {
        return hostBytes == 0 ? 1.0
                              : static_cast<double>(totalBytes()) /
                                    static_cast<double>(hostBytes);
    }

    /**
     * Host-visible endurance, in the same unit as @p rated_tbw, after
     * reallocation/GC overhead (see file comment).
     */
    double
    effectiveTbw(double rated_tbw) const
    {
        const Bytes total = totalBytes();
        if (total == 0)
            return rated_tbw;
        return rated_tbw * static_cast<double>(hostBytes) /
               static_cast<double>(total);
    }
};

} // namespace parabit::ssd

#endif // PARABIT_SSD_ENDURANCE_HPP_
