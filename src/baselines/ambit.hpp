/**
 * @file
 * Ambit-style in-DRAM bulk bitwise PIM model (the paper's PIM baseline,
 * Section 5.1).
 *
 * Ambit computes bitwise operations with sequences of row activations:
 * triple-row activation (TRA) performs majority, dual-contact cells give
 * NOT, and copies move operands into the designated compute rows.  Each
 * command round costs one activate-precharge window (tRAS + tRP).  The
 * per-operation round counts below follow the Ambit command sequences:
 * AND/OR/NAND/NOR need four rounds (two operand copies, one control-row
 * copy, one TRA+result), XOR/XNOR compose AND/OR/NOT for seven rounds,
 * and NOT is a single activation through the dual-contact row.
 *
 * The paper's configuration: 2 ranks, 16 banks, 256 subarrays, 16 KB row
 * buffers, tRCD/tRAS/tRP/tFAW = 13.75/35/13.75/30 ns, with at most 16 KB
 * of operand processed in parallel (power constraint), so larger
 * operands serialise into 16 KB slices.
 */

#ifndef PARABIT_BASELINES_AMBIT_HPP_
#define PARABIT_BASELINES_AMBIT_HPP_

#include "common/units.hpp"
#include "flash/op_sequences.hpp"

namespace parabit::baselines {

/** DRAM timing/shape parameters (paper Section 5.1 values). */
struct AmbitConfig
{
    double tRcdNs = 13.75;
    double tRasNs = 35.0;
    double tRpNs = 13.75;
    double tFawNs = 30.0;
    int ranks = 2;
    int banks = 16;
    int subarrays = 256;
    int rowsPerSubarray = 512;
    Bytes rowBytes = 16 * bytes::kKiB;
    /** Max operand bytes in flight (power constraint). */
    Bytes maxParallelBytes = 16 * bytes::kKiB;
};

/** Ambit latency model; see file comment. */
class AmbitModel
{
  public:
    explicit AmbitModel(const AmbitConfig &cfg = {}) : cfg_(cfg) {}

    /** Activate-precharge command rounds for @p op. */
    static int commandRounds(flash::BitwiseOp op);

    /** Seconds for one command round (tRAS + tRP). */
    double
    roundSeconds() const
    {
        return (cfg_.tRasNs + cfg_.tRpNs) * 1e-9;
    }

    /** Latency of @p op over one row-buffer-sized operand slice. */
    double
    sliceSeconds(flash::BitwiseOp op) const
    {
        return commandRounds(op) * roundSeconds();
    }

    /**
     * Latency of a bulk @p op over @p operand_bytes per operand; slices
     * beyond maxParallelBytes serialise.
     */
    double opSeconds(flash::BitwiseOp op, Bytes operand_bytes) const;

    /** DRAM capacity available to stage operands (64 GiB as configured,
     *  matching the paper's evaluation memory size). */
    Bytes
    capacityBytes() const
    {
        return static_cast<Bytes>(cfg_.ranks) * cfg_.banks * cfg_.subarrays *
               cfg_.rowsPerSubarray * cfg_.rowBytes;
    }

    const AmbitConfig &config() const { return cfg_; }

  private:
    AmbitConfig cfg_;
};

} // namespace parabit::baselines

#endif // PARABIT_BASELINES_AMBIT_HPP_
