#include "baselines/ambit.hpp"

namespace parabit::baselines {

int
AmbitModel::commandRounds(flash::BitwiseOp op)
{
    switch (op) {
      case flash::BitwiseOp::kAnd:
      case flash::BitwiseOp::kOr:
      case flash::BitwiseOp::kNand:
      case flash::BitwiseOp::kNor:
        // Two operand copies + control-row copy + TRA-and-result.
        return 4;
      case flash::BitwiseOp::kXor:
      case flash::BitwiseOp::kXnor:
        // Composition of AND/OR/NOT primitives.
        return 7;
      case flash::BitwiseOp::kNotLsb:
      case flash::BitwiseOp::kNotMsb:
        // One activation through the dual-contact row.
        return 1;
    }
    return 4;
}

double
AmbitModel::opSeconds(flash::BitwiseOp op, Bytes operand_bytes) const
{
    const Bytes slice = cfg_.maxParallelBytes;
    const std::uint64_t slices = (operand_bytes + slice - 1) / slice;
    return static_cast<double>(slices) * sliceSeconds(op);
}

} // namespace parabit::baselines
