#include "baselines/pipeline.hpp"

#include <algorithm>

namespace parabit::baselines {

namespace {

double
finish(Breakdown &b)
{
    b.totalSec = b.moveInSec + b.computeSec + b.moveOutSec + b.writebackSec;
    return b.totalSec;
}

} // namespace

Breakdown
PimPipeline::run(const BulkWork &work) const
{
    Breakdown b;
    b.moveInSec = link_.transferSeconds(work.bytesIn);
    for (const auto &g : work.ops) {
        const double per_op = ambit_.opSeconds(g.op, g.operandBytes);
        const std::uint64_t ops_per_chain =
            g.chainLength > 1 ? g.chainLength - 1 : 1;
        b.computeSec += per_op * static_cast<double>(ops_per_chain) *
                        static_cast<double>(g.instances);
    }
    b.moveOutSec = link_.transferSeconds(work.bytesOut);
    b.writebackSec = link_.transferSeconds(work.writebackBytes);
    finish(b);
    return b;
}

Breakdown
IscPipeline::run(const BulkWork &work) const
{
    Breakdown b;
    b.moveInSec = link_.transferSeconds(work.bytesIn);
    for (const auto &g : work.ops) {
        const std::uint32_t chain_ops =
            g.chainLength > 1 ? g.chainLength - 1 : 1;
        b.computeSec += isc_.chainSeconds(chain_ops, g.operandBytes) *
                        static_cast<double>(g.instances);
    }
    b.moveOutSec = link_.transferSeconds(work.bytesOut);
    b.writebackSec = link_.transferSeconds(work.writebackBytes);
    finish(b);
    return b;
}

Breakdown
ParaBitPipeline::run(const BulkWork &work) const
{
    Breakdown b;
    lastCost_ = core::BulkCost{};
    // Operands are already in flash: no move-in.  Computation runs in
    // the array; only results cross the interconnect.  Independent
    // instances of one group pack into the device's parallel rounds —
    // many small per-image operations fill whole stripes together.
    for (const auto &g : work.ops) {
        const Bytes packed = g.operandBytes * g.instances;
        core::BulkCost c;
        if (g.chainLength >= 2) {
            c = cost_.chain(g.op, g.chainLength, packed, mode_,
                            /*transfer_result=*/false, variant_,
                            g.lsbOnlyLayout
                                ? core::ChainStep::kDropIntoFreeMsb
                                : core::ChainStep::kRepack);
        } else {
            c = cost_.notOp(g.op == flash::BitwiseOp::kNotMsb, packed,
                            mode_, /*transfer_result=*/false);
        }
        lastCost_ += c;
        b.computeSec += c.seconds;
    }
    // Results persisted in-SSD program straight from the plane
    // registers (no channel transfer); results for the host stream over
    // the link.
    if (work.writebackBytes > 0) {
        const core::BulkCost wb = cost_.resultWriteback(work.writebackBytes);
        b.writebackSec = wb.seconds;
        lastCost_ += wb;
    }
    b.moveOutSec = link_.transferSeconds(work.bytesOut);
    if (pipelined_) {
        // "+Res-Move": computation and result movement overlap; the
        // longer of the two paths dominates.
        b.totalSec = std::max(b.computeSec + b.writebackSec, b.moveOutSec);
        // Keep the components for stacked-bar reporting.
        return b;
    }
    finish(b);
    return b;
}

} // namespace parabit::baselines
