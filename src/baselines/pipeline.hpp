/**
 * @file
 * End-to-end execution pipelines for the compared schemes.
 *
 * A workload is abstracted as a BulkWork: bytes to stage in, a set of
 * bulk bitwise operations (possibly chained), and result bytes out.
 * Each scheme evaluates the same BulkWork:
 *
 *  - PIM  (Ambit):   move operands SSD -> DRAM, compute in DRAM rows,
 *                    optionally write results back to the SSD;
 *  - ISC  (FPGA):    move operands SSD -> FPGA BRAM, stream through the
 *                    LUT array, optionally write back;
 *  - ParaBit family: compute inside the SSD (CostModel) and move only
 *                    results out, optionally pipelined with computation
 *                    (the paper's "+Res-Move" variants).
 *
 * The breakdown structure mirrors the stacked bars of Fig 14.
 */

#ifndef PARABIT_BASELINES_PIPELINE_HPP_
#define PARABIT_BASELINES_PIPELINE_HPP_

#include <cstdint>
#include <vector>

#include "baselines/ambit.hpp"
#include "baselines/interconnect.hpp"
#include "baselines/isc.hpp"
#include "parabit/cost_model.hpp"

namespace parabit::baselines {

/** One bulk operation group inside a workload. */
struct BulkOpGroup
{
    flash::BitwiseOp op = flash::BitwiseOp::kAnd;
    /** Bytes per operand of one chain instance. */
    Bytes operandBytes = 0;
    /** Operands per chain (2 = plain binary op). */
    std::uint32_t chainLength = 2;
    /** Number of independent chain instances. */
    std::uint64_t instances = 1;
    /**
     * Whether operands sit in the LSB-only layout (free MSB pages), so
     * pre-allocated chain steps need a single program; packed layouts
     * (both pages used) force a full re-pair per chain step.
     */
    bool lsbOnlyLayout = true;
};

/** Scheme-independent workload description. */
struct BulkWork
{
    Bytes bytesIn = 0;  ///< operand bytes that must reach the compute site
    Bytes bytesOut = 0; ///< result bytes the host needs back
    Bytes writebackBytes = 0; ///< result bytes persisted to the SSD
    std::vector<BulkOpGroup> ops;
};

/** Execution-time breakdown (Fig 14 stacked-bar components). */
struct Breakdown
{
    double moveInSec = 0;    ///< operand movement to the compute site
    double computeSec = 0;   ///< bitwise computation
    double moveOutSec = 0;   ///< result movement to the host
    double writebackSec = 0; ///< result persistence to the SSD
    double totalSec = 0;
};

/** PIM baseline (Ambit in DRAM behind the host interconnect). */
class PimPipeline
{
  public:
    PimPipeline(const AmbitModel &ambit, const Interconnect &link)
        : ambit_(ambit), link_(link)
    {}

    Breakdown run(const BulkWork &work) const;

  private:
    AmbitModel ambit_;
    Interconnect link_;
};

/** ISC baseline (FPGA near storage). */
class IscPipeline
{
  public:
    IscPipeline(const IscModel &isc, const Interconnect &link)
        : isc_(isc), link_(link)
    {}

    Breakdown run(const BulkWork &work) const;

  private:
    IscModel isc_;
    Interconnect link_;
};

/** ParaBit family: compute in flash, move only results. */
class ParaBitPipeline
{
  public:
    /**
     * @param cost in-flash cost model
     * @param link host interconnect for result movement
     * @param mode execution scheme
     * @param pipelined overlap computation with result movement
     *        (the "+Res-Move" variants)
     * @param variant location-free operand placement
     */
    ParaBitPipeline(const core::CostModel &cost, const Interconnect &link,
                    core::Mode mode, bool pipelined = true,
                    flash::LocFreeVariant variant =
                        flash::LocFreeVariant::kMsbLsb)
        : cost_(cost), link_(link), mode_(mode), pipelined_(pipelined),
          variant_(variant)
    {}

    Breakdown run(const BulkWork &work) const;

    /** The in-flash cost detail of the last run (senses, programs...). */
    const core::BulkCost &lastCost() const { return lastCost_; }

  private:
    core::CostModel cost_;
    Interconnect link_;
    core::Mode mode_;
    bool pipelined_;
    flash::LocFreeVariant variant_;
    mutable core::BulkCost lastCost_;
};

} // namespace parabit::baselines

#endif // PARABIT_BASELINES_PIPELINE_HPP_
