/**
 * @file
 * In-storage-computing baseline: Cosmos OpenSSD-style FPGA near the
 * drive (paper Sections 2.3, 5.1).
 *
 * The Zynq-7000 part provides 218,600 6-input LUTs at 100 MHz; a 6-LUT
 * can evaluate a chain of up to five two-input bitwise operations per
 * cycle when all six operands are available simultaneously.  Bulk
 * throughput is
 *
 *   LUTs x clock x utilisation   result bits per second.
 *
 * The utilisation factor folds in BRAM staging and routing overheads;
 * the default is calibrated to the paper's bitmap-index anchor (364
 * chained ANDs over 100 MB vectors in ~41 ms), which also reproduces
 * the Fig 13(b) ordering (ISC fastest on two 8 MB operands) and the
 * encryption compute share (<0.21% of total).  Left-fold chains over a
 * running accumulator are serially dependent, so chainSeconds() charges
 * one pass per operation; fusedChainSeconds() models the five-way
 * fusion available when operands stream together.
 */

#ifndef PARABIT_BASELINES_ISC_HPP_
#define PARABIT_BASELINES_ISC_HPP_

#include <cstdint>

#include "common/units.hpp"
#include "flash/op_sequences.hpp"

namespace parabit::baselines {

/** FPGA parameters (Zynq-7000 as in the Cosmos platform). */
struct IscConfig
{
    double clockHz = 100e6;
    std::uint64_t luts = 218600;
    /** Max two-input ops foldable into one 6-LUT pass (fusion). */
    int opsPerLutPass = 5;
    /** Effective LUT-array utilisation on streamed data. */
    double utilisation = 0.325;
    /** Single-pass latency floor (one pipeline traversal). */
    double passLatencySec = 10e-9;
};

/** ISC/FPGA compute-latency model; see file comment. */
class IscModel
{
  public:
    explicit IscModel(const IscConfig &cfg = {}) : cfg_(cfg) {}

    /** Result bits produced per second at full streaming. */
    double
    bitsPerSecond() const
    {
        return static_cast<double>(cfg_.luts) * cfg_.clockHz *
               cfg_.utilisation;
    }

    /** Latency of one bulk op over @p operand_bytes per operand. */
    double
    opSeconds(flash::BitwiseOp op, Bytes operand_bytes) const
    {
        (void)op; // every two-input op costs one LUT pass
        const double bits = static_cast<double>(operand_bytes) * 8.0;
        return std::max(cfg_.passLatencySec, bits / bitsPerSecond());
    }

    /**
     * Latency of a left-fold chain of @p num_ops ops over
     * @p operand_bytes operands.  Serial dependence on the accumulator
     * forbids fusion: one pass per operation.
     */
    double
    chainSeconds(std::uint32_t num_ops, Bytes operand_bytes) const
    {
        const double bits = static_cast<double>(operand_bytes) * 8.0;
        return std::max(cfg_.passLatencySec,
                        static_cast<double>(num_ops) * bits /
                            bitsPerSecond());
    }

    /**
     * Latency of a fusable expression of @p num_ops ops whose operands
     * all stream simultaneously: up to opsPerLutPass ops per pass.
     */
    double
    fusedChainSeconds(std::uint32_t num_ops, Bytes operand_bytes) const
    {
        const std::uint64_t passes =
            (num_ops + cfg_.opsPerLutPass - 1) /
            static_cast<std::uint32_t>(cfg_.opsPerLutPass);
        const double bits = static_cast<double>(operand_bytes) * 8.0;
        return std::max(cfg_.passLatencySec,
                        static_cast<double>(passes) * bits / bitsPerSecond());
    }

    const IscConfig &config() const { return cfg_; }

  private:
    IscConfig cfg_;
};

} // namespace parabit::baselines

#endif // PARABIT_BASELINES_ISC_HPP_
