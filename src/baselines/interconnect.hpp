/**
 * @file
 * Host interconnect model (PCIe Gen3 x4, the paper's Section 3 setup).
 *
 * The paper measures storage-to-memory movement on a Samsung 970 PRO
 * behind PCIe Gen3 x4 with logical addresses remapped sequentially, i.e.
 * the device streams at its peak rate and the link efficiency decides
 * throughput.  We model the link as raw lane bandwidth x protocol
 * efficiency; the default efficiency is calibrated so that the paper's
 * 144 GB (200,000 pre-processed images) move in ~43.9 s (Fig 4), and the
 * ISC attachment point gets a slightly higher efficiency matching its
 * 41.8 s on the same volume.
 */

#ifndef PARABIT_BASELINES_INTERCONNECT_HPP_
#define PARABIT_BASELINES_INTERCONNECT_HPP_

#include "common/units.hpp"

namespace parabit::baselines {

/** Link parameters; defaults are PCIe Gen3 x4. */
struct InterconnectConfig
{
    int lanes = 4;
    /** Payload bandwidth per lane after 128b/130b encoding, bytes/s. */
    double laneBytesPerSec = 0.9846e9;
    /** Protocol/DMA efficiency on bulk sequential transfers. */
    double efficiency = 0.833;

    /** The ISC platform's direct attachment (paper Section 3). */
    static InterconnectConfig
    iscAttachment()
    {
        InterconnectConfig c;
        c.efficiency = 0.875;
        return c;
    }
};

/** Bulk-transfer time model; see file comment. */
class Interconnect
{
  public:
    explicit Interconnect(const InterconnectConfig &cfg = {}) : cfg_(cfg) {}

    /** Effective bulk bandwidth in bytes/s. */
    double
    bandwidth() const
    {
        return cfg_.lanes * cfg_.laneBytesPerSec * cfg_.efficiency;
    }

    /** Seconds to move @p n bytes. */
    double
    transferSeconds(Bytes n) const
    {
        return static_cast<double>(n) / bandwidth();
    }

    const InterconnectConfig &config() const { return cfg_; }

  private:
    InterconnectConfig cfg_;
};

} // namespace parabit::baselines

#endif // PARABIT_BASELINES_INTERCONNECT_HPP_
