/**
 * @file
 * Whole-device invariant framework: named, registered invariant suites
 * plus the always-on check macro.
 *
 * Two tiers of machine-checked correctness, both routed through
 * common/logging.hpp:
 *
 *  - PARABIT_CHECK(cond, msg): an always-compiled precondition check
 *    (bounds, size agreement) that panics on failure.  It replaces bare
 *    assert() in code whose Release-mode behaviour must stay checked —
 *    an out-of-range BitVector access in a bench is a bug whether or
 *    not NDEBUG was set.
 *
 *  - PARABIT_INVARIANT(cond, msg): a hot-path assertion compiled in
 *    only when the PARABIT_INVARIANTS CMake option is ON
 *    (-DPARABIT_INVARIANTS=ON defines PARABIT_INVARIANTS_ENABLED).
 *    With the option OFF the macro expands to nothing, so the default
 *    build is byte-identical to one that never heard of it.
 *
 * On top of the macros sits the audit layer: each subsystem contributes
 * a *suite* — a named callable that appends structured Violations to an
 * InvariantReport — and the device registers its suites with an
 * InvariantRegistry it audits at a configurable drain cadence
 * (ssd::InvariantConfig).  Suites are plain always-compiled code:
 * negative tests corrupt state and assert the matching violation ID in
 * any build, and the parabit-model bounded checker asserts every
 * registered suite along each explored path.
 */

#ifndef PARABIT_COMMON_INVARIANT_HPP_
#define PARABIT_COMMON_INVARIANT_HPP_

#include <functional>
#include <string>
#include <vector>

namespace parabit {

/** Report a failed PARABIT_CHECK/PARABIT_INVARIANT; panics (never
 *  returns).  Out of line so the macro's expansion stays small. */
[[noreturn]] void checkFailed(const char *file, int line, const char *expr,
                              const std::string &msg);

/** One audited invariant that did not hold. */
struct Violation
{
    /** Stable identifier, dotted like metric names — e.g.
     *  "ftl.map.bijection" — so tests and CI triage match on it. */
    std::string id;
    /** What was being audited (an LPN, a resource, a stripe...). */
    std::string subject;
    /** Expected-vs-actual detail, rendered for a human. */
    std::string detail;
};

/** Aggregate outcome of running one or more invariant suites. */
struct InvariantReport
{
    std::vector<Violation> violations;
    /** Individual predicate evaluations (a zero count after an audit
     *  means the audit checked nothing — itself suspicious). */
    std::uint64_t checksRun = 0;
    /** Suites executed. */
    std::uint64_t suitesRun = 0;

    bool ok() const { return violations.empty(); }

    /** Count one evaluated predicate; @return @p held unchanged so
     *  audits can write `if (!r.check(cond)) r.fail(...)`. */
    bool
    check(bool held)
    {
        ++checksRun;
        return held;
    }

    void
    fail(std::string id, std::string subject, std::string detail)
    {
        violations.push_back(
            {std::move(id), std::move(subject), std::move(detail)});
    }

    /** True when some violation carries @p id (negative tests). */
    bool has(const std::string &id) const;

    /** One line per violation, "[id] subject: detail". */
    std::string describe() const;
};

/**
 * Named invariant suites, run together or individually.  Registration
 * order is preserved (audits are deterministic like everything else).
 */
class InvariantRegistry
{
  public:
    using Suite = std::function<void(InvariantReport &)>;

    /** Register @p suite under @p name (e.g. "ftl", "sched");
     *  re-registering a name replaces the previous suite. */
    void registerSuite(const std::string &name, Suite suite);

    /** Run every registered suite into @p r. */
    void runAll(InvariantReport &r) const;

    /** Run just @p name; no-op (and returns false) when unknown. */
    bool runSuite(const std::string &name, InvariantReport &r) const;

    std::vector<std::string> names() const;
    std::size_t size() const { return suites_.size(); }

  private:
    std::vector<std::pair<std::string, Suite>> suites_;
};

} // namespace parabit

/** Always-on check; panics through common/logging.hpp on failure. */
#define PARABIT_CHECK(cond, msg)                                              \
    do {                                                                      \
        if (!(cond))                                                          \
            ::parabit::checkFailed(__FILE__, __LINE__, #cond, (msg));         \
    } while (0)

/** Hot-path assertion, compiled only with -DPARABIT_INVARIANTS=ON. */
#ifdef PARABIT_INVARIANTS_ENABLED
#define PARABIT_INVARIANT(cond, msg) PARABIT_CHECK(cond, msg)
#else
#define PARABIT_INVARIANT(cond, msg)                                          \
    do {                                                                      \
    } while (0)
#endif

#endif // PARABIT_COMMON_INVARIANT_HPP_
