#include "common/stats.hpp"

#include <cassert>
#include <sstream>

namespace parabit {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    assert(hi > lo && buckets > 0);
}

void
Histogram::sample(double v)
{
    ++total_;
    if (v < lo_) {
        ++underflow_;
    } else if (v >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((v - lo_) / width_);
        if (idx >= counts_.size())
            idx = counts_.size() - 1; // guard FP edge at hi_
        ++counts_[idx];
    }
}

double
Histogram::bucketLo(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

std::string
Histogram::summary() const
{
    std::ostringstream os;
    os << "hist[" << lo_ << "," << hi_ << ") n=" << total_;
    if (underflow_)
        os << " under=" << underflow_;
    if (overflow_)
        os << " over=" << overflow_;
    return os.str();
}

} // namespace parabit
