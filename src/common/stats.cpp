#include "common/stats.hpp"

#include <cmath>
#include <sstream>

#include "common/invariant.hpp"

namespace parabit {

double
SampleSeries::percentile(double p) const
{
    if (samples_.empty()) {
        return 0.0;
    }
    std::vector<double> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    // Nearest-rank: ceil(p/100 * n), clamped to [1, n].
    const double n = static_cast<double>(sorted.size());
    auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
    if (rank < 1)
        rank = 1;
    if (rank > sorted.size())
        rank = sorted.size();
    return sorted[rank - 1];
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    PARABIT_CHECK(hi > lo && buckets > 0,
                  "Histogram: bad range [" + std::to_string(lo) + ", " +
                      std::to_string(hi) + ") / " + std::to_string(buckets) +
                      " buckets");
}

void
Histogram::sample(double v)
{
    ++total_;
    if (v < lo_) {
        ++underflow_;
    } else if (v >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((v - lo_) / width_);
        if (idx >= counts_.size())
            idx = counts_.size() - 1; // guard FP edge at hi_
        ++counts_[idx];
    }
}

double
Histogram::bucketLo(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
    total_ = 0;
}

std::string
Histogram::summary() const
{
    std::ostringstream os;
    os << "hist[" << lo_ << "," << hi_ << ") n=" << total_;
    if (underflow_)
        os << " under=" << underflow_;
    if (overflow_)
        os << " over=" << overflow_;
    return os.str();
}

} // namespace parabit
