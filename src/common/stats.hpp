/**
 * @file
 * Lightweight statistics accumulators used by the simulator and benches.
 */

#ifndef PARABIT_COMMON_STATS_HPP_
#define PARABIT_COMMON_STATS_HPP_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace parabit {

/** Streaming scalar accumulator: count / sum / min / max / mean. */
class ScalarStat
{
  public:
    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    void
    reset()
    {
        count_ = 0;
        sum_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Sample recorder for percentile queries (latency p50/p99).  Keeps every
 * sample, so callers gate recording behind an opt-in flag for
 * long-running simulations.
 */
class SampleSeries
{
  public:
    void
    sample(double v)
    {
        samples_.push_back(v);
        scalar_.sample(v);
    }

    std::uint64_t count() const { return scalar_.count(); }
    double mean() const { return scalar_.mean(); }
    double max() const { return scalar_.max(); }

    /** Nearest-rank percentile; @p p in [0, 100].  0 when empty. */
    double percentile(double p) const;

    void
    reset()
    {
        samples_.clear();
        scalar_.reset();
    }

  private:
    std::vector<double> samples_;
    ScalarStat scalar_;
};

/** Fixed-width histogram over [lo, hi) with overflow/underflow buckets. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void sample(double v);

    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }

    /** Lower edge of bucket @p i. */
    double bucketLo(std::size_t i) const;

    /** Render a terse textual summary for bench output. */
    std::string summary() const;

  private:
    double lo_, hi_, width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace parabit

#endif // PARABIT_COMMON_STATS_HPP_
