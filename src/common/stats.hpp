/**
 * @file
 * Lightweight statistics accumulators used by the simulator and benches.
 */

#ifndef PARABIT_COMMON_STATS_HPP_
#define PARABIT_COMMON_STATS_HPP_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace parabit {

/** Streaming scalar accumulator: count / sum / min / max / mean. */
class ScalarStat
{
  public:
    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    void
    reset()
    {
        count_ = 0;
        sum_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Sample recorder for percentile queries (latency p50/p99).
 *
 * By default every sample is kept, so percentiles are exact; callers
 * gate recording behind an opt-in flag for long-running simulations.
 * Alternatively, constructing with a cap bounds memory via reservoir
 * sampling (Algorithm R): below the cap percentiles stay exact, above
 * it each of the n samples seen has probability cap/n of being in the
 * reservoir, which keeps the percentile estimates statistically sound.
 * The reservoir stream is seeded from a fixed constant, so a capped
 * series is as deterministic as an uncapped one.
 */
class SampleSeries
{
  public:
    SampleSeries() = default;
    /** @p cap 0 keeps every sample (identical to default-construction). */
    explicit SampleSeries(std::size_t cap) : cap_(cap) {}

    void
    sample(double v)
    {
        scalar_.sample(v);
        if (cap_ == 0 || samples_.size() < cap_) {
            samples_.push_back(v);
            return;
        }
        // Algorithm R: replace a random slot with probability cap/n.
        const std::uint64_t n = scalar_.count();
        const std::uint64_t slot = reservoirRng_.below(n);
        if (slot < cap_)
            samples_[static_cast<std::size_t>(slot)] = v;
    }

    /** Total samples observed (not the reservoir occupancy). */
    std::uint64_t count() const { return scalar_.count(); }
    /** Samples currently held (== count() until the cap is hit). */
    std::size_t stored() const { return samples_.size(); }
    std::size_t cap() const { return cap_; }
    double mean() const { return scalar_.mean(); }
    double max() const { return scalar_.max(); }

    /** Nearest-rank percentile over the held samples; @p p in
     *  [0, 100].  0 when empty; exact while count() <= cap. */
    double percentile(double p) const;

    void
    reset()
    {
        samples_.clear();
        scalar_.reset();
        reservoirRng_ = Rng(kReservoirSeed);
    }

  private:
    /** Fixed seed: capped series must replay identically run-to-run. */
    static constexpr std::uint64_t kReservoirSeed = 0x0B5E55ED5EEDull;

    std::size_t cap_ = 0;
    std::vector<double> samples_;
    ScalarStat scalar_;
    Rng reservoirRng_{kReservoirSeed};
};

/** Fixed-width histogram over [lo, hi) with overflow/underflow buckets. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void sample(double v);

    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }

    /** Lower edge of bucket @p i. */
    double bucketLo(std::size_t i) const;

    /** Render a terse textual summary for bench output. */
    std::string summary() const;

    /** Zero every bucket and the under/overflow tallies; the bucket
     *  layout (lo/hi/width) is preserved. */
    void reset();

  private:
    double lo_, hi_, width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace parabit

#endif // PARABIT_COMMON_STATS_HPP_
