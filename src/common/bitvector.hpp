/**
 * @file
 * Packed bit vector with bulk bitwise operations.
 *
 * BitVector is the functional data type carried by flash pages, workload
 * generators and the host-side golden models.  It stores bits LSB-first in
 * 64-bit words and provides the seven bitwise operations that ParaBit
 * accelerates, plus population count and slicing helpers used by the
 * workloads.
 */

#ifndef PARABIT_COMMON_BITVECTOR_HPP_
#define PARABIT_COMMON_BITVECTOR_HPP_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace parabit {

/**
 * A densely packed, dynamically sized vector of bits.
 *
 * Bits beyond size() inside the last storage word are kept at zero as a
 * class invariant so that equality, popcount and hashing can operate on
 * whole words.
 */
class BitVector
{
  public:
    BitVector() = default;

    /** Construct @p n bits, all initialised to @p value. */
    explicit BitVector(std::size_t n, bool value = false);

    /**
     * Construct from a 0/1 string, most-significant-looking char first is
     * NOT implied: bit i of the vector is s[i].  Any character other than
     * '0' is treated as 1 only if it is '1'; other characters throw.
     */
    static BitVector fromString(const std::string &s);

    /** Number of bits held. */
    std::size_t size() const { return numBits_; }
    bool empty() const { return numBits_ == 0; }

    /** Read bit @p i (bounds-checked with assert in debug builds). */
    bool get(std::size_t i) const;
    /** Write bit @p i. */
    void set(std::size_t i, bool v);

    /** Resize to @p n bits; new bits are zero. */
    void resize(std::size_t n);

    /** Set every bit to @p v. */
    void fill(bool v);

    /** Number of one-bits. */
    std::size_t popcount() const;

    /** Extract bits [pos, pos+len) as a new vector. */
    BitVector slice(std::size_t pos, std::size_t len) const;

    /** Overwrite bits [pos, pos+other.size()) with @p other. */
    void assign(std::size_t pos, const BitVector &other);

    /** @name In-place bulk bitwise operations (sizes must match). */
    /// @{
    BitVector &operator&=(const BitVector &rhs);
    BitVector &operator|=(const BitVector &rhs);
    BitVector &operator^=(const BitVector &rhs);
    /** Flip every bit. */
    void invert();
    /// @}

    friend BitVector operator&(BitVector lhs, const BitVector &rhs)
    { lhs &= rhs; return lhs; }
    friend BitVector operator|(BitVector lhs, const BitVector &rhs)
    { lhs |= rhs; return lhs; }
    friend BitVector operator^(BitVector lhs, const BitVector &rhs)
    { lhs ^= rhs; return lhs; }
    friend BitVector operator~(BitVector v) { v.invert(); return v; }

    bool operator==(const BitVector &rhs) const;
    bool operator!=(const BitVector &rhs) const { return !(*this == rhs); }

    /** Render as a 0/1 string, bit 0 first. */
    std::string toString() const;

    /** Direct word access for fast packing (word i holds bits 64i..64i+63). */
    const std::vector<std::uint64_t> &words() const { return words_; }
    std::vector<std::uint64_t> &words() { return words_; }

    /** Re-establish the invariant after external word mutation. */
    void maskTail();

  private:
    static std::size_t wordsFor(std::size_t bits) { return (bits + 63) / 64; }

    std::size_t numBits_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace parabit

#endif // PARABIT_COMMON_BITVECTOR_HPP_
