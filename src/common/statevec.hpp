/**
 * @file
 * StateVec: the paper's four-state logic vector L(X) = x1 x2 x3 x4.
 *
 * The MICRO'21 ParaBit paper reasons about the latching circuit using a
 * compact notation: the logic value at a circuit node X is written
 * L(X) = x1 x2 x3 x4, where xi is the voltage (0 = low, 1 = high) that
 * node X would take if the MLC cell currently being sensed were in state
 * E, S1, S2 or S3 respectively.  StateVec implements exactly this algebra
 * (bitwise AND / NOT over the four positions), which lets the latch
 * circuit model and the unit tests mirror the paper's Tables 2-5 and
 * Figures 2, 3, 5, 6 symbol for symbol.
 */

#ifndef PARABIT_COMMON_STATEVEC_HPP_
#define PARABIT_COMMON_STATEVEC_HPP_

#include <cstdint>
#include <string>

namespace parabit {

/**
 * Four-position logic vector over the MLC states {E, S1, S2, S3}.
 *
 * Internally the four bits are packed into the low nibble of a byte with
 * bit 3 = x1 (state E) down to bit 0 = x4 (state S3), so that the string
 * rendering matches the paper's left-to-right order.
 */
class StateVec
{
  public:
    constexpr StateVec() : bits_(0) {}

    /** Construct from four explicit positions (x1 = E ... x4 = S3). */
    constexpr StateVec(bool x1, bool x2, bool x3, bool x4)
        : bits_(static_cast<std::uint8_t>((x1 << 3) | (x2 << 2) |
                                          (x3 << 1) | (x4 << 0)))
    {}

    /** Parse a 4-character 0/1 string such as "0111". */
    static constexpr StateVec
    fromString(const char (&s)[5])
    {
        return StateVec(s[0] == '1', s[1] == '1', s[2] == '1', s[3] == '1');
    }

    /** Value at state index 0..3 == E,S1,S2,S3. */
    constexpr bool
    at(int state) const
    {
        return (bits_ >> (3 - state)) & 1u;
    }

    constexpr StateVec
    operator&(StateVec rhs) const
    {
        return StateVec(static_cast<std::uint8_t>(bits_ & rhs.bits_));
    }

    constexpr StateVec
    operator|(StateVec rhs) const
    {
        return StateVec(static_cast<std::uint8_t>(bits_ | rhs.bits_));
    }

    /** Bitwise complement over the four positions. */
    constexpr StateVec
    operator~() const
    {
        return StateVec(static_cast<std::uint8_t>(~bits_ & 0x0Fu));
    }

    constexpr bool operator==(const StateVec &) const = default;

    /** Render as the paper's "x1x2x3x4" string, e.g. "0111". */
    std::string
    toString() const
    {
        std::string s(4, '0');
        for (int i = 0; i < 4; ++i)
            if (at(i))
                s[static_cast<std::size_t>(i)] = '1';
        return s;
    }

    constexpr std::uint8_t raw() const { return bits_; }

  private:
    explicit constexpr StateVec(std::uint8_t raw) : bits_(raw) {}

    std::uint8_t bits_;
};

namespace statevec {

inline constexpr StateVec kAllZero{false, false, false, false};
inline constexpr StateVec kAllOne{true, true, true, true};

} // namespace statevec

} // namespace parabit

#endif // PARABIT_COMMON_STATEVEC_HPP_
