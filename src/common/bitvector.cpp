#include "common/bitvector.hpp"

#include <bit>
#include <stdexcept>

#include "common/invariant.hpp"

namespace parabit {

BitVector::BitVector(std::size_t n, bool value)
    : numBits_(n), words_(wordsFor(n), value ? ~std::uint64_t{0} : 0)
{
    maskTail();
}

BitVector
BitVector::fromString(const std::string &s)
{
    BitVector v(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '1') {
            v.set(i, true);
        } else if (s[i] != '0') {
            throw std::invalid_argument("BitVector::fromString: bad char");
        }
    }
    return v;
}

bool
BitVector::get(std::size_t i) const
{
    PARABIT_CHECK(i < numBits_, "BitVector::get: bit " + std::to_string(i) +
                                    " of " + std::to_string(numBits_));
    return (words_[i / 64] >> (i % 64)) & 1u;
}

void
BitVector::set(std::size_t i, bool v)
{
    PARABIT_CHECK(i < numBits_, "BitVector::set: bit " + std::to_string(i) +
                                    " of " + std::to_string(numBits_));
    const std::uint64_t mask = std::uint64_t{1} << (i % 64);
    if (v)
        words_[i / 64] |= mask;
    else
        words_[i / 64] &= ~mask;
}

void
BitVector::resize(std::size_t n)
{
    numBits_ = n;
    words_.resize(wordsFor(n), 0);
    maskTail();
}

void
BitVector::fill(bool v)
{
    for (auto &w : words_)
        w = v ? ~std::uint64_t{0} : 0;
    maskTail();
}

std::size_t
BitVector::popcount() const
{
    std::size_t n = 0;
    for (auto w : words_)
        n += static_cast<std::size_t>(std::popcount(w));
    return n;
}

BitVector
BitVector::slice(std::size_t pos, std::size_t len) const
{
    PARABIT_CHECK(pos + len <= numBits_,
                  "BitVector::slice: [" + std::to_string(pos) + ", " +
                      std::to_string(pos + len) + ") of " +
                      std::to_string(numBits_));
    BitVector out(len);
    for (std::size_t i = 0; i < len; ++i)
        out.set(i, get(pos + i));
    return out;
}

void
BitVector::assign(std::size_t pos, const BitVector &other)
{
    PARABIT_CHECK(pos + other.size() <= numBits_,
                  "BitVector::assign: [" + std::to_string(pos) + ", " +
                      std::to_string(pos + other.size()) + ") of " +
                      std::to_string(numBits_));
    for (std::size_t i = 0; i < other.size(); ++i)
        set(pos + i, other.get(i));
}

BitVector &
BitVector::operator&=(const BitVector &rhs)
{
    PARABIT_CHECK(numBits_ == rhs.numBits_,
                  "BitVector::operator&=: size " + std::to_string(numBits_) +
                      " vs " + std::to_string(rhs.numBits_));
    for (std::size_t i = 0; i < words_.size(); ++i)
        words_[i] &= rhs.words_[i];
    return *this;
}

BitVector &
BitVector::operator|=(const BitVector &rhs)
{
    PARABIT_CHECK(numBits_ == rhs.numBits_,
                  "BitVector::operator|=: size " + std::to_string(numBits_) +
                      " vs " + std::to_string(rhs.numBits_));
    for (std::size_t i = 0; i < words_.size(); ++i)
        words_[i] |= rhs.words_[i];
    return *this;
}

BitVector &
BitVector::operator^=(const BitVector &rhs)
{
    PARABIT_CHECK(numBits_ == rhs.numBits_,
                  "BitVector::operator^=: size " + std::to_string(numBits_) +
                      " vs " + std::to_string(rhs.numBits_));
    for (std::size_t i = 0; i < words_.size(); ++i)
        words_[i] ^= rhs.words_[i];
    return *this;
}

void
BitVector::invert()
{
    for (auto &w : words_)
        w = ~w;
    maskTail();
}

bool
BitVector::operator==(const BitVector &rhs) const
{
    return numBits_ == rhs.numBits_ && words_ == rhs.words_;
}

std::string
BitVector::toString() const
{
    std::string s(numBits_, '0');
    for (std::size_t i = 0; i < numBits_; ++i)
        if (get(i))
            s[i] = '1';
    return s;
}

void
BitVector::maskTail()
{
    const std::size_t rem = numBits_ % 64;
    if (rem != 0 && !words_.empty())
        words_.back() &= (std::uint64_t{1} << rem) - 1;
}

} // namespace parabit
