#include "common/logging.hpp"

#include <cstdio>
#include <cstdlib>

namespace parabit {

namespace {

LogLevel g_level = LogLevel::kWarn;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level < g_level)
        return;
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "[FATAL] %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "[PANIC] %s\n", msg.c_str());
    std::abort();
}

} // namespace parabit
