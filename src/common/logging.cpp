#include "common/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace parabit {

namespace {

LogLevel g_level = LogLevel::kWarn;
LogSink g_sink;

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

LogSink
setLogSink(LogSink sink)
{
    LogSink prev = std::move(g_sink);
    g_sink = std::move(sink);
    return prev;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level < g_level)
        return;
    if (g_sink) {
        g_sink(level, msg);
        return;
    }
    std::fprintf(stderr, "[%s] %s\n", logLevelName(level), msg.c_str());
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "[FATAL] %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "[PANIC] %s\n", msg.c_str());
    std::abort();
}

} // namespace parabit
