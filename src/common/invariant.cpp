#include "common/invariant.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace parabit {

void
checkFailed(const char *file, int line, const char *expr,
            const std::string &msg)
{
    std::ostringstream os;
    os << "check failed at " << file << ":" << line << ": (" << expr << ") "
       << msg;
    panic(os.str());
}

bool
InvariantReport::has(const std::string &id) const
{
    for (const Violation &v : violations)
        if (v.id == id)
            return true;
    return false;
}

std::string
InvariantReport::describe() const
{
    std::ostringstream os;
    for (const Violation &v : violations)
        os << "[" << v.id << "] " << v.subject << ": " << v.detail << "\n";
    return os.str();
}

void
InvariantRegistry::registerSuite(const std::string &name, Suite suite)
{
    for (auto &s : suites_) {
        if (s.first == name) {
            s.second = std::move(suite);
            return;
        }
    }
    suites_.emplace_back(name, std::move(suite));
}

void
InvariantRegistry::runAll(InvariantReport &r) const
{
    for (const auto &s : suites_) {
        s.second(r);
        ++r.suitesRun;
    }
}

bool
InvariantRegistry::runSuite(const std::string &name, InvariantReport &r) const
{
    for (const auto &s : suites_) {
        if (s.first == name) {
            s.second(r);
            ++r.suitesRun;
            return true;
        }
    }
    return false;
}

std::vector<std::string>
InvariantRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(suites_.size());
    for (const auto &s : suites_)
        out.push_back(s.first);
    return out;
}

} // namespace parabit
