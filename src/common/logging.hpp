/**
 * @file
 * Minimal logging and error-reporting helpers.
 *
 * Follows the gem5 convention: fatal() is for user/configuration errors
 * that make continuing impossible; panic() is for internal invariant
 * violations (i.e. bugs in this library).
 */

#ifndef PARABIT_COMMON_LOGGING_HPP_
#define PARABIT_COMMON_LOGGING_HPP_

#include <string>

namespace parabit {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError };

/** Global log threshold; messages below it are suppressed. */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** Emit a log line to stderr if @p level passes the threshold. */
void logMessage(LogLevel level, const std::string &msg);

inline void logDebug(const std::string &m) { logMessage(LogLevel::kDebug, m); }
inline void logInfo(const std::string &m) { logMessage(LogLevel::kInfo, m); }
inline void logWarn(const std::string &m) { logMessage(LogLevel::kWarn, m); }

/** User/configuration error: print and exit(1). */
[[noreturn]] void fatal(const std::string &msg);

/** Internal invariant violation: print and abort(). */
[[noreturn]] void panic(const std::string &msg);

} // namespace parabit

#endif // PARABIT_COMMON_LOGGING_HPP_
