/**
 * @file
 * Minimal logging and error-reporting helpers.
 *
 * Follows the gem5 convention: fatal() is for user/configuration errors
 * that make continuing impossible; panic() is for internal invariant
 * violations (i.e. bugs in this library).
 *
 * Log lines pass through a pluggable sink (default: stderr), so tests
 * can capture and assert on them instead of scraping the process
 * stream; fatal() and panic() always hit stderr directly — when the
 * process is about to die, the message must get out.
 */

#ifndef PARABIT_COMMON_LOGGING_HPP_
#define PARABIT_COMMON_LOGGING_HPP_

#include <functional>
#include <string>

namespace parabit {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError };

/** Global log threshold; messages below it are suppressed. */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** Receives every log line that passes the threshold. */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/** Install @p sink as the log destination; an empty function restores
 *  the stderr default.  @return the previously installed sink (empty
 *  if the default was active), so scoped captures can chain. */
LogSink setLogSink(LogSink sink);

/** Emit a log line to the sink if @p level passes the threshold. */
void logMessage(LogLevel level, const std::string &msg);

/** Canonical "[LEVEL]" tag for @p level ("DEBUG", "INFO", ...). */
const char *logLevelName(LogLevel level);

inline void logDebug(const std::string &m) { logMessage(LogLevel::kDebug, m); }
inline void logInfo(const std::string &m) { logMessage(LogLevel::kInfo, m); }
inline void logWarn(const std::string &m) { logMessage(LogLevel::kWarn, m); }
inline void logError(const std::string &m) { logMessage(LogLevel::kError, m); }

/** User/configuration error: print and exit(1). */
[[noreturn]] void fatal(const std::string &msg);

/** Internal invariant violation: print and abort(). */
[[noreturn]] void panic(const std::string &msg);

} // namespace parabit

#endif // PARABIT_COMMON_LOGGING_HPP_
