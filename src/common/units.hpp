/**
 * @file
 * Time and data-size units shared across the simulator.
 *
 * All simulated time is kept in integer picoseconds so that DRAM timing
 * parameters with fractional nanoseconds (e.g. tRCD = 13.75 ns) and flash
 * latencies in microseconds compose without rounding.  A 64-bit tick count
 * in picoseconds covers ~213 days of simulated time, far beyond any
 * experiment in this repository.
 */

#ifndef PARABIT_COMMON_UNITS_HPP_
#define PARABIT_COMMON_UNITS_HPP_

#include <cstdint>

namespace parabit {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Number of bytes. 64-bit: case studies manipulate >100 GB volumes. */
using Bytes = std::uint64_t;

namespace ticks {

inline constexpr Tick kPicosecond = 1;
inline constexpr Tick kNanosecond = 1000 * kPicosecond;
inline constexpr Tick kMicrosecond = 1000 * kNanosecond;
inline constexpr Tick kMillisecond = 1000 * kMicrosecond;
inline constexpr Tick kSecond = 1000 * kMillisecond;

/** Build a Tick from a (possibly fractional) nanosecond count. */
constexpr Tick
fromNs(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(kNanosecond) + 0.5);
}

/** Build a Tick from a (possibly fractional) microsecond count. */
constexpr Tick
fromUs(double us)
{
    return static_cast<Tick>(us * static_cast<double>(kMicrosecond) + 0.5);
}

/** Build a Tick from a (possibly fractional) millisecond count. */
constexpr Tick
fromMs(double ms)
{
    return static_cast<Tick>(ms * static_cast<double>(kMillisecond) + 0.5);
}

/** Build a Tick from a (possibly fractional) second count. */
constexpr Tick
fromSec(double s)
{
    return static_cast<Tick>(s * static_cast<double>(kSecond) + 0.5);
}

constexpr double toNs(Tick t) { return static_cast<double>(t) / kNanosecond; }
constexpr double toUs(Tick t) { return static_cast<double>(t) / kMicrosecond; }
constexpr double toMs(Tick t) { return static_cast<double>(t) / kMillisecond; }
constexpr double toSec(Tick t) { return static_cast<double>(t) / kSecond; }

} // namespace ticks

namespace bytes {

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

constexpr double toKiB(Bytes b) { return static_cast<double>(b) / kKiB; }
constexpr double toMiB(Bytes b) { return static_cast<double>(b) / kMiB; }
constexpr double toGiB(Bytes b) { return static_cast<double>(b) / kGiB; }

} // namespace bytes

} // namespace parabit

#endif // PARABIT_COMMON_UNITS_HPP_
