/**
 * @file
 * Deterministic pseudo-random number generation for workloads and the
 * error model.
 *
 * Everything in this repository must be reproducible run-to-run, so all
 * randomness flows through explicitly seeded SplitMix64 generators.  The
 * generator is tiny, fast, and has well-understood statistical quality
 * for the Monte-Carlo uses here (bit-error injection, synthetic images,
 * activity bitmaps).
 */

#ifndef PARABIT_COMMON_RNG_HPP_
#define PARABIT_COMMON_RNG_HPP_

#include <cstdint>

namespace parabit {

/** SplitMix64 deterministic PRNG. */
class Rng
{
  public:
    explicit constexpr Rng(std::uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit value. */
    constexpr std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    constexpr std::uint64_t
    below(std::uint64_t bound)
    {
        // Rejection-free multiply-shift reduction; bias is negligible for
        // the bounds used here (all << 2^64).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    constexpr double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    constexpr bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Fork a child generator whose stream is independent of this one. */
    constexpr Rng
    fork()
    {
        return Rng(next() ^ 0xA5A5A5A55A5A5A5Aull);
    }

  private:
    std::uint64_t state_;
};

} // namespace parabit

#endif // PARABIT_COMMON_RNG_HPP_
