/**
 * @file
 * Vectorized (whole-wordline) latch circuit model.
 *
 * Every bitline of a plane has its own copy of the latching circuit, and
 * a sensing pulse operates on all of them in parallel — this is where
 * ParaBit's "bulk" nature comes from.  LatchArray models one circuit per
 * bitline with each node held as a packed BitVector, so a MicroProgram
 * executes on an entire page pair at once.
 *
 * Sensing derives the SO vector word-parallel from the stored page bits
 * using the Gray code of Table 1:
 *
 *   VREAD0: above for every state            -> SO = 1
 *   VREAD1: above unless the cell is E       -> SO = ~(LSB & MSB)
 *   VREAD2: above iff state >= S2            -> SO = ~LSB
 *   VREAD3: above iff the cell is S3         -> SO = ~LSB & MSB
 *
 * An optional noise hook lets the error model flip SO bits after each
 * sensing, which is exactly where real sensing errors enter (and why the
 * paper notes ECC cannot run after ParaBit ops).
 */

#ifndef PARABIT_FLASH_LATCH_ARRAY_HPP_
#define PARABIT_FLASH_LATCH_ARRAY_HPP_

#include <functional>

#include "common/bitvector.hpp"
#include "flash/op_sequences.hpp"

namespace parabit::flash {

/** The two logical pages stored on one wordline. */
struct WordlineData
{
    const BitVector *lsb = nullptr; ///< LSB page (nullptr reads as all-1)
    const BitVector *msb = nullptr; ///< MSB page (nullptr reads as all-1)
};

/**
 * Hook invoked after each sensing with the freshly derived SO vector and
 * the 1-based index of the sensing within the program; implementations
 * flip bits to model sensing errors.
 */
using SenseNoiseHook = std::function<void(BitVector &so, int sense_index)>;

/** One latch circuit per bitline; executes MicroPrograms on page data. */
class LatchArray
{
  public:
    /** @param width number of bitlines (bits per page). */
    explicit LatchArray(std::size_t width);

    std::size_t width() const { return width_; }

    /**
     * Run @p prog to completion.
     *
     * For co-located programs, @p self supplies both operand pages.
     * For location-free programs, @p wl_m holds operand M (its MSB page)
     * and @p wl_n operand N (its LSB page); @p self is ignored.
     *
     * @param noise optional sensing-error hook.
     */
    void execute(const MicroProgram &prog, const WordlineData &self,
                 const WordlineData &wl_m = {}, const WordlineData &wl_n = {},
                 const SenseNoiseHook &noise = {});

    /** Final content of the output latch (L2's OUT node). */
    const BitVector &out() const { return out_; }

    /** @name Intermediate node observers (mainly for tests). */
    /// @{
    const BitVector &so() const { return so_; }
    const BitVector &a() const { return a_; }
    const BitVector &c() const { return c_; }
    const BitVector &b() const { return b_; }
    /// @}

  private:
    void deriveSo(const WordlineData &wl, VRead v);

    std::size_t width_;
    BitVector so_, a_, c_, b_, out_;
};

/**
 * Convenience: execute @p op functionally on two operand pages using the
 * full circuit model and return the result page.  Co-located semantics:
 * @p x is the LSB operand, @p y the MSB operand.
 */
BitVector executeCoLocated(BitwiseOp op, const BitVector &x,
                           const BitVector &y,
                           const SenseNoiseHook &noise = {});

/**
 * Convenience: location-free execution.  @p m is the operand stored in
 * the MSB page of one wordline, @p n the operand in the LSB page of
 * another; @p m_companion / @p n_companion are the unrelated data sharing
 * those wordlines (defaulted to all-ones = erased-looking).
 */
BitVector executeLocationFree(BitwiseOp op, const BitVector &m,
                              const BitVector &n,
                              const BitVector *m_companion = nullptr,
                              const BitVector *n_companion = nullptr,
                              const SenseNoiseHook &noise = {},
                              LocFreeVariant variant =
                                  LocFreeVariant::kMsbLsb);

} // namespace parabit::flash

#endif // PARABIT_FLASH_LATCH_ARRAY_HPP_
