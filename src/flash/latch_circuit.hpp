/**
 * @file
 * Symbolic model of the NAND flash latching circuit (paper Figs 2, 3).
 *
 * The circuit has two latches: L1 with complementary nodes A and C, and
 * L2 with complementary nodes B and OUT, plus the sensing node SO.
 * Control transistors:
 *
 *   MSO  connects the sense amplifier output to SO;
 *   M1   pulls C to ground when SO is high (C <- C AND NOT SO);
 *   M2   pulls A to ground when SO is high (A <- A AND NOT SO);
 *   M3   transfers L1 to L2       (B <- B AND NOT A, OUT = NOT B);
 *   SET  forces OUT to ground during initialisation;
 *   M6/M7 (location-free extension, Fig 8) select the direct or the
 *         inverted sense-amp output onto SO.
 *
 * Latch complementarity is an invariant: C = NOT A and OUT = NOT B after
 * every pulse (the latch regenerates).  During an M1/M2 pulse the pulled
 * node is conditionally grounded and the other side follows through the
 * cross-coupled inverters, which is exactly the
 * L(X) <- L(X)_old AND NOT L(SO) algebra used in the paper.
 *
 * This class is the *symbolic* model: every node carries a StateVec, the
 * value the node takes for each of the four possible states of the MLC
 * cell being sensed.  It exists to verify the paper's control sequences
 * (Tables 2-5, Figs 5/6) literally.  The vectorized per-bitline model used
 * to move real data is LatchArray (latch_array.hpp).
 */

#ifndef PARABIT_FLASH_LATCH_CIRCUIT_HPP_
#define PARABIT_FLASH_LATCH_CIRCUIT_HPP_

#include "common/statevec.hpp"
#include "flash/mlc.hpp"

namespace parabit::flash {

/** Symbolic latching circuit; see file comment. */
class LatchCircuit
{
  public:
    LatchCircuit() { initNormal(); }

    /**
     * Standard initialisation (paper Fig 2): SO and EN1 high ground C,
     * so L(C)=0000 and L(A)=1111; SET grounds OUT so L(OUT)=0000 and
     * L(B)=1111.
     */
    void initNormal();

    /**
     * Inverted initialisation (paper Fig 7) used by NAND/NOR/XOR/NOT:
     * SO and EN2 ground A instead, so L(A)=0000, L(C)=1111; L2 is
     * initialised as in the normal case (B=1111, OUT=0000).
     */
    void initInverted();

    /**
     * Re-initialise only L1 (A and C) without touching L2.  The XOR
     * sequence (Table 4, row 4) achieves this with a VREAD0 sensing that
     * always reports "above": every position of A is pulled low via M2.
     * We model the same effect.
     */
    void reinitL1Inverted();

    /** Apply a Single Read Operation: SO takes senseVector(v). */
    void sense(VRead v);

    /** Drive SO directly (used by the location-free two-wordline path). */
    void driveSo(StateVec so);

    /** Pulse M1: C <- C AND NOT SO; A regenerates to NOT C. */
    void pulseM1();

    /** Pulse M2: A <- A AND NOT SO; C regenerates to NOT A. */
    void pulseM2();

    /** Pulse M3: B <- B AND NOT A; OUT regenerates to NOT B. */
    void pulseM3();

    /** @name Node observers, paper notation. */
    /// @{
    StateVec so() const { return so_; }
    StateVec a() const { return a_; }
    StateVec c() const { return c_; }
    StateVec b() const { return b_; }
    StateVec out() const { return out_; }
    /// @}

  private:
    StateVec so_;
    StateVec a_;
    StateVec c_;
    StateVec b_;
    StateVec out_;
};

} // namespace parabit::flash

#endif // PARABIT_FLASH_LATCH_CIRCUIT_HPP_
